/**
 * @file
 * Reproduces CRISP Figure 11: total number of unique critical
 * (tagged) static instructions per workload, the paper's argument
 * that hardware would need hundreds of KB of metadata storage while
 * the prefix stores criticality in the code itself.
 */

#include <iostream>

#include "core/pipeline.h"
#include "sim/artifact_cache.h"
#include "sim/cli.h"
#include "sim/stats.h"
#include "sim/table.h"
#include "sim/thread_pool.h"
#include "workloads/workload.h"

using namespace crisp;

int
main(int argc, char **argv)
{
    SimConfig cfg = SimConfig::skylake();
    CrispOptions opts;

    std::cout << "=== Figure 11: total critical instructions ===\n\n";
    Table table({"workload", "tagged statics", "program statics",
                 "dyn critical ratio", "IST bytes equivalent"});

    // Analysis-only figure: one job per workload.
    const auto &workloads = workloadRegistry();
    std::vector<std::shared_ptr<const CrispAnalysis>> analyses(
        workloads.size());
    std::vector<size_t> statics(workloads.size());
    ArtifactCache cache;
    ThreadPool pool(benchJobsArg(argc, argv));
    pool.parallelFor(workloads.size(), [&](size_t w) {
        analyses[w] =
            cache.analysis(workloads[w], opts, cfg, 200'000);
        statics[w] = workloads[w].build(InputSet::Ref).code.size();
    });

    for (size_t w = 0; w < workloads.size(); ++w) {
        const CrispAnalysis &a = *analyses[w];
        // A hardware table would need ~8 B (tag + metadata) per PC.
        uint64_t ist_bytes = uint64_t(a.taggedStatics.size()) * 8;
        table.addRow({workloads[w].name,
                      std::to_string(a.taggedStatics.size()),
                      std::to_string(statics[w]),
                      percent(a.dynamicCriticalRatio),
                      std::to_string(ist_bytes)});
    }
    table.print(std::cout);
    std::cout << "\npaper reference: perlbench/gcc/moses exceed 10k "
                 "critical instructions (100s of KB of would-be "
                 "hardware state); CRISP stores one prefix byte per "
                 "instruction in the code image instead.\n";
    return 0;
}
