/**
 * @file
 * Reproduces CRISP Figure 11: total number of unique critical
 * (tagged) static instructions per workload, the paper's argument
 * that hardware would need hundreds of KB of metadata storage while
 * the prefix stores criticality in the code itself.
 */

#include <iostream>

#include "core/pipeline.h"
#include "sim/stats.h"
#include "sim/table.h"
#include "workloads/workload.h"

using namespace crisp;

int
main()
{
    SimConfig cfg = SimConfig::skylake();
    CrispOptions opts;

    std::cout << "=== Figure 11: total critical instructions ===\n\n";
    Table table({"workload", "tagged statics", "program statics",
                 "dyn critical ratio", "IST bytes equivalent"});

    for (const auto &wl : workloadRegistry()) {
        CrispPipeline pipe(wl, opts, cfg, 200'000, 200'000);
        const CrispAnalysis &a = pipe.analysis();
        Program prog = wl.build(InputSet::Ref);
        // A hardware table would need ~8 B (tag + metadata) per PC.
        uint64_t ist_bytes = uint64_t(a.taggedStatics.size()) * 8;
        table.addRow({wl.name,
                      std::to_string(a.taggedStatics.size()),
                      std::to_string(prog.code.size()),
                      percent(a.dynamicCriticalRatio),
                      std::to_string(ist_bytes)});
        std::cerr << "  done " << wl.name << "\n";
    }
    table.print(std::cout);
    std::cout << "\npaper reference: perlbench/gcc/moses exceed 10k "
                 "critical instructions (100s of KB of would-be "
                 "hardware state); CRISP stores one prefix byte per "
                 "instruction in the code image instead.\n";
    return 0;
}
