/**
 * @file
 * Prints the simulated system configuration (CRISP Table 1) as this
 * reproduction implements it, side by side with the paper's values.
 */

#include <iostream>

#include "sim/config.h"
#include "sim/table.h"

using namespace crisp;

int
main()
{
    SimConfig cfg = SimConfig::skylake();
    std::cout << "=== Table 1: simulated system ===\n\n";
    Table table({"parameter", "paper", "this reproduction"});
    auto row = [&](const char *p, const char *a, std::string b) {
        table.addRow({p, a, std::move(b)});
    };
    row("CPU", "Intel Xeon Skylake", "Skylake-like OOO model");
    row("All-core turbo frequency", "3.0 GHz",
        "3.0 GHz (DRAM timing base)");
    row("Frontend width and retirement", "6-way",
        std::to_string(cfg.width) + "-way");
    row("Functional units", "4 ALU, 2 Load, 1 Store",
        std::to_string(cfg.numAlu) + " ALU, " +
            std::to_string(cfg.numLoadPorts) + " Load, " +
            std::to_string(cfg.numStorePorts) + " Store");
    row("Branch predictor", "TAGE", cfg.branchPredictor);
    row("BTB", "8K entries",
        std::to_string(cfg.btbEntries) + " entries, 4-way");
    row("ROB", "224 entries",
        std::to_string(cfg.robSize) + " entries");
    row("Reservation station", "96 entries (unified)",
        std::to_string(cfg.rsSize) + " entries (unified)");
    row("Baseline scheduler", "6-oldest-ready-first",
        "age-matrix oldest-ready-first (RAND insertion)");
    row("Data prefetcher", "BOP and Stream",
        std::string(cfg.enableBop ? "BOP" : "") +
            (cfg.enableStream ? " + Stream" : ""));
    row("Instruction prefetcher", "FDIP, 128 FTQ entries",
        cfg.enableFdip
            ? "FDIP, " + std::to_string(cfg.ftqEntries) +
                  " FTQ entries"
            : "off");
    row("Load buffer", "64 entries", std::to_string(cfg.lqSize));
    row("Store buffer", "128 entries", std::to_string(cfg.sqSize));
    row("L1 instruction cache", "32 KiB 8-way, 3 cycles",
        std::to_string(cfg.l1i.sizeBytes / 1024) + " KiB " +
            std::to_string(cfg.l1i.ways) + "-way, " +
            std::to_string(cfg.l1i.latency) + " cycles");
    row("L1 data cache", "32 KiB 8-way, 4 cycles",
        std::to_string(cfg.l1d.sizeBytes / 1024) + " KiB " +
            std::to_string(cfg.l1d.ways) + "-way, " +
            std::to_string(cfg.l1d.latency) + " cycles");
    row("LLC", "1 MiB/core 20-way, 36 cycles",
        std::to_string(cfg.llc.sizeBytes / 1024 / 1024) + " MiB " +
            std::to_string(cfg.llc.ways) + "-way, " +
            std::to_string(cfg.llc.latency) + " cycles");
    row("Memory", "DDR4-2400 (1 channel)",
        "DDR4-2400 timing model, 1 channel, 16 banks");
    table.print(std::cout);
    return 0;
}
