/**
 * @file
 * Reproduces CRISP Figure 7: IPC improvement of CRISP over the OOO
 * baseline and over hardware IBDA with 1K/8K/64K/infinite instruction
 * slice tables, for every evaluated workload plus the mean.
 *
 * Usage: fig07_ipc [--fast] [--jobs N]
 *   --fast runs a reduced IBDA set (1K and inf) on shorter traces.
 *   --jobs N caps the parallel worker count (default: all cores).
 */

#include <cstring>
#include <iostream>

#include "sim/cli.h"
#include "sim/driver.h"
#include "sim/stats.h"
#include "sim/table.h"
#include "workloads/workload.h"

using namespace crisp;

int
main(int argc, char **argv)
{
    bool fast = false;
    for (int i = 1; i < argc; ++i)
        fast = fast || std::strcmp(argv[i], "--fast") == 0;
    unsigned jobs = benchJobsArg(argc, argv);

    SimConfig cfg = SimConfig::skylake();
    CrispOptions opts;
    EvalSizes sizes{250'000, 500'000};
    std::vector<std::string> ists = {"1K", "8K", "64K", "inf"};
    if (fast) {
        sizes.trainOps = 150'000;
        sizes.refOps = 300'000;
        ists = {"1K", "inf"};
    }

    std::cout << "=== Figure 7: IPC improvement of CRISP over OOO "
                 "and IBDA baselines ===\n";
    std::cout << "machine: " << cfg.describe() << "\n\n";

    std::vector<std::string> headers = {"workload", "base IPC",
                                        "CRISP"};
    for (const auto &ist : ists)
        headers.push_back("IBDA-" + ist);
    Table table(headers);

    std::vector<double> crisp_speedups;
    std::map<std::string, std::vector<double>> ibda_speedups;

    Timer timer;
    std::vector<WorkloadEval> evals = evaluateAll(
        workloadRegistry(), cfg, opts, sizes, jobs, ists);
    std::cerr << "  " << evals.size() << " workloads evaluated in "
              << fixed(timer.seconds(), 1) << "s\n";

    for (const WorkloadEval &ev : evals) {
        std::vector<std::string> row = {
            ev.name, fixed(ev.ipcBaseline, 3),
            percent(ev.crispSpeedup() - 1.0)};
        crisp_speedups.push_back(ev.crispSpeedup());
        for (const auto &ist : ists) {
            row.push_back(percent(ev.ibdaSpeedup(ist) - 1.0));
            ibda_speedups[ist].push_back(ev.ibdaSpeedup(ist));
        }
        table.addRow(row);
    }

    std::vector<std::string> mean_row = {
        "geomean", "",
        percent(geomean(crisp_speedups) - 1.0)};
    for (const auto &ist : ists)
        mean_row.push_back(percent(geomean(ibda_speedups[ist]) - 1.0));
    table.addRow(mean_row);

    table.print(std::cout);
    std::cout << "\npaper reference: CRISP mean +8.4%, max +38%; "
                 "IBDA mean far below CRISP, negative on several "
                 "workloads.\n";
    return 0;
}
