/**
 * @file
 * Reproduces CRISP Figure 8: IPC gain from load slices only, branch
 * slices only, and both combined — the paper's branch-slicing
 * ablation (§5.3), where several workloads show super-additive
 * combination.
 */

#include <iostream>

#include "sim/driver.h"
#include "sim/stats.h"
#include "sim/table.h"
#include "workloads/workload.h"

using namespace crisp;

namespace
{

double
gainWith(const WorkloadInfo &wl, const SimConfig &cfg,
         CrispOptions opts, const EvalSizes &sizes,
         double base_ipc)
{
    CrispPipeline pipe(wl, opts, cfg, sizes.trainOps, sizes.refOps);
    Trace tagged = pipe.refTrace(true);
    SimConfig crisp_cfg = cfg;
    crisp_cfg.scheduler = SchedulerPolicy::CrispPriority;
    CoreStats s = runCore(tagged, crisp_cfg);
    return s.ipc() / base_ipc - 1.0;
}

} // namespace

int
main()
{
    SimConfig cfg = SimConfig::skylake();
    EvalSizes sizes{200'000, 400'000};

    std::cout << "=== Figure 8: load slices vs branch slices vs "
                 "combined ===\n\n";
    Table table(
        {"workload", "base IPC", "branch only", "load only",
         "combined"});

    std::vector<double> b_only, l_only, comb;
    for (const auto &wl : workloadRegistry()) {
        // Shared baseline run (untagged).
        CrispOptions none;
        none.enableLoadSlices = false;
        none.enableBranchSlices = false;
        CrispPipeline base_pipe(wl, none, cfg, sizes.trainOps,
                                sizes.refOps);
        Trace base_trace = base_pipe.refTrace(false);
        CoreStats base = runCore(base_trace, cfg);
        double base_ipc = base.ipc();

        CrispOptions branch_only;
        branch_only.enableLoadSlices = false;
        CrispOptions load_only;
        load_only.enableBranchSlices = false;
        CrispOptions both;

        double gb = gainWith(wl, cfg, branch_only, sizes, base_ipc);
        double gl = gainWith(wl, cfg, load_only, sizes, base_ipc);
        double gc = gainWith(wl, cfg, both, sizes, base_ipc);
        b_only.push_back(1.0 + gb);
        l_only.push_back(1.0 + gl);
        comb.push_back(1.0 + gc);

        table.addRow({wl.name, fixed(base_ipc, 3), percent(gb),
                      percent(gl), percent(gc)});
        std::cerr << "  done " << wl.name << "\n";
    }
    table.addRow({"geomean", "", percent(geomean(b_only) - 1.0),
                  percent(geomean(l_only) - 1.0),
                  percent(geomean(comb) - 1.0)});
    table.print(std::cout);
    std::cout << "\npaper reference: cactus, lbm, perlbench and "
                 "memcached combine branch and load slices "
                 "super-additively; deepsjeng, lbm, nab, namd gain "
                 ">3% from branch slices alone.\n";
    return 0;
}
