/**
 * @file
 * Reproduces CRISP Figure 8: IPC gain from load slices only, branch
 * slices only, and both combined — the paper's branch-slicing
 * ablation (§5.3), where several workloads show super-additive
 * combination.
 */

#include <array>
#include <iostream>

#include "sim/artifact_cache.h"
#include "sim/cli.h"
#include "sim/driver.h"
#include "sim/stats.h"
#include "sim/table.h"
#include "sim/thread_pool.h"
#include "workloads/workload.h"

using namespace crisp;

int
main(int argc, char **argv)
{
    SimConfig cfg = SimConfig::skylake();
    EvalSizes sizes{200'000, 400'000};
    unsigned jobs = benchJobsArg(argc, argv);

    std::cout << "=== Figure 8: load slices vs branch slices vs "
                 "combined ===\n\n";
    Table table(
        {"workload", "base IPC", "branch only", "load only",
         "combined"});

    // Variant option sets: branch-only, load-only, combined.
    CrispOptions branch_only;
    branch_only.enableLoadSlices = false;
    CrispOptions load_only;
    load_only.enableBranchSlices = false;
    CrispOptions both;
    const std::array<CrispOptions, 3> variants = {branch_only,
                                                  load_only, both};

    const auto &workloads = workloadRegistry();
    const size_t n = workloads.size();
    constexpr size_t kRuns = 4; // baseline + 3 variants

    // ipc[workload][0 = baseline, 1..3 = variants].
    std::vector<std::array<double, kRuns>> ipc(n);

    ArtifactCache cache;
    ThreadPool pool(jobs);
    pool.parallelFor(n * kRuns, [&](size_t i) {
        size_t w = i / kRuns;
        size_t v = i % kRuns;
        const WorkloadInfo &wl = workloads[w];
        if (v == 0) {
            auto trace =
                cache.trace(wl, InputSet::Ref, sizes.refOps);
            ipc[w][0] = runCore(*trace, cfg).ipc();
        } else {
            auto trace = cache.taggedRefTrace(
                wl, variants[v - 1], cfg, sizes.trainOps,
                sizes.refOps);
            SimConfig crisp_cfg = cfg;
            crisp_cfg.scheduler = SchedulerPolicy::CrispPriority;
            ipc[w][v] = runCore(*trace, crisp_cfg).ipc();
        }
    });

    std::vector<double> b_only, l_only, comb;
    for (size_t w = 0; w < n; ++w) {
        double base_ipc = ipc[w][0];
        double gb = ipc[w][1] / base_ipc - 1.0;
        double gl = ipc[w][2] / base_ipc - 1.0;
        double gc = ipc[w][3] / base_ipc - 1.0;
        b_only.push_back(1.0 + gb);
        l_only.push_back(1.0 + gl);
        comb.push_back(1.0 + gc);

        table.addRow({workloads[w].name, fixed(base_ipc, 3),
                      percent(gb), percent(gl), percent(gc)});
    }
    table.addRow({"geomean", "", percent(geomean(b_only) - 1.0),
                  percent(geomean(l_only) - 1.0),
                  percent(geomean(comb) - 1.0)});
    table.print(std::cout);
    std::cout << "\npaper reference: cactus, lbm, perlbench and "
                 "memcached combine branch and load slices "
                 "super-additively; deepsjeng, lbm, nab, namd gain "
                 ">3% from branch slices alone.\n";
    return 0;
}
