/**
 * @file
 * CPI-stack comparison: where do the cycles go under the baseline
 * OOO scheduler, CRISP, and IBDA?
 *
 * For a mixed workload set (memory-bound proxies plus compute-bound
 * controls) this runs all three machines, prints each run's top-down
 * cycle stack, and writes BENCH_cpi_stack.json. Two invariants gate
 * the exit code:
 *
 *  - every run's buckets sum exactly to its total cycles, and
 *  - CRISP shrinks the backend-memory bucket (in absolute cycles)
 *    on the memory-bound proxies — the paper's core claim viewed
 *    through cycle accounting: critical-slice scheduling converts
 *    ROB-head memory stalls into overlapped execution.
 */

#include <cstdio>
#include <string>
#include <vector>

#include "sim/artifact_cache.h"
#include "sim/cli.h"
#include "sim/driver.h"
#include "sim/thread_pool.h"
#include "telemetry/cpi_stack.h"
#include "workloads/workload.h"

using namespace crisp;

namespace
{

constexpr uint64_t kTrain = 150'000;
constexpr uint64_t kRef = 250'000;

struct Row
{
    std::string workload;
    bool memoryBound = false;
    CoreStats ooo, crisp, ibda;
};

void
printStack(const char *label, const CoreStats &s)
{
    std::printf("  %-6s cycles %9llu  ", label,
                static_cast<unsigned long long>(s.cycles));
    for (size_t b = 0; b < kNumCpiBuckets; ++b)
        std::printf("%s %4.1f%%  ", cpiBucketName(CpiBucket(b)),
                    100.0 * s.cpi.fraction(CpiBucket(b)));
    std::printf("\n");
}

void
jsonStack(FILE *f, const char *label, const CoreStats &s,
          const char *trailing_comma)
{
    std::fprintf(f, "      \"%s\": {\"cycles\": %llu", label,
                 static_cast<unsigned long long>(s.cycles));
    for (size_t b = 0; b < kNumCpiBuckets; ++b)
        std::fprintf(f, ", \"%s\": %llu",
                     cpiBucketName(CpiBucket(b)),
                     static_cast<unsigned long long>(s.cpi[CpiBucket(b)]));
    std::fprintf(f, "}%s\n", trailing_comma);
}

} // namespace

int
main(int argc, char **argv)
{
    // Memory-bound proxies (LLC-missing, where CRISP attacks the
    // stack) and compute-bound controls (where backend-memory is
    // small and should stay small).
    const struct
    {
        const char *name;
        bool memoryBound;
    } kSet[] = {
        {"pointer_chase", true}, {"mcf", true},
        {"omnetpp", true},       {"xhpcg", true},
        {"memcached", true},     {"deepsjeng", false},
        {"namd", false},
    };

    SimConfig base = SimConfig::skylake();
    CrispOptions opts;
    std::vector<Row> rows;
    for (const auto &e : kSet)
        if (findWorkload(e.name))
            rows.push_back({e.name, e.memoryBound, {}, {}, {}});

    // One job per (workload, variant); artifacts shared via the
    // cache, results in deterministic slots.
    ArtifactCache cache;
    ThreadPool pool(benchJobsArg(argc, argv));
    pool.parallelFor(rows.size() * 3, [&](size_t i) {
        Row &row = rows[i / 3];
        const WorkloadInfo *wl = findWorkload(row.workload);
        size_t v = i % 3;
        if (v == 0) {
            SimConfig cfg = base;
            cfg.scheduler = SchedulerPolicy::OldestFirst;
            auto trace = cache.trace(*wl, InputSet::Ref, kRef);
            row.ooo = runCore(*trace, cfg);
        } else if (v == 1) {
            SimConfig cfg = base;
            cfg.scheduler = SchedulerPolicy::CrispPriority;
            auto trace =
                cache.taggedRefTrace(*wl, opts, base, kTrain, kRef);
            row.crisp = runCore(*trace, cfg);
        } else {
            auto trace = cache.trace(*wl, InputSet::Ref, kRef);
            row.ibda = runCore(*trace, ibdaConfig(base, "1K"));
        }
    });

    std::printf("=== CPI stacks: baseline OOO vs CRISP vs IBDA-1K "
                "(%llu ops) ===\n\n",
                static_cast<unsigned long long>(kRef));

    bool sums_ok = true;
    size_t shrunk = 0, mem_bound = 0;
    uint64_t mem_ooo_total = 0, mem_crisp_total = 0;
    for (const Row &row : rows) {
        std::printf("%s%s\n", row.workload.c_str(),
                    row.memoryBound ? " (memory-bound)" : "");
        for (const CoreStats *s : {&row.ooo, &row.crisp, &row.ibda})
            if (s->cpi.total() != s->cycles) {
                std::printf("  ERROR: bucket sum %llu != cycles "
                            "%llu\n",
                            static_cast<unsigned long long>(s->cpi.total()),
                            static_cast<unsigned long long>(s->cycles));
                sums_ok = false;
            }
        printStack("ooo", row.ooo);
        printStack("crisp", row.crisp);
        printStack("ibda", row.ibda);

        uint64_t before = row.ooo.cpi[CpiBucket::BackendMemory];
        uint64_t after = row.crisp.cpi[CpiBucket::BackendMemory];
        if (row.memoryBound) {
            ++mem_bound;
            mem_ooo_total += before;
            mem_crisp_total += after;
            bool shrank = after < before;
            shrunk += shrank;
            std::printf("  backend-memory %llu -> %llu (%+.1f%%)%s\n",
                        static_cast<unsigned long long>(before),
                        static_cast<unsigned long long>(after),
                        before ? (double(after) / double(before) -
                                  1.0) *
                                     100.0
                               : 0.0,
                        shrank ? "" : "  ** no shrink **");
        }
        std::printf("\n");
    }

    // The aggregate backend-memory bucket must shrink under CRISP,
    // and a majority of the memory-bound proxies must shrink
    // individually (one workload regressing is tolerated; all of
    // them regressing means the scheduler isn't doing its job).
    bool aggregate_shrinks = mem_crisp_total < mem_ooo_total;
    bool majority_shrinks = 2 * shrunk > mem_bound;
    std::printf("memory-bound proxies: %zu/%zu shrink "
                "backend-memory; aggregate %llu -> %llu (%+.1f%%)\n",
                shrunk, mem_bound,
                static_cast<unsigned long long>(mem_ooo_total),
                static_cast<unsigned long long>(mem_crisp_total),
                mem_ooo_total
                    ? (double(mem_crisp_total) /
                           double(mem_ooo_total) -
                       1.0) *
                          100.0
                    : 0.0);

    if (FILE *f = std::fopen("BENCH_cpi_stack.json", "w")) {
        std::fprintf(f, "{\n  \"ops\": %llu,\n  \"workloads\": {\n",
                     static_cast<unsigned long long>(kRef));
        for (size_t i = 0; i < rows.size(); ++i) {
            const Row &row = rows[i];
            std::fprintf(f, "    \"%s\": {\n"
                            "      \"memory_bound\": %s,\n",
                         row.workload.c_str(),
                         row.memoryBound ? "true" : "false");
            jsonStack(f, "ooo", row.ooo, ",");
            jsonStack(f, "crisp", row.crisp, ",");
            jsonStack(f, "ibda", row.ibda, "");
            std::fprintf(f, "    }%s\n",
                         i + 1 < rows.size() ? "," : "");
        }
        std::fprintf(f,
                     "  },\n"
                     "  \"sums_ok\": %s,\n"
                     "  \"backend_memory_ooo\": %llu,\n"
                     "  \"backend_memory_crisp\": %llu,\n"
                     "  \"aggregate_shrinks\": %s,\n"
                     "  \"majority_shrinks\": %s\n"
                     "}\n",
                     sums_ok ? "true" : "false",
                     static_cast<unsigned long long>(mem_ooo_total),
                     static_cast<unsigned long long>(mem_crisp_total),
                     aggregate_shrinks ? "true" : "false",
                     majority_shrinks ? "true" : "false");
        std::fclose(f);
        std::printf("wrote BENCH_cpi_stack.json\n");
    }

    if (!sums_ok) {
        std::printf("FAIL: CPI buckets do not sum to cycles\n");
        return 1;
    }
    if (!aggregate_shrinks || !majority_shrinks) {
        std::printf("FAIL: CRISP does not shrink backend-memory on "
                    "the memory-bound proxies\n");
        return 1;
    }
    std::printf("OK: stacks consistent; CRISP shrinks "
                "backend-memory where it should\n");
    return 0;
}
