/**
 * @file
 * Ablations of CRISP's §6.1 extensions and design choices beyond the
 * paper's main figures:
 *
 *   1. criticality-aware DRAM scheduling (critical loads get data-bus
 *      priority);
 *   2. long-latency (division) slices;
 *   3. critical-path filtering off (the IBDA-style over-selection
 *      failure mode inside CRISP's own pipeline, §3.5);
 *   4. dependencies-through-memory off (the register-only IBDA view,
 *      §3.5).
 */

#include <array>
#include <iostream>

#include "sim/artifact_cache.h"
#include "sim/cli.h"
#include "sim/driver.h"
#include "sim/stats.h"
#include "sim/table.h"
#include "sim/thread_pool.h"
#include "workloads/workload.h"

using namespace crisp;

int
main(int argc, char **argv)
{
    SimConfig machine = SimConfig::skylake();
    EvalSizes sizes{200'000, 400'000};
    unsigned jobs = benchJobsArg(argc, argv);

    std::cout << "=== Ablations: §6.1 extensions and §3.5 design "
                 "choices ===\n\n";
    Table table({"workload", "CRISP", "+crit DRAM", "+div slices",
                 "no CP filter", "no mem deps"});

    // Variant machine/analysis configurations.
    CrispOptions base_opts;
    SimConfig crit_dram = machine;
    crit_dram.enableCriticalDram = true;
    CrispOptions divs = base_opts;
    divs.enableLongLatencySlices = true;
    CrispOptions nocp = base_opts;
    nocp.criticalPathFilter = false;
    CrispOptions nomem = base_opts;
    nomem.memDependencies = false;

    struct Variant
    {
        CrispOptions opts;
        SimConfig machine;
    };
    const std::array<Variant, 5> variants = {
        Variant{base_opts, machine}, Variant{base_opts, crit_dram},
        Variant{divs, machine}, Variant{nocp, machine},
        Variant{nomem, machine}};

    const auto &workloads = workloadRegistry();
    const size_t n = workloads.size();
    constexpr size_t kRuns = 6; // baseline + 5 variants

    // All variants share the training and untagged reference traces;
    // each distinct (opts, machine) pair gets its own analysis and
    // tagged trace from the cache.
    std::vector<std::array<double, kRuns>> ipc(n);
    ArtifactCache cache;
    ThreadPool pool(jobs);
    pool.parallelFor(n * kRuns, [&](size_t i) {
        size_t w = i / kRuns;
        size_t v = i % kRuns;
        const WorkloadInfo &wl = workloads[w];
        if (v == 0) {
            auto trace =
                cache.trace(wl, InputSet::Ref, sizes.refOps);
            ipc[w][0] = runCore(*trace, machine).ipc();
        } else {
            const Variant &var = variants[v - 1];
            auto trace = cache.taggedRefTrace(
                wl, var.opts, var.machine, sizes.trainOps,
                sizes.refOps);
            SimConfig cfg = var.machine;
            cfg.scheduler = SchedulerPolicy::CrispPriority;
            ipc[w][v] = runCore(*trace, cfg).ipc();
        }
    });

    std::vector<std::vector<double>> cols(5);
    for (size_t w = 0; w < n; ++w) {
        std::vector<std::string> row = {workloads[w].name};
        for (int k = 0; k < 5; ++k) {
            double speedup = ipc[w][k + 1] / ipc[w][0];
            cols[k].push_back(speedup);
            row.push_back(percent(speedup - 1.0));
        }
        table.addRow(row);
    }
    std::vector<std::string> mean_row = {"geomean"};
    for (int k = 0; k < 5; ++k)
        mean_row.push_back(percent(geomean(cols[k]) - 1.0));
    table.addRow(mean_row);

    table.print(std::cout);
    std::cout
        << "\nexpected shape: critical-DRAM adds a little on "
           "bus-contended workloads; division slices matter only "
           "where divides are hot (nab); disabling the critical-path "
           "filter or memory-dependence tracking loses part of the "
           "gain (the §3.5 arguments for software extraction).\n";
    return 0;
}
