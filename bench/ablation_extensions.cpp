/**
 * @file
 * Ablations of CRISP's §6.1 extensions and design choices beyond the
 * paper's main figures:
 *
 *   1. criticality-aware DRAM scheduling (critical loads get data-bus
 *      priority);
 *   2. long-latency (division) slices;
 *   3. critical-path filtering off (the IBDA-style over-selection
 *      failure mode inside CRISP's own pipeline, §3.5);
 *   4. dependencies-through-memory off (the register-only IBDA view,
 *      §3.5).
 */

#include <iostream>

#include "sim/driver.h"
#include "sim/stats.h"
#include "sim/table.h"
#include "workloads/workload.h"

using namespace crisp;

namespace
{

double
crispIpc(const WorkloadInfo &wl, const SimConfig &machine,
         const CrispOptions &opts, const EvalSizes &sizes)
{
    CrispPipeline pipe(wl, opts, machine, sizes.trainOps,
                       sizes.refOps);
    Trace tagged = pipe.refTrace(true);
    SimConfig cfg = machine;
    cfg.scheduler = SchedulerPolicy::CrispPriority;
    CoreStats s = runCore(tagged, cfg);
    return s.ipc();
}

} // namespace

int
main()
{
    SimConfig machine = SimConfig::skylake();
    EvalSizes sizes{200'000, 400'000};

    std::cout << "=== Ablations: §6.1 extensions and §3.5 design "
                 "choices ===\n\n";
    Table table({"workload", "CRISP", "+crit DRAM", "+div slices",
                 "no CP filter", "no mem deps"});

    std::vector<std::vector<double>> cols(5);
    for (const auto &wl : workloadRegistry()) {
        CrispOptions base_opts;
        CrispPipeline base_pipe(wl, base_opts, machine,
                                sizes.trainOps, sizes.refOps);
        Trace base_trace = base_pipe.refTrace(false);
        double base_ipc = runCore(base_trace, machine).ipc();

        // 1. plain CRISP
        double v0 = crispIpc(wl, machine, base_opts, sizes);
        // 2. + criticality-aware DRAM
        SimConfig crit_dram = machine;
        crit_dram.enableCriticalDram = true;
        double v1 = crispIpc(wl, crit_dram, base_opts, sizes);
        // 3. + division slices
        CrispOptions divs = base_opts;
        divs.enableLongLatencySlices = true;
        double v2 = crispIpc(wl, machine, divs, sizes);
        // 4. critical-path filter off
        CrispOptions nocp = base_opts;
        nocp.criticalPathFilter = false;
        double v3 = crispIpc(wl, machine, nocp, sizes);
        // 5. memory dependencies off (register-only slices)
        CrispOptions nomem = base_opts;
        nomem.memDependencies = false;
        double v4 = crispIpc(wl, machine, nomem, sizes);

        std::vector<std::string> row = {wl.name};
        double vals[5] = {v0, v1, v2, v3, v4};
        for (int k = 0; k < 5; ++k) {
            double speedup = vals[k] / base_ipc;
            cols[k].push_back(speedup);
            row.push_back(percent(speedup - 1.0));
        }
        table.addRow(row);
        std::cerr << "  done " << wl.name << "\n";
    }
    std::vector<std::string> mean_row = {"geomean"};
    for (int k = 0; k < 5; ++k)
        mean_row.push_back(percent(geomean(cols[k]) - 1.0));
    table.addRow(mean_row);

    table.print(std::cout);
    std::cout
        << "\nexpected shape: critical-DRAM adds a little on "
           "bus-contended workloads; division slices matter only "
           "where divides are hot (nab); disabling the critical-path "
           "filter or memory-dependence tracking loses part of the "
           "gain (the §3.5 arguments for software extraction).\n";
    return 0;
}
