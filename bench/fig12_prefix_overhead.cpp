/**
 * @file
 * Reproduces CRISP Figure 12 / §5.7: static and dynamic code
 * footprint overhead of the one-byte critical prefix, and its
 * instruction-cache MPKI impact.
 */

#include <array>
#include <iostream>

#include "core/pipeline.h"
#include "sim/artifact_cache.h"
#include "sim/cli.h"
#include "sim/driver.h"
#include "sim/stats.h"
#include "sim/table.h"
#include "sim/thread_pool.h"
#include "workloads/workload.h"

using namespace crisp;

int
main(int argc, char **argv)
{
    SimConfig cfg = SimConfig::skylake();
    CrispOptions opts;
    EvalSizes sizes{200'000, 400'000};

    std::cout << "=== Figure 12: critical-prefix footprint "
                 "overhead ===\n\n";
    Table table({"workload", "static ovh", "dynamic ovh",
                 "ic-stall/kI base", "ic-stall/kI crisp",
                 "delta"});

    // Per workload: a baseline run and a CRISP run; the tag summary
    // is derived from the cached tagged trace (whose program carries
    // the rewritten layout).
    const auto &workloads = workloadRegistry();
    const size_t n = workloads.size();
    std::vector<TagSummary> tag_summaries(n);
    std::vector<std::array<CoreStats, 2>> stats(n);
    ArtifactCache cache;
    ThreadPool pool(benchJobsArg(argc, argv));
    pool.parallelFor(n * 2, [&](size_t i) {
        size_t w = i / 2;
        const WorkloadInfo &wl = workloads[w];
        if (i % 2 == 0) {
            auto trace =
                cache.trace(wl, InputSet::Ref, sizes.refOps);
            stats[w][0] = runCore(*trace, cfg);
        } else {
            auto tagged = cache.taggedRefTrace(
                wl, opts, cfg, sizes.trainOps, sizes.refOps);
            tag_summaries[w] =
                summarizeTagging(*tagged->program, *tagged);
            SimConfig ccfg = cfg;
            ccfg.scheduler = SchedulerPolicy::CrispPriority;
            stats[w][1] = runCore(*tagged, ccfg);
        }
    });

    std::vector<double> dyn_ovh;
    std::vector<double> mpki_rel;
    for (size_t w = 0; w < n; ++w) {
        const TagSummary &tags = tag_summaries[w];
        const CoreStats &base = stats[w][0];
        const CoreStats &crisp = stats[w][1];

        dyn_ovh.push_back(tags.dynamicOverhead());
        // Idealized FDIP converts steady-state icache misses into
        // in-flight merges, so frontend stall cycles per kilo-
        // instruction are the observable pressure metric here.
        auto stall_pki = [](const CoreStats &s) {
            return s.retired ? 1000.0 *
                                   double(s.frontend
                                              .icacheStallCycles) /
                                   double(s.retired)
                             : 0.0;
        };
        double b_pki = stall_pki(base);
        double c_pki = stall_pki(crisp);
        double rel = b_pki > 0 ? c_pki / b_pki - 1.0 : 0.0;
        mpki_rel.push_back(rel);
        table.addRow({workloads[w].name,
                      percent(tags.staticOverhead()),
                      percent(tags.dynamicOverhead()),
                      fixed(b_pki, 2), fixed(c_pki, 2),
                      percent(rel)});
    }
    table.addRow({"mean", "", percent(mean(dyn_ovh)), "", "",
                  percent(mean(mpki_rel))});
    table.print(std::cout);
    std::cout << "\npaper reference: dynamic footprint grows 5.2% on "
                 "average (critical instructions live in hot loops); "
                 "worst-case icache MPKI increase 2.6%. With this "
                 "reproduction's idealized FDIP, icache pressure "
                 "shows up as frontend stall cycles instead of "
                 "demand MPKI; gcc (whose body exceeds the L1I) is "
                 "the sensitive case.\n";
    return 0;
}
