/**
 * @file
 * Reproduces CRISP Figure 12 / §5.7: static and dynamic code
 * footprint overhead of the one-byte critical prefix, and its
 * instruction-cache MPKI impact.
 */

#include <iostream>

#include "core/pipeline.h"
#include "sim/driver.h"
#include "sim/stats.h"
#include "sim/table.h"
#include "workloads/workload.h"

using namespace crisp;

int
main()
{
    SimConfig cfg = SimConfig::skylake();
    CrispOptions opts;
    EvalSizes sizes{200'000, 400'000};

    std::cout << "=== Figure 12: critical-prefix footprint "
                 "overhead ===\n\n";
    Table table({"workload", "static ovh", "dynamic ovh",
                 "ic-stall/kI base", "ic-stall/kI crisp",
                 "delta"});

    std::vector<double> dyn_ovh;
    std::vector<double> mpki_rel;
    for (const auto &wl : workloadRegistry()) {
        CrispPipeline pipe(wl, opts, cfg, sizes.trainOps,
                           sizes.refOps);
        TagSummary tags = pipe.tagSummary();

        Trace base_trace = pipe.refTrace(false);
        CoreStats base = runCore(base_trace, cfg);
        Trace tagged = pipe.refTrace(true);
        SimConfig ccfg = cfg;
        ccfg.scheduler = SchedulerPolicy::CrispPriority;
        CoreStats crisp = runCore(tagged, ccfg);

        dyn_ovh.push_back(tags.dynamicOverhead());
        // Idealized FDIP converts steady-state icache misses into
        // in-flight merges, so frontend stall cycles per kilo-
        // instruction are the observable pressure metric here.
        auto stall_pki = [](const CoreStats &s) {
            return s.retired ? 1000.0 *
                                   double(s.frontend
                                              .icacheStallCycles) /
                                   double(s.retired)
                             : 0.0;
        };
        double b_pki = stall_pki(base);
        double c_pki = stall_pki(crisp);
        double rel = b_pki > 0 ? c_pki / b_pki - 1.0 : 0.0;
        mpki_rel.push_back(rel);
        table.addRow({wl.name, percent(tags.staticOverhead()),
                      percent(tags.dynamicOverhead()),
                      fixed(b_pki, 2), fixed(c_pki, 2),
                      percent(rel)});
        std::cerr << "  done " << wl.name << "\n";
    }
    table.addRow({"mean", "", percent(mean(dyn_ovh)), "", "",
                  percent(mean(mpki_rel))});
    table.print(std::cout);
    std::cout << "\npaper reference: dynamic footprint grows 5.2% on "
                 "average (critical instructions live in hot loops); "
                 "worst-case icache MPKI increase 2.6%. With this "
                 "reproduction's idealized FDIP, icache pressure "
                 "shows up as frontend stall cycles instead of "
                 "demand MPKI; gcc (whose body exceeds the L1I) is "
                 "the sensitive case.\n";
    return 0;
}
