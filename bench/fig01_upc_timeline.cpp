/**
 * @file
 * Reproduces CRISP Figure 1: micro-ops retired per cycle over time
 * for the pointer-chase microbenchmark, OOO baseline vs CRISP.
 *
 * Prints a bucketed UPC series (one row per 25-cycle window) for a
 * steady-state excerpt, followed by whole-run UPC. The paper's
 * qualitative shape: the baseline alternates full-width bursts with
 * long stalls at each linked-list miss; CRISP shortens the stalls by
 * issuing the next node's load slice first.
 */

#include <cstdio>

#include "core/pipeline.h"
#include "sim/artifact_cache.h"
#include "sim/cli.h"
#include "sim/driver.h"
#include "sim/thread_pool.h"
#include "workloads/workload.h"

using namespace crisp;

namespace
{

/** Bucketed UPC series from a per-cycle retire timeline. */
std::vector<double>
bucketize(const std::vector<uint8_t> &timeline, size_t start,
          size_t buckets, size_t width)
{
    std::vector<double> out;
    for (size_t b = 0; b < buckets; ++b) {
        size_t lo = start + b * width;
        if (lo + width > timeline.size())
            break;
        uint64_t sum = 0;
        for (size_t c = lo; c < lo + width; ++c)
            sum += timeline[c];
        out.push_back(double(sum) / double(width));
    }
    return out;
}

} // namespace

int
main(int argc, char **argv)
{
    const WorkloadInfo *wl = findWorkload("pointer_chase");
    SimConfig cfg = SimConfig::skylake();
    CrispOptions opts;
    const uint64_t kTrain = 150'000, kRef = 250'000;

    // The OOO and CRISP runs are independent jobs; the training
    // trace behind the CRISP tagging is built through the cache.
    CoreStats base, crisp;
    ArtifactCache cache;
    ThreadPool pool(benchJobsArg(argc, argv));
    pool.parallelFor(2, [&](size_t i) {
        if (i == 0) {
            auto trace = cache.trace(*wl, InputSet::Ref, kRef);
            base = runCore(*trace, cfg, true);
        } else {
            auto trace =
                cache.taggedRefTrace(*wl, opts, cfg, kTrain, kRef);
            SimConfig crisp_cfg = cfg;
            crisp_cfg.scheduler = SchedulerPolicy::CrispPriority;
            crisp = runCore(*trace, crisp_cfg, true);
        }
    });

    std::printf("=== Figure 1: UPC timeline, pointer-chase "
                "microbenchmark ===\n\n");

    const size_t kWindow = 25;
    const size_t kBuckets = 48;
    size_t start = base.retireTimeline.size() / 2;
    auto b_ooo = bucketize(base.retireTimeline, start, kBuckets,
                           kWindow);
    auto b_crisp = bucketize(crisp.retireTimeline, start, kBuckets,
                             kWindow);

    std::printf("%-8s  %-6s %-28s  %-6s %s\n", "cycle", "OOO",
                "", "CRISP", "");
    for (size_t b = 0; b < b_ooo.size() && b < b_crisp.size(); ++b) {
        auto bar = [](double v) {
            std::string s(size_t(v * 4.0 + 0.5), '#');
            return s;
        };
        std::printf("%-8zu  %5.2f %-28s  %5.2f %s\n",
                    start + b * kWindow, b_ooo[b],
                    bar(b_ooo[b]).c_str(), b_crisp[b],
                    bar(b_crisp[b]).c_str());
    }

    double upc_ooo = base.ipc();
    double upc_crisp = crisp.ipc();
    std::printf("\nwhole-run UPC: OOO %.3f, CRISP %.3f "
                "(%+.1f%% improvement)\n",
                upc_ooo, upc_crisp,
                (upc_crisp / upc_ooo - 1.0) * 100.0);
    std::printf("paper reference: CRISP improves the average UPC of "
                "this kernel by over 30%% on their machine; see\n"
                "EXPERIMENTS.md for why this reproduction's margin "
                "is smaller.\n");
    return 0;
}
