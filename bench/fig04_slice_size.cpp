/**
 * @file
 * Reproduces CRISP Figure 4: average load-slice size per workload
 * (static instructions in the full backward slice, before
 * critical-path filtering), plus the average dynamic walk length.
 */

#include <iostream>

#include "core/pipeline.h"
#include "sim/artifact_cache.h"
#include "sim/cli.h"
#include "sim/stats.h"
#include "sim/table.h"
#include "sim/thread_pool.h"
#include "workloads/workload.h"

using namespace crisp;

int
main(int argc, char **argv)
{
    SimConfig cfg = SimConfig::skylake();
    CrispOptions opts;

    std::cout << "=== Figure 4: average load slice size ===\n\n";
    Table table({"workload", "slices", "avg full slice",
                 "avg critical slice", "avg dyn ancestors"});

    // Analysis-only figure: one job per workload.
    const auto &workloads = workloadRegistry();
    std::vector<std::shared_ptr<const CrispAnalysis>> analyses(
        workloads.size());
    ArtifactCache cache;
    ThreadPool pool(benchJobsArg(argc, argv));
    pool.parallelFor(workloads.size(), [&](size_t w) {
        analyses[w] =
            cache.analysis(workloads[w], opts, cfg, 200'000);
    });

    for (size_t w = 0; w < workloads.size(); ++w) {
        const CrispAnalysis &a = *analyses[w];
        double full = 0, crit = 0, dyn = 0;
        for (const auto &s : a.loadSlices) {
            full += double(s.fullSlice.size());
            crit += double(s.criticalSlice.size());
            dyn += s.avgDynAncestors;
        }
        size_t n = a.loadSlices.size();
        table.addRow({workloads[w].name, std::to_string(n),
                      n ? fixed(full / double(n), 1) : "-",
                      n ? fixed(crit / double(n), 1) : "-",
                      n ? fixed(dyn / double(n), 1) : "-"});
    }
    table.print(std::cout);
    std::cout << "\npaper reference: slices range from a handful of "
                 "instructions to hundreds (moses/datacenter apps "
                 "largest), motivating software extraction over "
                 "bounded hardware slice storage.\n";
    return 0;
}
