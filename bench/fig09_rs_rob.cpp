/**
 * @file
 * Reproduces CRISP Figure 9: CRISP's IPC gain across reservation
 * station / ROB sizes — 64/180 (small), 96/224 (Skylake), 144/336
 * (+50%), 192/448 (+100%, Sunny-Cove-like). More window lets the
 * scheduler keep more deferrable work co-resident with critical
 * slices, so gains grow for window-hungry workloads (xhpcg) and
 * shrink where the big ROB already fixes the baseline (moses).
 */

#include <iostream>

#include "sim/driver.h"
#include "sim/stats.h"
#include "sim/table.h"
#include "workloads/workload.h"

using namespace crisp;

int
main()
{
    struct Window
    {
        unsigned rs;
        unsigned rob;
        const char *label;
    };
    const Window windows[] = {{64, 180, "64RS/180ROB"},
                              {96, 224, "96RS/224ROB"},
                              {144, 336, "144RS/336ROB"},
                              {192, 448, "192RS/448ROB"}};

    CrispOptions opts;
    EvalSizes sizes{200'000, 400'000};

    std::cout << "=== Figure 9: CRISP gain vs RS/ROB size ===\n\n";
    std::vector<std::string> headers = {"workload"};
    for (const auto &w : windows)
        headers.push_back(w.label);
    Table table(headers);

    std::vector<std::vector<double>> cols(4);
    for (const auto &wl : workloadRegistry()) {
        std::vector<std::string> row = {wl.name};
        // Analysis is machine-independent: do it once per workload.
        SimConfig base_machine = SimConfig::skylake();
        CrispPipeline pipe(wl, opts, base_machine, sizes.trainOps,
                           sizes.refOps);
        Trace base_trace = pipe.refTrace(false);
        Trace crisp_trace = pipe.refTrace(true);

        for (size_t k = 0; k < 4; ++k) {
            SimConfig cfg = SimConfig::withWindow(windows[k].rs,
                                                  windows[k].rob);
            CoreStats b = runCore(base_trace, cfg);
            SimConfig ccfg = cfg;
            ccfg.scheduler = SchedulerPolicy::CrispPriority;
            CoreStats c = runCore(crisp_trace, ccfg);
            double speedup = c.ipc() / b.ipc();
            cols[k].push_back(speedup);
            row.push_back(percent(speedup - 1.0));
        }
        table.addRow(row);
        std::cerr << "  done " << wl.name << "\n";
    }
    std::vector<std::string> mean_row = {"geomean"};
    for (size_t k = 0; k < 4; ++k)
        mean_row.push_back(percent(geomean(cols[k]) - 1.0));
    table.addRow(mean_row);

    table.print(std::cout);
    std::cout << "\npaper reference: CRISP keeps significant gains "
                 "across windows; xhpcg's gain roughly doubles at "
                 "the Sunny-Cove-like window, moses gains most at "
                 "the small one.\n";
    return 0;
}
