/**
 * @file
 * Reproduces CRISP Figure 9: CRISP's IPC gain across reservation
 * station / ROB sizes — 64/180 (small), 96/224 (Skylake), 144/336
 * (+50%), 192/448 (+100%, Sunny-Cove-like). More window lets the
 * scheduler keep more deferrable work co-resident with critical
 * slices, so gains grow for window-hungry workloads (xhpcg) and
 * shrink where the big ROB already fixes the baseline (moses).
 *
 * The whole sweep is one batch of independent core runs: each
 * (workload, window, scheduler) cell is a job on the worker pool, and
 * every workload's traces and analysis are built once and shared
 * across all four windows through the artifact cache. Results land in
 * per-cell slots, so the table is bit-identical at any --jobs value.
 *
 * Usage: fig09_rs_rob [--jobs N]
 */

#include <array>
#include <iostream>

#include "sim/artifact_cache.h"
#include "sim/cli.h"
#include "sim/driver.h"
#include "sim/stats.h"
#include "sim/table.h"
#include "sim/thread_pool.h"
#include "workloads/workload.h"

using namespace crisp;

int
main(int argc, char **argv)
{
    struct Window
    {
        unsigned rs;
        unsigned rob;
        const char *label;
    };
    const Window windows[] = {{64, 180, "64RS/180ROB"},
                              {96, 224, "96RS/224ROB"},
                              {144, 336, "144RS/336ROB"},
                              {192, 448, "192RS/448ROB"}};
    constexpr size_t kWindows = 4;

    CrispOptions opts;
    EvalSizes sizes{200'000, 400'000};
    unsigned jobs = benchJobsArg(argc, argv);

    std::cout << "=== Figure 9: CRISP gain vs RS/ROB size ===\n\n";
    std::vector<std::string> headers = {"workload"};
    for (const auto &w : windows)
        headers.push_back(w.label);
    Table table(headers);

    const auto &workloads = workloadRegistry();
    const size_t n = workloads.size();

    // ipc[workload][window][0 = baseline, 1 = CRISP].
    std::vector<std::array<std::array<double, 2>, kWindows>> ipc(n);

    // Analysis is machine-independent for this sweep: it is keyed on
    // the Skylake base machine, so all four windows share one
    // training trace, one analysis and two reference traces per
    // workload.
    SimConfig base_machine = SimConfig::skylake();
    ArtifactCache cache;
    ThreadPool pool(jobs);
    Timer timer;
    pool.parallelFor(n * kWindows * 2, [&](size_t i) {
        size_t w = i / (kWindows * 2);
        size_t k = i / 2 % kWindows;
        bool crisp = i % 2;
        SimConfig cfg =
            SimConfig::withWindow(windows[k].rs, windows[k].rob);
        if (crisp) {
            auto trace = cache.taggedRefTrace(
                workloads[w], opts, base_machine, sizes.trainOps,
                sizes.refOps);
            cfg.scheduler = SchedulerPolicy::CrispPriority;
            ipc[w][k][1] = runCore(*trace, cfg).ipc();
        } else {
            auto trace = cache.trace(workloads[w], InputSet::Ref,
                                     sizes.refOps);
            ipc[w][k][0] = runCore(*trace, cfg).ipc();
        }
    });
    auto cc = cache.counters();
    std::cerr << "  " << n * kWindows * 2 << " runs in "
              << fixed(timer.seconds(), 1) << "s (" << jobs
              << " jobs requested, artifacts: " << cc.misses
              << " built, " << cc.hits << " reused)\n";

    std::vector<std::vector<double>> cols(kWindows);
    for (size_t w = 0; w < n; ++w) {
        std::vector<std::string> row = {workloads[w].name};
        for (size_t k = 0; k < kWindows; ++k) {
            double speedup = ipc[w][k][1] / ipc[w][k][0];
            cols[k].push_back(speedup);
            row.push_back(percent(speedup - 1.0));
        }
        table.addRow(row);
    }
    std::vector<std::string> mean_row = {"geomean"};
    for (size_t k = 0; k < kWindows; ++k)
        mean_row.push_back(percent(geomean(cols[k]) - 1.0));
    table.addRow(mean_row);

    table.print(std::cout);
    std::cout << "\npaper reference: CRISP keeps significant gains "
                 "across windows; xhpcg's gain roughly doubles at "
                 "the Sunny-Cove-like window, moses gains most at "
                 "the small one.\n";
    return 0;
}
