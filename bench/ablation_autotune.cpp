/**
 * @file
 * The §5.5 "future work" mechanism, implemented: an iterative search
 * over miss-share thresholds that picks the best per workload.
 * Compares the fixed T=1% default against the per-workload tuned
 * threshold (the paper notes moses prefers T=2%).
 */

#include <iostream>

#include "core/autotune.h"
#include "sim/stats.h"
#include "sim/table.h"
#include "workloads/workload.h"

using namespace crisp;

int
main()
{
    SimConfig cfg = SimConfig::skylake();
    CrispOptions opts;
    const uint64_t kTrain = 150'000, kRef = 300'000;

    std::cout << "=== §5.5 extension: per-workload threshold "
                 "auto-tuning ===\n\n";
    Table table({"workload", "fixed T=1%", "best T", "tuned gain"});

    std::vector<double> fixed_gain, tuned_gain;
    for (const auto &wl : workloadRegistry()) {
        AutoTuneResult r =
            autoTuneMissShare(wl, cfg, opts, kTrain, kRef);
        double at_default = r.ipcByThreshold.count(0.01)
                                ? r.ipcByThreshold[0.01] /
                                      r.baselineIpc
                                : 1.0;
        fixed_gain.push_back(at_default);
        tuned_gain.push_back(r.bestSpeedup());
        table.addRow({wl.name, percent(at_default - 1.0),
                      percent(r.bestThreshold, 1),
                      percent(r.bestSpeedup() - 1.0)});
        std::cerr << "  done " << wl.name << "\n";
    }
    table.addRow({"geomean", percent(geomean(fixed_gain) - 1.0), "",
                  percent(geomean(tuned_gain) - 1.0)});
    table.print(std::cout);
    std::cout << "\ntuned >= fixed by construction; per-workload "
                 "optima differ (the paper's moses prefers T=2%).\n";
    return 0;
}
