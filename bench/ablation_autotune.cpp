/**
 * @file
 * The §5.5 "future work" mechanism, implemented: an iterative search
 * over miss-share thresholds that picks the best per workload.
 * Compares the fixed T=1% default against the per-workload tuned
 * threshold (the paper notes moses prefers T=2%).
 */

#include <iostream>

#include "core/autotune.h"
#include "sim/cli.h"
#include "sim/stats.h"
#include "sim/table.h"
#include "sim/thread_pool.h"
#include "workloads/workload.h"

using namespace crisp;

int
main(int argc, char **argv)
{
    SimConfig cfg = SimConfig::skylake();
    CrispOptions opts;
    const uint64_t kTrain = 150'000, kRef = 300'000;
    unsigned jobs = benchJobsArg(argc, argv);

    std::cout << "=== §5.5 extension: per-workload threshold "
                 "auto-tuning ===\n\n";
    Table table({"workload", "fixed T=1%", "best T", "tuned gain"});

    // One tuning search per workload, in parallel; the shared cache
    // builds each workload's traces once across all thresholds.
    const auto &workloads = workloadRegistry();
    std::vector<AutoTuneResult> results(workloads.size());
    ArtifactCache cache;
    ThreadPool pool(jobs);
    pool.parallelFor(workloads.size(), [&](size_t w) {
        results[w] = autoTuneMissShare(workloads[w], cfg, opts,
                                       kTrain, kRef,
                                       {0.05, 0.02, 0.01, 0.002},
                                       &cache);
    });

    std::vector<double> fixed_gain, tuned_gain;
    for (size_t w = 0; w < workloads.size(); ++w) {
        AutoTuneResult &r = results[w];
        double at_default = r.ipcByThreshold.count(0.01)
                                ? r.ipcByThreshold[0.01] /
                                      r.baselineIpc
                                : 1.0;
        fixed_gain.push_back(at_default);
        tuned_gain.push_back(r.bestSpeedup());
        table.addRow({workloads[w].name, percent(at_default - 1.0),
                      percent(r.bestThreshold, 1),
                      percent(r.bestSpeedup() - 1.0)});
    }
    table.addRow({"geomean", percent(geomean(fixed_gain) - 1.0), "",
                  percent(geomean(tuned_gain) - 1.0)});
    table.print(std::cout);
    std::cout << "\ntuned >= fixed by construction; per-workload "
                 "optima differ (the paper's moses prefers T=2%).\n";
    return 0;
}
