/**
 * @file
 * Reproduces CRISP Figure 10: sensitivity to the miss-share
 * criticality threshold T — a load is delinquent only if it
 * contributes more than T of the application's total LLC misses
 * (§5.5). The paper sweeps T = 5%, 1%, 0.2% and finds 1% best
 * overall.
 */

#include <iostream>

#include "sim/driver.h"
#include "sim/stats.h"
#include "sim/table.h"
#include "workloads/workload.h"

using namespace crisp;

int
main()
{
    const double thresholds[] = {0.05, 0.01, 0.002};
    SimConfig cfg = SimConfig::skylake();
    EvalSizes sizes{200'000, 400'000};

    std::cout << "=== Figure 10: miss-share threshold T sweep ===\n\n";
    Table table({"workload", "base IPC", "T=5%", "T=1%", "T=0.2%"});

    std::vector<std::vector<double>> cols(3);
    for (const auto &wl : workloadRegistry()) {
        CrispOptions base_opts;
        CrispPipeline base_pipe(wl, base_opts, cfg, sizes.trainOps,
                                sizes.refOps);
        Trace base_trace = base_pipe.refTrace(false);
        CoreStats base = runCore(base_trace, cfg);

        std::vector<std::string> row = {wl.name,
                                        fixed(base.ipc(), 3)};
        for (size_t k = 0; k < 3; ++k) {
            CrispOptions opts;
            opts.missShareThreshold = thresholds[k];
            CrispPipeline pipe(wl, opts, cfg, sizes.trainOps,
                               sizes.refOps);
            Trace tagged = pipe.refTrace(true);
            SimConfig ccfg = cfg;
            ccfg.scheduler = SchedulerPolicy::CrispPriority;
            CoreStats c = runCore(tagged, ccfg);
            double speedup = c.ipc() / base.ipc();
            cols[k].push_back(speedup);
            row.push_back(percent(speedup - 1.0));
        }
        table.addRow(row);
        std::cerr << "  done " << wl.name << "\n";
    }
    table.addRow({"geomean", "", percent(geomean(cols[0]) - 1.0),
                  percent(geomean(cols[1]) - 1.0),
                  percent(geomean(cols[2]) - 1.0)});
    table.print(std::cout);
    std::cout << "\npaper reference: T = 1% gives the best overall "
                 "performance; over-inclusive (0.2%) tagging "
                 "prioritizes cache-resident loads and dilutes the "
                 "scheduler's leverage.\n";
    return 0;
}
