/**
 * @file
 * Reproduces CRISP Figure 10: sensitivity to the miss-share
 * criticality threshold T — a load is delinquent only if it
 * contributes more than T of the application's total LLC misses
 * (§5.5). The paper sweeps T = 5%, 1%, 0.2% and finds 1% best
 * overall.
 */

#include <array>
#include <iostream>

#include "sim/artifact_cache.h"
#include "sim/cli.h"
#include "sim/driver.h"
#include "sim/stats.h"
#include "sim/table.h"
#include "sim/thread_pool.h"
#include "workloads/workload.h"

using namespace crisp;

int
main(int argc, char **argv)
{
    const double thresholds[] = {0.05, 0.01, 0.002};
    SimConfig cfg = SimConfig::skylake();
    EvalSizes sizes{200'000, 400'000};
    unsigned jobs = benchJobsArg(argc, argv);

    std::cout << "=== Figure 10: miss-share threshold T sweep ===\n\n";
    Table table({"workload", "base IPC", "T=5%", "T=1%", "T=0.2%"});

    const auto &workloads = workloadRegistry();
    const size_t n = workloads.size();
    constexpr size_t kRuns = 4; // baseline + 3 thresholds

    // The untagged reference trace and the training trace are shared
    // across all three thresholds through the cache; only the
    // analysis and tagged trace differ per threshold.
    std::vector<std::array<double, kRuns>> ipc(n);
    ArtifactCache cache;
    ThreadPool pool(jobs);
    pool.parallelFor(n * kRuns, [&](size_t i) {
        size_t w = i / kRuns;
        size_t v = i % kRuns;
        const WorkloadInfo &wl = workloads[w];
        if (v == 0) {
            auto trace =
                cache.trace(wl, InputSet::Ref, sizes.refOps);
            ipc[w][0] = runCore(*trace, cfg).ipc();
        } else {
            CrispOptions opts;
            opts.missShareThreshold = thresholds[v - 1];
            auto trace = cache.taggedRefTrace(
                wl, opts, cfg, sizes.trainOps, sizes.refOps);
            SimConfig ccfg = cfg;
            ccfg.scheduler = SchedulerPolicy::CrispPriority;
            ipc[w][v] = runCore(*trace, ccfg).ipc();
        }
    });

    std::vector<std::vector<double>> cols(3);
    for (size_t w = 0; w < n; ++w) {
        std::vector<std::string> row = {workloads[w].name,
                                        fixed(ipc[w][0], 3)};
        for (size_t k = 0; k < 3; ++k) {
            double speedup = ipc[w][k + 1] / ipc[w][0];
            cols[k].push_back(speedup);
            row.push_back(percent(speedup - 1.0));
        }
        table.addRow(row);
    }
    table.addRow({"geomean", "", percent(geomean(cols[0]) - 1.0),
                  percent(geomean(cols[1]) - 1.0),
                  percent(geomean(cols[2]) - 1.0)});
    table.print(std::cout);
    std::cout << "\npaper reference: T = 1% gives the best overall "
                 "performance; over-inclusive (0.2%) tagging "
                 "prioritizes cache-resident loads and dilutes the "
                 "scheduler's leverage.\n";
    return 0;
}
