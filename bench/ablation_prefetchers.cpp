/**
 * @file
 * Prefetcher-baseline ablation (CRISP §5.1): the paper reports that
 * CRISP's improvement is similar whether the baseline runs the
 * best-offset prefetcher, a plain stride prefetcher, or a GHB
 * prefetcher. This bench verifies that claim in this reproduction,
 * and also reports the no-prefetcher machine.
 */

#include <iostream>

#include "sim/driver.h"
#include "sim/stats.h"
#include "sim/table.h"
#include "workloads/workload.h"

using namespace crisp;

namespace
{

SimConfig
withPrefetchers(bool bop, bool stream, bool stride, bool ghb)
{
    SimConfig cfg = SimConfig::skylake();
    cfg.enableBop = bop;
    cfg.enableStream = stream;
    cfg.enableStride = stride;
    cfg.enableGhb = ghb;
    return cfg;
}

} // namespace

int
main()
{
    struct Variant
    {
        const char *label;
        SimConfig cfg;
    };
    const Variant variants[] = {
        {"BOP+stream", withPrefetchers(true, true, false, false)},
        {"stride", withPrefetchers(false, false, true, false)},
        {"GHB", withPrefetchers(false, false, false, true)},
        {"none", withPrefetchers(false, false, false, false)},
    };

    CrispOptions opts;
    EvalSizes sizes{200'000, 400'000};

    std::cout << "=== §5.1 ablation: CRISP gain under different "
                 "baseline prefetchers ===\n\n";
    std::vector<std::string> headers = {"workload"};
    for (const auto &v : variants)
        headers.push_back(v.label);
    Table table(headers);

    std::vector<std::vector<double>> cols(4);
    for (const auto &wl : workloadRegistry()) {
        std::vector<std::string> row = {wl.name};
        for (size_t k = 0; k < 4; ++k) {
            const SimConfig &cfg = variants[k].cfg;
            CrispPipeline pipe(wl, opts, cfg, sizes.trainOps,
                               sizes.refOps);
            Trace base_trace = pipe.refTrace(false);
            double base = runCore(base_trace, cfg).ipc();
            Trace tagged = pipe.refTrace(true);
            SimConfig ccfg = cfg;
            ccfg.scheduler = SchedulerPolicy::CrispPriority;
            double crisp = runCore(tagged, ccfg).ipc();
            double speedup = base > 0 ? crisp / base : 1.0;
            cols[k].push_back(speedup);
            row.push_back(percent(speedup - 1.0));
        }
        table.addRow(row);
        std::cerr << "  done " << wl.name << "\n";
    }
    std::vector<std::string> mean_row = {"geomean"};
    for (size_t k = 0; k < 4; ++k)
        mean_row.push_back(percent(geomean(cols[k]) - 1.0));
    table.addRow(mean_row);

    table.print(std::cout);
    std::cout << "\npaper reference: \"the performance improvement "
                 "of CRISP over these baselines was similar in "
                 "comparison to BOP\" (§5.1).\n";
    return 0;
}
