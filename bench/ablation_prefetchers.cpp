/**
 * @file
 * Prefetcher-baseline ablation (CRISP §5.1): the paper reports that
 * CRISP's improvement is similar whether the baseline runs the
 * best-offset prefetcher, a plain stride prefetcher, or a GHB
 * prefetcher. This bench verifies that claim in this reproduction,
 * and also reports the no-prefetcher machine.
 */

#include <array>
#include <iostream>

#include "sim/artifact_cache.h"
#include "sim/cli.h"
#include "sim/driver.h"
#include "sim/stats.h"
#include "sim/table.h"
#include "sim/thread_pool.h"
#include "workloads/workload.h"

using namespace crisp;

namespace
{

SimConfig
withPrefetchers(bool bop, bool stream, bool stride, bool ghb)
{
    SimConfig cfg = SimConfig::skylake();
    cfg.enableBop = bop;
    cfg.enableStream = stream;
    cfg.enableStride = stride;
    cfg.enableGhb = ghb;
    return cfg;
}

} // namespace

int
main(int argc, char **argv)
{
    struct Variant
    {
        const char *label;
        SimConfig cfg;
    };
    const Variant variants[] = {
        {"BOP+stream", withPrefetchers(true, true, false, false)},
        {"stride", withPrefetchers(false, false, true, false)},
        {"GHB", withPrefetchers(false, false, false, true)},
        {"none", withPrefetchers(false, false, false, false)},
    };

    CrispOptions opts;
    EvalSizes sizes{200'000, 400'000};
    unsigned jobs = benchJobsArg(argc, argv);

    std::cout << "=== §5.1 ablation: CRISP gain under different "
                 "baseline prefetchers ===\n\n";
    std::vector<std::string> headers = {"workload"};
    for (const auto &v : variants)
        headers.push_back(v.label);
    Table table(headers);

    const auto &workloads = workloadRegistry();
    const size_t n = workloads.size();
    constexpr size_t kVariants = 4;

    // Each machine variant needs its own profile-sensitive analysis,
    // but the untagged reference trace (machine-independent) is
    // shared across all four through the cache.
    // ipc[workload][variant][0 = baseline, 1 = CRISP].
    std::vector<std::array<std::array<double, 2>, kVariants>> ipc(n);
    ArtifactCache cache;
    ThreadPool pool(jobs);
    pool.parallelFor(n * kVariants * 2, [&](size_t i) {
        size_t w = i / (kVariants * 2);
        size_t k = i / 2 % kVariants;
        bool crisp = i % 2;
        const WorkloadInfo &wl = workloads[w];
        const SimConfig &cfg = variants[k].cfg;
        if (crisp) {
            auto trace = cache.taggedRefTrace(
                wl, opts, cfg, sizes.trainOps, sizes.refOps);
            SimConfig ccfg = cfg;
            ccfg.scheduler = SchedulerPolicy::CrispPriority;
            ipc[w][k][1] = runCore(*trace, ccfg).ipc();
        } else {
            auto trace =
                cache.trace(wl, InputSet::Ref, sizes.refOps);
            ipc[w][k][0] = runCore(*trace, cfg).ipc();
        }
    });

    std::vector<std::vector<double>> cols(kVariants);
    for (size_t w = 0; w < n; ++w) {
        std::vector<std::string> row = {workloads[w].name};
        for (size_t k = 0; k < kVariants; ++k) {
            double base = ipc[w][k][0];
            double speedup =
                base > 0 ? ipc[w][k][1] / base : 1.0;
            cols[k].push_back(speedup);
            row.push_back(percent(speedup - 1.0));
        }
        table.addRow(row);
    }
    std::vector<std::string> mean_row = {"geomean"};
    for (size_t k = 0; k < 4; ++k)
        mean_row.push_back(percent(geomean(cols[k]) - 1.0));
    table.addRow(mean_row);

    table.print(std::cout);
    std::cout << "\npaper reference: \"the performance improvement "
                 "of CRISP over these baselines was similar in "
                 "comparison to BOP\" (§5.1).\n";
    return 0;
}
