/**
 * @file
 * Google-benchmark microbenchmarks of the simulator's hot
 * components: branch predictors, cache lookups, DRAM timing, the age
 * matrix, the interpreter, and end-to-end core simulation speed.
 * These guard the "laptop-runnable" property of the reproduction.
 *
 * Before the microbenchmarks, the binary runs three end-to-end
 * comparisons and writes each to a JSON file for machines to read:
 *
 * - the cycle vs event core engines on a mixed workload set,
 *   asserting bit-identical statistics (BENCH_core_event.json;
 *   a divergence makes the binary exit nonzero),
 * - the parallel evaluation engine, the same evaluateAll batch
 *   serially (--jobs 1) and on all cores (BENCH_parallel.json), and
 * - sampled simulation against the serial event engine on a 2M-op
 *   trace, asserting job-count bit-identity and (on >= 8-thread
 *   machines) a >= 3x wall-clock speedup (BENCH_sampled.json).
 */

#include <benchmark/benchmark.h>

#include <cstdio>
#include <memory>
#include <string>

#include "bp/bimodal.h"
#include "bp/gshare.h"
#include "bp/tage.h"
#include "cache/cache.h"
#include "cpu/age_matrix.h"
#include "cpu/core.h"
#include "dram/controller.h"
#include "sim/driver.h"
#include "sim/sampled.h"
#include "sim/stats.h"
#include "sim/thread_pool.h"
#include "telemetry/interval.h"
#include "telemetry/pc_profiler.h"
#include "vm/interpreter.h"
#include "workloads/workload.h"

using namespace crisp;

namespace
{

uint64_t
lcg(uint64_t &s)
{
    s = s * 6364136223846793005ULL + 1442695040888963407ULL;
    return s >> 16;
}

template <typename Predictor>
void
predictorBench(benchmark::State &state)
{
    Predictor pred;
    uint64_t seed = 42;
    for (auto _ : state) {
        uint64_t pc = 0x1000 + (lcg(seed) & 0x3ff);
        bool taken = (lcg(seed) & 7) != 0;
        bool p = pred.predict(pc);
        benchmark::DoNotOptimize(p);
        pred.update(pc, taken);
    }
    state.SetItemsProcessed(state.iterations());
}

void
BM_Tage(benchmark::State &state)
{
    predictorBench<TagePredictor>(state);
}

void
BM_Gshare(benchmark::State &state)
{
    predictorBench<GsharePredictor>(state);
}

void
BM_Bimodal(benchmark::State &state)
{
    predictorBench<BimodalPredictor>(state);
}

void
BM_CacheLookup(benchmark::State &state)
{
    Cache cache("bench", CacheConfig{32 * 1024, 8, 64, 4, 16});
    uint64_t seed = 7, cycle = 0;
    for (auto _ : state) {
        uint64_t addr = (lcg(seed) & 0xffff) << 6;
        auto res = cache.lookup(addr, ++cycle);
        if (!res.hit)
            cache.fill(addr, cycle + 40);
        benchmark::DoNotOptimize(res.readyCycle);
    }
    state.SetItemsProcessed(state.iterations());
}

void
BM_DramAccess(benchmark::State &state)
{
    DramController dram;
    uint64_t seed = 9, cycle = 0;
    for (auto _ : state) {
        cycle += 50;
        uint64_t ready =
            dram.access((lcg(seed) & 0xffffff) << 6, cycle);
        benchmark::DoNotOptimize(ready);
    }
    state.SetItemsProcessed(state.iterations());
}

void
BM_AgeMatrixSelect(benchmark::State &state)
{
    unsigned slots = unsigned(state.range(0));
    AgeMatrix age(slots);
    for (unsigned s = 0; s < slots; ++s)
        age.allocate(s);
    SlotVector cand(slots);
    uint64_t seed = 3;
    for (unsigned s = 0; s < slots; ++s)
        if (lcg(seed) & 1)
            cand.set(s);
    for (auto _ : state) {
        int oldest = age.selectOldest(cand);
        benchmark::DoNotOptimize(oldest);
    }
    state.SetItemsProcessed(state.iterations());
}

void
BM_Interpreter(benchmark::State &state)
{
    auto prog = std::make_shared<Program>(
        buildPointerChase(InputSet::Train));
    for (auto _ : state) {
        Interpreter interp(prog);
        Trace t = interp.run(50'000);
        benchmark::DoNotOptimize(t.size());
    }
    state.SetItemsProcessed(state.iterations() * 50'000);
}

void
BM_CoreSimulation(benchmark::State &state)
{
    auto prog = std::make_shared<Program>(
        buildPointerChase(InputSet::Train));
    Interpreter interp(prog);
    Trace trace = interp.run(50'000);
    SimConfig cfg = SimConfig::skylake();
    cfg.tickModel =
        state.range(0) ? TickModel::Event : TickModel::Cycle;
    for (auto _ : state) {
        Core core(trace, cfg);
        CoreStats s = core.run();
        benchmark::DoNotOptimize(s.cycles);
    }
    state.SetItemsProcessed(state.iterations() * 50'000);
}

/**
 * Same core loop with the criticality-attribution hooks attached:
 * arg 0 = bare run (the disabled path — one null-pointer test per
 * hook site, must be indistinguishable from BM_CoreSimulation),
 * arg 1 = PcProfiler attached, arg 2 = profiler + interval streamer.
 * Comparing arg 0 against BM_CoreSimulation bounds the disabled-path
 * overhead; comparing the args bounds the profiling-run cost.
 */
void
BM_CoreTelemetryHooks(benchmark::State &state)
{
    auto prog = std::make_shared<Program>(
        buildPointerChase(InputSet::Train));
    Interpreter interp(prog);
    Trace trace = interp.run(50'000);
    SimConfig cfg = SimConfig::skylake();
    for (auto _ : state) {
        Core core(trace, cfg);
        PcProfiler prof;
        std::unique_ptr<IntervalStreamer> iv;
        if (state.range(0) >= 1)
            core.setProfiler(&prof);
        if (state.range(0) >= 2) {
            iv = std::make_unique<IntervalStreamer>(10'000);
            core.setInterval(iv.get());
        }
        CoreStats s = core.run();
        benchmark::DoNotOptimize(s.cycles);
        benchmark::DoNotOptimize(prof.decisionCount());
    }
    state.SetItemsProcessed(state.iterations() * 50'000);
}

BENCHMARK(BM_Tage);
BENCHMARK(BM_Gshare);
BENCHMARK(BM_Bimodal);
BENCHMARK(BM_CacheLookup);
BENCHMARK(BM_DramAccess);
BENCHMARK(BM_AgeMatrixSelect)->Arg(96)->Arg(192);
BENCHMARK(BM_Interpreter);
BENCHMARK(BM_CoreSimulation)
    ->Arg(0)
    ->Arg(1)
    ->ArgName("event");
BENCHMARK(BM_CoreTelemetryHooks)
    ->Arg(0)
    ->Arg(1)
    ->Arg(2)
    ->ArgName("hooks");

/**
 * Times one evaluateAll batch serially and on all cores, printing
 * per-phase wall time and emitting BENCH_parallel.json.
 */
void
parallelEngineBench()
{
    SimConfig cfg = SimConfig::skylake();
    CrispOptions opts;
    EvalSizes sizes{60'000, 100'000};
    std::vector<WorkloadInfo> wls;
    for (const auto &wl : workloadRegistry()) {
        wls.push_back(wl);
        if (wls.size() == 4)
            break;
    }
    unsigned jobs = ThreadPool::defaultJobs();

    std::printf("=== parallel evaluation engine (%zu workloads, "
                "%u hardware threads) ===\n",
                wls.size(), jobs);

    Timer t_serial;
    auto serial = evaluateAll(wls, cfg, opts, sizes, /*jobs=*/1);
    double serial_s = t_serial.seconds();
    std::printf("  phase serial   (--jobs 1): %7.2f s\n", serial_s);

    Timer t_par;
    auto parallel = evaluateAll(wls, cfg, opts, sizes, jobs);
    double parallel_s = t_par.seconds();
    std::printf("  phase parallel (--jobs %u): %7.2f s\n", jobs,
                parallel_s);

    bool identical = serial.size() == parallel.size();
    for (size_t i = 0; identical && i < serial.size(); ++i)
        identical = serial[i].ipcBaseline ==
                        parallel[i].ipcBaseline &&
                    serial[i].ipcCrisp == parallel[i].ipcCrisp;
    double speedup = parallel_s > 0 ? serial_s / parallel_s : 0.0;
    std::printf("  speedup %.2fx, results %s\n\n", speedup,
                identical ? "identical" : "DIVERGED");

    if (FILE *f = std::fopen("BENCH_parallel.json", "w")) {
        std::fprintf(f,
                     "{\n"
                     "  \"workloads\": %zu,\n"
                     "  \"jobs\": %u,\n"
                     "  \"serial_seconds\": %.3f,\n"
                     "  \"parallel_seconds\": %.3f,\n"
                     "  \"speedup\": %.3f,\n"
                     "  \"identical\": %s\n"
                     "}\n",
                     wls.size(), jobs, serial_s, parallel_s,
                     speedup, identical ? "true" : "false");
        std::fclose(f);
        std::printf("  wrote BENCH_parallel.json\n\n");
    }
}

/**
 * Times the cycle vs event core engines over a mixed workload set
 * (serial, one Core at a time), checks the two produce identical
 * statistics, prints a per-workload table and writes the comparison
 * to BENCH_core_event.json.
 * @return true when every workload's stats matched bit-for-bit.
 */
bool
coreEngineBench()
{
    const char *names[] = {"pointer_chase", "mcf", "lbm",
                           "omnetpp", "deepsjeng"};
    const uint64_t ops = 400'000;

    std::printf("=== core tick engines (cycle vs event, "
                "%llu ops each, --jobs 1) ===\n",
                static_cast<unsigned long long>(ops));

    bool all_equal = true;
    double best_speedup = 0.0;
    std::string rows;
    for (const char *name : names) {
        const WorkloadInfo *wl = findWorkload(name);
        if (!wl)
            continue;
        auto prog =
            std::make_shared<Program>(wl->build(InputSet::Ref));
        Interpreter interp(prog);
        Trace trace = interp.run(ops);

        SimConfig cyc_cfg = SimConfig::skylake();
        cyc_cfg.tickModel = TickModel::Cycle;
        Timer t_cycle;
        CoreStats cyc = runCore(trace, cyc_cfg);
        double cycle_s = t_cycle.seconds();

        SimConfig evt_cfg = SimConfig::skylake();
        evt_cfg.tickModel = TickModel::Event;
        Timer t_event;
        CoreStats evt = runCore(trace, evt_cfg);
        double event_s = t_event.seconds();

        bool equal =
            cyc.cycles == evt.cycles &&
            cyc.retired == evt.retired &&
            cyc.issued == evt.issued &&
            cyc.issuedPrioritized == evt.issuedPrioritized &&
            cyc.robHeadStallCycles == evt.robHeadStallCycles &&
            cyc.robHeadLoadStallCycles ==
                evt.robHeadLoadStallCycles &&
            cyc.frontend.branchStallCycles ==
                evt.frontend.branchStallCycles &&
            cyc.headStallByStatic == evt.headStallByStatic &&
            cyc.issueWaitByStatic == evt.issueWaitByStatic;
        all_equal = all_equal && equal;

        double speedup = event_s > 0 ? cycle_s / event_s : 0.0;
        if (speedup > best_speedup)
            best_speedup = speedup;
        std::printf("  %-14s cycle %6.2f s  event %6.2f s  "
                    "%5.2fx  stats %s\n",
                    name, cycle_s, event_s, speedup,
                    equal ? "identical" : "DIVERGED");

        char row[256];
        std::snprintf(row, sizeof(row),
                      "%s    {\"workload\": \"%s\", "
                      "\"cycle_seconds\": %.3f, "
                      "\"event_seconds\": %.3f, "
                      "\"speedup\": %.3f, \"identical\": %s}",
                      rows.empty() ? "" : ",\n", name, cycle_s,
                      event_s, speedup, equal ? "true" : "false");
        rows += row;
    }

    std::printf("  best speedup %.2fx, stats %s\n\n", best_speedup,
                all_equal ? "identical" : "DIVERGED");

    if (FILE *f = std::fopen("BENCH_core_event.json", "w")) {
        std::fprintf(f,
                     "{\n"
                     "  \"ops\": %llu,\n"
                     "  \"best_speedup\": %.3f,\n"
                     "  \"identical\": %s,\n"
                     "  \"workloads\": [\n%s\n  ]\n"
                     "}\n",
                     static_cast<unsigned long long>(ops), best_speedup,
                     all_equal ? "true" : "false", rows.c_str());
        std::fclose(f);
        std::printf("  wrote BENCH_core_event.json\n\n");
    }
    return all_equal;
}

/**
 * Times sampled simulation against the serial event engine on a
 * 2M-op trace: one serial full run, then the end-to-end sampled
 * pipeline (functional warm pass + parallel intervals) at --jobs 8,
 * plus a --jobs 1 re-dispatch from the same warm state to check
 * bit-identity across job counts. Writes BENCH_sampled.json.
 * @return false on a job-count divergence, or — on machines with
 *         >= 8 hardware threads — when the speedup is below 3x.
 */
bool
sampledBench()
{
    const uint64_t ops = 2'000'000;
    const uint64_t interval_ops = 100'000;
    const uint64_t warmup_ops = 50'000;
    const unsigned jobs = 8;
    const unsigned hw = ThreadPool::defaultJobs();

    const WorkloadInfo *wl = findWorkload("mcf");
    if (!wl)
        return false;
    auto prog = std::make_shared<Program>(wl->build(InputSet::Ref));
    Interpreter interp(prog);
    Trace trace = interp.run(ops);
    SimConfig cfg = SimConfig::skylake();

    std::printf("=== sampled simulation (mcf, %llu ops, "
                "--sample %llu:%llu, %u hardware threads) ===\n",
                static_cast<unsigned long long>(ops),
                static_cast<unsigned long long>(interval_ops),
                static_cast<unsigned long long>(warmup_ops), hw);

    Timer t_serial;
    CoreStats full = runCore(trace, cfg);
    double serial_s = t_serial.seconds();
    std::printf("  serial event engine        : %7.2f s\n",
                serial_s);

    // End-to-end sampled cost: warm pass plus parallel intervals.
    SimConfig scfg = cfg;
    scfg.sampleOps = interval_ops;
    scfg.sampleWarmupOps = warmup_ops;
    scfg.sampleJobs = jobs;
    Timer t_sampled;
    SampledWarmState warm = buildWarmState(trace, scfg);
    SampledResult par = runCoreSampled(trace, scfg, &warm);
    double sampled_s = t_sampled.seconds();
    std::printf("  sampled (--jobs %u)         : %7.2f s\n", jobs,
                sampled_s);

    // Job-count determinism: re-dispatch the same warm state
    // serially; every stitched counter must match bit-for-bit.
    scfg.sampleJobs = 1;
    SampledResult ser = runCoreSampled(trace, scfg, &warm);
    bool identical =
        par.total.cycles == ser.total.cycles &&
        par.total.retired == ser.total.retired &&
        par.total.issued == ser.total.issued &&
        par.total.robHeadStallCycles ==
            ser.total.robHeadStallCycles &&
        par.total.dram.totalLatency == ser.total.dram.totalLatency &&
        par.total.headStallByStatic == ser.total.headStallByStatic &&
        par.total.issueWaitByStatic == ser.total.issueWaitByStatic;

    double speedup = sampled_s > 0 ? serial_s / sampled_s : 0.0;
    double ipc_err =
        full.ipc() > 0
            ? (par.total.ipc() / full.ipc() - 1.0) * 100.0
            : 0.0;
    std::printf("  speedup %.2fx, IPC error %+.3f%%, job counts %s"
                "\n\n",
                speedup, ipc_err,
                identical ? "identical" : "DIVERGED");

    if (FILE *f = std::fopen("BENCH_sampled.json", "w")) {
        std::fprintf(f,
                     "{\n"
                     "  \"workload\": \"mcf\",\n"
                     "  \"ops\": %llu,\n"
                     "  \"interval_ops\": %llu,\n"
                     "  \"warmup_ops\": %llu,\n"
                     "  \"jobs\": %u,\n"
                     "  \"hardware_threads\": %u,\n"
                     "  \"serial_seconds\": %.3f,\n"
                     "  \"sampled_seconds\": %.3f,\n"
                     "  \"speedup\": %.3f,\n"
                     "  \"ipc_error_pct\": %.4f,\n"
                     "  \"identical\": %s\n"
                     "}\n",
                     static_cast<unsigned long long>(ops),
                     static_cast<unsigned long long>(interval_ops),
                     static_cast<unsigned long long>(warmup_ops),
                     jobs, hw, serial_s, sampled_s, speedup, ipc_err,
                     identical ? "true" : "false");
        std::fclose(f);
        std::printf("  wrote BENCH_sampled.json\n\n");
    }
    // The 3x wall-clock gate only binds where 8 interval workers can
    // actually run concurrently; determinism always binds.
    return identical && (hw < 8 || speedup >= 3.0);
}

} // namespace

int
main(int argc, char **argv)
{
    bool engines_equal = coreEngineBench();
    parallelEngineBench();
    bool sampled_ok = sampledBench();
    benchmark::Initialize(&argc, argv);
    benchmark::RunSpecifiedBenchmarks();
    benchmark::Shutdown();
    // CI runs this binary as a perf smoke test: a cross-engine stats
    // divergence (or a sampled job-count divergence / missed speedup
    // gate) fails the job even though the benchmarks completed.
    return engines_equal && sampled_ok ? 0 : 1;
}
