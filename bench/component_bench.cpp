/**
 * @file
 * Google-benchmark microbenchmarks of the simulator's hot
 * components: branch predictors, cache lookups, DRAM timing, the age
 * matrix, the interpreter, and end-to-end core simulation speed.
 * These guard the "laptop-runnable" property of the reproduction.
 *
 * Before the microbenchmarks, the binary times the parallel
 * evaluation engine end-to-end — the same evaluateAll batch serially
 * (--jobs 1) and on all cores — prints per-phase wall time, and
 * writes the comparison to BENCH_parallel.json for machines to read.
 */

#include <benchmark/benchmark.h>

#include <cstdio>
#include <memory>

#include "bp/bimodal.h"
#include "bp/gshare.h"
#include "bp/tage.h"
#include "cache/cache.h"
#include "cpu/age_matrix.h"
#include "cpu/core.h"
#include "dram/controller.h"
#include "sim/driver.h"
#include "sim/stats.h"
#include "sim/thread_pool.h"
#include "vm/interpreter.h"
#include "workloads/workload.h"

using namespace crisp;

namespace
{

uint64_t
lcg(uint64_t &s)
{
    s = s * 6364136223846793005ULL + 1442695040888963407ULL;
    return s >> 16;
}

template <typename Predictor>
void
predictorBench(benchmark::State &state)
{
    Predictor pred;
    uint64_t seed = 42;
    for (auto _ : state) {
        uint64_t pc = 0x1000 + (lcg(seed) & 0x3ff);
        bool taken = (lcg(seed) & 7) != 0;
        bool p = pred.predict(pc);
        benchmark::DoNotOptimize(p);
        pred.update(pc, taken);
    }
    state.SetItemsProcessed(state.iterations());
}

void
BM_Tage(benchmark::State &state)
{
    predictorBench<TagePredictor>(state);
}

void
BM_Gshare(benchmark::State &state)
{
    predictorBench<GsharePredictor>(state);
}

void
BM_Bimodal(benchmark::State &state)
{
    predictorBench<BimodalPredictor>(state);
}

void
BM_CacheLookup(benchmark::State &state)
{
    Cache cache("bench", CacheConfig{32 * 1024, 8, 64, 4, 16});
    uint64_t seed = 7, cycle = 0;
    for (auto _ : state) {
        uint64_t addr = (lcg(seed) & 0xffff) << 6;
        auto res = cache.lookup(addr, ++cycle);
        if (!res.hit)
            cache.fill(addr, cycle + 40);
        benchmark::DoNotOptimize(res.readyCycle);
    }
    state.SetItemsProcessed(state.iterations());
}

void
BM_DramAccess(benchmark::State &state)
{
    DramController dram;
    uint64_t seed = 9, cycle = 0;
    for (auto _ : state) {
        cycle += 50;
        uint64_t ready =
            dram.access((lcg(seed) & 0xffffff) << 6, cycle);
        benchmark::DoNotOptimize(ready);
    }
    state.SetItemsProcessed(state.iterations());
}

void
BM_AgeMatrixSelect(benchmark::State &state)
{
    unsigned slots = unsigned(state.range(0));
    AgeMatrix age(slots);
    for (unsigned s = 0; s < slots; ++s)
        age.allocate(s);
    SlotVector cand(slots);
    uint64_t seed = 3;
    for (unsigned s = 0; s < slots; ++s)
        if (lcg(seed) & 1)
            cand.set(s);
    for (auto _ : state) {
        int oldest = age.selectOldest(cand);
        benchmark::DoNotOptimize(oldest);
    }
    state.SetItemsProcessed(state.iterations());
}

void
BM_Interpreter(benchmark::State &state)
{
    auto prog = std::make_shared<Program>(
        buildPointerChase(InputSet::Train));
    for (auto _ : state) {
        Interpreter interp(prog);
        Trace t = interp.run(50'000);
        benchmark::DoNotOptimize(t.size());
    }
    state.SetItemsProcessed(state.iterations() * 50'000);
}

void
BM_CoreSimulation(benchmark::State &state)
{
    auto prog = std::make_shared<Program>(
        buildPointerChase(InputSet::Train));
    Interpreter interp(prog);
    Trace trace = interp.run(50'000);
    SimConfig cfg = SimConfig::skylake();
    for (auto _ : state) {
        Core core(trace, cfg);
        CoreStats s = core.run();
        benchmark::DoNotOptimize(s.cycles);
    }
    state.SetItemsProcessed(state.iterations() * 50'000);
}

BENCHMARK(BM_Tage);
BENCHMARK(BM_Gshare);
BENCHMARK(BM_Bimodal);
BENCHMARK(BM_CacheLookup);
BENCHMARK(BM_DramAccess);
BENCHMARK(BM_AgeMatrixSelect)->Arg(96)->Arg(192);
BENCHMARK(BM_Interpreter);
BENCHMARK(BM_CoreSimulation);

/**
 * Times one evaluateAll batch serially and on all cores, printing
 * per-phase wall time and emitting BENCH_parallel.json.
 */
void
parallelEngineBench()
{
    SimConfig cfg = SimConfig::skylake();
    CrispOptions opts;
    EvalSizes sizes{60'000, 100'000};
    std::vector<WorkloadInfo> wls;
    for (const auto &wl : workloadRegistry()) {
        wls.push_back(wl);
        if (wls.size() == 4)
            break;
    }
    unsigned jobs = ThreadPool::defaultJobs();

    std::printf("=== parallel evaluation engine (%zu workloads, "
                "%u hardware threads) ===\n",
                wls.size(), jobs);

    Timer t_serial;
    auto serial = evaluateAll(wls, cfg, opts, sizes, /*jobs=*/1);
    double serial_s = t_serial.seconds();
    std::printf("  phase serial   (--jobs 1): %7.2f s\n", serial_s);

    Timer t_par;
    auto parallel = evaluateAll(wls, cfg, opts, sizes, jobs);
    double parallel_s = t_par.seconds();
    std::printf("  phase parallel (--jobs %u): %7.2f s\n", jobs,
                parallel_s);

    bool identical = serial.size() == parallel.size();
    for (size_t i = 0; identical && i < serial.size(); ++i)
        identical = serial[i].ipcBaseline ==
                        parallel[i].ipcBaseline &&
                    serial[i].ipcCrisp == parallel[i].ipcCrisp;
    double speedup = parallel_s > 0 ? serial_s / parallel_s : 0.0;
    std::printf("  speedup %.2fx, results %s\n\n", speedup,
                identical ? "identical" : "DIVERGED");

    if (FILE *f = std::fopen("BENCH_parallel.json", "w")) {
        std::fprintf(f,
                     "{\n"
                     "  \"workloads\": %zu,\n"
                     "  \"jobs\": %u,\n"
                     "  \"serial_seconds\": %.3f,\n"
                     "  \"parallel_seconds\": %.3f,\n"
                     "  \"speedup\": %.3f,\n"
                     "  \"identical\": %s\n"
                     "}\n",
                     wls.size(), jobs, serial_s, parallel_s,
                     speedup, identical ? "true" : "false");
        std::fclose(f);
        std::printf("  wrote BENCH_parallel.json\n\n");
    }
}

} // namespace

int
main(int argc, char **argv)
{
    parallelEngineBench();
    benchmark::Initialize(&argc, argv);
    benchmark::RunSpecifiedBenchmarks();
    benchmark::Shutdown();
    return 0;
}
