/**
 * @file
 * Google-benchmark microbenchmarks of the simulator's hot
 * components: branch predictors, cache lookups, DRAM timing, the age
 * matrix, the interpreter, and end-to-end core simulation speed.
 * These guard the "laptop-runnable" property of the reproduction.
 *
 * Before the microbenchmarks, the binary runs four end-to-end
 * comparisons and writes each to a JSON file for machines to read:
 *
 * - the cycle vs event core engines on a mixed workload set,
 *   asserting bit-identical statistics (BENCH_core_event.json;
 *   a divergence makes the binary exit nonzero),
 * - the parallel evaluation engine, the same evaluateAll batch
 *   serially (--jobs 1) and on all cores (BENCH_parallel.json),
 * - sampled simulation against the serial event engine on a 2M-op
 *   trace, asserting job-count bit-identity and (on >= 8-thread
 *   machines) a >= 3x wall-clock speedup (BENCH_sampled.json), and
 * - the runtime span tracer attached to a sampled run, asserting
 *   bit-identical results and attached wall time within noise of
 *   detached (BENCH_runtime_trace.json).
 */

#include <benchmark/benchmark.h>

#include <array>
#include <cstdio>
#include <filesystem>
#include <memory>
#include <string>
#include <unordered_map>

#include "bp/bimodal.h"
#include "bp/gshare.h"
#include "bp/tage.h"
#include "cache/cache.h"
#include "cache/hierarchy.h"
#include "cpu/age_matrix.h"
#include "cpu/core.h"
#include "dram/controller.h"
#include "ibda/ibda.h"
#include "sim/driver.h"
#include "sim/sampled.h"
#include "sim/stats.h"
#include "sim/thread_pool.h"
#include "sim/warm_store.h"
#include "telemetry/interval.h"
#include "telemetry/pc_profiler.h"
#include "telemetry/runtime_trace.h"
#include "vm/interpreter.h"
#include "workloads/workload.h"

using namespace crisp;

namespace
{

uint64_t
lcg(uint64_t &s)
{
    s = s * 6364136223846793005ULL + 1442695040888963407ULL;
    return s >> 16;
}

template <typename Predictor>
void
predictorBench(benchmark::State &state)
{
    Predictor pred;
    uint64_t seed = 42;
    for (auto _ : state) {
        uint64_t pc = 0x1000 + (lcg(seed) & 0x3ff);
        bool taken = (lcg(seed) & 7) != 0;
        bool p = pred.predict(pc);
        benchmark::DoNotOptimize(p);
        pred.update(pc, taken);
    }
    state.SetItemsProcessed(state.iterations());
}

void
BM_Tage(benchmark::State &state)
{
    predictorBench<TagePredictor>(state);
}

void
BM_Gshare(benchmark::State &state)
{
    predictorBench<GsharePredictor>(state);
}

void
BM_Bimodal(benchmark::State &state)
{
    predictorBench<BimodalPredictor>(state);
}

void
BM_CacheLookup(benchmark::State &state)
{
    Cache cache("bench", CacheConfig{32 * 1024, 8, 64, 4, 16});
    uint64_t seed = 7, cycle = 0;
    for (auto _ : state) {
        uint64_t addr = (lcg(seed) & 0xffff) << 6;
        auto res = cache.lookup(addr, ++cycle);
        if (!res.hit)
            cache.fill(addr, cycle + 40);
        benchmark::DoNotOptimize(res.readyCycle);
    }
    state.SetItemsProcessed(state.iterations());
}

void
BM_DramAccess(benchmark::State &state)
{
    DramController dram;
    uint64_t seed = 9, cycle = 0;
    for (auto _ : state) {
        cycle += 50;
        uint64_t ready =
            dram.access((lcg(seed) & 0xffffff) << 6, cycle);
        benchmark::DoNotOptimize(ready);
    }
    state.SetItemsProcessed(state.iterations());
}

void
BM_AgeMatrixSelect(benchmark::State &state)
{
    unsigned slots = unsigned(state.range(0));
    AgeMatrix age(slots);
    for (unsigned s = 0; s < slots; ++s)
        age.allocate(s);
    SlotVector cand(slots);
    uint64_t seed = 3;
    for (unsigned s = 0; s < slots; ++s)
        if (lcg(seed) & 1)
            cand.set(s);
    for (auto _ : state) {
        int oldest = age.selectOldest(cand);
        benchmark::DoNotOptimize(oldest);
    }
    state.SetItemsProcessed(state.iterations());
}

void
BM_Interpreter(benchmark::State &state)
{
    auto prog = std::make_shared<Program>(
        buildPointerChase(InputSet::Train));
    for (auto _ : state) {
        Interpreter interp(prog);
        Trace t = interp.run(50'000);
        benchmark::DoNotOptimize(t.size());
    }
    state.SetItemsProcessed(state.iterations() * 50'000);
}

void
BM_CoreSimulation(benchmark::State &state)
{
    auto prog = std::make_shared<Program>(
        buildPointerChase(InputSet::Train));
    Interpreter interp(prog);
    Trace trace = interp.run(50'000);
    SimConfig cfg = SimConfig::skylake();
    cfg.tickModel =
        state.range(0) ? TickModel::Event : TickModel::Cycle;
    for (auto _ : state) {
        Core core(trace, cfg);
        CoreStats s = core.run();
        benchmark::DoNotOptimize(s.cycles);
    }
    state.SetItemsProcessed(state.iterations() * 50'000);
}

/**
 * Same core loop with the criticality-attribution hooks attached:
 * arg 0 = bare run (the disabled path — one null-pointer test per
 * hook site, must be indistinguishable from BM_CoreSimulation),
 * arg 1 = PcProfiler attached, arg 2 = profiler + interval streamer.
 * Comparing arg 0 against BM_CoreSimulation bounds the disabled-path
 * overhead; comparing the args bounds the profiling-run cost.
 */
void
BM_CoreTelemetryHooks(benchmark::State &state)
{
    auto prog = std::make_shared<Program>(
        buildPointerChase(InputSet::Train));
    Interpreter interp(prog);
    Trace trace = interp.run(50'000);
    SimConfig cfg = SimConfig::skylake();
    for (auto _ : state) {
        Core core(trace, cfg);
        PcProfiler prof;
        std::unique_ptr<IntervalStreamer> iv;
        if (state.range(0) >= 1)
            core.setProfiler(&prof);
        if (state.range(0) >= 2) {
            iv = std::make_unique<IntervalStreamer>(10'000);
            core.setInterval(iv.get());
        }
        CoreStats s = core.run();
        benchmark::DoNotOptimize(s.cycles);
        benchmark::DoNotOptimize(prof.decisionCount());
    }
    state.SetItemsProcessed(state.iterations() * 50'000);
}

BENCHMARK(BM_Tage);
BENCHMARK(BM_Gshare);
BENCHMARK(BM_Bimodal);
BENCHMARK(BM_CacheLookup);
BENCHMARK(BM_DramAccess);
BENCHMARK(BM_AgeMatrixSelect)->Arg(96)->Arg(192);
BENCHMARK(BM_Interpreter);
BENCHMARK(BM_CoreSimulation)
    ->Arg(0)
    ->Arg(1)
    ->ArgName("event");
BENCHMARK(BM_CoreTelemetryHooks)
    ->Arg(0)
    ->Arg(1)
    ->Arg(2)
    ->ArgName("hooks");

/**
 * Raw runtime-tracer hook-site cost: arg 0 = detached (the hot-path
 * null test every instrumented scope pays when no tracer is active,
 * must be nanoseconds), arg 1 = attached (span timestamping plus the
 * slab append; once the slab cap is hit the excess drops on the
 * lock-free exhausted path, so large iteration counts stay honest).
 */
void
BM_RuntimeTraceHooks(benchmark::State &state)
{
    std::unique_ptr<RuntimeTracer> tracer;
    if (state.range(0)) {
        tracer = std::make_unique<RuntimeTracer>();
        tracer->activate();
    }
    for (auto _ : state) {
        TraceSpan span("bench", "hook");
        benchmark::DoNotOptimize(span.on());
    }
    if (tracer)
        tracer->deactivate();
    state.SetItemsProcessed(state.iterations());
}

BENCHMARK(BM_RuntimeTraceHooks)
    ->Arg(0)
    ->Arg(1)
    ->ArgName("attached");

/**
 * Times one evaluateAll batch serially and on all cores, printing
 * per-phase wall time and emitting BENCH_parallel.json.
 */
void
parallelEngineBench()
{
    SimConfig cfg = SimConfig::skylake();
    CrispOptions opts;
    EvalSizes sizes{60'000, 100'000};
    std::vector<WorkloadInfo> wls;
    for (const auto &wl : workloadRegistry()) {
        wls.push_back(wl);
        if (wls.size() == 4)
            break;
    }
    unsigned jobs = ThreadPool::defaultJobs();

    std::printf("=== parallel evaluation engine (%zu workloads, "
                "%u hardware threads) ===\n",
                wls.size(), jobs);

    Timer t_serial;
    auto serial = evaluateAll(wls, cfg, opts, sizes, /*jobs=*/1);
    double serial_s = t_serial.seconds();
    std::printf("  phase serial   (--jobs 1): %7.2f s\n", serial_s);

    Timer t_par;
    auto parallel = evaluateAll(wls, cfg, opts, sizes, jobs);
    double parallel_s = t_par.seconds();
    std::printf("  phase parallel (--jobs %u): %7.2f s\n", jobs,
                parallel_s);

    bool identical = serial.size() == parallel.size();
    for (size_t i = 0; identical && i < serial.size(); ++i)
        identical = serial[i].ipcBaseline ==
                        parallel[i].ipcBaseline &&
                    serial[i].ipcCrisp == parallel[i].ipcCrisp;
    double speedup = parallel_s > 0 ? serial_s / parallel_s : 0.0;
    std::printf("  speedup %.2fx, results %s\n\n", speedup,
                identical ? "identical" : "DIVERGED");

    if (FILE *f = std::fopen("BENCH_parallel.json", "w")) {
        std::fprintf(f,
                     "{\n"
                     "  \"workloads\": %zu,\n"
                     "  \"jobs\": %u,\n"
                     "  \"serial_seconds\": %.3f,\n"
                     "  \"parallel_seconds\": %.3f,\n"
                     "  \"speedup\": %.3f,\n"
                     "  \"identical\": %s\n"
                     "}\n",
                     wls.size(), jobs, serial_s, parallel_s,
                     speedup, identical ? "true" : "false");
        std::fclose(f);
        std::printf("  wrote BENCH_parallel.json\n\n");
    }
}

/**
 * Times the cycle vs event core engines over a mixed workload set
 * (serial, one Core at a time), checks the two produce identical
 * statistics, prints a per-workload table and writes the comparison
 * to BENCH_core_event.json.
 * @return true when every workload's stats matched bit-for-bit.
 */
bool
coreEngineBench()
{
    const char *names[] = {"pointer_chase", "mcf", "lbm",
                           "omnetpp", "deepsjeng"};
    const uint64_t ops = 400'000;

    std::printf("=== core tick engines (cycle vs event, "
                "%llu ops each, --jobs 1) ===\n",
                static_cast<unsigned long long>(ops));

    bool all_equal = true;
    double best_speedup = 0.0;
    std::string rows;
    for (const char *name : names) {
        const WorkloadInfo *wl = findWorkload(name);
        if (!wl)
            continue;
        auto prog =
            std::make_shared<Program>(wl->build(InputSet::Ref));
        Interpreter interp(prog);
        Trace trace = interp.run(ops);

        SimConfig cyc_cfg = SimConfig::skylake();
        cyc_cfg.tickModel = TickModel::Cycle;
        Timer t_cycle;
        CoreStats cyc = runCore(trace, cyc_cfg);
        double cycle_s = t_cycle.seconds();

        SimConfig evt_cfg = SimConfig::skylake();
        evt_cfg.tickModel = TickModel::Event;
        Timer t_event;
        CoreStats evt = runCore(trace, evt_cfg);
        double event_s = t_event.seconds();

        bool equal =
            cyc.cycles == evt.cycles &&
            cyc.retired == evt.retired &&
            cyc.issued == evt.issued &&
            cyc.issuedPrioritized == evt.issuedPrioritized &&
            cyc.robHeadStallCycles == evt.robHeadStallCycles &&
            cyc.robHeadLoadStallCycles ==
                evt.robHeadLoadStallCycles &&
            cyc.frontend.branchStallCycles ==
                evt.frontend.branchStallCycles &&
            cyc.headStallByStatic == evt.headStallByStatic &&
            cyc.issueWaitByStatic == evt.issueWaitByStatic;
        all_equal = all_equal && equal;

        double speedup = event_s > 0 ? cycle_s / event_s : 0.0;
        if (speedup > best_speedup)
            best_speedup = speedup;
        std::printf("  %-14s cycle %6.2f s  event %6.2f s  "
                    "%5.2fx  stats %s\n",
                    name, cycle_s, event_s, speedup,
                    equal ? "identical" : "DIVERGED");

        char row[256];
        std::snprintf(row, sizeof(row),
                      "%s    {\"workload\": \"%s\", "
                      "\"cycle_seconds\": %.3f, "
                      "\"event_seconds\": %.3f, "
                      "\"speedup\": %.3f, \"identical\": %s}",
                      rows.empty() ? "" : ",\n", name, cycle_s,
                      event_s, speedup, equal ? "true" : "false");
        rows += row;
    }

    std::printf("  best speedup %.2fx, stats %s\n\n", best_speedup,
                all_equal ? "identical" : "DIVERGED");

    if (FILE *f = std::fopen("BENCH_core_event.json", "w")) {
        std::fprintf(f,
                     "{\n"
                     "  \"ops\": %llu,\n"
                     "  \"best_speedup\": %.3f,\n"
                     "  \"identical\": %s,\n"
                     "  \"workloads\": [\n%s\n  ]\n"
                     "}\n",
                     static_cast<unsigned long long>(ops), best_speedup,
                     all_equal ? "true" : "false", rows.c_str());
        std::fclose(f);
        std::printf("  wrote BENCH_core_event.json\n\n");
    }
    return all_equal;
}

/**
 * The PR 6 warm pass, preserved verbatim against the *public*
 * (stat-counting) component APIs: counted hierarchy calls, an
 * std::unordered_map store-forwarding window, copy-captured
 * snapshots. This is the baseline the warm fast path (warmLoad /
 * warmStore / warmIfetch / StoreIndexMap; DESIGN.md §14) is gated
 * against — it must keep producing content-identical snapshots, so
 * the comparison also re-verifies that skipping statistics changed
 * nothing the snapshots carry.
 */
class ReferenceWarmMachine
{
  public:
    static constexpr uint64_t kPseudoCyclesPerOp = 2;

    explicit ReferenceWarmMachine(const SimConfig &cfg)
        : mem_(cfg), dir_(makeWarmDirectionPredictor(cfg)),
          btb_(cfg.btbEntries, 4), ras_(cfg.rasEntries), ibda_(cfg),
          robSize_(cfg.robSize)
    {
    }

    void step(const MicroOp &op, uint64_t idx)
    {
        uint64_t cycle = idx * kPseudoCyclesPerOp;
        uint64_t line = (op.pc + op.instSize - 1) >> 6;
        if (line != curLine_) {
            mem_.ifetch(op.pc, cycle);
            curLine_ = line;
        }
        if (op.isControl())
            refControl(op);
        if (op.cls == OpClass::Load) {
            auto it = lastStoreIdx_.find(op.effAddr);
            if (it != lastStoreIdx_.end() &&
                idx - it->second <= robSize_) {
                ibda_.onLoadComplete(op.pc, false);
            } else {
                auto res = mem_.load(op.effAddr, op.pc, cycle);
                ibda_.onLoadComplete(op.pc, res.llcMiss());
            }
        } else if (op.isStore()) {
            mem_.store(op.effAddr, op.pc, cycle);
            lastStoreIdx_[op.effAddr] = idx;
        } else if (op.cls == OpClass::Prefetch) {
            mem_.prefetchData(op.effAddr, cycle);
        }
        ibda_.onDispatch(op, lastWriterPc_);
        if (op.dst != kNoReg)
            lastWriterPc_[size_t(op.dst)] = op.pc;
    }

    MachineSnapshot snapshot(uint64_t idx) const
    {
        return MachineSnapshot(idx, idx * kPseudoCyclesPerOp, mem_,
                               dir_->clone(), btb_, ras_,
                               std::make_unique<Ibda>(ibda_),
                               lastWriterPc_);
    }

  private:
    void refControl(const MicroOp &op)
    {
        uint64_t fallthrough = op.pc + op.instSize;
        switch (op.cls) {
          case OpClass::Branch: {
            (void)dir_->predict(op.pc);
            dir_->update(op.pc, op.taken);
            if (op.taken) {
                uint64_t target;
                (void)btb_.lookup(op.pc, target);
                btb_.update(op.pc, op.nextPc);
            }
            break;
          }
          case OpClass::Jump:
            btb_.update(op.pc, op.nextPc);
            break;
          case OpClass::Call:
            ras_.push(fallthrough);
            btb_.update(op.pc, op.nextPc);
            break;
          case OpClass::Ret:
            (void)ras_.pop();
            break;
          case OpClass::IndirectJump: {
            uint64_t target;
            (void)btb_.lookup(op.pc, target);
            btb_.update(op.pc, op.nextPc);
            break;
          }
          default:
            break;
        }
    }

    Hierarchy mem_;
    std::unique_ptr<DirectionPredictor> dir_;
    Btb btb_;
    Ras ras_;
    Ibda ibda_;
    unsigned robSize_;
    std::unordered_map<uint64_t, uint64_t> lastStoreIdx_;
    std::array<uint64_t, kNumArchRegs> lastWriterPc_{};
    uint64_t curLine_ = ~0ULL;
};

/** Runs the PR 6-style warm pass over @p trace. */
SampledWarmState
buildReferenceWarmState(const Trace &trace, const SimConfig &cfg)
{
    const uint64_t n = cfg.sampleOps;
    const uint64_t w = cfg.sampleWarmupOps;
    const uint64_t size = trace.size();
    const uint64_t num_intervals = (size + n - 1) / n;

    SampledWarmState warm;
    warm.intervalOps = n;
    warm.warmupOps = w;
    warm.snapshots.reserve(size_t(num_intervals));

    ReferenceWarmMachine machine(cfg);
    uint64_t next_k = 0;
    for (uint64_t idx = 0; idx < size && next_k < num_intervals;
         ++idx) {
        while (next_k < num_intervals) {
            uint64_t boundary = next_k * n;
            uint64_t pos = boundary > w ? boundary - w : 0;
            if (pos != idx)
                break;
            warm.snapshots.push_back(machine.snapshot(idx));
            ++next_k;
        }
        if (next_k == num_intervals)
            break;
        machine.step(trace.ops[size_t(idx)], idx);
    }
    return warm;
}

/** Bit-equality of the stitched counters two sampled runs produced. */
bool
sampledTotalsEqual(const SampledResult &a, const SampledResult &b)
{
    return a.total.cycles == b.total.cycles &&
           a.total.retired == b.total.retired &&
           a.total.issued == b.total.issued &&
           a.total.issuedPrioritized == b.total.issuedPrioritized &&
           a.total.robHeadStallCycles ==
               b.total.robHeadStallCycles &&
           a.total.dram.totalLatency == b.total.dram.totalLatency &&
           a.total.headStallByStatic == b.total.headStallByStatic &&
           a.total.issueWaitByStatic == b.total.issueWaitByStatic;
}

/**
 * Times sampled simulation against the serial event engine on a
 * 2M-op trace: one serial full run, the PR 6 barrier baseline
 * (reference warm pass, then parallel intervals), and the PR 7
 * pipelined schedule (warm pass overlapped with intervals), at
 * --jobs 8. Also times the warm passes head-to-head, exercises the
 * persistent artifact store cold and warm, and re-dispatches at
 * --jobs 1 to check bit-identity across job counts and schedules.
 * Writes BENCH_sampled.json with the phase breakdown.
 * @return false on any divergence; on machines with >= 8 hardware
 *         threads, also when a speedup gate fails (sampled >= 3x
 *         serial, pipelined >= 1.4x barrier, fast warm pass >= 1.2x
 *         the in-tree PR 6 reference, artifact-hit warm phase < 5%
 *         of cold). The warm gate is conservative: the reference
 *         links today's components, so shared wins (mask-based set
 *         indexing, the TAGE ring fix) speed it up too; measured
 *         against the actual PR 6 build the fast path is ~1.4x.
 */
bool
sampledBench()
{
    const uint64_t ops = 2'000'000;
    const uint64_t interval_ops = 100'000;
    const uint64_t warmup_ops = 50'000;
    const unsigned jobs = 8;
    const unsigned hw = ThreadPool::defaultJobs();

    const WorkloadInfo *wl = findWorkload("mcf");
    if (!wl)
        return false;
    auto prog = std::make_shared<Program>(wl->build(InputSet::Ref));
    Interpreter interp(prog);
    Trace trace = interp.run(ops);
    SimConfig cfg = SimConfig::skylake();

    std::printf("=== sampled simulation (mcf, %llu ops, "
                "--sample %llu:%llu, %u hardware threads) ===\n",
                static_cast<unsigned long long>(ops),
                static_cast<unsigned long long>(interval_ops),
                static_cast<unsigned long long>(warmup_ops), hw);

    Timer t_serial;
    CoreStats full = runCore(trace, cfg);
    double serial_s = t_serial.seconds();
    std::printf("  serial event engine        : %7.2f s\n",
                serial_s);

    SimConfig scfg = cfg;
    scfg.sampleOps = interval_ops;
    scfg.sampleWarmupOps = warmup_ops;
    scfg.sampleJobs = jobs;

    // Warm passes head-to-head: the PR 6 reference (counted
    // component APIs) against the stat-free fast path.
    Timer t_ref_warm;
    SampledWarmState ref_warm = buildReferenceWarmState(trace, scfg);
    double ref_warm_s = t_ref_warm.seconds();
    Timer t_fast_warm;
    SampledWarmState fast_warm = buildWarmState(trace, scfg);
    double fast_warm_s = t_fast_warm.seconds();
    double warm_speedup =
        fast_warm_s > 0 ? ref_warm_s / fast_warm_s : 0.0;
    std::printf("  warm pass reference        : %7.2f s\n"
                "  warm pass fast path        : %7.2f s  (%.2fx)\n",
                ref_warm_s, fast_warm_s, warm_speedup);

    // PR 6 barrier baseline: the reference warm pass is a serial
    // prefix, then intervals fan out.
    Timer t_detail;
    SampledResult barrier = runCoreSampled(trace, scfg, &ref_warm);
    double barrier_detail_s = t_detail.seconds();
    double barrier_s = ref_warm_s + barrier_detail_s;
    double sampled_s = fast_warm_s + barrier_detail_s;
    std::printf("  barrier (ref warm + detail): %7.2f s\n",
                barrier_s);

    // PR 7 pipelined schedule: intervals start as the warm producer
    // crosses their boundary; no serial prefix.
    Timer t_pipe;
    SampledResult piped = runCoreSampled(trace, scfg, nullptr);
    double pipelined_s = t_pipe.seconds();
    double pipelined_speedup =
        pipelined_s > 0 ? barrier_s / pipelined_s : 0.0;
    std::printf("  pipelined (--jobs %u)       : %7.2f s  (%.2fx "
                "vs barrier; warm %.2f detail %.2f stitch %.2f)\n",
                jobs, pipelined_s, pipelined_speedup,
                piped.warmSeconds, piped.detailSeconds,
                piped.stitchSeconds);

    // Persistent artifact store: a cold pipelined run persists warm
    // state as a side effect; the re-run adopts it with (near) zero
    // warm phase.
    const std::string artifact_dir = "bench_artifacts.tmp";
    std::filesystem::remove_all(artifact_dir);
    double store_cold_s = 0.0, store_hit_warm_s = 0.0;
    bool store_identical = false;
    {
        WarmArtifactStore store(artifact_dir);
        std::string key = warmStateKey(scfg);
        uint64_t hash = traceContentHash(trace);
        WarmArtifactStore::Writer writer(store, key, hash,
                                         interval_ops, warmup_ops);
        Timer t_cold;
        SampledResult cold =
            runCoreSampled(trace, scfg, nullptr, nullptr, nullptr,
                           false, &writer);
        writer.commit();
        store_cold_s = t_cold.seconds();

        SampledWarmState loaded;
        Timer t_load;
        bool hit = store.load(key, hash, scfg, loaded);
        double store_load_s = t_load.seconds();
        if (hit) {
            SampledResult warm_run =
                runCoreSampled(trace, scfg, &loaded);
            store_hit_warm_s = warm_run.warmSeconds;
            store_identical =
                sampledTotalsEqual(cold, warm_run) &&
                // The hit run adopts the artifact instead of
                // re-warming: its warm phase must be eliminated.
                (cold.warmSeconds <= 0 ||
                 store_hit_warm_s < 0.05 * cold.warmSeconds);
        }
        std::printf("  artifact store             : cold %.2f s "
                    "(warm %.2f s), hit load %.3f s, hit warm "
                    "phase %.3f s%s\n",
                    store_cold_s, cold.warmSeconds, store_load_s,
                    store_hit_warm_s,
                    store_identical ? "" : "  DIVERGED");
    }
    std::filesystem::remove_all(artifact_dir);

    // Determinism: barrier vs pipelined, and a --jobs 1 re-dispatch
    // of each schedule; every stitched counter must match
    // bit-for-bit.
    scfg.sampleJobs = 1;
    SampledResult ser = runCoreSampled(trace, scfg, &ref_warm);
    SampledResult piped_ser = runCoreSampled(trace, scfg, nullptr);
    bool jobs_eq = sampledTotalsEqual(barrier, ser);
    bool sched_eq = sampledTotalsEqual(barrier, piped);
    bool piped_eq = sampledTotalsEqual(piped, piped_ser);
    bool identical =
        jobs_eq && sched_eq && piped_eq && store_identical;
    if (!identical)
        std::printf("  divergence: jobs %d, ref-vs-fast %d, "
                    "piped-jobs %d, store %d\n",
                    jobs_eq, sched_eq, piped_eq, store_identical);

    double speedup = sampled_s > 0 ? serial_s / sampled_s : 0.0;
    double ipc_err =
        full.ipc() > 0
            ? (barrier.total.ipc() / full.ipc() - 1.0) * 100.0
            : 0.0;
    std::printf("  speedup %.2fx, IPC error %+.3f%%, schedules and "
                "job counts %s\n\n",
                speedup, ipc_err,
                identical ? "identical" : "DIVERGED");

    if (FILE *f = std::fopen("BENCH_sampled.json", "w")) {
        std::fprintf(f,
                     "{\n"
                     "  \"workload\": \"mcf\",\n"
                     "  \"ops\": %llu,\n"
                     "  \"interval_ops\": %llu,\n"
                     "  \"warmup_ops\": %llu,\n"
                     "  \"jobs\": %u,\n"
                     "  \"hardware_threads\": %u,\n"
                     "  \"serial_seconds\": %.3f,\n"
                     "  \"sampled_seconds\": %.3f,\n"
                     "  \"speedup\": %.3f,\n"
                     "  \"ref_warm_seconds\": %.3f,\n"
                     "  \"fast_warm_seconds\": %.3f,\n"
                     "  \"warm_speedup\": %.3f,\n"
                     "  \"barrier_seconds\": %.3f,\n"
                     "  \"pipelined_seconds\": %.3f,\n"
                     "  \"pipelined_speedup\": %.3f,\n"
                     "  \"warm_seconds\": %.3f,\n"
                     "  \"detail_seconds\": %.3f,\n"
                     "  \"stitch_seconds\": %.3f,\n"
                     "  \"artifact_cold_seconds\": %.3f,\n"
                     "  \"artifact_hit_warm_seconds\": %.3f,\n"
                     "  \"ipc_error_pct\": %.4f,\n"
                     "  \"identical\": %s\n"
                     "}\n",
                     static_cast<unsigned long long>(ops),
                     static_cast<unsigned long long>(interval_ops),
                     static_cast<unsigned long long>(warmup_ops),
                     jobs, hw, serial_s, sampled_s, speedup,
                     ref_warm_s, fast_warm_s, warm_speedup,
                     barrier_s, pipelined_s, pipelined_speedup,
                     piped.warmSeconds, piped.detailSeconds,
                     piped.stitchSeconds, store_cold_s,
                     store_hit_warm_s, ipc_err,
                     identical ? "true" : "false");
        std::fclose(f);
        std::printf("  wrote BENCH_sampled.json\n\n");
    }
    // Wall-clock gates only bind where 8 interval workers can run
    // concurrently (shared CI runners below that are too noisy);
    // determinism always binds.
    return identical &&
           (hw < 8 || (speedup >= 3.0 && pipelined_speedup >= 1.4 &&
                       warm_speedup >= 1.2));
}

/**
 * Overhead gate for the runtime span tracer (the PR 5 null-hook gate,
 * applied to host-runtime tracing): a 1M-op sampled run detached
 * twice — the spread between them is the machine's noise floor — and
 * once with a RuntimeTracer attached, capturing every pool, cache
 * and pipeline span. Writes BENCH_runtime_trace.json.
 * @return false when any run's stitched counters diverge (tracing
 *         must never perturb simulation), when the attached run
 *         recorded no events, or (on >= 8-thread machines) when the
 *         attached run exceeds the slower detached run by more than
 *         25% — tracing is timestamping plus a slab append, so it
 *         must hide inside run-to-run noise.
 */
bool
runtimeTraceBench()
{
    const uint64_t ops = 1'000'000;
    const unsigned hw = ThreadPool::defaultJobs();

    const WorkloadInfo *wl = findWorkload("mcf");
    if (!wl)
        return false;
    auto prog = std::make_shared<Program>(wl->build(InputSet::Ref));
    Interpreter interp(prog);
    Trace trace = interp.run(ops);
    SimConfig scfg = SimConfig::skylake();
    scfg.sampleOps = 100'000;
    scfg.sampleWarmupOps = 50'000;
    scfg.sampleJobs = 8;

    std::printf("=== runtime trace overhead (mcf, %llu ops, "
                "sampled --jobs %u) ===\n",
                static_cast<unsigned long long>(ops),
                scfg.sampleJobs);

    Timer t_base;
    SampledResult base = runCoreSampled(trace, scfg, nullptr);
    double base_s = t_base.seconds();
    Timer t_base2;
    SampledResult base2 = runCoreSampled(trace, scfg, nullptr);
    double base2_s = t_base2.seconds();
    std::printf("  detached  : %7.2f s / %7.2f s\n", base_s,
                base2_s);

    RuntimeTracer tracer;
    tracer.activate();
    Timer t_traced;
    SampledResult traced = runCoreSampled(trace, scfg, nullptr);
    double traced_s = t_traced.seconds();
    tracer.deactivate();
    size_t events = tracer.eventCount();
    double slower = base_s > base2_s ? base_s : base2_s;
    double overhead =
        slower > 0 ? (traced_s / slower - 1.0) * 100.0 : 0.0;
    std::printf("  attached  : %7.2f s  (%+.1f%% vs slower "
                "detached, %zu events, %llu dropped)\n",
                traced_s, overhead, events,
                static_cast<unsigned long long>(tracer.dropped()));

    bool identical = sampledTotalsEqual(base, base2) &&
                     sampledTotalsEqual(base, traced);
    bool has_events = events > 0;
    bool within_noise = traced_s <= slower * 1.25;
    std::printf("  results %s, events %s, overhead %s\n\n",
                identical ? "identical" : "DIVERGED",
                has_events ? "present" : "MISSING",
                within_noise ? "within noise" : "EXCEEDS GATE");

    if (FILE *f = std::fopen("BENCH_runtime_trace.json", "w")) {
        std::fprintf(f,
                     "{\n"
                     "  \"workload\": \"mcf\",\n"
                     "  \"ops\": %llu,\n"
                     "  \"jobs\": %u,\n"
                     "  \"hardware_threads\": %u,\n"
                     "  \"detached_seconds\": [%.3f, %.3f],\n"
                     "  \"attached_seconds\": %.3f,\n"
                     "  \"overhead_pct\": %.2f,\n"
                     "  \"events\": %zu,\n"
                     "  \"dropped\": %llu,\n"
                     "  \"identical\": %s\n"
                     "}\n",
                     static_cast<unsigned long long>(ops),
                     scfg.sampleJobs, hw, base_s, base2_s, traced_s,
                     overhead, events,
                     static_cast<unsigned long long>(
                         tracer.dropped()),
                     identical ? "true" : "false");
        std::fclose(f);
        std::printf("  wrote BENCH_runtime_trace.json\n\n");
    }
    // The identity and event-presence gates always bind; the wall
    // gate only where 8 interval workers actually run concurrently.
    return identical && has_events && (hw < 8 || within_noise);
}

} // namespace

int
main(int argc, char **argv)
{
    bool engines_equal = coreEngineBench();
    parallelEngineBench();
    bool sampled_ok = sampledBench();
    bool trace_ok = runtimeTraceBench();
    benchmark::Initialize(&argc, argv);
    benchmark::RunSpecifiedBenchmarks();
    benchmark::Shutdown();
    // CI runs this binary as a perf smoke test: a cross-engine stats
    // divergence (or a sampled job-count divergence / missed speedup
    // gate) fails the job even though the benchmarks completed.
    return engines_equal && sampled_ok && trace_ok ? 0 : 1;
}
