/**
 * @file
 * Google-benchmark microbenchmarks of the simulator's hot
 * components: branch predictors, cache lookups, DRAM timing, the age
 * matrix, the interpreter, and end-to-end core simulation speed.
 * These guard the "laptop-runnable" property of the reproduction.
 */

#include <benchmark/benchmark.h>

#include <memory>

#include "bp/bimodal.h"
#include "bp/gshare.h"
#include "bp/tage.h"
#include "cache/cache.h"
#include "cpu/age_matrix.h"
#include "cpu/core.h"
#include "dram/controller.h"
#include "vm/interpreter.h"
#include "workloads/workload.h"

using namespace crisp;

namespace
{

uint64_t
lcg(uint64_t &s)
{
    s = s * 6364136223846793005ULL + 1442695040888963407ULL;
    return s >> 16;
}

template <typename Predictor>
void
predictorBench(benchmark::State &state)
{
    Predictor pred;
    uint64_t seed = 42;
    for (auto _ : state) {
        uint64_t pc = 0x1000 + (lcg(seed) & 0x3ff);
        bool taken = (lcg(seed) & 7) != 0;
        bool p = pred.predict(pc);
        benchmark::DoNotOptimize(p);
        pred.update(pc, taken);
    }
    state.SetItemsProcessed(state.iterations());
}

void
BM_Tage(benchmark::State &state)
{
    predictorBench<TagePredictor>(state);
}

void
BM_Gshare(benchmark::State &state)
{
    predictorBench<GsharePredictor>(state);
}

void
BM_Bimodal(benchmark::State &state)
{
    predictorBench<BimodalPredictor>(state);
}

void
BM_CacheLookup(benchmark::State &state)
{
    Cache cache("bench", CacheConfig{32 * 1024, 8, 64, 4, 16});
    uint64_t seed = 7, cycle = 0;
    for (auto _ : state) {
        uint64_t addr = (lcg(seed) & 0xffff) << 6;
        auto res = cache.lookup(addr, ++cycle);
        if (!res.hit)
            cache.fill(addr, cycle + 40);
        benchmark::DoNotOptimize(res.readyCycle);
    }
    state.SetItemsProcessed(state.iterations());
}

void
BM_DramAccess(benchmark::State &state)
{
    DramController dram;
    uint64_t seed = 9, cycle = 0;
    for (auto _ : state) {
        cycle += 50;
        uint64_t ready =
            dram.access((lcg(seed) & 0xffffff) << 6, cycle);
        benchmark::DoNotOptimize(ready);
    }
    state.SetItemsProcessed(state.iterations());
}

void
BM_AgeMatrixSelect(benchmark::State &state)
{
    unsigned slots = unsigned(state.range(0));
    AgeMatrix age(slots);
    for (unsigned s = 0; s < slots; ++s)
        age.allocate(s);
    SlotVector cand(slots);
    uint64_t seed = 3;
    for (unsigned s = 0; s < slots; ++s)
        if (lcg(seed) & 1)
            cand.set(s);
    for (auto _ : state) {
        int oldest = age.selectOldest(cand);
        benchmark::DoNotOptimize(oldest);
    }
    state.SetItemsProcessed(state.iterations());
}

void
BM_Interpreter(benchmark::State &state)
{
    auto prog = std::make_shared<Program>(
        buildPointerChase(InputSet::Train));
    for (auto _ : state) {
        Interpreter interp(prog);
        Trace t = interp.run(50'000);
        benchmark::DoNotOptimize(t.size());
    }
    state.SetItemsProcessed(state.iterations() * 50'000);
}

void
BM_CoreSimulation(benchmark::State &state)
{
    auto prog = std::make_shared<Program>(
        buildPointerChase(InputSet::Train));
    Interpreter interp(prog);
    Trace trace = interp.run(50'000);
    SimConfig cfg = SimConfig::skylake();
    for (auto _ : state) {
        Core core(trace, cfg);
        CoreStats s = core.run();
        benchmark::DoNotOptimize(s.cycles);
    }
    state.SetItemsProcessed(state.iterations() * 50'000);
}

BENCHMARK(BM_Tage);
BENCHMARK(BM_Gshare);
BENCHMARK(BM_Bimodal);
BENCHMARK(BM_CacheLookup);
BENCHMARK(BM_DramAccess);
BENCHMARK(BM_AgeMatrixSelect)->Arg(96)->Arg(192);
BENCHMARK(BM_Interpreter);
BENCHMARK(BM_CoreSimulation);

} // namespace

BENCHMARK_MAIN();
