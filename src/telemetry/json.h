/**
 * @file
 * Minimal JSON document model and recursive-descent parser.
 *
 * Exists so the telemetry exporters can be validated in-process: the
 * StatRegistry emits JSON, and tests / tools parse it back with this
 * instead of shelling out to an external tool. Supports the full
 * JSON grammar except \u escapes beyond Latin-1; numbers are held as
 * doubles (exact for the 53-bit integer range the registry emits).
 */

#ifndef CRISP_TELEMETRY_JSON_H
#define CRISP_TELEMETRY_JSON_H

#include <cstdint>
#include <map>
#include <memory>
#include <string>
#include <vector>

namespace crisp
{

/** One parsed JSON value (object members keep sorted key order). */
struct JsonValue
{
    enum class Kind { Null, Bool, Number, String, Array, Object };

    Kind kind = Kind::Null;
    bool boolean = false;
    double number = 0.0;
    std::string text;
    std::vector<JsonValue> elements;
    std::map<std::string, JsonValue> members;

    bool isObject() const { return kind == Kind::Object; }
    bool isArray() const { return kind == Kind::Array; }
    bool isNumber() const { return kind == Kind::Number; }
    bool isString() const { return kind == Kind::String; }

    /** @return true when an object member with @p key exists. */
    bool has(const std::string &key) const
    {
        return members.count(key) != 0;
    }

    /**
     * @return the object member at @p key.
     * @throws std::out_of_range when absent or not an object.
     */
    const JsonValue &at(const std::string &key) const
    {
        return members.at(key);
    }

    /**
     * Dotted-path lookup ("crisp.core.cycles").
     * @return the nested value, or nullptr when any hop is missing.
     */
    const JsonValue *find(const std::string &path) const;
};

/**
 * Parses one JSON document.
 * @param text the document
 * @param error receives a message on failure (may be null)
 * @return the value, or std::nullopt-like null kind on failure (check
 *         the return of ok)
 */
bool parseJson(const std::string &text, JsonValue &out,
               std::string *error = nullptr);

/** @return a JSON string literal (quoted, escaped) for @p s. */
std::string jsonQuote(const std::string &s);

/** @return the shortest round-trip decimal rendering of @p v. */
std::string jsonNumber(double v);

} // namespace crisp

#endif // CRISP_TELEMETRY_JSON_H
