/**
 * @file
 * Host-runtime span tracer emitting Chrome trace-event JSON.
 *
 * Answers "where did the *host* wall-clock go" for a sweep: thread
 * pool task execution and queue-wait, artifact-cache compute vs
 * in-flight wait, warm-store I/O, the sampled pipeline's warm /
 * per-interval / stitch phases, and the serve tier's job lifecycle.
 * The output loads directly in Perfetto or chrome://tracing.
 *
 * Design (DESIGN.md §17):
 *
 *   - Hot path is lock-free.  Each recording thread owns a slab (a
 *     fixed array of TraceEvent plus an atomic count).  The owning
 *     thread writes the next slot and publishes it with a release
 *     store of count; readers (flush/serialize) acquire-load count
 *     and read only published slots.  No mutex is taken to record.
 *   - The registry mutex guards only the slab list and is touched on
 *     cold paths: first event from a thread, slab overflow, and
 *     snapshotting the list for serialization.  Serialization itself
 *     runs strictly outside the mutex (crisp_lint enforces this via
 *     the serialize-under-lock rule).
 *   - Detached cost: every hook site starts with
 *     RuntimeTracer::active() — one relaxed atomic load and a
 *     branch.  With no tracer activated nothing else runs, no
 *     strings are built, and no memory is written.
 *   - Slabs are never freed while the tracer lives, so a concurrent
 *     snapshot (e.g. the serve `trace` op during a sweep) is safe
 *     and sees a consistent prefix of each thread's events.
 *
 * Lifetime contract: the tracer must outlive every instrumented
 * scope.  TraceSpan captures the active tracer at construction and
 * records into it at destruction; activate/deactivate are meant to
 * bracket a whole run (crisp_sim declares the tracer first in
 * runSim; crisp_serve holds it for the daemon's life), not to toggle
 * while instrumented work is in flight.
 *
 * Event model (trace-event spec subset):
 *   'X' complete span   — ts + dur, synchronous, nests per tid
 *   'i' instant event   — thread scope ("s":"t")
 *   'b'/'e' async pair  — queue-waits, which overlap unrelated spans
 *                         on the consumer thread and therefore must
 *                         not be 'X' (they would break nesting)
 * Timestamps are recorded in integer nanoseconds from the tracer's
 * epoch and emitted as fractional microseconds per the spec.
 */

#ifndef CRISP_TELEMETRY_RUNTIME_TRACE_H
#define CRISP_TELEMETRY_RUNTIME_TRACE_H

#include <array>
#include <atomic>
#include <chrono>
#include <cstdint>
#include <cstdio>
#include <memory>
#include <string>
#include <vector>

#include "sim/sync.h"

namespace crisp
{

/** One recorded event.  cat/name/argKey must be string literals (or
 *  otherwise outlive the tracer); argVal is copied inline so the hot
 *  path never allocates. */
struct TraceEvent
{
    static constexpr size_t kArgValBytes = 47;

    const char *cat = nullptr;
    const char *name = nullptr;
    const char *argKey = nullptr; ///< nullptr when no arg attached
    uint64_t ts = 0;              ///< ns since tracer epoch
    uint64_t dur = 0;             ///< ns, 'X' only
    uint64_t id = 0;              ///< async pair id, 'b'/'e' only
    char ph = 'X';                ///< 'X', 'i', 'b', or 'e'
    char argVal[kArgValBytes + 1] = {0};
};

/** Fixed-capacity event buffer owned by one recording thread.  The
 *  owner is the only writer; count is the publication point. */
struct TraceSlab
{
    static constexpr uint32_t kCapacity = 4096;

    explicit TraceSlab(uint32_t owner) : tid(owner) {}

    uint32_t tid;                 ///< stable per-thread trace id
    std::atomic<uint32_t> count{0};
    std::array<TraceEvent, kCapacity> events;
};

/**
 * The tracer: a registry of per-thread slabs plus the serializer.
 *
 * At most one tracer is active per process at a time (a global
 * atomic pointer).  Hook sites test RuntimeTracer::active() and
 * record through the returned pointer; record() binds the calling
 * thread to a slab on first use via a generation-checked
 * thread-local cache, so the steady-state record path is: relaxed
 * load, generation compare, slot write, release store.
 */
class RuntimeTracer
{
  public:
    /** Total slabs the tracer will allocate before counting drops
     *  (bounds tracer memory at ~100 MB of events). */
    static constexpr size_t kMaxSlabs = 256;

    RuntimeTracer();
    ~RuntimeTracer();
    RuntimeTracer(const RuntimeTracer &) = delete;
    RuntimeTracer &operator=(const RuntimeTracer &) = delete;

    /** Makes this the process-wide active tracer. */
    void activate();
    /** Clears the active tracer (must be this or none).  Safe to
     *  skip: the destructor deactivates if still active. */
    void deactivate();

    /** @return the active tracer, or nullptr when detached.  This is
     *  the whole cost of an untraced hook site. */
    static RuntimeTracer *active()
    {
        return g_active.load(std::memory_order_relaxed);
    }

    /** @return ns since this tracer's construction. */
    uint64_t nowNs() const
    {
        return toNs(std::chrono::steady_clock::now());
    }

    /** @return @p tp as ns since this tracer's construction (0 when
     *  @p tp predates it) — for timestamps captured as raw
     *  steady_clock time points before reaching a hook site. */
    uint64_t toNs(std::chrono::steady_clock::time_point tp) const
    {
        auto d = std::chrono::duration_cast<std::chrono::nanoseconds>(
            tp - epoch_);
        return d.count() > 0 ? uint64_t(d.count()) : 0;
    }

    /** Records a complete ('X') span on the calling thread. */
    void recordSpan(const char *cat, const char *name,
                    uint64_t beginNs, uint64_t endNs,
                    const char *argKey = nullptr,
                    const char *argVal = nullptr) CRISP_EXCLUDES(m_);

    /** Records a thread-scoped instant ('i') event at now. */
    void recordInstant(const char *cat, const char *name,
                       const char *argKey = nullptr,
                       const char *argVal = nullptr)
        CRISP_EXCLUDES(m_);

    /**
     * Records an async 'b'/'e' pair (both events at once, fresh id).
     * Used for durations that overlap unrelated synchronous spans on
     * the recording thread — queue-waits recorded at dispatch time,
     * job submit→run latencies — which Perfetto renders on separate
     * async tracks instead of the thread's nesting stack.
     */
    void recordAsyncPair(const char *cat, const char *name,
                         uint64_t beginNs, uint64_t endNs,
                         const char *argKey = nullptr,
                         const char *argVal = nullptr)
        CRISP_EXCLUDES(m_);

    /** Serializes every published event as a Chrome trace-event JSON
     *  document ({"displayTimeUnit","traceEvents":[...]}). */
    std::string toJson() const CRISP_EXCLUDES(m_);

    /** As toJson(), but keeps only events whose arg matches
     *  (argKey, argVal) — e.g. ("job", "j-...") for the serve
     *  per-job trace op. */
    std::string toJson(const std::string &argKey,
                       const std::string &argVal) const
        CRISP_EXCLUDES(m_);

    /** Writes toJson() to @p path.
     *  @return false (with *error set) on I/O failure. */
    bool writeJson(const std::string &path,
                   std::string *error = nullptr) const;

    /** @return published events across all slabs (racy-but-safe
     *  snapshot while recording continues). */
    size_t eventCount() const CRISP_EXCLUDES(m_);

    /** @return events dropped after the kMaxSlabs cap was hit. */
    uint64_t dropped() const
    {
        return dropped_.load(std::memory_order_relaxed);
    }

  private:
    friend class TraceSpan;

    struct TlsCache; // per-thread slab binding, defined in the .cc

    /** @return the calling thread's binding cache (thread_local). */
    static TlsCache &tls();

    /** Appends one event to the calling thread's slab (binds the
     *  thread / grows the slab on the cold path). */
    void record(const TraceEvent &ev) CRISP_EXCLUDES(m_);

    TraceSlab *bindThread(TlsCache &c, uint64_t gen)
        CRISP_EXCLUDES(m_);
    TraceSlab *growSlab(TlsCache &c) CRISP_EXCLUDES(m_);

    /** Snapshot of the slab list for reading outside the mutex. */
    std::vector<std::shared_ptr<TraceSlab>> snapshotSlabs() const
        CRISP_EXCLUDES(m_);

    static std::atomic<RuntimeTracer *> g_active;
    static std::atomic<uint64_t> g_generation;

    const std::chrono::steady_clock::time_point epoch_;

    mutable Mutex m_;
    std::vector<std::shared_ptr<TraceSlab>> slabs_
        CRISP_GUARDED_BY(m_);
    uint32_t nextTid_ CRISP_GUARDED_BY(m_) = 0;

    std::atomic<uint64_t> dropped_{0};
    std::atomic<uint64_t> nextAsyncId_{1};
};

/**
 * RAII 'X' span.  Captures the active tracer once at construction;
 * when detached the constructor is a relaxed load + branch and the
 * destructor a null test.  Records at destruction, so children
 * always complete before their parent and per-thread spans are
 * well-nested by construction.
 *
 * Guard arg construction with on() so argument strings are never
 * built detached:
 *
 *   TraceSpan span("cache", "cache.compute");
 *   if (span.on())
 *       span.setArg("key", key);
 */
class TraceSpan
{
  public:
    TraceSpan(const char *cat, const char *name)
        : tracer_(RuntimeTracer::active()), cat_(cat), name_(name)
    {
        argVal_[0] = '\0';
        if (tracer_)
            begin_ = tracer_->nowNs();
    }

    ~TraceSpan()
    {
        if (tracer_)
            tracer_->recordSpan(cat_, name_, begin_,
                                tracer_->nowNs(), argKey_,
                                argVal_[0] ? argVal_ : nullptr);
    }

    TraceSpan(const TraceSpan &) = delete;
    TraceSpan &operator=(const TraceSpan &) = delete;

    /** @return true when a tracer was attached at construction. */
    bool on() const { return tracer_ != nullptr; }

    /** Attaches one (key, value) arg; @p key must be a literal.
     *  Values longer than TraceEvent::kArgValBytes are truncated. */
    void setArg(const char *key, const std::string &value)
    {
        if (!tracer_)
            return;
        argKey_ = key;
        std::snprintf(argVal_, sizeof argVal_, "%s", value.c_str());
    }

    void setArg(const char *key, uint64_t value)
    {
        if (!tracer_)
            return;
        argKey_ = key;
        std::snprintf(argVal_, sizeof argVal_, "%llu",
                      static_cast<unsigned long long>(value));
    }

  private:
    RuntimeTracer *tracer_;
    const char *cat_;
    const char *name_;
    const char *argKey_ = nullptr;
    uint64_t begin_ = 0;
    char argVal_[TraceEvent::kArgValBytes + 1];
};

} // namespace crisp

#endif // CRISP_TELEMETRY_RUNTIME_TRACE_H
