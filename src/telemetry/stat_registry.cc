#include "telemetry/stat_registry.h"

#include <fstream>
#include <stdexcept>

#include "telemetry/json.h"

namespace crisp
{

std::string
statPath(const std::string &prefix, const std::string &name)
{
    return prefix.empty() ? name : prefix + "." + name;
}

namespace
{

void
validatePath(const std::string &path)
{
    if (path.empty())
        throw std::logic_error("stat path must not be empty");
    if (path.front() == '.' || path.back() == '.' ||
        path.find("..") != std::string::npos)
        throw std::logic_error("malformed stat path '" + path + "'");
    for (char c : path)
        if (c == ',' || c == '"' || c == '\n' || c == '\t')
            throw std::logic_error("stat path '" + path +
                                   "' contains a reserved character");
}

} // namespace

void
StatRegistry::insert(const std::string &path, Stat stat)
{
    validatePath(path);
    if (stats_.count(path))
        throw std::logic_error("stat '" + path +
                               "' registered twice");
    // A leaf may not also be a namespace: "core" conflicts with an
    // existing "core.cycles" and vice versa.
    auto it = stats_.lower_bound(path + ".");
    if (it != stats_.end() &&
        it->first.compare(0, path.size() + 1, path + ".") == 0)
        throw std::logic_error("stat '" + path +
                               "' is already a namespace");
    for (size_t dot = path.find('.'); dot != std::string::npos;
         dot = path.find('.', dot + 1))
        if (stats_.count(path.substr(0, dot)))
            throw std::logic_error(
                "stat '" + path + "' collides with leaf '" +
                path.substr(0, dot) + "'");
    stats_.emplace(path, std::move(stat));
}

void
StatRegistry::addCounter(const std::string &path, uint64_t value,
                         std::string desc)
{
    Stat s;
    s.kind = Stat::Kind::Counter;
    s.u64 = value;
    s.desc = std::move(desc);
    insert(path, std::move(s));
}

void
StatRegistry::addScalar(const std::string &path, double value,
                        std::string desc)
{
    Stat s;
    s.kind = Stat::Kind::Scalar;
    s.f64 = value;
    s.desc = std::move(desc);
    insert(path, std::move(s));
}

void
StatRegistry::addInfo(const std::string &path, std::string value,
                      std::string desc)
{
    Stat s;
    s.kind = Stat::Kind::Info;
    s.text = std::move(value);
    s.desc = std::move(desc);
    insert(path, std::move(s));
}

void
StatRegistry::addHistogram(const std::string &path,
                           const Histogram &h, std::string desc)
{
    Stat s;
    s.kind = Stat::Kind::Hist;
    s.hist = h;
    s.desc = std::move(desc);
    insert(path, std::move(s));
}

void
StatRegistry::addTable(const std::string &path,
                       std::vector<std::string> columns,
                       std::vector<std::vector<uint64_t>> rows,
                       std::string desc)
{
    if (columns.empty())
        throw std::logic_error("stat table '" + path +
                               "' needs at least one column");
    for (const auto &row : rows)
        if (row.size() != columns.size())
            throw std::logic_error("stat table '" + path +
                                   "' has a ragged row");
    Stat s;
    s.kind = Stat::Kind::Table;
    s.columns = std::move(columns);
    s.rows = std::move(rows);
    s.desc = std::move(desc);
    insert(path, std::move(s));
}

bool
StatRegistry::has(const std::string &path) const
{
    return stats_.count(path) != 0;
}

const StatRegistry::Stat &
StatRegistry::at(const std::string &path) const
{
    auto it = stats_.find(path);
    if (it == stats_.end())
        throw std::out_of_range("no stat '" + path + "'");
    return it->second;
}

uint64_t
StatRegistry::counter(const std::string &path) const
{
    const Stat &s = at(path);
    if (s.kind != Stat::Kind::Counter)
        throw std::logic_error("stat '" + path +
                               "' is not a counter");
    return s.u64;
}

double
StatRegistry::scalar(const std::string &path) const
{
    const Stat &s = at(path);
    if (s.kind != Stat::Kind::Scalar)
        throw std::logic_error("stat '" + path + "' is not a scalar");
    return s.f64;
}

std::vector<std::string>
StatRegistry::paths() const
{
    std::vector<std::string> out;
    out.reserve(stats_.size());
    for (const auto &[path, stat] : stats_)
        out.push_back(path);
    return out;
}

namespace
{

std::string
histJson(const Histogram &h, const std::string &indent)
{
    std::string out = "{\n";
    out += indent + "  \"count\": " + std::to_string(h.count()) +
           ",\n";
    out += indent + "  \"mean\": " + jsonNumber(h.average()) + ",\n";
    out += indent + "  \"p50\": " + jsonNumber(h.percentile(50)) +
           ",\n";
    out += indent + "  \"p90\": " + jsonNumber(h.percentile(90)) +
           ",\n";
    out += indent + "  \"p95\": " + jsonNumber(h.percentile(95)) +
           ",\n";
    out += indent + "  \"p99\": " + jsonNumber(h.percentile(99)) +
           ",\n";
    out += indent + "  \"buckets\": [";
    for (size_t b = 0; b < h.buckets().size(); ++b) {
        if (b)
            out += ", ";
        out += std::to_string(h.buckets()[b]);
    }
    out += "]\n" + indent + "}";
    return out;
}

std::string
tableJson(const StatRegistry::Stat &s, const std::string &indent)
{
    std::string out = "{\n" + indent + "  \"columns\": [";
    for (size_t c = 0; c < s.columns.size(); ++c) {
        if (c)
            out += ", ";
        out += jsonQuote(s.columns[c]);
    }
    out += "],\n" + indent + "  \"rows\": [";
    for (size_t r = 0; r < s.rows.size(); ++r) {
        out += r ? ", [" : "[";
        for (size_t c = 0; c < s.rows[r].size(); ++c) {
            if (c)
                out += ", ";
            out += std::to_string(s.rows[r][c]);
        }
        out += "]";
    }
    out += "]\n" + indent + "}";
    return out;
}

std::string
leafJson(const StatRegistry::Stat &s, const std::string &indent)
{
    switch (s.kind) {
      case StatRegistry::Stat::Kind::Counter:
        return std::to_string(s.u64);
      case StatRegistry::Stat::Kind::Scalar:
        return jsonNumber(s.f64);
      case StatRegistry::Stat::Kind::Info:
        return jsonQuote(s.text);
      case StatRegistry::Stat::Kind::Hist:
        return histJson(s.hist, indent);
      case StatRegistry::Stat::Kind::Table:
        return tableJson(s, indent);
    }
    return "null";
}

using StatMap = std::map<std::string, StatRegistry::Stat>;
using StatIter = StatMap::const_iterator;

/** @return the path segment of it->first starting at @p depth. */
std::string
segmentAt(StatIter it, size_t depth)
{
    size_t end = it->first.find('.', depth);
    return it->first.substr(depth, end == std::string::npos
                                       ? end
                                       : end - depth);
}

/**
 * Emits the [first, last) key range (all sharing the first @p depth
 * characters of their paths) as one JSON object.
 */
std::string
rangeJson(StatIter first, StatIter last, size_t depth, int level)
{
    std::string indent(size_t(level) * 2, ' ');
    std::string inner(size_t(level + 1) * 2, ' ');
    std::string out = "{\n";
    bool first_member = true;
    while (first != last) {
        std::string seg = segmentAt(first, depth);
        // The sub-range of keys sharing this segment.
        StatIter stop = first;
        while (stop != last && segmentAt(stop, depth) == seg)
            ++stop;
        if (!first_member)
            out += ",\n";
        first_member = false;
        out += inner + jsonQuote(seg) + ": ";
        if (std::next(first) == stop &&
            first->first.size() == depth + seg.size()) {
            out += leafJson(first->second, inner);
        } else {
            out += rangeJson(first, stop, depth + seg.size() + 1,
                             level + 1);
        }
        first = stop;
    }
    out += "\n" + indent + "}";
    return out;
}

} // namespace

std::string
StatRegistry::toJson() const
{
    if (stats_.empty())
        return "{}\n";
    return rangeJson(stats_.begin(), stats_.end(), 0, 0) + "\n";
}

std::string
StatRegistry::toCsv() const
{
    std::string out = "stat,value\n";
    for (const auto &[path, s] : stats_) {
        switch (s.kind) {
          case Stat::Kind::Counter:
            out += path + "," + std::to_string(s.u64) + "\n";
            break;
          case Stat::Kind::Scalar:
            out += path + "," + jsonNumber(s.f64) + "\n";
            break;
          case Stat::Kind::Info:
            out += path + "," + jsonQuote(s.text) + "\n";
            break;
          case Stat::Kind::Hist:
            out += path + ".count," +
                   std::to_string(s.hist.count()) + "\n";
            out += path + ".mean," + jsonNumber(s.hist.average()) +
                   "\n";
            out += path + ".p50," +
                   jsonNumber(s.hist.percentile(50)) + "\n";
            out += path + ".p90," +
                   jsonNumber(s.hist.percentile(90)) + "\n";
            out += path + ".p95," +
                   jsonNumber(s.hist.percentile(95)) + "\n";
            out += path + ".p99," +
                   jsonNumber(s.hist.percentile(99)) + "\n";
            break;
          case Stat::Kind::Table:
            // One row per table entry, keyed by the first column.
            for (const auto &row : s.rows) {
                out += path + "." + std::to_string(row[0]);
                for (size_t c = 1; c < row.size(); ++c)
                    out += "," + std::to_string(row[c]);
                out += "\n";
            }
            break;
        }
    }
    return out;
}

bool
StatRegistry::writeJson(const std::string &file) const
{
    std::ofstream os(file);
    if (!os)
        return false;
    os << toJson();
    return bool(os);
}

bool
StatRegistry::writeCsv(const std::string &file) const
{
    std::ofstream os(file);
    if (!os)
        return false;
    os << toCsv();
    return bool(os);
}

} // namespace crisp
