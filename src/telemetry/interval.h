/**
 * @file
 * Windowed time-series telemetry: one NDJSON record per N cycles.
 *
 * End-of-run statistics average away phase behaviour; this streamer
 * exposes it. Every `--stats-every N` cycles the core's cumulative
 * state is snapshotted and the *window delta* is emitted as one JSON
 * object per line (NDJSON): IPC, the six CPI-stack buckets, ROB/RS
 * occupancy at the boundary, LLC MPKI and the critical-pick rate.
 *
 * The stream is bit-identical under both tick engines (pinned by
 * tests/interval_test.cc). The cycle engine crosses each boundary on
 * an executed tick; the event engine may jump a whole idle span over
 * one or more boundaries. Correctness rests on the same argument as
 * the CPI stack's bulk charge (cpi_stack.h): within a skipped span no
 * counter can change and every cycle is charged to one frozen stall
 * bucket, so the boundary snapshot inside a span is the pre-span
 * snapshot plus `bucket × cycles-elapsed`. onIdleSpan() synthesizes
 * exactly those snapshots, splitting the span across as many window
 * boundaries as it covers.
 *
 * Records are buffered in memory and written by the caller after the
 * run (crisp_sim tags each line with the scheduler variant). A
 * PipeTracer may be attached to receive the same boundaries as
 * [interval-boundary] Kanata comments, so pipeline traces and
 * time-series records can be cross-referenced by cycle.
 */

#ifndef CRISP_TELEMETRY_INTERVAL_H
#define CRISP_TELEMETRY_INTERVAL_H

#include <array>
#include <cstdint>
#include <string>
#include <vector>

#include "telemetry/cpi_stack.h"

namespace crisp
{

class PipeTracer;

/** The streamer. One instance records one core run. */
class IntervalStreamer
{
  public:
    /** Cumulative core state at one cycle (all counters are
     *  monotone; the streamer emits consecutive differences). */
    struct Snapshot
    {
        uint64_t cycle = 0;
        uint64_t retired = 0;
        uint64_t issued = 0;
        uint64_t issuedPrioritized = 0;
        uint64_t llcMisses = 0;
        std::array<uint64_t, kNumCpiBuckets> cpi{};
        unsigned robOcc = 0; ///< occupancy at the snapshot cycle
        unsigned rsOcc = 0;
    };

    /**
     * @param every window length in cycles (must be positive)
     * @param variant run label stamped into every record ("" = none)
     */
    explicit IntervalStreamer(uint64_t every,
                              std::string variant = "");

    /** @return the first un-emitted window boundary cycle. The core
     *  compares its cycle against this before paying for a
     *  snapshot, so the per-tick cost is one load and compare. */
    uint64_t nextBoundary() const { return nextBoundary_; }

    /** @return the window length. */
    uint64_t every() const { return every_; }

    /**
     * Called at an executed tick whose cycle reached nextBoundary();
     * emits that window from the end-of-tick cumulative state.
     */
    void onTick(const Snapshot &snap);

    /**
     * Called before the event engine skips an idle span: cycles
     * (base.cycle, base.cycle + span] during which every counter is
     * frozen except the CPI stack, which accrues @p bucket each
     * cycle. Emits every window boundary the span covers.
     */
    void onIdleSpan(const Snapshot &base, uint64_t span,
                    CpiBucket bucket);

    /**
     * Called once at end-of-run; emits the final partial window (if
     * any cycles elapsed past the last boundary).
     */
    void finish(const Snapshot &snap);

    /** Attaches a tracer to be notified at each emitted boundary. */
    void setTracer(PipeTracer *tracer) { tracer_ = tracer; }

    /** @return the emitted records, one JSON object each. */
    const std::vector<std::string> &records() const
    {
        return records_;
    }

    /** @return the full stream, newline-terminated per record. */
    std::string ndjson() const;

  private:
    void emitWindow(const Snapshot &snap);

    uint64_t every_;
    std::string variant_;
    uint64_t nextBoundary_;
    uint64_t windowIndex_ = 0;
    Snapshot last_; ///< cumulative state at the last emitted boundary
    std::vector<std::string> records_;
    PipeTracer *tracer_ = nullptr;
};

} // namespace crisp

#endif // CRISP_TELEMETRY_INTERVAL_H
