/**
 * @file
 * Per-PC criticality attribution profiler.
 *
 * Aggregate IPC and the CPI stack say *whether* CRISP's critical-first
 * scheduling paid off; this profiler says *where*. It attributes issue
 * behaviour to static program counters along the two axes the paper's
 * mechanism targets:
 *
 *  - Delinquent loads: per load PC, dynamic issue count, LLC misses,
 *    dispatch→issue wait (the lead time a scheduling policy can
 *    shorten), distance from the ROB head at issue (how deep in the
 *    window the load fired — larger is earlier relative to commit),
 *    and LLC-miss MLP overlap (how many other LLC misses were in
 *    flight when this one issued — overlap is memory-level
 *    parallelism the early issue bought).
 *
 *  - Hard branches: per mispredicting branch PC, mispredict count and
 *    the same wait / ROB-head-distance attribution, since branch
 *    resolution latency is the other half of the critical slice.
 *
 *  - Scheduler decision log: every time the age-matrix two-level pick
 *    selects a critical-tagged instruction over the oldest plain-ready
 *    one, the (picked PC, bypassed PC) pair is recorded together with
 *    the realized lead — the dispatch-age gap the critical
 *    instruction jumped. This is the direct evidence trail for §4.2:
 *    which PCs the policy favours, at whose expense, and by how much.
 *
 * The profiler is attached to a Core with setProfiler(); when absent
 * the hot-path hooks cost one null-pointer test. Hook costs when
 * attached are bounded map updates keyed by PC — acceptable for
 * profiling runs, never on the default path. All containers are
 * ordered, so exports are deterministic; both tick engines issue the
 * same instructions at the same cycles (DESIGN.md §9), so profiles
 * are bit-identical across engines.
 */

#ifndef CRISP_TELEMETRY_PC_PROFILER_H
#define CRISP_TELEMETRY_PC_PROFILER_H

#include <cstdint>
#include <map>
#include <string>
#include <utility>
#include <vector>

namespace crisp
{

struct DynInst;
class StatRegistry;

/** The profiler. One instance records one core run. */
class PcProfiler
{
  public:
    /** Per-PC load attribution (totals; divide by issues for means). */
    struct LoadEntry
    {
        uint64_t issues = 0;       ///< dynamic instances issued
        uint64_t llcMisses = 0;    ///< instances served by DRAM
        uint64_t critical = 0;     ///< instances carrying the tag
        uint64_t waitCycles = 0;   ///< Σ issue − dispatch
        uint64_t robHeadDist = 0;  ///< Σ seq distance from ROB head
        uint64_t mlpOverlap = 0;   ///< Σ in-flight LLC misses at issue
    };

    /** Per-PC mispredicting-branch attribution. */
    struct BranchEntry
    {
        uint64_t mispredicts = 0;
        uint64_t waitCycles = 0;
        uint64_t robHeadDist = 0;
    };

    /** One (picked, bypassed) PC pair of the decision log. */
    struct DecisionEntry
    {
        uint64_t picks = 0;      ///< times this pair occurred
        uint64_t leadCycles = 0; ///< Σ dispatch-age gap jumped
    };

    /**
     * Records one issued instruction. Loads and mispredicting
     * control ops are attributed; everything else is ignored.
     * @param inst the instruction, with issueCycle already stamped
     * @param cycle the issue cycle
     * @param rob_head_seq sequence number of the current ROB head
     */
    void onIssue(const DynInst &inst, uint64_t cycle,
                 uint64_t rob_head_seq);

    /**
     * Records one two-level scheduler decision: the age matrix
     * issued @p picked_pc although @p bypassed_pc was the oldest
     * plain-ready instruction. @p lead is their dispatch-cycle gap
     * (how much older the bypassed instruction is).
     */
    void onCriticalPick(uint64_t picked_pc, uint64_t bypassed_pc,
                        uint64_t lead);

    /** @return per-PC load table (keyed by PC, sorted). */
    const std::map<uint64_t, LoadEntry> &loads() const
    {
        return loads_;
    }
    /** @return per-PC hard-branch table (keyed by PC, sorted). */
    const std::map<uint64_t, BranchEntry> &branches() const
    {
        return branches_;
    }
    /** @return decision log keyed by (picked PC, bypassed PC). */
    const std::map<std::pair<uint64_t, uint64_t>, DecisionEntry> &
    decisions() const
    {
        return decisions_;
    }

    /** @return total decisions recorded. */
    uint64_t decisionCount() const { return decisionCount_; }
    /** @return total lead cycles across all decisions. */
    uint64_t decisionLeadCycles() const { return decisionLead_; }

    /**
     * @return the top @p n load rows {pc, issues, llc_misses,
     *         critical, wait_cycles, rob_head_dist, mlp_overlap},
     *         sorted by attributed wait cycles (descending, PC
     *         ascending on ties).
     */
    std::vector<std::vector<uint64_t>> topLoads(size_t n) const;

    /** @return the top @p n branch rows {pc, mispredicts,
     *          wait_cycles, rob_head_dist}, by wait cycles. */
    std::vector<std::vector<uint64_t>> topBranches(size_t n) const;

    /** @return the top @p n decision rows {picked_pc, bypassed_pc,
     *          picks, lead_cycles}, by lead cycles. */
    std::vector<std::vector<uint64_t>> topDecisions(size_t n) const;

    /**
     * Accumulates another profile entry-wise: per-PC rows add field
     * by field, summary counters add. Sampled simulation merges the
     * per-interval profiles into the whole-run attribution table;
     * transient in-flight state (outstanding misses) is interval-
     * local and is not merged.
     */
    void merge(const PcProfiler &other);

    /**
     * Registers the profile under @p prefix: three sorted top-N
     * tables (loads / branches / decisions, by cycles attributed)
     * plus summary counters. Deterministic order, so exports are
     * diff-stable and engine-independent.
     */
    void registerInto(StatRegistry &reg, const std::string &prefix,
                      size_t top_n) const;

  private:
    std::map<uint64_t, LoadEntry> loads_;
    std::map<uint64_t, BranchEntry> branches_;
    std::map<std::pair<uint64_t, uint64_t>, DecisionEntry>
        decisions_;
    uint64_t decisionCount_ = 0;
    uint64_t decisionLead_ = 0;

    /** Completion cycles of in-flight LLC-miss loads; compacted on
     *  access, bounded by the memory system's miss concurrency. */
    std::vector<uint64_t> outstandingMisses_;
};

} // namespace crisp

#endif // CRISP_TELEMETRY_PC_PROFILER_H
