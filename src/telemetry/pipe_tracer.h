/**
 * @file
 * Per-instruction pipeline lifecycle tracing in Kanata format.
 *
 * The core reports each retired instruction's stage timestamps
 * (fetch → decode/rename → dispatch → issue → complete → retire) and
 * the tracer renders them as a Kanata 0004 log — the format consumed
 * by the Konata pipeline viewer (and convertible from gem5's
 * O3PipeView). Critical-tag, LLC-miss, store-forward and mispredict
 * annotations ride along on the instruction labels, which is what
 * makes the CRISP scheduler's two-level pick *visible*: tagged slice
 * instructions issue ahead of older untagged work.
 *
 * Stage lanes emitted (lane 0):
 *   F   fetch (1 cycle)
 *   Dc  decode/rename pipe traversal
 *   Ds  dispatch + wait in the reservation station
 *   Is  execute (issue to completion)
 *   Cm  completed, waiting for in-order retirement
 *   Rt  retire slot
 *
 * A [start:end] cycle window bounds the trace: only instructions
 * *fetched* inside the window are recorded, so traces of long runs
 * stay small. Records are buffered and emitted in strictly
 * nondecreasing cycle order at write() time; output is fully
 * deterministic (the tick engines produce identical stage
 * timestamps, so both produce identical traces).
 */

#ifndef CRISP_TELEMETRY_PIPE_TRACER_H
#define CRISP_TELEMETRY_PIPE_TRACER_H

#include <cstdint>
#include <ostream>
#include <string>
#include <vector>

namespace crisp
{

/** The tracer. One instance records one core run. */
class PipeTracer
{
  public:
    /** Lifecycle of one retired instruction. */
    struct InstRecord
    {
        uint64_t seq = 0;           ///< fetch-order sequence number
        uint64_t fetchCycle = 0;
        uint64_t dispatchCycle = 0;
        uint64_t issueCycle = 0;
        uint64_t completeCycle = 0; ///< execution result available
        uint64_t retireCycle = 0;
        uint64_t pc = 0;
        const char *mnemonic = "?"; ///< timing-class name
        bool critical = false;      ///< CRISP tag / IBDA mark
        bool llcMiss = false;       ///< load served by DRAM
        bool forwarded = false;     ///< load fed by store forwarding
        bool mispredicted = false;  ///< fetch-blocking branch
    };

    /**
     * @param path output file for write()
     * @param start_cycle first fetch cycle recorded (inclusive)
     * @param end_cycle last fetch cycle recorded (inclusive)
     */
    explicit PipeTracer(std::string path, uint64_t start_cycle = 0,
                        uint64_t end_cycle = ~0ULL);

    /** Records one retired instruction (window-filtered). */
    void retire(const InstRecord &rec);

    /**
     * Records one `--stats-every` window edge; rendered as an
     * `# [interval-boundary]` comment at @p cycle so pipeline traces
     * and interval time-series records can be cross-referenced.
     * Boundaries are not subject to the fetch-cycle window filter.
     */
    void intervalBoundary(uint64_t cycle, uint64_t window);

    /** @return instructions recorded so far (inside the window). */
    size_t recorded() const { return insts_.size(); }

    /** Renders the Kanata log to @p os. */
    void writeTo(std::ostream &os) const;

    /** Renders the Kanata log to the constructor path.
     *  @return false on I/O error. */
    bool write() const;

    /** @return the output path. */
    const std::string &path() const { return path_; }

  private:
    /** One recorded interval-window edge. */
    struct Boundary
    {
        uint64_t cycle;
        uint64_t window;
    };

    std::string path_;
    uint64_t startCycle_;
    uint64_t endCycle_;
    std::vector<InstRecord> insts_;
    std::vector<Boundary> boundaries_;
};

} // namespace crisp

#endif // CRISP_TELEMETRY_PIPE_TRACER_H
