#include "telemetry/interval.h"

#include <cassert>
#include <stdexcept>

#include "telemetry/json.h"
#include "telemetry/pipe_tracer.h"

namespace crisp
{

IntervalStreamer::IntervalStreamer(uint64_t every,
                                   std::string variant)
    : every_(every), variant_(std::move(variant)),
      nextBoundary_(every)
{
    if (every == 0)
        throw std::invalid_argument(
            "interval window must be positive");
}

void
IntervalStreamer::emitWindow(const Snapshot &snap)
{
    uint64_t len = snap.cycle - last_.cycle;
    uint64_t retired = snap.retired - last_.retired;
    uint64_t issued = snap.issued - last_.issued;
    uint64_t prio =
        snap.issuedPrioritized - last_.issuedPrioritized;
    uint64_t llc = snap.llcMisses - last_.llcMisses;

    std::string out = "{";
    if (!variant_.empty())
        out += "\"variant\": " + jsonQuote(variant_) + ", ";
    out += "\"window\": " + std::to_string(windowIndex_);
    out += ", \"cycle\": " + std::to_string(snap.cycle);
    out += ", \"cycles\": " + std::to_string(len);
    out += ", \"retired\": " + std::to_string(retired);
    out += ", \"issued\": " + std::to_string(issued);
    out += ", \"critical_issued\": " + std::to_string(prio);
    out += ", \"ipc\": " +
           jsonNumber(len ? double(retired) / double(len) : 0.0);
    out += ", \"critical_pick_rate\": " +
           jsonNumber(issued ? double(prio) / double(issued) : 0.0);
    out += ", \"rob_occ\": " + std::to_string(snap.robOcc);
    out += ", \"rs_occ\": " + std::to_string(snap.rsOcc);
    out += ", \"llc_misses\": " + std::to_string(llc);
    out += ", \"llc_mpki\": " +
           jsonNumber(retired ? 1000.0 * double(llc) /
                                    double(retired)
                              : 0.0);
    out += ", \"cpi\": {";
    for (size_t b = 0; b < kNumCpiBuckets; ++b) {
        if (b)
            out += ", ";
        out += jsonQuote(cpiBucketName(CpiBucket(b)));
        out += ": " + std::to_string(snap.cpi[b] - last_.cpi[b]);
    }
    out += "}}";
    records_.push_back(std::move(out));

    if (tracer_)
        tracer_->intervalBoundary(snap.cycle, windowIndex_);
    ++windowIndex_;
    last_ = snap;
}

void
IntervalStreamer::onTick(const Snapshot &snap)
{
    // Executed ticks advance one cycle at a time — skipped spans go
    // through onIdleSpan — so a tick crosses at most one boundary.
    if (snap.cycle < nextBoundary_)
        return;
    assert(snap.cycle == nextBoundary_);
    emitWindow(snap);
    nextBoundary_ += every_;
}

void
IntervalStreamer::onIdleSpan(const Snapshot &base, uint64_t span,
                             CpiBucket bucket)
{
    // Reconstruct each boundary the span covers: counters and
    // occupancies are frozen across an idle span; only the CPI stack
    // moves, accruing `bucket` once per elapsed cycle. This is the
    // per-cycle state the cycle engine would have snapshotted.
    uint64_t end = base.cycle + span;
    while (nextBoundary_ <= end) {
        Snapshot s = base;
        s.cycle = nextBoundary_;
        s.cpi[size_t(bucket)] += nextBoundary_ - base.cycle;
        emitWindow(s);
        nextBoundary_ += every_;
    }
}

void
IntervalStreamer::finish(const Snapshot &snap)
{
    if (snap.cycle > last_.cycle)
        emitWindow(snap);
}

std::string
IntervalStreamer::ndjson() const
{
    std::string out;
    for (const std::string &rec : records_) {
        out += rec;
        out += '\n';
    }
    return out;
}

} // namespace crisp
