#include "telemetry/json.h"

#include <cctype>
#include <charconv>
#include <cstdio>
#include <cstdlib>

namespace crisp
{

const JsonValue *
JsonValue::find(const std::string &path) const
{
    const JsonValue *cur = this;
    size_t pos = 0;
    while (pos <= path.size()) {
        size_t dot = path.find('.', pos);
        std::string key = path.substr(
            pos, dot == std::string::npos ? dot : dot - pos);
        if (!cur->isObject())
            return nullptr;
        auto it = cur->members.find(key);
        if (it == cur->members.end())
            return nullptr;
        cur = &it->second;
        if (dot == std::string::npos)
            return cur;
        pos = dot + 1;
    }
    return nullptr;
}

std::string
jsonQuote(const std::string &s)
{
    std::string out = "\"";
    for (char c : s) {
        switch (c) {
          case '"': out += "\\\""; break;
          case '\\': out += "\\\\"; break;
          case '\n': out += "\\n"; break;
          case '\t': out += "\\t"; break;
          case '\r': out += "\\r"; break;
          default:
            if (static_cast<unsigned char>(c) < 0x20) {
                char buf[8];
                std::snprintf(buf, sizeof(buf), "\\u%04x", c);
                out += buf;
            } else {
                out += c;
            }
        }
    }
    out += '"';
    return out;
}

std::string
jsonNumber(double v)
{
    char buf[64];
    auto res = std::to_chars(buf, buf + sizeof(buf), v);
    return std::string(buf, res.ptr);
}

namespace
{

/** Recursive-descent JSON parser over a string. */
class Parser
{
  public:
    Parser(const std::string &text, std::string *error)
        : s_(text), err_(error)
    {
    }

    bool parse(JsonValue &out)
    {
        skipWs();
        if (!value(out))
            return false;
        skipWs();
        if (pos_ != s_.size())
            return fail("trailing characters after document");
        return true;
    }

  private:
    const std::string &s_;
    size_t pos_ = 0;
    std::string *err_;

    bool fail(const std::string &msg)
    {
        if (err_)
            *err_ = msg + " at offset " + std::to_string(pos_);
        return false;
    }

    void skipWs()
    {
        while (pos_ < s_.size() &&
               std::isspace(static_cast<unsigned char>(s_[pos_])))
            ++pos_;
    }

    bool literal(const char *word, JsonValue &out, JsonValue::Kind k,
                 bool b)
    {
        size_t n = std::string(word).size();
        if (s_.compare(pos_, n, word) != 0)
            return fail(std::string("expected '") + word + "'");
        pos_ += n;
        out.kind = k;
        out.boolean = b;
        return true;
    }

    bool value(JsonValue &out)
    {
        if (pos_ >= s_.size())
            return fail("unexpected end of input");
        switch (s_[pos_]) {
          case '{': return object(out);
          case '[': return array(out);
          case '"': {
            out.kind = JsonValue::Kind::String;
            return string(out.text);
          }
          case 't':
            return literal("true", out, JsonValue::Kind::Bool, true);
          case 'f':
            return literal("false", out, JsonValue::Kind::Bool,
                           false);
          case 'n':
            return literal("null", out, JsonValue::Kind::Null,
                           false);
          default: return number(out);
        }
    }

    bool object(JsonValue &out)
    {
        out.kind = JsonValue::Kind::Object;
        ++pos_; // '{'
        skipWs();
        if (pos_ < s_.size() && s_[pos_] == '}') {
            ++pos_;
            return true;
        }
        while (true) {
            skipWs();
            std::string key;
            if (!string(key))
                return false;
            skipWs();
            if (pos_ >= s_.size() || s_[pos_] != ':')
                return fail("expected ':' in object");
            ++pos_;
            skipWs();
            JsonValue v;
            if (!value(v))
                return false;
            out.members.emplace(std::move(key), std::move(v));
            skipWs();
            if (pos_ >= s_.size())
                return fail("unterminated object");
            if (s_[pos_] == ',') {
                ++pos_;
                continue;
            }
            if (s_[pos_] == '}') {
                ++pos_;
                return true;
            }
            return fail("expected ',' or '}' in object");
        }
    }

    bool array(JsonValue &out)
    {
        out.kind = JsonValue::Kind::Array;
        ++pos_; // '['
        skipWs();
        if (pos_ < s_.size() && s_[pos_] == ']') {
            ++pos_;
            return true;
        }
        while (true) {
            skipWs();
            JsonValue v;
            if (!value(v))
                return false;
            out.elements.push_back(std::move(v));
            skipWs();
            if (pos_ >= s_.size())
                return fail("unterminated array");
            if (s_[pos_] == ',') {
                ++pos_;
                continue;
            }
            if (s_[pos_] == ']') {
                ++pos_;
                return true;
            }
            return fail("expected ',' or ']' in array");
        }
    }

    bool string(std::string &out)
    {
        if (pos_ >= s_.size() || s_[pos_] != '"')
            return fail("expected string");
        ++pos_;
        out.clear();
        while (pos_ < s_.size() && s_[pos_] != '"') {
            char c = s_[pos_++];
            if (c != '\\') {
                out += c;
                continue;
            }
            if (pos_ >= s_.size())
                return fail("unterminated escape");
            char e = s_[pos_++];
            switch (e) {
              case '"': out += '"'; break;
              case '\\': out += '\\'; break;
              case '/': out += '/'; break;
              case 'n': out += '\n'; break;
              case 't': out += '\t'; break;
              case 'r': out += '\r'; break;
              case 'b': out += '\b'; break;
              case 'f': out += '\f'; break;
              case 'u': {
                if (pos_ + 4 > s_.size())
                    return fail("short \\u escape");
                unsigned code = 0;
                for (int k = 0; k < 4; ++k) {
                    char h = s_[pos_++];
                    code <<= 4;
                    if (h >= '0' && h <= '9')
                        code |= unsigned(h - '0');
                    else if (h >= 'a' && h <= 'f')
                        code |= unsigned(h - 'a' + 10);
                    else if (h >= 'A' && h <= 'F')
                        code |= unsigned(h - 'A' + 10);
                    else
                        return fail("bad \\u escape");
                }
                if (code > 0xff)
                    return fail("\\u escape beyond Latin-1");
                out += char(code);
                break;
              }
              default: return fail("unknown escape");
            }
        }
        if (pos_ >= s_.size())
            return fail("unterminated string");
        ++pos_; // closing quote
        return true;
    }

    bool number(JsonValue &out)
    {
        size_t start = pos_;
        if (pos_ < s_.size() && s_[pos_] == '-')
            ++pos_;
        while (pos_ < s_.size() &&
               (std::isdigit(static_cast<unsigned char>(s_[pos_])) ||
                s_[pos_] == '.' || s_[pos_] == 'e' ||
                s_[pos_] == 'E' || s_[pos_] == '+' ||
                s_[pos_] == '-'))
            ++pos_;
        if (pos_ == start)
            return fail("expected a value");
        char *end = nullptr;
        std::string tok = s_.substr(start, pos_ - start);
        out.number = std::strtod(tok.c_str(), &end);
        if (end != tok.c_str() + tok.size())
            return fail("malformed number '" + tok + "'");
        out.kind = JsonValue::Kind::Number;
        return true;
    }
};

} // namespace

bool
parseJson(const std::string &text, JsonValue &out,
          std::string *error)
{
    Parser p(text, error);
    return p.parse(out);
}

} // namespace crisp
