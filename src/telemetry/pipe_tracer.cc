#include "telemetry/pipe_tracer.h"

#include <algorithm>
#include <cstdio>
#include <fstream>

namespace crisp
{

PipeTracer::PipeTracer(std::string path, uint64_t start_cycle,
                       uint64_t end_cycle)
    : path_(std::move(path)), startCycle_(start_cycle),
      endCycle_(end_cycle)
{
}

void
PipeTracer::retire(const InstRecord &rec)
{
    if (rec.fetchCycle < startCycle_ || rec.fetchCycle > endCycle_)
        return;
    insts_.push_back(rec);
}

void
PipeTracer::intervalBoundary(uint64_t cycle, uint64_t window)
{
    boundaries_.push_back({cycle, window});
}

namespace
{

/** One pending log line at an absolute cycle. */
struct Event
{
    uint64_t cycle;
    uint64_t order; ///< tie-break: original emission order
    std::string line;
};

std::string
label(const PipeTracer::InstRecord &r)
{
    char buf[96];
    std::snprintf(buf, sizeof(buf), "0x%08llx %s",
                  static_cast<unsigned long long>(r.pc), r.mnemonic);
    std::string out = buf;
    if (r.critical)
        out += " [critical]";
    if (r.llcMiss)
        out += " [llc-miss]";
    if (r.forwarded)
        out += " [fwd]";
    if (r.mispredicted)
        out += " [mispred]";
    return out;
}

std::string
detail(const PipeTracer::InstRecord &r)
{
    return "seq=" + std::to_string(r.seq) +
           " fetch=" + std::to_string(r.fetchCycle) +
           " dispatch=" + std::to_string(r.dispatchCycle) +
           " issue=" + std::to_string(r.issueCycle) +
           " complete=" + std::to_string(r.completeCycle) +
           " retire=" + std::to_string(r.retireCycle);
}

} // namespace

void
PipeTracer::writeTo(std::ostream &os) const
{
    std::vector<Event> events;
    events.reserve(insts_.size() * 16);
    uint64_t order = 0;
    auto emit = [&](uint64_t cycle, std::string line) {
        events.push_back({cycle, order++, std::move(line)});
    };

    uint64_t retire_id = 0;
    for (size_t id = 0; id < insts_.size(); ++id) {
        const InstRecord &r = insts_[id];
        std::string sid = std::to_string(id);
        emit(r.fetchCycle, "I\t" + sid + "\t" +
                               std::to_string(r.seq) + "\t0");
        emit(r.fetchCycle, "L\t" + sid + "\t0\t" + label(r));
        emit(r.fetchCycle, "L\t" + sid + "\t1\t" + detail(r));
        emit(r.fetchCycle, "S\t" + sid + "\t0\tF");

        // Stage boundaries; zero-length stages are skipped so E/S
        // pairs always advance time.
        uint64_t decode = std::min(r.fetchCycle + 1,
                                   r.dispatchCycle);
        if (decode > r.fetchCycle && decode < r.dispatchCycle) {
            emit(decode, "E\t" + sid + "\t0\tF");
            emit(decode, "S\t" + sid + "\t0\tDc");
        }
        emit(r.dispatchCycle,
             "E\t" + sid + "\t0\t" +
                 (decode < r.dispatchCycle ? "Dc" : "F"));
        emit(r.dispatchCycle, "S\t" + sid + "\t0\tDs");
        emit(r.issueCycle, "E\t" + sid + "\t0\tDs");
        emit(r.issueCycle, "S\t" + sid + "\t0\tIs");
        const char *last = "Is";
        if (r.completeCycle < r.retireCycle) {
            emit(r.completeCycle, "E\t" + sid + "\t0\tIs");
            emit(r.completeCycle, "S\t" + sid + "\t0\tCm");
            last = "Cm";
        }
        emit(r.retireCycle,
             "E\t" + sid + "\t0\t" + std::string(last));
        emit(r.retireCycle, "S\t" + sid + "\t0\tRt");
        emit(r.retireCycle + 1, "E\t" + sid + "\t0\tRt");
        emit(r.retireCycle + 1,
             "R\t" + sid + "\t" + std::to_string(retire_id++) +
                 "\t0");
    }

    // Window edges as Kanata comments, after the instruction events
    // of the edge cycle: the boundary closes the window that those
    // retirements belong to.
    for (const Boundary &b : boundaries_)
        emit(b.cycle, "# [interval-boundary] window=" +
                          std::to_string(b.window) +
                          " cycle=" + std::to_string(b.cycle));

    std::stable_sort(events.begin(), events.end(),
                     [](const Event &a, const Event &b) {
                         return a.cycle != b.cycle
                                    ? a.cycle < b.cycle
                                    : a.order < b.order;
                     });

    os << "Kanata\t0004\n";
    if (events.empty())
        return;
    uint64_t cur = events.front().cycle;
    os << "C=\t" << cur << "\n";
    for (const Event &e : events) {
        if (e.cycle != cur) {
            os << "C\t" << (e.cycle - cur) << "\n";
            cur = e.cycle;
        }
        os << e.line << "\n";
    }
}

bool
PipeTracer::write() const
{
    std::ofstream os(path_);
    if (!os)
        return false;
    writeTo(os);
    return bool(os);
}

} // namespace crisp
