#include "telemetry/runtime_trace.h"

#include <cstring>
#include <fstream>

#include "telemetry/json.h"

namespace crisp
{

std::atomic<RuntimeTracer *> RuntimeTracer::g_active{nullptr};
std::atomic<uint64_t> RuntimeTracer::g_generation{0};

/**
 * Per-thread binding of {tracer, slab}.  The generation counter is
 * bumped on every activate/deactivate, which invalidates cached
 * bindings even when a new tracer reuses the address of a destroyed
 * one (tests construct tracers back to back on the stack).
 */
struct RuntimeTracer::TlsCache
{
    RuntimeTracer *tracer = nullptr;
    uint64_t generation = 0;
    TraceSlab *slab = nullptr;
    /** Set when the kMaxSlabs cap blocked this thread's last grow:
     *  further records drop with one relaxed increment instead of
     *  retrying the registry mutex on every event. */
    bool exhausted = false;
};

RuntimeTracer::TlsCache &
RuntimeTracer::tls()
{
    thread_local TlsCache cache;
    return cache;
}

RuntimeTracer::RuntimeTracer()
    : epoch_(std::chrono::steady_clock::now())
{
}

RuntimeTracer::~RuntimeTracer()
{
    if (g_active.load(std::memory_order_relaxed) == this)
        deactivate();
}

void
RuntimeTracer::activate()
{
    g_active.store(this, std::memory_order_release);
    g_generation.fetch_add(1, std::memory_order_release);
}

void
RuntimeTracer::deactivate()
{
    g_active.store(nullptr, std::memory_order_release);
    g_generation.fetch_add(1, std::memory_order_release);
}

TraceSlab *
RuntimeTracer::bindThread(TlsCache &c, uint64_t gen)
{
    auto slab = std::make_shared<TraceSlab>(0);
    bool capped = false;
    {
        MutexLock lk(m_);
        if (slabs_.size() >= kMaxSlabs) {
            capped = true;
        } else {
            slab->tid = nextTid_++;
            slabs_.push_back(slab);
        }
    }
    c.tracer = this;
    c.generation = gen;
    c.slab = capped ? nullptr : slab.get();
    c.exhausted = capped;
    return c.slab;
}

TraceSlab *
RuntimeTracer::growSlab(TlsCache &c)
{
    auto slab = std::make_shared<TraceSlab>(c.slab->tid);
    {
        MutexLock lk(m_);
        if (slabs_.size() >= kMaxSlabs) {
            c.exhausted = true;
            return nullptr;
        }
        slabs_.push_back(slab);
    }
    c.slab = slab.get();
    return c.slab;
}

void
RuntimeTracer::record(const TraceEvent &ev)
{
    TlsCache &c = tls();
    const uint64_t gen =
        g_generation.load(std::memory_order_acquire);
    if (c.tracer != this || c.generation != gen)
        bindThread(c, gen);
    if (c.exhausted) {
        dropped_.fetch_add(1, std::memory_order_relaxed);
        return;
    }
    TraceSlab *s = c.slab;
    if (!s) {
        dropped_.fetch_add(1, std::memory_order_relaxed);
        return;
    }
    uint32_t n = s->count.load(std::memory_order_relaxed);
    if (n == TraceSlab::kCapacity) {
        s = growSlab(c);
        if (!s) {
            dropped_.fetch_add(1, std::memory_order_relaxed);
            return;
        }
        n = 0;
    }
    s->events[n] = ev;
    // Publication point: readers acquire-load count and may read
    // exactly the slots below it.
    s->count.store(n + 1, std::memory_order_release);
}

namespace
{

void
copyArg(TraceEvent &ev, const char *argKey, const char *argVal)
{
    if (!argKey || !argVal)
        return;
    ev.argKey = argKey;
    std::snprintf(ev.argVal, sizeof ev.argVal, "%s", argVal);
}

} // namespace

void
RuntimeTracer::recordSpan(const char *cat, const char *name,
                          uint64_t beginNs, uint64_t endNs,
                          const char *argKey, const char *argVal)
{
    TraceEvent ev;
    ev.cat = cat;
    ev.name = name;
    ev.ph = 'X';
    ev.ts = beginNs;
    ev.dur = endNs >= beginNs ? endNs - beginNs : 0;
    copyArg(ev, argKey, argVal);
    record(ev);
}

void
RuntimeTracer::recordInstant(const char *cat, const char *name,
                             const char *argKey, const char *argVal)
{
    TraceEvent ev;
    ev.cat = cat;
    ev.name = name;
    ev.ph = 'i';
    ev.ts = nowNs();
    copyArg(ev, argKey, argVal);
    record(ev);
}

void
RuntimeTracer::recordAsyncPair(const char *cat, const char *name,
                               uint64_t beginNs, uint64_t endNs,
                               const char *argKey,
                               const char *argVal)
{
    const uint64_t id =
        nextAsyncId_.fetch_add(1, std::memory_order_relaxed);
    TraceEvent ev;
    ev.cat = cat;
    ev.name = name;
    ev.id = id;
    copyArg(ev, argKey, argVal);
    ev.ph = 'b';
    ev.ts = beginNs;
    record(ev);
    ev.ph = 'e';
    ev.ts = endNs >= beginNs ? endNs : beginNs;
    record(ev);
}

std::vector<std::shared_ptr<TraceSlab>>
RuntimeTracer::snapshotSlabs() const
{
    // Copy the list under the mutex, serialize outside it: flushing
    // must never hold the registry mutex while building JSON (see
    // the crisp_lint serialize-under-lock rule).
    MutexLock lk(m_);
    return slabs_;
}

namespace
{

void
appendEventJson(std::string &out, const TraceEvent &ev,
                uint32_t tid)
{
    out += "{\"ph\":\"";
    out += ev.ph;
    out += "\",\"pid\":1,\"tid\":";
    out += std::to_string(tid);
    out += ",\"ts\":";
    out += jsonNumber(double(ev.ts) / 1000.0);
    if (ev.ph == 'X') {
        out += ",\"dur\":";
        out += jsonNumber(double(ev.dur) / 1000.0);
    }
    out += ",\"cat\":";
    out += jsonQuote(ev.cat ? ev.cat : "");
    out += ",\"name\":";
    out += jsonQuote(ev.name ? ev.name : "");
    if (ev.ph == 'i')
        out += ",\"s\":\"t\"";
    if (ev.ph == 'b' || ev.ph == 'e') {
        out += ",\"id\":";
        out += std::to_string(ev.id);
    }
    if (ev.argKey) {
        out += ",\"args\":{";
        out += jsonQuote(ev.argKey);
        out += ":";
        out += jsonQuote(ev.argVal);
        out += "}";
    }
    out += "}";
}

} // namespace

std::string
RuntimeTracer::toJson() const
{
    return toJson(std::string(), std::string());
}

std::string
RuntimeTracer::toJson(const std::string &argKey,
                      const std::string &argVal) const
{
    const auto slabs = snapshotSlabs();
    const bool filtered = !argKey.empty();
    std::string out = "{\"displayTimeUnit\":\"ms\","
                      "\"traceEvents\":[";
    bool first = true;
    for (const auto &slab : slabs) {
        const uint32_t n =
            slab->count.load(std::memory_order_acquire);
        for (uint32_t i = 0; i < n; ++i) {
            const TraceEvent &ev = slab->events[i];
            if (filtered &&
                (!ev.argKey || argKey != ev.argKey ||
                 argVal != ev.argVal))
                continue;
            if (!first)
                out += ",\n";
            first = false;
            appendEventJson(out, ev, slab->tid);
        }
    }
    out += "]}\n";
    return out;
}

bool
RuntimeTracer::writeJson(const std::string &path,
                         std::string *error) const
{
    const std::string doc = toJson();
    std::ofstream f(path, std::ios::binary | std::ios::trunc);
    if (!f) {
        if (error)
            *error = "cannot open '" + path + "' for writing";
        return false;
    }
    f << doc;
    f.flush();
    if (!f.good()) {
        if (error)
            *error = "short write to '" + path + "'";
        return false;
    }
    return true;
}

size_t
RuntimeTracer::eventCount() const
{
    const auto slabs = snapshotSlabs();
    size_t total = 0;
    for (const auto &slab : slabs)
        total += slab->count.load(std::memory_order_acquire);
    return total;
}

} // namespace crisp
