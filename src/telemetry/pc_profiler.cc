#include "telemetry/pc_profiler.h"

#include <algorithm>

#include "cpu/dyn_inst.h"
#include "telemetry/stat_registry.h"

namespace crisp
{

void
PcProfiler::onIssue(const DynInst &inst, uint64_t cycle,
                    uint64_t rob_head_seq)
{
    const MicroOp &op = *inst.op;
    uint64_t wait = cycle > inst.dispatchCycle
                        ? cycle - inst.dispatchCycle
                        : 0;
    uint64_t dist = inst.seq - rob_head_seq;

    if (op.cls == OpClass::Load) {
        LoadEntry &e = loads_[op.pc];
        ++e.issues;
        if (inst.prioritized)
            ++e.critical;
        e.waitCycles += wait;
        e.robHeadDist += dist;
        if (inst.servedBy == MemLevel::Dram) {
            ++e.llcMisses;
            // MLP overlap: how many earlier LLC misses are still in
            // flight when this one issues. Drop completed entries
            // first; the survivor count is the overlap.
            auto dead = std::remove_if(
                outstandingMisses_.begin(), outstandingMisses_.end(),
                [cycle](uint64_t done) { return done <= cycle; });
            outstandingMisses_.erase(dead, outstandingMisses_.end());
            e.mlpOverlap += outstandingMisses_.size();
            outstandingMisses_.push_back(inst.doneCycle);
        }
        return;
    }
    if (isControlClass(op.cls) && inst.mispredicted) {
        BranchEntry &e = branches_[op.pc];
        ++e.mispredicts;
        e.waitCycles += wait;
        e.robHeadDist += dist;
    }
}

void
PcProfiler::onCriticalPick(uint64_t picked_pc, uint64_t bypassed_pc,
                           uint64_t lead)
{
    DecisionEntry &e = decisions_[{picked_pc, bypassed_pc}];
    ++e.picks;
    e.leadCycles += lead;
    ++decisionCount_;
    decisionLead_ += lead;
}

void
PcProfiler::merge(const PcProfiler &other)
{
    for (const auto &[pc, src] : other.loads_) {
        LoadEntry &dst = loads_[pc];
        dst.issues += src.issues;
        dst.llcMisses += src.llcMisses;
        dst.critical += src.critical;
        dst.waitCycles += src.waitCycles;
        dst.robHeadDist += src.robHeadDist;
        dst.mlpOverlap += src.mlpOverlap;
    }
    for (const auto &[pc, src] : other.branches_) {
        BranchEntry &dst = branches_[pc];
        dst.mispredicts += src.mispredicts;
        dst.waitCycles += src.waitCycles;
        dst.robHeadDist += src.robHeadDist;
    }
    for (const auto &[key, src] : other.decisions_) {
        DecisionEntry &dst = decisions_[key];
        dst.picks += src.picks;
        dst.leadCycles += src.leadCycles;
    }
    decisionCount_ += other.decisionCount_;
    decisionLead_ += other.decisionLead_;
}

namespace
{

/** Truncates @p rows to the top @p n by @p key column (descending,
 *  stable — the input is already in ascending key order, so ties
 *  resolve to the smallest PC). */
std::vector<std::vector<uint64_t>>
topByColumn(std::vector<std::vector<uint64_t>> rows, size_t key,
            size_t n)
{
    std::stable_sort(rows.begin(), rows.end(),
                     [key](const std::vector<uint64_t> &a,
                           const std::vector<uint64_t> &b) {
                         return a[key] > b[key];
                     });
    if (rows.size() > n)
        rows.resize(n);
    return rows;
}

} // namespace

std::vector<std::vector<uint64_t>>
PcProfiler::topLoads(size_t n) const
{
    std::vector<std::vector<uint64_t>> rows;
    rows.reserve(loads_.size());
    for (const auto &[pc, e] : loads_)
        rows.push_back({pc, e.issues, e.llcMisses, e.critical,
                        e.waitCycles, e.robHeadDist, e.mlpOverlap});
    return topByColumn(std::move(rows), 4, n);
}

std::vector<std::vector<uint64_t>>
PcProfiler::topBranches(size_t n) const
{
    std::vector<std::vector<uint64_t>> rows;
    rows.reserve(branches_.size());
    for (const auto &[pc, e] : branches_)
        rows.push_back(
            {pc, e.mispredicts, e.waitCycles, e.robHeadDist});
    return topByColumn(std::move(rows), 2, n);
}

std::vector<std::vector<uint64_t>>
PcProfiler::topDecisions(size_t n) const
{
    std::vector<std::vector<uint64_t>> rows;
    rows.reserve(decisions_.size());
    for (const auto &[pair, e] : decisions_)
        rows.push_back(
            {pair.first, pair.second, e.picks, e.leadCycles});
    return topByColumn(std::move(rows), 3, n);
}

void
PcProfiler::registerInto(StatRegistry &reg,
                         const std::string &prefix,
                         size_t top_n) const
{
    reg.addCounter(statPath(prefix, "tracked_load_pcs"),
                   loads_.size(), "static load PCs profiled");
    reg.addCounter(statPath(prefix, "tracked_branch_pcs"),
                   branches_.size(),
                   "static mispredicting-branch PCs profiled");
    reg.addCounter(statPath(prefix, "critical_picks"),
                   decisionCount_,
                   "two-level picks over the oldest ready");
    reg.addCounter(statPath(prefix, "critical_pick_lead_cycles"),
                   decisionLead_,
                   "total dispatch-age gap jumped by those picks");

    reg.addTable(statPath(prefix, "loads"),
                 {"pc", "issues", "llc_misses", "critical",
                  "wait_cycles", "rob_head_dist", "mlp_overlap"},
                 topLoads(top_n),
                 "per-PC load attribution, top-N by wait cycles");
    reg.addTable(statPath(prefix, "branches"),
                 {"pc", "mispredicts", "wait_cycles",
                  "rob_head_dist"},
                 topBranches(top_n),
                 "per-PC hard-branch attribution, top-N by wait "
                 "cycles");
    reg.addTable(statPath(prefix, "decisions"),
                 {"picked_pc", "bypassed_pc", "picks",
                  "lead_cycles"},
                 topDecisions(top_n),
                 "scheduler decision log, top-N by lead cycles");
}

} // namespace crisp
