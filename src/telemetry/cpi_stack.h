/**
 * @file
 * Top-down CPI-stack cycle accounting.
 *
 * Every simulated cycle is charged to exactly one bucket, so the
 * buckets always sum to the run's total cycles — the invariant the
 * telemetry tests pin. Attribution follows the retirement view of
 * top-down analysis (the UPC-timeline methodology of CRISP §2/Fig 1):
 *
 *  - retiring            at least one micro-op retired this cycle
 *  - backend-memory      no retire; the ROB head is a load (waiting
 *                        on cache/DRAM data or on a load port)
 *  - backend-core        no retire; the ROB head is a non-load
 *                        (execution latency / port pressure)
 *  - bad-speculation     ROB empty; fetch is gated on an unresolved
 *                        mispredicted branch or refilling after its
 *                        redirect
 *  - frontend-latency    ROB empty; fetch is waiting on an icache
 *                        miss
 *  - frontend-bandwidth  ROB empty; ops are in flight in the
 *                        fetch/decode/rename pipe but none has
 *                        reached dispatch (pipe fill/drain)
 *
 * Both tick engines charge the stack identically: the cycle engine
 * per tick, the event engine per tick plus one bulk charge for each
 * provably idle span (during which the classification cannot change,
 * because the ROB head and the frontend's blocking state are frozen).
 * tests/tick_model_test.cc asserts bit-identical stacks.
 */

#ifndef CRISP_TELEMETRY_CPI_STACK_H
#define CRISP_TELEMETRY_CPI_STACK_H

#include <array>
#include <cstdint>
#include <string>

namespace crisp
{

class StatRegistry;

/** The six top-down buckets. */
enum class CpiBucket : uint8_t {
    Retiring,
    FrontendLatency,
    FrontendBandwidth,
    BadSpeculation,
    BackendMemory,
    BackendCore,
};

/** Number of buckets in a CpiStack. */
constexpr size_t kNumCpiBuckets = 6;

/** @return the canonical kebab-case bucket name. */
const char *cpiBucketName(CpiBucket b);

/** Per-cycle accounting into the six buckets. */
struct CpiStack
{
    std::array<uint64_t, kNumCpiBuckets> cycles{};

    /** Charges @p n cycles to @p b. */
    void charge(CpiBucket b, uint64_t n = 1)
    {
        cycles[size_t(b)] += n;
    }

    /** @return cycles charged to @p b. */
    uint64_t operator[](CpiBucket b) const
    {
        return cycles[size_t(b)];
    }

    /** @return sum over all buckets (== total run cycles). */
    uint64_t total() const;

    /** @return bucket share of the total (0 for an empty stack). */
    double fraction(CpiBucket b) const;

    /** Accumulates another stack (for cross-run aggregation). */
    void merge(const CpiStack &other);

    /**
     * Subtracts @p base bucket-wise. Used by sampled simulation to
     * strip the detailed warm-up prefix from an interval's stack;
     * @p base must be an earlier snapshot of this stack.
     */
    void subtract(const CpiStack &base);

    /** Registers one counter per bucket plus the fractions. */
    void registerInto(StatRegistry &reg,
                      const std::string &prefix) const;

    bool operator==(const CpiStack &other) const = default;
};

} // namespace crisp

#endif // CRISP_TELEMETRY_CPI_STACK_H
