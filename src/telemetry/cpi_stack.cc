#include "telemetry/cpi_stack.h"

#include "telemetry/stat_registry.h"

namespace crisp
{

const char *
cpiBucketName(CpiBucket b)
{
    switch (b) {
      case CpiBucket::Retiring: return "retiring";
      case CpiBucket::FrontendLatency: return "frontend-latency";
      case CpiBucket::FrontendBandwidth:
        return "frontend-bandwidth";
      case CpiBucket::BadSpeculation: return "bad-speculation";
      case CpiBucket::BackendMemory: return "backend-memory";
      case CpiBucket::BackendCore: return "backend-core";
    }
    return "?";
}

uint64_t
CpiStack::total() const
{
    uint64_t sum = 0;
    for (uint64_t c : cycles)
        sum += c;
    return sum;
}

double
CpiStack::fraction(CpiBucket b) const
{
    uint64_t t = total();
    return t ? double(cycles[size_t(b)]) / double(t) : 0.0;
}

void
CpiStack::merge(const CpiStack &other)
{
    for (size_t b = 0; b < kNumCpiBuckets; ++b)
        cycles[b] += other.cycles[b];
}

void
CpiStack::subtract(const CpiStack &base)
{
    for (size_t b = 0; b < kNumCpiBuckets; ++b)
        cycles[b] -= base.cycles[b];
}

void
CpiStack::registerInto(StatRegistry &reg,
                       const std::string &prefix) const
{
    for (size_t b = 0; b < kNumCpiBuckets; ++b) {
        CpiBucket bucket = CpiBucket(b);
        // Dotted paths use the names with '-' intact: they are leaf
        // segments, not separators.
        std::string name = cpiBucketName(bucket);
        reg.addCounter(statPath(prefix, name), cycles[b],
                       "cycles charged to the " + name + " bucket");
        reg.addScalar(statPath(prefix, name + "_fraction"),
                      fraction(bucket),
                      "share of total cycles in " + name);
    }
    reg.addCounter(statPath(prefix, "total"), total(),
                   "sum over all buckets (== core cycles)");
}

} // namespace crisp
