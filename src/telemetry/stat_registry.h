/**
 * @file
 * Hierarchical statistics registry: one walkable namespace for every
 * counter the simulator produces.
 *
 * Components register their end-of-run statistics under dotted paths
 * ("core.rob.head_stall_cycles", "dram.row_hits", ...); the registry
 * keeps them in one sorted tree and exports the whole namespace as
 * JSON (nested objects) or CSV (flat path,value rows). Key order is
 * lexicographic everywhere, so two exports of the same run are
 * byte-identical regardless of registration order, platform hash
 * seeds, or the --jobs count that produced the stats.
 *
 * Five stat kinds are supported:
 *  - counter    monotonic uint64 event count
 *  - scalar     derived double (ratios, IPC)
 *  - info       free-text metadata (workload name, machine string)
 *  - histogram  a sim/stats.h Histogram snapshot (count, mean,
 *               percentiles and raw buckets are exported)
 *  - table      ordered integer rows with named columns (the
 *               per-static-instruction stall/wait tables, sorted by
 *               static id)
 *
 * Registering the same path twice, or a path that collides with an
 * existing namespace ("core" after "core.cycles"), throws — a stat
 * silently shadowing another is a bug worth failing loudly on.
 */

#ifndef CRISP_TELEMETRY_STAT_REGISTRY_H
#define CRISP_TELEMETRY_STAT_REGISTRY_H

#include <cstdint>
#include <map>
#include <string>
#include <vector>

#include "sim/stats.h"

namespace crisp
{

/** The registry. Cheap to construct; not thread-safe. */
class StatRegistry
{
  public:
    /** Discriminated union of one registered stat. */
    struct Stat
    {
        enum class Kind { Counter, Scalar, Info, Hist, Table };

        Kind kind = Kind::Counter;
        uint64_t u64 = 0;          ///< Counter payload
        double f64 = 0.0;          ///< Scalar payload
        std::string text;          ///< Info payload
        Histogram hist{1.0, 1};    ///< Hist payload
        std::vector<std::string> columns;          ///< Table header
        std::vector<std::vector<uint64_t>> rows;   ///< Table payload
        std::string desc;          ///< one-line description
    };

    /** Registers a counter. @throws std::logic_error on collision. */
    void addCounter(const std::string &path, uint64_t value,
                    std::string desc = "");

    /** Registers a derived scalar. */
    void addScalar(const std::string &path, double value,
                   std::string desc = "");

    /** Registers free-text metadata. */
    void addInfo(const std::string &path, std::string value,
                 std::string desc = "");

    /** Registers a histogram snapshot (copied). */
    void addHistogram(const std::string &path, const Histogram &h,
                      std::string desc = "");

    /**
     * Registers an ordered table. Every row must have exactly
     * @p columns .size() cells.
     */
    void addTable(const std::string &path,
                  std::vector<std::string> columns,
                  std::vector<std::vector<uint64_t>> rows,
                  std::string desc = "");

    /** @return true when @p path is registered. */
    bool has(const std::string &path) const;

    /** @return the stat at @p path. @throws std::out_of_range. */
    const Stat &at(const std::string &path) const;

    /** @return counter value. @throws on missing path / wrong kind. */
    uint64_t counter(const std::string &path) const;

    /** @return scalar value. @throws on missing path / wrong kind. */
    double scalar(const std::string &path) const;

    /** @return every registered path, lexicographically sorted. */
    std::vector<std::string> paths() const;

    /** @return number of registered stats. */
    size_t size() const { return stats_.size(); }

    /** @return the whole namespace as nested, sorted JSON. */
    std::string toJson() const;

    /** @return the namespace as flat, sorted "path,value" CSV. */
    std::string toCsv() const;

    /** Writes toJson() to @p file. @return false on I/O error. */
    bool writeJson(const std::string &file) const;

    /** Writes toCsv() to @p file. @return false on I/O error. */
    bool writeCsv(const std::string &file) const;

  private:
    std::map<std::string, Stat> stats_;

    void insert(const std::string &path, Stat stat);
};

/** @return @p prefix + "." + @p name (no leading dot if empty). */
std::string statPath(const std::string &prefix,
                     const std::string &name);

} // namespace crisp

#endif // CRISP_TELEMETRY_STAT_REGISTRY_H
