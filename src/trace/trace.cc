#include "trace/trace.h"

namespace crisp
{

std::vector<uint64_t>
Trace::staticExecCounts() const
{
    std::vector<uint64_t> counts(program ? program->code.size() : 0, 0);
    for (const auto &op : ops) {
        if (op.sidx >= counts.size())
            counts.resize(op.sidx + 1, 0);
        ++counts[op.sidx];
    }
    return counts;
}

uint64_t
Trace::dynamicBytes() const
{
    uint64_t bytes = 0;
    for (const auto &op : ops)
        bytes += op.instSize;
    return bytes;
}

void
Trace::restampFromProgram(const Program &prog)
{
    for (auto &op : ops) {
        const StaticInst &si = prog.code[op.sidx];
        op.critical = si.critical;
        op.instSize = si.size;
        op.pc = si.pc;
    }
    // nextPc must also be refreshed: recompute from the following op.
    for (size_t i = 0; i + 1 < ops.size(); ++i)
        ops[i].nextPc = ops[i + 1].pc;
    if (!ops.empty()) {
        auto &last = ops.back();
        last.nextPc = last.pc + last.instSize;
    }
}

} // namespace crisp
