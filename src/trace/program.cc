#include "trace/program.h"

namespace crisp
{

void
Program::layout()
{
    pcIndex_.clear();
    pcIndex_.reserve(code.size());
    uint64_t pc = kCodeBase;
    for (uint32_t i = 0; i < code.size(); ++i) {
        code[i].pc = pc;
        pcIndex_[pc] = i;
        pc += code[i].size;
    }
}

int64_t
Program::indexOfPc(uint64_t pc) const
{
    auto it = pcIndex_.find(pc);
    return it == pcIndex_.end() ? -1 : static_cast<int64_t>(it->second);
}

uint64_t
Program::staticBytes() const
{
    uint64_t bytes = 0;
    for (const auto &inst : code)
        bytes += inst.size;
    return bytes;
}

uint64_t
Program::criticalCount() const
{
    uint64_t n = 0;
    for (const auto &inst : code)
        n += inst.critical ? 1 : 0;
    return n;
}

} // namespace crisp
