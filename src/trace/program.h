/**
 * @file
 * Static program image: code, entry point, and initial data.
 *
 * A Program is produced by the Assembler (vm/assembler.h), executed
 * by the Interpreter (vm/interpreter.h) and rewritten in place by the
 * CRISP tagger (core/tagger.h), which models the post-link-time
 * optimisation step of the paper's software flow (CRISP §4.1).
 */

#ifndef CRISP_TRACE_PROGRAM_H
#define CRISP_TRACE_PROGRAM_H

#include <cstdint>
#include <string>
#include <unordered_map>
#include <vector>

#include "isa/micro_op.h"

namespace crisp
{

/** Base address at which code is laid out. */
constexpr uint64_t kCodeBase = 0x1000;

/**
 * A complete static program: the code image plus the initial contents
 * of data memory (64-bit words at 64-bit-aligned byte addresses).
 */
class Program
{
  public:
    /** The code image, indexed by static instruction index. */
    std::vector<StaticInst> code;

    /** Static index of the first instruction to execute. */
    uint32_t entry = 0;

    /** Initial data memory: 8-byte-aligned address -> 64-bit value. */
    std::vector<std::pair<uint64_t, uint64_t>> dataInit;

    /** Human-readable name (workload id). */
    std::string name;

    /**
     * Assigns consecutive byte addresses to all instructions starting
     * at kCodeBase using each instruction's current size, and rebuilds
     * the pc lookup table. Must be called after any size change
     * (e.g. after the tagger adds critical prefixes).
     */
    void layout();

    /** @return the static index at byte address @p pc, or -1. */
    int64_t indexOfPc(uint64_t pc) const;

    /** @return total code bytes (static footprint). */
    uint64_t staticBytes() const;

    /** @return number of instructions flagged critical. */
    uint64_t criticalCount() const;

    /** Appends an initial 64-bit data value at @p addr. */
    void poke(uint64_t addr, uint64_t value)
    {
        dataInit.emplace_back(addr, value);
    }

  private:
    std::unordered_map<uint64_t, uint32_t> pcIndex_;
};

} // namespace crisp

#endif // CRISP_TRACE_PROGRAM_H
