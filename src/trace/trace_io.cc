#include "trace/trace_io.h"

#include <cstdio>
#include <cstring>
#include <memory>

namespace crisp
{

namespace
{

constexpr uint32_t kMagic = 0x43525350; // "CRSP"
constexpr uint32_t kVersion = 2;

struct FileHeader
{
    uint32_t magic;
    uint32_t version;
    uint64_t numOps;
    uint64_t numStatic;
    uint64_t numData;
    uint32_t entry;
    uint32_t nameLen;
};

} // namespace

bool
saveTrace(const Trace &trace, const std::string &path)
{
    if (!trace.program)
        return false;
    std::FILE *f = std::fopen(path.c_str(), "wb");
    if (!f)
        return false;

    const Program &prog = *trace.program;
    FileHeader hdr{};
    hdr.magic = kMagic;
    hdr.version = kVersion;
    hdr.numOps = trace.ops.size();
    hdr.numStatic = prog.code.size();
    hdr.numData = prog.dataInit.size();
    hdr.entry = prog.entry;
    hdr.nameLen = static_cast<uint32_t>(prog.name.size());

    bool ok = std::fwrite(&hdr, sizeof(hdr), 1, f) == 1;
    if (ok && hdr.nameLen)
        ok = std::fwrite(prog.name.data(), 1, hdr.nameLen, f) ==
             hdr.nameLen;
    if (ok && hdr.numStatic)
        ok = std::fwrite(prog.code.data(), sizeof(StaticInst),
                         prog.code.size(), f) == prog.code.size();
    if (ok && hdr.numData)
        ok = std::fwrite(prog.dataInit.data(),
                         sizeof(prog.dataInit[0]),
                         prog.dataInit.size(), f) == prog.dataInit.size();
    if (ok && hdr.numOps)
        ok = std::fwrite(trace.ops.data(), sizeof(MicroOp),
                         trace.ops.size(), f) == trace.ops.size();
    std::fclose(f);
    return ok;
}

Trace
loadTrace(const std::string &path)
{
    Trace trace;
    std::FILE *f = std::fopen(path.c_str(), "rb");
    if (!f)
        return trace;

    FileHeader hdr{};
    if (std::fread(&hdr, sizeof(hdr), 1, f) != 1 ||
        hdr.magic != kMagic || hdr.version != kVersion) {
        std::fclose(f);
        return trace;
    }

    auto prog = std::make_shared<Program>();
    prog->entry = hdr.entry;
    bool ok = true;
    if (hdr.nameLen) {
        prog->name.resize(hdr.nameLen);
        ok = std::fread(prog->name.data(), 1, hdr.nameLen, f) ==
             hdr.nameLen;
    }
    if (ok && hdr.numStatic) {
        prog->code.resize(hdr.numStatic);
        ok = std::fread(prog->code.data(), sizeof(StaticInst),
                        hdr.numStatic, f) == hdr.numStatic;
    }
    if (ok && hdr.numData) {
        prog->dataInit.resize(hdr.numData);
        ok = std::fread(prog->dataInit.data(),
                        sizeof(prog->dataInit[0]), hdr.numData, f) ==
             hdr.numData;
    }
    if (ok && hdr.numOps) {
        trace.ops.resize(hdr.numOps);
        ok = std::fread(trace.ops.data(), sizeof(MicroOp), hdr.numOps,
                        f) == hdr.numOps;
    }
    std::fclose(f);
    if (!ok) {
        trace.ops.clear();
        return trace;
    }
    prog->layout();
    trace.program = std::move(prog);
    return trace;
}

} // namespace crisp
