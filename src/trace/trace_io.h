/**
 * @file
 * Binary save/load for traces and programs.
 *
 * Mirrors the paper's offline flow where traces are captured once and
 * analysed by separate tools (CRISP §4.1 reports 5 GB per 100 M
 * instructions; our format is a compact fixed-width record).
 */

#ifndef CRISP_TRACE_TRACE_IO_H
#define CRISP_TRACE_TRACE_IO_H

#include <string>

#include "trace/trace.h"

namespace crisp
{

/**
 * Writes @p trace (ops and program) to @p path.
 * @return true on success.
 */
bool saveTrace(const Trace &trace, const std::string &path);

/**
 * Reads a trace previously written by saveTrace().
 * @return the trace; trace.program is null and trace.ops empty on
 *         failure.
 */
Trace loadTrace(const std::string &path);

} // namespace crisp

#endif // CRISP_TRACE_TRACE_IO_H
