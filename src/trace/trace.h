/**
 * @file
 * Dynamic instruction trace.
 *
 * A Trace is the executed micro-op stream of one Program run. It is
 * the interchange format between the VM, the software profiler/slice
 * extractor (which plays the role of DynamoRIO Memtrace in the paper,
 * CRISP §3.3), and the cycle-level core.
 */

#ifndef CRISP_TRACE_TRACE_H
#define CRISP_TRACE_TRACE_H

#include <cstdint>
#include <memory>
#include <vector>

#include "isa/micro_op.h"
#include "trace/program.h"

namespace crisp
{

/** A dynamic micro-op stream plus the program it came from. */
class Trace
{
  public:
    /** The executed micro-ops, in program (commit) order. */
    std::vector<MicroOp> ops;

    /** The static program this trace was produced from. */
    std::shared_ptr<const Program> program;

    /** @return number of dynamic micro-ops. */
    size_t size() const { return ops.size(); }

    /** @return the i-th dynamic micro-op. */
    const MicroOp &operator[](size_t i) const { return ops[i]; }

    /** @return dynamic count per static instruction index. */
    std::vector<uint64_t> staticExecCounts() const;

    /** @return total dynamic code bytes (dynamic footprint). */
    uint64_t dynamicBytes() const;

    /**
     * Re-stamps per-op critical flags and instruction sizes from the
     * (possibly re-tagged and re-laid-out) static program. PCs are
     * refreshed as well so the icache model sees post-rewrite
     * addresses.
     */
    void restampFromProgram(const Program &prog);
};

} // namespace crisp

#endif // CRISP_TRACE_TRACE_H
