/**
 * @file
 * In-flight dynamic instruction state.
 */

#ifndef CRISP_CPU_DYN_INST_H
#define CRISP_CPU_DYN_INST_H

#include <cstdint>
#include <vector>

#include "cache/hierarchy.h"
#include "isa/micro_op.h"

namespace crisp
{

/**
 * One in-flight instruction. Dependencies are resolved with a
 * wakeup discipline: a consumer either captures its producer's known
 * completion cycle at dispatch, or registers itself on the producer's
 * consumer list and is woken when the producer issues (at which point
 * the completion cycle becomes known).
 */
struct DynInst
{
    uint64_t seq = 0;           ///< fetch order
    const MicroOp *op = nullptr;
    uint32_t traceIdx = 0;

    uint64_t srcReadyCycle = 0; ///< max completion of resolved inputs
    uint64_t doneCycle = 0;     ///< valid once issued
    uint8_t pendingProducers = 0;

    // Lifecycle timestamps for pipeline tracing (telemetry). Always
    // maintained — three stores per instruction are noise next to the
    // cache/scheduler work — so a tracer can be attached to any run.
    uint64_t fetchCycle = 0;
    uint64_t dispatchCycle = 0;
    uint64_t issueCycle = 0;

    bool inWindow = false;      ///< occupies the DynInst ring
    bool issued = false;
    bool prioritized = false;   ///< critical prefix / IST hit
    bool mispredicted = false;  ///< fetch-blocking branch
    bool forwarded = false;     ///< load serviced by store forwarding
    int16_t rsSlot = -1;
    MemLevel servedBy = MemLevel::L1;

    /** Consumers to wake when this instruction issues. */
    std::vector<DynInst *> consumers;

    /** @return true once the result is available at @p cycle. */
    bool completed(uint64_t cycle) const
    {
        return issued && doneCycle <= cycle;
    }

    /** Resets for reuse from the ring allocator. */
    void reset(uint64_t s, const MicroOp *o, uint32_t tidx)
    {
        seq = s;
        op = o;
        traceIdx = tidx;
        srcReadyCycle = 0;
        doneCycle = 0;
        pendingProducers = 0;
        fetchCycle = 0;
        dispatchCycle = 0;
        issueCycle = 0;
        inWindow = true;
        issued = false;
        prioritized = false;
        mispredicted = false;
        forwarded = false;
        rsSlot = -1;
        servedBy = MemLevel::L1;
        consumers.clear();
    }
};

} // namespace crisp

#endif // CRISP_CPU_DYN_INST_H
