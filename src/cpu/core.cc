#include "cpu/core.h"

#include <cassert>
#include <cstdio>
#include <cstdlib>

namespace crisp
{

Core::Core(const Trace &trace, const SimConfig &cfg)
    : trace_(trace), cfg_(cfg),
      mem_(cfg),
      frontend_(trace, cfg, mem_),
      rob_(cfg.robSize),
      rs_(cfg.rsSize),
      lsq_(cfg.lqSize, cfg.sqSize),
      fus_(cfg),
      fetchPipeCap_(cfg.width * (cfg.fetchToDispatchLat + 1)),
      candAlu_(cfg.rsSize), candLoad_(cfg.rsSize),
      candStore_(cfg.rsSize), prioAlu_(cfg.rsSize),
      prioLoad_(cfg.rsSize), prioStore_(cfg.rsSize)
{
    if (cfg.enableIbda)
        ibda_ = std::make_unique<Ibda>(cfg);
    ring_.resize(cfg.robSize + fetchPipeCap_ + 2 * cfg.width + 8);
}

DynInst *
Core::allocInst(const FetchedOp &fo)
{
    DynInst *inst = &ring_[nextSeq_ % ring_.size()];
    assert(!inst->inWindow && "DynInst ring too small");
    inst->reset(nextSeq_, fo.op, fo.traceIdx);
    ++nextSeq_;
    inst->mispredicted = fo.mispredicted;
    return inst;
}

void
Core::wakeConsumers(DynInst *inst)
{
    for (DynInst *c : inst->consumers) {
        if (inst->doneCycle > c->srcReadyCycle)
            c->srcReadyCycle = inst->doneCycle;
        assert(c->pendingProducers > 0);
        --c->pendingProducers;
    }
    inst->consumers.clear();
}

void
Core::issueInst(DynInst *inst)
{
    const MicroOp &op = *inst->op;
    uint64_t done;

    switch (op.cls) {
      case OpClass::Load: {
        if (inst->forwarded) {
            done = cycle_ + cfg_.forwardLatency;
            ++stats_.forwardedLoads;
        } else {
            auto res = mem_.load(op.effAddr, op.pc, cycle_,
                                 inst->prioritized);
            done = res.readyCycle;
            inst->servedBy = res.servedBy;
            if (res.llcMiss())
                ++stats_.llcMissLoads;
        }
        if (ibda_)
            ibda_->onLoadComplete(op.pc,
                                  inst->servedBy == MemLevel::Dram);
        break;
      }
      case OpClass::Prefetch:
        mem_.prefetchData(op.effAddr, cycle_);
        done = cycle_ + lat_[op.cls];
        break;
      case OpClass::Store:
        // Address generation only; the write happens at retire.
        done = cycle_ + lat_[op.cls];
        break;
      default:
        done = cycle_ + lat_[op.cls];
        break;
    }

    inst->issued = true;
    inst->doneCycle = done;
    {
        uint64_t wait = cycle_ > inst->srcReadyCycle
                            ? cycle_ - inst->srcReadyCycle
                            : 0;
        auto &w = stats_.issueWaitByStatic[op.sidx];
        w.first += wait;
        ++w.second;
    }
    ++stats_.issued;
    if (inst->prioritized)
        ++stats_.issuedPrioritized;
    wakeConsumers(inst);
    if (inst->mispredicted)
        frontend_.onBranchResolved(done + cfg_.redirectPenalty);
    rs_.release(inst->rsSlot);
}

unsigned
Core::selectFromPool(FuPool pool, SlotVector &cand, SlotVector &prio,
                     unsigned budget)
{
    unsigned issued = 0;
    bool crisp = cfg_.scheduler == SchedulerPolicy::CrispPriority ||
                 cfg_.enableIbda;
    while (budget > 0 && fus_.available(pool)) {
        int slot = -1;
        // CRISP/IBDA two-level pick: oldest ready prioritized
        // instruction first, falling back to the plain oldest.
        if (crisp && prio.any())
            slot = rs_.age().selectOldest(prio);
        if (slot < 0)
            slot = rs_.age().selectOldest(cand);
        if (slot < 0)
            break;
        DynInst *inst = rs_.at(unsigned(slot));
        cand.clear(unsigned(slot));
        prio.clear(unsigned(slot));
        issueInst(inst);
        fus_.claim(pool, inst->op->cls, cycle_, inst->doneCycle);
        ++issued;
        --budget;
    }
    return issued;
}

void
Core::issueStage()
{
    fus_.beginCycle(cycle_);
    candAlu_.clearAll();
    candLoad_.clearAll();
    candStore_.clearAll();
    prioAlu_.clearAll();
    prioLoad_.clearAll();
    prioStore_.clearAll();

    // Scan only occupied slots (set bits), not the whole capacity.
    bool any = false;
    const SlotVector &occ = rs_.occupied();
    for (size_t w = 0; w < occ.wordCount(); ++w) {
      for (uint64_t bits = occ.word(w); bits; bits &= bits - 1) {
        unsigned s =
            unsigned(w * 64) + unsigned(__builtin_ctzll(bits));
        DynInst *inst = rs_.at(s);
        if (inst->issued)
            continue;
        if (inst->pendingProducers > 0 ||
            inst->srcReadyCycle > cycle_)
            continue;
        any = true;
        switch (poolOf(inst->op->cls)) {
          case FuPool::Alu:
            candAlu_.set(s);
            if (inst->prioritized)
                prioAlu_.set(s);
            break;
          case FuPool::Load:
            candLoad_.set(s);
            if (inst->prioritized)
                prioLoad_.set(s);
            break;
          case FuPool::Store:
            candStore_.set(s);
            if (inst->prioritized)
                prioStore_.set(s);
            break;
        }
      }
    }
    if (!any)
        return;

    unsigned budget = cfg_.width;
    budget -= selectFromPool(FuPool::Load, candLoad_, prioLoad_,
                             budget);
    budget -= selectFromPool(FuPool::Store, candStore_, prioStore_,
                             budget);
    selectFromPool(FuPool::Alu, candAlu_, prioAlu_, budget);
}

void
Core::dispatchStage()
{
    for (unsigned k = 0; k < cfg_.width; ++k) {
        if (fetchPipe_.empty() ||
            fetchPipe_.front().readyCycle > cycle_)
            return;
        DynInst *inst = fetchPipe_.front().inst;
        const MicroOp &op = *inst->op;
        if (rob_.full() || rs_.full())
            return;
        if (op.isLoad() && lsq_.loadQueueFull())
            return;
        if (op.isStore() && lsq_.storeQueueFull())
            return;
        fetchPipe_.pop_front();

        rob_.push(inst);
        rs_.insert(inst);

        // Register dependencies.
        auto hook_src = [&](RegId r) {
            if (r == kNoReg)
                return;
            DynInst *p = lastWriter_[r];
            if (!p)
                return;
            if (p->issued) {
                if (p->doneCycle > inst->srcReadyCycle)
                    inst->srcReadyCycle = p->doneCycle;
            } else {
                p->consumers.push_back(inst);
                ++inst->pendingProducers;
            }
        };
        hook_src(op.src1);
        hook_src(op.src2);
        hook_src(op.src3);

        // Memory dependencies (exact, word-granular).
        if (op.isLoad()) {
            DynInst *store = lsq_.dispatchLoad(op.effAddr);
            if (store) {
                inst->forwarded = true;
                if (store->issued) {
                    if (store->doneCycle > inst->srcReadyCycle)
                        inst->srcReadyCycle = store->doneCycle;
                } else {
                    store->consumers.push_back(inst);
                    ++inst->pendingProducers;
                }
            }
        } else if (op.isStore()) {
            lsq_.dispatchStore(inst, op.effAddr);
        }

        // Priority marking: CRISP tag or IBDA rename-stage analysis.
        if (ibda_)
            inst->prioritized = ibda_->onDispatch(op, lastWriterPc_);
        else
            inst->prioritized = op.critical;

        if (op.dst != kNoReg) {
            lastWriter_[op.dst] = inst;
            lastWriterPc_[op.dst] = op.pc;
        }
    }
}

void
Core::fetchStage()
{
    if (fetchPipe_.size() + cfg_.width > fetchPipeCap_)
        return;
    fetchScratch_.clear();
    frontend_.fetch(cycle_, cfg_.width, fetchScratch_);
    for (const FetchedOp &fo : fetchScratch_) {
        DynInst *inst = allocInst(fo);
        fetchPipe_.push_back(
            {inst, cycle_ + cfg_.fetchToDispatchLat});
    }
}

void
Core::retireStage()
{
    unsigned retired = 0;
    while (retired < cfg_.width && !rob_.empty()) {
        DynInst *head = rob_.head();
        if (!head->completed(cycle_))
            break;
        const MicroOp &op = *head->op;
        if (op.isLoad()) {
            lsq_.retireLoad();
        } else if (op.isStore()) {
            // Commit the store to the memory system.
            mem_.store(op.effAddr, op.pc, cycle_);
            lsq_.retireStore(head, op.effAddr);
        }
        if (op.dst != kNoReg && lastWriter_[op.dst] == head)
            lastWriter_[op.dst] = nullptr;
        head->inWindow = false;
        rob_.pop();
        ++retired;
        ++stats_.retired;
    }
    if (retired == 0 && !rob_.empty()) {
        ++stats_.robHeadStallCycles;
        DynInst *head = rob_.head();
        if (head->op->isLoad())
            ++stats_.robHeadLoadStallCycles;
        ++stats_.headStallByStatic[head->op->sidx];
    }
    if (recordTimeline_)
        stats_.retireTimeline.push_back(uint8_t(retired));
}

CoreStats
Core::run(uint64_t max_cycles, bool record_timeline)
{
    recordTimeline_ = record_timeline;
    uint64_t last_progress_cycle = 0;
    uint64_t last_retired = 0;

    while (stats_.retired < trace_.size() && cycle_ < max_cycles) {
        ++cycle_;
        retireStage();
        issueStage();
        dispatchStage();
        fetchStage();

        if (stats_.retired != last_retired) {
            last_retired = stats_.retired;
            last_progress_cycle = cycle_;
        } else if (cycle_ - last_progress_cycle > 2'000'000) {
            std::fprintf(stderr,
                         "core deadlock at cycle %llu (retired %llu"
                         " of %zu)\n",
                         (unsigned long long)cycle_,
                         (unsigned long long)stats_.retired,
                         trace_.size());
            std::abort();
        }
    }

    stats_.cycles = cycle_;
    stats_.frontend = frontend_.stats();
    stats_.l1i = mem_.l1i().stats();
    stats_.l1d = mem_.l1d().stats();
    stats_.llc = mem_.llc().stats();
    stats_.dram = mem_.dram().stats();
    if (ibda_)
        stats_.ibda = ibda_->stats();
    return stats_;
}

} // namespace crisp
