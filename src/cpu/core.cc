#include "cpu/core.h"

#include <algorithm>
#include <cassert>
#include <sstream>

#include "check/invariant_checker.h"
#include "sim/cancel.h"
#include "telemetry/pc_profiler.h"
#include "telemetry/pipe_tracer.h"
#include "telemetry/stat_registry.h"

namespace crisp
{

namespace
{

std::string
deadlockMessage(uint64_t cycle, uint64_t retired, size_t trace_size,
                const std::string &context)
{
    std::ostringstream os;
    os << "simulation deadlock";
    if (!context.empty())
        os << " in " << context;
    os << ": no retirement progress at cycle " << cycle
       << " (retired " << retired << " of " << trace_size << ")";
    return os.str();
}

} // namespace

SimDeadlockError::SimDeadlockError(uint64_t cycle_arg,
                                   uint64_t retired_arg,
                                   size_t trace_size,
                                   std::string context_arg)
    : std::runtime_error(deadlockMessage(cycle_arg, retired_arg,
                                         trace_size, context_arg)),
      cycle(cycle_arg), retired(retired_arg), traceSize(trace_size),
      context(std::move(context_arg))
{
}

Core::Core(const Trace &trace, const SimConfig &cfg)
    : trace_(trace), cfg_(cfg),
      mem_(cfg),
      frontend_(trace, cfg, mem_),
      rob_(cfg.robSize),
      rs_(cfg.rsSize),
      lsq_(cfg.lqSize, cfg.sqSize),
      fus_(cfg),
      fetchPipeCap_(cfg.width * (cfg.fetchToDispatchLat + 1)),
      eventMode_(cfg.tickModel == TickModel::Event),
      candAlu_(cfg.rsSize), candLoad_(cfg.rsSize),
      candStore_(cfg.rsSize), prioAlu_(cfg.rsSize),
      prioLoad_(cfg.rsSize), prioStore_(cfg.rsSize)
{
    if (cfg.enableIbda)
        ibda_ = std::make_unique<Ibda>(cfg);
    if (cfg.checkInvariants)
        checker_ = std::make_unique<InvariantChecker>(cfg.checkEvery);
    ring_.resize(cfg.robSize + fetchPipeCap_ + 2 * cfg.width + 8);
}

Core::~Core() = default;

DynInst *
Core::allocInst(const FetchedOp &fo)
{
    DynInst *inst = &ring_[nextSeq_ % ring_.size()];
    assert(!inst->inWindow && "DynInst ring too small");
    inst->reset(nextSeq_, fo.op, fo.traceIdx);
    ++nextSeq_;
    inst->mispredicted = fo.mispredicted;
    inst->fetchCycle = cycle_;
    return inst;
}

void
Core::markCandidate(DynInst *inst)
{
    unsigned s = unsigned(inst->rsSlot);
    switch (poolOf(inst->op->cls)) {
      case FuPool::Alu:
        candAlu_.set(s);
        if (inst->prioritized)
            prioAlu_.set(s);
        break;
      case FuPool::Load:
        candLoad_.set(s);
        if (inst->prioritized)
            prioLoad_.set(s);
        break;
      case FuPool::Store:
        candStore_.set(s);
        if (inst->prioritized)
            prioStore_.set(s);
        break;
    }
}

void
Core::scheduleReady(DynInst *inst, uint64_t earliest)
{
    // Once the last producer has resolved, srcReadyCycle is final:
    // the entry either becomes a candidate now or is parked on the
    // heap until its data arrives. @p earliest gates entries woken
    // mid-issue to the next tick, mirroring the cycle engine's
    // stage-entry snapshot.
    uint64_t ready = std::max(inst->srcReadyCycle, earliest);
    if (ready > cycle_) {
        readyHeap_.emplace(ready, uint32_t(inst->rsSlot));
        return;
    }
    markCandidate(inst);
}

void
Core::wakeConsumers(DynInst *inst)
{
    for (DynInst *c : inst->consumers) {
        if (inst->doneCycle > c->srcReadyCycle)
            c->srcReadyCycle = inst->doneCycle;
        assert(c->pendingProducers > 0);
        --c->pendingProducers;
        // A consumer woken while issue is in flight first competes
        // for ports at the next tick, exactly like the cycle
        // engine's rescan would see it.
        if (eventMode_ && c->pendingProducers == 0)
            scheduleReady(c, cycle_ + 1);
    }
    inst->consumers.clear();
}

void
Core::issueInst(DynInst *inst)
{
    const MicroOp &op = *inst->op;
    uint64_t done;

    switch (op.cls) {
      case OpClass::Load: {
        if (inst->forwarded) {
            done = cycle_ + cfg_.forwardLatency;
            ++stats_.forwardedLoads;
        } else {
            auto res = mem_.load(op.effAddr, op.pc, cycle_,
                                 inst->prioritized);
            done = res.readyCycle;
            inst->servedBy = res.servedBy;
            if (res.llcMiss())
                ++stats_.llcMissLoads;
        }
        if (ibda_)
            ibda_->onLoadComplete(op.pc,
                                  inst->servedBy == MemLevel::Dram);
        break;
      }
      case OpClass::Prefetch:
        mem_.prefetchData(op.effAddr, cycle_);
        done = cycle_ + lat_[op.cls];
        break;
      case OpClass::Store:
        // Address generation only; the write happens at retire.
        done = cycle_ + lat_[op.cls];
        break;
      default:
        done = cycle_ + lat_[op.cls];
        break;
    }

    inst->issued = true;
    inst->doneCycle = done;
    inst->issueCycle = cycle_;
    {
        uint64_t wait = cycle_ > inst->srcReadyCycle
                            ? cycle_ - inst->srcReadyCycle
                            : 0;
        auto &w = stats_.issueWaitByStatic[op.sidx];
        w.first += wait;
        ++w.second;
        stats_.issueWaitHist.add(double(wait));
    }
    ++stats_.issued;
    if (inst->prioritized)
        ++stats_.issuedPrioritized;
    // The instruction was dispatched into the ROB before it could
    // issue, so a head always exists here.
    if (profiler_)
        profiler_->onIssue(*inst, cycle_, rob_.head()->seq);
    wakeConsumers(inst);
    if (inst->mispredicted)
        frontend_.onBranchResolved(done + cfg_.redirectPenalty);
    rs_.release(inst->rsSlot);
}

unsigned
Core::selectFromPool(FuPool pool, SlotVector &cand, SlotVector &prio,
                     unsigned budget)
{
    unsigned issued = 0;
    bool crisp = cfg_.scheduler == SchedulerPolicy::CrispPriority ||
                 cfg_.enableIbda;
    while (budget > 0 && fus_.available(pool)) {
        int slot = -1;
        // CRISP/IBDA two-level pick: oldest ready prioritized
        // instruction first, falling back to the plain oldest.
        if (crisp && prio.any()) {
            slot = rs_.age().selectOldest(prio);
            // Decision log: when the pick differs from the plain
            // oldest-ready choice, the policy just bypassed older
            // work for a critical instruction. The second age-matrix
            // select runs only with a profiler attached.
            if (profiler_ && slot >= 0) {
                int oldest = rs_.age().selectOldest(cand);
                if (oldest >= 0 && oldest != slot) {
                    const DynInst *p = rs_.at(unsigned(slot));
                    const DynInst *o = rs_.at(unsigned(oldest));
                    profiler_->onCriticalPick(
                        p->op->pc, o->op->pc,
                        p->dispatchCycle - o->dispatchCycle);
                }
            }
        }
        if (slot < 0)
            slot = rs_.age().selectOldest(cand);
        if (slot < 0)
            break;
        DynInst *inst = rs_.at(unsigned(slot));
        cand.clear(unsigned(slot));
        prio.clear(unsigned(slot));
        issueInst(inst);
        fus_.claim(pool, inst->op->cls, cycle_, inst->doneCycle);
        ++issued;
        --budget;
    }
    return issued;
}

bool
Core::issueStageCycle()
{
    fus_.beginCycle(cycle_);
    candAlu_.clearAll();
    candLoad_.clearAll();
    candStore_.clearAll();
    prioAlu_.clearAll();
    prioLoad_.clearAll();
    prioStore_.clearAll();

    // Scan only occupied slots (set bits), not the whole capacity.
    bool any = false;
    const SlotVector &occ = rs_.occupied();
    for (size_t w = 0; w < occ.wordCount(); ++w) {
      for (uint64_t bits = occ.word(w); bits; bits &= bits - 1) {
        unsigned s =
            unsigned(w * 64) + unsigned(__builtin_ctzll(bits));
        DynInst *inst = rs_.at(s);
        if (inst->issued)
            continue;
        if (inst->pendingProducers > 0 ||
            inst->srcReadyCycle > cycle_)
            continue;
        any = true;
        markCandidate(inst);
      }
    }
    if (!any)
        return false;

    unsigned budget = cfg_.width;
    unsigned issued = 0;
    unsigned n = selectFromPool(FuPool::Load, candLoad_, prioLoad_,
                                budget);
    issued += n;
    budget -= n;
    n = selectFromPool(FuPool::Store, candStore_, prioStore_,
                       budget);
    issued += n;
    budget -= n;
    issued += selectFromPool(FuPool::Alu, candAlu_, prioAlu_, budget);
    return issued > 0;
}

bool
Core::issueStageEvent()
{
    // Promote entries whose data has arrived. A heap entry always
    // refers to the slot's current occupant: the slot cannot be
    // released (instructions issue only after becoming candidates,
    // which happens exactly here) nor re-pushed before this pop.
    while (!readyHeap_.empty() &&
           readyHeap_.top().first <= cycle_) {
        unsigned s = readyHeap_.top().second;
        readyHeap_.pop();
        DynInst *inst = rs_.at(s);
        assert(inst && !inst->issued && inst->pendingProducers == 0);
        markCandidate(inst);
    }

    if (!candAlu_.any() && !candLoad_.any() && !candStore_.any())
        return false;

    fus_.beginCycle(cycle_);
    unsigned budget = cfg_.width;
    unsigned issued = 0;
    unsigned n = selectFromPool(FuPool::Load, candLoad_, prioLoad_,
                                budget);
    issued += n;
    budget -= n;
    n = selectFromPool(FuPool::Store, candStore_, prioStore_,
                       budget);
    issued += n;
    budget -= n;
    issued += selectFromPool(FuPool::Alu, candAlu_, prioAlu_, budget);
    return issued > 0;
}

bool
Core::dispatchStage()
{
    unsigned dispatched = 0;
    for (unsigned k = 0; k < cfg_.width; ++k) {
        if (fetchPipe_.empty() ||
            fetchPipe_.front().readyCycle > cycle_)
            break;
        DynInst *inst = fetchPipe_.front().inst;
        const MicroOp &op = *inst->op;
        if (rob_.full() || rs_.full())
            break;
        if (op.isLoad() && lsq_.loadQueueFull())
            break;
        if (op.isStore() && lsq_.storeQueueFull())
            break;
        fetchPipe_.pop_front();

        inst->dispatchCycle = cycle_;
        rob_.push(inst);
        rs_.insert(inst);

        // Register dependencies.
        auto hook_src = [&](RegId r) {
            if (r == kNoReg)
                return;
            DynInst *p = lastWriter_[r];
            if (!p)
                return;
            if (p->issued) {
                if (p->doneCycle > inst->srcReadyCycle)
                    inst->srcReadyCycle = p->doneCycle;
            } else {
                p->consumers.push_back(inst);
                ++inst->pendingProducers;
            }
        };
        hook_src(op.src1);
        hook_src(op.src2);
        hook_src(op.src3);

        // Memory dependencies (exact, word-granular).
        if (op.isLoad()) {
            DynInst *store = lsq_.dispatchLoad(op.effAddr);
            if (store) {
                inst->forwarded = true;
                if (store->issued) {
                    if (store->doneCycle > inst->srcReadyCycle)
                        inst->srcReadyCycle = store->doneCycle;
                } else {
                    store->consumers.push_back(inst);
                    ++inst->pendingProducers;
                }
            }
        } else if (op.isStore()) {
            lsq_.dispatchStore(inst, op.effAddr);
        }

        // Priority marking: CRISP tag or IBDA rename-stage analysis.
        if (ibda_)
            inst->prioritized = ibda_->onDispatch(op, lastWriterPc_);
        else
            inst->prioritized = op.critical;

        if (op.dst != kNoReg) {
            lastWriter_[op.dst] = inst;
            lastWriterPc_[op.dst] = op.pc;
        }

        // Entries that arrive dataflow-free join the ready set now;
        // issue for this tick has already run, so they first compete
        // next cycle — as in the cycle engine's rescan.
        if (eventMode_ && inst->pendingProducers == 0)
            scheduleReady(inst, cycle_);
        ++dispatched;
    }
    return dispatched > 0;
}

bool
Core::fetchStage()
{
    if (fetchPipe_.size() + cfg_.width > fetchPipeCap_)
        return false;
    fetchScratch_.clear();
    bool active = frontend_.fetch(cycle_, cfg_.width, fetchScratch_);
    for (const FetchedOp &fo : fetchScratch_) {
        DynInst *inst = allocInst(fo);
        fetchPipe_.push_back(
            {inst, cycle_ + cfg_.fetchToDispatchLat});
    }
    return active;
}

bool
Core::retireStage()
{
    // During a detailed warm-up, never retire past the measurement
    // boundary within one cycle: the warm mark must be captured at
    // exactly measureFromOp_ retired ops, or the overshoot would be
    // subtracted out of the measured window (and stitched interval
    // totals would lose those ops).
    unsigned width = cfg_.width;
    if (!warmMarkTaken_ && measureFromOp_ > stats_.retired)
        width = unsigned(std::min<uint64_t>(
            width, measureFromOp_ - stats_.retired));
    unsigned retired = 0;
    while (retired < width && !rob_.empty()) {
        DynInst *head = rob_.head();
        if (!head->completed(cycle_))
            break;
        const MicroOp &op = *head->op;
        if (op.isLoad()) {
            lsq_.retireLoad();
        } else if (op.isStore()) {
            // Commit the store to the memory system.
            mem_.store(op.effAddr, op.pc, cycle_);
            lsq_.retireStore(head, op.effAddr);
        }
        if (op.dst != kNoReg && lastWriter_[op.dst] == head)
            lastWriter_[op.dst] = nullptr;
        if (tracer_)
            traceRetire(*head);
        head->inWindow = false;
        rob_.pop();
        ++retired;
        ++stats_.retired;
    }
    if (retired == 0 && !rob_.empty()) {
        ++stats_.robHeadStallCycles;
        DynInst *head = rob_.head();
        if (head->op->isLoad())
            ++stats_.robHeadLoadStallCycles;
        ++stats_.headStallByStatic[head->op->sidx];
    }
    // CPI stack: exactly one bucket per cycle. Both engines pass
    // through here every non-skipped tick; skipped spans are charged
    // in chargeIdleCycles with the same classification.
    stats_.cpi.charge(retired > 0 ? CpiBucket::Retiring
                                  : stallBucket());
    if (recordTimeline_)
        stats_.retireTimeline.push_back(uint8_t(retired));
    return retired > 0;
}

CpiBucket
Core::stallBucket() const
{
    if (!rob_.empty()) {
        return rob_.head()->op->isLoad() ? CpiBucket::BackendMemory
                                         : CpiBucket::BackendCore;
    }
    // ROB empty: the stall is in front of dispatch.
    if (frontend_.blockedOnBranch())
        return CpiBucket::BadSpeculation;
    if (frontend_.blockedUntil() > cycle_) {
        return frontend_.resumeReason() ==
                       FetchResumeReason::IcacheMiss
                   ? CpiBucket::FrontendLatency
                   : CpiBucket::BadSpeculation;
    }
    return CpiBucket::FrontendBandwidth;
}

void
Core::traceRetire(const DynInst &inst)
{
    const MicroOp &op = *inst.op;
    PipeTracer::InstRecord rec;
    rec.seq = inst.seq;
    rec.fetchCycle = inst.fetchCycle;
    rec.dispatchCycle = inst.dispatchCycle;
    rec.issueCycle = inst.issueCycle;
    rec.completeCycle = inst.doneCycle;
    rec.retireCycle = cycle_;
    rec.pc = op.pc;
    rec.mnemonic = opClassName(op.cls);
    rec.critical = inst.prioritized;
    rec.llcMiss = inst.servedBy == MemLevel::Dram;
    rec.forwarded = inst.forwarded;
    rec.mispredicted = inst.mispredicted;
    tracer_->retire(rec);
}

IntervalStreamer::Snapshot
Core::intervalSnapshot() const
{
    IntervalStreamer::Snapshot s;
    s.cycle = cycle_;
    s.retired = stats_.retired;
    s.issued = stats_.issued;
    s.issuedPrioritized = stats_.issuedPrioritized;
    s.llcMisses = mem_.llc().stats().misses;
    s.cpi = stats_.cpi.cycles;
    s.robOcc = rob_.occupancy();
    s.rsOcc = rs_.occupancy();
    return s;
}

uint64_t
Core::nextEventCycle() const
{
    // Called only after a tick in which no stage made progress; every
    // state change before the returned cycle is impossible, so the
    // skipped span is provably identical to ticking it cycle by
    // cycle. Sources of change:
    //   - the ROB head completing (retire),
    //   - a time-gated RS entry's data arriving (issue),
    //   - an unpipelined ALU freeing up under ready ALU work (issue),
    //   - the fetch pipe's front reaching dispatch readiness,
    //   - the frontend's icache-miss / redirect resume cycle (fetch).
    // Structural stalls (ROB/RS/LQ/SQ full, fetch pipe full, branch
    // gating) resolve only as consequences of those events.
    uint64_t next = ~0ULL;
    auto consider = [&next](uint64_t c) {
        if (c < next)
            next = c;
    };

    if (!rob_.empty()) {
        const DynInst *head = rob_.head();
        if (head->issued)
            consider(head->doneCycle);
    }
    if (!readyHeap_.empty())
        consider(readyHeap_.top().first);
    if (candAlu_.any())
        consider(fus_.nextAluFreeCycle(cycle_));
    // Ready load/store work always issues in a tick (ports are fully
    // pipelined), so these sets are empty after an idle tick; if a
    // scheduling invariant is ever violated, degrade to ticking the
    // next cycle instead of skipping incorrectly.
    assert(!candLoad_.any() && !candStore_.any());
    if (candLoad_.any() || candStore_.any())
        consider(cycle_ + 1);
    if (!fetchPipe_.empty() &&
        fetchPipe_.front().readyCycle > cycle_)
        consider(fetchPipe_.front().readyCycle);
    if (!frontend_.exhausted() && !frontend_.blockedOnBranch() &&
        fetchPipe_.size() + cfg_.width <= fetchPipeCap_ &&
        frontend_.blockedUntil() > cycle_)
        consider(frontend_.blockedUntil());
    return next;
}

void
Core::chargeIdleCycles(uint64_t span)
{
    // Exactly what `span` consecutive idle ticks of the cycle engine
    // would have accumulated: per-cycle ROB-head stall accounting
    // (the head cannot change during an idle span), branch-gated
    // fetch stalls (only while the fetch pipe has room — the cycle
    // engine's fetchStage returns before touching the frontend
    // otherwise), and zero-retire timeline samples.
    if (!rob_.empty()) {
        stats_.robHeadStallCycles += span;
        DynInst *head = rob_.head();
        if (head->op->isLoad())
            stats_.robHeadLoadStallCycles += span;
        stats_.headStallByStatic[head->op->sidx] += span;
    }
    if (fetchPipe_.size() + cfg_.width <= fetchPipeCap_ &&
        frontend_.blockedOnBranch())
        frontend_.chargeBranchStall(span);
    // The classification inputs (ROB head, frontend blocking state)
    // are frozen across the span — nextEventCycle bounds it at every
    // cycle where either could change — so one bulk charge equals
    // `span` per-tick charges of the cycle engine.
    stats_.cpi.charge(stallBucket(), span);
    if (recordTimeline_)
        stats_.retireTimeline.insert(stats_.retireTimeline.end(),
                                     size_t(span), uint8_t(0));
}

CoreStats
Core::run(uint64_t max_cycles, bool record_timeline)
{
    recordTimeline_ = record_timeline;
    if (record_timeline && cfg_.width > 0)
        stats_.retireTimeline.reserve(
            size_t(trace_.size() / cfg_.width) + 64);
    uint64_t last_progress_cycle = 0;
    uint64_t last_retired = 0;

    // Detailed warm-up: park the profiler until the mark so it only
    // attributes measured activity.
    if (measureFromOp_ > 0 && profiler_) {
        heldProfiler_ = profiler_;
        profiler_ = nullptr;
    }
    if (measureFromOp_ == 0)
        warmMarkTaken_ = true;

    while (stats_.retired < trace_.size() && cycle_ < max_cycles) {
        // Cooperative cancellation (sim/cancel.h): one relaxed load
        // per executed tick when a token is attached, a pointer test
        // otherwise. Executed ticks, not cycle values, so the event
        // engine polls exactly as often as it does work.
        if (cancel_)
            cancel_->throwIfCancelled("core run");
        ++cycle_;
        bool work = retireStage();
        work = (eventMode_ ? issueStageEvent() : issueStageCycle()) ||
               work;
        work = dispatchStage() || work;
        work = fetchStage() || work;

        // Audit after the stages and before any idle-span jump, so a
        // checkpoint always sees a settled tick boundary. Throttled
        // by executed ticks, not cycle values: the event engine skips
        // cycles, and ticks are where state actually changes.
        if (checker_)
            checker_->onTick(*this);

        // Interval telemetry: pay for a snapshot only on boundary
        // ticks; the common case is one load and compare.
        if (interval_ && cycle_ >= interval_->nextBoundary())
            interval_->onTick(intervalSnapshot());

        if (!warmMarkTaken_ && stats_.retired >= measureFromOp_)
            captureWarmMark();

        if (stats_.retired != last_retired) {
            last_retired = stats_.retired;
            last_progress_cycle = cycle_;
        } else if (cycle_ - last_progress_cycle > kDeadlockWindow) {
            throw SimDeadlockError(cycle_, stats_.retired,
                                   trace_.size());
        }

        if (eventMode_ && !work &&
            stats_.retired < trace_.size() && cycle_ < max_cycles) {
            // Jump to the next cycle at which anything can happen,
            // clamped to the run bound and to the cycle at which the
            // deadlock watchdog would have fired (the tick there
            // reproduces the cycle engine's throw; with no event at
            // all, that tick is reached in one jump).
            uint64_t target = nextEventCycle();
            target = std::min(target, max_cycles);
            target = std::min(target, last_progress_cycle +
                                          kDeadlockWindow + 1);
            if (target > cycle_ + 1) {
                uint64_t span = target - cycle_ - 1;
                // Split the span across any window boundaries it
                // covers *before* the bulk charge mutates the
                // counters: the streamer reconstructs the per-cycle
                // state from the pre-span snapshot plus the same
                // frozen stall bucket chargeIdleCycles() uses.
                if (interval_ &&
                    cycle_ + span >= interval_->nextBoundary())
                    interval_->onIdleSpan(intervalSnapshot(), span,
                                          stallBucket());
                chargeIdleCycles(span);
                cycle_ = target - 1;
            }
        }
    }

    if (checker_)
        checker_->checkAll(*this);
    if (interval_)
        interval_->finish(intervalSnapshot());

    stats_.cycles = cycle_;
    assert(stats_.cpi.total() == stats_.cycles);
    stats_.frontend = frontend_.stats();
    stats_.l1i = mem_.l1i().stats();
    stats_.l1d = mem_.l1d().stats();
    stats_.llc = mem_.llc().stats();
    stats_.dram = mem_.dram().stats();
    if (ibda_)
        stats_.ibda = ibda_->stats();

    // Strip the detailed warm-up prefix: the mark's CPI buckets sum
    // to the mark's cycles, so the subtraction preserves the
    // stack-sums-to-cycles invariant on the measured suffix.
    if (measureFromOp_ > 0 && warmMarkTaken_)
        stats_.subtract(warmMark_);
    return stats_;
}

void
Core::captureWarmMark()
{
    warmMark_ = stats_;
    warmMark_.cycles = cycle_;
    warmMark_.frontend = frontend_.stats();
    warmMark_.l1i = mem_.l1i().stats();
    warmMark_.l1d = mem_.l1d().stats();
    warmMark_.llc = mem_.llc().stats();
    warmMark_.dram = mem_.dram().stats();
    if (ibda_)
        warmMark_.ibda = ibda_->stats();
    warmMarkTaken_ = true;
    if (heldProfiler_) {
        profiler_ = heldProfiler_;
        heldProfiler_ = nullptr;
    }
}

void
CoreStats::accumulate(const CoreStats &other)
{
    cycles += other.cycles;
    retired += other.retired;
    issued += other.issued;
    issuedPrioritized += other.issuedPrioritized;
    robHeadStallCycles += other.robHeadStallCycles;
    robHeadLoadStallCycles += other.robHeadLoadStallCycles;
    llcMissLoads += other.llcMissLoads;
    forwardedLoads += other.forwardedLoads;
    frontend.accumulate(other.frontend);
    l1i.accumulate(other.l1i);
    l1d.accumulate(other.l1d);
    llc.accumulate(other.llc);
    dram.accumulate(other.dram);
    ibda.accumulate(other.ibda);
    for (const auto &[sidx, cyc] : other.headStallByStatic)
        headStallByStatic[sidx] += cyc;
    for (const auto &[sidx, w] : other.issueWaitByStatic) {
        auto &dst = issueWaitByStatic[sidx];
        dst.first += w.first;
        dst.second += w.second;
    }
    cpi.merge(other.cpi);
    issueWaitHist.merge(other.issueWaitHist);
    retireTimeline.insert(retireTimeline.end(),
                          other.retireTimeline.begin(),
                          other.retireTimeline.end());
}

void
CoreStats::subtract(const CoreStats &base)
{
    cycles -= base.cycles;
    retired -= base.retired;
    issued -= base.issued;
    issuedPrioritized -= base.issuedPrioritized;
    robHeadStallCycles -= base.robHeadStallCycles;
    robHeadLoadStallCycles -= base.robHeadLoadStallCycles;
    llcMissLoads -= base.llcMissLoads;
    forwardedLoads -= base.forwardedLoads;
    frontend.subtract(base.frontend);
    l1i.subtract(base.l1i);
    l1d.subtract(base.l1d);
    llc.subtract(base.llc);
    dram.subtract(base.dram);
    ibda.subtract(base.ibda);
    for (const auto &[sidx, cyc] : base.headStallByStatic) {
        auto it = headStallByStatic.find(sidx);
        it->second -= cyc;
        if (it->second == 0)
            headStallByStatic.erase(it);
    }
    for (const auto &[sidx, w] : base.issueWaitByStatic) {
        auto it = issueWaitByStatic.find(sidx);
        it->second.first -= w.first;
        it->second.second -= w.second;
        if (it->second.second == 0 && it->second.first == 0)
            issueWaitByStatic.erase(it);
    }
    cpi.subtract(base.cpi);
    issueWaitHist.subtract(base.issueWaitHist);
    if (retireTimeline.size() >= base.cycles)
        retireTimeline.erase(retireTimeline.begin(),
                             retireTimeline.begin() +
                                 ptrdiff_t(base.cycles));
}

std::vector<std::pair<uint32_t, uint64_t>>
CoreStats::sortedHeadStalls() const
{
    std::vector<std::pair<uint32_t, uint64_t>> rows(
        headStallByStatic.begin(), headStallByStatic.end());
    std::sort(rows.begin(), rows.end());
    return rows;
}

std::vector<std::array<uint64_t, 3>>
CoreStats::sortedIssueWaits() const
{
    std::vector<std::array<uint64_t, 3>> rows;
    rows.reserve(issueWaitByStatic.size());
    for (const auto &[sidx, w] : issueWaitByStatic)
        rows.push_back({sidx, w.first, w.second});
    std::sort(rows.begin(), rows.end());
    return rows;
}

void
CoreStats::registerInto(StatRegistry &reg,
                        const std::string &prefix) const
{
    auto core = [&](const char *name) {
        return statPath(prefix, std::string("core.") + name);
    };
    reg.addCounter(core("cycles"), cycles);
    reg.addCounter(core("retired"), retired);
    reg.addCounter(core("issued"), issued);
    reg.addCounter(core("issued_prioritized"), issuedPrioritized);
    reg.addCounter(core("rob_head_stall_cycles"), robHeadStallCycles,
                   "head present, no retire");
    reg.addCounter(core("rob_head_load_stall_cycles"),
                   robHeadLoadStallCycles);
    reg.addCounter(core("llc_miss_loads"), llcMissLoads);
    reg.addCounter(core("forwarded_loads"), forwardedLoads);
    reg.addScalar(core("ipc"), ipc(), "retired micro-ops per cycle");
    reg.addScalar(core("icache_mpki"), icacheMpki());
    reg.addScalar(core("llc_mpki"), llcMpki());
    reg.addHistogram(core("issue_wait"), issueWaitHist,
                     "issue minus dataflow-ready, cycles");

    {
        std::vector<std::vector<uint64_t>> rows;
        rows.reserve(headStallByStatic.size());
        for (const auto &[sidx, n] : sortedHeadStalls())
            rows.push_back({sidx, n});
        reg.addTable(core("head_stall_by_static"),
                     {"sidx", "cycles"}, std::move(rows),
                     "ROB-head stall cycles per static instruction");
    }
    {
        std::vector<std::vector<uint64_t>> rows;
        rows.reserve(issueWaitByStatic.size());
        for (const auto &r : sortedIssueWaits())
            rows.push_back({r[0], r[1], r[2]});
        reg.addTable(core("issue_wait_by_static"),
                     {"sidx", "wait_cycles", "samples"},
                     std::move(rows),
                     "scheduling slack per static instruction");
    }

    frontend.registerInto(reg, statPath(prefix, "frontend"));
    l1i.registerInto(reg, statPath(prefix, "cache.l1i"));
    l1d.registerInto(reg, statPath(prefix, "cache.l1d"));
    llc.registerInto(reg, statPath(prefix, "cache.llc"));
    dram.registerInto(reg, statPath(prefix, "dram"));
    ibda.registerInto(reg, statPath(prefix, "ibda"));
    cpi.registerInto(reg, statPath(prefix, "cpi"));
}

} // namespace crisp
