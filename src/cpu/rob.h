/**
 * @file
 * Reorder buffer: in-order retirement window.
 */

#ifndef CRISP_CPU_ROB_H
#define CRISP_CPU_ROB_H

#include <cstdint>
#include <vector>

#include "cpu/dyn_inst.h"

namespace crisp
{

/** Circular in-order window of in-flight instructions. */
class Rob
{
  public:
    /** @param entries capacity (224 in Table 1). */
    explicit Rob(unsigned entries)
        : ring_(entries, nullptr)
    {
    }

    bool full() const { return count_ == ring_.size(); }
    bool empty() const { return count_ == 0; }
    /** @return current occupancy. */
    unsigned occupancy() const { return unsigned(count_); }
    /** @return capacity. */
    unsigned capacity() const { return unsigned(ring_.size()); }

    /** Appends a dispatched instruction (must not be full). */
    void push(DynInst *inst)
    {
        ring_[tail_] = inst;
        tail_ = (tail_ + 1) % ring_.size();
        ++count_;
    }

    /** @return the oldest instruction (must not be empty). */
    DynInst *head() const { return ring_[head_]; }

    /** Removes the oldest instruction. */
    void pop()
    {
        ring_[head_] = nullptr;
        head_ = (head_ + 1) % ring_.size();
        --count_;
    }

    // Raw ring geometry, exposed for the invariant checker
    // (src/check): it audits head/tail/count consistency and the
    // age order of the window, which requires seeing unoccupied
    // slots too.

    /** @return the backing-ring index of the head slot. */
    size_t headIndex() const { return head_; }
    /** @return the backing-ring index one past the youngest entry. */
    size_t tailIndex() const { return tail_; }
    /**
     * @return the raw content of the ring slot @p i steps past the
     *         head (any i < capacity; null for unoccupied slots).
     */
    DynInst *ringAt(size_t i) const
    {
        return ring_[(head_ + i) % ring_.size()];
    }

  private:
    std::vector<DynInst *> ring_;
    size_t head_ = 0;
    size_t tail_ = 0;
    size_t count_ = 0;
};

} // namespace crisp

#endif // CRISP_CPU_ROB_H
