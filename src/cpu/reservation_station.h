/**
 * @file
 * Unified reservation station with RAND slot allocation and
 * age-matrix ordering (CRISP §4.2).
 */

#ifndef CRISP_CPU_RESERVATION_STATION_H
#define CRISP_CPU_RESERVATION_STATION_H

#include <vector>

#include "cpu/age_matrix.h"
#include "cpu/dyn_inst.h"

namespace crisp
{

/**
 * Slot container for waiting instructions. Slots are handed out in
 * arbitrary order (free-list), matching a RAND scheduler: relative
 * age is recovered exclusively through the AgeMatrix.
 *
 * Slot lifetime invariant (the event engine leans on it): a slot is
 * claimed at dispatch and released only when its instruction issues.
 * Between those points `at(slot)` always returns the same DynInst,
 * so Core's ready-heap entries — keyed (srcReadyCycle, slot) — can
 * never refer to a stale occupant: an instruction only issues after
 * passing through the candidate sets, which it enters strictly after
 * its heap entry (if any) is popped.
 */
class ReservationStation
{
  public:
    /** @param slots capacity (96 in Table 1). */
    explicit ReservationStation(unsigned slots);

    /** @return true if no slot is free. */
    bool full() const { return freeList_.empty(); }

    /** @return number of occupied slots. */
    unsigned occupancy() const
    {
        return unsigned(slots_.size() - freeList_.size());
    }

    /**
     * Inserts a dispatched instruction.
     * @return the slot index (also recorded in inst->rsSlot).
     */
    int insert(DynInst *inst);

    /** Releases @p slot at issue. */
    void release(int slot);

    /** @return the instruction in @p slot (nullptr if empty). */
    DynInst *at(unsigned slot) const { return slots_[slot]; }

    /** @return total capacity. */
    unsigned capacity() const { return unsigned(slots_.size()); }

    /** @return the age matrix for selection. */
    const AgeMatrix &age() const { return age_; }

    /**
     * @return the occupied-slot mask, maintained incrementally on
     *         insert/release so the per-cycle wakeup scan touches
     *         only live slots instead of the whole capacity.
     */
    const SlotVector &occupied() const { return occupied_; }

    /**
     * @return the free list, for the invariant checker (src/check):
     *         free list ∪ occupied slots must form an exact
     *         bijection over the station's capacity.
     */
    const std::vector<int> &freeList() const { return freeList_; }

  private:
    std::vector<DynInst *> slots_;
    std::vector<int> freeList_;
    AgeMatrix age_;
    SlotVector occupied_;
};

} // namespace crisp

#endif // CRISP_CPU_RESERVATION_STATION_H
