#include "cpu/frontend.h"

#include <utility>

#include "bp/bimodal.h"
#include "bp/gshare.h"
#include "bp/tage.h"
#include "telemetry/stat_registry.h"

namespace crisp
{

Frontend::Frontend(const Trace &trace, const SimConfig &cfg,
                   Hierarchy &mem)
    : trace_(trace), cfg_(cfg), mem_(mem),
      btb_(cfg.btbEntries, 4), ras_(cfg.rasEntries)
{
    if (cfg.branchPredictor == "bimodal")
        dir_ = std::make_unique<BimodalPredictor>();
    else if (cfg.branchPredictor == "gshare")
        dir_ = std::make_unique<GsharePredictor>();
    else
        dir_ = std::make_unique<TagePredictor>();
}

bool
Frontend::predictControl(const MicroOp &op)
{
    uint64_t fallthrough = op.pc + op.instSize;
    bool mispred = false;

    switch (op.cls) {
      case OpClass::Branch: {
        ++stats_.condBranches;
        bool pred_taken = dir_->predict(op.pc);
        dir_->update(op.pc, op.taken);
        if (pred_taken != op.taken) {
            mispred = true;
        } else if (op.taken) {
            uint64_t target;
            bool hit = btb_.lookup(op.pc, target);
            if (!hit || target != op.nextPc)
                mispred = true;
        }
        if (op.taken)
            btb_.update(op.pc, op.nextPc);
        if (mispred)
            ++stats_.condMispredicts;
        break;
      }
      case OpClass::Jump:
        // Direct target: decoder-resolved, never a full mispredict.
        btb_.update(op.pc, op.nextPc);
        break;
      case OpClass::Call:
        ras_.push(fallthrough);
        btb_.update(op.pc, op.nextPc);
        break;
      case OpClass::Ret: {
        uint64_t pred = ras_.pop();
        if (pred != op.nextPc) {
            mispred = true;
            ++stats_.returnMispredicts;
        }
        break;
      }
      case OpClass::IndirectJump: {
        ++stats_.indirectBranches;
        uint64_t target;
        bool hit = btb_.lookup(op.pc, target);
        if (!hit || target != op.nextPc) {
            mispred = true;
            ++stats_.indirectMispredicts;
        }
        btb_.update(op.pc, op.nextPc);
        break;
      }
      default:
        break;
    }
    return mispred;
}

void
Frontend::runFdip(uint64_t cycle)
{
    if (!cfg_.enableFdip)
        return;
    // The FTQ runs ahead of fetch by up to ftqEntries micro-ops,
    // prefetching their icache lines (up to 2 new lines per cycle).
    size_t limit =
        std::min(trace_.size(), nextIdx_ + cfg_.ftqEntries);
    if (prefetchIdx_ < nextIdx_)
        prefetchIdx_ = nextIdx_;
    unsigned lines = 0;
    uint64_t last_line = ~0ULL;
    while (prefetchIdx_ < limit && lines < 2) {
        uint64_t line = trace_.ops[prefetchIdx_].pc >> 6;
        if (line != last_line && !(line == curLine_)) {
            mem_.prefetchInst(trace_.ops[prefetchIdx_].pc, cycle);
            ++lines;
        }
        last_line = line;
        ++prefetchIdx_;
    }
}

bool
Frontend::fetch(uint64_t cycle, unsigned n,
                std::vector<FetchedOp> &out)
{
    if (blockedOnBranch_) {
        ++stats_.branchStallCycles;
        return false;
    }
    if (cycle < blockedUntil_)
        return false;
    if (nextIdx_ >= trace_.size())
        return false; // exhausted: FDIP and the fetch loop are no-ops

    runFdip(cycle);

    for (unsigned k = 0; k < n && nextIdx_ < trace_.size(); ++k) {
        const MicroOp &op = trace_.ops[nextIdx_];
        // Icache: pay for each new line entered (instructions may
        // span two lines; charge the line containing the last byte).
        uint64_t line = (op.pc + op.instSize - 1) >> 6;
        if (line != curLine_) {
            auto res = mem_.ifetch(op.pc, cycle);
            curLine_ = line;
            if (res.readyCycle > cycle + mem_.l1i().latency()) {
                // Miss: bubble until the line arrives.
                blockedUntil_ = res.readyCycle;
                resumeReason_ = FetchResumeReason::IcacheMiss;
                stats_.icacheStallCycles +=
                    res.readyCycle - cycle;
                break;
            }
        }

        FetchedOp fo{&op, uint32_t(nextIdx_), false};
        if (op.isControl())
            fo.mispredicted = predictControl(op);
        ++nextIdx_;
        ++stats_.fetched;
        out.push_back(fo);

        if (fo.mispredicted) {
            blockedOnBranch_ = true;
            // The FTQ beyond this point would be wrong-path.
            prefetchIdx_ = nextIdx_;
            break;
        }
    }
    return true;
}

void
Frontend::onBranchResolved(uint64_t resume_cycle)
{
    blockedOnBranch_ = false;
    blockedUntil_ = resume_cycle;
    resumeReason_ = FetchResumeReason::Redirect;
}

void
FrontendStats::registerInto(StatRegistry &reg,
                            const std::string &prefix) const
{
    reg.addCounter(statPath(prefix, "fetched"), fetched,
                   "micro-ops delivered to the core");
    reg.addCounter(statPath(prefix, "cond_branches"), condBranches);
    reg.addCounter(statPath(prefix, "cond_mispredicts"),
                   condMispredicts);
    reg.addCounter(statPath(prefix, "indirect_branches"),
                   indirectBranches);
    reg.addCounter(statPath(prefix, "indirect_mispredicts"),
                   indirectMispredicts);
    reg.addCounter(statPath(prefix, "return_mispredicts"),
                   returnMispredicts);
    reg.addCounter(statPath(prefix, "mispredicts"), mispredicts(),
                   "total control-flow mispredictions");
    reg.addCounter(statPath(prefix, "icache_stall_cycles"),
                   icacheStallCycles);
    reg.addCounter(statPath(prefix, "branch_stall_cycles"),
                   branchStallCycles);
}

void
Frontend::adoptWarmState(const DirectionPredictor &dir, const Btb &btb,
                         const Ras &ras)
{
    dir_ = dir.clone();
    btb_ = btb;
    ras_ = ras;
}

void
Frontend::adoptWarmState(std::unique_ptr<DirectionPredictor> dir,
                         Btb &&btb, Ras &&ras)
{
    dir_ = std::move(dir);
    btb_ = std::move(btb);
    ras_ = std::move(ras);
}

} // namespace crisp
