#include "cpu/reservation_station.h"

#include <cassert>

namespace crisp
{

ReservationStation::ReservationStation(unsigned slots)
    : slots_(slots, nullptr), age_(slots), occupied_(slots)
{
    freeList_.reserve(slots);
    for (int s = int(slots) - 1; s >= 0; --s)
        freeList_.push_back(s);
}

int
ReservationStation::insert(DynInst *inst)
{
    assert(!freeList_.empty());
    int slot = freeList_.back();
    freeList_.pop_back();
    slots_[slot] = inst;
    inst->rsSlot = int16_t(slot);
    age_.allocate(unsigned(slot));
    occupied_.set(unsigned(slot));
    return slot;
}

void
ReservationStation::release(int slot)
{
    assert(slot >= 0 && slots_[slot] != nullptr);
    slots_[slot]->rsSlot = -1;
    slots_[slot] = nullptr;
    occupied_.clear(unsigned(slot));
    freeList_.push_back(slot);
}

} // namespace crisp
