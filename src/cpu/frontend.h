/**
 * @file
 * Decoupled frontend: branch prediction, BTB/RAS, icache timing and
 * FDIP-style instruction prefetch over a fetch-target queue window.
 *
 * The simulator is trace-driven, so wrong-path instructions are not
 * executed: when a fetched branch is found to mispredict, fetch stops
 * until the core reports the branch resolved, then resumes after the
 * redirect penalty. This captures exactly the frontend-throttling
 * effect that motivates CRISP's branch slices (§3.4, §5.3).
 */

#ifndef CRISP_CPU_FRONTEND_H
#define CRISP_CPU_FRONTEND_H

#include <memory>
#include <vector>

#include "bp/btb.h"
#include "bp/predictor.h"
#include "bp/ras.h"
#include "cache/hierarchy.h"
#include "sim/config.h"
#include "trace/trace.h"

namespace crisp
{

class StatRegistry;

/** Frontend statistics. */
struct FrontendStats
{
    uint64_t fetched = 0;
    uint64_t condBranches = 0;
    uint64_t condMispredicts = 0;
    uint64_t indirectBranches = 0;
    uint64_t indirectMispredicts = 0;
    uint64_t returnMispredicts = 0;
    uint64_t icacheStallCycles = 0;
    uint64_t branchStallCycles = 0;

    /** @return total control-flow mispredictions. */
    uint64_t mispredicts() const
    {
        return condMispredicts + indirectMispredicts +
               returnMispredicts;
    }

    /** Registers every counter under @p prefix (telemetry). */
    void registerInto(StatRegistry &reg,
                      const std::string &prefix) const;

    /** Adds @p other counter-wise (sampled-interval stitching). */
    void accumulate(const FrontendStats &other)
    {
        fetched += other.fetched;
        condBranches += other.condBranches;
        condMispredicts += other.condMispredicts;
        indirectBranches += other.indirectBranches;
        indirectMispredicts += other.indirectMispredicts;
        returnMispredicts += other.returnMispredicts;
        icacheStallCycles += other.icacheStallCycles;
        branchStallCycles += other.branchStallCycles;
    }

    /** Subtracts @p base counter-wise (warm-up mark removal). */
    void subtract(const FrontendStats &base)
    {
        fetched -= base.fetched;
        condBranches -= base.condBranches;
        condMispredicts -= base.condMispredicts;
        indirectBranches -= base.indirectBranches;
        indirectMispredicts -= base.indirectMispredicts;
        returnMispredicts -= base.returnMispredicts;
        icacheStallCycles -= base.icacheStallCycles;
        branchStallCycles -= base.branchStallCycles;
    }
};

/** Why fetch is idling until blockedUntil(). */
enum class FetchResumeReason : uint8_t {
    None,       ///< not blocked
    IcacheMiss, ///< waiting for an icache line
    Redirect,   ///< refilling after a resolved mispredict
};

/** One fetched micro-op handed to the core. */
struct FetchedOp
{
    const MicroOp *op;
    uint32_t traceIdx;
    bool mispredicted;
};

/** The fetch engine. */
class Frontend
{
  public:
    /**
     * @param trace the dynamic stream to fetch
     * @param cfg machine configuration
     * @param mem hierarchy for icache/FDIP accesses
     */
    Frontend(const Trace &trace, const SimConfig &cfg, Hierarchy &mem);

    /**
     * Fetches up to @p n micro-ops at @p cycle.
     * Appends to @p out; stops early at icache misses or after
     * delivering a mispredicted branch.
     * @return true if the frontend was active this cycle (delivered
     *         ops, ran FDIP, or took an icache miss); false when it
     *         idled — blocked on a branch or a pending icache line,
     *         or the trace is exhausted. An idle cycle changes no
     *         frontend state except the branch-stall counter, which
     *         the event engine batch-charges via chargeBranchStall().
     */
    bool fetch(uint64_t cycle, unsigned n, std::vector<FetchedOp> &out);

    /**
     * Reports that the blocking mispredicted branch has resolved;
     * fetch resumes at @p resume_cycle.
     */
    void onBranchResolved(uint64_t resume_cycle);

    /** @return true when the whole trace has been fetched. */
    bool exhausted() const { return nextIdx_ >= trace_.size(); }

    /** @return true while fetch is gated on an unresolved branch. */
    bool blockedOnBranch() const { return blockedOnBranch_; }

    /**
     * @return the cycle at which fetch resumes after an icache miss
     *         or a resolved redirect (fetch idles strictly before it).
     */
    uint64_t blockedUntil() const { return blockedUntil_; }

    /**
     * @return what the frontend is waiting for while blockedUntil()
     *         is in the future — an icache line or a redirect refill.
     *         Feeds the CPI stack's frontend-latency/bad-speculation
     *         split; meaningful only while fetch is actually blocked.
     */
    FetchResumeReason resumeReason() const { return resumeReason_; }

    /**
     * Accounts @p span skipped branch-gated fetch cycles at once —
     * exactly what @p span consecutive fetch() calls would have
     * recorded while blockedOnBranch().
     */
    void chargeBranchStall(uint64_t span)
    {
        stats_.branchStallCycles += span;
    }

    /** @return accumulated statistics. */
    const FrontendStats &stats() const { return stats_; }

    /**
     * Replaces the predictor structures with deep copies of trained
     * warm state. Fetch position and stall state are untouched (a
     * fresh frontend starts at trace index 0); statistics stay zero.
     * Sampled-interval warm hand-off (DESIGN.md §13).
     */
    void adoptWarmState(const DirectionPredictor &dir, const Btb &btb,
                        const Ras &ras);

    /**
     * Move overload: takes ownership of an already-cloned predictor
     * and steals the BTB/RAS tables. Identical post-state to the
     * copying overload (DESIGN.md §14).
     */
    void adoptWarmState(std::unique_ptr<DirectionPredictor> dir,
                        Btb &&btb, Ras &&ras);

  private:
    const Trace &trace_;
    SimConfig cfg_;
    Hierarchy &mem_;
    std::unique_ptr<DirectionPredictor> dir_;
    Btb btb_;
    Ras ras_;

    size_t nextIdx_ = 0;
    size_t prefetchIdx_ = 0;
    uint64_t blockedUntil_ = 0;
    bool blockedOnBranch_ = false;
    FetchResumeReason resumeReason_ = FetchResumeReason::None;
    uint64_t curLine_ = ~0ULL;

    FrontendStats stats_;

    /** Predicts + trains for one control op; @return mispredicted. */
    bool predictControl(const MicroOp &op);
    void runFdip(uint64_t cycle);
};

} // namespace crisp

#endif // CRISP_CPU_FRONTEND_H
