#include "cpu/age_matrix.h"

namespace crisp
{

AgeMatrix::AgeMatrix(unsigned slots)
    : slots_(slots), stamp_(slots, 0)
{
}

bool
AgeMatrix::isOldest(unsigned slot, const SlotVector &candidates) const
{
    // No candidate may carry an older (smaller) allocation stamp.
    const uint64_t mine = stamp_[slot];
    for (size_t w = 0; w < candidates.wordCount(); ++w) {
        uint64_t bits = candidates.word(w);
        while (bits) {
            unsigned s =
                unsigned(w * 64) + unsigned(__builtin_ctzll(bits));
            bits &= bits - 1;
            if (stamp_[s] < mine)
                return false;
        }
    }
    return true;
}

int
AgeMatrix::selectOldest(const SlotVector &candidates) const
{
    // Allocation-free single pass: the oldest candidate is the one
    // with the smallest allocation stamp (stamps are unique, so the
    // selection is deterministic).
    int best = -1;
    uint64_t best_stamp = ~0ULL;
    for (size_t w = 0; w < candidates.wordCount(); ++w) {
        uint64_t bits = candidates.word(w);
        while (bits) {
            unsigned s =
                unsigned(w * 64) + unsigned(__builtin_ctzll(bits));
            bits &= bits - 1;
            if (stamp_[s] < best_stamp) {
                best_stamp = stamp_[s];
                best = int(s);
            }
        }
    }
    return best;
}

} // namespace crisp
