#include "cpu/age_matrix.h"

namespace crisp
{

AgeMatrix::AgeMatrix(unsigned slots)
    : slots_(slots), rows_(slots, SlotVector(slots))
{
}

void
AgeMatrix::allocate(unsigned slot)
{
    // The newcomer is younger than everything: clear its bit in every
    // existing vector, then initialize its own vector to all ones
    // minus itself (stale ones for empty slots are harmless because
    // empty slots never appear in a candidate vector).
    for (auto &row : rows_)
        row.clear(slot);
    rows_[slot].setAll();
    rows_[slot].clear(slot);
}

int
AgeMatrix::selectOldest(const SlotVector &candidates) const
{
    // Allocation-free: scans inline words and tests candidates in
    // slot order, returning the first whose age vector is disjoint
    // from the candidate set.
    for (size_t w = 0; w < candidates.wordCount_; ++w) {
        uint64_t bits = candidates.words_[w];
        while (bits) {
            unsigned slot =
                unsigned(w * 64) + unsigned(__builtin_ctzll(bits));
            bits &= bits - 1;
            if (isOldest(slot, candidates))
                return int(slot);
        }
    }
    return -1;
}

} // namespace crisp
