/**
 * @file
 * Functional unit pools (Table 1: 4 ALU, 2 load, 1 store).
 */

#ifndef CRISP_CPU_FUNCTIONAL_UNITS_H
#define CRISP_CPU_FUNCTIONAL_UNITS_H

#include <cstdint>
#include <vector>

#include "isa/latency.h"
#include "isa/micro_op.h"
#include "sim/config.h"

namespace crisp
{

/** Which issue pool an op class belongs to. */
enum class FuPool { Alu, Load, Store };

/** @return the pool for @p cls. */
FuPool poolOf(OpClass cls);

/**
 * Tracks per-cycle port availability. ALU units model occupancy so
 * unpipelined dividers block their unit; load/store ports are fully
 * pipelined (the cache hierarchy applies memory timing).
 */
class FunctionalUnits
{
  public:
    /** @param cfg port counts. */
    explicit FunctionalUnits(const SimConfig &cfg);

    /** Call at the start of each cycle. */
    void beginCycle(uint64_t cycle);

    /** @return true if an issue port for @p pool is free this cycle. */
    bool available(FuPool pool) const;

    /**
     * Claims a port for one instruction.
     * @param pool the pool to issue to
     * @param cls op class (for unpipelined occupancy)
     * @param cycle current cycle
     * @param done completion cycle of the instruction
     */
    void claim(FuPool pool, OpClass cls, uint64_t cycle,
               uint64_t done);

    /**
     * Earliest future cycle at which an ALU unit is free, for the
     * event engine's next-event computation when ready ALU work is
     * blocked on unpipelined occupancy (dividers).
     * @return the smallest busy-until cycle > @p cycle, or
     *         @p cycle + 1 if a unit is already free.
     */
    uint64_t nextAluFreeCycle(uint64_t cycle) const;

  private:
    std::vector<uint64_t> aluBusyUntil_;
    unsigned loadPorts_;
    unsigned storePorts_;
    unsigned loadUsed_ = 0;
    unsigned storeUsed_ = 0;
    unsigned aluIssuedThisCycle_ = 0;
    uint64_t cycle_ = 0;

    unsigned freeAluUnits() const;
};

} // namespace crisp

#endif // CRISP_CPU_FUNCTIONAL_UNITS_H
