// LoadStoreQueues is header-only; this file keeps the build layout
// uniform.
#include "cpu/lsq.h"
