#include "cpu/functional_units.h"

namespace crisp
{

FuPool
poolOf(OpClass cls)
{
    switch (cls) {
      case OpClass::Load:
      case OpClass::Prefetch:
        return FuPool::Load;
      case OpClass::Store:
        return FuPool::Store;
      default:
        return FuPool::Alu;
    }
}

FunctionalUnits::FunctionalUnits(const SimConfig &cfg)
    : aluBusyUntil_(cfg.numAlu, 0),
      loadPorts_(cfg.numLoadPorts),
      storePorts_(cfg.numStorePorts)
{
}

void
FunctionalUnits::beginCycle(uint64_t cycle)
{
    cycle_ = cycle;
    loadUsed_ = 0;
    storeUsed_ = 0;
    aluIssuedThisCycle_ = 0;
}

unsigned
FunctionalUnits::freeAluUnits() const
{
    unsigned n = 0;
    for (uint64_t busy : aluBusyUntil_)
        if (busy <= cycle_)
            ++n;
    return n;
}

bool
FunctionalUnits::available(FuPool pool) const
{
    switch (pool) {
      case FuPool::Load:
        return loadUsed_ < loadPorts_;
      case FuPool::Store:
        return storeUsed_ < storePorts_;
      case FuPool::Alu:
        return aluIssuedThisCycle_ < freeAluUnits();
    }
    return false;
}

uint64_t
FunctionalUnits::nextAluFreeCycle(uint64_t cycle) const
{
    uint64_t next = ~0ULL;
    for (uint64_t busy : aluBusyUntil_) {
        if (busy <= cycle)
            return cycle + 1;
        if (busy < next)
            next = busy;
    }
    return next;
}

void
FunctionalUnits::claim(FuPool pool, OpClass cls, uint64_t cycle,
                       uint64_t done)
{
    switch (pool) {
      case FuPool::Load:
        ++loadUsed_;
        return;
      case FuPool::Store:
        ++storeUsed_;
        return;
      case FuPool::Alu:
        if (LatencyTable::unpipelined(cls)) {
            // Park the occupancy on a free unit; the unit leaving the
            // free pool already accounts for this issue slot.
            for (auto &busy : aluBusyUntil_) {
                if (busy <= cycle) {
                    busy = done;
                    return;
                }
            }
        }
        ++aluIssuedThisCycle_;
        return;
    }
}

} // namespace crisp
