/**
 * @file
 * Age-ordering primitive for RAND schedulers.
 *
 * Models the observable behavior of the circuit described in CRISP
 * §4.2: each IQ slot keeps an N-bit age vector, initialized to all
 * ones on allocate with its own bit cleared; every later allocation
 * clears the newcomer's bit in all existing vectors (a column clear).
 * A slot is the oldest of a candidate set iff
 * (age_vector AND candidate_vector) == 0.
 *
 * The software representation is an allocation stamp per slot rather
 * than the materialized bit matrix: the hardware matrix encodes
 * exactly the total order of allocations, so a monotonically
 * increasing stamp reproduces every isOldest()/selectOldest() answer
 * bit-for-bit while making allocate() O(1) instead of the former
 * O(slots) per-dispatch row sweep (the software dual of the
 * word-granular column clear). The equivalence is pinned by a
 * randomized churn test against a naive pairwise age-ordering
 * reference (tests/age_matrix_test.cc).
 */

#ifndef CRISP_CPU_AGE_MATRIX_H
#define CRISP_CPU_AGE_MATRIX_H

#include <array>
#include <cassert>
#include <cstddef>
#include <cstdint>
#include <vector>

namespace crisp
{

/**
 * Fixed-capacity bit vector over IQ slots.
 *
 * Storage is inline (no heap): the scheduler constructs, copies and
 * scans these in the per-cycle selection loop, so they must be
 * allocation-free and cache-line friendly. Capacity is bounded by
 * kMaxSlots — comfortably above the largest swept reservation
 * station (192 entries in the Fig 9 Sunny-Cove-like window).
 */
class SlotVector
{
  public:
    /** Maximum representable IQ capacity, in slots. */
    static constexpr unsigned kMaxSlots = 512;
    static constexpr unsigned kWords = kMaxSlots / 64;

    SlotVector() = default;
    /** @param slots capacity in bits (<= kMaxSlots). */
    explicit SlotVector(unsigned slots)
        : wordCount_((slots + 63) / 64)
    {
        assert(slots <= kMaxSlots && "raise SlotVector::kMaxSlots");
        words_.fill(0);
    }

    void set(unsigned i) { words_[i >> 6] |= 1ULL << (i & 63); }
    void clear(unsigned i) { words_[i >> 6] &= ~(1ULL << (i & 63)); }
    bool test(unsigned i) const
    {
        return words_[i >> 6] >> (i & 63) & 1;
    }
    void setAll()
    {
        for (size_t k = 0; k < wordCount_; ++k)
            words_[k] = ~0ULL;
    }
    void clearAll()
    {
        for (size_t k = 0; k < wordCount_; ++k)
            words_[k] = 0;
    }
    bool any() const
    {
        for (size_t k = 0; k < wordCount_; ++k)
            if (words_[k])
                return true;
        return false;
    }

    /** @return true if (this AND other) == 0 (the NOR reduction). */
    bool disjoint(const SlotVector &other) const
    {
        for (size_t k = 0; k < wordCount_; ++k)
            if (words_[k] & other.words_[k])
                return false;
        return true;
    }

    /** @return number of active 64-bit words. */
    size_t wordCount() const { return wordCount_; }
    /** @return the k-th 64-bit word (for set-bit iteration). */
    uint64_t word(size_t k) const { return words_[k]; }

  private:
    std::array<uint64_t, kWords> words_{};
    size_t wordCount_ = 0;
};

/**
 * The age matrix proper. Slots are allocated in arbitrary (RAND)
 * order; relative age is recoverable only through the matrix, exactly
 * as in hardware. Candidate vectors must contain occupied slots only
 * (empty slots carry a stale age, as in the hardware matrix, where
 * stale row bits for empty slots are likewise never cleared).
 */
class AgeMatrix
{
  public:
    /** @param slots IQ capacity. */
    explicit AgeMatrix(unsigned slots);

    /** Records that @p slot just received a new (youngest) entry. */
    void allocate(unsigned slot)
    {
        stamp_[slot] = ++epoch_;
    }

    /**
     * @return true if no member of @p candidates is older than
     *         @p slot (vacuously true for an empty candidate set).
     */
    bool isOldest(unsigned slot, const SlotVector &candidates) const;

    /**
     * Selects the oldest member of @p candidates.
     * @return the slot index, or -1 if @p candidates is empty.
     */
    int selectOldest(const SlotVector &candidates) const;

    /** @return IQ capacity. */
    unsigned slots() const { return slots_; }

    /**
     * @return the allocation stamp of @p slot (larger = younger;
     *         0 = never allocated). Exposed for the invariant
     *         checker (src/check), which cross-checks the stamp
     *         order of occupied slots against the dispatch (= ROB)
     *         order of their instructions.
     */
    uint64_t stamp(unsigned slot) const { return stamp_[slot]; }

  private:
    unsigned slots_;
    /** Allocation order; larger = younger. 0 = never allocated. */
    std::vector<uint64_t> stamp_;
    uint64_t epoch_ = 0;
};

} // namespace crisp

#endif // CRISP_CPU_AGE_MATRIX_H
