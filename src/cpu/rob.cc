// Rob is header-only; this file keeps the build layout uniform.
#include "cpu/rob.h"
