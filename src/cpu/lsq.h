/**
 * @file
 * Load/store queues and in-window memory dependence tracking.
 */

#ifndef CRISP_CPU_LSQ_H
#define CRISP_CPU_LSQ_H

#include <cstdint>
#include <unordered_map>

#include "cpu/dyn_inst.h"

namespace crisp
{

/**
 * Occupancy tracking for the load and store queues plus the
 * word-granular store map used for store-to-load forwarding. All
 * accesses in the micro-op ISA are 8-byte aligned, so dependence
 * detection is exact address equality.
 */
class LoadStoreQueues
{
  public:
    /**
     * @param lq_size load queue entries (64 in Table 1)
     * @param sq_size store queue entries (128 in Table 1)
     */
    LoadStoreQueues(unsigned lq_size, unsigned sq_size)
        : lqSize_(lq_size), sqSize_(sq_size)
    {
    }

    bool loadQueueFull() const { return loads_ >= lqSize_; }
    bool storeQueueFull() const { return stores_ >= sqSize_; }
    unsigned loads() const { return loads_; }
    unsigned stores() const { return stores_; }

    /**
     * Registers a dispatched load.
     * @return the youngest older in-flight store to the same word, or
     *         nullptr (the load will access the cache).
     */
    DynInst *dispatchLoad(uint64_t addr)
    {
        ++loads_;
        auto it = storeMap_.find(addr);
        return it == storeMap_.end() ? nullptr : it->second;
    }

    /** Registers a dispatched store as the forwarding source. */
    void dispatchStore(DynInst *store, uint64_t addr)
    {
        ++stores_;
        storeMap_[addr] = store;
    }

    /** Releases a load entry at retirement. */
    void retireLoad() { --loads_; }

    /** Releases a store entry at retirement. */
    void retireStore(DynInst *store, uint64_t addr)
    {
        --stores_;
        auto it = storeMap_.find(addr);
        if (it != storeMap_.end() && it->second == store)
            storeMap_.erase(it);
    }

    unsigned loadQueueCapacity() const { return lqSize_; }
    unsigned storeQueueCapacity() const { return sqSize_; }

    /**
     * @return the forwarding map, for the invariant checker
     *         (src/check): every entry must name an in-window store
     *         whose effective address is the key.
     */
    const std::unordered_map<uint64_t, DynInst *> &storeMap() const
    {
        return storeMap_;
    }

  private:
    unsigned lqSize_;
    unsigned sqSize_;
    unsigned loads_ = 0;
    unsigned stores_ = 0;
    std::unordered_map<uint64_t, DynInst *> storeMap_;
};

} // namespace crisp

#endif // CRISP_CPU_LSQ_H
