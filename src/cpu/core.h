/**
 * @file
 * Cycle-level out-of-order core (CRISP Table 1 machine).
 *
 * Trace-driven model with: decoupled FDIP frontend, 6-wide
 * rename/dispatch/retire, 224-entry ROB, 96-entry unified reservation
 * station scheduled by an age matrix (RAND insertion), 4 ALU / 2 load
 * / 1 store ports, load/store queues with exact word-granular
 * store-to-load forwarding, and the two-level cache hierarchy over a
 * DDR4 channel. The scheduler implements both the baseline
 * oldest-ready-first policy and CRISP's two-level pick (oldest ready
 * *prioritized* first, §4.2).
 *
 * Two interchangeable simulation engines drive the model
 * (SimConfig::tickModel, DESIGN.md §9):
 *
 * - TickModel::Cycle — the reference engine: ticks every cycle and
 *   rescans the occupied reservation station for ready work.
 * - TickModel::Event — the default engine: maintains per-pool
 *   candidate/priority sets incrementally (at dispatch, wakeup and
 *   issue) plus a min-heap of time-gated entries keyed on
 *   srcReadyCycle, and when a tick does no work jumps straight to
 *   the earliest future event, batch-charging the skipped span to
 *   the same stall counters. Statistics are bit-identical between
 *   the two engines (pinned by tests/tick_model_test.cc).
 */

#ifndef CRISP_CPU_CORE_H
#define CRISP_CPU_CORE_H

#include <array>
#include <deque>
#include <memory>
#include <queue>
#include <stdexcept>
#include <string>
#include <unordered_map>
#include <utility>
#include <vector>

#include "cache/hierarchy.h"
#include "cpu/dyn_inst.h"
#include "cpu/frontend.h"
#include "cpu/functional_units.h"
#include "cpu/lsq.h"
#include "cpu/reservation_station.h"
#include "cpu/rob.h"
#include "ibda/ibda.h"
#include "isa/latency.h"
#include "sim/config.h"
#include "sim/stats.h"
#include "telemetry/cpi_stack.h"
#include "telemetry/interval.h"
#include "trace/trace.h"

namespace crisp
{

class CancelToken;
class InvariantChecker;
class PcProfiler;
class PipeTracer;
class StatRegistry;

/**
 * Thrown when a simulation stops making forward progress — either
 * the watchdog sees no retirement for kDeadlockWindow cycles, or the
 * event engine proves no future event can ever occur. Carries enough
 * state to identify the dead run; batch drivers (evaluateAll) wrap
 * it with the workload/variant that died so one poisoned
 * configuration cannot take down a whole parallel sweep anonymously.
 */
class SimDeadlockError : public std::runtime_error
{
  public:
    SimDeadlockError(uint64_t cycle, uint64_t retired,
                     size_t trace_size, std::string context = "");

    /** Adds/replaces the workload/config context, rebuilding what(). */
    SimDeadlockError withContext(std::string run_context) const
    {
        return SimDeadlockError(cycle, retired, traceSize,
                                std::move(run_context));
    }

    uint64_t cycle;      ///< cycle at which the deadlock was detected
    uint64_t retired;    ///< micro-ops retired before the deadlock
    size_t traceSize;    ///< total micro-ops in the trace
    std::string context; ///< "workload/variant" when known
};

/** End-of-run results and counters. */
struct CoreStats
{
    uint64_t cycles = 0;
    uint64_t retired = 0;
    uint64_t issued = 0;
    uint64_t issuedPrioritized = 0;
    uint64_t robHeadStallCycles = 0;      ///< head present, no retire
    uint64_t robHeadLoadStallCycles = 0;  ///< ... and head is a load
    uint64_t llcMissLoads = 0;
    uint64_t forwardedLoads = 0;

    FrontendStats frontend;
    CacheStats l1i, l1d, llc;
    DramStats dram;
    IbdaStats ibda;

    /** Per-static-instruction ROB-head stall cycles (§5.2 metric). */
    std::unordered_map<uint32_t, uint64_t> headStallByStatic;

    /** Per-static load scheduling delay: (sum cycles, samples). The
     *  delay is issue cycle minus dataflow-ready cycle — the slack a
     *  better scheduling policy could recover. */
    std::unordered_map<uint32_t, std::pair<uint64_t, uint64_t>>
        issueWaitByStatic;

    /** Top-down cycle accounting; buckets sum exactly to cycles. */
    CpiStack cpi;

    /** Issue-wait (issue minus dataflow-ready) latency histogram,
     *  8-cycle buckets. Integer samples, so bit-identical across
     *  tick engines. */
    Histogram issueWaitHist{8.0, 64};

    /** Optional: retired micro-ops per cycle (Fig 1 UPC timeline). */
    std::vector<uint8_t> retireTimeline;

    /**
     * @return headStallByStatic as (sidx, cycles) rows sorted by
     *         static id — the canonical order for printing and
     *         serialization (the map itself iterates in an
     *         unspecified, platform-dependent order).
     */
    std::vector<std::pair<uint32_t, uint64_t>>
    sortedHeadStalls() const;

    /** @return issueWaitByStatic as (sidx, total wait, samples) rows
     *          sorted by static id. */
    std::vector<std::array<uint64_t, 3>> sortedIssueWaits() const;

    /**
     * Registers every counter, table and histogram of this run under
     * @p prefix: core.*, frontend.*, cache.{l1i,l1d,llc}.*, dram.*,
     * ibda.*, cpi.*. Ordering inside the registry is canonical, so
     * exports are diff-stable.
     */
    void registerInto(StatRegistry &reg,
                      const std::string &prefix = "") const;

    /** @return retired micro-ops per cycle. */
    double ipc() const
    {
        return cycles ? double(retired) / double(cycles) : 0.0;
    }

    /** @return icache misses per kilo-instruction. */
    double icacheMpki() const
    {
        return retired ? 1000.0 * double(l1i.misses) / double(retired)
                       : 0.0;
    }

    /** @return LLC misses per kilo-instruction. */
    double llcMpki() const
    {
        return retired ? 1000.0 * double(llc.misses) / double(retired)
                       : 0.0;
    }

    /**
     * Accumulates another run's statistics into this one: counters,
     * CPI buckets and histograms add; the per-static tables add per
     * key; retire timelines concatenate in call order. This is the
     * stitching algebra sampled simulation uses to combine
     * per-interval results into whole-run aggregates — the same
     * window additivity the IntervalStreamer contract pins
     * (DESIGN.md §12/§13): disjoint windows sum to the run total.
     */
    void accumulate(const CoreStats &other);

    /**
     * Subtracts @p base — an earlier snapshot of the same run — from
     * this one: counters, CPI buckets and histogram subtract; table
     * entries subtract per key (dropping rows that reach zero); the
     * first base.cycles timeline entries are discarded. Sampled
     * simulation uses it to strip a detailed warm-up prefix.
     */
    void subtract(const CoreStats &base);
};

/** The core simulator. One instance simulates one trace once. */
class Core
{
  public:
    /** No retirement for this many cycles = deadlock. */
    static constexpr uint64_t kDeadlockWindow = 2'000'000;

    /**
     * @param trace dynamic stream to execute (restamped with the
     *              tagging of interest)
     * @param cfg machine configuration
     */
    Core(const Trace &trace, const SimConfig &cfg);

    ~Core(); // out of line: checker_ is unique_ptr to fwd-declared

    /**
     * Runs to completion (or @p max_cycles).
     * @param record_timeline record per-cycle retire counts
     * @return the statistics.
     * @throws SimDeadlockError when forward progress stops.
     */
    CoreStats run(uint64_t max_cycles = ~0ULL,
                  bool record_timeline = false);

    /**
     * Attaches a pipeline tracer; every retired instruction inside
     * the tracer's cycle window is recorded with its full lifecycle
     * (fetch/dispatch/issue/complete/retire) and criticality
     * annotations. Pass nullptr to detach. The tracer must outlive
     * run().
     */
    void setTracer(PipeTracer *tracer) { tracer_ = tracer; }

    /**
     * Attaches a per-PC criticality profiler (telemetry): every
     * issued load / mispredicting branch and every two-level
     * scheduler pick is attributed to its PC. Pass nullptr to
     * detach. When detached the hooks cost one pointer test; the
     * issue loop allocates nothing either way. The profiler must
     * outlive run().
     */
    void setProfiler(PcProfiler *profiler) { profiler_ = profiler; }

    /**
     * Attaches an interval time-series streamer (telemetry): its
     * window boundaries are serviced on executed ticks and inside
     * idle-span jumps, producing an engine-independent NDJSON
     * stream. Pass nullptr to detach. The streamer must outlive
     * run().
     */
    void setInterval(IntervalStreamer *interval)
    {
        interval_ = interval;
    }

    /**
     * Marks the first @p warm_ops retired micro-ops as detailed
     * warm-up: the run executes them normally, but at the first tick
     * whose retire count reaches @p warm_ops a statistics mark is
     * captured, and run() returns stats with the mark subtracted —
     * only post-mark activity is reported. An attached profiler is
     * held back until the mark so attribution is measurement-only.
     * Used by sampled simulation (`--sample N:W`); 0 disables.
     */
    void setMeasureFromOp(uint64_t warm_ops)
    {
        measureFromOp_ = warm_ops;
    }

    /**
     * Attaches a cooperative cancellation token (sim/cancel.h): the
     * run loop polls it on every executed tick and unwinds with
     * JobCancelled when it fires. The sweep server's cancel and
     * per-job timeout machinery hangs off this. Pass nullptr to
     * detach; when detached the poll is one pointer test. The token
     * must outlive run().
     */
    void setCancel(const CancelToken *cancel) { cancel_ = cancel; }

  private:
    // Sampled simulation (src/sim/sampled.cc) injects functional
    // warm state into the private memory/frontend/IBDA components
    // through their public adoptWarmState methods before run().
    friend void applySnapshot(Core &core,
                              const struct MachineSnapshot &snap);
    friend void applySnapshot(Core &core,
                              struct MachineSnapshot &&snap);
    // The invariant checker (src/check) audits the private pipeline
    // state — ROB/RS/LSQ, the incremental ready sets and heap, the
    // rename table and the memory system — at checkpoints without
    // widening the public interface.
    friend class InvariantChecker;

    const Trace &trace_;
    SimConfig cfg_;
    LatencyTable lat_;

    Hierarchy mem_;
    Frontend frontend_;
    Rob rob_;
    ReservationStation rs_;
    LoadStoreQueues lsq_;
    FunctionalUnits fus_;
    std::unique_ptr<Ibda> ibda_;

    // DynInst ring allocator.
    std::vector<DynInst> ring_;
    uint64_t nextSeq_ = 0;

    // Fetch-to-dispatch pipe.
    struct PipeEntry
    {
        DynInst *inst;
        uint64_t readyCycle;
    };
    std::deque<PipeEntry> fetchPipe_;
    unsigned fetchPipeCap_;
    std::vector<FetchedOp> fetchScratch_;

    // Register rename state.
    std::array<DynInst *, kNumArchRegs> lastWriter_{};
    std::array<uint64_t, kNumArchRegs> lastWriterPc_{};

    uint64_t cycle_ = 0;
    CoreStats stats_;
    bool recordTimeline_ = false;
    bool eventMode_ = false;
    PipeTracer *tracer_ = nullptr;
    PcProfiler *profiler_ = nullptr;
    IntervalStreamer *interval_ = nullptr;
    const CancelToken *cancel_ = nullptr;
    std::unique_ptr<InvariantChecker> checker_;

    // Detailed warm-up mark (setMeasureFromOp). heldProfiler_ parks
    // an attached profiler until the mark so it sees only the
    // measured suffix.
    uint64_t measureFromOp_ = 0;
    bool warmMarkTaken_ = false;
    CoreStats warmMark_;
    PcProfiler *heldProfiler_ = nullptr;

    // Issue candidate sets. The cycle engine rebuilds them from an
    // RS rescan every tick; the event engine maintains them
    // incrementally: an instruction enters its pool's set the moment
    // it is dataflow-free and time-ready, and leaves it at issue.
    SlotVector candAlu_, candLoad_, candStore_;
    SlotVector prioAlu_, prioLoad_, prioStore_;

    /** Dataflow-free entries whose srcReadyCycle is in the future,
     *  as (srcReadyCycle, slot); popped into the candidate sets when
     *  their cycle arrives (event engine only). */
    std::priority_queue<std::pair<uint64_t, uint32_t>,
                        std::vector<std::pair<uint64_t, uint32_t>>,
                        std::greater<>>
        readyHeap_;

    // Pipeline stages; each returns whether it made progress this
    // tick (the event engine may skip ahead only after a tick in
    // which no stage did).
    bool retireStage();
    bool issueStageCycle();
    bool issueStageEvent();
    bool dispatchStage();
    bool fetchStage();

    DynInst *allocInst(const FetchedOp &fo);
    void wakeConsumers(DynInst *inst);
    void issueInst(DynInst *inst);
    unsigned selectFromPool(FuPool pool, SlotVector &cand,
                            SlotVector &prio, unsigned budget);

    // Event engine.
    /** Files a dataflow-free entry into its candidate set (if ready
     *  no later than @p earliest) or the time-gated heap. */
    void scheduleReady(DynInst *inst, uint64_t earliest);
    /** Sets the entry's candidate (and priority) bit. */
    void markCandidate(DynInst *inst);
    /** @return the earliest cycle > cycle_ at which any stage could
     *          make progress, or ~0ULL if none exists (deadlock). */
    uint64_t nextEventCycle() const;
    /** Batch-charges @p span skipped idle cycles to the same stall
     *  counters the cycle engine would have accumulated one by one. */
    void chargeIdleCycles(uint64_t span);

    // Telemetry.
    /** Classifies the current (non-retiring) cycle into its CPI-stack
     *  stall bucket. Pure function of ROB-head and frontend state, so
     *  the event engine can batch-charge an idle span with one call:
     *  neither input changes within a span (nextEventCycle bounds
     *  every span at the next completion / arrival / unblock). */
    CpiBucket stallBucket() const;
    /** Captures the warm-up statistics mark at the current tick. */
    void captureWarmMark();
    /** Emits the retiring ROB head to the attached tracer. */
    void traceRetire(const DynInst &inst);
    /** @return the cumulative counter state at the current cycle for
     *  the attached interval streamer. */
    IntervalStreamer::Snapshot intervalSnapshot() const;
};

} // namespace crisp

#endif // CRISP_CPU_CORE_H
