/**
 * @file
 * Cycle-level out-of-order core (CRISP Table 1 machine).
 *
 * Trace-driven model with: decoupled FDIP frontend, 6-wide
 * rename/dispatch/retire, 224-entry ROB, 96-entry unified reservation
 * station scheduled by an age matrix (RAND insertion), 4 ALU / 2 load
 * / 1 store ports, load/store queues with exact word-granular
 * store-to-load forwarding, and the two-level cache hierarchy over a
 * DDR4 channel. The scheduler implements both the baseline
 * oldest-ready-first policy and CRISP's two-level pick (oldest ready
 * *prioritized* first, §4.2).
 */

#ifndef CRISP_CPU_CORE_H
#define CRISP_CPU_CORE_H

#include <array>
#include <deque>
#include <memory>
#include <unordered_map>
#include <vector>

#include "cache/hierarchy.h"
#include "cpu/dyn_inst.h"
#include "cpu/frontend.h"
#include "cpu/functional_units.h"
#include "cpu/lsq.h"
#include "cpu/reservation_station.h"
#include "cpu/rob.h"
#include "ibda/ibda.h"
#include "isa/latency.h"
#include "sim/config.h"
#include "trace/trace.h"

namespace crisp
{

/** End-of-run results and counters. */
struct CoreStats
{
    uint64_t cycles = 0;
    uint64_t retired = 0;
    uint64_t issued = 0;
    uint64_t issuedPrioritized = 0;
    uint64_t robHeadStallCycles = 0;      ///< head present, no retire
    uint64_t robHeadLoadStallCycles = 0;  ///< ... and head is a load
    uint64_t llcMissLoads = 0;
    uint64_t forwardedLoads = 0;

    FrontendStats frontend;
    CacheStats l1i, l1d, llc;
    DramStats dram;
    IbdaStats ibda;

    /** Per-static-instruction ROB-head stall cycles (§5.2 metric). */
    std::unordered_map<uint32_t, uint64_t> headStallByStatic;

    /** Per-static load scheduling delay: (sum cycles, samples). The
     *  delay is issue cycle minus dataflow-ready cycle — the slack a
     *  better scheduling policy could recover. */
    std::unordered_map<uint32_t, std::pair<uint64_t, uint64_t>>
        issueWaitByStatic;

    /** Optional: retired micro-ops per cycle (Fig 1 UPC timeline). */
    std::vector<uint8_t> retireTimeline;

    /** @return retired micro-ops per cycle. */
    double ipc() const
    {
        return cycles ? double(retired) / double(cycles) : 0.0;
    }

    /** @return icache misses per kilo-instruction. */
    double icacheMpki() const
    {
        return retired ? 1000.0 * double(l1i.misses) / double(retired)
                       : 0.0;
    }

    /** @return LLC misses per kilo-instruction. */
    double llcMpki() const
    {
        return retired ? 1000.0 * double(llc.misses) / double(retired)
                       : 0.0;
    }
};

/** The core simulator. One instance simulates one trace once. */
class Core
{
  public:
    /**
     * @param trace dynamic stream to execute (restamped with the
     *              tagging of interest)
     * @param cfg machine configuration
     */
    Core(const Trace &trace, const SimConfig &cfg);

    /**
     * Runs to completion (or @p max_cycles).
     * @param record_timeline record per-cycle retire counts
     * @return the statistics.
     */
    CoreStats run(uint64_t max_cycles = ~0ULL,
                  bool record_timeline = false);

  private:
    const Trace &trace_;
    SimConfig cfg_;
    LatencyTable lat_;

    Hierarchy mem_;
    Frontend frontend_;
    Rob rob_;
    ReservationStation rs_;
    LoadStoreQueues lsq_;
    FunctionalUnits fus_;
    std::unique_ptr<Ibda> ibda_;

    // DynInst ring allocator.
    std::vector<DynInst> ring_;
    uint64_t nextSeq_ = 0;

    // Fetch-to-dispatch pipe.
    struct PipeEntry
    {
        DynInst *inst;
        uint64_t readyCycle;
    };
    std::deque<PipeEntry> fetchPipe_;
    unsigned fetchPipeCap_;
    std::vector<FetchedOp> fetchScratch_;

    // Register rename state.
    std::array<DynInst *, kNumArchRegs> lastWriter_{};
    std::array<uint64_t, kNumArchRegs> lastWriterPc_{};

    uint64_t cycle_ = 0;
    CoreStats stats_;
    bool recordTimeline_ = false;

    // Selection scratch.
    SlotVector candAlu_, candLoad_, candStore_;
    SlotVector prioAlu_, prioLoad_, prioStore_;

    void retireStage();
    void issueStage();
    void dispatchStage();
    void fetchStage();

    DynInst *allocInst(const FetchedOp &fo);
    void wakeConsumers(DynInst *inst);
    void issueInst(DynInst *inst);
    unsigned selectFromPool(FuPool pool, SlotVector &cand,
                            SlotVector &prio, unsigned budget);
};

} // namespace crisp

#endif // CRISP_CPU_CORE_H
