// Ddr4Timing is header-only; this file keeps the build layout
// uniform.
#include "dram/ddr4.h"
