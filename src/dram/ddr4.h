/**
 * @file
 * DDR4-2400 timing parameters expressed in CPU cycles.
 *
 * Stands in for Ramulator in the paper's setup (CRISP §5.1): a
 * single-channel DDR4-2400 device behind a 3.0 GHz core, so one DRAM
 * clock (0.833 ns) is 2.5 CPU cycles.
 */

#ifndef CRISP_DRAM_DDR4_H
#define CRISP_DRAM_DDR4_H

#include <cstdint>

namespace crisp
{

/** DDR4-2400 timing, CPU cycles at 3.0 GHz. */
struct Ddr4Timing
{
    uint32_t tRcd = 42;     ///< 17 tCK: activate to column
    uint32_t tCl = 42;      ///< 17 tCK: column to data
    uint32_t tRp = 42;      ///< 17 tCK: precharge
    uint32_t tBurst = 10;   ///< BL8: 4 tCK data transfer
    uint32_t tCtrl = 18;    ///< controller + on-die interconnect
    uint32_t tRefi = 23400; ///< 7.8 us refresh interval
    uint32_t tRfc = 840;    ///< 280 ns refresh duration
    uint32_t numBanks = 16;
    uint32_t rowBytes = 8192;

    /** @return the best-case (row-hit, idle) access latency. */
    uint32_t rowHitLatency() const { return tCtrl + tCl + tBurst; }
    /** @return the closed-row access latency. */
    uint32_t rowClosedLatency() const
    {
        return tCtrl + tRcd + tCl + tBurst;
    }
    /** @return the row-conflict access latency. */
    uint32_t rowConflictLatency() const
    {
        return tCtrl + tRp + tRcd + tCl + tBurst;
    }
};

} // namespace crisp

#endif // CRISP_DRAM_DDR4_H
