/**
 * @file
 * Single-channel DRAM controller with open-page policy.
 */

#ifndef CRISP_DRAM_CONTROLLER_H
#define CRISP_DRAM_CONTROLLER_H

#include <cstdint>
#include <string>
#include <vector>

#include "dram/ddr4.h"

namespace crisp
{

class StatRegistry;
class WarmSink;
class WarmSource;

/** DRAM controller statistics. */
struct DramStats
{
    uint64_t reads = 0;
    uint64_t criticalReads = 0;
    uint64_t criticalBusBypassCycles = 0;
    uint64_t rowHits = 0;
    uint64_t rowConflicts = 0;
    uint64_t rowClosed = 0;
    uint64_t busWaitCycles = 0;
    uint64_t totalLatency = 0;

    /** @return average read latency in cycles. */
    double averageLatency() const
    {
        return reads ? double(totalLatency) / double(reads) : 0.0;
    }

    /** Registers every counter under @p prefix (telemetry). */
    void registerInto(StatRegistry &reg,
                      const std::string &prefix) const;

    /** Adds @p other counter-wise (sampled-interval stitching). */
    void accumulate(const DramStats &other)
    {
        reads += other.reads;
        criticalReads += other.criticalReads;
        criticalBusBypassCycles += other.criticalBusBypassCycles;
        rowHits += other.rowHits;
        rowConflicts += other.rowConflicts;
        rowClosed += other.rowClosed;
        busWaitCycles += other.busWaitCycles;
        totalLatency += other.totalLatency;
    }

    /** Subtracts @p base counter-wise (warm-up mark removal). */
    void subtract(const DramStats &base)
    {
        reads -= base.reads;
        criticalReads -= base.criticalReads;
        criticalBusBypassCycles -= base.criticalBusBypassCycles;
        rowHits -= base.rowHits;
        rowConflicts -= base.rowConflicts;
        rowClosed -= base.rowClosed;
        busWaitCycles -= base.busWaitCycles;
        totalLatency -= base.totalLatency;
    }
};

/**
 * Open-page, bank-parallel DRAM channel. Each access is resolved to a
 * completion cycle considering bank state (open row), bank busy time,
 * data-bus serialization and refresh windows — the first-order
 * effects an MLP-sensitive criticality heuristic observes.
 */
class DramController
{
  public:
    /** @param timing device timing (defaults to DDR4-2400). */
    explicit DramController(Ddr4Timing timing = Ddr4Timing{});

    /**
     * Performs one cache-line read.
     * @param addr physical address
     * @param cycle cycle the request reaches the controller
     * @param critical grant data-bus priority (criticality-aware
     *        memory scheduling, CRISP §6.1)
     * @return cycle the critical word is returned
     */
    uint64_t access(uint64_t addr, uint64_t cycle,
                    bool critical = false);

    /**
     * Warm-pass fast path: identical bank/bus/row state transitions
     * and completion cycle as access(addr, cycle, false) with zero
     * statistics bookkeeping (DESIGN.md §14).
     */
    uint64_t warmAccess(uint64_t addr, uint64_t cycle);

    /** @return accumulated statistics. */
    const DramStats &stats() const { return stats_; }

    /** Resets bank state and statistics. */
    void reset();

    /**
     * Adopts the open-row image of @p warm with timing clamped to a
     * quiesced channel (no bank/bus reservations) and statistics
     * zeroed. Sampled-interval warm hand-off (DESIGN.md §13).
     */
    void adoptWarmState(const DramController &warm);

    /** Serializes the adoption-relevant content (open rows) for the
     *  on-disk warm-artifact tier (DESIGN.md §14). */
    void serializeWarm(WarmSink &sink) const;

    /** Restores serializeWarm() content. @return false on truncation
     *  or a bank-count mismatch. */
    bool deserializeWarm(WarmSource &src);

  private:
    // The invariant checker audits bank/bus reservation monotonicity
    // and open-row sanity (the resolved-time image of DDR4 command
    // spacing; DESIGN.md §11).
    friend class InvariantChecker;

    Ddr4Timing timing_;
    std::vector<uint64_t> bankBusyUntil_;
    std::vector<int64_t> openRow_;
    uint64_t busBusyUntil_ = 0;
    DramStats stats_;

    /** True after adoptWarmState() installed open rows with no
     *  served command in this cycle domain — the one legitimate
     *  "open row, idle bank" state the checker must accept. */
    bool warmRowsAdopted_ = false;

    unsigned bankOf(uint64_t addr) const
    {
        return (addr >> 6) & (timing_.numBanks - 1);
    }
    int64_t rowOf(uint64_t addr) const
    {
        // line(6) | bank(4) | row: columns interleave within the row
        // via the low line bits, rows stack above the bank bits.
        return int64_t(addr / (uint64_t(timing_.rowBytes) *
                               timing_.numBanks));
    }
    uint64_t refreshDelay(uint64_t cycle) const;

    template <bool kCountStats>
    uint64_t accessImpl(uint64_t addr, uint64_t cycle, bool critical);
};

} // namespace crisp

#endif // CRISP_DRAM_CONTROLLER_H
