#include "dram/controller.h"

#include <algorithm>

#include "sim/warm_io.h"
#include "telemetry/stat_registry.h"

namespace crisp
{

void
DramStats::registerInto(StatRegistry &reg,
                        const std::string &prefix) const
{
    reg.addCounter(statPath(prefix, "reads"), reads);
    reg.addCounter(statPath(prefix, "critical_reads"),
                   criticalReads,
                   "reads tagged critical (6.1 extension)");
    reg.addCounter(statPath(prefix, "critical_bus_bypass_cycles"),
                   criticalBusBypassCycles);
    reg.addCounter(statPath(prefix, "row_hits"), rowHits);
    reg.addCounter(statPath(prefix, "row_conflicts"), rowConflicts);
    reg.addCounter(statPath(prefix, "row_closed"), rowClosed);
    reg.addCounter(statPath(prefix, "bus_wait_cycles"),
                   busWaitCycles);
    reg.addCounter(statPath(prefix, "total_latency"), totalLatency);
    reg.addScalar(statPath(prefix, "avg_latency"),
                  averageLatency(), "average read latency, cycles");
}

DramController::DramController(Ddr4Timing timing)
    : timing_(timing),
      bankBusyUntil_(timing.numBanks, 0),
      openRow_(timing.numBanks, -1)
{
}

uint64_t
DramController::refreshDelay(uint64_t cycle) const
{
    // All-bank refresh occupies [k*tREFI, k*tREFI + tRFC).
    uint64_t phase = cycle % timing_.tRefi;
    if (phase < timing_.tRfc)
        return timing_.tRfc - phase;
    return 0;
}

template <bool kCountStats>
uint64_t
DramController::accessImpl(uint64_t addr, uint64_t cycle,
                           bool critical)
{
    if constexpr (kCountStats) {
        ++stats_.reads;
        if (critical)
            ++stats_.criticalReads;
    }
    unsigned bank = bankOf(addr);
    int64_t row = rowOf(addr);

    uint64_t start = cycle + timing_.tCtrl;
    start += refreshDelay(start);
    start = std::max(start, bankBusyUntil_[bank]);

    uint32_t array_lat;
    if (openRow_[bank] == row) {
        if constexpr (kCountStats)
            ++stats_.rowHits;
        array_lat = timing_.tCl;
    } else if (openRow_[bank] < 0) {
        if constexpr (kCountStats)
            ++stats_.rowClosed;
        array_lat = timing_.tRcd + timing_.tCl;
    } else {
        if constexpr (kCountStats)
            ++stats_.rowConflicts;
        array_lat = timing_.tRp + timing_.tRcd + timing_.tCl;
    }
    openRow_[bank] = row;

    // Data transfer serializes on the channel bus; critical reads
    // (CRISP §6.1) are granted the bus out of order.
    uint64_t data_start = start + array_lat;
    if (!critical && busBusyUntil_ > data_start) {
        if constexpr (kCountStats)
            stats_.busWaitCycles += busBusyUntil_ - data_start;
        data_start = busBusyUntil_;
    } else if (critical && busBusyUntil_ > data_start) {
        if constexpr (kCountStats)
            stats_.criticalBusBypassCycles +=
                busBusyUntil_ - data_start;
    }
    uint64_t done = data_start + timing_.tBurst;
    busBusyUntil_ = std::max(busBusyUntil_, done);
    bankBusyUntil_[bank] = done;

    if constexpr (kCountStats)
        stats_.totalLatency += done - cycle;
    return done;
}

uint64_t
DramController::access(uint64_t addr, uint64_t cycle, bool critical)
{
    return accessImpl<true>(addr, cycle, critical);
}

uint64_t
DramController::warmAccess(uint64_t addr, uint64_t cycle)
{
    return accessImpl<false>(addr, cycle, false);
}

void
DramController::reset()
{
    std::fill(bankBusyUntil_.begin(), bankBusyUntil_.end(), 0);
    std::fill(openRow_.begin(), openRow_.end(), -1);
    busBusyUntil_ = 0;
    stats_ = DramStats{};
    warmRowsAdopted_ = false;
}

void
DramController::adoptWarmState(const DramController &warm)
{
    std::fill(bankBusyUntil_.begin(), bankBusyUntil_.end(), 0);
    openRow_ = warm.openRow_;
    busBusyUntil_ = 0;
    stats_ = DramStats{};
    warmRowsAdopted_ =
        std::any_of(openRow_.begin(), openRow_.end(),
                    [](int64_t row) { return row >= 0; });
}

void
DramController::serializeWarm(WarmSink &sink) const
{
    sink.u64(openRow_.size());
    for (int64_t row : openRow_)
        sink.i64(row);
}

bool
DramController::deserializeWarm(WarmSource &src)
{
    if (src.u64() != openRow_.size()) {
        src.markFail();
        return false;
    }
    for (int64_t &row : openRow_)
        row = src.i64();
    std::fill(bankBusyUntil_.begin(), bankBusyUntil_.end(), 0);
    busBusyUntil_ = 0;
    return src.ok();
}

} // namespace crisp
