/**
 * @file
 * Functional interpreter for Programs.
 *
 * Plays the role of the traced native execution in the paper's flow:
 * it produces the dynamic micro-op stream (with real effective
 * addresses, real branch outcomes and genuine register *and* memory
 * dataflow) that the profiler, the slice extractor and the
 * cycle-level core consume (CRISP §3.3, §5.1).
 */

#ifndef CRISP_VM_INTERPRETER_H
#define CRISP_VM_INTERPRETER_H

#include <array>
#include <cstdint>
#include <memory>

#include "trace/trace.h"
#include "vm/memory.h"

namespace crisp
{

/**
 * Executes a Program and records the trace.
 *
 * Indirect control flow (Jr/RetI) transfers via *static instruction
 * indices* held in registers, so regenerated traces stay consistent
 * after the tagger re-lays-out instruction addresses.
 */
class Interpreter
{
  public:
    /** @param program the program to execute (shared with the trace). */
    explicit Interpreter(std::shared_ptr<const Program> program);

    /**
     * Runs from the entry point for at most @p max_ops dynamic
     * micro-ops or until Halt.
     * @return the recorded trace.
     */
    Trace run(uint64_t max_ops);

    /** @return the data memory (for post-run inspection in tests). */
    const Memory &memory() const { return mem_; }

    /** @return an architectural register value after run(). */
    int64_t reg(RegId r) const { return regs_[r]; }

    /** @return true if the last run() ended at a Halt instruction. */
    bool halted() const { return halted_; }

  private:
    std::shared_ptr<const Program> program_;
    Memory mem_;
    std::array<int64_t, kNumArchRegs> regs_{};
    bool halted_ = false;
};

} // namespace crisp

#endif // CRISP_VM_INTERPRETER_H
