/**
 * @file
 * Builder DSL for constructing Programs.
 *
 * Workload proxies assemble small register-machine kernels with this
 * class; branch targets are symbolic labels resolved to static
 * instruction indices at finish() time, so programs stay valid when
 * the CRISP tagger later changes instruction sizes and re-lays-out
 * PCs.
 */

#ifndef CRISP_VM_ASSEMBLER_H
#define CRISP_VM_ASSEMBLER_H

#include <cstdint>
#include <string>
#include <vector>

#include "trace/program.h"

namespace crisp
{

/**
 * Assembles a Program instruction by instruction.
 *
 * Register convention used by the workloads (not enforced):
 * r0 is kept zero, r56-r63 are scratch/link registers.
 */
class Assembler
{
  public:
    /** Symbolic branch-target label. */
    using Label = uint32_t;

    /** Creates a fresh, unbound label. */
    Label label();

    /** Binds @p l to the next emitted instruction. */
    void bind(Label l);

    /** @return the static index a bound label resolved to. */
    uint32_t indexOf(Label l) const;

    // --- register-register ALU -----------------------------------
    void add(RegId d, RegId a, RegId b) { emit3(Opcode::Add, d, a, b); }
    void sub(RegId d, RegId a, RegId b) { emit3(Opcode::Sub, d, a, b); }
    void mul(RegId d, RegId a, RegId b) { emit3(Opcode::Mul, d, a, b); }
    void div(RegId d, RegId a, RegId b) { emit3(Opcode::Div, d, a, b); }
    void rem(RegId d, RegId a, RegId b) { emit3(Opcode::Rem, d, a, b); }
    void and_(RegId d, RegId a, RegId b) { emit3(Opcode::And, d, a, b); }
    void or_(RegId d, RegId a, RegId b) { emit3(Opcode::Or, d, a, b); }
    void xor_(RegId d, RegId a, RegId b) { emit3(Opcode::Xor, d, a, b); }
    void shl(RegId d, RegId a, RegId b) { emit3(Opcode::Shl, d, a, b); }
    void shr(RegId d, RegId a, RegId b) { emit3(Opcode::Shr, d, a, b); }
    void slt(RegId d, RegId a, RegId b) { emit3(Opcode::Slt, d, a, b); }

    // --- register-immediate ALU -----------------------------------
    void addi(RegId d, RegId a, int64_t imm)
    {
        emitImm(Opcode::AddI, d, a, imm);
    }
    void muli(RegId d, RegId a, int64_t imm)
    {
        emitImm(Opcode::MulI, d, a, imm);
    }
    void andi(RegId d, RegId a, int64_t imm)
    {
        emitImm(Opcode::AndI, d, a, imm);
    }
    void ori(RegId d, RegId a, int64_t imm)
    {
        emitImm(Opcode::OrI, d, a, imm);
    }
    void xori(RegId d, RegId a, int64_t imm)
    {
        emitImm(Opcode::XorI, d, a, imm);
    }
    void shli(RegId d, RegId a, int64_t imm)
    {
        emitImm(Opcode::ShlI, d, a, imm);
    }
    void shri(RegId d, RegId a, int64_t imm)
    {
        emitImm(Opcode::ShrI, d, a, imm);
    }
    void slti(RegId d, RegId a, int64_t imm)
    {
        emitImm(Opcode::SltI, d, a, imm);
    }
    void movi(RegId d, int64_t imm)
    {
        emitImm(Opcode::MovI, d, kNoReg, imm);
    }
    void mov(RegId d, RegId a) { emit3(Opcode::Mov, d, a, kNoReg); }

    // --- floating point (timing classes only) ---------------------
    void fadd(RegId d, RegId a, RegId b) { emit3(Opcode::FAdd, d, a, b); }
    void fmul(RegId d, RegId a, RegId b) { emit3(Opcode::FMul, d, a, b); }
    void fdiv(RegId d, RegId a, RegId b) { emit3(Opcode::FDiv, d, a, b); }

    // --- memory ----------------------------------------------------
    /** d = mem64[a + imm] */
    void ld(RegId d, RegId a, int64_t imm = 0)
    {
        emitImm(Opcode::Ld, d, a, imm);
    }
    /** d = mem64[a + b + imm] */
    void ldx(RegId d, RegId a, RegId b, int64_t imm = 0);
    /** mem64[a + imm] = v */
    void st(RegId a, RegId v, int64_t imm = 0);
    /** mem64[a + b + imm] = v */
    void stx(RegId a, RegId b, RegId v, int64_t imm = 0);
    /** software prefetch of mem[a + imm] */
    void pf(RegId a, int64_t imm = 0);

    // --- control ---------------------------------------------------
    void beq(RegId a, RegId b, Label t) { emitBr(Opcode::Beq, a, b, t); }
    void bne(RegId a, RegId b, Label t) { emitBr(Opcode::Bne, a, b, t); }
    void blt(RegId a, RegId b, Label t) { emitBr(Opcode::Blt, a, b, t); }
    void bge(RegId a, RegId b, Label t) { emitBr(Opcode::Bge, a, b, t); }
    void jmp(Label t) { emitBr(Opcode::Jmp, kNoReg, kNoReg, t); }
    /** indirect jump to the static index held in register @p a */
    void jr(RegId a) { emit3(Opcode::Jr, kNoReg, a, kNoReg); }
    /** direct call: @p link receives the return static index */
    void call(RegId link, Label t);
    /** return via static index in @p link */
    void ret(RegId link) { emit3(Opcode::RetI, kNoReg, link, kNoReg); }

    void nop() { emit3(Opcode::Nop, kNoReg, kNoReg, kNoReg); }
    void halt() { emit3(Opcode::Halt, kNoReg, kNoReg, kNoReg); }

    /** Seeds an initial 64-bit data value. */
    void poke(uint64_t addr, uint64_t value)
    {
        data_.emplace_back(addr, value);
    }

    /** @return index of the next instruction to be emitted. */
    uint32_t here() const { return static_cast<uint32_t>(code_.size()); }

    /**
     * Resolves all labels and produces the laid-out Program.
     * Aborts if any referenced label is unbound.
     */
    Program finish(std::string name);

  private:
    std::vector<StaticInst> code_;
    std::vector<int64_t> labelPos_;
    std::vector<std::pair<uint32_t, Label>> fixups_;
    std::vector<std::pair<uint64_t, uint64_t>> data_;

    static uint8_t sizeOf(Opcode op);
    void emit3(Opcode op, RegId d, RegId a, RegId b);
    void emitImm(Opcode op, RegId d, RegId a, int64_t imm);
    void emitBr(Opcode op, RegId a, RegId b, Label t);
};

} // namespace crisp

#endif // CRISP_VM_ASSEMBLER_H
