#include "vm/assembler.h"

#include <cassert>
#include <cstdlib>

namespace crisp
{

Assembler::Label
Assembler::label()
{
    labelPos_.push_back(-1);
    return static_cast<Label>(labelPos_.size() - 1);
}

void
Assembler::bind(Label l)
{
    assert(l < labelPos_.size());
    assert(labelPos_[l] == -1 && "label bound twice");
    labelPos_[l] = static_cast<int64_t>(code_.size());
}

uint32_t
Assembler::indexOf(Label l) const
{
    assert(l < labelPos_.size() && labelPos_[l] >= 0);
    return static_cast<uint32_t>(labelPos_[l]);
}

uint8_t
Assembler::sizeOf(Opcode op)
{
    switch (op) {
      case Opcode::Nop:
      case Opcode::Halt:
        return 1;
      case Opcode::Jr:
      case Opcode::RetI:
        return 2;
      case Opcode::Add: case Opcode::Sub: case Opcode::Mul:
      case Opcode::Div: case Opcode::Rem: case Opcode::And:
      case Opcode::Or: case Opcode::Xor: case Opcode::Shl:
      case Opcode::Shr: case Opcode::Slt: case Opcode::Mov:
      case Opcode::Beq: case Opcode::Bne: case Opcode::Blt:
      case Opcode::Bge:
        return 3;
      case Opcode::MovI:
        return 7;
      case Opcode::Jmp:
      case Opcode::CallD:
      case Opcode::LdX:
      case Opcode::StX:
        return 5;
      default:
        return 4;
    }
}

void
Assembler::emit3(Opcode op, RegId d, RegId a, RegId b)
{
    StaticInst inst;
    inst.op = op;
    inst.dst = d;
    inst.src1 = a;
    inst.src2 = b;
    inst.size = sizeOf(op);
    code_.push_back(inst);
}

void
Assembler::emitImm(Opcode op, RegId d, RegId a, int64_t imm)
{
    StaticInst inst;
    inst.op = op;
    inst.dst = d;
    inst.src1 = a;
    inst.imm = imm;
    inst.size = sizeOf(op);
    code_.push_back(inst);
}

void
Assembler::emitBr(Opcode op, RegId a, RegId b, Label t)
{
    StaticInst inst;
    inst.op = op;
    inst.src1 = a;
    inst.src2 = b;
    inst.size = sizeOf(op);
    fixups_.emplace_back(static_cast<uint32_t>(code_.size()), t);
    code_.push_back(inst);
}

void
Assembler::ldx(RegId d, RegId a, RegId b, int64_t imm)
{
    StaticInst inst;
    inst.op = Opcode::LdX;
    inst.dst = d;
    inst.src1 = a;
    inst.src2 = b;
    inst.imm = imm;
    inst.size = sizeOf(inst.op);
    code_.push_back(inst);
}

void
Assembler::st(RegId a, RegId v, int64_t imm)
{
    StaticInst inst;
    inst.op = Opcode::St;
    inst.src1 = a;
    inst.src2 = v;
    inst.imm = imm;
    inst.size = sizeOf(inst.op);
    code_.push_back(inst);
}

void
Assembler::stx(RegId a, RegId b, RegId v, int64_t imm)
{
    StaticInst inst;
    inst.op = Opcode::StX;
    inst.src1 = a;
    inst.src2 = b;
    inst.src3 = v;
    inst.imm = imm;
    inst.size = sizeOf(inst.op);
    code_.push_back(inst);
}

void
Assembler::pf(RegId a, int64_t imm)
{
    StaticInst inst;
    inst.op = Opcode::Pf;
    inst.src1 = a;
    inst.imm = imm;
    inst.size = sizeOf(inst.op);
    code_.push_back(inst);
}

void
Assembler::call(RegId link, Label t)
{
    StaticInst inst;
    inst.op = Opcode::CallD;
    inst.dst = link;
    inst.size = sizeOf(inst.op);
    fixups_.emplace_back(static_cast<uint32_t>(code_.size()), t);
    code_.push_back(inst);
}

Program
Assembler::finish(std::string name)
{
    for (auto &[idx, lbl] : fixups_) {
        assert(lbl < labelPos_.size());
        if (labelPos_[lbl] < 0) {
            std::abort(); // unbound label: workload construction bug
        }
        code_[idx].target = static_cast<uint32_t>(labelPos_[lbl]);
    }
    Program prog;
    prog.code = std::move(code_);
    prog.dataInit = std::move(data_);
    prog.name = std::move(name);
    prog.entry = 0;
    prog.layout();
    return prog;
}

} // namespace crisp
