#include "vm/interpreter.h"

#include <cassert>

namespace crisp
{

Interpreter::Interpreter(std::shared_ptr<const Program> program)
    : program_(std::move(program))
{
    assert(program_ && !program_->code.empty());
    for (const auto &[addr, value] : program_->dataInit)
        mem_.write64(addr, value);
}

Trace
Interpreter::run(uint64_t max_ops)
{
    const Program &prog = *program_;
    const size_t ninst = prog.code.size();

    Trace trace;
    trace.program = program_;
    trace.ops.reserve(max_ops);
    halted_ = false;

    uint32_t idx = prog.entry;
    auto rd = [this](RegId r) -> int64_t {
        return r == kNoReg ? 0 : regs_[r];
    };
    // The modelled machine wraps on 64-bit overflow (two's
    // complement); compute add/sub/mul in uint64_t so the wrap is
    // well-defined C++ instead of signed-overflow UB.
    auto wadd = [](int64_t x, int64_t y) -> int64_t {
        return static_cast<int64_t>(static_cast<uint64_t>(x) +
                                    static_cast<uint64_t>(y));
    };
    auto wsub = [](int64_t x, int64_t y) -> int64_t {
        return static_cast<int64_t>(static_cast<uint64_t>(x) -
                                    static_cast<uint64_t>(y));
    };
    auto wmul = [](int64_t x, int64_t y) -> int64_t {
        return static_cast<int64_t>(static_cast<uint64_t>(x) *
                                    static_cast<uint64_t>(y));
    };

    while (trace.ops.size() < max_ops) {
        assert(idx < ninst);
        const StaticInst &si = prog.code[idx];

        MicroOp op;
        op.sidx = idx;
        op.pc = si.pc;
        op.cls = si.cls();
        op.dst = si.dst;
        op.src1 = si.src1;
        op.src2 = si.src2;
        op.src3 = si.src3;
        op.instSize = si.size;
        op.critical = si.critical;

        uint32_t next = idx + 1;
        int64_t a = rd(si.src1);
        int64_t b = rd(si.src2);

        switch (si.op) {
          case Opcode::Add: regs_[si.dst] = wadd(a, b); break;
          case Opcode::Sub: regs_[si.dst] = wsub(a, b); break;
          case Opcode::Mul: regs_[si.dst] = wmul(a, b); break;
          case Opcode::Div: regs_[si.dst] = b ? a / b : 0; break;
          case Opcode::Rem: regs_[si.dst] = b ? a % b : 0; break;
          case Opcode::And: regs_[si.dst] = a & b; break;
          case Opcode::Or: regs_[si.dst] = a | b; break;
          case Opcode::Xor: regs_[si.dst] = a ^ b; break;
          case Opcode::Shl:
            regs_[si.dst] = a << (b & 63);
            break;
          case Opcode::Shr:
            regs_[si.dst] = static_cast<int64_t>(
                static_cast<uint64_t>(a) >> (b & 63));
            break;
          case Opcode::Slt: regs_[si.dst] = a < b ? 1 : 0; break;
          case Opcode::AddI: regs_[si.dst] = wadd(a, si.imm); break;
          case Opcode::MulI: regs_[si.dst] = wmul(a, si.imm); break;
          case Opcode::AndI: regs_[si.dst] = a & si.imm; break;
          case Opcode::OrI: regs_[si.dst] = a | si.imm; break;
          case Opcode::XorI: regs_[si.dst] = a ^ si.imm; break;
          case Opcode::ShlI: regs_[si.dst] = a << (si.imm & 63); break;
          case Opcode::ShrI:
            regs_[si.dst] = static_cast<int64_t>(
                static_cast<uint64_t>(a) >> (si.imm & 63));
            break;
          case Opcode::SltI: regs_[si.dst] = a < si.imm ? 1 : 0; break;
          case Opcode::MovI: regs_[si.dst] = si.imm; break;
          case Opcode::Mov: regs_[si.dst] = a; break;
          case Opcode::FAdd: regs_[si.dst] = wadd(a, b); break;
          case Opcode::FMul: regs_[si.dst] = wmul(a, b); break;
          case Opcode::FDiv: regs_[si.dst] = b ? a / b : 0; break;
          case Opcode::Ld:
            op.effAddr = static_cast<uint64_t>(wadd(a, si.imm));
            op.memSize = 8;
            regs_[si.dst] = static_cast<int64_t>(mem_.read64(op.effAddr));
            break;
          case Opcode::LdX:
            op.effAddr = static_cast<uint64_t>(wadd(wadd(a, b), si.imm));
            op.memSize = 8;
            regs_[si.dst] = static_cast<int64_t>(mem_.read64(op.effAddr));
            break;
          case Opcode::St:
            op.effAddr = static_cast<uint64_t>(wadd(a, si.imm));
            op.memSize = 8;
            mem_.write64(op.effAddr, static_cast<uint64_t>(b));
            break;
          case Opcode::StX:
            op.effAddr = static_cast<uint64_t>(wadd(wadd(a, b), si.imm));
            op.memSize = 8;
            mem_.write64(op.effAddr,
                         static_cast<uint64_t>(rd(si.src3)));
            break;
          case Opcode::Pf:
            op.effAddr = static_cast<uint64_t>(wadd(a, si.imm));
            op.memSize = 8;
            break;
          case Opcode::Beq:
            op.taken = (a == b);
            if (op.taken) next = si.target;
            break;
          case Opcode::Bne:
            op.taken = (a != b);
            if (op.taken) next = si.target;
            break;
          case Opcode::Blt:
            op.taken = (a < b);
            if (op.taken) next = si.target;
            break;
          case Opcode::Bge:
            op.taken = (a >= b);
            if (op.taken) next = si.target;
            break;
          case Opcode::Jmp:
            op.taken = true;
            next = si.target;
            break;
          case Opcode::Jr:
            op.taken = true;
            next = static_cast<uint32_t>(a);
            break;
          case Opcode::CallD:
            op.taken = true;
            regs_[si.dst] = idx + 1;
            next = si.target;
            break;
          case Opcode::RetI:
            op.taken = true;
            next = static_cast<uint32_t>(a);
            break;
          case Opcode::Nop:
            break;
          case Opcode::Halt:
            op.nextPc = si.pc + si.size;
            trace.ops.push_back(op);
            halted_ = true;
            return trace;
          default:
            assert(false && "unknown opcode");
        }

        assert(next < ninst && "control transfer out of program");
        op.nextPc = prog.code[next].pc;
        trace.ops.push_back(op);
        idx = next;
    }
    return trace;
}

} // namespace crisp
