#include "vm/memory.h"

#include <cassert>

namespace crisp
{

Memory::Page &
Memory::pageFor(uint64_t addr) const
{
    uint64_t page_num = addr >> kPageBits;
    auto &slot = pages_[page_num];
    if (!slot) {
        slot = std::make_unique<Page>();
        slot->fill(0);
    }
    return *slot;
}

uint64_t
Memory::read64(uint64_t addr) const
{
    assert((addr & 7) == 0 && "unaligned 64-bit read");
    const Page &page = pageFor(addr);
    return page[(addr & kPageMask) >> 3];
}

void
Memory::write64(uint64_t addr, uint64_t value)
{
    assert((addr & 7) == 0 && "unaligned 64-bit write");
    Page &page = pageFor(addr);
    page[(addr & kPageMask) >> 3] = value;
}

} // namespace crisp
