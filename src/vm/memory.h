/**
 * @file
 * Sparse, paged data memory for the workload VM.
 */

#ifndef CRISP_VM_MEMORY_H
#define CRISP_VM_MEMORY_H

#include <array>
#include <cstdint>
#include <memory>
#include <unordered_map>

namespace crisp
{

/**
 * Byte-addressable sparse memory backed by 4 KiB pages allocated on
 * first touch. Unmapped reads return zero. Only 64-bit naturally
 * aligned accesses are supported, which is all the micro-op ISA
 * generates.
 */
class Memory
{
  public:
    /** @return the 64-bit word at @p addr (must be 8-byte aligned). */
    uint64_t read64(uint64_t addr) const;

    /** Stores @p value at @p addr (must be 8-byte aligned). */
    void write64(uint64_t addr, uint64_t value);

    /** @return number of mapped pages (for tests). */
    size_t mappedPages() const { return pages_.size(); }

  private:
    static constexpr uint64_t kPageBits = 12;
    static constexpr uint64_t kPageSize = 1ULL << kPageBits;
    static constexpr uint64_t kPageMask = kPageSize - 1;
    static constexpr size_t kWordsPerPage = kPageSize / 8;

    using Page = std::array<uint64_t, kWordsPerPage>;

    mutable std::unordered_map<uint64_t, std::unique_ptr<Page>> pages_;

    Page &pageFor(uint64_t addr) const;
};

} // namespace crisp

#endif // CRISP_VM_MEMORY_H
