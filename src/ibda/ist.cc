#include "ibda/ist.h"

#include <algorithm>
#include <bit>

#include "sim/warm_io.h"

namespace crisp
{

InstructionSliceTable::InstructionSliceTable(unsigned entries,
                                             unsigned ways,
                                             bool infinite)
    : infinite_(infinite)
{
    if (!infinite_) {
        ways_ = ways;
        sets_ = entries / ways;
        if (std::has_single_bit(uint64_t(sets_)))
            setMask_ = uint64_t(sets_) - 1;
        entries_.assign(entries, Entry{});
    }
}

bool
InstructionSliceTable::lookup(uint64_t pc)
{
    if (infinite_)
        return unbounded_.count(pc) != 0;
    Entry *set = &entries_[setIndex(pc) * ways_];
    for (unsigned w = 0; w < ways_; ++w) {
        if (set[w].valid && set[w].pc == pc) {
            set[w].lru = ++clock_;
            return true;
        }
    }
    return false;
}

void
InstructionSliceTable::insert(uint64_t pc)
{
    ++insertions_;
    if (infinite_) {
        unbounded_.insert(pc);
        return;
    }
    Entry *set = &entries_[setIndex(pc) * ways_];
    Entry *victim = nullptr;
    for (unsigned w = 0; w < ways_; ++w) {
        if (set[w].valid && set[w].pc == pc) {
            set[w].lru = ++clock_;
            return;
        }
        if (!set[w].valid && !victim)
            victim = &set[w];
    }
    if (!victim) {
        victim = &set[0];
        for (unsigned w = 1; w < ways_; ++w) {
            if (set[w].lru < victim->lru)
                victim = &set[w];
        }
        ++evictions_;
    }
    victim->valid = true;
    victim->pc = pc;
    victim->lru = ++clock_;
}

uint64_t
InstructionSliceTable::occupancy() const
{
    if (infinite_)
        return unbounded_.size();
    uint64_t n = 0;
    for (const auto &e : entries_)
        n += e.valid ? 1 : 0;
    return n;
}

void
InstructionSliceTable::serializeWarm(WarmSink &sink) const
{
    sink.b(infinite_);
    sink.u64(clock_);
    sink.u64(insertions_);
    sink.u64(evictions_);
    if (infinite_) {
        // Sorted so identical sets always produce identical bytes,
        // independent of hash-set iteration order.
        std::vector<uint64_t> pcs(unbounded_.begin(),
                                  unbounded_.end());
        std::sort(pcs.begin(), pcs.end());
        sink.u64(pcs.size());
        for (uint64_t pc : pcs)
            sink.u64(pc);
        return;
    }
    sink.u64(entries_.size());
    for (const Entry &e : entries_) {
        sink.u64(e.pc);
        sink.u64(e.lru);
        sink.b(e.valid);
    }
}

bool
InstructionSliceTable::deserializeWarm(WarmSource &src)
{
    if (src.b() != infinite_) {
        src.markFail();
        return false;
    }
    clock_ = src.u64();
    insertions_ = src.u64();
    evictions_ = src.u64();
    if (infinite_) {
        uint64_t n = src.u64();
        unbounded_.clear();
        for (uint64_t i = 0; i < n && src.ok(); ++i)
            unbounded_.insert(src.u64());
        return src.ok();
    }
    if (src.u64() != entries_.size()) {
        src.markFail();
        return false;
    }
    for (Entry &e : entries_) {
        e.pc = src.u64();
        e.lru = src.u64();
        e.valid = src.b();
    }
    return src.ok();
}

} // namespace crisp
