#include "ibda/ist.h"

namespace crisp
{

InstructionSliceTable::InstructionSliceTable(unsigned entries,
                                             unsigned ways,
                                             bool infinite)
    : infinite_(infinite)
{
    if (!infinite_) {
        ways_ = ways;
        sets_ = entries / ways;
        entries_.assign(entries, Entry{});
    }
}

bool
InstructionSliceTable::lookup(uint64_t pc)
{
    if (infinite_)
        return unbounded_.count(pc) != 0;
    Entry *set = &entries_[size_t((pc >> 1) % sets_) * ways_];
    for (unsigned w = 0; w < ways_; ++w) {
        if (set[w].valid && set[w].pc == pc) {
            set[w].lru = ++clock_;
            return true;
        }
    }
    return false;
}

void
InstructionSliceTable::insert(uint64_t pc)
{
    ++insertions_;
    if (infinite_) {
        unbounded_.insert(pc);
        return;
    }
    Entry *set = &entries_[size_t((pc >> 1) % sets_) * ways_];
    Entry *victim = nullptr;
    for (unsigned w = 0; w < ways_; ++w) {
        if (set[w].valid && set[w].pc == pc) {
            set[w].lru = ++clock_;
            return;
        }
        if (!set[w].valid && !victim)
            victim = &set[w];
    }
    if (!victim) {
        victim = &set[0];
        for (unsigned w = 1; w < ways_; ++w) {
            if (set[w].lru < victim->lru)
                victim = &set[w];
        }
        ++evictions_;
    }
    victim->valid = true;
    victim->pc = pc;
    victim->lru = ++clock_;
}

uint64_t
InstructionSliceTable::occupancy() const
{
    if (infinite_)
        return unbounded_.size();
    uint64_t n = 0;
    for (const auto &e : entries_)
        n += e.valid ? 1 : 0;
    return n;
}

} // namespace crisp
