#include "ibda/ibda.h"

#include <algorithm>

#include "telemetry/stat_registry.h"

namespace crisp
{

void
IbdaStats::registerInto(StatRegistry &reg,
                        const std::string &prefix) const
{
    reg.addCounter(statPath(prefix, "marked"), marked,
                   "dispatches flagged prioritized");
    reg.addCounter(statPath(prefix, "dlt_insertions"),
                   dltInsertions);
    reg.addCounter(statPath(prefix, "ist_insertions"),
                   istInsertions);
    reg.addCounter(statPath(prefix, "ist_evictions"), istEvictions);
}

Ibda::Ibda(const SimConfig &cfg)
    : ist_(cfg.istEntries, cfg.istWays, cfg.istInfinite),
      dlt_(cfg.dltEntries)
{
}

bool
Ibda::dltContains(uint64_t pc) const
{
    for (const auto &e : dlt_) {
        if (e.valid && e.pc == pc && e.count >= 2)
            return true;
    }
    return false;
}

void
Ibda::onLoadComplete(uint64_t pc, bool llc_miss)
{
    if (!llc_miss)
        return;
    DltEntry *victim = &dlt_[0];
    for (auto &e : dlt_) {
        if (e.valid && e.pc == pc) {
            ++e.count;
            return;
        }
        if (!e.valid) {
            victim = &e;
            break;
        }
        if (e.count < victim->count)
            victim = &e;
    }
    // Replace the least-frequent entry (frequency-based capture of
    // the hottest missing loads).
    ++stats_.dltInsertions;
    victim->valid = true;
    victim->pc = pc;
    victim->count = 1;
}

bool
Ibda::onDispatch(const MicroOp &op,
                 const std::array<uint64_t, kNumArchRegs>
                     &last_writer_pc)
{
    bool marked = false;
    if (op.isLoad() && dltContains(op.pc))
        marked = true;
    if (!marked && ist_.lookup(op.pc))
        marked = true;
    if (!marked)
        return false;

    ++stats_.marked;
    // One backward step: mark the register producers. Memory
    // dependencies (store -> load through an address) are invisible.
    auto mark_src = [&](RegId r) {
        if (r == kNoReg)
            return;
        uint64_t wpc = last_writer_pc[r];
        if (wpc != 0 && wpc != op.pc)
            ist_.insert(wpc);
    };
    mark_src(op.src1);
    mark_src(op.src2);
    mark_src(op.src3);
    return true;
}

IbdaStats
Ibda::stats() const
{
    IbdaStats s = stats_;
    s.istInsertions = ist_.insertions();
    s.istEvictions = ist_.evictions();
    return s;
}

void
Ibda::adoptWarmState(const Ibda &warm)
{
    ist_ = warm.ist_;
    ist_.zeroCounters();
    dlt_ = warm.dlt_;
    stats_ = IbdaStats{};
}

} // namespace crisp
