#include "ibda/ibda.h"

#include <algorithm>
#include <utility>

#include "sim/warm_io.h"
#include "telemetry/stat_registry.h"

namespace crisp
{

void
IbdaStats::registerInto(StatRegistry &reg,
                        const std::string &prefix) const
{
    reg.addCounter(statPath(prefix, "marked"), marked,
                   "dispatches flagged prioritized");
    reg.addCounter(statPath(prefix, "dlt_insertions"),
                   dltInsertions);
    reg.addCounter(statPath(prefix, "ist_insertions"),
                   istInsertions);
    reg.addCounter(statPath(prefix, "ist_evictions"), istEvictions);
}

Ibda::Ibda(const SimConfig &cfg)
    : ist_(cfg.istEntries, cfg.istWays, cfg.istInfinite),
      dlt_(cfg.dltEntries), warmSeen_((size_t(1) << 16) / 64, 0)
{
}

void
Ibda::rebuildDltHot()
{
    dltHot_.clear();
    for (const auto &e : dlt_) {
        if (e.valid && e.count >= 2) {
            dltHot_.insert(e.pc);
            markSeen(e.pc);
        }
    }
}

void
Ibda::onLoadComplete(uint64_t pc, bool llc_miss)
{
    if (!llc_miss)
        return;
    DltEntry *victim = &dlt_[0];
    for (auto &e : dlt_) {
        if (e.valid && e.pc == pc) {
            if (++e.count == 2) {
                dltHot_.insert(pc);
                markSeen(pc);
            }
            return;
        }
        if (!e.valid) {
            victim = &e;
            break;
        }
        if (e.count < victim->count)
            victim = &e;
    }
    // Replace the least-frequent entry (frequency-based capture of
    // the hottest missing loads).
    ++stats_.dltInsertions;
    if (victim->valid && victim->count >= 2)
        dltHot_.erase(victim->pc);
    victim->valid = true;
    victim->pc = pc;
    victim->count = 1;
}

bool
Ibda::onDispatch(const MicroOp &op,
                 const std::array<uint64_t, kNumArchRegs>
                     &last_writer_pc)
{
    bool marked = false;
    if (op.isLoad() && dltContains(op.pc))
        marked = true;
    if (!marked && ist_.lookup(op.pc))
        marked = true;
    if (!marked)
        return false;

    ++stats_.marked;
    // One backward step: mark the register producers. Memory
    // dependencies (store -> load through an address) are invisible.
    auto mark_src = [&](RegId r) {
        if (r == kNoReg)
            return;
        uint64_t wpc = last_writer_pc[r];
        if (wpc != 0 && wpc != op.pc) {
            ist_.insert(wpc);
            markSeen(wpc);
        }
    };
    mark_src(op.src1);
    mark_src(op.src2);
    mark_src(op.src3);
    return true;
}

void
Ibda::onDispatchWarm(const MicroOp &op,
                     const std::array<uint64_t, kNumArchRegs>
                         &last_writer_pc)
{
    // A clear bit proves op.pc is in neither the IST nor dltHot_,
    // so onDispatch would mutate nothing (an IST lookup only
    // touches LRU state on a hit): exit on the bitmap probe alone.
    if (warmSeenValid_ && !maybeSeen(op.pc))
        return;
    (void)onDispatch(op, last_writer_pc);
}

IbdaStats
Ibda::stats() const
{
    IbdaStats s = stats_;
    s.istInsertions = ist_.insertions();
    s.istEvictions = ist_.evictions();
    return s;
}

void
Ibda::adoptWarmState(const Ibda &warm)
{
    ist_ = warm.ist_;
    ist_.zeroCounters();
    dlt_ = warm.dlt_;
    dltHot_ = warm.dltHot_;
    warmSeen_ = warm.warmSeen_;
    warmSeenValid_ = warm.warmSeenValid_;
    stats_ = IbdaStats{};
}

void
Ibda::adoptWarmState(Ibda &&warm)
{
    ist_ = std::move(warm.ist_);
    ist_.zeroCounters();
    dlt_ = std::move(warm.dlt_);
    dltHot_ = std::move(warm.dltHot_);
    warmSeen_ = std::move(warm.warmSeen_);
    warmSeenValid_ = warm.warmSeenValid_;
    stats_ = IbdaStats{};
}

void
Ibda::serializeWarm(WarmSink &sink) const
{
    ist_.serializeWarm(sink);
    sink.u64(dlt_.size());
    for (const DltEntry &e : dlt_) {
        sink.u64(e.pc);
        sink.u64(e.count);
        sink.b(e.valid);
    }
    sink.u64(stats_.marked);
    sink.u64(stats_.dltInsertions);
}

bool
Ibda::deserializeWarm(WarmSource &src)
{
    if (!ist_.deserializeWarm(src))
        return false;
    if (src.u64() != dlt_.size()) {
        src.markFail();
        return false;
    }
    for (DltEntry &e : dlt_) {
        e.pc = src.u64();
        e.count = src.u64();
        e.valid = src.b();
    }
    stats_.marked = src.u64();
    stats_.dltInsertions = src.u64();
    rebuildDltHot();
    // The bitmap is not serialized and no longer covers the
    // deserialized IST; onDispatchWarm degrades to onDispatch.
    warmSeenValid_ = false;
    return src.ok();
}

} // namespace crisp
