/**
 * @file
 * IBDA: iterative backward dependency analysis in hardware — the
 * comparison baseline of CRISP §5.2.
 *
 * A 32-entry delinquent load table (DLT) captures the most frequently
 * LLC-missing load PCs. When a marked instruction (DLT or IST hit) is
 * renamed, the PCs of the last writers of its *register* sources are
 * inserted into the IST, extending the slice one level per encounter.
 * Dependencies through memory are invisible — the blind spot CRISP's
 * software extraction fixes.
 */

#ifndef CRISP_IBDA_IBDA_H
#define CRISP_IBDA_IBDA_H

#include <array>
#include <cstdint>
#include <vector>

#include "ibda/ist.h"
#include "isa/micro_op.h"
#include "sim/config.h"

namespace crisp
{

class StatRegistry;

/** IBDA statistics. */
struct IbdaStats
{
    uint64_t marked = 0;        ///< dispatches flagged prioritized
    uint64_t dltInsertions = 0;
    uint64_t istInsertions = 0;
    uint64_t istEvictions = 0;

    /** Registers every counter under @p prefix (telemetry). */
    void registerInto(StatRegistry &reg,
                      const std::string &prefix) const;

    /** Adds @p other counter-wise (sampled-interval stitching). */
    void accumulate(const IbdaStats &other)
    {
        marked += other.marked;
        dltInsertions += other.dltInsertions;
        istInsertions += other.istInsertions;
        istEvictions += other.istEvictions;
    }

    /** Subtracts @p base counter-wise (warm-up mark removal). */
    void subtract(const IbdaStats &base)
    {
        marked -= base.marked;
        dltInsertions -= base.dltInsertions;
        istInsertions -= base.istInsertions;
        istEvictions -= base.istEvictions;
    }
};

/** The in-pipeline IBDA engine. */
class Ibda
{
  public:
    /** @param cfg IST/DLT geometry. */
    explicit Ibda(const SimConfig &cfg);

    /**
     * Rename-stage hook.
     * @param op the dispatching micro-op
     * @param last_writer_pc per-register PC of the latest writer
     * @return true if the instruction should be prioritized.
     */
    bool onDispatch(const MicroOp &op,
                    const std::array<uint64_t, kNumArchRegs>
                        &last_writer_pc);

    /**
     * Completion hook for demand loads.
     * @param pc load PC
     * @param llc_miss true if served by DRAM
     */
    void onLoadComplete(uint64_t pc, bool llc_miss);

    /** @return accumulated statistics. */
    IbdaStats stats() const;

    /**
     * Adopts the trained IST/DLT contents of @p warm with all
     * counters zeroed, so an interval core starts from warm marking
     * state but accounts only its own activity (DESIGN.md §13).
     */
    void adoptWarmState(const Ibda &warm);

  private:
    struct DltEntry
    {
        uint64_t pc = 0;
        uint64_t count = 0;
        bool valid = false;
    };

    InstructionSliceTable ist_;
    std::vector<DltEntry> dlt_;
    IbdaStats stats_;

    bool dltContains(uint64_t pc) const;
};

} // namespace crisp

#endif // CRISP_IBDA_IBDA_H
