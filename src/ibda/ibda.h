/**
 * @file
 * IBDA: iterative backward dependency analysis in hardware — the
 * comparison baseline of CRISP §5.2.
 *
 * A 32-entry delinquent load table (DLT) captures the most frequently
 * LLC-missing load PCs. When a marked instruction (DLT or IST hit) is
 * renamed, the PCs of the last writers of its *register* sources are
 * inserted into the IST, extending the slice one level per encounter.
 * Dependencies through memory are invisible — the blind spot CRISP's
 * software extraction fixes.
 */

#ifndef CRISP_IBDA_IBDA_H
#define CRISP_IBDA_IBDA_H

#include <array>
#include <cstdint>
#include <unordered_set>
#include <vector>

#include "ibda/ist.h"
#include "isa/micro_op.h"
#include "sim/config.h"

namespace crisp
{

class StatRegistry;
class WarmSink;
class WarmSource;

/** IBDA statistics. */
struct IbdaStats
{
    uint64_t marked = 0;        ///< dispatches flagged prioritized
    uint64_t dltInsertions = 0;
    uint64_t istInsertions = 0;
    uint64_t istEvictions = 0;

    /** Registers every counter under @p prefix (telemetry). */
    void registerInto(StatRegistry &reg,
                      const std::string &prefix) const;

    /** Adds @p other counter-wise (sampled-interval stitching). */
    void accumulate(const IbdaStats &other)
    {
        marked += other.marked;
        dltInsertions += other.dltInsertions;
        istInsertions += other.istInsertions;
        istEvictions += other.istEvictions;
    }

    /** Subtracts @p base counter-wise (warm-up mark removal). */
    void subtract(const IbdaStats &base)
    {
        marked -= base.marked;
        dltInsertions -= base.dltInsertions;
        istInsertions -= base.istInsertions;
        istEvictions -= base.istEvictions;
    }
};

/** The in-pipeline IBDA engine. */
class Ibda
{
  public:
    /** @param cfg IST/DLT geometry. */
    explicit Ibda(const SimConfig &cfg);

    /**
     * Rename-stage hook.
     * @param op the dispatching micro-op
     * @param last_writer_pc per-register PC of the latest writer
     * @return true if the instruction should be prioritized.
     */
    bool onDispatch(const MicroOp &op,
                    const std::array<uint64_t, kNumArchRegs>
                        &last_writer_pc);

    /**
     * Warm-pass variant of onDispatch: identical post-state, but an
     * op whose PC was never inserted into the IST or the hot-DLT set
     * exits on one 8 KB-bitmap probe instead of a set-associative
     * IST lookup (a miss there mutates nothing, so skipping it is
     * exact). Falls back to onDispatch after state adoption, when
     * the bitmap no longer covers the tables (DESIGN.md §14).
     */
    void onDispatchWarm(const MicroOp &op,
                        const std::array<uint64_t, kNumArchRegs>
                            &last_writer_pc);

    /**
     * Completion hook for demand loads.
     * @param pc load PC
     * @param llc_miss true if served by DRAM
     */
    void onLoadComplete(uint64_t pc, bool llc_miss);

    /** @return accumulated statistics. */
    IbdaStats stats() const;

    /**
     * Adopts the trained IST/DLT contents of @p warm with all
     * counters zeroed, so an interval core starts from warm marking
     * state but accounts only its own activity (DESIGN.md §13).
     */
    void adoptWarmState(const Ibda &warm);

    /** Move overload: steals @p warm's tables. Identical post-state
     *  to the copying overload (DESIGN.md §14). */
    void adoptWarmState(Ibda &&warm);

    /** Serializes IST + DLT contents and counters for the on-disk
     *  warm-artifact tier (DESIGN.md §14). */
    void serializeWarm(WarmSink &sink) const;

    /** Restores serializeWarm() content. @return false on truncation
     *  or geometry mismatch. */
    bool deserializeWarm(WarmSource &src);

  private:
    struct DltEntry
    {
        uint64_t pc = 0;
        uint64_t count = 0;
        bool valid = false;
    };

    InstructionSliceTable ist_;
    std::vector<DltEntry> dlt_;
    /** PCs currently resident in dlt_ with count >= 2 — the set
     *  dltContains() answers from. Maintained incrementally so the
     *  per-load dispatch check is O(1) instead of a 32-entry scan
     *  (the warm pass runs it for every load; DESIGN.md §14). */
    std::unordered_set<uint64_t> dltHot_;
    IbdaStats stats_;

    /** Conservative membership bitmap over hashed PCs: a bit is set
     *  whenever a PC enters the IST or dltHot_, and never cleared,
     *  so a clear bit proves the PC is in neither table. Collisions
     *  and evictions only cause false positives (slow-path checks).
     *  Sized 1 << 16 bits = 8 KB, L1/L2 resident. */
    std::vector<uint64_t> warmSeen_;
    /** True while warmSeen_ covers every table insert since
     *  construction; adoption/deserialization clears it and
     *  onDispatchWarm degrades to onDispatch. */
    bool warmSeenValid_ = true;

    static size_t seenIndex(uint64_t pc)
    {
        return size_t(((pc >> 1) * 0x9e3779b97f4a7c15ULL) >> 48);
    }
    void markSeen(uint64_t pc)
    {
        warmSeen_[seenIndex(pc) >> 6] |=
            uint64_t(1) << (seenIndex(pc) & 63);
    }
    bool maybeSeen(uint64_t pc) const
    {
        return (warmSeen_[seenIndex(pc) >> 6] >>
                (seenIndex(pc) & 63)) &
               1;
    }

    bool dltContains(uint64_t pc) const
    {
        return dltHot_.count(pc) != 0;
    }
    void rebuildDltHot();
};

} // namespace crisp

#endif // CRISP_IBDA_IBDA_H
