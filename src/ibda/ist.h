/**
 * @file
 * Instruction slice table for the IBDA baseline (load-slice
 * architecture, Carlson et al., ISCA 2015; CRISP §5.2).
 */

#ifndef CRISP_IBDA_IST_H
#define CRISP_IBDA_IST_H

#include <cstddef>
#include <cstdint>
#include <unordered_set>
#include <vector>

namespace crisp
{

class WarmSink;
class WarmSource;

/**
 * Set-associative table of instruction PCs marked as belonging to a
 * load slice. An "infinite" mode backs the table with a hash set for
 * the idealized comparison point of CRISP Fig 7.
 */
class InstructionSliceTable
{
  public:
    /**
     * @param entries total entries (1K/8K/64K in the paper)
     * @param ways associativity
     * @param infinite unbounded idealization
     */
    InstructionSliceTable(unsigned entries, unsigned ways,
                          bool infinite);

    /** @return true (and refresh LRU) if @p pc is marked. */
    bool lookup(uint64_t pc);

    /** Marks @p pc, evicting LRU within its set if needed. */
    void insert(uint64_t pc);

    /** @return number of marked PCs currently resident. */
    uint64_t occupancy() const;

    /** @return insertions performed. */
    uint64_t insertions() const { return insertions_; }
    /** @return evictions performed (capacity conflicts). */
    uint64_t evictions() const { return evictions_; }

    /**
     * Zeroes the insertion/eviction counters while keeping the table
     * contents. Used when adopting warm IST state into a sampled
     * interval so per-interval stats start from zero (DESIGN.md §13).
     */
    void zeroCounters()
    {
        insertions_ = 0;
        evictions_ = 0;
    }

    /** Serializes table contents (or the unbounded set, in sorted
     *  order for deterministic bytes), LRU clock and counters for the
     *  on-disk warm-artifact tier (DESIGN.md §14). */
    void serializeWarm(WarmSink &sink) const;

    /** Restores serializeWarm() content. @return false on truncation
     *  or a geometry/mode mismatch. */
    bool deserializeWarm(WarmSource &src);

  private:
    struct Entry
    {
        uint64_t pc = 0;
        uint64_t lru = 0;
        bool valid = false;
    };

    bool infinite_;
    unsigned sets_ = 0;
    unsigned ways_ = 0;
    /** sets_ - 1 when sets_ is a power of two, else 0 (divide). */
    uint64_t setMask_ = 0;

    size_t setIndex(uint64_t pc) const
    {
        uint64_t h = pc >> 1;
        return size_t(setMask_ ? (h & setMask_) : (h % sets_));
    }
    std::vector<Entry> entries_;
    std::unordered_set<uint64_t> unbounded_;
    uint64_t clock_ = 0;
    uint64_t insertions_ = 0;
    uint64_t evictions_ = 0;
};

} // namespace crisp

#endif // CRISP_IBDA_IST_H
