#include "check/invariant_checker.h"

#include <algorithm>
#include <sstream>
#include <unordered_map>
#include <unordered_set>

#include "cache/cache.h"
#include "cpu/core.h"
#include "cpu/functional_units.h"
#include "cpu/lsq.h"
#include "cpu/reservation_station.h"
#include "cpu/rob.h"
#include "dram/controller.h"
#include "telemetry/cpi_stack.h"

namespace crisp
{

namespace
{

/**
 * One formatted instruction row (pipe-tracer-style column layout) for
 * violation snapshots.
 */
std::string
instRow(const DynInst *inst)
{
    std::ostringstream os;
    if (!inst)
        return "(null)";
    os << "seq=" << inst->seq << " cls=" << opClassName(inst->op->cls)
       << " pc=0x" << std::hex << inst->op->pc << std::dec
       << " slot=" << inst->rsSlot
       << " pend=" << unsigned(inst->pendingProducers)
       << " srcReady=" << inst->srcReadyCycle
       << " issued=" << (inst->issued ? "y" : "n")
       << " done=" << inst->doneCycle
       << (inst->prioritized ? " [critical]" : "")
       << (inst->forwarded ? " [fwd]" : "")
       << (inst->inWindow ? "" : " [!inWindow]");
    return os.str();
}

/** A window of ROB rows around @p focus (head-relative index). */
std::string
robSnapshot(const Rob &rob, size_t focus)
{
    std::ostringstream os;
    const size_t radius = 4;
    size_t lo = focus > radius ? focus - radius : 0;
    size_t hi = std::min<size_t>(rob.occupancy(), focus + radius + 1);
    os << "rob occupancy=" << rob.occupancy() << "/"
       << rob.capacity() << " head=" << rob.headIndex()
       << " tail=" << rob.tailIndex() << "\n";
    for (size_t i = lo; i < hi; ++i) {
        os << (i == focus ? "> " : "  ") << "head+" << i << ": "
           << instRow(rob.ringAt(i)) << "\n";
    }
    return os.str();
}

/** One RS slot row. */
std::string
rsSnapshot(const ReservationStation &rs, unsigned slot)
{
    std::ostringstream os;
    os << "rs occupancy=" << rs.occupancy() << "/" << rs.capacity()
       << "\n> slot " << slot << ": " << instRow(rs.at(slot))
       << " stamp=" << rs.age().stamp(slot) << "\n";
    return os.str();
}

[[noreturn]] void
fail(uint64_t cycle, const char *structure, std::string detail,
     std::string snapshot = "")
{
    throw InvariantViolation(cycle, structure, std::move(detail),
                             std::move(snapshot));
}

/** Iterates set bits of a SlotVector. */
template <typename Fn>
void
forEachSlot(const SlotVector &v, Fn &&fn)
{
    for (size_t w = 0; w < v.wordCount(); ++w) {
        for (uint64_t bits = v.word(w); bits; bits &= bits - 1) {
            fn(unsigned(w * 64) +
               unsigned(__builtin_ctzll(bits)));
        }
    }
}

} // namespace

InvariantViolation::InvariantViolation(uint64_t cycle_arg,
                                       std::string structure_arg,
                                       std::string detail_arg,
                                       std::string snapshot_arg)
    : std::runtime_error(
          "invariant violation in " + structure_arg + " at cycle " +
          std::to_string(cycle_arg) + ": " + detail_arg +
          (snapshot_arg.empty() ? "" : "\n" + snapshot_arg)),
      cycle(cycle_arg), structure(std::move(structure_arg)),
      detail(std::move(detail_arg)),
      snapshot(std::move(snapshot_arg))
{
}

InvariantChecker::InvariantChecker(uint64_t every)
    : every_(every ? every : 1)
{
}

void
InvariantChecker::checkRob(const Rob &rob, uint64_t cycle)
{
    const size_t cap = rob.capacity();
    const size_t occ = rob.occupancy();
    if (occ > cap)
        fail(cycle, "rob",
             "occupancy " + std::to_string(occ) +
                 " exceeds capacity " + std::to_string(cap));
    if ((rob.headIndex() + occ) % cap != rob.tailIndex())
        fail(cycle, "rob",
             "head/tail/count inconsistent: head=" +
                 std::to_string(rob.headIndex()) +
                 " count=" + std::to_string(occ) +
                 " tail=" + std::to_string(rob.tailIndex()));
    uint64_t prev_seq = 0;
    for (size_t i = 0; i < occ; ++i) {
        const DynInst *inst = rob.ringAt(i);
        if (!inst)
            fail(cycle, "rob",
                 "empty slot inside the window at head+" +
                     std::to_string(i),
                 robSnapshot(rob, i));
        if (!inst->inWindow)
            fail(cycle, "rob",
                 "window entry at head+" + std::to_string(i) +
                     " is not marked in-window",
                 robSnapshot(rob, i));
        if (i > 0 && inst->seq <= prev_seq)
            fail(cycle, "rob",
                 "age order violated at head+" + std::to_string(i) +
                     ": seq " + std::to_string(inst->seq) +
                     " follows seq " + std::to_string(prev_seq),
                 robSnapshot(rob, i));
        prev_seq = inst->seq;
    }
    for (size_t i = occ; i < cap; ++i) {
        if (rob.ringAt(i))
            fail(cycle, "rob",
                 "slot outside the window at head+" +
                     std::to_string(i) + " is occupied",
                 robSnapshot(rob, std::min(i, occ)));
    }
}

void
InvariantChecker::checkReservationStation(
    const ReservationStation &rs, uint64_t cycle)
{
    const unsigned cap = rs.capacity();
    const auto &free_list = rs.freeList();
    if (free_list.size() + rs.occupancy() != cap)
        fail(cycle, "rs",
             "free list (" + std::to_string(free_list.size()) +
                 ") and occupied slots (" +
                 std::to_string(rs.occupancy()) +
                 ") do not partition capacity " +
                 std::to_string(cap));
    std::vector<bool> free_seen(cap, false);
    for (int s : free_list) {
        if (s < 0 || unsigned(s) >= cap)
            fail(cycle, "rs",
                 "free-list slot " + std::to_string(s) +
                     " out of range");
        if (free_seen[size_t(s)])
            fail(cycle, "rs",
                 "slot " + std::to_string(s) +
                     " appears twice on the free list");
        free_seen[size_t(s)] = true;
        if (rs.at(unsigned(s)))
            fail(cycle, "rs",
                 "free-list slot " + std::to_string(s) +
                     " is occupied",
                 rsSnapshot(rs, unsigned(s)));
        if (rs.occupied().test(unsigned(s)))
            fail(cycle, "rs",
                 "free-list slot " + std::to_string(s) +
                     " is set in the occupied mask");
    }
    for (unsigned s = 0; s < cap; ++s) {
        const DynInst *inst = rs.at(s);
        if (bool(inst) != rs.occupied().test(s))
            fail(cycle, "rs",
                 "occupied mask disagrees with slot " +
                     std::to_string(s),
                 rsSnapshot(rs, s));
        if (!inst) {
            if (!free_seen[s])
                fail(cycle, "rs",
                     "empty slot " + std::to_string(s) +
                         " missing from the free list");
            continue;
        }
        if (free_seen[s])
            fail(cycle, "rs",
                 "occupied slot " + std::to_string(s) +
                     " is also on the free list",
                 rsSnapshot(rs, s));
        if (inst->rsSlot != int16_t(s))
            fail(cycle, "rs",
                 "back-pointer of slot " + std::to_string(s) +
                     " says " + std::to_string(inst->rsSlot),
                 rsSnapshot(rs, s));
        if (!inst->inWindow)
            fail(cycle, "rs",
                 "occupant of slot " + std::to_string(s) +
                     " is not in-window",
                 rsSnapshot(rs, s));
        if (inst->issued)
            fail(cycle, "rs",
                 "occupant of slot " + std::to_string(s) +
                     " already issued (slot should be released)",
                 rsSnapshot(rs, s));
    }
}

void
InvariantChecker::checkScoreboard(const ReservationStation &rs,
                                  const Rob &rob, uint64_t cycle)
{
    // Wakeup edges live on un-issued producers; every dispatched,
    // un-retired instruction is in the ROB, so the ROB walk sees all
    // of them.
    std::unordered_set<const DynInst *> in_rob;
    in_rob.reserve(rob.occupancy() * 2);
    for (size_t i = 0; i < rob.occupancy(); ++i)
        in_rob.insert(rob.ringAt(i));

    std::unordered_map<const DynInst *, unsigned> incoming;
    for (size_t i = 0; i < rob.occupancy(); ++i) {
        const DynInst *p = rob.ringAt(i);
        if (p->issued) {
            if (!p->consumers.empty())
                fail(cycle, "scoreboard",
                     "issued producer still holds " +
                         std::to_string(p->consumers.size()) +
                         " wakeup edges",
                     robSnapshot(rob, i));
            continue;
        }
        for (const DynInst *c : p->consumers) {
            if (!c || !c->inWindow || c->issued)
                fail(cycle, "scoreboard",
                     "wakeup edge targets a dead or issued "
                     "consumer",
                     robSnapshot(rob, i) + "  edge -> " +
                         instRow(c) + "\n");
            if (c->pendingProducers == 0)
                fail(cycle, "scoreboard",
                     "wakeup edge targets a consumer with zero "
                     "pending producers",
                     robSnapshot(rob, i) + "  edge -> " +
                         instRow(c) + "\n");
            ++incoming[c];
        }
    }

    forEachSlot(rs.occupied(), [&](unsigned s) {
        const DynInst *inst = rs.at(s);
        if (!in_rob.count(inst))
            fail(cycle, "scoreboard",
                 "RS occupant of slot " + std::to_string(s) +
                     " is not in the ROB",
                 rsSnapshot(rs, s));
        auto it = incoming.find(inst);
        unsigned edges = it == incoming.end() ? 0 : it->second;
        if (edges != inst->pendingProducers)
            fail(cycle, "scoreboard",
                 "slot " + std::to_string(s) + " waits on " +
                     std::to_string(
                         unsigned(inst->pendingProducers)) +
                     " producers but " + std::to_string(edges) +
                     " wakeup edges point at it",
                 rsSnapshot(rs, s));
    });
}

void
InvariantChecker::checkReadyPools(
    const ReservationStation &rs, const SlotVector &cand_alu,
    const SlotVector &cand_load, const SlotVector &cand_store,
    const SlotVector &prio_alu, const SlotVector &prio_load,
    const SlotVector &prio_store, const SlotVector &heap_slots,
    bool event_mode, uint64_t cycle)
{
    struct Pool
    {
        const SlotVector *cand;
        const SlotVector *prio;
        FuPool kind;
        const char *name;
    };
    const Pool pools[3] = {
        {&cand_alu, &prio_alu, FuPool::Alu, "alu"},
        {&cand_load, &prio_load, FuPool::Load, "load"},
        {&cand_store, &prio_store, FuPool::Store, "store"},
    };

    SlotVector pooled(rs.capacity());
    for (const Pool &p : pools) {
        forEachSlot(*p.cand, [&](unsigned s) {
            const DynInst *inst = rs.at(s);
            if (!inst)
                fail(cycle, "ready-pools",
                     std::string(p.name) + " candidate slot " +
                         std::to_string(s) + " is unoccupied");
            if (inst->issued || inst->pendingProducers > 0 ||
                inst->srcReadyCycle > cycle)
                fail(cycle, "ready-pools",
                     std::string(p.name) + " candidate slot " +
                         std::to_string(s) + " is not ready",
                     rsSnapshot(rs, s));
            if (poolOf(inst->op->cls) != p.kind)
                fail(cycle, "ready-pools",
                     "slot " + std::to_string(s) + " (" +
                         opClassName(inst->op->cls) +
                         ") is in the " + p.name + " pool",
                     rsSnapshot(rs, s));
            if (inst->prioritized && !p.prio->test(s))
                fail(cycle, "ready-pools",
                     "prioritized candidate in slot " +
                         std::to_string(s) +
                         " missing from the priority pool",
                     rsSnapshot(rs, s));
            if (heap_slots.test(s))
                fail(cycle, "ready-pools",
                     "slot " + std::to_string(s) +
                         " is both a candidate and parked on the "
                         "ready heap",
                     rsSnapshot(rs, s));
            pooled.set(s);
        });
        forEachSlot(*p.prio, [&](unsigned s) {
            if (!p.cand->test(s))
                fail(cycle, "ready-pools",
                     std::string(p.name) + " priority slot " +
                         std::to_string(s) +
                         " is not a candidate");
            const DynInst *inst = rs.at(s);
            if (inst && !inst->prioritized)
                fail(cycle, "ready-pools",
                     "slot " + std::to_string(s) +
                         " is in the priority pool but not "
                         "prioritized",
                     rsSnapshot(rs, s));
        });
    }

    forEachSlot(heap_slots, [&](unsigned s) {
        const DynInst *inst = rs.at(s);
        if (!inst)
            fail(cycle, "ready-pools",
                 "ready-heap entry names unoccupied slot " +
                     std::to_string(s));
        if (inst->issued || inst->pendingProducers > 0)
            fail(cycle, "ready-pools",
                 "ready-heap entry in slot " + std::to_string(s) +
                     " is not dataflow-free",
                 rsSnapshot(rs, s));
    });

    if (!event_mode)
        return;
    // Completeness (event engine only): between ticks every
    // dataflow-free occupant is a candidate or parked on the heap —
    // the incremental pools never lose a ready instruction.
    forEachSlot(rs.occupied(), [&](unsigned s) {
        const DynInst *inst = rs.at(s);
        if (inst->pendingProducers > 0)
            return;
        if (!pooled.test(s) && !heap_slots.test(s))
            fail(cycle, "ready-pools",
                 "dataflow-free slot " + std::to_string(s) +
                     " is neither a candidate nor on the ready "
                     "heap",
                 rsSnapshot(rs, s));
    });
}

void
InvariantChecker::checkAgeMatrix(const ReservationStation &rs,
                                 uint64_t cycle)
{
    // (stamp, seq, slot) of every occupant; stamp order must equal
    // dispatch order. Stamps encode a strict total order, which
    // yields antisymmetry and transitivity of the modelled bit
    // matrix by construction — what remains checkable is that the
    // order agrees with the instructions' true ages.
    struct Row
    {
        uint64_t stamp;
        uint64_t seq;
        unsigned slot;
    };
    std::vector<Row> rows;
    rows.reserve(rs.occupancy());
    forEachSlot(rs.occupied(), [&](unsigned s) {
        const DynInst *inst = rs.at(s);
        uint64_t stamp = rs.age().stamp(s);
        if (stamp == 0)
            fail(cycle, "age-matrix",
                 "occupied slot " + std::to_string(s) +
                     " carries a never-allocated stamp",
                 rsSnapshot(rs, s));
        rows.push_back({stamp, inst->seq, s});
    });
    std::sort(rows.begin(), rows.end(),
              [](const Row &x, const Row &y) {
                  return x.stamp < y.stamp;
              });
    for (size_t i = 1; i < rows.size(); ++i) {
        if (rows[i].stamp == rows[i - 1].stamp)
            fail(cycle, "age-matrix",
                 "slots " + std::to_string(rows[i - 1].slot) +
                     " and " + std::to_string(rows[i].slot) +
                     " share allocation stamp " +
                     std::to_string(rows[i].stamp));
        if (rows[i].seq <= rows[i - 1].seq)
            fail(cycle, "age-matrix",
                 "stamp order disagrees with dispatch order: slot " +
                     std::to_string(rows[i].slot) + " (seq " +
                     std::to_string(rows[i].seq) +
                     ") stamped younger than slot " +
                     std::to_string(rows[i - 1].slot) + " (seq " +
                     std::to_string(rows[i - 1].seq) + ")",
                 rsSnapshot(rs, rows[i].slot) +
                     rsSnapshot(rs, rows[i - 1].slot));
    }
    if (!rows.empty()) {
        int oldest = rs.age().selectOldest(rs.occupied());
        if (oldest < 0 || unsigned(oldest) != rows.front().slot)
            fail(cycle, "age-matrix",
                 "selectOldest over the occupied set picked slot " +
                     std::to_string(oldest) + ", expected " +
                     std::to_string(rows.front().slot));
    }
}

void
InvariantChecker::checkRenameMap(
    const std::array<DynInst *, kNumArchRegs> &last_writer,
    uint64_t cycle)
{
    for (int r = 0; r < kNumArchRegs; ++r) {
        const DynInst *w = last_writer[size_t(r)];
        if (!w)
            continue;
        if (!w->inWindow)
            fail(cycle, "rename",
                 "last writer of r" + std::to_string(r) +
                     " left the window without clearing the entry",
                 "> r" + std::to_string(r) + " -> " + instRow(w) +
                     "\n");
        if (w->op->dst != RegId(r))
            fail(cycle, "rename",
                 "last writer of r" + std::to_string(r) +
                     " writes r" + std::to_string(w->op->dst),
                 "> r" + std::to_string(r) + " -> " + instRow(w) +
                     "\n");
    }
}

void
InvariantChecker::checkLsq(const LoadStoreQueues &lsq,
                           const Rob &rob, uint64_t cycle)
{
    if (lsq.loads() > lsq.loadQueueCapacity())
        fail(cycle, "lsq",
             "load queue occupancy " + std::to_string(lsq.loads()) +
                 " exceeds capacity " +
                 std::to_string(lsq.loadQueueCapacity()));
    if (lsq.stores() > lsq.storeQueueCapacity())
        fail(cycle, "lsq",
             "store queue occupancy " +
                 std::to_string(lsq.stores()) + " exceeds capacity " +
                 std::to_string(lsq.storeQueueCapacity()));

    // Queue entries are claimed at dispatch and released at retire,
    // so occupancy must equal the in-window load/store population.
    unsigned loads = 0, stores = 0;
    std::unordered_map<uint64_t, const DynInst *> last_store;
    for (size_t i = 0; i < rob.occupancy(); ++i) {
        const DynInst *inst = rob.ringAt(i);
        const MicroOp &op = *inst->op;
        if (op.isLoad()) {
            ++loads;
            auto it = last_store.find(op.effAddr);
            if (it != last_store.end()) {
                // In-order retirement makes the walk's youngest
                // older store exactly the load's dispatch-time
                // forwarding source (DESIGN.md §11).
                const DynInst *src = it->second;
                if (!inst->forwarded)
                    fail(cycle, "lsq",
                         "load at head+" + std::to_string(i) +
                             " aliases an older in-flight store "
                             "but is not marked forwarded",
                         robSnapshot(rob, i) + "  store: " +
                             instRow(src) + "\n");
                if (inst->issued && !src->issued)
                    fail(cycle, "lsq",
                         "load at head+" + std::to_string(i) +
                             " issued past an older store with an "
                             "unresolved address/data",
                         robSnapshot(rob, i) + "  store: " +
                             instRow(src) + "\n");
                if (inst->issued &&
                    inst->srcReadyCycle < src->doneCycle)
                    fail(cycle, "lsq",
                         "forwarded load at head+" +
                             std::to_string(i) +
                             " issued before its source store's "
                             "data was available",
                         robSnapshot(rob, i) + "  store: " +
                             instRow(src) + "\n");
            }
        } else if (op.isStore()) {
            ++stores;
            last_store[op.effAddr] = inst;
        }
    }
    if (loads != lsq.loads())
        fail(cycle, "lsq",
             "load queue occupancy " + std::to_string(lsq.loads()) +
                 " but " + std::to_string(loads) +
                 " loads are in the window");
    if (stores != lsq.stores())
        fail(cycle, "lsq",
             "store queue occupancy " +
                 std::to_string(lsq.stores()) + " but " +
                 std::to_string(stores) +
                 " stores are in the window");

    if (lsq.storeMap().size() > lsq.stores())
        fail(cycle, "lsq",
             "forwarding map holds " +
                 std::to_string(lsq.storeMap().size()) +
                 " entries for " + std::to_string(lsq.stores()) +
                 " in-flight stores");
    for (const auto &[addr, store] : lsq.storeMap()) {
        if (!store || !store->inWindow || !store->op->isStore() ||
            store->op->effAddr != addr)
            fail(cycle, "lsq",
                 "forwarding map entry for address 0x" +
                     [addr] {
                         std::ostringstream os;
                         os << std::hex << addr;
                         return os.str();
                     }() +
                     " does not name a live store to that word",
                 "> " + instRow(store) + "\n");
    }
}

void
InvariantChecker::checkCache(const Cache &cache, uint64_t cycle)
{
    const std::string name = "cache." + cache.name_;
    const unsigned ways = cache.cfg_.ways;
    for (unsigned set = 0; set < cache.sets_; ++set) {
        const Cache::Line *lines =
            &cache.lines_[size_t(set) * ways];
        for (unsigned w = 0; w < ways; ++w) {
            const Cache::Line &line = lines[w];
            if (!line.valid)
                continue;
            if (line.tag % cache.sets_ != set)
                fail(cycle, name.c_str(),
                     "line in set " + std::to_string(set) +
                         " way " + std::to_string(w) +
                         " has a tag mapping to set " +
                         std::to_string(line.tag % cache.sets_));
            if (line.lru > cache.lruClock_)
                fail(cycle, name.c_str(),
                     "LRU stamp ahead of the LRU clock in set " +
                         std::to_string(set));
            for (unsigned w2 = w + 1; w2 < ways; ++w2) {
                if (!lines[w2].valid)
                    continue;
                if (lines[w2].tag == line.tag)
                    fail(cycle, name.c_str(),
                         "duplicate entry for block 0x" +
                             [&] {
                                 std::ostringstream os;
                                 os << std::hex
                                    << (line.tag
                                        << cache.lineShift_);
                                 return os.str();
                             }() +
                             " in set " + std::to_string(set));
                if (lines[w2].lru == line.lru)
                    fail(cycle, name.c_str(),
                         "duplicate LRU stamp in set " +
                             std::to_string(set));
            }
        }
    }
    if (cache.mshrReady_.size() > cache.cfg_.mshrs)
        fail(cycle, name.c_str(),
             "MSHR occupancy " +
                 std::to_string(cache.mshrReady_.size()) +
                 " exceeds the configured " +
                 std::to_string(cache.cfg_.mshrs));
    if (cache.stats_.misses > cache.stats_.accesses)
        fail(cycle, name.c_str(), "more misses than accesses");
}

void
InvariantChecker::checkDram(const DramController &dram,
                            uint64_t cycle)
{
    if (dram.bankBusyUntil_.size() != dram.timing_.numBanks ||
        dram.openRow_.size() != dram.timing_.numBanks)
        fail(cycle, "dram", "bank state arrays mis-sized");
    for (unsigned b = 0; b < dram.timing_.numBanks; ++b) {
        if (dram.bankBusyUntil_[b] > dram.busBusyUntil_)
            fail(cycle, "dram",
                 "bank " + std::to_string(b) +
                     " reservation outlives the bus reservation (" +
                     std::to_string(dram.bankBusyUntil_[b]) + " > " +
                     std::to_string(dram.busBusyUntil_) + ")");
        if (dram.openRow_[b] < -1)
            fail(cycle, "dram",
                 "bank " + std::to_string(b) +
                     " open row is nonsensical");
        // Exception: sampled-interval warm adoption installs open
        // rows into a quiesced channel (DESIGN.md §13) — the one
        // legitimate "open row, idle bank" state.
        if (dram.openRow_[b] >= 0 && dram.bankBusyUntil_[b] == 0 &&
            !dram.warmRowsAdopted_)
            fail(cycle, "dram",
                 "bank " + std::to_string(b) +
                     " has an open row but never served a command");
    }
    const DramStats &s = dram.stats_;
    if (s.rowHits + s.rowConflicts + s.rowClosed != s.reads)
        fail(cycle, "dram",
             "row-state counters (" + std::to_string(s.rowHits) +
                 "+" + std::to_string(s.rowConflicts) + "+" +
                 std::to_string(s.rowClosed) +
                 ") do not partition the " +
                 std::to_string(s.reads) + " reads");
    // Every access pays at least the row-hit path
    // (tCtrl + tCL + tBurst); tRCD/tRP sequencing only adds.
    if (s.totalLatency <
        s.reads * uint64_t(dram.timing_.rowHitLatency()))
        fail(cycle, "dram",
             "aggregate latency below the row-hit floor");
}

void
InvariantChecker::checkDramMonotonic(const DramController &dram,
                                     uint64_t cycle)
{
    if (prevBankBusy_.size() == dram.bankBusyUntil_.size()) {
        for (size_t b = 0; b < prevBankBusy_.size(); ++b) {
            if (dram.bankBusyUntil_[b] < prevBankBusy_[b])
                fail(cycle, "dram",
                     "bank " + std::to_string(b) +
                         " reservation moved backwards (" +
                         std::to_string(prevBankBusy_[b]) + " -> " +
                         std::to_string(dram.bankBusyUntil_[b]) +
                         "): a command was scheduled into the "
                         "past");
        }
        if (dram.busBusyUntil_ < prevBusBusy_)
            fail(cycle, "dram",
                 "bus reservation moved backwards (" +
                     std::to_string(prevBusBusy_) + " -> " +
                     std::to_string(dram.busBusyUntil_) + ")");
        if (dram.stats_.reads < prevReads_)
            fail(cycle, "dram", "read counter moved backwards");
    }
    prevBankBusy_ = dram.bankBusyUntil_;
    prevBusBusy_ = dram.busBusyUntil_;
    prevReads_ = dram.stats_.reads;
}

void
InvariantChecker::checkCpiStack(const CpiStack &cpi,
                                uint64_t elapsed_cycles,
                                uint64_t cycle)
{
    if (cpi.total() != elapsed_cycles)
        fail(cycle, "cpi",
             "bucket sum " + std::to_string(cpi.total()) +
                 " != elapsed cycles " +
                 std::to_string(elapsed_cycles));
}

void
InvariantChecker::onTick(const Core &core)
{
    ++ticks_;
    if (ticks_ % every_ == 0)
        checkAll(core);
}

void
InvariantChecker::checkAll(const Core &core)
{
    ++checksRun_;
    const uint64_t cycle = core.cycle_;

    checkRob(core.rob_, cycle);
    checkReservationStation(core.rs_, cycle);
    checkScoreboard(core.rs_, core.rob_, cycle);

    // Drain a copy of the time-gated ready heap into a slot mask;
    // entries must be unique and strictly in the future (promotion
    // pops everything due by the current cycle).
    SlotVector parked(core.cfg_.rsSize);
    {
        auto heap = core.readyHeap_;
        while (!heap.empty()) {
            auto [ready, slot] = heap.top();
            heap.pop();
            if (slot >= core.cfg_.rsSize)
                fail(cycle, "ready-pools",
                     "ready-heap slot " + std::to_string(slot) +
                         " out of range");
            if (parked.test(slot))
                fail(cycle, "ready-pools",
                     "slot " + std::to_string(slot) +
                         " parked twice on the ready heap");
            if (ready <= cycle)
                fail(cycle, "ready-pools",
                     "ready-heap entry for slot " +
                         std::to_string(slot) + " due at cycle " +
                         std::to_string(ready) +
                         " was never promoted");
            parked.set(slot);
        }
    }
    checkReadyPools(core.rs_, core.candAlu_, core.candLoad_,
                    core.candStore_, core.prioAlu_, core.prioLoad_,
                    core.prioStore_, parked, core.eventMode_, cycle);

    checkAgeMatrix(core.rs_, cycle);
    checkRenameMap(core.lastWriter_, cycle);
    checkLsq(core.lsq_, core.rob_, cycle);

    // Fetch-to-dispatch pipe: FIFO readiness order and bounded
    // occupancy; entries are pre-dispatch so they hold no RS slot.
    {
        uint64_t prev_ready = 0;
        uint64_t prev_seq = 0;
        bool first = true;
        if (core.fetchPipe_.size() > core.fetchPipeCap_)
            fail(cycle, "pipe",
                 "fetch pipe occupancy " +
                     std::to_string(core.fetchPipe_.size()) +
                     " exceeds capacity " +
                     std::to_string(core.fetchPipeCap_));
        for (const auto &entry : core.fetchPipe_) {
            const DynInst *inst = entry.inst;
            if (!inst || !inst->inWindow || inst->issued ||
                inst->rsSlot != -1)
                fail(cycle, "pipe",
                     "fetch-pipe entry is not a pristine "
                     "pre-dispatch instruction",
                     "> " + instRow(inst) + "\n");
            if (!first && (entry.readyCycle < prev_ready ||
                           inst->seq <= prev_seq))
                fail(cycle, "pipe",
                     "fetch pipe is not FIFO-ordered",
                     "> " + instRow(inst) + "\n");
            prev_ready = entry.readyCycle;
            prev_seq = inst->seq;
            first = false;
        }
    }

    checkCache(core.mem_.l1i(), cycle);
    checkCache(core.mem_.l1d(), cycle);
    checkCache(core.mem_.llc(), cycle);
    checkDram(core.mem_.dram(), cycle);
    checkDramMonotonic(core.mem_.dram(), cycle);

    checkCpiStack(core.stats_.cpi, cycle, cycle);
}

} // namespace crisp
