/**
 * @file
 * Microarchitectural invariant checking (DESIGN.md §11).
 *
 * The tick engines were validated by output equality (bit-identical
 * CoreStats, tests/tick_model_test.cc); this layer audits the
 * *in-flight* pipeline state itself, turning "the numbers match" into
 * "the model is self-consistent at every checkpoint". A checked cycle
 * audits:
 *
 *  - ROB: head/tail/count ring consistency; entries strictly
 *    age-ordered (fetch sequence increases from head to tail) and all
 *    in-window; slots beyond the window empty.
 *  - Reservation station: free list ∪ occupied slots form an exact
 *    bijection over the capacity (the RAND-allocation analogue of a
 *    rename-map/free-list bijection over physical registers); every
 *    occupant's rsSlot back-pointer matches its slot.
 *  - Scoreboard: each waiting entry's pendingProducers equals the
 *    number of wakeup edges held by un-issued in-window producers,
 *    and every wakeup edge targets a live, un-issued consumer.
 *  - Ready pools: a slot in an issue candidate pool is occupied,
 *    un-issued, dataflow-free, time-ready and in the pool matching
 *    its op class; priority bits are a subset of candidate bits and
 *    agree with the instruction's prioritized flag. Under the event
 *    engine the converse also holds: every ready entry is in its
 *    pool or parked on the time-gated heap (never both).
 *  - Age matrix: allocation stamps of occupied slots are unique and
 *    agree with dispatch (= ROB) order, which makes the hardware
 *    matrix order antisymmetric and transitive by construction;
 *    selectOldest over the occupied set returns the oldest occupant.
 *  - Rename table: every live last-writer entry names an in-window
 *    instruction whose destination is that architectural register.
 *  - LSQ: queue occupancies equal the in-window load/store counts and
 *    respect capacity; the forwarding map names in-window stores at
 *    their own addresses; no load has issued past an older in-window
 *    store to the same word without capturing its forwarded data.
 *  - Caches: every valid line sits in the set its tag maps to; tags
 *    are unique per set (one entry per block, demand and in-flight
 *    alike); LRU stamps are unique per set and bounded by the LRU
 *    clock; MSHR occupancy respects the configured bound.
 *  - DRAM: per-bank and bus reservations only move forward in time —
 *    the resolved-time image of DDR4 command spacing (tRCD/tRP/tCL
 *    sequencing is folded into each access's completion cycle, so
 *    "no command is ever scheduled into the past" is the checkable
 *    form) — banks never outlive the bus reservation, and the
 *    row-state statistics partition the read count.
 *  - CPI stack: bucket sums equal elapsed cycles at any checkpoint.
 *
 * Violations are raised as structured InvariantViolation exceptions
 * carrying the cycle, the offending structure and a formatted
 * snapshot of the state around the failure (pipe-tracer-style row
 * dumps), so a broken invariant is diagnosable from the exception
 * alone.
 *
 * Enable with `crisp_sim --check[=N]` (audit every N checked ticks),
 * SimConfig::checkInvariants, or configure a checked build with
 * -DCRISP_CHECKED=ON to default-enable it everywhere.
 */

#ifndef CRISP_CHECK_INVARIANT_CHECKER_H
#define CRISP_CHECK_INVARIANT_CHECKER_H

#include <array>
#include <cstdint>
#include <stdexcept>
#include <string>
#include <vector>

#include "cpu/age_matrix.h"
#include "isa/micro_op.h"

namespace crisp
{

class Cache;
class Core;
class DramController;
class LoadStoreQueues;
class ReservationStation;
class Rob;
struct CpiStack;
struct DynInst;

/**
 * Thrown when a microarchitectural invariant does not hold. Carries
 * the simulation cycle, the canonical name of the violated structure
 * ("rob", "rs", "scoreboard", "ready-pools", "age-matrix", "rename",
 * "lsq", "cache.<name>", "dram", "cpi", "pipe") and a formatted
 * snapshot of the offending state.
 */
class InvariantViolation : public std::runtime_error
{
  public:
    InvariantViolation(uint64_t cycle, std::string structure,
                       std::string detail,
                       std::string snapshot = "");

    uint64_t cycle;        ///< cycle at which the audit ran
    std::string structure; ///< canonical structure name
    std::string detail;    ///< what specifically failed
    std::string snapshot;  ///< dump of the state around the failure
};

/**
 * The auditor. One instance accompanies one Core run (it keeps
 * cross-checkpoint state, e.g. the previous DRAM reservation
 * snapshot); the per-structure checks are stateless and public so
 * mutation tests can corrupt a structure and aim the matching check
 * at it directly.
 */
class InvariantChecker
{
  public:
    /** @param every audit every N checked ticks (>= 1). */
    explicit InvariantChecker(uint64_t every = 1);

    /** Throttled entry: called by Core once per executed tick. */
    void onTick(const Core &core);

    /** Runs the full audit immediately (also used at end of run). */
    void checkAll(const Core &core);

    /** @return number of full audits performed. */
    uint64_t checksRun() const { return checksRun_; }

    /** @return the configured audit period in ticks. */
    uint64_t every() const { return every_; }

    // ---- Structure-level audits (throw InvariantViolation) ----

    /** ROB ring consistency + strict age order. */
    static void checkRob(const Rob &rob, uint64_t cycle);

    /** RS free-list/occupied bijection + back-pointers. */
    static void checkReservationStation(const ReservationStation &rs,
                                        uint64_t cycle);

    /** Wakeup-edge / pendingProducers scoreboard consistency. */
    static void checkScoreboard(const ReservationStation &rs,
                                const Rob &rob, uint64_t cycle);

    /**
     * Issue candidate/priority pool consistency against the RS and
     * scoreboard state. @p heap_slots marks slots parked on the
     * event engine's time-gated ready heap; @p event_mode enables
     * the completeness direction (ready => pooled or parked), which
     * only the incremental engine maintains between ticks.
     */
    static void checkReadyPools(
        const ReservationStation &rs, const SlotVector &cand_alu,
        const SlotVector &cand_load, const SlotVector &cand_store,
        const SlotVector &prio_alu, const SlotVector &prio_load,
        const SlotVector &prio_store, const SlotVector &heap_slots,
        bool event_mode, uint64_t cycle);

    /** Age-matrix stamp order agrees with dispatch order. */
    static void checkAgeMatrix(const ReservationStation &rs,
                               uint64_t cycle);

    /** Rename table entries name in-window writers of their reg. */
    static void checkRenameMap(
        const std::array<DynInst *, kNumArchRegs> &last_writer,
        uint64_t cycle);

    /** LSQ occupancy, forwarding map and load/store age order. */
    static void checkLsq(const LoadStoreQueues &lsq, const Rob &rob,
                         uint64_t cycle);

    /** Per-set tag/LRU uniqueness, placement, MSHR bound. */
    static void checkCache(const Cache &cache, uint64_t cycle);

    /** Bank/bus/row-state consistency and stats partition. */
    static void checkDram(const DramController &dram, uint64_t cycle);

    /** Bucket sum equals elapsed cycles. */
    static void checkCpiStack(const CpiStack &cpi,
                              uint64_t elapsed_cycles,
                              uint64_t cycle);

  private:
    /** Bank/bus reservations must never move backwards between
     *  checkpoints (the spacing guarantee of the resolved-time DRAM
     *  model). */
    void checkDramMonotonic(const DramController &dram,
                            uint64_t cycle);

    uint64_t every_;
    uint64_t ticks_ = 0;
    uint64_t checksRun_ = 0;

    // Previous-checkpoint DRAM snapshot.
    std::vector<uint64_t> prevBankBusy_;
    uint64_t prevBusBusy_ = 0;
    uint64_t prevReads_ = 0;
};

} // namespace crisp

#endif // CRISP_CHECK_INVARIANT_CHECKER_H
