#include "serve/protocol.h"

#include <algorithm>
#include <set>
#include <sstream>

#include "serve/server.h"
#include "sim/artifact_cache.h"
#include "sim/cli.h"
#include "telemetry/json.h"
#include "workloads/workload.h"

namespace crisp
{

const char *
jobStateName(JobState s)
{
    switch (s) {
    case JobState::Queued:
        return "queued";
    case JobState::Running:
        return "running";
    case JobState::Done:
        return "done";
    case JobState::Failed:
        return "failed";
    case JobState::Cancelled:
        return "cancelled";
    case JobState::Requeued:
        return "requeued";
    }
    return "unknown";
}

std::string
jobIdFor(const std::string &key)
{
    // FNV-1a 64: stable across platforms and processes, so a client
    // can compute a job's ID without asking the server.
    uint64_t h = 14695981039346656037ULL;
    for (unsigned char c : key) {
        h ^= c;
        h *= 1099511628211ULL;
    }
    static const char hex[] = "0123456789abcdef";
    std::string id = "j-";
    for (int shift = 60; shift >= 0; shift -= 4)
        id += hex[(h >> shift) & 0xF];
    return id;
}

namespace
{

/** Flags a submitted config may not carry: the server owns the
 *  workload/variant axes, its own parallelism, and every host-side
 *  output path. Matches "--flag" and "--flag=value" forms. */
const char *const kForbiddenFlags[] = {
    "--workload",  "--scheduler",   "--ist",
    "--jobs",      "--list",        "--help",
    "--stats-json", "--stats-csv",  "--stats-ndjson",
    "--trace-pipe", "--save-trace", "--profile-pc",
    "--artifact-dir", "--artifact-max-bytes",
    "--trace-runtime",
};

bool
forbiddenToken(const std::string &tok, std::string *which)
{
    for (const char *flag : kForbiddenFlags) {
        std::string f(flag);
        if (tok == f || tok.rfind(f + "=", 0) == 0) {
            if (which)
                *which = f;
            return true;
        }
    }
    return false;
}

bool
validVariant(const std::string &v)
{
    if (v == "ooo" || v == "crisp")
        return true;
    if (v.rfind("ibda-", 0) != 0)
        return false;
    std::string ist = v.substr(5);
    return ist == "1K" || ist == "8K" || ist == "64K" ||
           ist == "inf";
}

bool
jsonUint(const JsonValue &v, uint64_t &out)
{
    if (!v.isNumber() || v.number < 0)
        return false;
    out = uint64_t(v.number);
    return true;
}

/** Parses a submit body into a SweepRequest. @return false with
 *  @p error set on a malformed grid. */
bool
parseSweep(const JsonValue &v, SweepRequest &out, std::string *error)
{
    auto fail = [&](const std::string &msg) {
        if (error)
            *error = msg;
        return false;
    };
    auto strings = [&](const char *key,
                       std::vector<std::string> &dst) {
        if (!v.has(key))
            return true;
        const JsonValue &a = v.at(key);
        if (!a.isArray())
            return false;
        for (const JsonValue &e : a.elements) {
            if (!e.isString())
                return false;
            dst.push_back(e.text);
        }
        return true;
    };
    if (!strings("workloads", out.workloads))
        return fail("\"workloads\" must be an array of strings");
    if (!strings("variants", out.variants))
        return fail("\"variants\" must be an array of strings");
    if (out.workloads.empty())
        return fail("submit needs at least one workload");
    if (out.variants.empty())
        return fail("submit needs at least one variant");
    if (v.has("configs")) {
        const JsonValue &cs = v.at("configs");
        if (!cs.isArray())
            return fail("\"configs\" must be an array of arrays");
        for (const JsonValue &cfg : cs.elements) {
            if (!cfg.isArray())
                return fail(
                    "each config must be an array of CLI tokens");
            std::vector<std::string> tokens;
            for (const JsonValue &t : cfg.elements) {
                if (!t.isString())
                    return fail("config tokens must be strings");
                tokens.push_back(t.text);
            }
            out.configs.push_back(std::move(tokens));
        }
    }
    if (v.has("train_ops") &&
        !jsonUint(v.at("train_ops"), out.trainOps))
        return fail("\"train_ops\" must be a non-negative number");
    if (v.has("ref_ops") && !jsonUint(v.at("ref_ops"), out.refOps))
        return fail("\"ref_ops\" must be a non-negative number");
    if (v.has("priority")) {
        if (!v.at("priority").isNumber())
            return fail("\"priority\" must be a number");
        out.priority = int(v.at("priority").number);
    }
    if (v.has("timeout_ms")) {
        if (!jsonUint(v.at("timeout_ms"), out.timeoutMs))
            return fail("\"timeout_ms\" must be a non-negative "
                        "number");
        out.timeoutSet = true;
    }
    if (v.has("max_retries")) {
        uint64_t n = 0;
        if (!jsonUint(v.at("max_retries"), n))
            return fail("\"max_retries\" must be a non-negative "
                        "number");
        out.maxRetries = int(n);
        out.retriesSet = true;
    }
    if (v.has("retry_backoff_ms")) {
        if (!jsonUint(v.at("retry_backoff_ms"), out.retryBackoffMs))
            return fail("\"retry_backoff_ms\" must be a "
                        "non-negative number");
        out.backoffSet = true;
    }
    return true;
}

std::vector<std::string>
jobIdList(const JsonValue &v, const char *key)
{
    std::vector<std::string> ids;
    if (v.has(key) && v.at(key).isArray())
        for (const JsonValue &e : v.at(key).elements)
            if (e.isString())
                ids.push_back(e.text);
    return ids;
}

std::string
errorLine(const std::string &op, const std::string &message)
{
    return "{\"ok\":false,\"op\":" + jsonQuote(op) +
           ",\"error\":" + jsonQuote(message) + "}";
}

std::string
statusJson(const JobStatus &s)
{
    std::string out = "{\"id\":" + jsonQuote(s.id) +
                      ",\"workload\":" + jsonQuote(s.workload) +
                      ",\"variant\":" + jsonQuote(s.variant) +
                      ",\"state\":" +
                      jsonQuote(jobStateName(s.state)) +
                      ",\"attempts\":" +
                      jsonNumber(double(s.attempts)) +
                      ",\"queue_wait_ms\":" +
                      jsonNumber(s.queueWaitMs);
    if (s.state == JobState::Done)
        out += ",\"ipc\":" + jsonNumber(s.ipc);
    if (!s.error.empty())
        out += ",\"error\":" + jsonQuote(s.error);
    out += "}";
    return out;
}

} // namespace

bool
expandSweep(const SweepRequest &req, std::vector<JobSpec> &out,
            std::string *error)
{
    auto fail = [&](const std::string &msg) {
        if (error)
            *error = msg;
        return false;
    };

    std::vector<std::vector<std::string>> configs = req.configs;
    if (configs.empty())
        configs.push_back({}); // one all-defaults config

    std::vector<JobSpec> specs;
    std::set<std::string> seen;
    for (const std::string &wl : req.workloads) {
        if (!findWorkload(wl))
            return fail("unknown workload: " + wl);
        for (const std::string &variant : req.variants) {
            if (!validVariant(variant))
                return fail(
                    "unknown variant: " + variant +
                    " (expected ooo, crisp, or ibda-{1K,8K,64K,"
                    "inf})");
            for (const std::vector<std::string> &cfg : configs) {
                for (const std::string &tok : cfg) {
                    std::string which;
                    if (forbiddenToken(tok, &which))
                        return fail("config flag " + which +
                                    " is server-owned and not "
                                    "accepted in sweep configs");
                }
                JobSpec spec;
                spec.workload = wl;
                spec.variant = variant;
                spec.config = cfg;
                if (req.trainOps > 0) {
                    spec.config.push_back("--train");
                    spec.config.push_back(
                        std::to_string(req.trainOps));
                }
                if (req.refOps > 0) {
                    spec.config.push_back("--ref");
                    spec.config.push_back(
                        std::to_string(req.refOps));
                }
                // cli.cc's validation verbatim: a config crisp_sim
                // would refuse is refused here, with its message.
                std::vector<std::string> args = {"--workload", wl};
                args.insert(args.end(), spec.config.begin(),
                            spec.config.end());
                CliOptions opt = parseCli(args);
                if (!opt.ok())
                    return fail("invalid config for " + wl + "/" +
                                variant + ": " + opt.error);
                spec.trainOps = opt.trainOps;
                spec.refOps = opt.refOps;
                spec.priority = req.priority;
                spec.timeoutMs = req.timeoutMs;
                spec.maxRetries = req.maxRetries;
                spec.retryBackoffMs = req.retryBackoffMs;
                std::ostringstream key;
                key << "wl=" << wl << ";variant=" << variant
                    << ";train=" << opt.trainOps
                    << ";ref=" << opt.refOps << ";cfg="
                    << ArtifactCache::configKey(opt.machine)
                    << ";opt="
                    << ArtifactCache::optionsKey(opt.analysis)
                    << ";sample=" << opt.machine.sampleOps << "/"
                    << opt.machine.sampleWarmupOps;
                spec.specKey = key.str();
                spec.id = jobIdFor(spec.specKey);
                // Equal grid points (e.g. duplicate config lists)
                // collapse; the first occurrence wins.
                if (seen.insert(spec.id).second)
                    specs.push_back(std::move(spec));
            }
        }
    }
    out = std::move(specs);
    return true;
}

ServeAction
handleRequestLine(SweepServer &server, const std::string &line,
                  const std::function<void(const std::string &)> &emit)
{
    JsonValue req;
    std::string parseErr;
    if (!parseJson(line, req, &parseErr)) {
        emit(errorLine("", "malformed request: " + parseErr));
        return ServeAction::Continue;
    }
    if (!req.isObject() || !req.has("op") ||
        !req.at("op").isString()) {
        emit(errorLine("", "request must be an object with a "
                           "string \"op\""));
        return ServeAction::Continue;
    }
    const std::string op = req.at("op").text;

    if (op == "submit") {
        if (!req.has("proto") || !req.at("proto").isNumber() ||
            int(req.at("proto").number) != kServeProtoVersion) {
            emit(errorLine(
                op, "unsupported protocol version (server speaks " +
                        std::to_string(kServeProtoVersion) + ")"));
            return ServeAction::Continue;
        }
        SweepRequest sweep;
        std::string err;
        if (!parseSweep(req, sweep, &err)) {
            emit(errorLine(op, err));
            return ServeAction::Continue;
        }
        SweepServer::Submitted result;
        if (!server.submit(sweep, result, &err)) {
            emit(errorLine(op, err));
            return ServeAction::Continue;
        }
        std::string out = "{\"ok\":true,\"op\":\"submit\",\"proto\":" +
                          std::to_string(kServeProtoVersion) +
                          ",\"fresh\":" +
                          std::to_string(result.fresh) +
                          ",\"deduped\":" +
                          std::to_string(result.deduped) +
                          ",\"jobs\":[";
        for (size_t i = 0; i < result.jobs.size(); ++i) {
            if (i)
                out += ",";
            out += statusJson(result.jobs[i]);
        }
        out += "]}";
        emit(out);
        return ServeAction::Continue;
    }

    if (op == "status") {
        auto jobs = server.status(jobIdList(req, "jobs"));
        std::string out = "{\"ok\":true,\"op\":\"status\",\"jobs\":[";
        for (size_t i = 0; i < jobs.size(); ++i) {
            if (i)
                out += ",";
            out += statusJson(jobs[i]);
        }
        out += "]}";
        emit(out);
        return ServeAction::Continue;
    }

    if (op == "stream") {
        if (!req.has("job") || !req.at("job").isString()) {
            emit(errorLine(op, "stream needs a \"job\" ID"));
            return ServeAction::Continue;
        }
        const std::string id = req.at("job").text;
        size_t cursor = 0;
        for (;;) {
            std::vector<std::string> events;
            bool terminal = false;
            if (!server.waitEvents(id, cursor, events, terminal)) {
                emit(errorLine(op, "unknown job: " + id));
                return ServeAction::Continue;
            }
            for (const std::string &e : events)
                emit(e);
            cursor += events.size();
            if (terminal)
                return ServeAction::Continue;
        }
    }

    if (op == "cancel") {
        auto ids = jobIdList(req, "jobs");
        if (ids.empty()) {
            emit(errorLine(op, "cancel needs a \"jobs\" array"));
            return ServeAction::Continue;
        }
        auto results = server.cancel(ids);
        std::string out = "{\"ok\":true,\"op\":\"cancel\","
                          "\"results\":[";
        for (size_t i = 0; i < results.size(); ++i) {
            if (i)
                out += ",";
            const auto &r = results[i];
            out += "{\"id\":" + jsonQuote(r.id) +
                   ",\"cancelled\":" +
                   (r.cancelled ? "true" : "false");
            if (r.unknown)
                out += ",\"error\":\"unknown job\"";
            else
                out += ",\"state\":" +
                       jsonQuote(jobStateName(r.state));
            out += "}";
        }
        out += "]}";
        emit(out);
        return ServeAction::Continue;
    }

    if (op == "drain") {
        server.drain();
        auto jobs = server.status({});
        size_t done = 0, failed = 0, cancelled = 0, requeued = 0;
        for (const JobStatus &s : jobs) {
            done += s.state == JobState::Done;
            failed += s.state == JobState::Failed;
            cancelled += s.state == JobState::Cancelled;
            requeued += s.state == JobState::Requeued;
        }
        emit("{\"ok\":true,\"op\":\"drain\",\"jobs\":" +
             std::to_string(jobs.size()) +
             ",\"done\":" + std::to_string(done) +
             ",\"failed\":" + std::to_string(failed) +
             ",\"cancelled\":" + std::to_string(cancelled) +
             ",\"requeued\":" + std::to_string(requeued) + "}");
        return ServeAction::Continue;
    }

    if (op == "metrics") {
        emit("{\"ok\":true,\"op\":\"metrics\",\"stats_json\":" +
             jsonQuote(server.metricsJson()) + "}");
        return ServeAction::Continue;
    }

    if (op == "trace") {
        // Additive op (no proto bump): the runtime trace, filtered
        // to one job's lifecycle chain when "job" is present. The
        // multi-line Chrome trace-event document crosses the wire as
        // a JSON string, like every other multi-line payload.
        if (!server.tracing()) {
            emit(errorLine(op, "server was started without "
                               "--trace-runtime"));
            return ServeAction::Continue;
        }
        std::string job;
        if (req.has("job")) {
            if (!req.at("job").isString()) {
                emit(errorLine(op, "\"job\" must be a string"));
                return ServeAction::Continue;
            }
            job = req.at("job").text;
        }
        std::string out = "{\"ok\":true,\"op\":\"trace\"";
        if (!job.empty())
            out += ",\"job\":" + jsonQuote(job);
        out += ",\"trace_json\":" +
               jsonQuote(server.traceJson(job)) + "}";
        emit(out);
        return ServeAction::Continue;
    }

    if (op == "shutdown") {
        bool drain = true;
        if (req.has("drain") &&
            req.at("drain").kind == JsonValue::Kind::Bool)
            drain = req.at("drain").boolean;
        server.shutdown(drain);
        emit("{\"ok\":true,\"op\":\"shutdown\",\"drained\":" +
             std::string(drain ? "true" : "false") + "}");
        return ServeAction::ShutdownServer;
    }

    emit(errorLine(op, "unknown op: " + op));
    return ServeAction::Continue;
}

} // namespace crisp
