#include "serve/transport.h"

#include <cerrno>
#include <cstring>

#include <poll.h>
#include <sys/socket.h>
#include <sys/un.h>
#include <unistd.h>

#include "serve/protocol.h"
#include "serve/server.h"

namespace crisp
{

namespace
{

/** Fills @p addr for @p path. @return false when the path is too
 *  long for sockaddr_un (the classic silent-truncation trap). */
/** strerror_r comes in two flavors: XSI returns int and fills the
 *  buffer, GNU returns a char* that may point elsewhere. Overload
 *  dispatch on the actual return type picks the right reading. */
[[maybe_unused]] const char *
strerrorAdapt(int rc, const char *buf)
{
    return rc == 0 ? buf : "unknown error";
}
[[maybe_unused]] const char *
strerrorAdapt(const char *ret, const char *)
{
    return ret;
}

/** Thread-safe strerror(errno): connection threads format socket
 *  errors concurrently, and the static buffer behind the classic
 *  one-argument strerror is a data race under clang-tidy's
 *  concurrency-mt-unsafe check. */
std::string
errnoMessage(int err)
{
    char buf[128] = {0};
    return strerrorAdapt(::strerror_r(err, buf, sizeof(buf)), buf);
}

bool
unixAddress(const std::string &path, sockaddr_un &addr)
{
    if (path.size() >= sizeof(addr.sun_path))
        return false;
    std::memset(&addr, 0, sizeof(addr));
    addr.sun_family = AF_UNIX;
    std::memcpy(addr.sun_path, path.c_str(), path.size() + 1);
    return true;
}

bool
writeAll(int fd, const std::string &data)
{
    size_t off = 0;
    while (off < data.size()) {
        ssize_t n =
            ::send(fd, data.data() + off, data.size() - off,
#ifdef MSG_NOSIGNAL
                   MSG_NOSIGNAL
#else
                   0
#endif
            );
        if (n < 0) {
            if (errno == EINTR)
                continue;
            return false;
        }
        off += size_t(n);
    }
    return true;
}

} // namespace

ServeListener::ServeListener(SweepServer &server, std::string path)
    : server_(server), path_(std::move(path))
{
}

ServeListener::~ServeListener()
{
    stop();
    if (listenFd_ >= 0)
        ::close(listenFd_);
    for (int i = 0; i < 2; ++i)
        if (wakePipe_[i] >= 0)
            ::close(wakePipe_[i]);
    if (!path_.empty())
        ::unlink(path_.c_str());
}

bool
ServeListener::open(std::string *error)
{
    sockaddr_un addr;
    if (!unixAddress(path_, addr)) {
        if (error)
            *error = "socket path too long: " + path_;
        return false;
    }
    listenFd_ = ::socket(AF_UNIX, SOCK_STREAM, 0);
    if (listenFd_ < 0) {
        if (error)
            *error = "socket: " + errnoMessage(errno);
        return false;
    }
    // A stale socket file from a dead server would make bind fail;
    // remove it (a live server would still hold the listen socket,
    // and two servers on one path is an operator error either way).
    ::unlink(path_.c_str());
    if (::bind(listenFd_,
               reinterpret_cast<const sockaddr *>(&addr),
               sizeof(addr)) < 0 ||
        ::listen(listenFd_, 16) < 0) {
        if (error)
            *error = "bind/listen " + path_ + ": " +
                     errnoMessage(errno);
        ::close(listenFd_);
        listenFd_ = -1;
        return false;
    }
    if (::pipe(wakePipe_) < 0) {
        if (error)
            *error = "pipe: " + errnoMessage(errno);
        ::close(listenFd_);
        listenFd_ = -1;
        return false;
    }
    return true;
}

void
ServeListener::run()
{
    for (;;) {
        pollfd fds[2] = {{listenFd_, POLLIN, 0},
                         {wakePipe_[0], POLLIN, 0}};
        if (::poll(fds, 2, -1) < 0) {
            if (errno == EINTR)
                continue;
            break;
        }
        {
            MutexLock lk(m_);
            if (stopping_)
                break;
        }
        if (fds[1].revents & POLLIN)
            break; // stop() wrote the wake byte
        if (!(fds[0].revents & POLLIN))
            continue;
        int fd = ::accept(listenFd_, nullptr, nullptr);
        if (fd < 0)
            continue;
        MutexLock lk(m_);
        if (stopping_) {
            ::close(fd);
            break;
        }
        clientFds_.push_back(fd);
        connections_.emplace_back(
            [this, fd] { serveConnection(fd); });
    }
    closeClients();
    for (std::thread &t : connections_)
        t.join();
    connections_.clear();
}

void
ServeListener::stop()
{
    {
        MutexLock lk(m_);
        if (stopping_)
            return;
        stopping_ = true;
    }
    if (wakePipe_[1] >= 0) {
        char b = 1;
        ssize_t rc = ::write(wakePipe_[1], &b, 1);
        (void)rc; // best-effort wake; run() also checks stopping_
    }
}

void
ServeListener::closeClients()
{
    MutexLock lk(m_);
    for (int fd : clientFds_)
        ::shutdown(fd, SHUT_RDWR); // unblocks connection reads
    clientFds_.clear();
}

void
ServeListener::serveConnection(int fd)
{
    std::string buf;
    char chunk[4096];
    bool open_conn = true;
    while (open_conn) {
        ssize_t n = ::recv(fd, chunk, sizeof(chunk), 0);
        if (n < 0 && errno == EINTR)
            continue;
        if (n <= 0)
            break;
        buf.append(chunk, size_t(n));
        size_t nl;
        while (open_conn &&
               (nl = buf.find('\n')) != std::string::npos) {
            std::string line = buf.substr(0, nl);
            buf.erase(0, nl + 1);
            if (line.empty())
                continue;
            ServeAction action = handleRequestLine(
                server_, line, [&](const std::string &out) {
                    if (!writeAll(fd, out + "\n"))
                        open_conn = false;
                });
            if (action == ServeAction::ShutdownServer) {
                open_conn = false;
                stop(); // ends the accept loop; server already down
            }
        }
    }
    // Deregister before closing: closeClients() must never act on a
    // closed (and possibly reused) descriptor.
    {
        MutexLock lk(m_);
        for (auto it = clientFds_.begin(); it != clientFds_.end();
             ++it) {
            if (*it == fd) {
                clientFds_.erase(it);
                break;
            }
        }
    }
    ::close(fd);
}

ServeClient::~ServeClient()
{
    close();
}

bool
ServeClient::connect(const std::string &path, std::string *error)
{
    sockaddr_un addr;
    if (!unixAddress(path, addr)) {
        if (error)
            *error = "socket path too long: " + path;
        return false;
    }
    fd_ = ::socket(AF_UNIX, SOCK_STREAM, 0);
    if (fd_ < 0) {
        if (error)
            *error = "socket: " + errnoMessage(errno);
        return false;
    }
    if (::connect(fd_, reinterpret_cast<const sockaddr *>(&addr),
                  sizeof(addr)) < 0) {
        if (error)
            *error = "connect " + path + ": " +
                     errnoMessage(errno);
        ::close(fd_);
        fd_ = -1;
        return false;
    }
    return true;
}

bool
ServeClient::sendLine(const std::string &line)
{
    return fd_ >= 0 && writeAll(fd_, line + "\n");
}

bool
ServeClient::recvLine(std::string &line)
{
    for (;;) {
        size_t nl = buf_.find('\n');
        if (nl != std::string::npos) {
            line = buf_.substr(0, nl);
            buf_.erase(0, nl + 1);
            return true;
        }
        if (fd_ < 0)
            return false;
        char chunk[4096];
        ssize_t n = ::recv(fd_, chunk, sizeof(chunk), 0);
        if (n < 0 && errno == EINTR)
            continue;
        if (n <= 0)
            return false;
        buf_.append(chunk, size_t(n));
    }
}

void
ServeClient::close()
{
    if (fd_ >= 0) {
        ::close(fd_);
        fd_ = -1;
    }
}

} // namespace crisp
