/**
 * @file
 * Wire protocol of the crisp_serve sweep daemon (DESIGN.md §15).
 *
 * The protocol is newline-delimited JSON over a byte stream (a unix
 * domain socket in production, a string pair in the loopback tests):
 * every request is one JSON object on one line, every response one or
 * more JSON lines. Multi-line payloads — a StatRegistry export is
 * deliberately pretty-printed — travel as JSON *string* fields, so
 * the framing stays one-record-per-line no matter what a record
 * carries.
 *
 * Requests name an op: submit, status, stream, cancel, drain,
 * metrics, trace, shutdown. A submit carries a sweep — workloads ×
 * variants
 * × config token lists — which the server expands into jobs with
 * stable content-addressed IDs; everything else addresses those IDs.
 * Config token lists reuse the crisp_sim CLI grammar and cli.cc's
 * validation verbatim, so a config that crisp_sim would reject is
 * rejected at submit time with the same message.
 *
 * This header is transport-free: handleRequestLine() maps one request
 * line to response lines through an emit callback, which the socket
 * layer (serve/transport.h) and the in-process loopback tests share.
 */

#ifndef CRISP_SERVE_PROTOCOL_H
#define CRISP_SERVE_PROTOCOL_H

#include <cstdint>
#include <functional>
#include <string>
#include <vector>

namespace crisp
{

class SweepServer;

/** Protocol version; submits carrying any other version are refused
 *  (bump on any incompatible job/result schema change). */
constexpr int kServeProtoVersion = 1;

/** Lifecycle of one job (see DESIGN.md §15 for the transitions). */
enum class JobState {
    Queued,    ///< waiting in the priority queue (or for a retry)
    Running,   ///< executing on a worker
    Done,      ///< finished; result available
    Failed,    ///< exhausted retries or hit a non-retryable error
    Cancelled, ///< explicitly cancelled (final; never retried)
    Requeued,  ///< returned to the queue by a non-drain shutdown
};

/** @return the lowercase wire name of @p s ("queued", ...). */
const char *jobStateName(JobState s);

/**
 * One expanded (workload, variant, config) simulation job. The spec
 * is the unit of identity: two submissions that expand to the same
 * canonical spec share one job, one result, and one set of cached
 * artifacts.
 */
struct JobSpec
{
    std::string workload; ///< workload name (workloads/workload.h)
    /** "ooo", "crisp", or "ibda-<ist>" with ist in {1K,8K,64K,inf}. */
    std::string variant;
    /** crisp_sim CLI tokens (machine/analysis/sample knobs only;
     *  server-owned flags like --workload or --stats-json are
     *  rejected at expansion). */
    std::vector<std::string> config;

    // Derived by expandSweep() from the parsed config.
    uint64_t trainOps = 0;
    uint64_t refOps = 0;

    // Scheduling policy, inherited from the sweep.
    int priority = 0;        ///< higher runs earlier
    uint64_t timeoutMs = 0;  ///< per-attempt wall clock; 0 = none
    int maxRetries = 0;      ///< extra attempts after a retryable failure
    uint64_t retryBackoffMs = 100; ///< first backoff; doubles

    /** Canonical identity: workload, variant, trace lengths, and the
     *  ArtifactCache machine/options keys of the parsed config. */
    std::string specKey;
    /** "j-<16 hex>": FNV-1a of specKey. Stable across processes. */
    std::string id;
};

/** One parsed submit request (the sweep grid, pre-expansion). */
struct SweepRequest
{
    std::vector<std::string> workloads;
    std::vector<std::string> variants;
    /** Config token lists; an empty grid means one all-defaults
     *  config. */
    std::vector<std::vector<std::string>> configs;
    uint64_t trainOps = 0; ///< 0 = config/CLI default
    uint64_t refOps = 0;   ///< 0 = config/CLI default
    int priority = 0;
    uint64_t timeoutMs = 0;
    int maxRetries = 0;
    uint64_t retryBackoffMs = 100;
    // Absent fields fall back to the server's defaults; present
    // ones (even zero) are taken literally.
    bool timeoutSet = false;
    bool retriesSet = false;
    bool backoffSet = false;
};

/**
 * Expands @p req into one JobSpec per (workload, variant, config)
 * grid point, validating every coordinate: workloads must exist,
 * variants must parse, and each config token list must survive
 * cli.cc's parseCli with the server-owned flags refused. Duplicate
 * grid points (same canonical spec) collapse to one job.
 *
 * @param out receives the expanded specs (unchanged on failure)
 * @param error receives a one-line reason on failure (may be null)
 * @return true when the whole grid expanded cleanly
 */
bool expandSweep(const SweepRequest &req, std::vector<JobSpec> &out,
                 std::string *error);

/** @return "j-<16 hex>", the FNV-1a 64 content address of @p key. */
std::string jobIdFor(const std::string &key);

/** What the connection loop should do after a handled request. */
enum class ServeAction {
    Continue,       ///< keep reading requests on this connection
    ShutdownServer, ///< shutdown op handled: stop the whole daemon
};

/**
 * Handles one request line against @p server, emitting response
 * lines (without trailing newline) through @p emit. Malformed input
 * never throws — it emits one {"ok":false,...} line. A stream op
 * emits one line per job event and returns when the job is terminal;
 * a drain op returns once the server is idle; a shutdown op performs
 * the (optionally draining) shutdown before returning.
 */
ServeAction
handleRequestLine(SweepServer &server, const std::string &line,
                  const std::function<void(const std::string &)> &emit);

} // namespace crisp

#endif // CRISP_SERVE_PROTOCOL_H
