#include "serve/server.h"

#include <algorithm>
#include <filesystem>
#include <fstream>

#include "serve/protocol.h"
#include "sim/cli.h"
#include "sim/driver.h"
#include "sim/sampled.h"
#include "sim/warm_store.h"
#include "telemetry/json.h"
#include "telemetry/runtime_trace.h"
#include "telemetry/stat_registry.h"
#include "workloads/workload.h"

namespace crisp
{

namespace
{

/** Renders one NDJSON event line from (key, raw-value) pairs; values
 *  arrive pre-rendered (jsonQuote for strings, jsonNumber for
 *  numbers) so the caller controls exact formatting. */
std::string
eventLine(
    const std::vector<std::pair<std::string, std::string>> &fields)
{
    std::string out = "{";
    for (size_t i = 0; i < fields.size(); ++i) {
        if (i)
            out += ",";
        out += jsonQuote(fields[i].first) + ":" + fields[i].second;
    }
    out += "}";
    return out;
}

} // namespace

SweepServer::SweepServer(ServeConfig cfg, JobRunner runner)
    : cfg_(std::move(cfg)),
      runner_(runner ? std::move(runner) : simRunner()),
      pool_(cfg_.jobs),
      queue_(cfg_.queueCapacity),
      freeSlots_(pool_.size())
{
    if (cfg_.traceRuntime) {
        // Active for the daemon's life; deactivation happens in the
        // tracer's own destructor, after shutdown() has joined every
        // thread that could still be recording.
        tracer_ = std::make_unique<RuntimeTracer>();
        tracer_->activate();
    }
    if (!cfg_.artifactDir.empty()) {
        warmStore_ = std::make_unique<WarmArtifactStore>(
            cfg_.artifactDir, cfg_.artifactMaxBytes);
        cache_.setWarmStore(warmStore_.get());
    }
    if (!cfg_.resultDir.empty()) {
        std::error_code ec;
        std::filesystem::create_directories(cfg_.resultDir, ec);
    }
}

SweepServer::~SweepServer()
{
    shutdown(false);
}

void
SweepServer::start()
{
    {
        MutexLock lk(m_);
        accepting_ = true;
    }
    stream_ = std::make_unique<ThreadPool::Stream>(pool_);
    dispatcher_ = std::thread([this] { dispatcherLoop(); });
    monitor_ = std::thread([this] { monitorLoop(); });
}

void
SweepServer::shutdown(bool drain_mode)
{
    {
        MutexLock lk(m_);
        if (stopping_)
            return;
        stopping_ = true;
        accepting_ = false;
    }
    if (!dispatcher_.joinable()) {
        // start() was never called; nothing is running.
        queue_.close();
        return;
    }
    if (drain_mode) {
        drain();
    } else {
        // Never-started jobs are requeued, not silently dropped:
        // they become terminal Requeued here, and a resubmission of
        // the same sweep against a fresh server revives them.
        auto dropped = queue_.drainAll();
        std::vector<ResultRecord> flush;
        {
            MutexLock lk(m_);
            for (const QueueEntry &e : dropped) {
                auto it = jobs_.find(e.jobId);
                if (it != jobs_.end() && !it->second.terminal) {
                    finishLocked(it->second, JobState::Requeued,
                                 "requeued by shutdown");
                    flush.push_back(
                        captureResultLocked(it->second));
                }
            }
        }
        // Manifest lines land outside the job-table lock, before
        // shutdown() returns (see ResultRecord).
        for (const ResultRecord &rr : flush)
            writeResultFiles(rr);
    }
    queue_.close();
    dispatcher_.join();
    // In-flight jobs run to completion; the monitor stays alive
    // until they have drained so their timeouts still fire.
    stream_->wait();
    {
        MutexLock lk(m_);
        monitorStop_ = true;
        deadlinesChangedLocked();
    }
    monitor_.join();
    stream_.reset();
}

bool
SweepServer::accepting() const
{
    MutexLock lk(m_);
    return accepting_;
}

void
SweepServer::dispatcherLoop()
{
    while (auto e = queue_.pop()) {
        {
            MutexLock lk(slotM_);
            slotCv_.wait(lk, [this]() CRISP_REQUIRES(slotM_) {
                return freeSlots_ > 0;
            });
            --freeSlots_;
        }
        std::string id = e->jobId;
        stream_->submit([this, id] {
            execute(id);
            {
                MutexLock lk(slotM_);
                ++freeSlots_;
            }
            slotCv_.notifyOne();
        });
    }
}

void
SweepServer::monitorLoop()
{
    MutexLock lk(m_);
    while (!monitorStop_) {
        auto now = std::chrono::steady_clock::now();
        bool have = false;
        std::chrono::steady_clock::time_point earliest{};
        for (auto &kv : jobs_) {
            JobRecord &rec = kv.second;
            if (!rec.hasDeadline || !rec.token)
                continue;
            if (rec.deadline <= now) {
                // Firing is idempotent and first-fire-wins, so a
                // racing explicit cancel keeps its meaning.
                rec.token->requestTimeout();
                rec.hasDeadline = false;
            } else if (!have || rec.deadline < earliest) {
                earliest = rec.deadline;
                have = true;
            }
        }
        // The predicate is a generation check: any deadline-set
        // change invalidates the earliest computed above, so the
        // monitor must wake and re-scan even before that (stale)
        // deadline — a new job with a shorter timeout must not wait
        // behind a longer one.
        const uint64_t g0 = deadlineGen_;
        auto changed = [&]() CRISP_REQUIRES(m_) {
            return deadlineGen_ != g0 || monitorStop_;
        };
        if (have)
            monitorCv_.waitUntil(lk, earliest, changed);
        else
            monitorCv_.wait(lk, changed);
    }
}

void
SweepServer::emitLocked(JobRecord &rec, std::string line)
{
    rec.events.push_back(std::move(line));
    eventCv_.notifyAll();
}

void
SweepServer::deadlinesChangedLocked()
{
    ++deadlineGen_;
    monitorCv_.notifyAll();
}

void
SweepServer::finishLocked(JobRecord &rec, JobState state,
                          const std::string &error)
{
    rec.state = state;
    rec.error = error;
    rec.terminal = true;
    rec.token.reset();
    rec.hasDeadline = false;

    std::vector<std::pair<std::string, std::string>> fields = {
        {"event", jsonQuote("result")},
        {"job", jsonQuote(rec.spec.id)},
        {"ok", state == JobState::Done ? "true" : "false"},
        {"workload", jsonQuote(rec.spec.workload)},
        {"variant", jsonQuote(rec.spec.variant)},
        {"state", jsonQuote(jobStateName(state))},
        {"attempts", jsonNumber(double(rec.attempts))},
        {"queue_wait_ms",
         jsonNumber(double(rec.queueWaitNs) / 1e6)},
    };
    if (state == JobState::Done) {
        fields.emplace_back("ipc", jsonNumber(rec.ipc));
        // The registry export is multi-line by design; it crosses
        // the wire as a JSON string so NDJSON framing survives.
        fields.emplace_back("stats_json", jsonQuote(rec.statsJson));
    } else {
        fields.emplace_back("error", jsonQuote(error));
    }
    emitLocked(rec, eventLine(fields));
    emitLocked(rec, eventLine({{"event", jsonQuote("end")},
                               {"job", jsonQuote(rec.spec.id)},
                               {"state",
                                jsonQuote(jobStateName(state))}}));
    stateCv_.notifyAll();
    deadlinesChangedLocked();
}

SweepServer::ResultRecord
SweepServer::captureResultLocked(const JobRecord &rec) const
{
    return {rec.spec,  rec.state,     rec.attempts,
            rec.ipc,   rec.error,     rec.statsJson,
            double(rec.queueWaitNs) / 1e6};
}

void
SweepServer::writeResultFiles(const ResultRecord &rec)
{
    if (cfg_.resultDir.empty())
        return;
    // resultM_ is a leaf lock that exists to serialize exactly these
    // appends; nothing else is ever acquired or awaited under it.
    MutexLock lk(resultM_); // crisp-lint: allow(blocking-under-lock)
    std::string file;
    if (rec.state == JobState::Done) {
        file = rec.spec.id + ".json";
        // crisp-lint: allow(blocking-under-lock)
        std::ofstream os(
            std::filesystem::path(cfg_.resultDir) / file,
            std::ios::trunc);
        os << rec.statsJson;
    }
    // crisp-lint: allow(blocking-under-lock)
    std::ofstream manifest(
        std::filesystem::path(cfg_.resultDir) / "manifest.ndjson",
        std::ios::app);
    manifest << eventLine(
                    {{"job", jsonQuote(rec.spec.id)},
                     {"workload", jsonQuote(rec.spec.workload)},
                     {"variant", jsonQuote(rec.spec.variant)},
                     {"state",
                      jsonQuote(jobStateName(rec.state))},
                     {"attempts",
                      jsonNumber(double(rec.attempts))},
                     {"ipc", jsonNumber(rec.ipc)},
                     {"queue_wait_ms",
                      jsonNumber(rec.queueWaitMs)},
                     {"error", jsonQuote(rec.error)},
                     {"file", jsonQuote(file)}})
             << "\n";
}

bool
SweepServer::submit(const SweepRequest &req, Submitted &out,
                    std::string *error)
{
    // Resolve sweep-level scheduling fields against the server's
    // defaults before expansion bakes them into the specs.
    SweepRequest r = req;
    if (!r.timeoutSet)
        r.timeoutMs = cfg_.defaultTimeoutMs;
    if (!r.retriesSet)
        r.maxRetries = cfg_.defaultMaxRetries;
    if (!r.backoffSet)
        r.retryBackoffMs = cfg_.retryBackoffMs;

    std::vector<JobSpec> specs;
    if (!expandSweep(r, specs, error))
        return false;

    std::vector<std::string> toEnqueue;
    {
        MutexLock lk(m_);
        if (!accepting_) {
            if (error)
                *error = "server is shutting down";
            return false;
        }
        for (JobSpec &spec : specs) {
            auto it = jobs_.find(spec.id);
            bool enqueue = false;
            if (it == jobs_.end()) {
                JobRecord rec;
                rec.spec = std::move(spec);
                it = jobs_.emplace(rec.spec.id, std::move(rec))
                         .first;
                enqueue = true;
                ++out.fresh;
                submitted_.fetch_add(1, std::memory_order_relaxed);
            } else if (it->second.terminal &&
                       (it->second.state == JobState::Failed ||
                        it->second.state == JobState::Requeued)) {
                // Revive: same identity, fresh attempt counter and
                // event log, new scheduling fields.
                JobRecord &rec = it->second;
                rec.spec.priority = spec.priority;
                rec.spec.timeoutMs = spec.timeoutMs;
                rec.spec.maxRetries = spec.maxRetries;
                rec.spec.retryBackoffMs = spec.retryBackoffMs;
                rec.state = JobState::Queued;
                rec.terminal = false;
                rec.attempts = 0;
                rec.error.clear();
                rec.events.clear();
                rec.queueWaitNs = 0;
                enqueue = true;
                ++out.fresh;
                submitted_.fetch_add(1, std::memory_order_relaxed);
            } else {
                // Queued/Running/Done/Cancelled: share the existing
                // job (and, transitively, its cached artifacts).
                ++out.deduped;
                deduped_.fetch_add(1, std::memory_order_relaxed);
            }
            JobRecord &rec = it->second;
            if (enqueue) {
                rec.submitTime = std::chrono::steady_clock::now();
                rec.enqueueTime = rec.submitTime;
                emitLocked(rec,
                           eventLine({{"event", jsonQuote("state")},
                                      {"job",
                                       jsonQuote(rec.spec.id)},
                                      {"state",
                                       jsonQuote("queued")}}));
                toEnqueue.push_back(rec.spec.id);
            }
            out.jobs.push_back({rec.spec.id, rec.spec.workload,
                                rec.spec.variant, rec.state,
                                rec.attempts, rec.ipc, rec.error});
        }
    }
    // Enqueue outside the job-table lock: a full queue blocks here
    // (backpressure) and status/cancel must stay responsive.
    for (const std::string &id : toEnqueue) {
        int prio = 0;
        {
            MutexLock lk(m_);
            prio = jobs_.at(id).spec.priority;
        }
        if (!queue_.push({id, prio, 0, {}})) {
            ResultRecord rr;
            bool flush = false;
            {
                MutexLock lk(m_);
                JobRecord &rec = jobs_.at(id);
                if (!rec.terminal) {
                    finishLocked(rec, JobState::Requeued,
                                 "requeued by shutdown");
                    rr = captureResultLocked(rec);
                    flush = true;
                }
            }
            // Manifest line lands before submit() returns, outside
            // the job-table lock (see ResultRecord).
            if (flush)
                writeResultFiles(rr);
        }
    }
    return true;
}

void
SweepServer::execute(const std::string &id)
{
    std::shared_ptr<CancelToken> token;
    JobSpec spec;
    int attempt = 0;
    uint64_t queueWaitNs = 0;
    std::chrono::steady_clock::time_point submitTime{};
    std::chrono::steady_clock::time_point enqueueTime{};
    std::chrono::steady_clock::time_point runStart{};
    {
        MutexLock lk(m_);
        auto it = jobs_.find(id);
        if (it == jobs_.end())
            return;
        JobRecord &rec = it->second;
        // Cancelled (or requeued by shutdown) between pop and here.
        if (rec.terminal || rec.state != JobState::Queued)
            return;
        rec.state = JobState::Running;
        attempt = ++rec.attempts;
        runStart = std::chrono::steady_clock::now();
        rec.queueWaitNs = uint64_t(
            std::chrono::duration_cast<std::chrono::nanoseconds>(
                runStart - rec.enqueueTime)
                .count());
        queueWaitNs = rec.queueWaitNs;
        submitTime = rec.submitTime;
        enqueueTime = rec.enqueueTime;
        token = std::make_shared<CancelToken>();
        rec.token = token;
        if (rec.spec.timeoutMs > 0) {
            rec.deadline =
                std::chrono::steady_clock::now() +
                std::chrono::milliseconds(rec.spec.timeoutMs);
            rec.hasDeadline = true;
            deadlinesChangedLocked();
        }
        spec = rec.spec;
        emitLocked(rec,
                   eventLine({{"event", jsonQuote("state")},
                              {"job", jsonQuote(spec.id)},
                              {"state", jsonQuote("running")},
                              {"attempt",
                               jsonNumber(double(rec.attempts))}}));
    }

    // Queue-wait is an async pair: on this worker thread it overlaps
    // whatever ran here before the dispatch, so it cannot nest as a
    // synchronous span.
    if (tracer_)
        tracer_->recordAsyncPair("serve", "job.queued",
                                 tracer_->toNs(enqueueTime),
                                 tracer_->toNs(runStart), "job",
                                 id.c_str());

    enum class Verdict { Ok, Cancelled, Retryable, Fatal };
    Verdict verdict = Verdict::Ok;
    bool timedOut = false;
    std::string reason;
    JobOutcome outcome;
    try {
        TraceSpan span("serve", "job.running");
        if (span.on())
            span.setArg("job", id);
        outcome = runner_(spec, cache_, *token);
    } catch (const JobCancelled &e) {
        timedOut = e.timedOut;
        verdict = timedOut ? Verdict::Retryable : Verdict::Cancelled;
        reason = e.what();
    } catch (const SimDeadlockError &e) {
        verdict = Verdict::Retryable;
        reason = e.what();
    } catch (const std::exception &e) {
        verdict = Verdict::Fatal;
        reason = e.what();
    }

    {
        // One sample per attempt; histM_ is a leaf taken after m_
        // was released and before it is reacquired below.
        const double wallMs =
            std::chrono::duration<double, std::milli>(
                std::chrono::steady_clock::now() - runStart)
                .count();
        MutexLock lk(histM_);
        queueWaitHist_.add(double(queueWaitNs) / 1e6);
        wallHist_.add(wallMs);
        if (verdict == Verdict::Ok && outcome.sampled) {
            warmHist_.add(outcome.warmSeconds * 1e3);
            detailHist_.add(outcome.detailSeconds * 1e3);
            stitchHist_.add(outcome.stitchSeconds * 1e3);
        }
    }

    // A Running job is only ever finalized by this function (cancel
    // fires the token, shutdown drains the queue — neither touches a
    // running record), so the final state is fully determined here,
    // before the lock: terminal verdicts write their result files
    // FIRST, guaranteeing <id>.json is durable before finishLocked
    // publishes the end event a --wait client acts on.
    const bool retry = verdict == Verdict::Retryable &&
                       attempt <= spec.maxRetries;
    if (!retry) {
        ResultRecord rr;
        rr.spec = spec;
        rr.attempts = attempt;
        rr.queueWaitMs = double(queueWaitNs) / 1e6;
        switch (verdict) {
        case Verdict::Ok:
            rr.state = JobState::Done;
            rr.ipc = outcome.ipc;
            rr.statsJson = outcome.statsJson;
            break;
        case Verdict::Cancelled:
            rr.state = JobState::Cancelled;
            rr.error = reason;
            break;
        default: // Fatal, or Retryable out of attempts
            rr.state = JobState::Failed;
            rr.error =
                verdict == Verdict::Fatal
                    ? reason
                    : reason + " (attempt " +
                          std::to_string(attempt) + " of " +
                          std::to_string(spec.maxRetries + 1) + ")";
            break;
        }
        TraceSpan span("serve", "job.persist");
        if (span.on())
            span.setArg("job", id);
        writeResultFiles(rr);
    }

    ResultRecord requeuedRr;
    bool flushRequeued = false;
    {
        MutexLock lk(m_);
        auto it = jobs_.find(id);
        if (it == jobs_.end())
            return;
        JobRecord &rec = it->second;
        rec.token.reset();
        rec.hasDeadline = false;
        deadlinesChangedLocked();

        switch (verdict) {
        case Verdict::Ok:
            rec.ipc = outcome.ipc;
            rec.statsJson = std::move(outcome.statsJson);
            finishLocked(rec, JobState::Done, "");
            break;
        case Verdict::Cancelled:
            if (tracer_)
                tracer_->recordInstant("serve", "job.cancel",
                                       "job", id.c_str());
            finishLocked(rec, JobState::Cancelled, reason);
            break;
        case Verdict::Fatal:
            finishLocked(rec, JobState::Failed, reason);
            break;
        case Verdict::Retryable: {
            if (timedOut)
                timeouts_.fetch_add(1, std::memory_order_relaxed);
            else
                deadlocks_.fetch_add(1, std::memory_order_relaxed);
            if (tracer_)
                tracer_->recordInstant(
                    "serve",
                    timedOut ? "job.timeout" : "job.deadlock",
                    "job", id.c_str());
            if (!retry) {
                finishLocked(rec, JobState::Failed,
                             reason + " (attempt " +
                                 std::to_string(rec.attempts) + " of " +
                                 std::to_string(rec.spec.maxRetries + 1) +
                                 ")");
                break;
            }
            retries_.fetch_add(1, std::memory_order_relaxed);
            if (tracer_)
                tracer_->recordInstant("serve", "job.retry", "job",
                                       id.c_str());
            // Exponential backoff: base << (attempt - 1), clamped only
            // by the shift width (attempts are single digits).
            uint64_t backoff = rec.spec.retryBackoffMs
                               << std::min(rec.attempts - 1, 20);
            rec.state = JobState::Queued;
            rec.enqueueTime = std::chrono::steady_clock::now();
            emitLocked(
                rec,
                eventLine({{"event", jsonQuote("retry")},
                           {"job", jsonQuote(spec.id)},
                           {"attempt", jsonNumber(double(rec.attempts))},
                           {"backoff_ms", jsonNumber(double(backoff))},
                           {"reason",
                            jsonQuote(timedOut ? "timeout"
                                               : "deadlock")}}));
            QueueEntry e{spec.id, spec.priority, 0,
                         std::chrono::steady_clock::now() +
                             std::chrono::milliseconds(backoff)};
            // Retries bypass the capacity bound, so this push never
            // blocks: a worker must never block on the queue it drains
            // (pool-wide deadlock), and holding m_ across a non-blocking
            // push is safe — the queue's lock is a leaf under m_.
            // crisp-lint: allow(blocking-under-lock)
            if (!queue_.push(std::move(e), true)) {
                finishLocked(rec, JobState::Requeued,
                             "requeued by shutdown");
                requeuedRr = captureResultLocked(rec);
                flushRequeued = true;
            }
            break;
        }
        }

        // One lifecycle async span per completed submission, submit
        // -> terminal (a retried attempt is not terminal and records
        // none, unless the retry requeue hit a closed queue).
        // Recorded under m_ deliberately: terminal states are
        // observed under this mutex, so a drained sweep's trace
        // always contains every finished job's chain. The tracer's
        // registry mutex is a leaf under m_.
        if (tracer_ && (!retry || flushRequeued))
            tracer_->recordAsyncPair("serve", "job.lifecycle",
                                     tracer_->toNs(submitTime),
                                     tracer_->nowNs(), "job",
                                     id.c_str());
    }
    // Shutdown raced the retry: the manifest line lands outside the
    // job-table lock, before this worker moves on (see ResultRecord).
    if (flushRequeued)
        writeResultFiles(requeuedRr);
}

std::vector<JobStatus>
SweepServer::status(const std::vector<std::string> &ids) const
{
    MutexLock lk(m_);
    std::vector<JobStatus> out;
    const auto now = std::chrono::steady_clock::now();
    auto statusOf = [now](const JobRecord &rec) {
        // A still-queued job reports its wait so far, so a backed-up
        // queue is visible before anything finishes; otherwise the
        // latest attempt's enqueue -> dispatch latency.
        double waitMs = double(rec.queueWaitNs) / 1e6;
        if (!rec.terminal && rec.state == JobState::Queued)
            waitMs = std::chrono::duration<double, std::milli>(
                         now - rec.enqueueTime)
                         .count();
        return JobStatus{rec.spec.id,   rec.spec.workload,
                         rec.spec.variant, rec.state,
                         rec.attempts,  rec.ipc,
                         rec.error,     waitMs};
    };
    if (ids.empty()) {
        for (const auto &kv : jobs_)
            out.push_back(statusOf(kv.second));
        std::sort(out.begin(), out.end(),
                  [](const JobStatus &a, const JobStatus &b) {
                      return a.id < b.id;
                  });
    } else {
        for (const std::string &id : ids) {
            auto it = jobs_.find(id);
            if (it == jobs_.end())
                out.push_back({id, "", "", JobState::Failed, 0, 0.0,
                               "unknown job", 0.0});
            else
                out.push_back(statusOf(it->second));
        }
    }
    return out;
}

std::vector<SweepServer::CancelResult>
SweepServer::cancel(const std::vector<std::string> &ids)
{
    std::vector<CancelResult> out;
    std::vector<ResultRecord> flush;
    {
        MutexLock lk(m_);
        for (const std::string &id : ids) {
            CancelResult r;
            r.id = id;
            auto it = jobs_.find(id);
            if (it == jobs_.end()) {
                r.unknown = true;
                out.push_back(r);
                continue;
            }
            JobRecord &rec = it->second;
            if (rec.terminal) {
                r.state = rec.state;
            } else if (rec.token) {
                // In flight: fire the token; the worker observes it
                // at its next tick and finalizes the record.
                rec.token->requestCancel();
                r.state = rec.state;
                r.cancelled = true;
            } else {
                // Queued (or in dispatch limbo): finalize
                // immediately. If the entry was already popped,
                // execute() sees the terminal record and becomes a
                // no-op. remove() never blocks (the queue's lock is
                // a leaf under m_, and removal needs no capacity).
                queue_.remove(id);
                if (tracer_)
                    tracer_->recordInstant("serve", "job.cancel",
                                           "job", id.c_str());
                finishLocked(rec, JobState::Cancelled,
                             "cancelled before start");
                flush.push_back(captureResultLocked(rec));
                r.state = rec.state;
                r.cancelled = true;
            }
            out.push_back(r);
        }
    }
    // Manifest lines land outside the job-table lock, before the
    // cancel RPC returns (see ResultRecord).
    for (const ResultRecord &rr : flush)
        writeResultFiles(rr);
    return out;
}

void
SweepServer::drain()
{
    MutexLock lk(m_);
    stateCv_.wait(lk, [this]() CRISP_REQUIRES(m_) {
        for (const auto &kv : jobs_)
            if (!kv.second.terminal)
                return false;
        return true;
    });
}

std::string
SweepServer::metricsJson() const
{
    StatRegistry reg;
    uint64_t byState[6] = {0, 0, 0, 0, 0, 0};
    size_t events = 0;
    {
        MutexLock lk(m_);
        for (const auto &kv : jobs_) {
            ++byState[size_t(kv.second.state)];
            events += kv.second.events.size();
        }
    }
    reg.addCounter("serve.proto.version",
                   uint64_t(kServeProtoVersion));
    reg.addCounter("serve.jobs.submitted",
                   submitted_.load(std::memory_order_relaxed),
                   "fresh jobs created by submits");
    reg.addCounter("serve.jobs.deduped",
                   deduped_.load(std::memory_order_relaxed),
                   "grid points matching an existing job");
    reg.addCounter("serve.jobs.queued",
                   byState[size_t(JobState::Queued)]);
    // Instantaneous gauges export as scalars, not counters, so
    // crisp_report deltas never treat them as monotone.
    reg.addScalar("serve.jobs.running",
                  double(byState[size_t(JobState::Running)]));
    reg.addCounter("serve.jobs.done",
                   byState[size_t(JobState::Done)]);
    reg.addCounter("serve.jobs.failed",
                   byState[size_t(JobState::Failed)]);
    reg.addCounter("serve.jobs.cancelled",
                   byState[size_t(JobState::Cancelled)]);
    reg.addCounter("serve.jobs.requeued",
                   byState[size_t(JobState::Requeued)]);
    reg.addCounter("serve.jobs.retries",
                   retries_.load(std::memory_order_relaxed),
                   "re-enqueues after timeout/deadlock");
    reg.addCounter("serve.jobs.timeouts",
                   timeouts_.load(std::memory_order_relaxed));
    reg.addCounter("serve.jobs.deadlocks",
                   deadlocks_.load(std::memory_order_relaxed));
    reg.addScalar("serve.events.buffered", double(events));
    reg.addScalar("serve.queue.depth", double(queue_.depth()));
    reg.addCounter("serve.queue.capacity",
                   uint64_t(queue_.capacity()));
    reg.addCounter("serve.pool.workers", uint64_t(pool_.size()));
    ArtifactCache::Stats cs = cache_.stats();
    reg.addCounter("serve.cache.hits", cs.hits);
    reg.addCounter("serve.cache.misses", cs.misses);
    reg.addScalar("serve.cache.in_flight", double(cs.inFlight),
                  "artifact computations running now");
    reg.addCounter("serve.cache.store_hits", cs.storeHits);
    reg.addCounter("serve.cache.store_misses", cs.storeMisses);
    {
        // Copy-register under the leaf lock; serialization (toJson)
        // runs after it is released.
        MutexLock lk(histM_);
        reg.addHistogram("serve.latency.queue_wait_ms",
                         queueWaitHist_,
                         "enqueue -> dispatch, per attempt");
        reg.addHistogram("serve.latency.job_wall_ms", wallHist_,
                         "runner wall-time, per attempt");
        reg.addHistogram("serve.latency.warm_ms", warmHist_,
                         "sampled warm phase, per done job");
        reg.addHistogram("serve.latency.detail_ms", detailHist_,
                         "sampled detail phase, per done job");
        reg.addHistogram("serve.latency.stitch_ms", stitchHist_,
                         "sampled stitch phase, per done job");
    }
    return reg.toJson();
}

std::string
SweepServer::traceJson(const std::string &jobId) const
{
    if (!tracer_)
        return "";
    return jobId.empty() ? tracer_->toJson()
                         : tracer_->toJson("job", jobId);
}

bool
SweepServer::waitEvents(const std::string &id, size_t from,
                        std::vector<std::string> &out, bool &terminal)
{
    MutexLock lk(m_);
    auto it = jobs_.find(id);
    if (it == jobs_.end())
        return false;
    // unordered_map nodes are reference-stable across rehashes, so
    // this reference survives concurrent submits.
    JobRecord &rec = it->second;
    eventCv_.wait(lk, [&] {
        return rec.events.size() > from || rec.terminal;
    });
    out.assign(rec.events.begin() +
                   std::vector<std::string>::difference_type(
                       std::min(from, rec.events.size())),
               rec.events.end());
    terminal =
        rec.terminal && from + out.size() >= rec.events.size();
    return true;
}

SweepServer::JobRunner
SweepServer::simRunner()
{
    return [](const JobSpec &spec, ArtifactCache &cache,
              const CancelToken &token) -> JobOutcome {
        std::vector<std::string> args = {"--workload",
                                         spec.workload};
        args.insert(args.end(), spec.config.begin(),
                    spec.config.end());
        CliOptions opt = parseCli(args);
        if (!opt.ok()) // expandSweep validated; defensive
            throw std::runtime_error("config rejected: " +
                                     opt.error);
        const WorkloadInfo *wl = findWorkload(opt.workload);
        if (!wl)
            throw std::runtime_error("unknown workload: " +
                                     opt.workload);

        // The base machine keys the artifacts (as evaluateAll()'s
        // does); the variant config drives the core run. Jobs
        // parallelize across the server pool, so each sampled run
        // is internally serial.
        SimConfig mcfg = opt.machine;
        const bool sampled = mcfg.sampleOps > 0;
        mcfg.sampleJobs = 1;
        EvalSizes sizes{opt.trainOps, opt.refOps};

        std::string regLabel;
        SimConfig vcfg = mcfg;
        bool isTagged = false;
        if (spec.variant == "ooo") {
            regLabel = "ooo";
            vcfg = baselineConfig(mcfg);
        } else if (spec.variant == "crisp") {
            regLabel = "crisp";
            isTagged = true;
            vcfg = crispConfig(mcfg);
        } else {
            regLabel = "ibda";
            vcfg = ibdaConfig(mcfg, spec.variant.substr(5));
        }

        std::shared_ptr<const Trace> trace;
        std::shared_ptr<const SampledWarmState> warm;
        if (isTagged) {
            trace = cache.taggedRefTrace(*wl, opt.analysis, mcfg,
                                         sizes.trainOps,
                                         sizes.refOps);
            if (sampled)
                warm = cache.warmStateTagged(*wl, opt.analysis,
                                             mcfg, sizes.trainOps,
                                             sizes.refOps);
        } else {
            trace = cache.trace(*wl, InputSet::Ref, sizes.refOps);
            if (sampled)
                warm = cache.warmState(
                    *wl, InputSet::Ref, sizes.refOps,
                    spec.variant == "ooo" ? mcfg : vcfg);
        }

        CoreStats total;
        std::vector<CoreStats> intervals;
        JobOutcome out;
        if (sampled) {
            SampledResult r =
                runCoreSampled(*trace, vcfg, warm.get(), nullptr,
                               nullptr, false, nullptr, &token);
            total = std::move(r.total);
            intervals = std::move(r.intervals);
            out.sampled = true;
            out.warmSeconds = r.warmSeconds;
            out.detailSeconds = r.detailSeconds;
            out.stitchSeconds = r.stitchSeconds;
        } else {
            total = runCore(*trace, vcfg, false, nullptr, nullptr,
                            nullptr, nullptr, &token);
        }

        // Registry layout matches crisp_sim's --stats-json for a
        // single-variant run byte for byte (serve_test and the CI
        // smoke diff them), including the per-interval breakdown of
        // sampled runs.
        StatRegistry reg;
        reg.addInfo("sim.workload", wl->name);
        reg.addInfo("sim.machine", opt.machine.describe());
        total.registerInto(reg, regLabel);
        for (size_t k = 0; k < intervals.size(); ++k)
            intervals[k].registerInto(
                reg,
                statPath(regLabel, "interval" + std::to_string(k)));

        out.ipc = total.ipc();
        out.statsJson = reg.toJson();
        return out;
    };
}

} // namespace crisp
