/**
 * @file
 * Unix-domain-socket transport for the sweep server.
 *
 * One ServeListener accepts connections on a filesystem socket and
 * runs each on its own thread: read a line, hand it to
 * handleRequestLine(), write the emitted lines back. The transport
 * knows nothing about ops — protocol.h owns the semantics — except
 * that a ShutdownServer action ends the accept loop.
 *
 * ServeClient is the matching blocking client (used by crisp_submit
 * and the end-to-end tests): connect, send a line, read lines.
 */

#ifndef CRISP_SERVE_TRANSPORT_H
#define CRISP_SERVE_TRANSPORT_H

#include <string>
#include <thread>
#include <vector>

#include "sim/sync.h"

namespace crisp
{

class SweepServer;

/** Accept loop + per-connection threads over an AF_UNIX socket. */
class ServeListener
{
  public:
    /** @param path filesystem socket path (unlinked on open/close) */
    ServeListener(SweepServer &server, std::string path);
    ~ServeListener();

    ServeListener(const ServeListener &) = delete;
    ServeListener &operator=(const ServeListener &) = delete;

    /** Binds and listens. @return false with @p *error set. */
    bool open(std::string *error);

    /**
     * Accepts and serves connections until stop() is called or a
     * connection's shutdown op lands. Runs on the caller's thread;
     * returns once the loop has ended and every connection thread
     * has been joined.
     */
    void run();

    /** Ends run() from another thread (idempotent). */
    void stop();

    /** @return the socket path. */
    const std::string &path() const { return path_; }

  private:
    void serveConnection(int fd);
    void closeClients();

    SweepServer &server_;
    std::string path_;
    int listenFd_ = -1;
    int wakePipe_[2] = {-1, -1};
    Mutex m_;
    bool stopping_ CRISP_GUARDED_BY(m_) = false;
    /** Owned by the accept thread only (emplaced and joined in
     *  run()); deliberately NOT guarded by m_ — the join loop runs
     *  lock-free because serveConnection() takes m_ to deregister
     *  its fd, and joining under the lock would deadlock with that. */
    std::vector<std::thread> connections_;
    std::vector<int> clientFds_ CRISP_GUARDED_BY(m_);
};

/** Blocking line-oriented client for the serve socket. */
class ServeClient
{
  public:
    ServeClient() = default;
    ~ServeClient();

    ServeClient(const ServeClient &) = delete;
    ServeClient &operator=(const ServeClient &) = delete;

    /** Connects to @p path. @return false with @p *error set. */
    bool connect(const std::string &path, std::string *error);

    /** Sends @p line + '\n'. @return false on a broken socket. */
    bool sendLine(const std::string &line);

    /** Receives one line (newline stripped). @return false on EOF
     *  or error. */
    bool recvLine(std::string &line);

    void close();

  private:
    int fd_ = -1;
    std::string buf_;
};

} // namespace crisp

#endif // CRISP_SERVE_TRANSPORT_H
