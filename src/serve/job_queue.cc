#include "serve/job_queue.h"

#include <algorithm>

namespace crisp
{

bool
JobQueue::push(QueueEntry e, bool bypassCapacity)
{
    MutexLock lk(m_);
    if (!bypassCapacity)
        spaceCv_.wait(lk, [&]() CRISP_REQUIRES(m_) {
            return closed_ || entries_.size() < capacity_;
        });
    if (closed_)
        return false;
    e.seq = nextSeq_++;
    entries_.push_back(std::move(e));
    ++gen_;
    readyCv_.notifyOne();
    return true;
}

std::list<QueueEntry>::iterator
JobQueue::bestReady(std::chrono::steady_clock::time_point now)
{
    auto best = entries_.end();
    for (auto it = entries_.begin(); it != entries_.end(); ++it) {
        if (it->notBefore > now)
            continue;
        if (best == entries_.end() ||
            it->priority > best->priority ||
            (it->priority == best->priority && it->seq < best->seq))
            best = it;
    }
    return best;
}

std::optional<QueueEntry>
JobQueue::pop()
{
    MutexLock lk(m_);
    for (;;) {
        auto now = std::chrono::steady_clock::now();
        auto best = bestReady(now);
        if (best != entries_.end()) {
            QueueEntry e = std::move(*best);
            entries_.erase(best);
            spaceCv_.notifyOne();
            return e;
        }
        if (closed_ && entries_.empty())
            return std::nullopt;
        // Sleep until the world changes (push/close bump gen_) or —
        // when only future backoff entries exist — the earliest one
        // matures. The predicate is a generation check, not an
        // eligibility check: eligibility depends on the clock, which
        // the timeout term covers, and re-running bestReady here
        // would duplicate the loop body.
        const uint64_t g0 = gen_;
        auto changed = [&]() CRISP_REQUIRES(m_) {
            return gen_ != g0 || closed_;
        };
        if (entries_.empty()) {
            readyCv_.wait(lk, changed);
        } else {
            auto earliest = entries_.front().notBefore;
            for (const QueueEntry &e : entries_)
                earliest = std::min(earliest, e.notBefore);
            readyCv_.waitUntil(lk, earliest, changed);
        }
    }
}

bool
JobQueue::remove(const std::string &jobId)
{
    MutexLock lk(m_);
    for (auto it = entries_.begin(); it != entries_.end(); ++it) {
        if (it->jobId == jobId) {
            entries_.erase(it);
            spaceCv_.notifyOne();
            return true;
        }
    }
    return false;
}

std::vector<QueueEntry>
JobQueue::drainAll()
{
    MutexLock lk(m_);
    std::vector<QueueEntry> out(
        std::make_move_iterator(entries_.begin()),
        std::make_move_iterator(entries_.end()));
    entries_.clear();
    spaceCv_.notifyAll();
    return out;
}

void
JobQueue::close()
{
    MutexLock lk(m_);
    closed_ = true;
    ++gen_;
    readyCv_.notifyAll();
    spaceCv_.notifyAll();
}

size_t
JobQueue::depth() const
{
    MutexLock lk(m_);
    return entries_.size();
}

} // namespace crisp
