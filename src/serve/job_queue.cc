#include "serve/job_queue.h"

#include <algorithm>

namespace crisp
{

bool
JobQueue::push(QueueEntry e, bool bypassCapacity)
{
    std::unique_lock<std::mutex> lk(m_);
    if (!bypassCapacity)
        spaceCv_.wait(lk, [&] {
            return closed_ || entries_.size() < capacity_;
        });
    if (closed_)
        return false;
    e.seq = nextSeq_++;
    entries_.push_back(std::move(e));
    readyCv_.notify_one();
    return true;
}

std::list<QueueEntry>::iterator
JobQueue::bestReady(std::chrono::steady_clock::time_point now)
{
    auto best = entries_.end();
    for (auto it = entries_.begin(); it != entries_.end(); ++it) {
        if (it->notBefore > now)
            continue;
        if (best == entries_.end() ||
            it->priority > best->priority ||
            (it->priority == best->priority && it->seq < best->seq))
            best = it;
    }
    return best;
}

std::optional<QueueEntry>
JobQueue::pop()
{
    std::unique_lock<std::mutex> lk(m_);
    for (;;) {
        auto now = std::chrono::steady_clock::now();
        auto best = bestReady(now);
        if (best != entries_.end()) {
            QueueEntry e = std::move(*best);
            entries_.erase(best);
            spaceCv_.notify_one();
            return e;
        }
        if (closed_ && entries_.empty())
            return std::nullopt;
        if (entries_.empty()) {
            readyCv_.wait(lk);
        } else {
            // Only future (backoff) entries exist: sleep until the
            // earliest matures or a new entry / close wakes us.
            auto earliest = entries_.front().notBefore;
            for (const QueueEntry &e : entries_)
                earliest = std::min(earliest, e.notBefore);
            readyCv_.wait_until(lk, earliest);
        }
    }
}

bool
JobQueue::remove(const std::string &jobId)
{
    std::lock_guard<std::mutex> lk(m_);
    for (auto it = entries_.begin(); it != entries_.end(); ++it) {
        if (it->jobId == jobId) {
            entries_.erase(it);
            spaceCv_.notify_one();
            return true;
        }
    }
    return false;
}

std::vector<QueueEntry>
JobQueue::drainAll()
{
    std::lock_guard<std::mutex> lk(m_);
    std::vector<QueueEntry> out(
        std::make_move_iterator(entries_.begin()),
        std::make_move_iterator(entries_.end()));
    entries_.clear();
    spaceCv_.notify_all();
    return out;
}

void
JobQueue::close()
{
    std::lock_guard<std::mutex> lk(m_);
    closed_ = true;
    readyCv_.notify_all();
    spaceCv_.notify_all();
}

size_t
JobQueue::depth() const
{
    std::lock_guard<std::mutex> lk(m_);
    return entries_.size();
}

} // namespace crisp
