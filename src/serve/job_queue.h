/**
 * @file
 * Bounded priority queue feeding the sweep server's worker pool.
 *
 * Entries are job IDs ordered by (priority desc, submission seq asc):
 * higher priority runs first, ties run in arrival order, so a
 * single-worker server executes a same-priority sweep exactly in
 * submission order. An entry may carry a notBefore time (retry
 * backoff); it is invisible to pop() until that time, and pop()
 * sleeps until the earliest future entry matures when nothing is
 * ready.
 *
 * The capacity bound is the server's backpressure: push() blocks the
 * submitting connection while the queue is full, so a flood of
 * submits degrades into a slow client instead of unbounded memory.
 * Retries bypass the bound (bypassCapacity) — a worker must never
 * block on the queue it is draining, or retries under a full queue
 * would deadlock the pool.
 */

#ifndef CRISP_SERVE_JOB_QUEUE_H
#define CRISP_SERVE_JOB_QUEUE_H

#include <chrono>
#include <cstdint>
#include <list>
#include <optional>
#include <string>
#include <vector>

#include "sim/sync.h"

namespace crisp
{

/** One queued job reference. */
struct QueueEntry
{
    std::string jobId;
    int priority = 0;
    uint64_t seq = 0; ///< assigned by the queue, arrival-ordered
    /** Entries stay invisible to pop() until this time (retry
     *  backoff); default = immediately eligible. */
    std::chrono::steady_clock::time_point notBefore{};
};

/** Bounded, closable priority queue of jobs (see file comment). */
class JobQueue
{
  public:
    /** @param cap capacity enforced on non-bypass push (>= 1). */
    explicit JobQueue(size_t cap) : capacity_(cap ? cap : 1) {}

    JobQueue(const JobQueue &) = delete;
    JobQueue &operator=(const JobQueue &) = delete;

    /**
     * Enqueues @p e (its seq is assigned here), blocking while the
     * queue is full unless @p bypassCapacity. @return false when the
     * queue was closed (entry not enqueued).
     */
    bool push(QueueEntry e, bool bypassCapacity = false);

    /**
     * Dequeues the highest-priority eligible entry, blocking until
     * one is eligible (sleeping until the earliest notBefore when
     * only future entries exist). @return nullopt once the queue is
     * closed and empty.
     */
    std::optional<QueueEntry> pop();

    /**
     * Removes the queued entry for @p jobId, if any (cancel before
     * start). @return true when an entry was removed.
     */
    bool remove(const std::string &jobId);

    /** Empties the queue. @return the removed entries (shutdown
     *  requeue accounting). */
    std::vector<QueueEntry> drainAll();

    /** Closes the queue: pending and future push() fail, pop()
     *  drains what is left then returns nullopt. */
    void close();

    /** @return current entry count (racy; monitoring only). */
    size_t depth() const;

    /** @return the capacity bound. */
    size_t capacity() const { return capacity_; }

  private:
    /** @return the best eligible entry's iterator, or end(). */
    std::list<QueueEntry>::iterator
    bestReady(std::chrono::steady_clock::time_point now)
        CRISP_REQUIRES(m_);

    const size_t capacity_;
    mutable Mutex m_;
    CondVar readyCv_; ///< pop() waits for entries
    CondVar spaceCv_; ///< push() waits for space
    std::list<QueueEntry> entries_ CRISP_GUARDED_BY(m_);
    uint64_t nextSeq_ CRISP_GUARDED_BY(m_) = 0;
    bool closed_ CRISP_GUARDED_BY(m_) = false;
    /** Bumped whenever the eligible set can have grown (push,
     *  close): pop()'s wait predicate is "the world changed since I
     *  computed bestReady", which a bare closed_/empty predicate
     *  cannot express — an entry pushed with an earlier notBefore
     *  while pop() sleeps toward a stale earliest deadline must
     *  wake it to recompute. */
    uint64_t gen_ CRISP_GUARDED_BY(m_) = 0;
};

} // namespace crisp

#endif // CRISP_SERVE_JOB_QUEUE_H
