/**
 * @file
 * The sweep server: a long-running simulation service (DESIGN.md §15).
 *
 * One SweepServer owns one ArtifactCache (optionally backed by the
 * on-disk warm store), one ThreadPool, and one job table. Every
 * submitted sweep expands into jobs that flow
 *
 *     Queued -> Running -> Done | Failed | Cancelled
 *                   \-> Queued (timeout / deadlock retry, backoff)
 *
 * through a bounded priority queue (serve/job_queue.h). Because every
 * job runs against the same cache, a sweep's variants share traces,
 * analyses and warm states exactly as evaluateAll()'s do — and so do
 * *separate requests*: the second client to ask for a workload gets
 * its artifacts for free. That residency is the reason the server
 * exists; crisp_sim pays the artifact cost once per process.
 *
 * Threading: a dispatcher thread pops the queue and feeds a
 * ThreadPool::Stream, holding a slot count so at most pool-size jobs
 * are in flight (the queue keeps its priority meaning — jobs are
 * handed over one slot ahead of execution, not dumped into the
 * pool). A monitor thread turns per-job deadlines into CancelToken
 * timeout fires. Connection threads only touch the job table and
 * queue, never the pool.
 */

#ifndef CRISP_SERVE_SERVER_H
#define CRISP_SERVE_SERVER_H

#include <atomic>
#include <chrono>
#include <cstdint>
#include <functional>
#include <memory>
#include <string>
#include <thread>
#include <unordered_map>
#include <vector>

#include "serve/job_queue.h"
#include "serve/protocol.h"
#include "sim/artifact_cache.h"
#include "sim/cancel.h"
#include "sim/stats.h"
#include "sim/sync.h"
#include "sim/thread_pool.h"

namespace crisp
{

class RuntimeTracer;
class WarmArtifactStore;

/** Server-level configuration (one per daemon). */
struct ServeConfig
{
    unsigned jobs = 0;         ///< worker count; 0 = hardware
    size_t queueCapacity = 64; ///< submit backpressure bound
    uint64_t defaultTimeoutMs = 0;  ///< per-attempt; 0 = none
    int defaultMaxRetries = 2;      ///< for timeout/deadlock deaths
    uint64_t retryBackoffMs = 100;  ///< first backoff; doubles
    /** Persistent warm-artifact directory (DESIGN.md §14); empty =
     *  in-memory only. */
    std::string artifactDir;
    uint64_t artifactMaxBytes = 0; ///< warm-store cap; 0 = unlimited
    /** Per-job result directory: <id>.json + manifest.ndjson per
     *  terminal job (crisp_report --from-server reads this layout);
     *  empty = results live only in memory. */
    std::string resultDir;
    /** Attach a RuntimeTracer for the daemon's lifetime: job
     *  lifecycle spans plus the pool/cache/warm-store/sampled spans,
     *  retrievable per job over the protocol ("trace" op). */
    bool traceRuntime = false;
};

/** What one finished job produced. */
struct JobOutcome
{
    double ipc = 0.0;
    /** Full StatRegistry JSON for the run — byte-identical to the
     *  --stats-json export of the equivalent crisp_sim invocation. */
    std::string statsJson;
    /** Sampled-pipeline phase timings (valid when sampled is set);
     *  feed the serve.phase.* latency histograms. */
    bool sampled = false;
    double warmSeconds = 0.0;
    double detailSeconds = 0.0;
    double stitchSeconds = 0.0;
};

/** Point-in-time public view of one job. */
struct JobStatus
{
    std::string id;
    std::string workload;
    std::string variant;
    JobState state = JobState::Queued;
    int attempts = 0;
    double ipc = 0.0;
    std::string error; ///< terminal failure reason (may be empty)
    /** Queued -> dispatched latency of the latest attempt; for a
     *  still-Queued job, time spent waiting so far (so a backed-up
     *  queue is visible before any job finishes). */
    double queueWaitMs = 0.0;
};

/** The daemon core. Transport-free; see serve/transport.h. */
class SweepServer
{
  public:
    /**
     * Executes one job against the shared cache. The default (when
     * the injected runner is empty) is simRunner(); tests inject
     * deterministic fakes to exercise retry/cancel accounting
     * without running the simulator.
     */
    using JobRunner = std::function<JobOutcome(
        const JobSpec &, ArtifactCache &, const CancelToken &)>;

    explicit SweepServer(ServeConfig cfg, JobRunner runner = {});
    ~SweepServer();

    SweepServer(const SweepServer &) = delete;
    SweepServer &operator=(const SweepServer &) = delete;

    /** Starts the dispatcher and timeout-monitor threads. */
    void start();

    /**
     * Graceful shutdown. With @p drain, blocks until every known job
     * is terminal (queued work runs). Without, never-started queued
     * jobs move to Requeued and only in-flight jobs are finished.
     * Idempotent; implied (drain = false) by the destructor.
     */
    void shutdown(bool drain);

    /** Result of one submit. */
    struct Submitted
    {
        std::vector<JobStatus> jobs; ///< one per grid point, in order
        size_t fresh = 0;   ///< newly created jobs
        size_t deduped = 0; ///< grid points matching existing jobs
    };

    /**
     * Expands and enqueues @p req. Sweep-level scheduling fields
     * default to the server's when zero. A grid point whose spec
     * matches an existing job is deduplicated (terminal Failed /
     * Requeued jobs are revived and re-run). Blocks while the queue
     * is full (backpressure). @return false with @p *error set when
     * the grid is invalid or the server is shutting down.
     */
    bool submit(const SweepRequest &req, Submitted &out,
                std::string *error);

    /** @return status of @p ids (empty = all jobs, ID-sorted).
     *  Unknown IDs yield state Failed with error "unknown job". */
    std::vector<JobStatus>
    status(const std::vector<std::string> &ids) const;

    /** Per-job cancel outcome. */
    struct CancelResult
    {
        std::string id;
        JobState state = JobState::Cancelled; ///< state after the op
        bool cancelled = false; ///< this call caused a cancellation
        bool unknown = false;
    };

    /**
     * Cancels @p ids: queued jobs are removed and finalized
     * immediately, running jobs get their token fired (the worker
     * finalizes them). Explicit cancellation is final — never
     * retried. Terminal jobs are left untouched.
     */
    std::vector<CancelResult>
    cancel(const std::vector<std::string> &ids);

    /** Blocks until every known job is terminal. */
    void drain();

    /** @return the serve.* metrics registry as JSON (jobs by state,
     *  retries, queue depth, cache hit/miss/in-flight counts, and
     *  the queue-wait / wall-time / phase latency histograms). */
    std::string metricsJson() const;

    /** @return true when the daemon runs with an attached
     *  RuntimeTracer (ServeConfig::traceRuntime). */
    bool tracing() const { return tracer_ != nullptr; }

    /**
     * @return the runtime trace as Chrome trace-event JSON; with a
     * non-empty @p jobId only events carrying that job arg (the
     * job's lifecycle chain). Empty string when tracing is off.
     */
    std::string traceJson(const std::string &jobId) const;

    /**
     * Copies @p id's event lines from index @p from, blocking until
     * at least one new line exists or the job is terminal.
     * @param terminal set when no further events will ever come
     * @return false when @p id is unknown
     */
    bool waitEvents(const std::string &id, size_t from,
                    std::vector<std::string> &out, bool &terminal);

    /** @return the process-wide artifact cache (shared by all jobs
     *  across all requests). */
    ArtifactCache &cache() { return cache_; }

    /** @return true while submit() accepts work. */
    bool accepting() const;

    /** @return the real simulation runner: cache-shared artifacts +
     *  runCore / runCoreSampled, mirroring evaluateAll()'s artifact
     *  keying so results are byte-identical to a direct run. */
    static JobRunner simRunner();

  private:
    struct JobRecord
    {
        JobSpec spec;
        JobState state = JobState::Queued;
        int attempts = 0;
        double ipc = 0.0;
        std::string error;
        std::string statsJson;
        /** Live while Running; cancel/timeout fire through it. */
        std::shared_ptr<CancelToken> token;
        std::chrono::steady_clock::time_point deadline{};
        bool hasDeadline = false;
        std::vector<std::string> events;
        bool terminal = false;
        /** First enqueue of the current submission (not reset by
         *  retries): lifecycle span anchor. */
        std::chrono::steady_clock::time_point submitTime{};
        /** Latest enqueue (submit, revive, or retry requeue):
         *  queue-wait measurement anchor. */
        std::chrono::steady_clock::time_point enqueueTime{};
        /** Queued -> dispatched latency of the latest attempt. */
        uint64_t queueWaitNs = 0;
    };

    /**
     * A snapshot of everything the result files need, captured under
     * m_ and written to disk strictly outside it. finishLocked used
     * to write the files itself, which put blocking disk I/O under
     * the job-table lock — every status/submit/cancel/waitEvents
     * stalled behind a slow disk. Durability ordering is preserved
     * by *when* callers flush the snapshot:
     *  - execute() writes terminal results BEFORE finalizing, so the
     *    <id>.json is on disk before any waitEvents waiter can
     *    observe the end event (the CI smoke and crisp_submit --wait
     *    rely on exactly that ordering);
     *  - cancel/shutdown/submit flush their (manifest-only) records
     *    after releasing m_ but before returning to the caller.
     */
    struct ResultRecord
    {
        JobSpec spec;
        JobState state = JobState::Queued;
        int attempts = 0;
        double ipc = 0.0;
        std::string error;
        std::string statsJson;
        double queueWaitMs = 0.0;
    };

    void dispatcherLoop();
    void monitorLoop();
    void execute(const std::string &id);
    /** Finalizes @p rec under m_: sets state, emits the result/end
     *  events, notifies waiters. Callers flush result files via
     *  captureResultLocked()/writeResultFiles() per the ResultRecord
     *  ordering contract. */
    void finishLocked(JobRecord &rec, JobState state,
                      const std::string &error) CRISP_REQUIRES(m_);
    void emitLocked(JobRecord &rec, std::string line)
        CRISP_REQUIRES(m_);
    /** Wakes the monitor to re-derive its earliest deadline. */
    void deadlinesChangedLocked() CRISP_REQUIRES(m_);
    /** @return @p rec's result-file snapshot (post-finalize). */
    ResultRecord captureResultLocked(const JobRecord &rec) const
        CRISP_REQUIRES(m_);
    /** Persists @p rec to resultDir (no-op when unset). Blocking
     *  disk I/O: must never run under m_. */
    void writeResultFiles(const ResultRecord &rec)
        CRISP_EXCLUDES(m_);
    static std::string eventState(const JobRecord &rec);

    ServeConfig cfg_;
    JobRunner runner_;
    /** Declared before the pool/cache/threads so it outlives every
     *  instrumented subsystem; active for the daemon's lifetime
     *  when cfg_.traceRuntime is set. */
    std::unique_ptr<RuntimeTracer> tracer_;
    ArtifactCache cache_;
    std::unique_ptr<WarmArtifactStore> warmStore_;
    ThreadPool pool_;
    std::unique_ptr<ThreadPool::Stream> stream_;
    JobQueue queue_;

    mutable Mutex m_;
    std::unordered_map<std::string, JobRecord> jobs_
        CRISP_GUARDED_BY(m_);
    CondVar stateCv_;  ///< terminal transitions
    CondVar eventCv_;  ///< new event lines
    CondVar monitorCv_; ///< deadlines changed
    bool accepting_ CRISP_GUARDED_BY(m_) = false;
    bool stopping_ CRISP_GUARDED_BY(m_) = false;
    bool monitorStop_ CRISP_GUARDED_BY(m_) = false;
    /** Bumped on every deadline-set change; the monitor's wait
     *  predicate compares generations, so a new earlier deadline
     *  arriving while it sleeps toward a stale earliest re-arms it
     *  (a bare monitorStop_ predicate would sleep through it). */
    uint64_t deadlineGen_ CRISP_GUARDED_BY(m_) = 0;
    Mutex resultM_; ///< serializes resultDir writes (leaf lock)

    /** Latency distributions (milliseconds).  histM_ is a leaf lock:
     *  workers add one sample per attempt after releasing m_, and
     *  metricsJson copies the histograms into its registry. */
    mutable Mutex histM_;
    Histogram queueWaitHist_ CRISP_GUARDED_BY(histM_){5.0, 200};
    Histogram wallHist_ CRISP_GUARDED_BY(histM_){100.0, 200};
    Histogram warmHist_ CRISP_GUARDED_BY(histM_){50.0, 200};
    Histogram detailHist_ CRISP_GUARDED_BY(histM_){50.0, 200};
    Histogram stitchHist_ CRISP_GUARDED_BY(histM_){5.0, 200};

    // Metrics (monotonic; queue depth and cache stats are live).
    std::atomic<uint64_t> submitted_{0};
    std::atomic<uint64_t> deduped_{0};
    std::atomic<uint64_t> retries_{0};
    std::atomic<uint64_t> timeouts_{0};
    std::atomic<uint64_t> deadlocks_{0};

    // In-flight slot accounting: the dispatcher blocks here so the
    // queue, not the pool's internal deque, holds waiting jobs.
    Mutex slotM_;
    CondVar slotCv_;
    unsigned freeSlots_ CRISP_GUARDED_BY(slotM_);

    std::thread dispatcher_;
    std::thread monitor_;
};

} // namespace crisp

#endif // CRISP_SERVE_SERVER_H
