/**
 * @file
 * TAGE direction predictor (Seznec, JILP 2006), the paper's baseline
 * branch predictor (CRISP Table 1).
 */

#ifndef CRISP_BP_TAGE_H
#define CRISP_BP_TAGE_H

#include <array>
#include <cstddef>
#include <cstdint>
#include <vector>

#include "bp/predictor.h"

namespace crisp
{

/**
 * A (partially-)TAgged GEometric-history-length predictor with a
 * bimodal base component and six tagged components over geometric
 * history lengths. Allocation, useful-bit aging and weak-provider
 * alternate prediction follow the standard TAGE recipe.
 */
class TagePredictor : public DirectionPredictor
{
  public:
    TagePredictor();

    bool predict(uint64_t pc) override;
    void update(uint64_t pc, bool taken) override;

    std::unique_ptr<DirectionPredictor> clone() const override
    {
        return std::make_unique<TagePredictor>(*this);
    }

    void serializeWarm(WarmSink &sink) const override;
    bool deserializeWarm(WarmSource &src) override;

    /** @return number of tagged components. */
    static constexpr unsigned numComponents() { return kNumTables; }

  private:
    static constexpr unsigned kNumTables = 6;
    static constexpr unsigned kLogEntries = 11;
    static constexpr unsigned kTagBits = 11;
    static constexpr unsigned kMaxHist = 256;

    struct Entry
    {
        int8_t ctr = 0;     ///< 3-bit signed counter [-4, 3]
        uint16_t tag = 0;
        uint8_t useful = 0; ///< 2-bit useful counter
    };

    struct FoldedHistory
    {
        uint32_t value = 0;
        unsigned origLen = 0;
        unsigned foldLen = 0;

        void setup(unsigned orig, unsigned fold)
        {
            origLen = orig;
            foldLen = fold;
            value = 0;
        }

        void push(bool bit, const std::vector<uint8_t> &ghr,
                  unsigned head);
    };

    std::array<std::vector<Entry>, kNumTables> tables_;
    std::array<unsigned, kNumTables> histLen_;
    std::array<FoldedHistory, kNumTables> idxHist_;
    std::array<FoldedHistory, kNumTables> tagHist1_;
    std::array<FoldedHistory, kNumTables> tagHist2_;
    std::vector<uint8_t> base_;     // bimodal 2-bit counters
    std::vector<uint8_t> ghr_;      // circular global history
    unsigned ghrHead_ = 0;
    uint64_t tick_ = 0;             // useful-bit aging clock

    // Prediction state carried from predict() to update().
    int providerTable_ = -1;
    int altTable_ = -1;
    bool providerPred_ = false;
    bool altPred_ = false;
    bool lastPred_ = false;
    uint64_t lastPc_ = 0;
    std::array<size_t, kNumTables> lastIdx_{};
    std::array<uint16_t, kNumTables> lastTag_{};

    size_t baseIndex(uint64_t pc) const
    {
        return (pc >> 1) & (base_.size() - 1);
    }
    size_t tableIndex(uint64_t pc, unsigned t) const;
    uint16_t tableTag(uint64_t pc, unsigned t) const;
    void pushHistory(bool taken);
};

} // namespace crisp

#endif // CRISP_BP_TAGE_H
