#include "bp/gshare.h"

#include "sim/warm_io.h"

namespace crisp
{

GsharePredictor::GsharePredictor(unsigned log_entries,
                                 unsigned hist_bits)
    : table_(1ULL << log_entries, 2),
      mask_((1ULL << log_entries) - 1),
      histMask_((1ULL << hist_bits) - 1)
{
}

bool
GsharePredictor::predict(uint64_t pc)
{
    return table_[indexOf(pc)] >= 2;
}

void
GsharePredictor::update(uint64_t pc, bool taken)
{
    uint8_t &ctr = table_[indexOf(pc)];
    if (taken && ctr < 3)
        ++ctr;
    else if (!taken && ctr > 0)
        --ctr;
    history_ = (history_ << 1) | (taken ? 1 : 0);
}

void
GsharePredictor::serializeWarm(WarmSink &sink) const
{
    sink.u64(table_.size());
    for (uint8_t ctr : table_)
        sink.u8(ctr);
    sink.u64(history_);
}

bool
GsharePredictor::deserializeWarm(WarmSource &src)
{
    if (src.u64() != table_.size()) {
        src.markFail();
        return false;
    }
    for (uint8_t &ctr : table_)
        ctr = src.u8();
    history_ = src.u64();
    return src.ok();
}

} // namespace crisp
