#include "bp/gshare.h"

namespace crisp
{

GsharePredictor::GsharePredictor(unsigned log_entries,
                                 unsigned hist_bits)
    : table_(1ULL << log_entries, 2),
      mask_((1ULL << log_entries) - 1),
      histMask_((1ULL << hist_bits) - 1)
{
}

bool
GsharePredictor::predict(uint64_t pc)
{
    return table_[indexOf(pc)] >= 2;
}

void
GsharePredictor::update(uint64_t pc, bool taken)
{
    uint8_t &ctr = table_[indexOf(pc)];
    if (taken && ctr < 3)
        ++ctr;
    else if (!taken && ctr > 0)
        --ctr;
    history_ = (history_ << 1) | (taken ? 1 : 0);
}

} // namespace crisp
