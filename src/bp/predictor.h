/**
 * @file
 * Conditional branch direction predictor interface.
 */

#ifndef CRISP_BP_PREDICTOR_H
#define CRISP_BP_PREDICTOR_H

#include <cstdint>
#include <memory>

namespace crisp
{

class WarmSink;
class WarmSource;

/**
 * Abstract direction predictor. Implementations keep their own global
 * history; callers must invoke update() exactly once per predicted
 * branch, in fetch order, with the resolved outcome.
 */
class DirectionPredictor
{
  public:
    virtual ~DirectionPredictor() = default;

    /** @return the predicted direction for the branch at @p pc. */
    virtual bool predict(uint64_t pc) = 0;

    /**
     * Trains with the resolved outcome and advances history.
     * @param pc the branch address
     * @param taken the actual direction
     */
    virtual void update(uint64_t pc, bool taken) = 0;

    /**
     * @return a deep copy carrying the full trained state (tables and
     *         history). Used by sampled simulation to hand warm
     *         predictor state to per-interval cores.
     */
    virtual std::unique_ptr<DirectionPredictor> clone() const = 0;

    /**
     * Serializes the trained state (tables, history, and the
     * predict()→update() carry registers) for the on-disk
     * warm-artifact tier (DESIGN.md §14).
     */
    virtual void serializeWarm(WarmSink &sink) const = 0;

    /**
     * Restores serializeWarm() content into this (same-geometry)
     * predictor. @return false on truncation or geometry mismatch.
     */
    virtual bool deserializeWarm(WarmSource &src) = 0;
};

} // namespace crisp

#endif // CRISP_BP_PREDICTOR_H
