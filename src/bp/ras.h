/**
 * @file
 * Return address stack.
 */

#ifndef CRISP_BP_RAS_H
#define CRISP_BP_RAS_H

#include <cstdint>
#include <vector>

namespace crisp
{

class WarmSink;
class WarmSource;

/** Fixed-depth circular return-address stack. */
class Ras
{
  public:
    /** @param depth number of entries. */
    explicit Ras(unsigned depth = 32) : stack_(depth, 0) {}

    /** Pushes the return address of a call. */
    void push(uint64_t return_pc)
    {
        top_ = (top_ + 1) % stack_.size();
        stack_[top_] = return_pc;
        if (size_ < stack_.size())
            ++size_;
    }

    /**
     * Pops the predicted return target.
     * @return the prediction, or 0 when empty.
     */
    uint64_t pop()
    {
        if (size_ == 0)
            return 0;
        uint64_t v = stack_[top_];
        top_ = (top_ + stack_.size() - 1) % stack_.size();
        --size_;
        return v;
    }

    /** @return current occupancy. */
    unsigned size() const { return size_; }

    /** Serializes stack contents and pointers for the on-disk
     *  warm-artifact tier (DESIGN.md §14). */
    void serializeWarm(WarmSink &sink) const;

    /** Restores serializeWarm() content. @return false on truncation
     *  or a depth mismatch. */
    bool deserializeWarm(WarmSource &src);

  private:
    std::vector<uint64_t> stack_;
    unsigned top_ = 0;
    unsigned size_ = 0;
};

} // namespace crisp

#endif // CRISP_BP_RAS_H
