#include "bp/ras.h"

#include "sim/warm_io.h"

namespace crisp
{

void
Ras::serializeWarm(WarmSink &sink) const
{
    sink.u64(stack_.size());
    sink.u64(top_);
    sink.u64(size_);
    for (uint64_t v : stack_)
        sink.u64(v);
}

bool
Ras::deserializeWarm(WarmSource &src)
{
    if (src.u64() != stack_.size()) {
        src.markFail();
        return false;
    }
    top_ = unsigned(src.u64());
    size_ = unsigned(src.u64());
    for (uint64_t &v : stack_)
        v = src.u64();
    return src.ok();
}

} // namespace crisp
