// Ras is header-only; this file keeps the build layout uniform.
#include "bp/ras.h"
