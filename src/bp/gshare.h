/**
 * @file
 * Gshare (global-history XOR PC) direction predictor.
 */

#ifndef CRISP_BP_GSHARE_H
#define CRISP_BP_GSHARE_H

#include <vector>

#include <cstddef>

#include "bp/predictor.h"

namespace crisp
{

/** Global-history XOR indexed 2-bit counter predictor. */
class GsharePredictor : public DirectionPredictor
{
  public:
    /**
     * @param log_entries log2 of the counter-table size
     * @param hist_bits history length folded into the index
     */
    explicit GsharePredictor(unsigned log_entries = 14,
                             unsigned hist_bits = 12);

    bool predict(uint64_t pc) override;
    void update(uint64_t pc, bool taken) override;

    std::unique_ptr<DirectionPredictor> clone() const override
    {
        return std::make_unique<GsharePredictor>(*this);
    }

    void serializeWarm(WarmSink &sink) const override;
    bool deserializeWarm(WarmSource &src) override;

  private:
    std::vector<uint8_t> table_;
    uint64_t mask_;
    uint64_t histMask_;
    uint64_t history_ = 0;

    size_t indexOf(uint64_t pc) const
    {
        return ((pc >> 1) ^ (history_ & histMask_)) & mask_;
    }
};

} // namespace crisp

#endif // CRISP_BP_GSHARE_H
