#include "bp/bimodal.h"

#include "sim/warm_io.h"

namespace crisp
{

BimodalPredictor::BimodalPredictor(unsigned log_entries)
    : table_(1ULL << log_entries, 2), mask_((1ULL << log_entries) - 1)
{
}

bool
BimodalPredictor::predict(uint64_t pc)
{
    return table_[indexOf(pc)] >= 2;
}

void
BimodalPredictor::update(uint64_t pc, bool taken)
{
    uint8_t &ctr = table_[indexOf(pc)];
    if (taken && ctr < 3)
        ++ctr;
    else if (!taken && ctr > 0)
        --ctr;
}

void
BimodalPredictor::serializeWarm(WarmSink &sink) const
{
    sink.u64(table_.size());
    for (uint8_t ctr : table_)
        sink.u8(ctr);
}

bool
BimodalPredictor::deserializeWarm(WarmSource &src)
{
    if (src.u64() != table_.size()) {
        src.markFail();
        return false;
    }
    for (uint8_t &ctr : table_)
        ctr = src.u8();
    return src.ok();
}

} // namespace crisp
