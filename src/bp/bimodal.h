/**
 * @file
 * Bimodal (per-PC 2-bit counter) direction predictor.
 */

#ifndef CRISP_BP_BIMODAL_H
#define CRISP_BP_BIMODAL_H

#include <vector>

#include <cstddef>

#include "bp/predictor.h"

namespace crisp
{

/** Classic per-PC saturating 2-bit counter table. */
class BimodalPredictor : public DirectionPredictor
{
  public:
    /** @param log_entries log2 of the counter-table size. */
    explicit BimodalPredictor(unsigned log_entries = 14);

    bool predict(uint64_t pc) override;
    void update(uint64_t pc, bool taken) override;

    std::unique_ptr<DirectionPredictor> clone() const override
    {
        return std::make_unique<BimodalPredictor>(*this);
    }

    void serializeWarm(WarmSink &sink) const override;
    bool deserializeWarm(WarmSource &src) override;

  private:
    std::vector<uint8_t> table_;
    uint64_t mask_;

    size_t indexOf(uint64_t pc) const { return (pc >> 1) & mask_; }
};

} // namespace crisp

#endif // CRISP_BP_BIMODAL_H
