/**
 * @file
 * Branch target buffer (8K entries in the paper's Table 1).
 */

#ifndef CRISP_BP_BTB_H
#define CRISP_BP_BTB_H

#include <cstdint>
#include <vector>

namespace crisp
{

/**
 * Set-associative BTB with true-LRU replacement. Stores the most
 * recent taken target per branch PC; also serves as the (last-target)
 * indirect branch predictor.
 */
class Btb
{
  public:
    /**
     * @param entries total entry count (default 8K per Table 1)
     * @param ways set associativity
     */
    explicit Btb(unsigned entries = 8192, unsigned ways = 4);

    /**
     * Looks up @p pc.
     * @param[out] target the stored target when found
     * @return true on hit.
     */
    bool lookup(uint64_t pc, uint64_t &target);

    /** Installs/refreshes the mapping @p pc -> @p target. */
    void update(uint64_t pc, uint64_t target);

    /** @return hit count since construction. */
    uint64_t hits() const { return hits_; }
    /** @return lookup count since construction. */
    uint64_t lookups() const { return lookups_; }

  private:
    struct Entry
    {
        uint64_t pc = 0;
        uint64_t target = 0;
        uint64_t lru = 0;
        bool valid = false;
    };

    std::vector<Entry> entries_;
    unsigned sets_;
    unsigned ways_;
    uint64_t clock_ = 0;
    uint64_t hits_ = 0;
    uint64_t lookups_ = 0;

    Entry *setBase(uint64_t pc)
    {
        return &entries_[(pc >> 1) % sets_ * ways_];
    }
};

} // namespace crisp

#endif // CRISP_BP_BTB_H
