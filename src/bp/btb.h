/**
 * @file
 * Branch target buffer (8K entries in the paper's Table 1).
 */

#ifndef CRISP_BP_BTB_H
#define CRISP_BP_BTB_H

#include <cstdint>
#include <vector>

namespace crisp
{

class WarmSink;
class WarmSource;

/**
 * Set-associative BTB with true-LRU replacement. Stores the most
 * recent taken target per branch PC; also serves as the (last-target)
 * indirect branch predictor.
 */
class Btb
{
  public:
    /**
     * @param entries total entry count (default 8K per Table 1)
     * @param ways set associativity
     */
    explicit Btb(unsigned entries = 8192, unsigned ways = 4);

    /**
     * Looks up @p pc.
     * @param[out] target the stored target when found
     * @return true on hit.
     */
    bool lookup(uint64_t pc, uint64_t &target);

    /** Installs/refreshes the mapping @p pc -> @p target. */
    void update(uint64_t pc, uint64_t target);

    /** @return hit count since construction. */
    uint64_t hits() const { return hits_; }
    /** @return lookup count since construction. */
    uint64_t lookups() const { return lookups_; }

    /** Serializes entries, LRU clock and hit/lookup counters for the
     *  on-disk warm-artifact tier (DESIGN.md §14). The counters ride
     *  along because adoption copies them (they are cumulative, not
     *  per-interval) — exactness over the round trip requires them. */
    void serializeWarm(WarmSink &sink) const;

    /** Restores serializeWarm() content. @return false on truncation
     *  or an entry-count mismatch. */
    bool deserializeWarm(WarmSource &src);

  private:
    struct Entry
    {
        uint64_t pc = 0;
        uint64_t target = 0;
        uint64_t lru = 0;
        bool valid = false;
    };

    std::vector<Entry> entries_;
    unsigned sets_;
    unsigned ways_;
    /** sets_ - 1 when sets_ is a power of two, else 0 (divide). */
    uint64_t setMask_ = 0;
    uint64_t clock_ = 0;
    uint64_t hits_ = 0;
    uint64_t lookups_ = 0;

    Entry *setBase(uint64_t pc)
    {
        uint64_t h = pc >> 1;
        uint64_t set = setMask_ ? (h & setMask_) : (h % sets_);
        return &entries_[std::size_t(set) * ways_];
    }
};

} // namespace crisp

#endif // CRISP_BP_BTB_H
