#include "bp/tage.h"

#include "sim/warm_io.h"

namespace crisp
{

void
TagePredictor::FoldedHistory::push(bool bit,
                                   const std::vector<uint8_t> &ghr,
                                   unsigned head)
{
    if (foldLen == 0)
        return;
    // Outgoing bit: the one that just left the origLen-bit window.
    // ghr is kMaxHist * 4 entries — a power of two by
    // construction — so the ring wrap is a mask, not a divide (18
    // folded pushes per update made `div` the top TAGE cost).
    unsigned n = static_cast<unsigned>(ghr.size());
    uint8_t out = ghr[(head + n - origLen) & (n - 1)];
    value = (value << 1) | (bit ? 1 : 0);
    value ^= uint32_t(out) << (origLen % foldLen);
    value ^= value >> foldLen;
    value &= (1u << foldLen) - 1;
}

TagePredictor::TagePredictor()
    : base_(1u << 13, 2), ghr_(kMaxHist * 4, 0)
{
    static_assert((kMaxHist * 4 & (kMaxHist * 4 - 1)) == 0,
                  "GHR ring wrap relies on a power-of-two size");
    constexpr unsigned lens[kNumTables] = {4, 8, 16, 32, 64, 128};
    for (unsigned t = 0; t < kNumTables; ++t) {
        histLen_[t] = lens[t];
        tables_[t].assign(1u << kLogEntries, Entry{});
        idxHist_[t].setup(lens[t], kLogEntries);
        tagHist1_[t].setup(lens[t], kTagBits);
        tagHist2_[t].setup(lens[t], kTagBits - 1);
    }
}

size_t
TagePredictor::tableIndex(uint64_t pc, unsigned t) const
{
    uint64_t h = (pc >> 1) ^ (pc >> (kLogEntries + t + 1)) ^
                 idxHist_[t].value;
    return h & ((1u << kLogEntries) - 1);
}

uint16_t
TagePredictor::tableTag(uint64_t pc, unsigned t) const
{
    uint64_t h = (pc >> 1) ^ tagHist1_[t].value ^
                 (uint64_t(tagHist2_[t].value) << 1);
    return static_cast<uint16_t>(h & ((1u << kTagBits) - 1));
}

bool
TagePredictor::predict(uint64_t pc)
{
    lastPc_ = pc;
    providerTable_ = -1;
    altTable_ = -1;

    for (unsigned t = 0; t < kNumTables; ++t) {
        lastIdx_[t] = tableIndex(pc, t);
        lastTag_[t] = tableTag(pc, t);
    }
    for (int t = kNumTables - 1; t >= 0; --t) {
        const Entry &e = tables_[t][lastIdx_[t]];
        if (e.tag == lastTag_[t]) {
            if (providerTable_ < 0) {
                providerTable_ = t;
            } else if (altTable_ < 0) {
                altTable_ = t;
                break;
            }
        }
    }

    bool base_pred = base_[baseIndex(pc)] >= 2;
    altPred_ = base_pred;
    if (altTable_ >= 0)
        altPred_ = tables_[altTable_][lastIdx_[altTable_]].ctr >= 0;

    if (providerTable_ >= 0) {
        const Entry &e = tables_[providerTable_][lastIdx_[providerTable_]];
        providerPred_ = e.ctr >= 0;
        // Weak, never-useful entries: trust the alternate prediction.
        bool weak = (e.ctr == 0 || e.ctr == -1) && e.useful == 0;
        lastPred_ = weak ? altPred_ : providerPred_;
    } else {
        providerPred_ = base_pred;
        lastPred_ = base_pred;
    }
    return lastPred_;
}

void
TagePredictor::update(uint64_t pc, bool taken)
{
    (void)pc; // state from the matching predict() call is used

    // Allocate on a mispredicting provider that is not the longest
    // history component.
    bool mispred = lastPred_ != taken;
    if (mispred && providerTable_ < int(kNumTables) - 1) {
        int start = providerTable_ + 1;
        int victim = -1;
        // Pseudo-random start for fairness between candidates.
        int offset = static_cast<int>(tick_ & 1);
        for (int t = start + offset; t < int(kNumTables); ++t) {
            if (tables_[t][lastIdx_[t]].useful == 0) {
                victim = t;
                break;
            }
        }
        if (victim < 0) {
            for (int t = start; t < int(kNumTables); ++t) {
                if (tables_[t][lastIdx_[t]].useful == 0) {
                    victim = t;
                    break;
                }
            }
        }
        if (victim >= 0) {
            Entry &e = tables_[victim][lastIdx_[victim]];
            e.tag = lastTag_[victim];
            e.ctr = taken ? 0 : -1;
            e.useful = 0;
        } else {
            for (int t = start; t < int(kNumTables); ++t) {
                Entry &e = tables_[t][lastIdx_[t]];
                if (e.useful > 0)
                    --e.useful;
            }
        }
    }

    // Train the provider (or the base component).
    if (providerTable_ >= 0) {
        Entry &e = tables_[providerTable_][lastIdx_[providerTable_]];
        if (taken && e.ctr < 3)
            ++e.ctr;
        else if (!taken && e.ctr > -4)
            --e.ctr;
        // Useful bit: provider differed from alternate.
        if (providerPred_ != altPred_) {
            if (providerPred_ == taken) {
                if (e.useful < 3)
                    ++e.useful;
            } else if (e.useful > 0) {
                --e.useful;
            }
        }
        // Also train the base when the provider entry is weak.
        if (e.useful == 0) {
            uint8_t &b = base_[baseIndex(lastPc_)];
            if (taken && b < 3)
                ++b;
            else if (!taken && b > 0)
                --b;
        }
    } else {
        uint8_t &b = base_[baseIndex(lastPc_)];
        if (taken && b < 3)
            ++b;
        else if (!taken && b > 0)
            --b;
    }

    // Periodic graceful aging of useful counters.
    if ((++tick_ & ((1u << 18) - 1)) == 0) {
        for (auto &table : tables_)
            for (auto &e : table)
                e.useful >>= 1;
    }

    pushHistory(taken);
}

void
TagePredictor::serializeWarm(WarmSink &sink) const
{
    sink.u64(base_.size());
    sink.u64(ghr_.size());
    for (const auto &table : tables_) {
        for (const Entry &e : table) {
            sink.u8(uint8_t(e.ctr));
            sink.u32(e.tag);
            sink.u8(e.useful);
        }
    }
    for (uint8_t b : base_)
        sink.u8(b);
    for (uint8_t b : ghr_)
        sink.u8(b);
    sink.u64(ghrHead_);
    sink.u64(tick_);
    for (unsigned t = 0; t < kNumTables; ++t) {
        sink.u32(idxHist_[t].value);
        sink.u32(tagHist1_[t].value);
        sink.u32(tagHist2_[t].value);
    }
    // predict()→update() carry registers: a snapshot can land between
    // the two calls, so the pair must survive the round trip intact.
    sink.i64(providerTable_);
    sink.i64(altTable_);
    sink.b(providerPred_);
    sink.b(altPred_);
    sink.b(lastPred_);
    sink.u64(lastPc_);
    for (size_t i : lastIdx_)
        sink.u64(i);
    for (uint16_t t : lastTag_)
        sink.u32(t);
}

bool
TagePredictor::deserializeWarm(WarmSource &src)
{
    if (src.u64() != base_.size() || src.u64() != ghr_.size()) {
        src.markFail();
        return false;
    }
    for (auto &table : tables_) {
        for (Entry &e : table) {
            e.ctr = int8_t(src.u8());
            e.tag = uint16_t(src.u32());
            e.useful = src.u8();
        }
    }
    for (uint8_t &b : base_)
        b = src.u8();
    for (uint8_t &b : ghr_)
        b = src.u8();
    ghrHead_ = unsigned(src.u64());
    tick_ = src.u64();
    for (unsigned t = 0; t < kNumTables; ++t) {
        idxHist_[t].value = src.u32();
        tagHist1_[t].value = src.u32();
        tagHist2_[t].value = src.u32();
    }
    providerTable_ = int(src.i64());
    altTable_ = int(src.i64());
    providerPred_ = src.b();
    altPred_ = src.b();
    lastPred_ = src.b();
    lastPc_ = src.u64();
    for (size_t &i : lastIdx_)
        i = size_t(src.u64());
    for (uint16_t &t : lastTag_)
        t = uint16_t(src.u32());
    return src.ok();
}

void
TagePredictor::pushHistory(bool taken)
{
    ghrHead_ = (ghrHead_ + 1) & unsigned(ghr_.size() - 1);
    ghr_[ghrHead_] = taken ? 1 : 0;
    for (unsigned t = 0; t < kNumTables; ++t) {
        idxHist_[t].push(taken, ghr_, ghrHead_);
        tagHist1_[t].push(taken, ghr_, ghrHead_);
        tagHist2_[t].push(taken, ghr_, ghrHead_);
    }
}

} // namespace crisp
