#include "bp/btb.h"

#include <bit>

#include "sim/warm_io.h"

namespace crisp
{

Btb::Btb(unsigned entries, unsigned ways)
    : entries_(entries), sets_(entries / ways), ways_(ways)
{
    if (std::has_single_bit(uint64_t(sets_)))
        setMask_ = uint64_t(sets_) - 1;
}

bool
Btb::lookup(uint64_t pc, uint64_t &target)
{
    ++lookups_;
    Entry *set = setBase(pc);
    for (unsigned w = 0; w < ways_; ++w) {
        if (set[w].valid && set[w].pc == pc) {
            set[w].lru = ++clock_;
            target = set[w].target;
            ++hits_;
            return true;
        }
    }
    return false;
}

void
Btb::update(uint64_t pc, uint64_t target)
{
    Entry *set = setBase(pc);
    Entry *victim = &set[0];
    for (unsigned w = 0; w < ways_; ++w) {
        if (set[w].valid && set[w].pc == pc) {
            set[w].target = target;
            set[w].lru = ++clock_;
            return;
        }
        if (!set[w].valid) {
            victim = &set[w];
        } else if (victim->valid && set[w].lru < victim->lru) {
            victim = &set[w];
        }
    }
    victim->valid = true;
    victim->pc = pc;
    victim->target = target;
    victim->lru = ++clock_;
}

void
Btb::serializeWarm(WarmSink &sink) const
{
    sink.u64(entries_.size());
    sink.u64(clock_);
    sink.u64(hits_);
    sink.u64(lookups_);
    for (const Entry &e : entries_) {
        sink.u64(e.pc);
        sink.u64(e.target);
        sink.u64(e.lru);
        sink.b(e.valid);
    }
}

bool
Btb::deserializeWarm(WarmSource &src)
{
    if (src.u64() != entries_.size()) {
        src.markFail();
        return false;
    }
    clock_ = src.u64();
    hits_ = src.u64();
    lookups_ = src.u64();
    for (Entry &e : entries_) {
        e.pc = src.u64();
        e.target = src.u64();
        e.lru = src.u64();
        e.valid = src.b();
    }
    return src.ok();
}

} // namespace crisp
