#include "bp/btb.h"

namespace crisp
{

Btb::Btb(unsigned entries, unsigned ways)
    : entries_(entries), sets_(entries / ways), ways_(ways)
{
}

bool
Btb::lookup(uint64_t pc, uint64_t &target)
{
    ++lookups_;
    Entry *set = setBase(pc);
    for (unsigned w = 0; w < ways_; ++w) {
        if (set[w].valid && set[w].pc == pc) {
            set[w].lru = ++clock_;
            target = set[w].target;
            ++hits_;
            return true;
        }
    }
    return false;
}

void
Btb::update(uint64_t pc, uint64_t target)
{
    Entry *set = setBase(pc);
    Entry *victim = &set[0];
    for (unsigned w = 0; w < ways_; ++w) {
        if (set[w].valid && set[w].pc == pc) {
            set[w].target = target;
            set[w].lru = ++clock_;
            return;
        }
        if (!set[w].valid) {
            victim = &set[w];
        } else if (victim->valid && set[w].lru < victim->lru) {
            victim = &set[w];
        }
    }
    victim->valid = true;
    victim->pc = pc;
    victim->target = target;
    victim->lru = ++clock_;
}

} // namespace crisp
