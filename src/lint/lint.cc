#include "lint/lint.h"

#include <algorithm>
#include <cctype>
#include <filesystem>
#include <fstream>
#include <set>
#include <sstream>
#include <utility>

#include "telemetry/json.h"

namespace crisp
{
namespace lint
{

namespace
{

namespace fs = std::filesystem;

const char *const kRuleBlocking = "blocking-under-lock";
const char *const kRulePredicate = "wait-needs-predicate";
const char *const kRuleCancel = "cancel-token-acquire";
const char *const kRuleStatReg = "stat-registration-after-thread-start";
const char *const kRuleSerialize = "serialize-under-lock";

/** One lexical token (comments, strings and preprocessor lines are
 *  consumed by the tokenizer; string/char literals come through as
 *  the placeholder "@str" so argument counting still sees them). */
struct Token
{
    std::string text;
    int line = 0;
};

/** Tokenizer output: the token stream plus the suppressions the
 *  comments declared. */
struct Lexed
{
    std::vector<Token> tokens;
    /** (line, rule) pairs silenced by crisp-lint: allow(...) —
     *  each directive covers its own line and the next. */
    std::set<std::pair<int, std::string>> allowed;
};

bool
isIdentChar(char c)
{
    return std::isalnum(static_cast<unsigned char>(c)) || c == '_';
}

/** Parses "crisp-lint: allow(rule1,rule2)" out of a comment body. */
void
collectAllows(const std::string &comment, int line, Lexed &out)
{
    const std::string tag = "crisp-lint:";
    size_t at = comment.find(tag);
    if (at == std::string::npos)
        return;
    size_t open = comment.find("allow(", at);
    if (open == std::string::npos)
        return;
    size_t close = comment.find(')', open);
    if (close == std::string::npos)
        return;
    std::string list =
        comment.substr(open + 6, close - (open + 6));
    std::string rule;
    std::istringstream is(list);
    while (std::getline(is, rule, ',')) {
        size_t b = rule.find_first_not_of(" \t");
        size_t e = rule.find_last_not_of(" \t");
        if (b == std::string::npos)
            continue;
        rule = rule.substr(b, e - b + 1);
        out.allowed.insert({line, rule});
        out.allowed.insert({line + 1, rule});
    }
}

Lexed
tokenize(const std::string &text)
{
    Lexed out;
    int line = 1;
    size_t i = 0;
    const size_t n = text.size();
    bool atLineStart = true; // only whitespace seen on this line

    auto newline = [&] {
        ++line;
        atLineStart = true;
    };

    while (i < n) {
        char c = text[i];
        if (c == '\n') {
            newline();
            ++i;
            continue;
        }
        if (std::isspace(static_cast<unsigned char>(c))) {
            ++i;
            continue;
        }
        // Preprocessor directive: swallow the logical line.
        if (c == '#' && atLineStart) {
            while (i < n) {
                if (text[i] == '\\' && i + 1 < n &&
                    text[i + 1] == '\n') {
                    newline();
                    i += 2;
                    continue;
                }
                if (text[i] == '\n')
                    break;
                ++i;
            }
            continue;
        }
        atLineStart = false;
        // Comments.
        if (c == '/' && i + 1 < n && text[i + 1] == '/') {
            size_t end = text.find('\n', i);
            if (end == std::string::npos)
                end = n;
            collectAllows(text.substr(i, end - i), line, out);
            i = end;
            continue;
        }
        if (c == '/' && i + 1 < n && text[i + 1] == '*') {
            size_t start = i;
            int startLine = line;
            i += 2;
            while (i + 1 < n &&
                   !(text[i] == '*' && text[i + 1] == '/')) {
                if (text[i] == '\n')
                    newline();
                ++i;
            }
            i = std::min(i + 2, n);
            collectAllows(text.substr(start, i - start), startLine,
                          out);
            continue;
        }
        // Raw string literal: R"delim( ... )delim".
        if (c == 'R' && i + 1 < n && text[i + 1] == '"') {
            size_t p = i + 2;
            std::string delim;
            while (p < n && text[p] != '(')
                delim += text[p++];
            std::string closer = ")" + delim + "\"";
            size_t end = text.find(closer, p);
            if (end == std::string::npos)
                end = n;
            else
                end += closer.size();
            for (size_t k = i; k < end; ++k)
                if (text[k] == '\n')
                    newline();
            out.tokens.push_back({"@str", line});
            i = end;
            continue;
        }
        // String / char literals.
        if (c == '"' || c == '\'') {
            char quote = c;
            size_t p = i + 1;
            while (p < n && text[p] != quote) {
                if (text[p] == '\\' && p + 1 < n)
                    ++p;
                if (text[p] == '\n')
                    newline();
                ++p;
            }
            out.tokens.push_back({"@str", line});
            i = std::min(p + 1, n);
            continue;
        }
        // Identifiers / keywords.
        if (isIdentChar(c) &&
            !std::isdigit(static_cast<unsigned char>(c))) {
            size_t p = i;
            while (p < n && isIdentChar(text[p]))
                ++p;
            out.tokens.push_back(
                {text.substr(i, p - i), line});
            i = p;
            continue;
        }
        // Numbers (incl. hex and digit separators).
        if (std::isdigit(static_cast<unsigned char>(c))) {
            size_t p = i;
            while (p < n && (isIdentChar(text[p]) ||
                             text[p] == '\'' || text[p] == '.'))
                ++p;
            out.tokens.push_back({"@num", line});
            i = p;
            continue;
        }
        // Two-char operators the rules care about.
        if (i + 1 < n) {
            std::string two = text.substr(i, 2);
            if (two == "::" || two == "->") {
                out.tokens.push_back({two, line});
                i += 2;
                continue;
            }
        }
        out.tokens.push_back({std::string(1, c), line});
        ++i;
    }
    return out;
}

/** Names whose declaration opens a scoped lock region. */
bool
isGuardType(const std::string &t)
{
    return t == "MutexLock" || t == "lock_guard" ||
           t == "unique_lock" || t == "scoped_lock" ||
           t == "shared_lock";
}

/** @return index just past a balanced <...> starting at @p i (which
 *  must point at '<'), or @p i when it does not close within a
 *  sane window (comparison operator, not template args). */
size_t
skipTemplateArgs(const std::vector<Token> &toks, size_t i)
{
    int depth = 0;
    for (size_t p = i; p < toks.size() && p < i + 64; ++p) {
        if (toks[p].text == "<")
            ++depth;
        else if (toks[p].text == ">") {
            if (--depth == 0)
                return p + 1;
        } else if (toks[p].text == ";" || toks[p].text == "{")
            break;
    }
    return i;
}

/** Counts top-level call arguments starting at the '(' at @p open.
 *  @return argument count, or -1 when the parens never balance. */
int
countCallArgs(const std::vector<Token> &toks, size_t open)
{
    int paren = 0, bracket = 0, brace = 0;
    int args = 0;
    bool sawAny = false;
    for (size_t p = open; p < toks.size(); ++p) {
        const std::string &t = toks[p].text;
        if (t == "(") {
            ++paren;
        } else if (t == ")") {
            if (--paren == 0)
                return sawAny ? args + 1 : 0;
        } else if (t == "[")
            ++bracket;
        else if (t == "]")
            --bracket;
        else if (t == "{")
            ++brace;
        else if (t == "}")
            --brace;
        else {
            sawAny = true;
            if (t == "," && paren == 1 && bracket == 0 &&
                brace == 0)
                ++args;
        }
    }
    return -1;
}

std::string
lowered(const std::string &s)
{
    std::string out = s;
    std::transform(out.begin(), out.end(), out.begin(),
                   [](unsigned char c) {
                       return char(std::tolower(c));
                   });
    return out;
}

/** An active scoped-lock guard. */
struct Guard
{
    int depth = 0;
    int line = 0;
};

class Checker
{
  public:
    Checker(std::string path, const std::string &text)
        : path_(std::move(path)), lexed_(tokenize(text)),
          definesCancelToken_(text.find("class CancelToken") !=
                              std::string::npos)
    {
    }

    std::vector<Diagnostic> run()
    {
        const std::vector<Token> &toks = lexed_.tokens;
        for (size_t i = 0; i < toks.size(); ++i) {
            const std::string &t = toks[i].text;
            if (t == "{") {
                ++depth_;
                stmtStart_ = i + 1;
            } else if (t == "}") {
                --depth_;
                while (!guards_.empty() &&
                       guards_.back().depth > depth_)
                    guards_.pop_back();
                if (threadDepth_ >= 0 && depth_ < threadDepth_)
                    threadDepth_ = -1;
                if (depth_ <= 1)
                    localRegistries_.clear();
                stmtStart_ = i + 1;
            } else if (t == ";") {
                stmtStart_ = i + 1;
            }

            checkGuardDecl(i);
            checkThreadStart(i);
            checkRegistryDecl(i);
            checkBlocking(i);
            checkWaitPredicate(i);
            checkCancelOrder(i);
            checkSerializeUnderLock(i);
            checkStatRegistration(i);
        }
        std::sort(diags_.begin(), diags_.end(),
                  [](const Diagnostic &a, const Diagnostic &b) {
                      return std::tie(a.path, a.line, a.rule,
                                      a.message) <
                             std::tie(b.path, b.line, b.rule,
                                      b.message);
                  });
        diags_.erase(
            std::unique(diags_.begin(), diags_.end(),
                        [](const Diagnostic &a,
                           const Diagnostic &b) {
                            return a.path == b.path &&
                                   a.line == b.line &&
                                   a.rule == b.rule &&
                                   a.message == b.message;
                        }),
            diags_.end());
        return std::move(diags_);
    }

  private:
    const std::vector<Token> &toks() const { return lexed_.tokens; }

    void report(int line, const char *rule, std::string message)
    {
        if (lexed_.allowed.count({line, rule}))
            return;
        diags_.push_back({path_, line, rule, std::move(message)});
    }

    /** MutexLock lk(m_); / std::lock_guard<std::mutex> lk(m_); */
    void checkGuardDecl(size_t i)
    {
        if (!isGuardType(toks()[i].text))
            return;
        size_t p = i + 1;
        if (p < toks().size() && toks()[p].text == "<") {
            size_t q = skipTemplateArgs(toks(), p);
            if (q == p)
                return; // '<' that never closes: a comparison
            p = q;
        }
        if (p >= toks().size())
            return;
        const std::string &name = toks()[p].text;
        if (name.empty() || !isIdentChar(name[0]) ||
            name == "@str" || name == "@num")
            return;
        size_t q = p + 1;
        if (q < toks().size() &&
            (toks()[q].text == "(" || toks()[q].text == "{"))
            guards_.push_back({depth_, toks()[i].line});
    }

    /** std::thread t(...); / member_ = std::thread(...); */
    void checkThreadStart(size_t i)
    {
        if (toks()[i].text != "std" || i + 2 >= toks().size())
            return;
        if (toks()[i + 1].text != "::" ||
            toks()[i + 2].text != "thread")
            return;
        size_t p = i + 3;
        if (p >= toks().size())
            return;
        bool constructs = false;
        if (toks()[p].text == "(" || toks()[p].text == "{") {
            constructs = true; // temporary: std::thread([...]{...})
        } else if (isIdentChar(toks()[p].text[0]) &&
                   p + 1 < toks().size() &&
                   (toks()[p + 1].text == "(" ||
                    toks()[p + 1].text == "{")) {
            constructs = true; // named: std::thread t(...)
        }
        if (constructs &&
            (threadDepth_ < 0 || depth_ < threadDepth_))
            threadDepth_ = depth_;
    }

    /** StatRegistry reg; — a local registry no other thread sees. */
    void checkRegistryDecl(size_t i)
    {
        if (toks()[i].text != "StatRegistry" ||
            i + 1 >= toks().size())
            return;
        const std::string &name = toks()[i + 1].text;
        if (!name.empty() && isIdentChar(name[0]) &&
            name != "@str" && name != "@num")
            localRegistries_.insert(name);
    }

    void checkBlocking(size_t i)
    {
        if (guards_.empty())
            return;
        const std::string &t = toks()[i].text;
        const int line = toks()[i].line;
        const int guardLine = guards_.back().line;
        auto held = [&](const std::string &what) {
            report(line, kRuleBlocking,
                   "blocking call '" + what +
                       "' while holding a lock (guard declared "
                       "line " +
                       std::to_string(guardLine) + ")");
        };

        bool afterMember =
            i > 0 &&
            (toks()[i - 1].text == "." ||
             toks()[i - 1].text == "->");
        bool callNext = i + 1 < toks().size() &&
                        toks()[i + 1].text == "(";

        if (afterMember && callNext && t == "submit")
            held("ThreadPool submit");
        else if (callNext &&
                 (t == "parallelFor" || t == "waitEvents"))
            held(t);
        else if (callNext && i > 0 && toks()[i - 1].text == "::" &&
                 (t == "send" || t == "recv" || t == "accept" ||
                  t == "connect" || t == "poll" || t == "select"))
            held("socket " + t);
        else if (t == "ofstream")
            held("file write (ofstream)");
        else if (callNext && (t == "fopen" || t == "fwrite" ||
                              t == "fputs" || t == "fprintf"))
            held("file write (" + t + ")");
        else if (afterMember && callNext &&
                 (t == "push" || t == "pop") && i >= 2) {
            std::string recv = lowered(toks()[i - 2].text);
            if (recv.find("queue") != std::string::npos)
                held("queue " + t);
        }
    }

    void checkWaitPredicate(size_t i)
    {
        const std::string &t = toks()[i].text;
        bool afterMember =
            i > 0 &&
            (toks()[i - 1].text == "." ||
             toks()[i - 1].text == "->");
        if (!afterMember || i + 1 >= toks().size() ||
            toks()[i + 1].text != "(")
            return;
        int args = countCallArgs(toks(), i + 1);
        if (t == "wait" && args == 1)
            report(toks()[i].line, kRulePredicate,
                   "condition wait without a predicate (spurious "
                   "wakeups and missed notifies go unchecked)");
        else if ((t == "wait_for" || t == "wait_until" ||
                  t == "waitFor" || t == "waitUntil") &&
                 args == 2)
            report(toks()[i].line, kRulePredicate,
                   "timed condition wait '" + t +
                       "' without a predicate (a stale deadline "
                       "sleeps through state changes)");
    }

    void checkCancelOrder(size_t i)
    {
        if (toks()[i].text != "memory_order_relaxed")
            return;
        if (definesCancelToken_) {
            report(toks()[i].line, kRuleCancel,
                   "CancelToken must use acquire/release ordering "
                   "(memory_order_relaxed breaks the happens-before "
                   "edge from the controller's pre-cancel writes)");
            return;
        }
        for (size_t p = stmtStart_; p < i; ++p) {
            if (lowered(toks()[p].text).find("cancel") !=
                std::string::npos) {
                report(toks()[i].line, kRuleCancel,
                       "cancellation poll uses "
                       "memory_order_relaxed; poll sites must use "
                       "acquire semantics");
                return;
            }
        }
    }

    /** toJson()/writeCsv()/... inside a scoped lock guard. The
     *  serializers are O(data) string builders (the write* forms
     *  also hit the filesystem); holding a mutex across one convoys
     *  every other acquirer. Snapshot under the lock, serialize
     *  outside it. */
    void checkSerializeUnderLock(size_t i)
    {
        if (guards_.empty())
            return;
        const std::string &t = toks()[i].text;
        if (i + 1 >= toks().size() || toks()[i + 1].text != "(")
            return;
        if (t != "toJson" && t != "toCsv" && t != "writeJson" &&
            t != "writeCsv")
            return;
        report(toks()[i].line, kRuleSerialize,
               "serializer '" + t +
                   "' called while holding a lock (guard declared "
                   "line " +
                   std::to_string(guards_.back().line) +
                   "); snapshot the data under the lock and "
                   "serialize outside it");
    }

    void checkStatRegistration(size_t i)
    {
        if (threadDepth_ < 0)
            return;
        const std::string &t = toks()[i].text;
        if (i + 1 >= toks().size() || toks()[i + 1].text != "(")
            return;
        const bool isReg =
            t == "addCounter" || t == "addScalar" ||
            t == "addInfo" || t == "addHistogram" ||
            t == "addTable" || t == "registerInto";
        if (!isReg)
            return;
        if (i >= 2 && (toks()[i - 1].text == "." ||
                       toks()[i - 1].text == "->")) {
            const std::string &recv = toks()[i - 2].text;
            if (localRegistries_.count(recv))
                return; // local registry; the new thread can't see it
        }
        report(toks()[i].line, kRuleStatReg,
               "StatRegistry registration after a std::thread was "
               "started in this scope (registration is "
               "single-threaded setup)");
    }

    std::string path_;
    Lexed lexed_;
    bool definesCancelToken_;

    int depth_ = 0;
    size_t stmtStart_ = 0;
    std::vector<Guard> guards_;
    int threadDepth_ = -1; ///< depth of the live std::thread trigger
    std::set<std::string> localRegistries_;
    std::vector<Diagnostic> diags_;
};

} // namespace

std::vector<std::string>
ruleNames()
{
    return {kRuleBlocking, kRulePredicate, kRuleCancel,
            kRuleStatReg, kRuleSerialize};
}

std::vector<Diagnostic>
lintSource(const std::string &path, const std::string &text)
{
    return Checker(path, text).run();
}

std::vector<Diagnostic>
lintFile(const std::string &path)
{
    std::ifstream in(path, std::ios::binary);
    if (!in)
        return {{path, 0, "io-error", "cannot open file"}};
    std::string text((std::istreambuf_iterator<char>(in)),
                     std::istreambuf_iterator<char>());
    return lintSource(path, text);
}

bool
filesFromCompileCommands(const std::string &path,
                         std::vector<std::string> &files,
                         std::string *error)
{
    std::ifstream in(path, std::ios::binary);
    if (!in) {
        if (error)
            *error = "cannot open " + path;
        return false;
    }
    std::string text((std::istreambuf_iterator<char>(in)),
                     std::istreambuf_iterator<char>());
    JsonValue doc;
    std::string jsonErr;
    if (!parseJson(text, doc, &jsonErr) || !doc.isArray()) {
        if (error)
            *error = path + ": not a compile database (" +
                     (jsonErr.empty() ? "expected a JSON array"
                                      : jsonErr) +
                     ")";
        return false;
    }

    auto firstParty = [](const std::string &p) {
        if (p.find("/CMakeFiles/") != std::string::npos)
            return false;
        return p.find("/src/") != std::string::npos ||
               p.find("/tools/") != std::string::npos;
    };

    std::set<std::string> seen;
    std::set<std::string> dirs;
    for (const JsonValue &entry : doc.elements) {
        if (!entry.isObject() || !entry.has("file"))
            continue;
        std::string file = entry.at("file").text;
        if (!file.empty() && file[0] != '/' &&
            entry.has("directory"))
            file = entry.at("directory").text + "/" + file;
        file = fs::path(file).lexically_normal().string();
        if (!firstParty(file))
            continue;
        if (seen.insert(file).second)
            files.push_back(file);
        dirs.insert(fs::path(file).parent_path().string());
    }
    // Headers never appear as translation units; lint every sibling
    // header of a first-party TU directory so sync.h, cancel.h and
    // friends are covered.
    for (const std::string &dir : dirs) {
        std::error_code ec;
        std::vector<std::string> headers;
        for (const auto &de : fs::directory_iterator(dir, ec)) {
            if (!de.is_regular_file(ec))
                continue;
            std::string p =
                de.path().lexically_normal().string();
            if (de.path().extension() == ".h" && firstParty(p))
                headers.push_back(p);
        }
        std::sort(headers.begin(), headers.end());
        for (const std::string &h : headers)
            if (seen.insert(h).second)
                files.push_back(h);
    }
    std::sort(files.begin(), files.end());
    return true;
}

std::string
formatDiagnostic(const Diagnostic &d)
{
    return d.path + ":" + std::to_string(d.line) + ": error: [" +
           d.rule + "] " + d.message;
}

} // namespace lint
} // namespace crisp
