/**
 * @file
 * crisp_lint: repo-specific static concurrency checks (DESIGN.md §16).
 *
 * Clang Thread Safety Analysis proves which lock guards which data;
 * this checker enforces the invariants TSA cannot express — rules
 * about *what a thread does while holding a lock* and about the
 * idioms the repo has standardized on:
 *
 *   blocking-under-lock     No blocking call while a scoped lock
 *                           guard is live: ThreadPool submission,
 *                           socket I/O, waitEvents, file writes, and
 *                           queue push/pop all park the thread for
 *                           unbounded time, and doing so under a
 *                           Mutex turns every other acquirer into a
 *                           convoy (the exact defect PR 9 fixed in
 *                           SweepServer::finishLocked).
 *   wait-needs-predicate    Every condition wait states its
 *                           predicate: a bare wait()/wait_until()
 *                           re-scan loop is where missed-wakeup bugs
 *                           live. crisp::CondVar makes the predicate
 *                           mandatory; this rule catches code that
 *                           bypasses the wrapper.
 *   cancel-token-acquire    CancelToken polls synchronize with the
 *                           controller's pre-cancel writes, so every
 *                           poll site must use acquire semantics —
 *                           no memory_order_relaxed near the token.
 *   stat-registration-after-thread-start
 *                           StatRegistry registration is
 *                           single-threaded setup; once a function
 *                           has constructed a std::thread, further
 *                           registrations on non-local registries
 *                           race the new thread's reads.
 *   serialize-under-lock    No document serialization while a scoped
 *                           lock guard is live: toJson/toCsv/
 *                           writeJson/writeCsv build O(data) strings
 *                           (or touch the filesystem), and every
 *                           other acquirer queues behind them. The
 *                           repo idiom is snapshot-under-lock,
 *                           serialize-outside — RuntimeTracer's
 *                           flush copies its slab list under the
 *                           registry mutex and renders JSON strictly
 *                           outside it.
 *
 * Diagnostics are clang-style (`path:line: error: [rule] message`).
 * A finding is suppressed by `// crisp-lint: allow(rule)` (or
 * `allow(rule1,rule2)`) on the same line or the line above.
 *
 * The checker is token-level by design: the container toolchain has
 * no libclang, and the rules only need lexical structure (brace
 * depth, call receivers, argument counts) that a comment-, string-
 * and preprocessor-aware tokenizer recovers exactly. It runs over
 * compile_commands.json in CI next to clang-tidy.
 */

#ifndef CRISP_LINT_LINT_H
#define CRISP_LINT_LINT_H

#include <string>
#include <vector>

namespace crisp
{
namespace lint
{

/** One finding. */
struct Diagnostic
{
    std::string path;
    int line = 0;
    std::string rule;
    std::string message;
};

/** @return all rule names, in report order. */
std::vector<std::string> ruleNames();

/** Lints @p text as the contents of @p path (pure; no I/O). */
std::vector<Diagnostic> lintSource(const std::string &path,
                                   const std::string &text);

/** Reads and lints @p path. I/O failure yields a single diagnostic
 *  with rule "io-error". */
std::vector<Diagnostic> lintFile(const std::string &path);

/**
 * Extracts the source files named by a compile_commands.json at
 * @p path, keeping first-party sources (path contains /src/ or
 * /tools/, not /CMakeFiles/), adding every sibling *.h of each kept
 * file's directory (headers do not appear as translation units), and
 * deduplicating.
 * @return false with @p *error set when the file is unreadable or
 *         not a compile database.
 */
bool filesFromCompileCommands(const std::string &path,
                              std::vector<std::string> &files,
                              std::string *error);

/** @return "path:line: error: [rule] message". */
std::string formatDiagnostic(const Diagnostic &d);

} // namespace lint
} // namespace crisp

#endif // CRISP_LINT_LINT_H
