#include "core/delinquency.h"

#include <algorithm>

namespace crisp
{

std::vector<uint32_t>
selectDelinquentLoads(const ProfileResult &prof,
                      const CrispOptions &opts)
{
    std::vector<uint32_t> picked;
    if (!opts.enableLoadSlices || prof.totalLlcMisses == 0)
        return picked;

    for (const auto &[sidx, lp] : prof.loads) {
        double miss_share =
            double(lp.llcMisses) / double(prof.totalLlcMisses);
        double exec_share =
            prof.totalLoads
                ? double(lp.exec) / double(prof.totalLoads)
                : 0.0;
        if (miss_share <= opts.missShareThreshold)
            continue;
        if (lp.missRatio() <= opts.missRatioThreshold)
            continue;
        if (exec_share < opts.execShareMin)
            continue;
        if (lp.avgMlp() >= opts.mlpThreshold)
            continue;
        if (lp.strideability() >= opts.strideMax)
            continue;
        picked.push_back(sidx);
    }
    std::sort(picked.begin(), picked.end(),
              [&prof](uint32_t a, uint32_t b) {
                  return prof.loads.at(a).llcMisses >
                         prof.loads.at(b).llcMisses;
              });
    return picked;
}

std::vector<uint32_t>
selectCriticalBranches(const ProfileResult &prof,
                       const CrispOptions &opts)
{
    std::vector<uint32_t> picked;
    if (!opts.enableBranchSlices)
        return picked;

    uint64_t total_branches = 0;
    for (const auto &[sidx, bp] : prof.branches)
        total_branches += bp.exec;
    if (total_branches == 0)
        return picked;

    for (const auto &[sidx, bp] : prof.branches) {
        double exec_share = double(bp.exec) / double(total_branches);
        if (bp.mispredictRatio() <= opts.branchMispredThreshold)
            continue;
        if (exec_share < opts.branchExecShareMin)
            continue;
        picked.push_back(sidx);
    }
    std::sort(picked.begin(), picked.end(),
              [&prof](uint32_t a, uint32_t b) {
                  return prof.branches.at(a).mispredicts >
                         prof.branches.at(b).mispredicts;
              });
    return picked;
}

std::vector<uint32_t>
selectLongLatencyOps(const ProfileResult &prof,
                     const CrispOptions &opts)
{
    std::vector<uint32_t> picked;
    if (!opts.enableLongLatencySlices || prof.totalOps == 0)
        return picked;
    for (const auto &[sidx, exec] : prof.longLatencyOps) {
        double share = double(exec) / double(prof.totalOps);
        if (share >= opts.longLatencyExecShareMin)
            picked.push_back(sidx);
    }
    std::sort(picked.begin(), picked.end(),
              [&prof](uint32_t a, uint32_t b) {
                  return prof.longLatencyOps.at(a) >
                         prof.longLatencyOps.at(b);
              });
    return picked;
}

} // namespace crisp
