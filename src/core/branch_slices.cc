#include "core/branch_slices.h"

namespace crisp
{

std::vector<Slice>
extractBranchSlices(const SliceExtractor &extractor,
                    const std::vector<uint32_t> &branch_sidxs)
{
    std::vector<Slice> slices;
    slices.reserve(branch_sidxs.size());
    for (uint32_t sidx : branch_sidxs)
        slices.push_back(extractor.extract(sidx));
    return slices;
}

std::vector<Slice>
extractLoadSlices(const SliceExtractor &extractor,
                  const std::vector<uint32_t> &load_sidxs)
{
    std::vector<Slice> slices;
    slices.reserve(load_sidxs.size());
    for (uint32_t sidx : load_sidxs)
        slices.push_back(extractor.extract(sidx));
    return slices;
}

} // namespace crisp
