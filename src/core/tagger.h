/**
 * @file
 * Post-link-time tagging (CRISP §4.1): applies the one-byte critical
 * instruction prefix to a program and accounts the code-footprint
 * overheads evaluated in §5.7.
 */

#ifndef CRISP_CORE_TAGGER_H
#define CRISP_CORE_TAGGER_H

#include <cstdint>
#include <vector>

#include "trace/program.h"
#include "trace/trace.h"

namespace crisp
{

/** Footprint overheads of the prefix (Fig 12 metrics). */
struct TagSummary
{
    uint64_t taggedStatics = 0;
    uint64_t staticBytesBefore = 0;
    uint64_t staticBytesAfter = 0;
    uint64_t dynamicBytesBefore = 0;
    uint64_t dynamicBytesAfter = 0;

    /** @return static code-size growth (fraction). */
    double staticOverhead() const
    {
        return staticBytesBefore
                   ? double(staticBytesAfter) /
                             double(staticBytesBefore) -
                         1.0
                   : 0.0;
    }
    /** @return dynamic code-footprint growth (fraction). */
    double dynamicOverhead() const
    {
        return dynamicBytesBefore
                   ? double(dynamicBytesAfter) /
                             double(dynamicBytesBefore) -
                         1.0
                   : 0.0;
    }
};

/**
 * Marks @p statics critical in @p prog, growing each tagged
 * instruction by one byte and re-laying-out the code.
 * @param prog program to rewrite in place
 * @param statics static indices to tag
 * @return number of newly tagged instructions.
 */
uint64_t applyCriticalPrefix(Program &prog,
                             const std::vector<uint32_t> &statics);

/**
 * Computes the Fig 12 overheads for a tagged program.
 * @param prog the tagged program
 * @param trace a dynamic trace restamped from @p prog
 */
TagSummary summarizeTagging(const Program &prog, const Trace &trace);

} // namespace crisp

#endif // CRISP_CORE_TAGGER_H
