/**
 * @file
 * Critical-path analysis over a slice DAG (CRISP §3.5).
 *
 * A slice's dynamic instances form a DAG of producer edges. Each node
 * carries a latency (fixed per op class; profiled AMAT for loads).
 * CRISP promotes only the instructions lying on paths whose
 * latency-weighted length is close to the longest path to the
 * delinquent root, keeping the prioritized set small enough for the
 * scheduler to still have non-critical work to defer.
 */

#ifndef CRISP_CORE_CRITICAL_PATH_H
#define CRISP_CORE_CRITICAL_PATH_H

#include <cstdint>
#include <vector>

namespace crisp
{

/** One dynamic node of a slice DAG. */
struct DagNode
{
    uint32_t dynIdx;  ///< position in the trace (topological key)
    uint32_t sidx;    ///< static instruction
    double latency;   ///< execution latency estimate (cycles)
};

/** A slice instance as a DAG; edges point consumer -> producer. */
struct SliceDag
{
    std::vector<DagNode> nodes; ///< sorted by dynIdx ascending
    /** (consumer, producer) pairs, indices into @c nodes. */
    std::vector<std::pair<uint32_t, uint32_t>> edges;
    uint32_t rootNode = 0;      ///< index of the delinquent root
};

/** @return the latency-weighted longest path ending at the root. */
double longestPathLatency(const SliceDag &dag);

/**
 * Selects the statics on near-critical paths.
 * @param dag the slice instance
 * @param fraction keep nodes whose longest path through them is at
 *        least @p fraction of the overall longest path
 * @return the surviving static indices (deduplicated, root included).
 */
std::vector<uint32_t> criticalPathFilter(const SliceDag &dag,
                                         double fraction);

} // namespace crisp

#endif // CRISP_CORE_CRITICAL_PATH_H
