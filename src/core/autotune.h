/**
 * @file
 * Iterative criticality-threshold search — the mechanism CRISP §5.5
 * sketches as future work: "an iterative mechanism that profiles
 * applications with different miss ratio thresholds to enable
 * additional application-specific optimizations."
 *
 * The tuner runs the full analyze/tag/simulate loop for a list of
 * candidate miss-share thresholds and returns the best one per
 * workload, exactly the feedback-driven-optimization style deployment
 * the paper's Fig 5 flow enables.
 */

#ifndef CRISP_CORE_AUTOTUNE_H
#define CRISP_CORE_AUTOTUNE_H

#include <map>
#include <vector>

#include "core/delinquency.h"
#include "sim/artifact_cache.h"
#include "sim/config.h"
#include "workloads/workload.h"

namespace crisp
{

/** Result of a threshold search for one workload. */
struct AutoTuneResult
{
    double bestThreshold = 0;
    double bestIpc = 0;
    double baselineIpc = 0;
    /** candidate threshold -> CRISP IPC. */
    std::map<double, double> ipcByThreshold;

    /** @return the speedup the best threshold achieves. */
    double bestSpeedup() const
    {
        return baselineIpc ? bestIpc / baselineIpc : 0.0;
    }
};

/**
 * Sweeps miss-share thresholds and picks the best-performing one.
 *
 * @param wl workload to tune
 * @param cfg machine configuration
 * @param base analysis options (missShareThreshold is overridden)
 * @param train_ops profiling-trace length
 * @param ref_ops evaluation-trace length
 * @param candidates thresholds to try (defaults to the Fig 10 set
 *        plus 2%, the paper's per-workload optimum for moses)
 * @param cache optional shared artifact cache; when set, the
 *        training and reference traces are built once and shared
 *        across all candidate thresholds (and other callers)
 */
AutoTuneResult autoTuneMissShare(
    const WorkloadInfo &wl, const SimConfig &cfg,
    const CrispOptions &base, uint64_t train_ops, uint64_t ref_ops,
    const std::vector<double> &candidates = {0.05, 0.02, 0.01,
                                             0.002},
    ArtifactCache *cache = nullptr);

} // namespace crisp

#endif // CRISP_CORE_AUTOTUNE_H
