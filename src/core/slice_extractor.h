/**
 * @file
 * Backward slice extraction from instruction traces (CRISP §3.3).
 *
 * A single forward pass materializes each dynamic micro-op's producer
 * set — the last writer of every register source plus, for loads, the
 * last store to the same word (the dependence-through-memory edge
 * register-only IBDA cannot see). Slices are then gathered by the
 * paper's frontier algorithm walking the trace backwards from sampled
 * dynamic instances of a delinquent root.
 */

#ifndef CRISP_CORE_SLICE_EXTRACTOR_H
#define CRISP_CORE_SLICE_EXTRACTOR_H

#include <array>
#include <cstdint>
#include <vector>

#include "core/critical_path.h"
#include "core/delinquency.h"
#include "core/profiler.h"
#include "trace/trace.h"

namespace crisp
{

/** An extracted slice for one delinquent root instruction. */
struct Slice
{
    uint32_t rootSidx = 0;
    /** Full backward slice (static indices, root included). */
    std::vector<uint32_t> fullSlice;
    /** Near-critical-path subset actually tagged (§3.5). */
    std::vector<uint32_t> criticalSlice;
    /** Mean dynamic ancestors per sampled instance walk. */
    double avgDynAncestors = 0;

    /** @return static slice size (Fig 4 metric). */
    size_t size() const { return fullSlice.size(); }
};

/** Extracts backward slices from one trace. */
class SliceExtractor
{
  public:
    /**
     * @param trace the (training) trace
     * @param opts analysis options
     * @param prof optional profile supplying per-load AMAT latencies
     * @param cfg optional machine config for latency scaling
     */
    SliceExtractor(const Trace &trace, const CrispOptions &opts,
                   const ProfileResult *prof = nullptr,
                   const SimConfig *cfg = nullptr);

    /**
     * Extracts the slice rooted at static instruction @p root_sidx.
     * Sampling, termination rules and critical-path filtering follow
     * §3.3/§3.5 and the thresholds in CrispOptions.
     */
    Slice extract(uint32_t root_sidx) const;

    /** @return the producer table (testing hook). */
    const std::vector<std::array<int32_t, 4>> &producers() const
    {
        return producers_;
    }

  private:
    const Trace &trace_;
    CrispOptions opts_;
    const ProfileResult *prof_;
    const SimConfig *cfg_;
    std::vector<std::array<int32_t, 4>> producers_;

    double latencyOf(const MicroOp &op) const;
    void buildProducerTable();
    SliceDag buildDag(uint32_t root_dyn) const;
};

} // namespace crisp

#endif // CRISP_CORE_SLICE_EXTRACTOR_H
