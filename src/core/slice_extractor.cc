#include "core/slice_extractor.h"

#include <algorithm>
#include <deque>
#include <unordered_map>
#include <unordered_set>

#include "isa/latency.h"

namespace crisp
{

SliceExtractor::SliceExtractor(const Trace &trace,
                               const CrispOptions &opts,
                               const ProfileResult *prof,
                               const SimConfig *cfg)
    : trace_(trace), opts_(opts), prof_(prof), cfg_(cfg)
{
    buildProducerTable();
}

void
SliceExtractor::buildProducerTable()
{
    const size_t n = trace_.size();
    producers_.assign(n, {-1, -1, -1, -1});

    std::array<int32_t, kNumArchRegs> last_writer;
    last_writer.fill(-1);
    std::unordered_map<uint64_t, int32_t> last_store;

    for (size_t i = 0; i < n; ++i) {
        const MicroOp &op = trace_.ops[i];
        auto &prod = producers_[i];
        int k = 0;
        auto reg_dep = [&](RegId r) {
            if (r != kNoReg && last_writer[r] >= 0)
                prod[k] = last_writer[r];
            ++k;
        };
        reg_dep(op.src1);
        reg_dep(op.src2);
        reg_dep(op.src3);
        if (op.isLoad() && opts_.memDependencies) {
            auto it = last_store.find(op.effAddr);
            if (it != last_store.end())
                prod[3] = it->second;
        }
        if (op.dst != kNoReg)
            last_writer[op.dst] = int32_t(i);
        if (op.isStore())
            last_store[op.effAddr] = int32_t(i);
    }
}

double
SliceExtractor::latencyOf(const MicroOp &op) const
{
    if (op.isLoad() && prof_ && cfg_) {
        auto it = prof_->loads.find(op.sidx);
        if (it != prof_->loads.end()) {
            double amat =
                it->second.amat(*cfg_, prof_->avgDramLatency);
            return std::max(amat, 1.0);
        }
    }
    double lat = defaultLatencies()[op.cls];
    if (op.isLoad())
        lat += cfg_ ? cfg_->l1d.latency : 4;
    return std::max(lat, 1.0);
}

SliceDag
SliceExtractor::buildDag(uint32_t root_dyn) const
{
    SliceDag dag;
    std::unordered_map<uint32_t, uint32_t> node_of; // dyn -> node id
    std::deque<uint32_t> frontier;

    auto add_node = [&](uint32_t dyn) {
        auto [it, fresh] = node_of.emplace(
            dyn, uint32_t(dag.nodes.size()));
        if (fresh) {
            dag.nodes.push_back(
                {dyn, trace_.ops[dyn].sidx,
                 latencyOf(trace_.ops[dyn])});
        }
        return it->second;
    };

    add_node(root_dyn);
    frontier.push_back(root_dyn);
    while (!frontier.empty() &&
           dag.nodes.size() < opts_.maxAncestorsPerWalk) {
        uint32_t dyn = frontier.front();
        frontier.pop_front();
        uint32_t consumer = node_of.at(dyn);
        for (int32_t p : producers_[dyn]) {
            if (p < 0)
                continue;
            bool fresh = node_of.find(uint32_t(p)) == node_of.end();
            uint32_t pn = add_node(uint32_t(p));
            dag.edges.emplace_back(consumer, pn);
            if (fresh)
                frontier.push_back(uint32_t(p));
        }
    }

    // Topological order by dynIdx: remap so nodes are ascending.
    std::vector<uint32_t> order(dag.nodes.size());
    for (uint32_t i = 0; i < order.size(); ++i)
        order[i] = i;
    std::sort(order.begin(), order.end(),
              [&dag](uint32_t a, uint32_t b) {
                  return dag.nodes[a].dynIdx < dag.nodes[b].dynIdx;
              });
    std::vector<uint32_t> new_id(dag.nodes.size());
    for (uint32_t pos = 0; pos < order.size(); ++pos)
        new_id[order[pos]] = pos;
    std::vector<DagNode> sorted(dag.nodes.size());
    for (uint32_t i = 0; i < dag.nodes.size(); ++i)
        sorted[new_id[i]] = dag.nodes[i];
    dag.nodes = std::move(sorted);
    for (auto &[c, p] : dag.edges) {
        c = new_id[c];
        p = new_id[p];
    }
    dag.rootNode = new_id[0]; // root was inserted first
    return dag;
}

Slice
SliceExtractor::extract(uint32_t root_sidx) const
{
    Slice slice;
    slice.rootSidx = root_sidx;

    // Collect dynamic instances of the root.
    std::vector<uint32_t> instances;
    for (uint32_t i = 0; i < trace_.size(); ++i) {
        if (trace_.ops[i].sidx == root_sidx)
            instances.push_back(i);
    }
    if (instances.empty())
        return slice;

    // Sample instances evenly, skipping the warmup-heavy start.
    std::vector<uint32_t> sampled;
    size_t start = instances.size() / 8;
    size_t avail = instances.size() - start;
    size_t want = std::min<size_t>(opts_.maxInstancesPerRoot, avail);
    for (size_t k = 0; k < want; ++k)
        sampled.push_back(instances[start + k * avail / want]);

    // Frontier walk with the paper's termination rules: stop at
    // ancestors whose static instruction is already in the slice, at
    // constants (no producers) and at the start of the trace.
    std::unordered_set<uint32_t> statics;
    statics.insert(root_sidx);
    slice.fullSlice.push_back(root_sidx);
    uint64_t total_walk = 0;

    for (uint32_t inst : sampled) {
        std::deque<uint32_t> frontier;
        frontier.push_back(inst);
        uint64_t walked = 0;
        while (!frontier.empty() &&
               walked < opts_.maxAncestorsPerWalk) {
            uint32_t dyn = frontier.front();
            frontier.pop_front();
            ++walked;
            for (int32_t p : producers_[dyn]) {
                if (p < 0)
                    continue;
                uint32_t sp = trace_.ops[p].sidx;
                if (!statics.insert(sp).second)
                    continue; // already in the slice
                slice.fullSlice.push_back(sp);
                frontier.push_back(uint32_t(p));
            }
        }
        total_walk += walked;
    }
    slice.avgDynAncestors =
        double(total_walk) / double(sampled.size());

    if (opts_.criticalPathFilter) {
        // Critical-path analysis on representative instances; union
        // of survivors across a few samples for robustness.
        std::unordered_set<uint32_t> keep;
        size_t reps = std::min<size_t>(3, sampled.size());
        for (size_t k = 0; k < reps; ++k) {
            uint32_t inst =
                sampled[sampled.size() - 1 - k * sampled.size() / reps];
            SliceDag dag = buildDag(inst);
            for (uint32_t s :
                 criticalPathFilter(dag, opts_.criticalPathFraction))
                keep.insert(s);
        }
        keep.insert(root_sidx);
        for (uint32_t s : slice.fullSlice) {
            if (keep.count(s))
                slice.criticalSlice.push_back(s);
        }
    } else {
        slice.criticalSlice = slice.fullSlice;
    }
    return slice;
}

} // namespace crisp
