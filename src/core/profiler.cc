#include "core/profiler.h"

#include <algorithm>
#include <array>
#include <deque>
#include <unordered_map>

#include "bp/tage.h"
#include "cache/hierarchy.h"

namespace crisp
{

double
LoadProfile::amat(const SimConfig &cfg, double dram_latency) const
{
    if (!exec)
        return cfg.l1d.latency;
    double l1_hits = double(exec - l1Misses);
    double llc_hits = double(l1Misses - llcMisses);
    double total = l1_hits * cfg.l1d.latency +
                   llc_hits * cfg.llc.latency +
                   double(llcMisses) * dram_latency;
    return total / double(exec);
}

namespace
{

/**
 * Dataflow-time MLP estimator. Each micro-op gets an idealized
 * "ready time" from its producers (registers and, for loads, the
 * last store to the same word). Two LLC misses overlap — and hence
 * contribute to each other's MLP — only if their [issue, complete)
 * intervals intersect *and* they are within one ROB window of each
 * other in the instruction stream. Serially dependent misses
 * (pointer chases) therefore report MLP ~1, while batched
 * independent misses report their true overlap, which is what the
 * paper's load-queue-occupancy approximation measures (§3.2).
 */
class MlpEstimator
{
  public:
    MlpEstimator(unsigned window, double miss_latency)
        : window_(window), missLatency_(miss_latency)
    {
        lastWriter_.fill(0);
    }

    /** Feeds one op; @return MLP sample if this is an LLC miss. */
    double observe(size_t idx, const MicroOp &op, bool llc_miss,
                   double op_latency)
    {
        double start = 0;
        auto src = [&](RegId r) {
            if (r != kNoReg)
                start = std::max(start, lastWriter_[r]);
        };
        src(op.src1);
        src(op.src2);
        src(op.src3);
        if (op.isLoad()) {
            auto it = lastStore_.find(op.effAddr);
            if (it != lastStore_.end())
                start = std::max(start, it->second);
        }
        double done = start + op_latency;
        if (op.dst != kNoReg)
            lastWriter_[op.dst] = done;
        if (op.isStore())
            lastStore_[op.effAddr] = done;

        if (!llc_miss)
            return 0;
        // Count in-flight misses overlapping [start, done).
        while (!inflight_.empty() &&
               inflight_.front().idx + window_ < idx)
            inflight_.pop_front();
        unsigned overlap = 1;
        for (const auto &m : inflight_) {
            if (m.end > start && m.start < done)
                ++overlap;
        }
        inflight_.push_back({idx, start, done});
        if (inflight_.size() > 64)
            inflight_.pop_front();
        return double(overlap);
    }

  private:
    struct Miss
    {
        size_t idx;
        double start;
        double end;
    };

    unsigned window_;
    double missLatency_;
    std::array<double, kNumArchRegs> lastWriter_;
    std::unordered_map<uint64_t, double> lastStore_;
    std::deque<Miss> inflight_;
};

} // namespace

ProfileResult
profileTrace(const Trace &trace, const SimConfig &cfg)
{
    ProfileResult prof;
    prof.totalOps = trace.size();

    Hierarchy mem(cfg);
    TagePredictor tage;
    // Last-target indirect predictor analog (BTB behaviour).
    std::unordered_map<uint64_t, uint64_t> last_target;
    const double kMissLatency = 200.0;
    MlpEstimator mlp(cfg.robSize, kMissLatency);

    // Pseudo-time advances with the instruction stream so prefetch
    // timeliness and MSHR merging behave plausibly during profiling.
    auto pseudo_cycle = [](size_t idx) { return uint64_t(idx) * 2; };

    for (size_t i = 0; i < trace.size(); ++i) {
        const MicroOp &op = trace.ops[i];
        uint64_t cycle = pseudo_cycle(i);

        bool llc_miss = false;
        double op_latency = 1.0;

        if (op.isLoad()) {
            ++prof.totalLoads;
            LoadProfile &lp = prof.loads[op.sidx];

            // Stride regularity of the access stream per PC.
            if (lp.exec > 0) {
                int64_t delta =
                    int64_t(op.effAddr) - int64_t(lp.lastAddr);
                if (lp.deltaSamples > 0 && delta == lp.lastDelta)
                    ++lp.strideHits;
                lp.lastDelta = delta;
                ++lp.deltaSamples;
            }
            lp.lastAddr = op.effAddr;
            ++lp.exec;

            auto res = mem.load(op.effAddr, op.pc, cycle);
            if (res.servedBy != MemLevel::L1)
                ++lp.l1Misses;
            if (res.servedBy == MemLevel::Dram) {
                llc_miss = true;
                ++lp.llcMisses;
                ++prof.totalLlcMisses;
            }
            op_latency = llc_miss ? kMissLatency
                         : res.servedBy == MemLevel::LLC
                             ? double(cfg.llc.latency)
                             : double(cfg.l1d.latency);
            double sample = mlp.observe(i, op, llc_miss, op_latency);
            if (llc_miss) {
                lp.mlpSum += sample;
                ++lp.mlpSamples;
            }
        } else {
            if (op.isStore())
                mem.store(op.effAddr, op.pc, cycle);
            else if (op.cls == OpClass::Branch) {
                BranchProfile &bp = prof.branches[op.sidx];
                ++bp.exec;
                bool pred = tage.predict(op.pc);
                tage.update(op.pc, op.taken);
                if (pred != op.taken)
                    ++bp.mispredicts;
            } else if (op.cls == OpClass::IntDiv ||
                       op.cls == OpClass::FpDiv) {
                ++prof.longLatencyOps[op.sidx];
            } else if (op.cls == OpClass::IndirectJump) {
                // Hard-to-predict indirect jumps are sliceable too
                // (the paper's flexibility argument, §3.4/§6.1).
                BranchProfile &bp = prof.branches[op.sidx];
                ++bp.exec;
                uint64_t &t = last_target[op.pc];
                if (t != op.nextPc)
                    ++bp.mispredicts;
                t = op.nextPc;
            }
            mlp.observe(i, op, false, op_latency);
        }
    }

    double dram_lat = mem.dram().stats().averageLatency();
    // Pseudo-time compresses queueing; clamp to a sane device range.
    prof.avgDramLatency =
        dram_lat > 0 ? std::min(dram_lat, 400.0) : 200.0;
    return prof;
}

} // namespace crisp
