/**
 * @file
 * End-to-end CRISP software flow (Fig 5): trace the training input,
 * profile, select delinquent loads and hard-to-predict branches,
 * extract and critical-path-filter their slices, enforce the 5-40%
 * critical-instruction band, and tag a fresh (reference-input) build
 * of the program for evaluation (§4.1, §5.1).
 */

#ifndef CRISP_CORE_PIPELINE_H
#define CRISP_CORE_PIPELINE_H

#include <cstdint>
#include <memory>
#include <vector>

#include "core/branch_slices.h"
#include "core/delinquency.h"
#include "core/profiler.h"
#include "core/slice_extractor.h"
#include "core/tagger.h"
#include "sim/config.h"
#include "workloads/workload.h"

namespace crisp
{

/** Everything the analysis produced (inputs to figures 4, 7-12). */
struct CrispAnalysis
{
    ProfileResult profile;
    std::vector<uint32_t> delinquentLoads;
    std::vector<uint32_t> criticalBranches;
    std::vector<uint32_t> longLatencyOps;
    std::vector<Slice> loadSlices;
    std::vector<Slice> branchSlices;
    std::vector<Slice> longLatencySlices;
    /** Union of surviving critical slices, band-enforced. */
    std::vector<uint32_t> taggedStatics;
    /** Mean full load-slice size in static instructions (Fig 4). */
    double avgLoadSliceSize = 0;
    /** Dynamic share of tagged instructions on the train input. */
    double dynamicCriticalRatio = 0;
};

/**
 * Builds the dynamic trace of @p wl on @p input, @p ops micro-ops
 * long. Pure function of its arguments: builders use fixed seeds and
 * the interpreter is deterministic, so equal arguments yield equal
 * traces. Safe to call concurrently.
 */
Trace buildWorkloadTrace(const WorkloadInfo &wl, InputSet input,
                         uint64_t ops);

/**
 * Runs the full CRISP software analysis (profile, select, slice,
 * critical-path filter, band enforcement) over a training trace.
 * Pure function of (trace, opts, cfg); safe to call concurrently.
 */
CrispAnalysis analyzeTrace(const Trace &train,
                           const CrispOptions &opts,
                           const SimConfig &cfg);

/**
 * Builds the Ref-input evaluation trace of @p wl with the critical
 * prefix applied for @p tagged_statics. Pure and thread-safe.
 */
Trace buildTaggedRefTrace(const WorkloadInfo &wl,
                          const std::vector<uint32_t> &tagged_statics,
                          uint64_t ref_ops);

/** Orchestrates profiling, slicing and tagging for one workload. */
class CrispPipeline
{
  public:
    /**
     * @param workload the proxy to analyze
     * @param opts analysis thresholds/toggles
     * @param cfg machine configuration (profiling memory system)
     * @param train_ops training-trace length
     * @param ref_ops evaluation-trace length
     */
    CrispPipeline(const WorkloadInfo &workload, CrispOptions opts,
                  SimConfig cfg, uint64_t train_ops = 200'000,
                  uint64_t ref_ops = 300'000);

    /** Runs (once) and returns the analysis. */
    const CrispAnalysis &analysis();

    /** @return the training trace (cached). */
    const Trace &trainTrace();

    /**
     * Builds the evaluation trace on the Ref input.
     * @param tagged apply the critical prefix before tracing
     */
    Trace refTrace(bool tagged);

    /** @return Fig 12 overheads for the tagged ref build. */
    TagSummary tagSummary();

    /** @return the options in effect. */
    const CrispOptions &options() const { return opts_; }

  private:
    const WorkloadInfo &workload_;
    CrispOptions opts_;
    SimConfig cfg_;
    uint64_t trainOps_;
    uint64_t refOps_;

    std::unique_ptr<Trace> trainTrace_;
    std::unique_ptr<CrispAnalysis> analysis_;
};

} // namespace crisp

#endif // CRISP_CORE_PIPELINE_H
