/**
 * @file
 * Delinquent load / critical branch selection heuristics (CRISP §3.2,
 * §3.4) and the tunable thresholds explored in §5.5.
 */

#ifndef CRISP_CORE_DELINQUENCY_H
#define CRISP_CORE_DELINQUENCY_H

#include <cstdint>
#include <vector>

#include "core/profiler.h"

namespace crisp
{

/**
 * All knobs of the software analysis. Defaults follow the paper's
 * best-performing settings (miss-share threshold T = 1%, Fig 10;
 * miss ratio > 20%, MLP < 5, §3.2; branch misprediction > 15%, §3.4;
 * critical ratio band 5-40%, §3.2).
 */
struct CrispOptions
{
    // Load delinquency (§3.2, §5.5).
    double missShareThreshold = 0.01;    ///< T: share of all misses
    double missRatioThreshold = 0.20;    ///< per-PC LLC miss ratio
    double mlpThreshold = 5.0;           ///< skip high-MLP phases
    double execShareMin = 0.0005;        ///< ignore ultra-cold loads
    double strideMax = 0.90;             ///< skip prefetchable loads

    // Branch criticality (§3.4).
    double branchMispredThreshold = 0.15;
    double branchExecShareMin = 0.0005;

    // Feature toggles (Fig 8 ablations; §3.5/§5.2 IBDA contrasts).
    bool enableLoadSlices = true;
    bool enableBranchSlices = true;
    /** §6.1 extension: slice unpipelined divisions too. */
    bool enableLongLatencySlices = false;
    double longLatencyExecShareMin = 0.002;
    bool criticalPathFilter = true;
    bool memDependencies = true;  ///< follow deps through memory

    // Critical-path filtering (§3.5).
    double criticalPathFraction = 0.50; ///< keep paths >= frac * max
    double maxCriticalRatio = 0.40;     ///< dynamic tag-share band top

    // Slice-walk sampling.
    unsigned maxInstancesPerRoot = 24;
    unsigned maxAncestorsPerWalk = 4096;
};

/**
 * Applies the §3.2 heuristic.
 * @return static indices of delinquent loads, most misses first.
 */
std::vector<uint32_t> selectDelinquentLoads(const ProfileResult &prof,
                                            const CrispOptions &opts);

/**
 * Applies the §3.4 heuristic.
 * @return static indices of hard-to-predict branches.
 */
std::vector<uint32_t>
selectCriticalBranches(const ProfileResult &prof,
                       const CrispOptions &opts);

/**
 * Selects frequently executed unpipelined ops (§6.1 extension).
 * @return static indices of divisions worth slicing.
 */
std::vector<uint32_t>
selectLongLatencyOps(const ProfileResult &prof,
                     const CrispOptions &opts);

} // namespace crisp

#endif // CRISP_CORE_DELINQUENCY_H
