#include "core/tagger.h"

namespace crisp
{

uint64_t
applyCriticalPrefix(Program &prog,
                    const std::vector<uint32_t> &statics)
{
    uint64_t tagged = 0;
    for (uint32_t sidx : statics) {
        if (sidx >= prog.code.size())
            continue;
        StaticInst &si = prog.code[sidx];
        if (si.critical)
            continue;
        si.critical = true;
        si.size += 1; // the new one-byte prefix
        ++tagged;
    }
    if (tagged)
        prog.layout();
    return tagged;
}

TagSummary
summarizeTagging(const Program &prog, const Trace &trace)
{
    TagSummary s;
    s.taggedStatics = prog.criticalCount();
    s.staticBytesAfter = prog.staticBytes();
    s.staticBytesBefore = s.staticBytesAfter - s.taggedStatics;

    for (const auto &op : trace.ops) {
        s.dynamicBytesAfter += op.instSize;
        s.dynamicBytesBefore +=
            op.instSize - (op.critical ? 1 : 0);
    }
    return s;
}

} // namespace crisp
