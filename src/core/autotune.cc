#include "core/autotune.h"

#include "core/pipeline.h"
#include "cpu/core.h"

namespace crisp
{

AutoTuneResult
autoTuneMissShare(const WorkloadInfo &wl, const SimConfig &cfg,
                  const CrispOptions &base, uint64_t train_ops,
                  uint64_t ref_ops,
                  const std::vector<double> &candidates,
                  ArtifactCache *cache)
{
    ArtifactCache local;
    ArtifactCache &c = cache ? *cache : local;

    AutoTuneResult result;

    // One shared baseline run (untagged ref trace).
    auto base_trace = c.trace(wl, InputSet::Ref, ref_ops);
    {
        Core core(*base_trace, cfg);
        result.baselineIpc = core.run().ipc();
    }

    SimConfig crisp_cfg = cfg;
    crisp_cfg.scheduler = SchedulerPolicy::CrispPriority;

    for (double t : candidates) {
        CrispOptions opts = base;
        opts.missShareThreshold = t;
        auto tagged =
            c.taggedRefTrace(wl, opts, cfg, train_ops, ref_ops);
        Core core(*tagged, crisp_cfg);
        double ipc = core.run().ipc();
        result.ipcByThreshold[t] = ipc;
        if (ipc > result.bestIpc) {
            result.bestIpc = ipc;
            result.bestThreshold = t;
        }
    }
    return result;
}

} // namespace crisp
