/**
 * @file
 * Software profiling pass (CRISP §3.2).
 *
 * Plays the role of PMU counters / PEBS / LBR in the paper's flow: a
 * functional pass over the training trace through the cache hierarchy
 * (with the baseline prefetchers enabled) and the TAGE predictor,
 * collecting per-static-instruction execution counts, cache miss
 * ratios, miss-time memory-level parallelism, address-stride
 * regularity, approximate AMAT, and branch misprediction rates.
 */

#ifndef CRISP_CORE_PROFILER_H
#define CRISP_CORE_PROFILER_H

#include <cstdint>
#include <unordered_map>

#include "sim/config.h"
#include "trace/trace.h"

namespace crisp
{

/** Per-static-load profile. */
struct LoadProfile
{
    uint64_t exec = 0;
    uint64_t l1Misses = 0;
    uint64_t llcMisses = 0;
    double mlpSum = 0;      ///< outstanding misses at each LLC miss
    uint64_t mlpSamples = 0;
    uint64_t strideHits = 0; ///< repeats of the previous delta
    uint64_t deltaSamples = 0;
    uint64_t lastAddr = 0;
    int64_t lastDelta = 0;

    double missRatio() const
    {
        return exec ? double(llcMisses) / double(exec) : 0.0;
    }
    double avgMlp() const
    {
        return mlpSamples ? mlpSum / double(mlpSamples) : 0.0;
    }
    /** Fraction of dynamic instances repeating the previous stride. */
    double strideability() const
    {
        return deltaSamples ? double(strideHits) / double(deltaSamples)
                            : 0.0;
    }
    /** Approximate average memory access time in cycles. */
    double amat(const SimConfig &cfg, double dram_latency) const;
};

/** Per-static-branch profile. */
struct BranchProfile
{
    uint64_t exec = 0;
    uint64_t mispredicts = 0;

    double mispredictRatio() const
    {
        return exec ? double(mispredicts) / double(exec) : 0.0;
    }
};

/** Whole-trace profile. */
struct ProfileResult
{
    std::unordered_map<uint32_t, LoadProfile> loads;
    std::unordered_map<uint32_t, BranchProfile> branches;
    /** Unpipelined long-latency ops (divisions): sidx -> exec count
     *  (the §6.1 "other high-latency instructions" extension). */
    std::unordered_map<uint32_t, uint64_t> longLatencyOps;
    uint64_t totalOps = 0;
    uint64_t totalLoads = 0;
    uint64_t totalLlcMisses = 0;
    double avgDramLatency = 0; ///< for AMAT estimation
};

/**
 * Profiles @p trace under the memory system of @p cfg.
 * @return the per-static profile.
 */
ProfileResult profileTrace(const Trace &trace, const SimConfig &cfg);

} // namespace crisp

#endif // CRISP_CORE_PROFILER_H
