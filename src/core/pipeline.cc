#include "core/pipeline.h"

#include <algorithm>
#include <unordered_set>

#include "vm/interpreter.h"

namespace crisp
{

CrispPipeline::CrispPipeline(const WorkloadInfo &workload,
                             CrispOptions opts, SimConfig cfg,
                             uint64_t train_ops, uint64_t ref_ops)
    : workload_(workload), opts_(opts), cfg_(cfg),
      trainOps_(train_ops), refOps_(ref_ops)
{
}

const Trace &
CrispPipeline::trainTrace()
{
    if (!trainTrace_) {
        auto prog = std::make_shared<Program>(
            workload_.build(InputSet::Train));
        Interpreter interp(prog);
        trainTrace_ =
            std::make_unique<Trace>(interp.run(trainOps_));
    }
    return *trainTrace_;
}

void
CrispPipeline::enforceBand(CrispAnalysis &a,
                           const std::vector<uint64_t> &exec_counts)
{
    // Greedily accept slices in importance order while the dynamic
    // share of tagged instructions stays inside the band (§3.2).
    struct Cand
    {
        const Slice *slice;
        uint64_t importance;
    };
    std::vector<Cand> cands;
    for (const auto &s : a.loadSlices) {
        auto it = a.profile.loads.find(s.rootSidx);
        cands.push_back(
            {&s, it != a.profile.loads.end() ? it->second.llcMisses
                                             : 0});
    }
    for (const auto &s : a.branchSlices) {
        auto it = a.profile.branches.find(s.rootSidx);
        cands.push_back(
            {&s,
             it != a.profile.branches.end()
                 ? it->second.mispredicts
                 : 0});
    }
    for (const auto &s : a.longLatencySlices) {
        auto it = a.profile.longLatencyOps.find(s.rootSidx);
        cands.push_back(
            {&s, it != a.profile.longLatencyOps.end() ? it->second
                                                      : 0});
    }
    std::stable_sort(cands.begin(), cands.end(),
                     [](const Cand &x, const Cand &y) {
                         return x.importance > y.importance;
                     });

    uint64_t total = a.profile.totalOps ? a.profile.totalOps : 1;
    uint64_t budget =
        uint64_t(opts_.maxCriticalRatio * double(total));
    std::unordered_set<uint32_t> tagged;
    uint64_t dyn_tagged = 0;

    for (const Cand &c : cands) {
        uint64_t added = 0;
        for (uint32_t s : c.slice->criticalSlice) {
            if (!tagged.count(s) && s < exec_counts.size())
                added += exec_counts[s];
        }
        if (dyn_tagged > 0 && dyn_tagged + added > budget)
            continue; // keep at least the most important slice
        for (uint32_t s : c.slice->criticalSlice)
            tagged.insert(s);
        dyn_tagged += added;
    }

    a.taggedStatics.assign(tagged.begin(), tagged.end());
    std::sort(a.taggedStatics.begin(), a.taggedStatics.end());
    a.dynamicCriticalRatio = double(dyn_tagged) / double(total);
}

const CrispAnalysis &
CrispPipeline::analysis()
{
    if (analysis_)
        return *analysis_;
    analysis_ = std::make_unique<CrispAnalysis>();
    CrispAnalysis &a = *analysis_;

    const Trace &train = trainTrace();
    a.profile = profileTrace(train, cfg_);
    a.delinquentLoads = selectDelinquentLoads(a.profile, opts_);
    a.criticalBranches = selectCriticalBranches(a.profile, opts_);

    a.longLatencyOps = selectLongLatencyOps(a.profile, opts_);

    SliceExtractor extractor(train, opts_, &a.profile, &cfg_);
    a.loadSlices = extractLoadSlices(extractor, a.delinquentLoads);
    a.branchSlices =
        extractBranchSlices(extractor, a.criticalBranches);
    a.longLatencySlices =
        extractLoadSlices(extractor, a.longLatencyOps);

    if (!a.loadSlices.empty()) {
        double sum = 0;
        for (const auto &s : a.loadSlices)
            sum += double(s.size());
        a.avgLoadSliceSize = sum / double(a.loadSlices.size());
    }

    enforceBand(a, train.staticExecCounts());
    return a;
}

Trace
CrispPipeline::refTrace(bool tagged)
{
    auto prog =
        std::make_shared<Program>(workload_.build(InputSet::Ref));
    if (tagged)
        applyCriticalPrefix(*prog, analysis().taggedStatics);
    Interpreter interp(prog);
    return interp.run(refOps_);
}

TagSummary
CrispPipeline::tagSummary()
{
    auto prog =
        std::make_shared<Program>(workload_.build(InputSet::Ref));
    applyCriticalPrefix(*prog, analysis().taggedStatics);
    Interpreter interp(prog);
    Trace trace = interp.run(refOps_);
    return summarizeTagging(*prog, trace);
}

} // namespace crisp
