#include "core/pipeline.h"

#include <algorithm>
#include <unordered_set>

#include "vm/interpreter.h"

namespace crisp
{

namespace
{

/**
 * Greedily accepts slices in importance order while the dynamic
 * share of tagged instructions stays inside the band (§3.2).
 */
void
enforceBand(CrispAnalysis &a, const CrispOptions &opts,
            const std::vector<uint64_t> &exec_counts)
{
    struct Cand
    {
        const Slice *slice;
        uint64_t importance;
    };
    std::vector<Cand> cands;
    for (const auto &s : a.loadSlices) {
        auto it = a.profile.loads.find(s.rootSidx);
        cands.push_back(
            {&s, it != a.profile.loads.end() ? it->second.llcMisses
                                             : 0});
    }
    for (const auto &s : a.branchSlices) {
        auto it = a.profile.branches.find(s.rootSidx);
        cands.push_back(
            {&s,
             it != a.profile.branches.end()
                 ? it->second.mispredicts
                 : 0});
    }
    for (const auto &s : a.longLatencySlices) {
        auto it = a.profile.longLatencyOps.find(s.rootSidx);
        cands.push_back(
            {&s, it != a.profile.longLatencyOps.end() ? it->second
                                                      : 0});
    }
    std::stable_sort(cands.begin(), cands.end(),
                     [](const Cand &x, const Cand &y) {
                         return x.importance > y.importance;
                     });

    uint64_t total = a.profile.totalOps ? a.profile.totalOps : 1;
    uint64_t budget =
        uint64_t(opts.maxCriticalRatio * double(total));
    std::unordered_set<uint32_t> tagged;
    uint64_t dyn_tagged = 0;

    for (const Cand &c : cands) {
        uint64_t added = 0;
        for (uint32_t s : c.slice->criticalSlice) {
            if (!tagged.count(s) && s < exec_counts.size())
                added += exec_counts[s];
        }
        if (dyn_tagged > 0 && dyn_tagged + added > budget)
            continue; // keep at least the most important slice
        for (uint32_t s : c.slice->criticalSlice)
            tagged.insert(s);
        dyn_tagged += added;
    }

    a.taggedStatics.assign(tagged.begin(), tagged.end());
    std::sort(a.taggedStatics.begin(), a.taggedStatics.end());
    a.dynamicCriticalRatio = double(dyn_tagged) / double(total);
}

} // namespace

Trace
buildWorkloadTrace(const WorkloadInfo &wl, InputSet input,
                   uint64_t ops)
{
    auto prog = std::make_shared<Program>(wl.build(input));
    Interpreter interp(prog);
    return interp.run(ops);
}

CrispAnalysis
analyzeTrace(const Trace &train, const CrispOptions &opts,
             const SimConfig &cfg)
{
    CrispAnalysis a;
    a.profile = profileTrace(train, cfg);
    a.delinquentLoads = selectDelinquentLoads(a.profile, opts);
    a.criticalBranches = selectCriticalBranches(a.profile, opts);

    a.longLatencyOps = selectLongLatencyOps(a.profile, opts);

    SliceExtractor extractor(train, opts, &a.profile, &cfg);
    a.loadSlices = extractLoadSlices(extractor, a.delinquentLoads);
    a.branchSlices =
        extractBranchSlices(extractor, a.criticalBranches);
    a.longLatencySlices =
        extractLoadSlices(extractor, a.longLatencyOps);

    if (!a.loadSlices.empty()) {
        double sum = 0;
        for (const auto &s : a.loadSlices)
            sum += double(s.size());
        a.avgLoadSliceSize = sum / double(a.loadSlices.size());
    }

    enforceBand(a, opts, train.staticExecCounts());
    return a;
}

Trace
buildTaggedRefTrace(const WorkloadInfo &wl,
                    const std::vector<uint32_t> &tagged_statics,
                    uint64_t ref_ops)
{
    auto prog =
        std::make_shared<Program>(wl.build(InputSet::Ref));
    applyCriticalPrefix(*prog, tagged_statics);
    Interpreter interp(prog);
    return interp.run(ref_ops);
}

CrispPipeline::CrispPipeline(const WorkloadInfo &workload,
                             CrispOptions opts, SimConfig cfg,
                             uint64_t train_ops, uint64_t ref_ops)
    : workload_(workload), opts_(opts), cfg_(cfg),
      trainOps_(train_ops), refOps_(ref_ops)
{
}

const Trace &
CrispPipeline::trainTrace()
{
    if (!trainTrace_)
        trainTrace_ = std::make_unique<Trace>(
            buildWorkloadTrace(workload_, InputSet::Train,
                               trainOps_));
    return *trainTrace_;
}

const CrispAnalysis &
CrispPipeline::analysis()
{
    if (!analysis_)
        analysis_ = std::make_unique<CrispAnalysis>(
            analyzeTrace(trainTrace(), opts_, cfg_));
    return *analysis_;
}

Trace
CrispPipeline::refTrace(bool tagged)
{
    if (tagged)
        return buildTaggedRefTrace(workload_,
                                   analysis().taggedStatics,
                                   refOps_);
    return buildWorkloadTrace(workload_, InputSet::Ref, refOps_);
}

TagSummary
CrispPipeline::tagSummary()
{
    Trace trace = refTrace(/*tagged=*/true);
    return summarizeTagging(*trace.program, trace);
}

} // namespace crisp
