/**
 * @file
 * Branch slice extraction (CRISP §3.4): the backward slices of
 * hard-to-predict branches, prioritized so mispredicted branches
 * resolve — and fetch restarts — as early as possible.
 */

#ifndef CRISP_CORE_BRANCH_SLICES_H
#define CRISP_CORE_BRANCH_SLICES_H

#include <vector>

#include "core/slice_extractor.h"

namespace crisp
{

/**
 * Extracts one slice per selected branch.
 * @param extractor slice machinery over the training trace
 * @param branch_sidxs roots from selectCriticalBranches()
 * @return slices in the given order.
 */
std::vector<Slice>
extractBranchSlices(const SliceExtractor &extractor,
                    const std::vector<uint32_t> &branch_sidxs);

/**
 * Extracts one slice per selected delinquent load.
 * @param extractor slice machinery over the training trace
 * @param load_sidxs roots from selectDelinquentLoads()
 * @return slices in the given order.
 */
std::vector<Slice>
extractLoadSlices(const SliceExtractor &extractor,
                  const std::vector<uint32_t> &load_sidxs);

} // namespace crisp

#endif // CRISP_CORE_BRANCH_SLICES_H
