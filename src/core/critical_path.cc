#include "core/critical_path.h"

#include <algorithm>
#include <unordered_set>

namespace crisp
{

namespace
{

/** Computes up[] (toward root) and down[] (producer depth) scores. */
struct PathScores
{
    std::vector<double> up;
    std::vector<double> down;
    double maxPath = 0;
};

PathScores
computeScores(const SliceDag &dag)
{
    const size_t n = dag.nodes.size();
    PathScores ps;
    ps.up.assign(n, 0);
    ps.down.assign(n, 0);
    if (n == 0)
        return ps;

    // down[n]: longest producer chain ending at (and including) n.
    // Nodes are sorted by dynIdx, so producers precede consumers and
    // a single ascending pass over edges (grouped per consumer) works
    // once down[] is seeded with each node's own latency.
    for (size_t i = 0; i < n; ++i)
        ps.down[i] = dag.nodes[i].latency;
    // Edges may be in any order; iterate until no change would be
    // O(VE) worst case, but because producer index < consumer index
    // holds for every edge, one pass in ascending consumer order
    // suffices. Sort a copy by consumer dynIdx.
    auto edges = dag.edges;
    std::sort(edges.begin(), edges.end(),
              [](const auto &a, const auto &b) {
                  return a.first < b.first;
              });
    for (const auto &[c, p] : edges) {
        double cand = dag.nodes[c].latency + ps.down[p];
        if (cand > ps.down[c])
            ps.down[c] = cand;
    }

    // up[n]: longest chain from n's issue through its consumers to
    // the root, including n. Descending consumer order.
    ps.up[dag.rootNode] = dag.nodes[dag.rootNode].latency;
    for (auto it = edges.rbegin(); it != edges.rend(); ++it) {
        auto [c, p] = *it;
        if (ps.up[c] <= 0)
            continue; // consumer not on any path to the root
        double cand = ps.up[c] + dag.nodes[p].latency;
        if (cand > ps.up[p])
            ps.up[p] = cand;
    }

    ps.maxPath = ps.down[dag.rootNode];
    return ps;
}

} // namespace

double
longestPathLatency(const SliceDag &dag)
{
    return computeScores(dag).maxPath;
}

std::vector<uint32_t>
criticalPathFilter(const SliceDag &dag, double fraction)
{
    PathScores ps = computeScores(dag);
    std::unordered_set<uint32_t> statics;
    std::vector<uint32_t> out;
    if (dag.nodes.empty())
        return out;

    double threshold = fraction * ps.maxPath;
    for (size_t i = 0; i < dag.nodes.size(); ++i) {
        if (ps.up[i] <= 0)
            continue; // unreachable from root
        double through =
            ps.up[i] + ps.down[i] - dag.nodes[i].latency;
        bool keep = through >= threshold || i == dag.rootNode;
        if (keep && statics.insert(dag.nodes[i].sidx).second)
            out.push_back(dag.nodes[i].sidx);
    }
    return out;
}

} // namespace crisp
