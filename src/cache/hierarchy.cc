#include "cache/hierarchy.h"

#include <utility>

#include "cache/best_offset.h"
#include "cache/ghb_prefetcher.h"
#include "cache/stream_prefetcher.h"
#include "cache/stride_prefetcher.h"
#include "sim/warm_io.h"

namespace crisp
{

Hierarchy::Hierarchy(const SimConfig &cfg)
    : cfg_(cfg),
      l1i_("l1i", cfg.l1i),
      l1d_("l1d", cfg.l1d),
      llc_("llc", cfg.llc)
{
    if (cfg.enableBop)
        dataPf_.add(std::make_unique<BestOffsetPrefetcher>());
    if (cfg.enableStream)
        dataPf_.add(std::make_unique<StreamPrefetcher>());
    if (cfg.enableStride)
        dataPf_.add(std::make_unique<StridePrefetcher>());
    if (cfg.enableGhb)
        dataPf_.add(std::make_unique<GhbPrefetcher>());
}

template <bool kCountStats>
uint64_t
Hierarchy::fetchFromBelowImpl(uint64_t addr, uint64_t pc,
                              uint64_t cycle, bool is_ifetch,
                              MemLevel &served, bool critical)
{
    auto llc_res = kCountStats ? llc_.lookup(addr, cycle)
                               : llc_.warmLookup(addr, cycle);
    uint64_t ready;
    if (llc_res.hit) {
        served = MemLevel::LLC;
        ready = llc_res.readyCycle;
    } else {
        served = MemLevel::Dram;
        uint64_t at = cycle + llc_.latency();
        if constexpr (kCountStats) {
            uint64_t dram_ready = dram_.access(
                addr, at, critical && cfg_.enableCriticalDram);
            ready = llc_.allocateMshr(cycle, dram_ready);
            llc_.fill(addr, ready);
        } else {
            // The warm pass never issues critical requests: WarmMachine
            // models no criticality, matching the PR6 warm loop.
            uint64_t dram_ready = dram_.warmAccess(addr, at);
            ready = llc_.warmAllocateMshr(cycle, dram_ready);
            llc_.warmFill(addr, ready);
        }
    }
    // Train the data prefetchers on LLC-level demand activity.
    if (!is_ifetch && dataPf_.size() > 0) {
        pfScratch_.clear();
        PrefetchObservation obs{addr >> 6, pc, !llc_res.hit};
        dataPf_.observe(obs, pfScratch_);
        issuePrefetchesImpl<kCountStats>(cycle);
    }
    return ready;
}

uint64_t
Hierarchy::fetchFromBelow(uint64_t addr, uint64_t pc, uint64_t cycle,
                          bool is_ifetch, MemLevel &served,
                          bool critical)
{
    return fetchFromBelowImpl<true>(addr, pc, cycle, is_ifetch,
                                    served, critical);
}

template <bool kCountStats>
void
Hierarchy::issuePrefetchesImpl(uint64_t cycle)
{
    for (uint64_t line : pfScratch_) {
        uint64_t addr = line << 6;
        if (llc_.contains(addr))
            continue;
        if constexpr (kCountStats) {
            ++prefetchesIssued_;
            uint64_t ready =
                dram_.access(addr, cycle + llc_.latency());
            llc_.fill(addr, ready, /*is_prefetch=*/true);
        } else {
            uint64_t ready =
                dram_.warmAccess(addr, cycle + llc_.latency());
            llc_.warmFill(addr, ready, /*is_prefetch=*/true);
        }
    }
    pfScratch_.clear();
}

void
Hierarchy::issuePrefetches(uint64_t cycle)
{
    issuePrefetchesImpl<true>(cycle);
}

template <bool kCountStats>
MemAccessResult
Hierarchy::loadImpl(uint64_t addr, uint64_t pc, uint64_t cycle,
                    bool critical)
{
    MemAccessResult res;
    auto l1 = kCountStats ? l1d_.lookup(addr, cycle)
                          : l1d_.warmLookup(addr, cycle);
    if (l1.hit) {
        res.readyCycle = l1.readyCycle;
        res.servedBy = MemLevel::L1;
        return res;
    }
    uint64_t miss_cycle = cycle + l1d_.latency();
    uint64_t below = fetchFromBelowImpl<kCountStats>(
        addr, pc, miss_cycle, false, res.servedBy, critical);
    if constexpr (kCountStats) {
        uint64_t ready = l1d_.allocateMshr(cycle, below);
        l1d_.fill(addr, ready);
        res.readyCycle = ready;
    } else {
        uint64_t ready = l1d_.warmAllocateMshr(cycle, below);
        l1d_.warmFill(addr, ready);
        res.readyCycle = ready;
    }
    return res;
}

MemAccessResult
Hierarchy::load(uint64_t addr, uint64_t pc, uint64_t cycle,
                bool critical)
{
    return loadImpl<true>(addr, pc, cycle, critical);
}

MemAccessResult
Hierarchy::warmLoad(uint64_t addr, uint64_t pc, uint64_t cycle)
{
    return loadImpl<false>(addr, pc, cycle, false);
}

template <bool kCountStats>
MemAccessResult
Hierarchy::storeImpl(uint64_t addr, uint64_t pc, uint64_t cycle)
{
    MemAccessResult res;
    auto l1 = kCountStats ? l1d_.lookup(addr, cycle)
                          : l1d_.warmLookup(addr, cycle);
    if (l1.hit) {
        l1d_.markDirty(addr);
        res.readyCycle = l1.readyCycle;
        res.servedBy = MemLevel::L1;
        return res;
    }
    // Write-allocate: fetch the line, then dirty it.
    uint64_t miss_cycle = cycle + l1d_.latency();
    uint64_t below = fetchFromBelowImpl<kCountStats>(
        addr, pc, miss_cycle, false, res.servedBy, false);
    uint64_t ready = kCountStats
                         ? l1d_.allocateMshr(cycle, below)
                         : l1d_.warmAllocateMshr(cycle, below);
    if constexpr (kCountStats)
        l1d_.fill(addr, ready);
    else
        l1d_.warmFill(addr, ready);
    l1d_.markDirty(addr);
    res.readyCycle = ready;
    return res;
}

MemAccessResult
Hierarchy::store(uint64_t addr, uint64_t pc, uint64_t cycle)
{
    return storeImpl<true>(addr, pc, cycle);
}

MemAccessResult
Hierarchy::warmStore(uint64_t addr, uint64_t pc, uint64_t cycle)
{
    return storeImpl<false>(addr, pc, cycle);
}

template <bool kCountStats>
MemAccessResult
Hierarchy::ifetchImpl(uint64_t pc, uint64_t cycle)
{
    MemAccessResult res;
    auto l1 = kCountStats ? l1i_.lookup(pc, cycle)
                          : l1i_.warmLookup(pc, cycle);
    if (l1.hit) {
        res.readyCycle = l1.readyCycle;
        res.servedBy = MemLevel::L1;
        return res;
    }
    uint64_t miss_cycle = cycle + l1i_.latency();
    uint64_t below = fetchFromBelowImpl<kCountStats>(
        pc, pc, miss_cycle, true, res.servedBy, false);
    uint64_t ready = kCountStats
                         ? l1i_.allocateMshr(cycle, below)
                         : l1i_.warmAllocateMshr(cycle, below);
    if constexpr (kCountStats)
        l1i_.fill(pc, ready);
    else
        l1i_.warmFill(pc, ready);
    res.readyCycle = ready;
    return res;
}

MemAccessResult
Hierarchy::ifetch(uint64_t pc, uint64_t cycle)
{
    return ifetchImpl<true>(pc, cycle);
}

MemAccessResult
Hierarchy::warmIfetch(uint64_t pc, uint64_t cycle)
{
    return ifetchImpl<false>(pc, cycle);
}

template <bool kCountStats>
void
Hierarchy::prefetchDataImpl(uint64_t addr, uint64_t cycle)
{
    if (l1d_.contains(addr))
        return;
    MemLevel served;
    uint64_t ready = fetchFromBelowImpl<kCountStats>(addr, 0, cycle,
                                                     true, served,
                                                     false);
    if constexpr (kCountStats)
        l1d_.fill(addr, ready, /*is_prefetch=*/true);
    else
        l1d_.warmFill(addr, ready, /*is_prefetch=*/true);
}

void
Hierarchy::prefetchData(uint64_t addr, uint64_t cycle)
{
    prefetchDataImpl<true>(addr, cycle);
}

void
Hierarchy::warmPrefetchData(uint64_t addr, uint64_t cycle)
{
    prefetchDataImpl<false>(addr, cycle);
}

void
Hierarchy::prefetchInst(uint64_t pc, uint64_t cycle)
{
    if (l1i_.contains(pc))
        return;
    MemLevel served;
    uint64_t ready = fetchFromBelow(pc, pc, cycle, true, served);
    l1i_.fill(pc, ready, /*is_prefetch=*/true);
}

void
Hierarchy::adoptWarmState(const Hierarchy &warm, uint64_t warm_now)
{
    l1i_.adoptWarmState(warm.l1i_, warm_now);
    l1d_.adoptWarmState(warm.l1d_, warm_now);
    llc_.adoptWarmState(warm.llc_, warm_now);
    dram_.adoptWarmState(warm.dram_);
    dataPf_ = warm.dataPf_; // deep copy of trained engine tables
    pfScratch_.clear();
    prefetchesIssued_ = 0;
}

void
Hierarchy::adoptWarmState(Hierarchy &&warm, uint64_t warm_now)
{
    l1i_.adoptWarmState(std::move(warm.l1i_), warm_now);
    l1d_.adoptWarmState(std::move(warm.l1d_), warm_now);
    llc_.adoptWarmState(std::move(warm.llc_), warm_now);
    dram_.adoptWarmState(warm.dram_); // open rows: cheap copy
    dataPf_ = std::move(warm.dataPf_);
    pfScratch_.clear();
    prefetchesIssued_ = 0;
}

void
Hierarchy::serializeWarm(WarmSink &sink) const
{
    l1i_.serializeWarm(sink);
    l1d_.serializeWarm(sink);
    llc_.serializeWarm(sink);
    dram_.serializeWarm(sink);
    dataPf_.serializeWarm(sink);
}

bool
Hierarchy::deserializeWarm(WarmSource &src)
{
    return l1i_.deserializeWarm(src) && l1d_.deserializeWarm(src) &&
           llc_.deserializeWarm(src) && dram_.deserializeWarm(src) &&
           dataPf_.deserializeWarm(src);
}

} // namespace crisp
