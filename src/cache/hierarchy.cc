#include "cache/hierarchy.h"

#include "cache/best_offset.h"
#include "cache/ghb_prefetcher.h"
#include "cache/stream_prefetcher.h"
#include "cache/stride_prefetcher.h"

namespace crisp
{

Hierarchy::Hierarchy(const SimConfig &cfg)
    : cfg_(cfg),
      l1i_("l1i", cfg.l1i),
      l1d_("l1d", cfg.l1d),
      llc_("llc", cfg.llc)
{
    if (cfg.enableBop)
        dataPf_.add(std::make_unique<BestOffsetPrefetcher>());
    if (cfg.enableStream)
        dataPf_.add(std::make_unique<StreamPrefetcher>());
    if (cfg.enableStride)
        dataPf_.add(std::make_unique<StridePrefetcher>());
    if (cfg.enableGhb)
        dataPf_.add(std::make_unique<GhbPrefetcher>());
}

uint64_t
Hierarchy::fetchFromBelow(uint64_t addr, uint64_t pc, uint64_t cycle,
                          bool is_ifetch, MemLevel &served,
                          bool critical)
{
    auto llc_res = llc_.lookup(addr, cycle);
    uint64_t ready;
    if (llc_res.hit) {
        served = MemLevel::LLC;
        ready = llc_res.readyCycle;
    } else {
        served = MemLevel::Dram;
        uint64_t dram_ready = dram_.access(
            addr, cycle + llc_.latency(),
            critical && cfg_.enableCriticalDram);
        ready = llc_.allocateMshr(cycle, dram_ready);
        llc_.fill(addr, ready);
    }
    // Train the data prefetchers on LLC-level demand activity.
    if (!is_ifetch && dataPf_.size() > 0) {
        pfScratch_.clear();
        PrefetchObservation obs{addr >> 6, pc, !llc_res.hit};
        dataPf_.observe(obs, pfScratch_);
        issuePrefetches(cycle);
    }
    return ready;
}

void
Hierarchy::issuePrefetches(uint64_t cycle)
{
    for (uint64_t line : pfScratch_) {
        uint64_t addr = line << 6;
        if (llc_.contains(addr))
            continue;
        ++prefetchesIssued_;
        uint64_t ready = dram_.access(addr, cycle + llc_.latency());
        llc_.fill(addr, ready, /*is_prefetch=*/true);
    }
    pfScratch_.clear();
}

MemAccessResult
Hierarchy::load(uint64_t addr, uint64_t pc, uint64_t cycle,
                bool critical)
{
    MemAccessResult res;
    auto l1 = l1d_.lookup(addr, cycle);
    if (l1.hit) {
        res.readyCycle = l1.readyCycle;
        res.servedBy = MemLevel::L1;
        return res;
    }
    uint64_t miss_cycle = cycle + l1d_.latency();
    uint64_t below = fetchFromBelow(addr, pc, miss_cycle, false,
                                    res.servedBy, critical);
    uint64_t ready = l1d_.allocateMshr(cycle, below);
    l1d_.fill(addr, ready);
    res.readyCycle = ready;
    return res;
}

MemAccessResult
Hierarchy::store(uint64_t addr, uint64_t pc, uint64_t cycle)
{
    MemAccessResult res;
    auto l1 = l1d_.lookup(addr, cycle);
    if (l1.hit) {
        l1d_.markDirty(addr);
        res.readyCycle = l1.readyCycle;
        res.servedBy = MemLevel::L1;
        return res;
    }
    // Write-allocate: fetch the line, then dirty it.
    uint64_t miss_cycle = cycle + l1d_.latency();
    uint64_t below =
        fetchFromBelow(addr, pc, miss_cycle, false, res.servedBy);
    uint64_t ready = l1d_.allocateMshr(cycle, below);
    l1d_.fill(addr, ready);
    l1d_.markDirty(addr);
    res.readyCycle = ready;
    return res;
}

MemAccessResult
Hierarchy::ifetch(uint64_t pc, uint64_t cycle)
{
    MemAccessResult res;
    auto l1 = l1i_.lookup(pc, cycle);
    if (l1.hit) {
        res.readyCycle = l1.readyCycle;
        res.servedBy = MemLevel::L1;
        return res;
    }
    uint64_t miss_cycle = cycle + l1i_.latency();
    uint64_t below =
        fetchFromBelow(pc, pc, miss_cycle, true, res.servedBy);
    uint64_t ready = l1i_.allocateMshr(cycle, below);
    l1i_.fill(pc, ready);
    res.readyCycle = ready;
    return res;
}

void
Hierarchy::prefetchData(uint64_t addr, uint64_t cycle)
{
    if (l1d_.contains(addr))
        return;
    MemLevel served;
    uint64_t ready = fetchFromBelow(addr, 0, cycle, true, served);
    l1d_.fill(addr, ready, /*is_prefetch=*/true);
}

void
Hierarchy::prefetchInst(uint64_t pc, uint64_t cycle)
{
    if (l1i_.contains(pc))
        return;
    MemLevel served;
    uint64_t ready = fetchFromBelow(pc, pc, cycle, true, served);
    l1i_.fill(pc, ready, /*is_prefetch=*/true);
}

void
Hierarchy::adoptWarmState(const Hierarchy &warm, uint64_t warm_now)
{
    l1i_.adoptWarmState(warm.l1i_, warm_now);
    l1d_.adoptWarmState(warm.l1d_, warm_now);
    llc_.adoptWarmState(warm.llc_, warm_now);
    dram_.adoptWarmState(warm.dram_);
    dataPf_ = warm.dataPf_; // deep copy of trained engine tables
    pfScratch_.clear();
    prefetchesIssued_ = 0;
}

} // namespace crisp
