/**
 * @file
 * Two-level cache hierarchy (L1I/L1D + shared LLC slice) in front of
 * a DDR4 channel, with LLC-attached data prefetching (CRISP Table 1).
 */

#ifndef CRISP_CACHE_HIERARCHY_H
#define CRISP_CACHE_HIERARCHY_H

#include <memory>
#include <vector>

#include "cache/cache.h"
#include "cache/prefetcher.h"
#include "dram/controller.h"
#include "sim/config.h"

namespace crisp
{

/** Where a demand access was served from. */
enum class MemLevel { L1, LLC, Dram };

/** Outcome of one demand access. */
struct MemAccessResult
{
    uint64_t readyCycle = 0; ///< data-available cycle
    MemLevel servedBy = MemLevel::L1;

    /** @return true if the access left the chip. */
    bool llcMiss() const { return servedBy == MemLevel::Dram; }
};

/**
 * The memory system seen by one core. All timing is resolved to
 * completion cycles at access time (see cache/cache.h for the
 * discipline).
 */
class Hierarchy
{
  public:
    /** @param cfg system configuration (sizes, prefetchers). */
    explicit Hierarchy(const SimConfig &cfg);

    /**
     * Demand data load at @p cycle.
     * @param critical request DRAM bus priority (§6.1 extension;
     *        only honoured when the config enables it)
     */
    MemAccessResult load(uint64_t addr, uint64_t pc, uint64_t cycle,
                         bool critical = false);

    /** Store (write-allocate, write-back). */
    MemAccessResult store(uint64_t addr, uint64_t pc, uint64_t cycle);

    /** Instruction fetch of the line containing @p pc. */
    MemAccessResult ifetch(uint64_t pc, uint64_t cycle);

    /** Software / FDIP data prefetch: fills L1D+LLC, returns nothing. */
    void prefetchData(uint64_t addr, uint64_t cycle);

    /** FDIP instruction prefetch: fills L1I+LLC. */
    void prefetchInst(uint64_t pc, uint64_t cycle);

    /**
     * Warm-pass fast-path variants of load/store/ifetch/prefetchData:
     * the exact same cache, DRAM and prefetcher state transitions
     * (including MSHR stall delays, which decide the fill readyCycles
     * adoption clamps against) with zero statistics bookkeeping.
     * Snapshot adoption zeroes stats anyway, so counters are the one
     * piece of warm work with no consumer (DESIGN.md §14).
     */
    MemAccessResult warmLoad(uint64_t addr, uint64_t pc,
                             uint64_t cycle);
    /** Stat-free store; see warmLoad(). */
    MemAccessResult warmStore(uint64_t addr, uint64_t pc,
                              uint64_t cycle);
    /** Stat-free instruction fetch; see warmLoad(). */
    MemAccessResult warmIfetch(uint64_t pc, uint64_t cycle);
    /** Stat-free data prefetch; see warmLoad(). */
    void warmPrefetchData(uint64_t addr, uint64_t cycle);

    /** @return the L1 instruction cache. */
    Cache &l1i() { return l1i_; }
    const Cache &l1i() const { return l1i_; }
    /** @return the L1 data cache. */
    Cache &l1d() { return l1d_; }
    const Cache &l1d() const { return l1d_; }
    /** @return the last-level cache. */
    Cache &llc() { return llc_; }
    const Cache &llc() const { return llc_; }
    /** @return the DRAM controller. */
    DramController &dram() { return dram_; }
    const DramController &dram() const { return dram_; }

    /** @return number of data prefetches issued to memory. */
    uint64_t prefetchesIssued() const { return prefetchesIssued_; }

    /**
     * Adopts the architectural memory-system image of @p warm: cache
     * tags/LRU, DRAM open rows and trained prefetcher tables are
     * copied; all in-flight timing (line readiness, MSHRs, bank/bus
     * reservations) is clamped to a quiesced cycle-0 machine and all
     * statistics are zeroed (DESIGN.md §13).
     */
    void adoptWarmState(const Hierarchy &warm, uint64_t warm_now);

    /**
     * Move overload: steals @p warm's cache line arrays and trained
     * prefetcher engines instead of copying them. Identical
     * post-state to the copying overload; used by the pipelined
     * sampled path where each snapshot has exactly one consumer
     * (DESIGN.md §14).
     */
    void adoptWarmState(Hierarchy &&warm, uint64_t warm_now);

    /** Serializes the adoption-relevant memory-system image (cache
     *  lines, DRAM open rows, prefetcher tables) for the on-disk
     *  warm-artifact tier (DESIGN.md §14). */
    void serializeWarm(WarmSink &sink) const;

    /** Restores serializeWarm() content. @return false on truncation
     *  or a geometry mismatch. */
    bool deserializeWarm(WarmSource &src);

  private:
    SimConfig cfg_;
    Cache l1i_;
    Cache l1d_;
    Cache llc_;
    DramController dram_;
    CompositePrefetcher dataPf_;
    std::vector<uint64_t> pfScratch_;
    uint64_t prefetchesIssued_ = 0;

    /** Walks LLC -> DRAM for a line missing L1. */
    uint64_t fetchFromBelow(uint64_t addr, uint64_t pc,
                            uint64_t cycle, bool is_ifetch,
                            MemLevel &served, bool critical = false);
    void issuePrefetches(uint64_t cycle);

    // One definition each for the counting and warm (stat-free)
    // paths, so the content transitions cannot drift apart.
    template <bool kCountStats>
    uint64_t fetchFromBelowImpl(uint64_t addr, uint64_t pc,
                                uint64_t cycle, bool is_ifetch,
                                MemLevel &served, bool critical);
    template <bool kCountStats>
    void issuePrefetchesImpl(uint64_t cycle);
    template <bool kCountStats>
    MemAccessResult loadImpl(uint64_t addr, uint64_t pc,
                             uint64_t cycle, bool critical);
    template <bool kCountStats>
    MemAccessResult storeImpl(uint64_t addr, uint64_t pc,
                              uint64_t cycle);
    template <bool kCountStats>
    MemAccessResult ifetchImpl(uint64_t pc, uint64_t cycle);
    template <bool kCountStats>
    void prefetchDataImpl(uint64_t addr, uint64_t cycle);
};

} // namespace crisp

#endif // CRISP_CACHE_HIERARCHY_H
