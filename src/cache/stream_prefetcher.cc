#include "cache/stream_prefetcher.h"

#include "sim/warm_io.h"

namespace crisp
{

StreamPrefetcher::StreamPrefetcher(unsigned trackers)
    : trackers_(trackers)
{
}

void
StreamPrefetcher::observe(const PrefetchObservation &obs,
                          std::vector<uint64_t> &out)
{
    uint64_t region = obs.lineAddr >> kRegionShift;

    Tracker *tracker = nullptr;
    Tracker *victim = &trackers_[0];
    for (auto &t : trackers_) {
        if (t.valid && t.region == region) {
            tracker = &t;
            break;
        }
        if (!t.valid || t.lru < victim->lru)
            victim = &t;
    }

    if (!tracker) {
        *victim = Tracker{};
        victim->valid = true;
        victim->region = region;
        victim->lastLine = obs.lineAddr;
        victim->lru = ++clock_;
        return;
    }

    tracker->lru = ++clock_;
    int64_t delta =
        int64_t(obs.lineAddr) - int64_t(tracker->lastLine);
    if (delta == 0)
        return;
    int dir = delta > 0 ? 1 : -1;
    if (dir == tracker->direction) {
        if (tracker->confidence < 4)
            ++tracker->confidence;
    } else {
        tracker->direction = dir;
        tracker->confidence = 1;
    }
    tracker->lastLine = obs.lineAddr;

    if (tracker->confidence >= 2) {
        for (int k = 1; k <= kDegree; ++k)
            out.push_back(obs.lineAddr + int64_t(k) * dir);
    }
}

void
StreamPrefetcher::serializeWarm(WarmSink &sink) const
{
    sink.u64(trackers_.size());
    sink.u64(clock_);
    for (const Tracker &t : trackers_) {
        sink.u64(t.region);
        sink.u64(t.lastLine);
        sink.i64(t.direction);
        sink.i64(t.confidence);
        sink.u64(t.lru);
        sink.b(t.valid);
    }
}

bool
StreamPrefetcher::deserializeWarm(WarmSource &src)
{
    if (src.u64() != trackers_.size()) {
        src.markFail();
        return false;
    }
    clock_ = src.u64();
    for (Tracker &t : trackers_) {
        t.region = src.u64();
        t.lastLine = src.u64();
        t.direction = int(src.i64());
        t.confidence = int(src.i64());
        t.lru = src.u64();
        t.valid = src.b();
    }
    return src.ok();
}

} // namespace crisp
