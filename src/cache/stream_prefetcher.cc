#include "cache/stream_prefetcher.h"

namespace crisp
{

StreamPrefetcher::StreamPrefetcher(unsigned trackers)
    : trackers_(trackers)
{
}

void
StreamPrefetcher::observe(const PrefetchObservation &obs,
                          std::vector<uint64_t> &out)
{
    uint64_t region = obs.lineAddr >> kRegionShift;

    Tracker *tracker = nullptr;
    Tracker *victim = &trackers_[0];
    for (auto &t : trackers_) {
        if (t.valid && t.region == region) {
            tracker = &t;
            break;
        }
        if (!t.valid || t.lru < victim->lru)
            victim = &t;
    }

    if (!tracker) {
        *victim = Tracker{};
        victim->valid = true;
        victim->region = region;
        victim->lastLine = obs.lineAddr;
        victim->lru = ++clock_;
        return;
    }

    tracker->lru = ++clock_;
    int64_t delta =
        int64_t(obs.lineAddr) - int64_t(tracker->lastLine);
    if (delta == 0)
        return;
    int dir = delta > 0 ? 1 : -1;
    if (dir == tracker->direction) {
        if (tracker->confidence < 4)
            ++tracker->confidence;
    } else {
        tracker->direction = dir;
        tracker->confidence = 1;
    }
    tracker->lastLine = obs.lineAddr;

    if (tracker->confidence >= 2) {
        for (int k = 1; k <= kDegree; ++k)
            out.push_back(obs.lineAddr + int64_t(k) * dir);
    }
}

} // namespace crisp
