#include "cache/stride_prefetcher.h"

#include "sim/warm_io.h"

namespace crisp
{

StridePrefetcher::StridePrefetcher(unsigned entries)
    : table_(entries)
{
}

void
StridePrefetcher::observe(const PrefetchObservation &obs,
                          std::vector<uint64_t> &out)
{
    Entry &e = table_[(obs.pc >> 1) % table_.size()];
    if (!e.valid || e.pc != obs.pc) {
        e = Entry{};
        e.valid = true;
        e.pc = obs.pc;
        e.lastLine = obs.lineAddr;
        return;
    }
    int64_t stride = int64_t(obs.lineAddr) - int64_t(e.lastLine);
    if (stride != 0 && stride == e.stride) {
        if (e.confidence < 4)
            ++e.confidence;
    } else if (stride != 0) {
        e.stride = stride;
        e.confidence = 1;
    }
    e.lastLine = obs.lineAddr;
    if (stride != 0 && e.confidence >= 2) {
        for (int k = 1; k <= kDegree; ++k)
            out.push_back(obs.lineAddr + e.stride * k);
    }
}

void
StridePrefetcher::serializeWarm(WarmSink &sink) const
{
    sink.u64(table_.size());
    for (const Entry &e : table_) {
        sink.u64(e.pc);
        sink.u64(e.lastLine);
        sink.i64(e.stride);
        sink.i64(e.confidence);
        sink.b(e.valid);
    }
}

bool
StridePrefetcher::deserializeWarm(WarmSource &src)
{
    if (src.u64() != table_.size()) {
        src.markFail();
        return false;
    }
    for (Entry &e : table_) {
        e.pc = src.u64();
        e.lastLine = src.u64();
        e.stride = src.i64();
        e.confidence = int(src.i64());
        e.valid = src.b();
    }
    return src.ok();
}

} // namespace crisp
