#include "cache/stride_prefetcher.h"

namespace crisp
{

StridePrefetcher::StridePrefetcher(unsigned entries)
    : table_(entries)
{
}

void
StridePrefetcher::observe(const PrefetchObservation &obs,
                          std::vector<uint64_t> &out)
{
    Entry &e = table_[(obs.pc >> 1) % table_.size()];
    if (!e.valid || e.pc != obs.pc) {
        e = Entry{};
        e.valid = true;
        e.pc = obs.pc;
        e.lastLine = obs.lineAddr;
        return;
    }
    int64_t stride = int64_t(obs.lineAddr) - int64_t(e.lastLine);
    if (stride != 0 && stride == e.stride) {
        if (e.confidence < 4)
            ++e.confidence;
    } else if (stride != 0) {
        e.stride = stride;
        e.confidence = 1;
    }
    e.lastLine = obs.lineAddr;
    if (stride != 0 && e.confidence >= 2) {
        for (int k = 1; k <= kDegree; ++k)
            out.push_back(obs.lineAddr + e.stride * k);
    }
}

} // namespace crisp
