#include "cache/prefetcher.h"

#include "sim/warm_io.h"

namespace crisp
{

void
CompositePrefetcher::serializeWarm(WarmSink &sink) const
{
    sink.u64(engines_.size());
    for (const auto &e : engines_) {
        // The engine name guards against a composition mismatch
        // between the artifact writer and this reader.
        sink.str(e->name());
        e->serializeWarm(sink);
    }
}

bool
CompositePrefetcher::deserializeWarm(WarmSource &src)
{
    if (src.u64() != engines_.size()) {
        src.markFail();
        return false;
    }
    for (auto &e : engines_) {
        if (src.str() != e->name()) {
            src.markFail();
            return false;
        }
        if (!e->deserializeWarm(src))
            return false;
    }
    return src.ok();
}

} // namespace crisp
