// Prefetcher interfaces are header-only; this file keeps the build
// layout uniform.
#include "cache/prefetcher.h"
