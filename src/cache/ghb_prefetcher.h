/**
 * @file
 * Global history buffer prefetcher, G/DC variant (Nesbit & Smith,
 * HPCA 2004) — the "GHB" alternative baseline of CRISP §5.1.
 */

#ifndef CRISP_CACHE_GHB_PREFETCHER_H
#define CRISP_CACHE_GHB_PREFETCHER_H

#include <vector>

#include "cache/prefetcher.h"

namespace crisp
{

/**
 * Global history buffer with delta-correlation: the last two global
 * miss deltas are matched against history; on a match, the deltas
 * that followed historically are prefetched.
 */
class GhbPrefetcher : public Prefetcher
{
  public:
    /** @param entries circular history buffer depth. */
    explicit GhbPrefetcher(unsigned entries = 256);

    void observe(const PrefetchObservation &obs,
                 std::vector<uint64_t> &out) override;

    const char *name() const override { return "ghb"; }

    std::unique_ptr<Prefetcher> clone() const override
    {
        return std::make_unique<GhbPrefetcher>(*this);
    }

    void serializeWarm(WarmSink &sink) const override;
    bool deserializeWarm(WarmSource &src) override;

  private:
    static constexpr int kDegree = 4;

    std::vector<uint64_t> buffer_; // miss line addresses, circular
    size_t head_ = 0;
    size_t filled_ = 0;
};

} // namespace crisp

#endif // CRISP_CACHE_GHB_PREFETCHER_H
