/**
 * @file
 * Set-associative cache with miss-status holding registers.
 *
 * The hierarchy uses a fill-on-access timing discipline: a miss
 * immediately installs the line with a @c readyCycle in the future;
 * later accesses to the same line before that cycle are MSHR merges
 * and observe the in-flight completion time. This models miss-level
 * parallelism and MSHR occupancy without a global event queue.
 */

#ifndef CRISP_CACHE_CACHE_H
#define CRISP_CACHE_CACHE_H

#include <cstdint>
#include <string>
#include <vector>

#include "sim/config.h"

namespace crisp
{

class StatRegistry;
class WarmSink;
class WarmSource;

/** Per-cache statistics. */
struct CacheStats
{
    uint64_t accesses = 0;
    uint64_t misses = 0;
    uint64_t mshrMerges = 0;
    uint64_t mshrStallCycles = 0;
    uint64_t prefetchFills = 0;
    uint64_t prefetchHits = 0; ///< demand hits on prefetched lines
    uint64_t writebacks = 0;

    /** @return misses / accesses. */
    double missRatio() const
    {
        return accesses ? double(misses) / double(accesses) : 0.0;
    }

    /** Registers every counter under @p prefix (telemetry). */
    void registerInto(StatRegistry &reg,
                      const std::string &prefix) const;

    /** Adds @p other counter-wise (sampled-interval stitching). */
    void accumulate(const CacheStats &other)
    {
        accesses += other.accesses;
        misses += other.misses;
        mshrMerges += other.mshrMerges;
        mshrStallCycles += other.mshrStallCycles;
        prefetchFills += other.prefetchFills;
        prefetchHits += other.prefetchHits;
        writebacks += other.writebacks;
    }

    /** Subtracts @p base counter-wise (warm-up mark removal). */
    void subtract(const CacheStats &base)
    {
        accesses -= base.accesses;
        misses -= base.misses;
        mshrMerges -= base.mshrMerges;
        mshrStallCycles -= base.mshrStallCycles;
        prefetchFills -= base.prefetchFills;
        prefetchHits -= base.prefetchHits;
        writebacks -= base.writebacks;
    }
};

/**
 * One cache level. Lookup/fill primitives only; the walk across
 * levels lives in Hierarchy.
 */
class Cache
{
  public:
    /** Result of a timed lookup. */
    struct LookupResult
    {
        bool hit = false;        ///< line present (possibly in flight)
        bool inFlight = false;   ///< hit on an in-flight (MSHR) line
        uint64_t readyCycle = 0; ///< cycle the data is available
    };

    /**
     * @param name stats label
     * @param cfg geometry and timing
     */
    Cache(std::string name, const CacheConfig &cfg);

    /**
     * Timed lookup of the line containing @p addr at @p cycle.
     * On a hit, LRU is refreshed and readyCycle is
     * max(cycle, line fill time) + hit latency.
     */
    LookupResult lookup(uint64_t addr, uint64_t cycle);

    /**
     * Installs the line containing @p addr, with data arriving at
     * @p ready_cycle. Evicts LRU. @p is_prefetch marks the line for
     * prefetch-accuracy accounting.
     * @return the evicted line address or 0 (no dirty victim).
     */
    uint64_t fill(uint64_t addr, uint64_t ready_cycle,
                  bool is_prefetch = false);

    /** Marks the line dirty (store hit). No-op if absent. */
    void markDirty(uint64_t addr);

    /**
     * Accounts an MSHR allocation for a miss issued at @p cycle
     * completing at @p ready_cycle.
     * @return the possibly-delayed completion when MSHRs are full.
     */
    uint64_t allocateMshr(uint64_t cycle, uint64_t ready_cycle);

    /**
     * Warm-pass fast-path variants of lookup/fill/allocateMshr: the
     * exact same content transitions (tag install, LRU refresh,
     * prefetched-flag clearing, MSHR completion delays) with zero
     * statistics bookkeeping. The functional warm pass uses these so
     * the snapshot *content* stays bit-identical to the statistics-
     * counting path — snapshot adoption zeroes stats anyway, so the
     * counters are the one piece of warm work with no consumer
     * (DESIGN.md §14).
     */
    LookupResult warmLookup(uint64_t addr, uint64_t cycle);
    /** Stat-free fill; see warmLookup(). */
    uint64_t warmFill(uint64_t addr, uint64_t ready_cycle,
                      bool is_prefetch = false);
    /** Stat-free MSHR allocation; see warmLookup(). */
    uint64_t warmAllocateMshr(uint64_t cycle, uint64_t ready_cycle);

    /** @return true if the line is present (functional query). */
    bool contains(uint64_t addr) const;

    /** @return hit latency in cycles. */
    unsigned latency() const { return cfg_.latency; }
    /** @return line size in bytes. */
    unsigned lineBytes() const { return cfg_.lineBytes; }

    /** @return accumulated statistics. */
    const CacheStats &stats() const { return stats_; }
    /** @return mutable statistics (hierarchy-level accounting). */
    CacheStats &stats() { return stats_; }

    /** Resets contents and statistics. */
    void reset();

    /**
     * Adopts the architectural contents of @p warm: tags, LRU order
     * and line attributes are copied, but timing state is clamped to
     * a quiesced machine — every line is ready at cycle 0, MSHRs are
     * empty — and statistics are zeroed. This is how a sampled
     * interval core starts from a functional warm image without
     * inheriting in-flight timing from a foreign cycle domain
     * (DESIGN.md §13).
     */
    void adoptWarmState(const Cache &warm, uint64_t warm_now);

    /**
     * Move overload: steals @p warm's line array instead of copying
     * it, then clamps in place. Identical post-state to the copying
     * overload; used by the pipelined sampled path where each
     * snapshot has exactly one consumer (DESIGN.md §14).
     */
    void adoptWarmState(Cache &&warm, uint64_t warm_now);

    /**
     * Serializes the adoption-relevant content (lines incl. fill
     * readyCycles, LRU clock) for the on-disk warm-artifact tier.
     * Geometry is not serialized — it is part of the artifact key.
     */
    void serializeWarm(WarmSink &sink) const;

    /**
     * Restores serializeWarm() content into this (same-geometry)
     * cache. @return false on truncation or a geometry mismatch;
     * the cache contents are unspecified on failure.
     */
    bool deserializeWarm(WarmSource &src);

  private:
    // The invariant checker audits tag/set placement, per-set tag
    // uniqueness, LRU stamp sanity and the MSHR occupancy bound
    // without widening the public interface.
    friend class InvariantChecker;

    struct Line
    {
        uint64_t tag = 0;
        uint64_t readyCycle = 0;
        uint64_t lru = 0;
        bool valid = false;
        bool dirty = false;
        bool prefetched = false;
    };

    std::string name_;
    CacheConfig cfg_;
    unsigned sets_;
    unsigned lineShift_;
    /** sets_ - 1 when sets_ is a power of two, else 0 (fall back to
     *  division). A hardware `div` in the set-index path costs more
     *  than the rest of a hit lookup combined. */
    uint64_t setMask_ = 0;
    std::vector<Line> lines_;
    std::vector<uint64_t> mshrReady_; // completion times, unsorted
    uint64_t lruClock_ = 0;
    CacheStats stats_;

    uint64_t lineAddr(uint64_t addr) const
    {
        return addr >> lineShift_;
    }
    size_t setIndex(uint64_t tag) const
    {
        return size_t(setMask_ ? (tag & setMask_) : (tag % sets_));
    }
    Line *findLine(uint64_t addr);
    const Line *findLine(uint64_t addr) const;

    /** Drops in-flight prefetches and clamps timing after lines_ has
     *  been installed by either adoptWarmState overload. */
    void clampAdoptedLines(uint64_t warm_now);

    // One definition each for the counting and warm (stat-free)
    // paths, so the content transitions cannot drift apart.
    template <bool kCountStats>
    LookupResult lookupImpl(uint64_t addr, uint64_t cycle);
    template <bool kCountStats>
    uint64_t fillImpl(uint64_t addr, uint64_t ready_cycle,
                      bool is_prefetch);
    template <bool kCountStats>
    uint64_t allocateMshrImpl(uint64_t cycle, uint64_t ready_cycle);
};

} // namespace crisp

#endif // CRISP_CACHE_CACHE_H
