/**
 * @file
 * Best-offset prefetcher (Michaud, HPCA 2016), the paper's primary
 * data prefetcher (CRISP Table 1).
 */

#ifndef CRISP_CACHE_BEST_OFFSET_H
#define CRISP_CACHE_BEST_OFFSET_H

#include <array>
#include <vector>

#include "cache/prefetcher.h"

namespace crisp
{

/**
 * Best-offset prefetching: a learning phase scores a list of
 * candidate line offsets against a recent-requests table; the winning
 * offset is used for prefetching until the next round completes.
 */
class BestOffsetPrefetcher : public Prefetcher
{
  public:
    BestOffsetPrefetcher();

    void observe(const PrefetchObservation &obs,
                 std::vector<uint64_t> &out) override;

    const char *name() const override { return "bop"; }

    std::unique_ptr<Prefetcher> clone() const override
    {
        return std::make_unique<BestOffsetPrefetcher>(*this);
    }

    void serializeWarm(WarmSink &sink) const override;
    bool deserializeWarm(WarmSource &src) override;

    /** @return the currently selected offset (0 = prefetch off). */
    int currentOffset() const { return bestOffset_; }

  private:
    static constexpr int kMaxScore = 31;
    static constexpr int kMaxRounds = 32;
    static constexpr int kBadScore = 1;
    static constexpr size_t kRrEntries = 256;

    std::vector<int> offsets_;
    std::vector<int> scores_;
    std::array<uint64_t, kRrEntries> rrTable_{};
    size_t testIdx_ = 0;
    int round_ = 0;
    int bestOffset_ = 1;

    void rrInsert(uint64_t line_addr);
    bool rrContains(uint64_t line_addr) const;
    void finishRound();
};

} // namespace crisp

#endif // CRISP_CACHE_BEST_OFFSET_H
