/**
 * @file
 * PC-indexed stride prefetcher (the "regular stride" alternative
 * baseline of CRISP §5.1).
 */

#ifndef CRISP_CACHE_STRIDE_PREFETCHER_H
#define CRISP_CACHE_STRIDE_PREFETCHER_H

#include <vector>

#include "cache/prefetcher.h"

namespace crisp
{

/**
 * Classic reference-prediction table: per load PC, track the last
 * line address and stride; prefetch ahead when the stride repeats.
 */
class StridePrefetcher : public Prefetcher
{
  public:
    /** @param entries table size (direct-mapped by PC). */
    explicit StridePrefetcher(unsigned entries = 256);

    void observe(const PrefetchObservation &obs,
                 std::vector<uint64_t> &out) override;

    const char *name() const override { return "stride"; }

    std::unique_ptr<Prefetcher> clone() const override
    {
        return std::make_unique<StridePrefetcher>(*this);
    }

    void serializeWarm(WarmSink &sink) const override;
    bool deserializeWarm(WarmSource &src) override;

  private:
    static constexpr int kDegree = 2;

    struct Entry
    {
        uint64_t pc = 0;
        uint64_t lastLine = 0;
        int64_t stride = 0;
        int confidence = 0;
        bool valid = false;
    };

    std::vector<Entry> table_;
};

} // namespace crisp

#endif // CRISP_CACHE_STRIDE_PREFETCHER_H
