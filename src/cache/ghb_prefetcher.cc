#include "cache/ghb_prefetcher.h"

#include "sim/warm_io.h"

namespace crisp
{

GhbPrefetcher::GhbPrefetcher(unsigned entries)
    : buffer_(entries, 0)
{
}

void
GhbPrefetcher::observe(const PrefetchObservation &obs,
                       std::vector<uint64_t> &out)
{
    if (!obs.miss)
        return;

    auto at = [this](size_t back) {
        return buffer_[(head_ + buffer_.size() - back) %
                       buffer_.size()];
    };

    buffer_[head_ = (head_ + 1) % buffer_.size()] = obs.lineAddr;
    if (filled_ < buffer_.size())
        ++filled_;
    if (filled_ < 4)
        return;

    int64_t d1 = int64_t(at(0)) - int64_t(at(1));
    int64_t d2 = int64_t(at(1)) - int64_t(at(2));

    // Search backwards for the same delta pair.
    size_t depth = std::min(filled_, buffer_.size()) - 1;
    for (size_t back = 3; back + 1 < depth; ++back) {
        int64_t h1 = int64_t(at(back)) - int64_t(at(back + 1));
        int64_t h2 = back + 2 < depth
                         ? int64_t(at(back + 1)) - int64_t(at(back + 2))
                         : 0;
        if (h1 == d1 && h2 == d2) {
            // Replay the deltas that followed the historic match.
            uint64_t base = obs.lineAddr;
            for (int k = 1; k <= kDegree && back >= size_t(k); ++k) {
                int64_t delta = int64_t(at(back - k)) -
                                int64_t(at(back - k + 1));
                base += delta;
                out.push_back(base);
            }
            return;
        }
    }
}

void
GhbPrefetcher::serializeWarm(WarmSink &sink) const
{
    sink.u64(buffer_.size());
    for (uint64_t v : buffer_)
        sink.u64(v);
    sink.u64(head_);
    sink.u64(filled_);
}

bool
GhbPrefetcher::deserializeWarm(WarmSource &src)
{
    if (src.u64() != buffer_.size()) {
        src.markFail();
        return false;
    }
    for (uint64_t &v : buffer_)
        v = src.u64();
    head_ = size_t(src.u64());
    filled_ = size_t(src.u64());
    return src.ok();
}

} // namespace crisp
