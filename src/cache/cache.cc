#include "cache/cache.h"

#include <algorithm>
#include <bit>
#include <cassert>
#include <utility>

#include "sim/warm_io.h"
#include "telemetry/stat_registry.h"

namespace crisp
{

void
CacheStats::registerInto(StatRegistry &reg,
                         const std::string &prefix) const
{
    reg.addCounter(statPath(prefix, "accesses"), accesses);
    reg.addCounter(statPath(prefix, "misses"), misses);
    reg.addScalar(statPath(prefix, "miss_ratio"), missRatio());
    reg.addCounter(statPath(prefix, "mshr_merges"), mshrMerges,
                   "hits on lines with an in-flight miss");
    reg.addCounter(statPath(prefix, "mshr_stall_cycles"),
                   mshrStallCycles);
    reg.addCounter(statPath(prefix, "prefetch_fills"),
                   prefetchFills);
    reg.addCounter(statPath(prefix, "prefetch_hits"), prefetchHits,
                   "demand hits on prefetched lines");
    reg.addCounter(statPath(prefix, "writebacks"), writebacks);
}

Cache::Cache(std::string name, const CacheConfig &cfg)
    : name_(std::move(name)), cfg_(cfg)
{
    assert(std::has_single_bit(uint64_t(cfg_.lineBytes)));
    lineShift_ = std::countr_zero(uint64_t(cfg_.lineBytes));
    sets_ = static_cast<unsigned>(
        cfg_.sizeBytes / (uint64_t(cfg_.ways) * cfg_.lineBytes));
    assert(sets_ > 0);
    if (std::has_single_bit(uint64_t(sets_)))
        setMask_ = uint64_t(sets_) - 1;
    lines_.assign(size_t(sets_) * cfg_.ways, Line{});
    mshrReady_.reserve(cfg_.mshrs);
}

Cache::Line *
Cache::findLine(uint64_t addr)
{
    uint64_t tag = lineAddr(addr);
    Line *set = &lines_[setIndex(tag) * cfg_.ways];
    for (unsigned w = 0; w < cfg_.ways; ++w) {
        if (set[w].valid && set[w].tag == tag)
            return &set[w];
    }
    return nullptr;
}

const Cache::Line *
Cache::findLine(uint64_t addr) const
{
    return const_cast<Cache *>(this)->findLine(addr);
}

template <bool kCountStats>
Cache::LookupResult
Cache::lookupImpl(uint64_t addr, uint64_t cycle)
{
    if constexpr (kCountStats)
        ++stats_.accesses;
    LookupResult res;
    Line *line = findLine(addr);
    if (!line) {
        if constexpr (kCountStats)
            ++stats_.misses;
        return res;
    }
    line->lru = ++lruClock_;
    res.hit = true;
    if (line->prefetched) {
        if constexpr (kCountStats)
            ++stats_.prefetchHits;
        line->prefetched = false;
    }
    if (line->readyCycle > cycle) {
        // MSHR merge: data still in flight.
        res.inFlight = true;
        if constexpr (kCountStats)
            ++stats_.mshrMerges;
        res.readyCycle = line->readyCycle + cfg_.latency;
    } else {
        res.readyCycle = cycle + cfg_.latency;
    }
    return res;
}

Cache::LookupResult
Cache::lookup(uint64_t addr, uint64_t cycle)
{
    return lookupImpl<true>(addr, cycle);
}

Cache::LookupResult
Cache::warmLookup(uint64_t addr, uint64_t cycle)
{
    return lookupImpl<false>(addr, cycle);
}

template <bool kCountStats>
uint64_t
Cache::fillImpl(uint64_t addr, uint64_t ready_cycle, bool is_prefetch)
{
    uint64_t tag = lineAddr(addr);
    Line *set = &lines_[setIndex(tag) * cfg_.ways];
    Line *victim = nullptr;
    for (unsigned w = 0; w < cfg_.ways && !victim; ++w) {
        if (set[w].valid && set[w].tag == tag)
            victim = &set[w]; // refill of an existing line
    }
    for (unsigned w = 0; w < cfg_.ways && !victim; ++w) {
        if (!set[w].valid)
            victim = &set[w];
    }
    if (!victim) {
        victim = &set[0];
        for (unsigned w = 1; w < cfg_.ways; ++w) {
            if (set[w].lru < victim->lru)
                victim = &set[w];
        }
    }
    uint64_t evicted = 0;
    if (victim->valid && victim->tag != tag && victim->dirty) {
        if constexpr (kCountStats)
            ++stats_.writebacks;
        evicted = victim->tag << lineShift_;
    }
    if (is_prefetch) {
        if constexpr (kCountStats)
            ++stats_.prefetchFills;
    }
    victim->valid = true;
    victim->tag = tag;
    victim->readyCycle = ready_cycle;
    victim->lru = ++lruClock_;
    victim->dirty = false;
    victim->prefetched = is_prefetch;
    return evicted;
}

uint64_t
Cache::fill(uint64_t addr, uint64_t ready_cycle, bool is_prefetch)
{
    return fillImpl<true>(addr, ready_cycle, is_prefetch);
}

uint64_t
Cache::warmFill(uint64_t addr, uint64_t ready_cycle, bool is_prefetch)
{
    return fillImpl<false>(addr, ready_cycle, is_prefetch);
}

void
Cache::markDirty(uint64_t addr)
{
    if (Line *line = findLine(addr))
        line->dirty = true;
}

template <bool kCountStats>
uint64_t
Cache::allocateMshrImpl(uint64_t cycle, uint64_t ready_cycle)
{
    // Retire completed entries.
    std::erase_if(mshrReady_,
                  [cycle](uint64_t r) { return r <= cycle; });
    if (mshrReady_.size() >= cfg_.mshrs) {
        // Structural stall: wait for the earliest completion. The
        // delay feeds fill readyCycles, which decide which in-flight
        // prefetches adoption drops — so the warm path keeps it.
        auto it = std::min_element(mshrReady_.begin(),
                                   mshrReady_.end());
        uint64_t wait = *it > cycle ? *it - cycle : 0;
        if constexpr (kCountStats)
            stats_.mshrStallCycles += wait;
        ready_cycle += wait;
        *it = ready_cycle; // slot reused by this miss
        return ready_cycle;
    }
    mshrReady_.push_back(ready_cycle);
    return ready_cycle;
}

uint64_t
Cache::allocateMshr(uint64_t cycle, uint64_t ready_cycle)
{
    return allocateMshrImpl<true>(cycle, ready_cycle);
}

uint64_t
Cache::warmAllocateMshr(uint64_t cycle, uint64_t ready_cycle)
{
    return allocateMshrImpl<false>(cycle, ready_cycle);
}

bool
Cache::contains(uint64_t addr) const
{
    return findLine(addr) != nullptr;
}

void
Cache::reset()
{
    std::fill(lines_.begin(), lines_.end(), Line{});
    mshrReady_.clear();
    lruClock_ = 0;
    stats_ = CacheStats{};
}

void
Cache::clampAdoptedLines(uint64_t warm_now)
{
    for (auto &line : lines_) {
        // A demand fill still in flight at the snapshot is clamped to
        // ready: its consumer is stalled on it, and it lands within a
        // memory latency of the interval start either way. A
        // *prefetched* fill still in flight is dropped instead — it is
        // speculative, nothing waits on it, and granting it instantly
        // would credit the interval with prefetch coverage the full
        // run has not earned yet.
        if (line.prefetched && line.readyCycle > warm_now)
            line.valid = false;
        line.readyCycle = 0;
    }
    mshrReady_.clear();
    stats_ = CacheStats{};
}

void
Cache::adoptWarmState(const Cache &warm, uint64_t warm_now)
{
    lines_ = warm.lines_;
    lruClock_ = warm.lruClock_;
    clampAdoptedLines(warm_now);
}

void
Cache::adoptWarmState(Cache &&warm, uint64_t warm_now)
{
    lines_ = std::move(warm.lines_);
    lruClock_ = warm.lruClock_;
    clampAdoptedLines(warm_now);
}

void
Cache::serializeWarm(WarmSink &sink) const
{
    sink.u64(lines_.size());
    sink.u64(lruClock_);
    for (const Line &line : lines_) {
        sink.u64(line.tag);
        sink.u64(line.readyCycle);
        sink.u64(line.lru);
        sink.b(line.valid);
        sink.b(line.dirty);
        sink.b(line.prefetched);
    }
}

bool
Cache::deserializeWarm(WarmSource &src)
{
    if (src.u64() != lines_.size()) {
        src.markFail();
        return false;
    }
    lruClock_ = src.u64();
    for (Line &line : lines_) {
        line.tag = src.u64();
        line.readyCycle = src.u64();
        line.lru = src.u64();
        line.valid = src.b();
        line.dirty = src.b();
        line.prefetched = src.b();
    }
    mshrReady_.clear();
    return src.ok();
}

} // namespace crisp
