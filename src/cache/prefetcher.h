/**
 * @file
 * Data prefetcher interface and composite.
 *
 * The paper's baseline enables a best-offset prefetcher plus a stream
 * prefetcher (CRISP Table 1); stride and GHB prefetchers are provided
 * as the alternative baselines mentioned in §5.1.
 */

#ifndef CRISP_CACHE_PREFETCHER_H
#define CRISP_CACHE_PREFETCHER_H

#include <cstdint>
#include <memory>
#include <vector>

namespace crisp
{

class WarmSink;
class WarmSource;

/** A demand access observed by a prefetcher. */
struct PrefetchObservation
{
    uint64_t lineAddr;  ///< line-granular address (addr >> 6)
    uint64_t pc;        ///< PC of the demand load
    bool miss;          ///< demand missed this cache level
};

/**
 * Abstract data prefetcher. observe() is called for each demand
 * access at the attach level; the prefetcher appends line-granular
 * prefetch candidates to @p out.
 */
class Prefetcher
{
  public:
    virtual ~Prefetcher() = default;

    /**
     * Observes a demand access and emits prefetch candidates.
     * @param obs the demand access
     * @param[out] out line addresses to prefetch
     */
    virtual void observe(const PrefetchObservation &obs,
                         std::vector<uint64_t> &out) = 0;

    /** @return a short name for stats. */
    virtual const char *name() const = 0;

    /**
     * @return a deep copy carrying the full trained state. Used by
     *         sampled simulation so warm prefetcher tables can be
     *         handed to per-interval cores.
     */
    virtual std::unique_ptr<Prefetcher> clone() const = 0;

    /**
     * Serializes the trained state for the on-disk warm-artifact
     * tier (DESIGN.md §14). Table geometry is part of the artifact
     * key, not the payload.
     */
    virtual void serializeWarm(WarmSink &sink) const = 0;

    /**
     * Restores serializeWarm() content into this (same-geometry)
     * engine. @return false on truncation or geometry mismatch.
     */
    virtual bool deserializeWarm(WarmSource &src) = 0;
};

/** Fans one observation out to several engines. */
class CompositePrefetcher : public Prefetcher
{
  public:
    CompositePrefetcher() = default;

    /** Deep copy: every engine is cloned with its trained state. */
    CompositePrefetcher(const CompositePrefetcher &other)
    {
        engines_.reserve(other.engines_.size());
        for (const auto &e : other.engines_)
            engines_.push_back(e->clone());
    }

    CompositePrefetcher &operator=(const CompositePrefetcher &other)
    {
        if (this != &other) {
            engines_.clear();
            engines_.reserve(other.engines_.size());
            for (const auto &e : other.engines_)
                engines_.push_back(e->clone());
        }
        return *this;
    }

    CompositePrefetcher(CompositePrefetcher &&) = default;
    CompositePrefetcher &operator=(CompositePrefetcher &&) = default;

    /** Adds an engine (ownership transferred). */
    void add(std::unique_ptr<Prefetcher> engine)
    {
        engines_.push_back(std::move(engine));
    }

    void observe(const PrefetchObservation &obs,
                 std::vector<uint64_t> &out) override
    {
        for (auto &e : engines_)
            e->observe(obs, out);
    }

    const char *name() const override { return "composite"; }

    std::unique_ptr<Prefetcher> clone() const override
    {
        return std::make_unique<CompositePrefetcher>(*this);
    }

    void serializeWarm(WarmSink &sink) const override;
    bool deserializeWarm(WarmSource &src) override;

    /** @return number of attached engines. */
    size_t size() const { return engines_.size(); }

  private:
    std::vector<std::unique_ptr<Prefetcher>> engines_;
};

} // namespace crisp

#endif // CRISP_CACHE_PREFETCHER_H
