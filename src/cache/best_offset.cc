#include "cache/best_offset.h"

#include <algorithm>

#include "sim/warm_io.h"

namespace crisp
{

BestOffsetPrefetcher::BestOffsetPrefetcher()
{
    // Michaud's offset list: products of small primes up to 64,
    // abbreviated to the positive, common cases.
    offsets_ = {1, 2, 3, 4, 5, 6, 8, 9, 10, 12, 15, 16,
                18, 20, 24, 25, 27, 30, 32, 36, 40, 48, 54, 64};
    scores_.assign(offsets_.size(), 0);
}

void
BestOffsetPrefetcher::rrInsert(uint64_t line_addr)
{
    rrTable_[line_addr % kRrEntries] = line_addr;
}

bool
BestOffsetPrefetcher::rrContains(uint64_t line_addr) const
{
    return rrTable_[line_addr % kRrEntries] == line_addr;
}

void
BestOffsetPrefetcher::finishRound()
{
    auto it = std::max_element(scores_.begin(), scores_.end());
    int best = int(it - scores_.begin());
    bestOffset_ = scores_[best] > kBadScore ? offsets_[best] : 0;
    std::fill(scores_.begin(), scores_.end(), 0);
    round_ = 0;
    testIdx_ = 0;
}

void
BestOffsetPrefetcher::observe(const PrefetchObservation &obs,
                              std::vector<uint64_t> &out)
{
    // Learning: test one candidate offset per access. If the access
    // minus the candidate offset was itself recently requested, the
    // candidate would have prefetched this access in time.
    int cand = offsets_[testIdx_];
    if (rrContains(obs.lineAddr - cand)) {
        if (++scores_[testIdx_] >= kMaxScore) {
            finishRound();
            cand = 0;
        }
    }
    if (cand != 0) {
        if (++testIdx_ == offsets_.size()) {
            testIdx_ = 0;
            if (++round_ >= kMaxRounds)
                finishRound();
        }
    }

    // The base of a (hypothetically timely) prefetch for this access.
    rrInsert(obs.lineAddr);

    if (bestOffset_ != 0)
        out.push_back(obs.lineAddr + bestOffset_);
}

void
BestOffsetPrefetcher::serializeWarm(WarmSink &sink) const
{
    sink.u64(scores_.size());
    for (int s : scores_)
        sink.i64(s);
    for (uint64_t v : rrTable_)
        sink.u64(v);
    sink.u64(testIdx_);
    sink.i64(round_);
    sink.i64(bestOffset_);
}

bool
BestOffsetPrefetcher::deserializeWarm(WarmSource &src)
{
    if (src.u64() != scores_.size()) {
        src.markFail();
        return false;
    }
    for (int &s : scores_)
        s = int(src.i64());
    for (uint64_t &v : rrTable_)
        v = src.u64();
    testIdx_ = size_t(src.u64());
    round_ = int(src.i64());
    bestOffset_ = int(src.i64());
    return src.ok();
}

} // namespace crisp
