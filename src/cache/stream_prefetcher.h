/**
 * @file
 * Region-based stream prefetcher (Table 1's "Stream").
 */

#ifndef CRISP_CACHE_STREAM_PREFETCHER_H
#define CRISP_CACHE_STREAM_PREFETCHER_H

#include <vector>

#include "cache/prefetcher.h"

namespace crisp
{

/**
 * Detects monotonically ascending or descending line streams within
 * 4 KiB regions and prefetches @c kDegree lines ahead once a stream
 * is confirmed by two consecutive steps in the same direction.
 */
class StreamPrefetcher : public Prefetcher
{
  public:
    /** @param trackers number of concurrently tracked regions. */
    explicit StreamPrefetcher(unsigned trackers = 16);

    void observe(const PrefetchObservation &obs,
                 std::vector<uint64_t> &out) override;

    const char *name() const override { return "stream"; }

    std::unique_ptr<Prefetcher> clone() const override
    {
        return std::make_unique<StreamPrefetcher>(*this);
    }

    void serializeWarm(WarmSink &sink) const override;
    bool deserializeWarm(WarmSource &src) override;

  private:
    static constexpr int kDegree = 4;
    static constexpr unsigned kRegionShift = 6; // 4 KiB / 64 B lines

    struct Tracker
    {
        uint64_t region = 0;
        uint64_t lastLine = 0;
        int direction = 0;  ///< +1 / -1 / 0 (unconfirmed)
        int confidence = 0;
        uint64_t lru = 0;
        bool valid = false;
    };

    std::vector<Tracker> trackers_;
    uint64_t clock_ = 0;
};

} // namespace crisp

#endif // CRISP_CACHE_STREAM_PREFETCHER_H
