/**
 * @file
 * Workload registry and shared builder utilities.
 *
 * Each workload is a proxy kernel reproducing the memory/branch
 * pathology the paper reports for one evaluated application (see
 * DESIGN.md §5). A builder must emit *identical code* for the Train
 * and Ref input sets — only the initial data (sizes, seeds, layouts)
 * may differ — mirroring the paper's use of SPEC train inputs for
 * profiling and ref inputs for evaluation (CRISP §5.1).
 */

#ifndef CRISP_WORKLOADS_WORKLOAD_H
#define CRISP_WORKLOADS_WORKLOAD_H

#include <cstdint>
#include <string>
#include <vector>

#include "trace/program.h"
#include "vm/assembler.h"

namespace crisp
{

/** Which input parameterisation to build (CRISP §5.1). */
enum class InputSet { Train, Ref };

/** A registered workload proxy. */
struct WorkloadInfo
{
    /** Short id, e.g. "mcf". */
    std::string name;
    /** What pathology this proxy reproduces. */
    std::string description;
    /** Builds the program for the given input set. */
    Program (*build)(InputSet);
};

/** @return all registered workloads, in evaluation order. */
const std::vector<WorkloadInfo> &workloadRegistry();

/** @return the workload named @p name, or nullptr. */
const WorkloadInfo *findWorkload(const std::string &name);

/** @return the names of all registered workloads. */
std::vector<std::string> workloadNames();

/**
 * Deterministic xorshift64* RNG used by the builders so Train and Ref
 * layouts are reproducible.
 */
class Rng
{
  public:
    explicit Rng(uint64_t seed) : state_(seed ? seed : 0x9e3779b97f4a7c15)
    {}

    /** @return the next 64-bit pseudo-random value. */
    uint64_t next()
    {
        state_ ^= state_ >> 12;
        state_ ^= state_ << 25;
        state_ ^= state_ >> 27;
        return state_ * 0x2545f4914f6cdd1dULL;
    }

    /** @return a value in [0, bound). */
    uint64_t next(uint64_t bound) { return bound ? next() % bound : 0; }

  private:
    uint64_t state_;
};

/** @return a random permutation of 0..n-1. */
std::vector<uint32_t> randomPermutation(uint32_t n, Rng &rng);

// Shared memory-map constants for all builders.
constexpr uint64_t kGlobalBase = 0x100000;  ///< parameter block
constexpr uint64_t kStackBase = 0x180000;   ///< stack slots
constexpr uint64_t kStaticBase = 0x200000;  ///< small hot arrays
constexpr uint64_t kHeapBase = 0x1000000;   ///< large working sets

/**
 * Emits a branch-free hot/cold gather address: three quarters of the
 * dynamic indices map into a small LLC-resident window of the target
 * region, one quarter into the full (DRAM-sized) region. This gives
 * delinquent loads the 20-40% LLC miss ratios the paper's selection
 * heuristic targets (CRISP §3.2) while keeping AMAT in the regime
 * where scheduling slack is a meaningful fraction of latency.
 *
 * @param a assembler to emit into
 * @param out receives the byte offset (add to the region base)
 * @param idx pseudo-random index source (clobbered: use a temp)
 * @param hot_mask byte mask of the hot window (e.g. 128 KiB - 8)
 * @param cold_mask byte mask of the full region (e.g. 16 MiB - 8)
 * @param t1 scratch register
 * @param t2 scratch register
 */
void emitHotColdOffset(Assembler &a, RegId out, RegId idx,
                       int64_t hot_mask, int64_t cold_mask,
                       RegId t1, RegId t2);

// Individual builders (registered in workloadRegistry()).
Program buildPointerChase(InputSet input);
/** pointer_chase with the manual prefetch of Fig 2 (examples only). */
Program buildPointerChasePrefetch(InputSet input);
Program buildMcf(InputSet input);
Program buildLbm(InputSet input);
Program buildOmnetpp(InputSet input);
Program buildXhpcg(InputSet input);
Program buildBwaves(InputSet input);
Program buildNamd(InputSet input);
Program buildDeepsjeng(InputSet input);
Program buildPerlbench(InputSet input);
Program buildGcc(InputSet input);
Program buildFotonik(InputSet input);
Program buildCactus(InputSet input);
Program buildNab(InputSet input);
Program buildMoses(InputSet input);
Program buildMemcached(InputSet input);
Program buildImgdnn(InputSet input);

} // namespace crisp

#endif // CRISP_WORKLOADS_WORKLOAD_H
