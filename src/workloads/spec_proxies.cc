/**
 * @file
 * SPEC2017/Xhpcg proxy kernels, part 1 (mcf, lbm, omnetpp, xhpcg,
 * bwaves, namd).
 *
 * Each proxy recreates the specific behaviour CRISP's evaluation
 * attributes to the application (see DESIGN.md §5); none is intended
 * to match the application's absolute IPC. The common construction:
 * a *serial* delinquent-load chain (so profiled MLP stays below the
 * §3.2 threshold), surrounded by work that (a) depends on the miss
 * data, (b) is internally parallel and (c) is load/store-port heavy —
 * exactly the situation where an oldest-ready-first scheduler delays
 * the next critical slice behind non-critical work.
 */

#include "vm/assembler.h"
#include "workloads/workload.h"

namespace crisp
{

namespace
{

struct Scale
{
    uint32_t n;
    uint64_t seed;
};

Scale
scaleOf(InputSet input, uint32_t train_n, uint32_t ref_n)
{
    if (input == InputSet::Train)
        return {train_n, 0xc0ffee};
    return {ref_n, 0xdecafbad};
}

} // namespace

/**
 * mcf: network-simplex proxy. A serialized walk over a randomly
 * permuted parent-pointer array (one low-MLP LLC miss per step); the
 * arc-cost bookkeeping is 16 independent histogram updates keyed off
 * the missing cost, flooding the load/store ports exactly when the
 * next pointer slice becomes ready. The address slice is
 * registers-only, so IBDA competes well here.
 */
Program
buildMcf(InputSet input)
{
    auto [num_nodes, seed] = scaleOf(input, 30000, 90000);
    Rng rng(seed);
    Assembler a;

    const RegId r_base = 61, r_hist = 60, r_n = 59, r_cnt = 58;
    const RegId r_gp = 57;
    const RegId r_cur = 10, r_addr = 11, r_par = 12, r_cost = 13;
    const RegId r_sum = 14, r_t = 15;
    const RegId r_k0 = 20; // k0..k15 histogram chains use r20..r35

    auto perm = randomPermutation(num_nodes, rng);
    for (uint32_t i = 0; i < num_nodes; ++i) {
        uint64_t addr = kHeapBase + uint64_t(perm[i]) * 64;
        a.poke(addr, perm[(i + 1) % num_nodes]); // parent slot id
        a.poke(addr + 8, rng.next(1000));        // cost
    }
    for (uint32_t i = 0; i < 64; ++i)
        a.poke(kStaticBase + i * 8, rng.next(16));
    a.poke(kGlobalBase, num_nodes - 1);
    a.poke(kGlobalBase + 8, perm[0]);

    a.movi(r_gp, kGlobalBase);
    a.movi(r_base, kHeapBase);
    a.movi(r_hist, kStaticBase);
    a.ld(r_n, r_gp, 0);
    a.ld(r_cur, r_gp, 8);
    a.movi(r_cnt, 0);
    a.movi(r_sum, 0);

    auto outer = a.label();
    auto skip = a.label();

    a.bind(outer);
    // Critical slice: slot id -> byte address -> parent load.
    a.shli(r_addr, r_cur, 6);
    a.add(r_addr, r_addr, r_base);
    a.ld(r_par, r_addr, 0);     // delinquent: parent slot (serial)
    a.ld(r_cost, r_addr, 8);    // same line
    // 10 independent arc-scan chains, two loads and a store each,
    // all hanging off r_cost: they become ready exactly when the
    // next pointer slice does and flood both memory ports. (Sized
    // so body plus the next slice fits the 96-entry RS.)
    for (int k = 0; k < 10; ++k) {
        RegId rk = static_cast<RegId>(r_k0 + k);
        a.xori(rk, r_par, k * 29 + 3);
        a.andi(rk, rk, 0x1f8);
        a.ldx(r_t, r_hist, rk);
        a.fmul(r_t, r_t, r_par);
        a.stx(r_hist, rk, r_t);
    }
    // Semi-predictable pricing branch (~88% taken), after the work.
    a.slti(r_t, r_cost, 880);
    a.bne(r_t, 0, skip);
    a.addi(r_sum, r_sum, 7);
    a.muli(r_sum, r_sum, 3);
    a.bind(skip);
    a.mov(r_cur, r_par);
    a.addi(r_cnt, r_cnt, 1);
    a.blt(r_cnt, r_n, outer);
    a.halt();
    return a.finish("mcf");
}

/**
 * lbm: lattice stencil proxy. A prefetchable cell stream plus a
 * serial irregular gather; the collision branch compares against a
 * value loaded through a short L1-resident chain seeded by the
 * *previous* gather, so its misprediction resolves only after that
 * chain schedules (CRISP §3.4/§5.3: load slicing alone is throttled
 * by the branch gating the frontend; branch slicing unlocks it).
 */
Program
buildLbm(InputSet input)
{
    auto [num_cells, seed] = scaleOf(input, 40000, 120000);
    Rng rng(seed);
    Assembler a;

    const uint32_t aux_words = 1u << 20; // 8 MiB gather target
    const RegId r_cells = 61, r_aux = 60, r_tbl = 59, r_n = 58;
    const RegId r_cnt = 57, r_gp = 56, r_mask = 55, r_sp = 62;
    const RegId r_c = 10, r_t = 11, r_u = 12, r_g = 13, r_v = 14;
    const RegId r_acc = 15, r_b = 16, r_f = 17;
    const RegId r_w0 = 20; // work chains r20..r27

    const uint64_t aux_base = kHeapBase + (1ULL << 25);
    for (uint32_t i = 0; i < num_cells; ++i)
        a.poke(kHeapBase + uint64_t(i) * 8, rng.next());
    // Dense hot window (the low 64 KiB) so serial chains through
    // gathered values never collapse onto the zero fixed point.
    for (uint32_t i = 0; i < 8192; ++i)
        a.poke(aux_base + uint64_t(i) * 8, rng.next());
    for (uint32_t i = 0; i < 8192; ++i)
        a.poke(aux_base + rng.next(aux_words) * 8, rng.next());
    for (uint32_t i = 0; i < 128; ++i)
        a.poke(kStaticBase + i * 8, rng.next());
    a.poke(kGlobalBase, num_cells - 4);

    a.movi(r_gp, kGlobalBase);
    a.movi(r_sp, kStackBase);
    a.movi(r_cells, kHeapBase);
    a.movi(r_aux, aux_base);
    a.movi(r_tbl, kStaticBase);
    a.movi(r_mask, (aux_words - 1) * 8);
    a.ld(r_n, r_gp, 0);
    a.movi(r_cnt, 0);
    a.movi(r_acc, 1);

    auto loop = a.label();
    auto collide = a.label();
    auto join = a.label();

    a.bind(loop);
    a.shli(r_t, r_cnt, 3);
    a.ldx(r_c, r_cells, r_t);   // streaming load (BOP covers it)
    // Serial delinquent gather: the index chain starts directly off
    // the previous gather's value and spills the partial hash
    // through the stack mid-chain (dependence through memory, the
    // IBDA blind spot; MLP ~1).
    a.xor_(r_g, r_acc, r_c);
    a.muli(r_g, r_g, 0x9e3779b1);
    a.shri(r_t, r_g, 9);
    a.xor_(r_g, r_g, r_t);
    a.st(r_sp, r_g, 32);        // spill the partial hash
    a.ld(r_g, r_sp, 32);        // ... and reload it
    emitHotColdOffset(a, r_g, r_g, 0xffff, (1 << 23) - 1, r_t,
                      r_u);
    a.ldx(r_v, r_aux, r_g);     // delinquent gather (serial)
    // 8 independent table updates hanging off the gather value;
    // they become ready at the same instant as everything below.
    for (int k = 0; k < 8; ++k) {
        RegId rk = static_cast<RegId>(r_w0 + k);
        a.xori(rk, r_v, k * 57 + 11);
        a.andi(rk, rk, 0x3f8);
        a.ldx(r_t, r_tbl, rk);
        a.fmul(r_t, r_t, r_v);
        a.stx(r_tbl, rk, r_t);
    }
    // Collision branch: condition hangs off the *current* gather
    // plus an L1 lookup and sits behind the update work, so the
    // oldest-first baseline resolves it late; when it mispredicts,
    // fetch of the next body (and its gather) is gated on it.
    a.andi(r_b, r_v, 0x3f8);
    a.ldx(r_f, r_tbl, r_b);     // L1-resident compare operand
    a.xor_(r_u, r_f, r_c);
    a.andi(r_u, r_u, 1);
    a.bne(r_u, 0, collide);     // ~50/50, data-random
    a.fadd(r_acc, r_c, r_v);
    a.jmp(join);
    a.bind(collide);
    a.fmul(r_acc, r_c, r_v);
    a.bind(join);
    a.addi(r_cnt, r_cnt, 1);
    a.blt(r_cnt, r_n, loop);
    a.halt();
    return a.finish("lbm");
}

/**
 * omnetpp: discrete-event proxy. A two-level heap sift whose compare
 * branches depend on missing heap keys (fetch gates on them), then an
 * event-object gather; the event handler is 12 independent updates
 * keyed off the popped key.
 */
Program
buildOmnetpp(InputSet input)
{
    auto [heap_words, seed] = scaleOf(input, 1u << 20, 1u << 21);
    Rng rng(seed);
    Assembler a;

    const RegId r_heap = 61, r_tbl = 60, r_n = 59, r_cnt = 58;
    const RegId r_gp = 57, r_hmask = 56;
    const RegId r_i = 10, r_l = 11, r_a = 12, r_b = 13, r_t = 14;
    const RegId r_key = 15, r_u = 16;
    const RegId r_w0 = 20; // handler chains r20..r31

    for (uint32_t i = 0; i < 16384; ++i)
        a.poke(kHeapBase + uint64_t(i) * 8, rng.next());
    for (uint32_t i = 0; i < 65536; ++i)
        a.poke(kHeapBase + (rng.next(heap_words) & ~1ULL) * 8,
               rng.next());
    for (uint32_t i = 0; i < 128; ++i)
        a.poke(kStaticBase + i * 8, rng.next());
    a.poke(kGlobalBase, 8000);
    a.poke(kGlobalBase + 8, (heap_words - 1) & ~1ULL);

    a.movi(r_gp, kGlobalBase);
    a.movi(r_heap, kHeapBase);
    a.movi(r_tbl, kStaticBase);
    a.ld(r_hmask, r_gp, 8); // input-size mask lives in data
    a.ld(r_n, r_gp, 0);
    a.movi(r_cnt, 0);
    a.movi(r_key, 0x1357);

    auto outer = a.label();

    a.bind(outer);
    // Start index depends on the previous pop (serial chase).
    a.xor_(r_t, r_key, r_cnt);
    a.muli(r_t, r_t, 2654435761U);
    a.shri(r_t, r_t, 5);
    emitHotColdOffset(a, r_i, r_t, 0x3fff, (1 << 23) - 1, r_l,
                      r_u);
    a.shri(r_i, r_i, 3);
    a.and_(r_i, r_i, r_hmask);
    for (int level = 0; level < 2; ++level) {
        auto pick_right = a.label();
        auto done = a.label();
        a.shli(r_l, r_i, 1);    // child index
        a.and_(r_l, r_l, r_hmask);
        a.shli(r_t, r_l, 3);
        a.ldx(r_a, r_heap, r_t);     // delinquent: left key
        a.ldx(r_b, r_heap, r_t, 8);  // right key (same line)
        a.blt(r_a, r_b, pick_right); // data-random, gated on miss
        a.mov(r_key, r_a);
        a.mov(r_i, r_l);
        a.jmp(done);
        a.bind(pick_right);
        a.mov(r_key, r_b);
        a.addi(r_i, r_l, 1);
        a.bind(done);
    }
    // Event handler: 12 independent updates keyed off the key.
    for (int k = 0; k < 12; ++k) {
        RegId rk = static_cast<RegId>(r_w0 + k);
        a.xori(rk, r_key, k * 41 + 5);
        a.andi(rk, rk, 0x3f8);
        a.ldx(r_u, r_tbl, rk);
        a.add(r_u, r_u, r_key);
        a.stx(r_tbl, rk, r_u);
    }
    a.addi(r_cnt, r_cnt, 1);
    a.blt(r_cnt, r_n, outer);
    a.halt();
    return a.finish("omnetpp");
}

/**
 * xhpcg: symmetric-Gauss-Seidel-like sparse sweep. Four x-vector
 * gathers per row (MLP ~4, below the §3.2 threshold) whose column
 * base depends on the previous row's accumulated sum (the SymGS
 * loop-carried dependence), followed by row work hanging off the
 * sum. Benefits grow with RS/ROB (Fig 9's xhpcg signature).
 */
Program
buildXhpcg(InputSet input)
{
    auto [num_rows, seed] = scaleOf(input, 30000, 90000);
    Rng rng(seed);
    Assembler a;

    const uint32_t x_words = 1u << 20;   // 8 MiB gathered vector
    const uint32_t col_words = 1u << 12; // 32 KiB resident columns
    const RegId r_cols = 61, r_x = 60, r_tbl = 59, r_n = 58;
    const RegId r_row = 57, r_gp = 56, r_xmask = 55, r_cmask = 54;
    const RegId r_sum = 10, r_t = 11, r_j = 12, r_col = 13;
    const RegId r_xv = 14, r_u = 15;
    const RegId r_w0 = 20; // row work r20..r29

    const uint64_t x_base = kHeapBase + (1ULL << 26);
    for (uint32_t i = 0; i < col_words; ++i) {
        bool cold = rng.next(5) < 3;
        a.poke(kHeapBase + uint64_t(i) * 8,
               cold ? rng.next(x_words) : rng.next(8192));
    }
    for (uint32_t i = 0; i < 8192; ++i)
        a.poke(x_base + uint64_t(i) * 8, rng.next(100) + 1);
    for (uint32_t i = 0; i < 8192; ++i)
        a.poke(x_base + rng.next(x_words) * 8, rng.next(100) + 1);
    for (uint32_t i = 0; i < 128; ++i)
        a.poke(kStaticBase + i * 8, rng.next(9) + 1);
    a.poke(kGlobalBase, num_rows - 1);

    a.movi(r_gp, kGlobalBase);
    a.movi(r_cols, kHeapBase);
    a.movi(r_x, x_base);
    a.movi(r_tbl, kStaticBase);
    a.movi(r_xmask, (x_words - 1) * 8);
    a.movi(r_cmask, (col_words - 4) * 8);
    a.ld(r_n, r_gp, 0);
    a.movi(r_row, 0);
    a.movi(r_sum, 0x5a5a);

    auto row_loop = a.label();
    a.bind(row_loop);
    // Column base: depends on the previous row's sum (SymGS).
    a.xor_(r_j, r_sum, r_row);
    a.muli(r_j, r_j, 0x61c88647);
    a.shri(r_j, r_j, 7);
    a.shli(r_j, r_j, 3);
    a.and_(r_j, r_j, r_cmask);
    a.movi(r_sum, 0);
    // Four gathers, independent within the row.
    for (int j = 0; j < 4; ++j) {
        a.ldx(r_col, r_cols, r_j, j * 8); // resident column index
        a.shli(r_t, r_col, 3);
        a.and_(r_t, r_t, r_xmask);
        a.ldx(r_xv, r_x, r_t);            // delinquent: x[col]
        a.fadd(r_sum, r_sum, r_xv);       // serial accumulation
    }
    // Row work: 10 independent load/FP pairs off the sum.
    for (int k = 0; k < 10; ++k) {
        RegId rk = static_cast<RegId>(r_w0 + k);
        a.xori(rk, r_sum, k * 23 + 7);
        a.andi(rk, rk, 0x3f8);
        a.ldx(r_u, r_tbl, rk);
        a.fmul(r_u, r_u, r_sum);
        a.stx(r_tbl, rk, r_u);
    }
    a.addi(r_row, r_row, 1);
    a.blt(r_row, r_n, row_loop);
    a.halt();
    return a.finish("xhpcg");
}

/**
 * bwaves: the negative example of CRISP §5.2. Batches of eight
 * *independent* random gathers per iteration: very high LLC MPKI but
 * also high MLP, so the misses are already overlapped and not
 * latency-critical. CRISP's MLP filter declines to tag them; IBDA's
 * MPKI-only delinquency selection prioritizes them anyway.
 */
Program
buildBwaves(InputSet input)
{
    auto [iters, seed] = scaleOf(input, 12000, 36000);
    Rng rng(seed);
    Assembler a;

    const uint32_t grid_words = 1u << 21; // 16 MiB
    const RegId r_grid = 61, r_n = 60, r_cnt = 59, r_gp = 58;
    const RegId r_mask = 57;
    const RegId r_s = 10;
    const RegId r_i0 = 11, r_v0 = 19;
    const RegId r_acc = 27, r_t = 28;

    for (uint32_t i = 0; i < 8192; ++i)
        a.poke(kHeapBase + rng.next(grid_words) * 8,
               rng.next(1000));
    a.poke(kGlobalBase, iters);
    a.poke(kGlobalBase + 8, seed | 1);

    a.movi(r_gp, kGlobalBase);
    a.movi(r_grid, kHeapBase);
    a.movi(r_mask, (grid_words - 1) * 8);
    a.ld(r_n, r_gp, 0);
    a.ld(r_s, r_gp, 8);
    a.movi(r_cnt, 0);
    a.movi(r_acc, 0);

    auto loop = a.label();
    a.bind(loop);
    // Eight independent indices from cheap LCG steps, then all eight
    // gathers back to back: MLP ~= 8.
    for (int k = 0; k < 8; ++k) {
        a.muli(r_s, r_s, 6364136223846793005LL);
        a.addi(r_s, r_s, 1442695040888963407LL);
        a.shri(r_t, r_s, 23);
        a.shli(r_t, r_t, 3);
        a.and_(static_cast<RegId>(r_i0 + k), r_t, r_mask);
    }
    for (int k = 0; k < 8; ++k) {
        a.ldx(static_cast<RegId>(r_v0 + k), r_grid,
              static_cast<RegId>(r_i0 + k));
    }
    for (int k = 0; k < 8; ++k)
        a.fadd(r_acc, r_acc, static_cast<RegId>(r_v0 + k));
    a.fmul(r_acc, r_acc, r_acc);
    a.addi(r_cnt, r_cnt, 1);
    a.blt(r_cnt, r_n, loop);
    a.halt();
    return a.finish("bwaves");
}

/**
 * namd: force-loop proxy whose delinquent gather's address slice is
 * spilled through the stack under register pressure: the neighbour
 * index is computed, stored to [sp+24] and reloaded before use.
 * Register-only IBDA stops at the reload and never prioritizes the
 * spill *store*, whose port contention with the force-update stores
 * then delays the gather (CRISP §5.2).
 */
Program
buildNamd(InputSet input)
{
    auto [num_particles, seed] = scaleOf(input, 30000, 90000);
    Rng rng(seed);
    Assembler a;

    const uint32_t pos_words = 1u << 20; // 8 MiB positions
    const RegId r_nbr = 61, r_pos = 60, r_tbl = 59, r_n = 58;
    const RegId r_cnt = 57, r_gp = 56, r_mask = 55, sp = 62;
    const RegId r_t = 10, r_idx = 11, r_j = 12, r_p = 13, r_u = 14;
    const RegId r_w0 = 20; // force updates r20..r27

    const uint64_t pos_base = kHeapBase + (1ULL << 26);
    for (uint32_t i = 0; i < num_particles; ++i)
        a.poke(kHeapBase + uint64_t(i) * 8, rng.next());
    for (uint32_t i = 0; i < 8192; ++i)
        a.poke(pos_base + uint64_t(i) * 8, rng.next());
    for (uint32_t i = 0; i < 8192; ++i)
        a.poke(pos_base + rng.next(pos_words) * 8,
               rng.next(4096));
    for (uint32_t i = 0; i < 128; ++i)
        a.poke(kStaticBase + i * 8, rng.next());
    a.poke(kGlobalBase, num_particles - 1);

    a.movi(r_gp, kGlobalBase);
    a.movi(sp, kStackBase);
    a.movi(r_nbr, kHeapBase);
    a.movi(r_pos, pos_base);
    a.movi(r_tbl, kStaticBase);
    a.movi(r_mask, (pos_words - 1) * 8);
    a.ld(r_n, r_gp, 0);
    a.movi(r_cnt, 0);
    a.movi(r_p, 0x77);

    auto loop = a.label();
    a.bind(loop);
    // Index slice: neighbour-list load + hash, mixed with the
    // previous gather (serial chase) ...
    a.shli(r_t, r_cnt, 3);
    a.ldx(r_idx, r_nbr, r_t);   // neighbour entry (streaming)
    a.xor_(r_idx, r_idx, r_p);  // previous gather value
    a.muli(r_idx, r_idx, 40503);
    a.shri(r_u, r_idx, 11);
    a.xor_(r_idx, r_idx, r_u);
    emitHotColdOffset(a, r_idx, r_idx, 0xffff, (1 << 23) - 1,
                      r_u, r_t);
    // ... spilled to the stack and reloaded (the IBDA blind spot).
    a.st(sp, r_idx, 24);
    a.ld(r_j, sp, 24);          // reload of the index
    a.ldx(r_p, r_pos, r_j);     // delinquent gather pos[j]
    // Force updates: 8 independent load/FP/store chains off pos[j].
    for (int k = 0; k < 8; ++k) {
        RegId rk = static_cast<RegId>(r_w0 + k);
        a.xori(rk, r_p, k * 83 + 13);
        a.andi(rk, rk, 0x3f8);
        a.ldx(r_u, r_tbl, rk);
        a.fmul(r_u, r_u, r_p);
        a.stx(r_tbl, rk, r_u);
    }
    a.addi(r_cnt, r_cnt, 1);
    a.blt(r_cnt, r_n, loop);
    a.halt();
    return a.finish("namd");
}

} // namespace crisp
