/**
 * @file
 * SPEC2017 proxy kernels, part 2 (deepsjeng, perlbench, gcc, fotonik,
 * cactus, nab). See DESIGN.md §5 for the pathology each reproduces
 * and spec_proxies.cc for the common construction recipe.
 */

#include "vm/assembler.h"
#include "workloads/workload.h"

namespace crisp
{

namespace
{

struct Scale2
{
    uint32_t n;
    uint64_t seed;
};

Scale2
scale2(InputSet input, uint32_t train_n, uint32_t ref_n)
{
    if (input == InputSet::Train)
        return {train_n, 0xabad1dea};
    return {ref_n, 0x5eed5eed};
}

} // namespace

/**
 * deepsjeng: game-tree search proxy. A serialized walk over a node
 * array with hot/cold children (transposition-table locality) and two
 * data-random branches per step whose conditions hang off the node
 * load: branch slices alone are worth several percent (CRISP §5.3).
 */
Program
buildDeepsjeng(InputSet input)
{
    auto [num_nodes, seed] = scale2(input, 1u << 17, 1u << 18);
    Rng rng(seed);
    Assembler a;

    const RegId r_tree = 61, r_tbl = 60, r_n = 59, r_cnt = 58;
    const RegId r_gp = 57, r_mask = 56;
    const RegId r_cur = 10, r_val = 11, r_ev = 12, r_t = 13;
    const RegId r_u = 14, r_best = 15, r_addr = 16;
    const RegId r_w0 = 20; // history updates r20..r27

    // Node: 64 B; [0]=value, [8]=left child slot, [16]=right.
    // Children: 75% in a hot 2K-node window, 25% anywhere.
    for (uint32_t i = 0; i < num_nodes; ++i) {
        uint64_t addr = kHeapBase + uint64_t(i) * 64;
        a.poke(addr, rng.next());
        uint64_t l = rng.next(4) ? rng.next(2048) : rng.next(num_nodes);
        uint64_t r = rng.next(4) ? rng.next(2048) : rng.next(num_nodes);
        a.poke(addr + 8, l);
        a.poke(addr + 16, r);
    }
    for (uint32_t i = 0; i < 128; ++i)
        a.poke(kStaticBase + i * 8, rng.next());
    a.poke(kGlobalBase, 12000);
    a.poke(kGlobalBase + 8, rng.next(num_nodes));
    a.poke(kGlobalBase + 16, num_nodes - 1);

    a.movi(r_gp, kGlobalBase);
    a.movi(r_tree, kHeapBase);
    a.movi(r_tbl, kStaticBase);
    a.ld(r_mask, r_gp, 16); // input-size mask lives in data
    a.ld(r_n, r_gp, 0);
    a.ld(r_cur, r_gp, 8);
    a.movi(r_cnt, 0);
    a.movi(r_best, 0);

    auto loop = a.label();
    auto right = a.label();
    auto stepped = a.label();
    auto no_cut = a.label();

    a.bind(loop);
    a.shli(r_addr, r_cur, 6);
    a.add(r_addr, r_addr, r_tree);
    a.ld(r_val, r_addr, 0);     // delinquent: node value (serial)
    // Eval chain: mixes the iteration counter so revisited nodes do
    // not trap the walk in a deterministic cycle.
    a.xor_(r_ev, r_val, r_cnt);
    a.muli(r_ev, r_ev, 0x9e37);
    a.shri(r_t, r_ev, 7);
    a.xor_(r_ev, r_ev, r_t);
    // History updates: 8 independent chains off the eval.
    for (int k = 0; k < 8; ++k) {
        RegId rk = static_cast<RegId>(r_w0 + k);
        a.xori(rk, r_ev, k * 37 + 9);
        a.andi(rk, rk, 0x3f8);
        a.ldx(r_u, r_tbl, rk);
        a.fmul(r_u, r_u, r_ev);
        a.stx(r_tbl, rk, r_u);
    }
    // Child pick: data-random branch gated on the node load.
    a.andi(r_u, r_ev, 1);
    a.bne(r_u, 0, right);       // ~50/50
    a.ld(r_cur, r_addr, 8);     // left child slot
    a.jmp(stepped);
    a.bind(right);
    a.ld(r_cur, r_addr, 16);    // right child slot
    a.bind(stepped);
    // Beta-cutoff style branch (~25% cutoff, data-random).
    a.andi(r_u, r_ev, 3);
    a.bne(r_u, 0, no_cut);
    a.add(r_best, r_best, r_ev);
    a.xori(r_best, r_best, 0x55);
    a.bind(no_cut);
    a.and_(r_cur, r_cur, r_mask);
    a.addi(r_cnt, r_cnt, 1);
    a.blt(r_cnt, r_n, loop);
    a.halt();
    return a.finish("deepsjeng");
}

/**
 * perlbench: bytecode-interpreter proxy. An indirect dispatch over 96
 * generated handlers, each with a hot/cold hash gather, parallel
 * state updates and a stack spill: thousands of distinct static
 * instructions end up in slices (Fig 11) and the indirect jump
 * mispredicts constantly.
 */
Program
buildPerlbench(InputSet input)
{
    auto [prog_len, seed] = scale2(input, 1u << 15, 1u << 16);
    Rng data_rng(seed);
    Rng code_rng(0xfeedface); // identical across inputs!
    Assembler a;

    const uint32_t num_handlers = 96;
    const RegId r_bc = 61, r_tab = 60, r_jt = 59, r_n = 58;
    const RegId r_tbl = 53;
    const RegId r_pcnt = 56, r_gp = 55, sp = 62;
    const RegId r_op = 10, r_h = 11, r_t = 12, r_u = 13, r_acc = 14;
    const RegId r_target = 15;
    const RegId r_w0 = 20; // per-handler work chains r20..r25

    const uint64_t jt_base = kStaticBase;             // jump table
    const uint64_t tbl_base = kStaticBase + 0x2000;   // hot tables
    const uint64_t tab_base = kHeapBase + (1ULL << 26);
    for (uint32_t i = 0; i < prog_len; ++i)
        a.poke(kHeapBase + uint64_t(i) * 8,
               data_rng.next(num_handlers));
    for (uint32_t i = 0; i < 8192; ++i)
        a.poke(tab_base + uint64_t(i) * 8, data_rng.next());
    for (uint32_t i = 0; i < 16384; ++i)
        a.poke(tab_base + data_rng.next(1u << 21) * 8,
               data_rng.next());
    for (uint32_t i = 0; i < 256; ++i)
        a.poke(tbl_base + i * 8, data_rng.next());
    a.poke(kGlobalBase, prog_len - 1);

    a.movi(r_gp, kGlobalBase);
    a.movi(sp, kStackBase);
    a.movi(r_bc, kHeapBase);
    a.movi(r_tab, tab_base);
    a.movi(r_jt, jt_base);
    a.movi(r_tbl, tbl_base);
    a.ld(r_n, r_gp, 0);
    a.movi(r_pcnt, 0);
    a.movi(r_acc, 0x1234);

    auto dispatch = a.label();
    auto done = a.label();
    std::vector<Assembler::Label> handlers(num_handlers);
    for (auto &h : handlers)
        h = a.label();

    a.bind(dispatch);
    a.bge(r_pcnt, r_n, done);
    a.shli(r_t, r_pcnt, 3);
    a.ldx(r_op, r_bc, r_t);     // bytecode fetch (streaming)
    a.shli(r_u, r_op, 3);
    a.ldx(r_target, r_jt, r_u); // handler table lookup (hot)
    a.addi(r_pcnt, r_pcnt, 1);
    a.jr(r_target);             // constantly mispredicted

    // Generated handlers: distinct hash gathers + parallel updates.
    for (uint32_t h = 0; h < num_handlers; ++h) {
        a.bind(handlers[h]);
        // Hash chain (distinct constants per handler), serial with
        // the accumulator carried between dispatches.
        a.xori(r_h, r_acc, int64_t(code_rng.next(0xffff)));
        a.xor_(r_h, r_h, r_pcnt); // never-repeating address stream
        a.muli(r_h, r_h, int64_t(code_rng.next(1 << 20) | 1));
        a.shri(r_t, r_h, 5 + code_rng.next(14));
        a.xor_(r_h, r_h, r_t);
        emitHotColdOffset(a, r_h, r_h, 0x7fff, (1 << 24) - 1,
                          r_t, r_u);
        a.ldx(r_u, r_tab, r_h);     // delinquent hash gather
        // Spill the state through the stack (IBDA blind spot).
        a.st(sp, r_u, 8 * (1 + int64_t(h % 8)));
        // Parallel updates keyed off the gathered value.
        unsigned chains = 4 + code_rng.next(3);
        for (unsigned k = 0; k < chains; ++k) {
            RegId rk = static_cast<RegId>(r_w0 + k);
            a.xori(rk, r_u, int64_t(code_rng.next(0x3ff)));
            a.andi(rk, rk, 0xf8);
            a.ldx(r_t, r_tbl, rk);
            a.fmul(r_t, r_t, r_u);
            a.stx(r_tbl, rk, r_t);
        }
        a.ld(r_acc, sp, 8 * (1 + int64_t(h % 8)));
        a.jmp(dispatch);
    }

    a.bind(done);
    a.halt();

    // Jump table: handler static indices (resolved after binding).
    for (uint32_t h = 0; h < num_handlers; ++h)
        a.poke(jt_base + uint64_t(h) * 8, a.indexOf(handlers[h]));
    return a.finish("perlbench");
}

/**
 * gcc: compiler proxy. A long generated chain of basic blocks (the
 * loop body exceeds the 32 KiB L1I) with per-block data-dependent
 * skips and scattered hot/cold gathers: many distinct small slices
 * and real icache pressure, making the one-byte critical prefix
 * measurable (Fig 12).
 */
Program
buildGcc(InputSet input)
{
    auto [work_words, seed] = scale2(input, 1u << 21, 1u << 21);
    Rng data_rng(seed);
    Rng code_rng(0xdeadbee5); // identical across inputs!
    Assembler a;

    const uint32_t num_blocks = 320;
    const RegId r_heap = 61, r_n = 60, r_cnt = 59, r_gp = 58;
    const RegId r_s = 10, r_t = 11, r_u = 12, r_g = 13, r_acc = 14;

    for (uint32_t i = 0; i < 8192; ++i)
        a.poke(kHeapBase + uint64_t(i) * 8, data_rng.next());
    for (uint32_t i = 0; i < 8192; ++i)
        a.poke(kHeapBase + data_rng.next(work_words) * 8,
               data_rng.next());
    a.poke(kGlobalBase, 400);
    a.poke(kGlobalBase + 8, seed ^ 0x1111);

    a.movi(r_gp, kGlobalBase);
    a.movi(r_heap, kHeapBase);
    a.ld(r_n, r_gp, 0);
    a.ld(r_s, r_gp, 8);
    a.movi(r_cnt, 0);
    a.movi(r_acc, 0);

    auto top = a.label();
    a.bind(top);
    std::vector<Assembler::Label> skips(num_blocks);
    for (auto &s : skips)
        s = a.label();

    for (uint32_t blk = 0; blk < num_blocks; ++blk) {
        // Per-block ALU body: 8-20 ops with distinct constants.
        uint32_t ops = 8 + code_rng.next(13);
        for (uint32_t k = 0; k < ops; ++k) {
            switch (code_rng.next(5)) {
              case 0: a.muli(r_acc, r_acc,
                             int64_t(code_rng.next(1 << 16) | 1));
                      break;
              case 1: a.xori(r_acc, r_acc,
                             int64_t(code_rng.next(1 << 16))); break;
              case 2: a.shri(r_t, r_acc, 1 + code_rng.next(24));
                      a.xor_(r_acc, r_acc, r_t); break;
              case 3: a.addi(r_acc, r_acc,
                             int64_t(code_rng.next(512))); break;
              default: a.ori(r_acc, r_acc,
                             int64_t(code_rng.next(256))); break;
            }
        }
        if (code_rng.next(3) == 0) {
            // Occasional hot/cold gather: the serial spine is thin
            // (muli/shri/xor-with-gather-value), so slices stay
            // small while the per-block ALU work off r_acc stays
            // outside them.
            a.muli(r_s, r_s, 6364136223846793005LL);
            a.shri(r_g, r_s, 19);
            emitHotColdOffset(a, r_g, r_g, 0x7fff,
                              int64_t(work_words) * 8 - 1, r_t, r_u);
            a.ldx(r_u, r_heap, r_g);   // delinquent gather
            a.xor_(r_s, r_s, r_u);     // serializes the spine
            // Parallel block-local work off the gathered value.
            for (int w = 0; w < 4; ++w) {
                RegId rw = static_cast<RegId>(20 + w);
                a.xori(rw, r_u, int64_t(code_rng.next(0xffff)));
                a.fmul(rw, rw, r_u);
                a.add(r_acc, r_acc, rw);
            }
        }
        // Counter-patterned skip: perfectly learnable, so it stays
        // below the §3.4 branch-slicing threshold.
        a.andi(r_u, r_cnt, 3);
        a.bne(r_u, 0, skips[blk]);
        a.muli(r_acc, r_acc, 5);
        a.xori(r_acc, r_acc, 0x2a);
        a.bind(skips[blk]);
    }
    a.addi(r_cnt, r_cnt, 1);
    a.blt(r_cnt, r_n, top);
    a.halt();
    return a.finish("gcc");
}

/**
 * fotonik: FDTD field-update proxy. Three prefetchable streams whose
 * address arithmetic is a deliberately fat slice; the only
 * latency-critical load is a boundary gather every fourth cell.
 * IBDA's MPKI-driven table fills with the streaming loads and their
 * slices, over-prioritizing non-critical work (CRISP §5.2).
 */
Program
buildFotonik(InputSet input)
{
    auto [cells, seed] = scale2(input, 60000, 150000);
    Rng rng(seed);
    Assembler a;

    const RegId r_e = 61, r_h = 60, r_c = 59, r_bnd = 58, r_n = 57;
    const RegId r_cnt = 56, r_gp = 55;
    const RegId r_ae = 10, r_ah = 11, r_ac = 12, r_ve = 13;
    const RegId r_vh = 14, r_vc = 15, r_t = 16, r_u = 17, r_g = 18;
    const RegId r_w0 = 20; // boundary work r20..r25

    const uint64_t e_base = kHeapBase;
    const uint64_t h_base = kHeapBase + (1ULL << 25);
    const uint64_t c_base = kHeapBase + (1ULL << 26);
    const uint64_t bnd_base = kHeapBase + (1ULL << 27);
    for (uint32_t i = 0; i < cells; ++i) {
        a.poke(e_base + uint64_t(i) * 8, rng.next(1000));
        a.poke(h_base + uint64_t(i) * 8, rng.next(1000));
        a.poke(c_base + uint64_t(i) * 8, rng.next(7) + 1);
    }
    for (uint32_t i = 0; i < 8192; ++i)
        a.poke(bnd_base + uint64_t(i) * 8, rng.next());
    for (uint32_t i = 0; i < 8192; ++i)
        a.poke(bnd_base + rng.next(1u << 21) * 8, rng.next());
    a.poke(kGlobalBase, cells - 2);

    a.movi(r_gp, kGlobalBase);
    a.movi(r_e, e_base);
    a.movi(r_h, h_base);
    a.movi(r_c, c_base);
    a.movi(r_bnd, bnd_base);
    a.ld(r_n, r_gp, 0);
    a.movi(r_cnt, 0);
    a.movi(r_g, 1);

    auto loop = a.label();
    auto no_bnd = a.label();

    a.bind(loop);
    // Fat (but non-critical) address slices: each stream address is
    // recomputed through a chain instead of a stride register.
    a.muli(r_ae, r_cnt, 8);
    a.add(r_ae, r_ae, r_e);
    a.muli(r_ah, r_cnt, 8);
    a.add(r_ah, r_ah, r_h);
    a.muli(r_ac, r_cnt, 8);
    a.add(r_ac, r_ac, r_c);
    a.ld(r_ve, r_ae, 0);        // streaming (BOP-covered)
    a.ld(r_vh, r_ah, 8);        // streaming
    a.ld(r_vc, r_ac, 0);        // streaming
    a.fmul(r_t, r_vh, r_vc);
    a.fadd(r_ve, r_ve, r_t);
    a.st(r_ae, r_ve, 0);
    // Boundary gather every other cell: the actually-critical load,
    // serial through r_g.
    a.andi(r_u, r_cnt, 1);
    a.bne(r_u, 0, no_bnd);
    a.muli(r_g, r_g, 0x9e3779b1);
    a.addi(r_g, r_g, 0x7f4a7c15);
    a.shri(r_t, r_g, 7);
    a.xor_(r_g, r_g, r_t);
    emitHotColdOffset(a, r_t, r_g, 0xffff, (1 << 23) - 1, r_u,
                      r_vh);
    a.ldx(r_u, r_bnd, r_t);     // delinquent boundary gather
    a.xor_(r_g, r_g, r_u);      // serializes the next gather
    // Boundary work: 6 parallel FP chains off the gather, kept out
    // of the serial carry so they stay non-critical.
    for (int k = 0; k < 6; ++k) {
        RegId rk = static_cast<RegId>(r_w0 + k);
        a.xori(rk, r_u, k * 61 + 17);
        a.fmul(rk, rk, r_u);
        a.fadd(r_ve, r_ve, rk);
    }
    a.bind(no_bnd);
    a.addi(r_cnt, r_cnt, 1);
    a.blt(r_cnt, r_n, loop);
    a.halt();
    return a.finish("fotonik");
}

/**
 * cactus: structured-grid proxy with a limiter branch. The limiter
 * condition hangs off the serial gather, and the gather behind the
 * (mispredicting) branch is only reachable once it resolves, so load
 * and branch slicing combine super-additively (CRISP §5.3).
 */
Program
buildCactus(InputSet input)
{
    auto [cells, seed] = scale2(input, 60000, 150000);
    Rng rng(seed);
    Assembler a;

    const RegId r_grid = 61, r_tab = 60, r_tbl = 59, r_n = 58;
    const RegId r_cnt = 57, r_gp = 56, r_sp = 62;
    const RegId r_v = 10, r_t = 11, r_u = 12, r_g = 13, r_acc = 14;
    const RegId r_w0 = 20; // smooth work r20..r27

    const uint64_t tab_base = kHeapBase + (1ULL << 26);
    for (uint32_t i = 0; i < cells; ++i)
        a.poke(kHeapBase + uint64_t(i) * 8, rng.next());
    for (uint32_t i = 0; i < 8192; ++i)
        a.poke(tab_base + uint64_t(i) * 8, rng.next());
    for (uint32_t i = 0; i < 8192; ++i)
        a.poke(tab_base + rng.next(1u << 21) * 8, rng.next(500));
    for (uint32_t i = 0; i < 128; ++i)
        a.poke(kStaticBase + i * 8, rng.next());
    a.poke(kGlobalBase, cells - 2);

    a.movi(r_gp, kGlobalBase);
    a.movi(r_sp, kStackBase);
    a.movi(r_grid, kHeapBase);
    a.movi(r_tab, tab_base);
    a.movi(r_tbl, kStaticBase);
    a.ld(r_n, r_gp, 0);
    a.movi(r_cnt, 0);
    a.movi(r_acc, 0);

    auto loop = a.label();
    auto smooth = a.label();
    auto join = a.label();

    a.bind(loop);
    a.shli(r_t, r_cnt, 3);
    a.ldx(r_v, r_grid, r_t);    // streaming center cell
    // Serial gather: the chain starts directly off the previous
    // gather's register value and spills the hashed index through
    // the stack (through-memory slice, IBDA blind spot).
    a.xor_(r_g, r_u, r_v);
    a.muli(r_g, r_g, 0x85ebca6b);
    a.shri(r_t, r_g, 11);
    a.xor_(r_g, r_g, r_t);
    a.st(r_sp, r_g, 48);
    a.ld(r_g, r_sp, 48);
    emitHotColdOffset(a, r_g, r_g, 0xffff, (1 << 23) - 1, r_t,
                      r_acc);
    a.ldx(r_u, r_tab, r_g);     // delinquent gather (serial)
    // Smoothing work: 8 parallel chains off the gathered value.
    for (int k = 0; k < 8; ++k) {
        RegId rk = static_cast<RegId>(r_w0 + k);
        a.xori(rk, r_u, k * 31 + 3);
        a.andi(rk, rk, 0x3f8);
        a.ldx(r_t, r_tbl, rk);
        a.fmul(r_t, r_t, r_u);
        a.stx(r_tbl, rk, r_t);
    }
    // Limiter branch: condition off the gather, behind the work.
    a.xor_(r_t, r_u, r_v);
    a.andi(r_t, r_t, 3);
    a.bne(r_t, 0, smooth);      // ~25% limiter path
    a.fadd(r_acc, r_acc, r_u);
    a.fmul(r_acc, r_acc, r_acc);
    a.jmp(join);
    a.bind(smooth);
    a.fadd(r_acc, r_acc, r_v);
    a.bind(join);
    a.addi(r_cnt, r_cnt, 1);
    a.blt(r_cnt, r_n, loop);
    a.halt();
    return a.finish("cactus");
}

/**
 * nab: molecular-dynamics proxy. Mostly FP work; an exclusion branch
 * whose condition chain includes a hot/cold parameter gather
 * mispredicts often, so branch slices alone recover several percent
 * (CRISP §5.3); pure load slicing has little to chew on.
 */
Program
buildNab(InputSet input)
{
    auto [pairs, seed] = scale2(input, 60000, 180000);
    Rng rng(seed);
    Assembler a;

    const RegId r_flags = 61, r_par = 60, r_n = 59, r_cnt = 58;
    const RegId r_gp = 57;
    const RegId r_f = 10, r_t = 11, r_u = 12, r_x = 13, r_y = 14;
    const RegId r_z = 15, r_g = 16;
    const RegId r_w0 = 20; // FP work r20..r27

    const uint64_t par_base = kHeapBase + (1ULL << 26);
    for (uint32_t i = 0; i < pairs; ++i)
        a.poke(kHeapBase + uint64_t(i) * 8, rng.next());
    for (uint32_t i = 0; i < 8192; ++i)
        a.poke(par_base + uint64_t(i) * 8, rng.next());
    for (uint32_t i = 0; i < 8192; ++i)
        a.poke(par_base + rng.next(1u << 21) * 8, rng.next());
    a.poke(kGlobalBase, pairs - 1);

    a.movi(r_gp, kGlobalBase);
    a.movi(r_flags, kHeapBase);
    a.movi(r_par, par_base);
    a.ld(r_n, r_gp, 0);
    a.movi(r_cnt, 0);
    a.movi(r_x, 3);
    a.movi(r_y, 5);
    a.movi(r_g, 1);

    auto loop = a.label();
    auto excluded = a.label();
    auto join = a.label();

    a.bind(loop);
    a.shli(r_t, r_cnt, 3);
    a.ldx(r_f, r_flags, r_t);   // pair flags (streaming)
    // Exclusion condition: includes a hot/cold parameter gather,
    // serial through r_g, placed behind the FP work below.
    a.xor_(r_g, r_g, r_f);
    a.muli(r_g, r_g, 0x27d4eb2f);
    a.shri(r_u, r_g, 9);
    emitHotColdOffset(a, r_u, r_u, 0xffff, (1 << 23) - 1, r_t,
                      r_z);
    a.ldx(r_g, r_par, r_u);     // delinquent parameter gather
    // Force evaluation: 8 parallel FP chains off the parameters.
    for (int k = 0; k < 8; ++k) {
        RegId rk = static_cast<RegId>(r_w0 + k);
        a.xori(rk, r_g, k * 43 + 7);
        a.fmul(rk, rk, r_x);
        a.fadd(r_y, r_y, rk);
    }
    // Exclusion branch (data-random ~25%), behind the work.
    a.xor_(r_u, r_g, r_f);
    a.andi(r_u, r_u, 3);
    a.beq(r_u, 0, excluded);
    a.fmul(r_z, r_x, r_y);
    a.fadd(r_x, r_x, r_z);
    a.jmp(join);
    a.bind(excluded);
    a.addi(r_y, r_y, 1);
    a.bind(join);
    a.addi(r_cnt, r_cnt, 1);
    a.blt(r_cnt, r_n, loop);
    a.halt();
    return a.finish("nab");
}

} // namespace crisp
