#include "workloads/workload.h"

#include <algorithm>

namespace crisp
{

std::vector<uint32_t>
randomPermutation(uint32_t n, Rng &rng)
{
    std::vector<uint32_t> perm(n);
    for (uint32_t i = 0; i < n; ++i)
        perm[i] = i;
    for (uint32_t i = n; i > 1; --i)
        std::swap(perm[i - 1], perm[rng.next(i)]);
    return perm;
}

void
emitHotColdOffset(Assembler &a, RegId out, RegId idx,
                  int64_t hot_mask, int64_t cold_mask,
                  RegId t1, RegId t2)
{
    // cold if (idx & 0x18) == 0 (~25%); sel = 0 or ~0 mask.
    a.andi(t1, idx, 0x18);
    a.slti(t1, t1, 1);        // 1 if cold
    a.movi(t2, 0);
    a.sub(t2, t2, t1);        // all-ones if cold
    a.andi(out, idx, cold_mask & ~7);
    a.and_(out, out, t2);     // cold offset or 0
    a.xori(t2, t2, -1);       // invert mask
    a.andi(t1, idx, hot_mask & ~7);
    a.and_(t1, t1, t2);       // hot offset or 0
    a.or_(out, out, t1);
}

const std::vector<WorkloadInfo> &
workloadRegistry()
{
    static const std::vector<WorkloadInfo> registry = {
        {"pointer_chase",
         "Fig 1/2 linked-list + vector-multiply microbenchmark",
         &buildPointerChase},
        {"mcf", "pointer-heavy network simplex; low-MLP misses",
         &buildMcf},
        {"lbm", "stencil with hard-to-predict data-dependent branch",
         &buildLbm},
        {"omnetpp", "binary-heap event queue; pointer chasing",
         &buildOmnetpp},
        {"xhpcg", "CSR sparse mat-vec gather; indirect indices",
         &buildXhpcg},
        {"bwaves", "high-MPKI loads in high-MLP phases (non-critical)",
         &buildBwaves},
        {"namd", "force loop; address slice spilled through memory",
         &buildNamd},
        {"deepsjeng", "branchy search; branch slices dominate",
         &buildDeepsjeng},
        {"perlbench", "interpreter dispatch; >10k critical statics",
         &buildPerlbench},
        {"gcc", "many distinct slices; icache pressure", &buildGcc},
        {"fotonik", "FDTD sweep; IBDA over-selection hurts",
         &buildFotonik},
        {"cactus", "grid kernel; branch+load slicing super-additive",
         &buildCactus},
        {"nab", "molecular dynamics proxy; branch-slice gains",
         &buildNab},
        {"moses", "phrase-table decoder proxy; very long slices",
         &buildMoses},
        {"memcached", "hash + chain lookup service proxy",
         &buildMemcached},
        {"imgdnn", "dense inference with indirection; high base ILP",
         &buildImgdnn},
    };
    return registry;
}

const WorkloadInfo *
findWorkload(const std::string &name)
{
    for (const auto &info : workloadRegistry()) {
        if (info.name == name)
            return &info;
    }
    return nullptr;
}

std::vector<std::string>
workloadNames()
{
    std::vector<std::string> names;
    for (const auto &info : workloadRegistry())
        names.push_back(info.name);
    return names;
}

} // namespace crisp
