/**
 * @file
 * The motivating microbenchmark of CRISP Figures 1-3: a linked-list
 * traversal interleaved with a vector-scalar multiply.
 *
 * The proxy reproduces the -O0 x86 shape of Figure 3 faithfully:
 * the `cur` pointer and the scalar `val` live in *stack slots*, so
 * the delinquent load's slice contains dependencies through memory
 * (st [sp+16] -> ld [sp+16]), and the body layout matches the paper:
 * the inner vector loop comes first, then the pointer advance whose
 * final `val = cur->val` load is the line miss for the *next* node.
 * List nodes are laid out in a random permutation so the chase is
 * invisible to the best-offset/stream prefetchers.
 */

#include "vm/assembler.h"
#include "workloads/workload.h"

namespace crisp
{

namespace
{

/**
 * Shared builder. @p with_prefetch inserts the manual
 * __builtin_prefetch(current->next) of Fig 2 line 12, hoisted to the
 * top of the body where the oldest-first baseline scheduler issues
 * it immediately.
 */
Program
buildChase(InputSet input, bool with_prefetch)
{
    // Train and Ref differ in list length, node placement seed and
    // vector contents only; the code is identical.
    const bool train = input == InputSet::Train;
    const uint32_t num_nodes = train ? 40000 : 120000;
    const uint32_t vec_elems = 32;
    const uint64_t node_bytes = 64; // one node per cache line
    Rng rng(train ? 0x1234 : 0x987654321);

    Assembler a;

    // Registers.
    const RegId sp = 62;    // stack pointer
    const RegId r_vec = 61; // vector base
    const RegId r_vend = 60;
    const RegId r_n = 59;   // outer trip count
    const RegId r_cnt = 58;
    const RegId r_gp = 57;
    const RegId r_a = 10;   // cur
    const RegId r_b = 11;   // cur->next
    const RegId r_c = 12;   // next node's val
    const RegId r_i = 13;   // inner index (bytes)
    const RegId r_v = 14;   // val reloaded from stack
    const RegId r_e = 15;   // vec element
    const RegId r_p = 16;   // prefetch scratch
    const RegId r_q = 17;   // prefetch scratch

    // Data: permuted linked list in the heap.
    auto perm = randomPermutation(num_nodes, rng);
    std::vector<uint64_t> addr_of(num_nodes);
    for (uint32_t i = 0; i < num_nodes; ++i)
        addr_of[i] = kHeapBase + uint64_t(perm[i]) * node_bytes;
    for (uint32_t i = 0; i < num_nodes; ++i) {
        uint64_t next = addr_of[(i + 1) % num_nodes];
        a.poke(addr_of[i], next);                        // ->next
        a.poke(addr_of[i] + 8, (rng.next() & 0xff) + 1); // ->val
    }
    for (uint32_t e = 0; e < vec_elems; ++e)
        a.poke(kStaticBase + e * 8, rng.next(100) + 1);
    a.poke(kGlobalBase, num_nodes - 1);                  // trips
    a.poke(kStackBase + 16, addr_of[0]);                 // cur
    a.poke(kStackBase + 8, 7);                           // initial val

    // Code (identical across inputs).
    a.movi(r_gp, kGlobalBase);
    a.movi(sp, kStackBase);
    a.movi(r_vec, kStaticBase);
    a.movi(r_vend, vec_elems * 8);
    a.ld(r_n, r_gp, 0);
    a.movi(r_cnt, 0);

    auto outer = a.label();
    auto inner = a.label();

    a.bind(outer);
    if (with_prefetch) {
        // __builtin_prefetch(current->next): oldest in the body, so
        // the baseline scheduler issues it as soon as it is ready.
        a.ld(r_p, sp, 16);  // cur
        a.ld(r_q, r_p, 0);  // cur->next (line already present)
        a.pf(r_q, 8);       // prefetch the next node's line
    }
    a.movi(r_i, 0);

    a.bind(inner);          // vec[i] *= val
    a.ld(r_v, sp, 8);       // val through memory
    a.ldx(r_e, r_vec, r_i);
    a.mul(r_e, r_e, r_v);
    a.stx(r_vec, r_i, r_e);
    a.addi(r_i, r_i, 8);
    a.blt(r_i, r_vend, inner);

    // cur = cur->next; val = cur->val (Fig 3 lines 25-31).
    a.ld(r_a, sp, 16);      // cur (through memory)
    a.ld(r_b, r_a, 0);      // cur->next (hits: line fetched below)
    a.st(sp, r_b, 16);      // cur = next
    a.ld(r_c, r_b, 8);      // DELINQUENT: next node's val (new line)
    a.st(sp, r_c, 8);       // spill val for the next inner loop

    a.addi(r_cnt, r_cnt, 1);
    a.blt(r_cnt, r_n, outer);
    a.halt();

    return a.finish(with_prefetch ? "pointer_chase_pf"
                                  : "pointer_chase");
}

} // namespace

Program
buildPointerChase(InputSet input)
{
    return buildChase(input, /*with_prefetch=*/false);
}

Program
buildPointerChasePrefetch(InputSet input)
{
    return buildChase(input, /*with_prefetch=*/true);
}

} // namespace crisp
