/**
 * @file
 * TailBench datacenter proxy kernels (moses, memcached, imgdnn).
 * See DESIGN.md §5 for the pathology each reproduces and
 * spec_proxies.cc for the common construction recipe.
 */

#include "vm/assembler.h"
#include "workloads/workload.h"

namespace crisp
{

namespace
{

struct Scale3
{
    uint32_t n;
    uint64_t seed;
};

Scale3
scale3(InputSet input, uint32_t train_n, uint32_t ref_n)
{
    if (input == InputSet::Train)
        return {train_n, 0x7a115eed};
    return {ref_n, 0x600d5eed};
}

} // namespace

/**
 * moses: statistical MT decoder proxy. Each token performs a 3-hop
 * probe of a large phrase table where every hop's address is a
 * *long* hash chain over the previous hop's payload, spilled through
 * the stack between hops: the full load slice far exceeds a 1K-entry
 * IST (CRISP §5.2) while CRISP's critical-path filter keeps only the
 * hash spine. Best trace-relative gains at small RS/ROB (Fig 9).
 */
Program
buildMoses(InputSet input)
{
    auto [tokens, seed] = scale3(input, 20000, 60000);
    Rng rng(seed);
    Assembler a;

    const RegId r_tab = 61, r_in = 60, r_tbl = 59, r_n = 58;
    const RegId r_cnt = 57, r_gp = 56, sp = 62;
    const RegId r_w = 10, r_h = 11, r_t = 12, r_u = 13, r_p = 14;
    const RegId r_score = 15;
    const RegId r_w0 = 20; // scoring chains r20..r31

    const uint64_t tab_base = kHeapBase + (1ULL << 26);
    for (uint32_t i = 0; i < tokens; ++i)
        a.poke(kHeapBase + uint64_t(i) * 8, rng.next());
    for (uint32_t i = 0; i < 16384; ++i)
        a.poke(tab_base + uint64_t(i) * 8, rng.next());
    for (uint32_t i = 0; i < 16384; ++i)
        a.poke(tab_base + rng.next(1u << 22) * 8, rng.next());
    for (uint32_t i = 0; i < 128; ++i)
        a.poke(kStaticBase + i * 8, rng.next());
    a.poke(kGlobalBase, tokens - 1);

    a.movi(r_gp, kGlobalBase);
    a.movi(sp, kStackBase);
    a.movi(r_tab, tab_base);
    a.movi(r_in, kHeapBase);
    a.movi(r_tbl, kStaticBase);
    a.ld(r_n, r_gp, 0);
    a.movi(r_cnt, 0);
    a.movi(r_score, 0);

    auto loop = a.label();
    a.bind(loop);
    a.shli(r_t, r_cnt, 3);
    a.ldx(r_w, r_in, r_t);      // token (streaming)
    a.xor_(r_p, r_p, r_w);      // decoder state carried in r_p
    // Three dependent probes, each with a deliberately long hash
    // chain between payload and next address, spilled through the
    // stack after each hop.
    for (int hop = 0; hop < 2; ++hop) {
        a.xori(r_h, r_p, 0x9747b28c + hop * 0x61);
        a.muli(r_h, r_h, 0x85ebca6b);
        a.shri(r_t, r_h, 13);
        a.xor_(r_h, r_h, r_t);
        a.muli(r_h, r_h, 0xc2b2ae35);
        a.shri(r_t, r_h, 16);
        a.xor_(r_h, r_h, r_t);
        a.shli(r_u, r_h, 1);
        a.add(r_h, r_h, r_u);
        emitHotColdOffset(a, r_h, r_h, 0x1ffff, (1 << 24) - 1,
                          r_t, r_u);
        a.ldx(r_p, r_tab, r_h); // delinquent probe (3-deep chain)
        a.st(sp, r_p, 16 + hop * 8); // spill the hop payload
        a.ld(r_p, sp, 16 + hop * 8); // ... and reload it
    }
    // Scoring: 12 parallel chains off the final payload.
    for (int k = 0; k < 12; ++k) {
        RegId rk = static_cast<RegId>(r_w0 + k);
        a.xori(rk, r_p, k * 71 + 29);
        a.andi(rk, rk, 0x3f8);
        a.ldx(r_u, r_tbl, rk);
        a.fmul(r_u, r_u, r_p);
        a.stx(r_tbl, rk, r_u);
    }
    a.add(r_score, r_score, r_p);
    a.addi(r_cnt, r_cnt, 1);
    a.blt(r_cnt, r_n, loop);
    a.halt();
    return a.finish("moses");
}

/**
 * memcached: key-value GET proxy. Hash a key, load the bucket head
 * (hot/cold miss), walk one chain hop with a data-dependent
 * key-compare branch behind the value work: both load slices (bucket
 * pointer) and branch slices (key compare) matter and synergize
 * (CRISP §5.3).
 */
Program
buildMemcached(InputSet input)
{
    auto [gets, seed] = scale3(input, 25000, 75000);
    Rng rng(seed);
    Assembler a;

    const uint32_t num_buckets = 1u << 18; // 2 MiB bucket array
    const RegId r_bkt = 61, r_tbl = 60, r_n = 59, r_cnt = 58;
    const RegId r_gp = 57, sp = 62;
    const RegId r_key = 10, r_h = 11, r_t = 12, r_node = 13;
    const RegId r_kv = 14, r_acc = 15, r_u = 16;
    const RegId r_w0 = 20; // value work r20..r27

    // Bucket array: [bucket] = key-ish payload; treated as an open
    // hash: a second probe reads the "item" word next to it.
    for (uint32_t i = 0; i < 16384; ++i)
        a.poke(kHeapBase + uint64_t(i) * 8, rng.next());
    for (uint32_t i = 0; i < 32768; ++i)
        a.poke(kHeapBase + rng.next(num_buckets) * 8, rng.next());
    for (uint32_t i = 0; i < 128; ++i)
        a.poke(kStaticBase + i * 8, rng.next(1000));
    a.poke(kGlobalBase, gets);
    a.poke(kGlobalBase + 8, rng.next() | 1);

    a.movi(r_gp, kGlobalBase);
    a.movi(sp, kStackBase);
    a.movi(r_bkt, kHeapBase);
    a.movi(r_tbl, kStaticBase);
    a.ld(r_n, r_gp, 0);
    a.ld(r_key, r_gp, 8);
    a.movi(r_cnt, 0);
    a.movi(r_acc, 0);

    auto loop = a.label();
    auto hit = a.label();
    auto next_get = a.label();

    a.bind(loop);
    // Key generation + hash: serial directly through the previous
    // probe's value; the hashed index is spilled through the stack
    // mid-chain (request-queue analog, IBDA blind spot).
    a.xor_(r_key, r_node, r_cnt);
    a.muli(r_key, r_key, 6364136223846793005LL);
    a.addi(r_key, r_key, 1442695040888963407LL);
    a.shri(r_h, r_key, 17);
    a.st(sp, r_h, 8);
    a.ld(r_h, sp, 8);
    emitHotColdOffset(a, r_h, r_h, 0x1ffff, (1 << 21) - 1, r_t,
                      r_u);
    a.ldx(r_node, r_bkt, r_h);  // delinquent: bucket probe
    // Value work: 8 parallel chains off the probed word.
    for (int k = 0; k < 8; ++k) {
        RegId rk = static_cast<RegId>(r_w0 + k);
        a.xori(rk, r_node, k * 53 + 19);
        a.andi(rk, rk, 0x3f8);
        a.ldx(r_kv, r_tbl, rk);
        a.fmul(r_kv, r_kv, r_node);
        a.stx(r_tbl, rk, r_kv);
    }
    // Key-compare branch: data-random, behind the value work.
    a.xor_(r_u, r_node, r_key);
    a.andi(r_u, r_u, 3);
    a.beq(r_u, 0, hit);         // ~25% hit path, data-random
    a.addi(r_acc, r_acc, 1);
    a.jmp(next_get);
    a.bind(hit);
    a.ldx(r_t, r_bkt, r_h, 8);  // item word (same line)
    a.add(r_acc, r_acc, r_t);
    a.bind(next_get);
    a.addi(r_cnt, r_cnt, 1);
    a.blt(r_cnt, r_n, loop);
    a.halt();
    return a.finish("memcached");
}

/**
 * imgdnn: inference proxy. Dense unrolled multiply-accumulate with an
 * indirection table that mostly hits: high baseline ILP, little for
 * CRISP to accelerate — the low-gain end of Fig 7.
 */
Program
buildImgdnn(InputSet input)
{
    auto [iters, seed] = scale3(input, 12000, 36000);
    Rng rng(seed);
    Assembler a;

    const uint32_t w_words = 1u << 14; // 128 KiB weights (LLC-hot)
    const RegId r_w = 61, r_n = 60, r_cnt = 59, r_gp = 58;
    const RegId r_mask = 57;
    const RegId r_i = 10, r_t = 12;
    const RegId r_a0 = 16; // 8 accumulators r16..r23
    const RegId r_v0 = 24; // 8 temporaries r24..r31

    for (uint32_t i = 0; i < w_words; ++i)
        a.poke(kHeapBase + uint64_t(i) * 8, rng.next(97) + 1);
    a.poke(kGlobalBase, iters);

    a.movi(r_gp, kGlobalBase);
    a.movi(r_w, kHeapBase);
    a.movi(r_mask, (w_words - 1) * 8);
    a.ld(r_n, r_gp, 0);
    a.movi(r_cnt, 0);
    for (int k = 0; k < 8; ++k)
        a.movi(static_cast<RegId>(r_a0 + k), k + 1);

    auto loop = a.label();
    a.bind(loop);
    a.muli(r_i, r_cnt, 0x9e3779b1);
    for (int k = 0; k < 8; ++k) {
        a.shri(r_t, r_i, 3 + k);
        a.shli(r_t, r_t, 3);
        a.and_(r_t, r_t, r_mask);
        a.ldx(static_cast<RegId>(r_v0 + k), r_w, r_t); // mostly hits
    }
    for (int k = 0; k < 8; ++k) {
        a.fmul(static_cast<RegId>(r_v0 + k),
               static_cast<RegId>(r_v0 + k),
               static_cast<RegId>(r_a0 + k));
        a.fadd(static_cast<RegId>(r_a0 + k),
               static_cast<RegId>(r_a0 + k),
               static_cast<RegId>(r_v0 + k));
    }
    a.addi(r_cnt, r_cnt, 1);
    a.blt(r_cnt, r_n, loop);
    a.halt();
    return a.finish("imgdnn");
}

} // namespace crisp
