#include "isa/micro_op.h"

#include <sstream>

namespace crisp
{

const char *
opClassName(OpClass cls)
{
    switch (cls) {
      case OpClass::IntAlu: return "IntAlu";
      case OpClass::IntMul: return "IntMul";
      case OpClass::IntDiv: return "IntDiv";
      case OpClass::FpAdd: return "FpAdd";
      case OpClass::FpMul: return "FpMul";
      case OpClass::FpDiv: return "FpDiv";
      case OpClass::Load: return "Load";
      case OpClass::Store: return "Store";
      case OpClass::Prefetch: return "Prefetch";
      case OpClass::Branch: return "Branch";
      case OpClass::Jump: return "Jump";
      case OpClass::IndirectJump: return "IndirectJump";
      case OpClass::Call: return "Call";
      case OpClass::Ret: return "Ret";
      case OpClass::Nop: return "Nop";
      default: return "Unknown";
    }
}

const char *
opcodeName(Opcode op)
{
    switch (op) {
      case Opcode::Add: return "add";
      case Opcode::Sub: return "sub";
      case Opcode::Mul: return "mul";
      case Opcode::Div: return "div";
      case Opcode::Rem: return "rem";
      case Opcode::And: return "and";
      case Opcode::Or: return "or";
      case Opcode::Xor: return "xor";
      case Opcode::Shl: return "shl";
      case Opcode::Shr: return "shr";
      case Opcode::Slt: return "slt";
      case Opcode::AddI: return "addi";
      case Opcode::MulI: return "muli";
      case Opcode::AndI: return "andi";
      case Opcode::OrI: return "ori";
      case Opcode::XorI: return "xori";
      case Opcode::ShlI: return "shli";
      case Opcode::ShrI: return "shri";
      case Opcode::SltI: return "slti";
      case Opcode::MovI: return "movi";
      case Opcode::Mov: return "mov";
      case Opcode::FAdd: return "fadd";
      case Opcode::FMul: return "fmul";
      case Opcode::FDiv: return "fdiv";
      case Opcode::Ld: return "ld";
      case Opcode::LdX: return "ldx";
      case Opcode::St: return "st";
      case Opcode::StX: return "stx";
      case Opcode::Pf: return "pf";
      case Opcode::Beq: return "beq";
      case Opcode::Bne: return "bne";
      case Opcode::Blt: return "blt";
      case Opcode::Bge: return "bge";
      case Opcode::Jmp: return "jmp";
      case Opcode::Jr: return "jr";
      case Opcode::CallD: return "call";
      case Opcode::RetI: return "ret";
      case Opcode::Nop: return "nop";
      case Opcode::Halt: return "halt";
      default: return "???";
    }
}

OpClass
opcodeClass(Opcode op)
{
    switch (op) {
      case Opcode::Add:
      case Opcode::Sub:
      case Opcode::And:
      case Opcode::Or:
      case Opcode::Xor:
      case Opcode::Shl:
      case Opcode::Shr:
      case Opcode::Slt:
      case Opcode::AddI:
      case Opcode::AndI:
      case Opcode::OrI:
      case Opcode::XorI:
      case Opcode::ShlI:
      case Opcode::ShrI:
      case Opcode::SltI:
      case Opcode::MovI:
      case Opcode::Mov:
        return OpClass::IntAlu;
      case Opcode::Mul:
      case Opcode::MulI:
        return OpClass::IntMul;
      case Opcode::Div:
      case Opcode::Rem:
        return OpClass::IntDiv;
      case Opcode::FAdd:
        return OpClass::FpAdd;
      case Opcode::FMul:
        return OpClass::FpMul;
      case Opcode::FDiv:
        return OpClass::FpDiv;
      case Opcode::Ld:
      case Opcode::LdX:
        return OpClass::Load;
      case Opcode::St:
      case Opcode::StX:
        return OpClass::Store;
      case Opcode::Pf:
        return OpClass::Prefetch;
      case Opcode::Beq:
      case Opcode::Bne:
      case Opcode::Blt:
      case Opcode::Bge:
        return OpClass::Branch;
      case Opcode::Jmp:
        return OpClass::Jump;
      case Opcode::Jr:
        return OpClass::IndirectJump;
      case Opcode::CallD:
        return OpClass::Call;
      case Opcode::RetI:
        return OpClass::Ret;
      default:
        return OpClass::Nop;
    }
}

std::string
StaticInst::toString() const
{
    std::ostringstream os;
    os << std::hex << "0x" << pc << std::dec << ": ";
    if (critical)
        os << "crit. ";
    os << opcodeName(op);
    if (dst != kNoReg)
        os << " r" << dst;
    if (src1 != kNoReg)
        os << (dst != kNoReg ? ", r" : " r") << src1;
    if (src2 != kNoReg)
        os << ", r" << src2;
    if (src3 != kNoReg)
        os << ", r" << src3;
    if (imm != 0 || op == Opcode::MovI)
        os << ", #" << imm;
    OpClass c = cls();
    if (c == OpClass::Branch || c == OpClass::Jump || c == OpClass::Call)
        os << " -> @" << target;
    return os.str();
}

} // namespace crisp
