/**
 * @file
 * Fixed execution latencies per op class.
 *
 * Latencies follow published Skylake numbers (Fog's instruction
 * tables / uops.info), matching the paper's statement that slice
 * critical-path analysis assigns "a fixed latency according to the
 * processor implementation" to non-load instructions (CRISP §3.5).
 */

#ifndef CRISP_ISA_LATENCY_H
#define CRISP_ISA_LATENCY_H

#include <cstdint>

#include "isa/micro_op.h"

namespace crisp
{

/**
 * Latency table: cycles between issue and result availability for
 * each op class. Loads report only the fixed pipeline portion here;
 * their full latency is supplied by the cache hierarchy at run time.
 */
class LatencyTable
{
  public:
    /** Builds the default Skylake-like table. */
    LatencyTable();

    /** @return the execution latency in cycles of class @p cls. */
    uint32_t operator[](OpClass cls) const
    {
        return lat_[static_cast<size_t>(cls)];
    }

    /** Overrides the latency of one class (used in tests/ablations). */
    void set(OpClass cls, uint32_t cycles)
    {
        lat_[static_cast<size_t>(cls)] = cycles;
    }

    /** @return true if @p cls occupies its unit for its full latency. */
    static bool unpipelined(OpClass cls)
    {
        return cls == OpClass::IntDiv || cls == OpClass::FpDiv;
    }

  private:
    uint32_t lat_[static_cast<size_t>(OpClass::NumClasses)];
};

/** @return the process-wide default latency table. */
const LatencyTable &defaultLatencies();

} // namespace crisp

#endif // CRISP_ISA_LATENCY_H
