#include "isa/latency.h"

namespace crisp
{

LatencyTable::LatencyTable()
{
    auto set_cls = [this](OpClass c, uint32_t l) {
        lat_[static_cast<size_t>(c)] = l;
    };
    set_cls(OpClass::IntAlu, 1);
    set_cls(OpClass::IntMul, 3);
    set_cls(OpClass::IntDiv, 24);
    set_cls(OpClass::FpAdd, 4);
    set_cls(OpClass::FpMul, 4);
    set_cls(OpClass::FpDiv, 14);
    set_cls(OpClass::Load, 0);      // memory latency added by caches
    set_cls(OpClass::Store, 1);     // address generation
    set_cls(OpClass::Prefetch, 1);
    set_cls(OpClass::Branch, 1);
    set_cls(OpClass::Jump, 1);
    set_cls(OpClass::IndirectJump, 1);
    set_cls(OpClass::Call, 1);
    set_cls(OpClass::Ret, 1);
    set_cls(OpClass::Nop, 1);
}

const LatencyTable &
defaultLatencies()
{
    static const LatencyTable table;
    return table;
}

} // namespace crisp
