/**
 * @file
 * Micro-op ISA used throughout the CRISP reproduction.
 *
 * The simulator is ISA-neutral: workloads are written against a small
 * RISC-like register machine whose instructions carry both a semantic
 * opcode (interpreted by the VM, see vm/interpreter.h) and a timing
 * class (consumed by the cycle-level core, see cpu/core.h).
 */

#ifndef CRISP_ISA_MICRO_OP_H
#define CRISP_ISA_MICRO_OP_H

#include <cstdint>
#include <string>

namespace crisp
{

/** Number of architectural integer registers. */
constexpr int kNumArchRegs = 64;

/** Register id type; kNoReg means "operand unused". */
using RegId = int16_t;
constexpr RegId kNoReg = -1;

/**
 * Timing class of a micro-op. The scheduler maps classes to
 * functional-unit pools and the latency table (isa/latency.h) maps
 * them to execution latencies.
 */
enum class OpClass : uint8_t {
    IntAlu,     ///< single-cycle integer ALU op
    IntMul,     ///< pipelined integer multiply
    IntDiv,     ///< unpipelined integer divide
    FpAdd,      ///< floating-point add/sub/convert
    FpMul,      ///< floating-point multiply
    FpDiv,      ///< unpipelined floating-point divide
    Load,       ///< memory read
    Store,      ///< memory write
    Prefetch,   ///< software prefetch (non-binding memory read)
    Branch,     ///< conditional direct branch
    Jump,       ///< unconditional direct branch
    IndirectJump, ///< register-indirect branch
    Call,       ///< direct call (pushes return address)
    Ret,        ///< return (pops return address)
    Nop,        ///< no operation
    NumClasses
};

/** @return a short human-readable name for an op class. */
const char *opClassName(OpClass cls);

/** @return true if the class accesses data memory. */
inline bool
isMemClass(OpClass cls)
{
    return cls == OpClass::Load || cls == OpClass::Store ||
           cls == OpClass::Prefetch;
}

/** @return true if the class can redirect control flow. */
inline bool
isControlClass(OpClass cls)
{
    switch (cls) {
      case OpClass::Branch:
      case OpClass::Jump:
      case OpClass::IndirectJump:
      case OpClass::Call:
      case OpClass::Ret:
        return true;
      default:
        return false;
    }
}

/** @return true if the class is a conditional branch. */
inline bool
isCondBranch(OpClass cls)
{
    return cls == OpClass::Branch;
}

/**
 * Semantic opcode interpreted by the VM. Each opcode fixes both the
 * dataflow (which operands are read/written) and, through
 * opcodeClass(), the timing class.
 */
enum class Opcode : uint8_t {
    // ALU, dst = src1 OP src2
    Add, Sub, Mul, Div, Rem, And, Or, Xor, Shl, Shr,
    Slt,        ///< dst = (src1 < src2) ? 1 : 0 (signed)
    // ALU, dst = src1 OP imm
    AddI, MulI, AndI, OrI, XorI, ShlI, ShrI, SltI,
    MovI,       ///< dst = imm
    Mov,        ///< dst = src1
    // Floating point (values held in integer registers; timing only)
    FAdd, FMul, FDiv,
    // Memory, address = src1 + imm (Load/Store) or src1 + src2 + imm
    Ld,         ///< dst = mem64[src1 + imm]
    LdX,        ///< dst = mem64[src1 + src2 + imm]
    St,         ///< mem64[src1 + imm] = src2
    StX,        ///< mem64[src1 + src2 + imm] = src3 (src3 in dst slot)
    Pf,         ///< prefetch mem[src1 + imm]
    // Control: conditional branches compare src1 vs src2
    Beq, Bne, Blt, Bge,
    Jmp,        ///< unconditional, direct
    Jr,         ///< indirect jump to src1
    CallD,      ///< direct call, pushes pc+size to stack reg implicit
    RetI,       ///< return via link register (src1)
    Nop,
    Halt,       ///< terminate the program
    NumOpcodes
};

/** @return a short mnemonic for an opcode. */
const char *opcodeName(Opcode op);

/** @return the timing class an opcode belongs to. */
OpClass opcodeClass(Opcode op);

/**
 * A static instruction: one element of a Program's code image.
 *
 * PCs are byte addresses; @p size is the encoded length in bytes and
 * grows by one when the CRISP critical prefix is applied (tagger),
 * which is how the icache footprint overhead of the prefix is
 * modelled.
 */
struct StaticInst
{
    uint64_t pc = 0;        ///< byte address of the instruction
    uint8_t size = 4;       ///< encoded size in bytes (prefix adds 1)
    Opcode op = Opcode::Nop;
    RegId dst = kNoReg;     ///< destination register (kNoReg if none)
    RegId src1 = kNoReg;    ///< first source register
    RegId src2 = kNoReg;    ///< second source register
    RegId src3 = kNoReg;    ///< third source (StX data operand)
    int64_t imm = 0;        ///< immediate / displacement
    uint32_t target = 0;    ///< static index of branch/call target
    bool critical = false;  ///< CRISP critical prefix applied

    /** @return the timing class of this instruction. */
    OpClass cls() const { return opcodeClass(op); }

    /** @return a one-line disassembly. */
    std::string toString() const;
};

/**
 * A dynamic micro-op: one executed instance of a StaticInst, produced
 * by the VM interpreter and consumed by the profiler, the slice
 * extractor and the cycle-level core.
 */
struct MicroOp
{
    uint32_t sidx = 0;      ///< index of the StaticInst in Program::code
    uint64_t pc = 0;        ///< instruction address
    uint64_t effAddr = 0;   ///< effective address (memory ops)
    uint64_t nextPc = 0;    ///< address of the next executed instruction
    OpClass cls = OpClass::Nop;
    RegId dst = kNoReg;
    RegId src1 = kNoReg;
    RegId src2 = kNoReg;
    RegId src3 = kNoReg;
    uint8_t memSize = 0;    ///< access size in bytes (memory ops)
    uint8_t instSize = 4;   ///< encoded size (after tagging)
    bool taken = false;     ///< branch outcome
    bool critical = false;  ///< carries the critical prefix

    /** @return true if this op reads or writes data memory. */
    bool isMem() const { return isMemClass(cls); }
    /** @return true if this op is a demand load. */
    bool isLoad() const { return cls == OpClass::Load; }
    /** @return true if this op is a store. */
    bool isStore() const { return cls == OpClass::Store; }
    /** @return true if this op may redirect control flow. */
    bool isControl() const { return isControlClass(cls); }
};

} // namespace crisp

#endif // CRISP_ISA_MICRO_OP_H
