/**
 * @file
 * Thread-safe memoization of evaluation artifacts.
 *
 * Every figure reproduction re-derives the same three expensive
 * artifacts per workload — the training trace, the CRISP analysis,
 * and the (tagged or untagged) reference trace — often several times
 * per binary (fig09 sweeps four windows, fig10 three thresholds, the
 * autotuner four). The cache computes each artifact exactly once per
 * distinct key and hands out shared_ptr<const> views, so all configs
 * and sweep points share one immutable copy.
 *
 * Keys are canonical string encodings of everything the artifact is a
 * pure function of: traces depend on (workload, input set, length);
 * analyses additionally on every CrispOptions field and on the
 * SimConfig (the profiler models the memory hierarchy and ROB of the
 * target machine); tagged reference traces on the analysis key plus
 * the reference length.
 *
 * Concurrent getters for the same key rendezvous on a shared future:
 * one thread computes, the rest block until the value is ready, and
 * nothing is ever computed twice.
 */

#ifndef CRISP_SIM_ARTIFACT_CACHE_H
#define CRISP_SIM_ARTIFACT_CACHE_H

#include <atomic>
#include <future>
#include <memory>
#include <string>
#include <unordered_map>

#include "core/pipeline.h"
#include "sim/config.h"
#include "sim/sync.h"
#include "workloads/workload.h"

namespace crisp
{

struct SampledWarmState;
class WarmArtifactStore;

/** Shared, memoized trace/analysis artifacts. */
class ArtifactCache
{
  public:
    ArtifactCache() = default;
    ArtifactCache(const ArtifactCache &) = delete;
    ArtifactCache &operator=(const ArtifactCache &) = delete;

    /**
     * Attaches a persistent on-disk tier for warm states (DESIGN.md
     * §14): warmState()/warmStateTagged() misses consult @p store
     * before recomputing and persist what they compute. @p store must
     * outlive the cache (or a subsequent setWarmStore(nullptr)).
     * Disk hits count as in-memory misses in counters() — the
     * artifact still had to be loaded — and warmStoreCounters()
     * breaks out the disk traffic.
     */
    void setWarmStore(WarmArtifactStore *store)
    {
        MutexLock lk(m_);
        warmStore_ = store;
    }

    /** @return the (untagged) trace of @p wl on @p input. */
    std::shared_ptr<const Trace> trace(const WorkloadInfo &wl,
                                       InputSet input, uint64_t ops);

    /**
     * @return the CRISP analysis of @p wl profiled on a Train trace
     *         of @p train_ops micro-ops under @p opts / @p cfg.
     */
    std::shared_ptr<const CrispAnalysis>
    analysis(const WorkloadInfo &wl, const CrispOptions &opts,
             const SimConfig &cfg, uint64_t train_ops);

    /**
     * @return the tagged Ref trace of @p wl: the analysis above
     *         applied as a critical prefix to a ref build.
     */
    std::shared_ptr<const Trace>
    taggedRefTrace(const WorkloadInfo &wl, const CrispOptions &opts,
                   const SimConfig &cfg, uint64_t train_ops,
                   uint64_t ref_ops);

    /**
     * @return the sampled-simulation warm state (all interval
     *         snapshots) of the untagged @p input trace of @p wl
     *         under @p cfg's sample spec. Keyed on the trace
     *         identity, the sample spec and the warm-relevant
     *         geometry only (warmStateKey), so scheduler variants
     *         share one warm pass.
     */
    std::shared_ptr<const SampledWarmState>
    warmState(const WorkloadInfo &wl, InputSet input, uint64_t ops,
              const SimConfig &cfg);

    /** Like warmState(), for the tagged Ref trace of @p wl. */
    std::shared_ptr<const SampledWarmState>
    warmStateTagged(const WorkloadInfo &wl, const CrispOptions &opts,
                    const SimConfig &cfg, uint64_t train_ops,
                    uint64_t ref_ops);

    /** Hit/miss counters (a miss is a computed artifact). */
    struct Counters
    {
        uint64_t hits = 0;
        uint64_t misses = 0;
    };

    /** @return cumulative hit/miss counts across all artifact kinds. */
    Counters counters() const
    {
        return {hits_.load(std::memory_order_relaxed),
                misses_.load(std::memory_order_relaxed)};
    }

    /** Disk-tier hit/miss counts (zero when no store is attached). */
    Counters warmStoreCounters() const
    {
        return {storeHits_.load(std::memory_order_relaxed),
                storeMisses_.load(std::memory_order_relaxed)};
    }

    /** One coherent activity snapshot, for server metrics. */
    struct Stats
    {
        uint64_t hits = 0;   ///< lookups served from the cache
        uint64_t misses = 0; ///< lookups that computed the artifact
        /** Computations running right now; concurrent getters of
         *  these keys rendezvous on the owner's shared future. */
        uint64_t inFlight = 0;
        uint64_t storeHits = 0;   ///< disk-tier loads that verified
        uint64_t storeMisses = 0; ///< disk-tier misses (recomputed)
    };

    /** @return hit/miss/in-flight counts across all artifact kinds. */
    Stats stats() const
    {
        return {hits_.load(std::memory_order_relaxed),
                misses_.load(std::memory_order_relaxed),
                inFlight_.load(std::memory_order_relaxed),
                storeHits_.load(std::memory_order_relaxed),
                storeMisses_.load(std::memory_order_relaxed)};
    }

    /** Drops all cached artifacts (counters are kept). */
    void clear();

    /**
     * @return the canonical key fragment for @p opts; distinct for
     *         every distinct setting of every CrispOptions field.
     */
    static std::string optionsKey(const CrispOptions &opts);

    /** @return the canonical key fragment for @p cfg. */
    static std::string configKey(const SimConfig &cfg);

  private:
    template <typename T>
    using Slot = std::shared_future<std::shared_ptr<const T>>;

    template <typename T>
    using SlotMap = std::unordered_map<std::string, Slot<T>>;

    /**
     * Looks up @p key in the map member named by @p slot, computing
     * via @p make on a miss. Thread-safe; concurrent callers with
     * equal keys share one computation. The map is addressed through
     * a member pointer (rather than a reference) so the guarded
     * member is only ever dereferenced under m_ — a reference
     * parameter would strip the GUARDED_BY relation at the call
     * site.
     */
    template <typename T, typename Make>
    std::shared_ptr<const T>
    getOrCompute(SlotMap<T> ArtifactCache::*slot,
                 const std::string &key, Make &&make);

    /**
     * Warm-pass body shared by warmState()/warmStateTagged(): try
     * the disk tier (when attached) before running buildWarmState,
     * and persist what had to be computed.
     */
    SampledWarmState warmFromStoreOrBuild(const Trace &trace,
                                          const SimConfig &cfg);

    mutable Mutex m_;
    SlotMap<Trace> traces_ CRISP_GUARDED_BY(m_);
    SlotMap<CrispAnalysis> analyses_ CRISP_GUARDED_BY(m_);
    SlotMap<SampledWarmState> warmStates_ CRISP_GUARDED_BY(m_);
    /** The store object itself is internally synchronized; only the
     *  pointer slot is guarded (setWarmStore may race lookups). */
    WarmArtifactStore *warmStore_ CRISP_GUARDED_BY(m_) = nullptr;
    std::atomic<uint64_t> hits_{0};
    std::atomic<uint64_t> misses_{0};
    std::atomic<uint64_t> inFlight_{0};
    std::atomic<uint64_t> storeHits_{0};
    std::atomic<uint64_t> storeMisses_{0};
};

} // namespace crisp

#endif // CRISP_SIM_ARTIFACT_CACHE_H
