/**
 * @file
 * High-level evaluation driver: the per-workload OOO / CRISP / IBDA
 * comparison used throughout the paper's evaluation (§5).
 */

#ifndef CRISP_SIM_DRIVER_H
#define CRISP_SIM_DRIVER_H

#include <map>
#include <string>

#include "core/pipeline.h"
#include "cpu/core.h"
#include "sim/artifact_cache.h"
#include "sim/config.h"
#include "workloads/workload.h"

namespace crisp
{

/** Trace lengths for one evaluation. */
struct EvalSizes
{
    uint64_t trainOps = 200'000;
    uint64_t refOps = 300'000;
};

/** Per-workload comparison outcome. */
struct WorkloadEval
{
    std::string name;
    double ipcBaseline = 0;
    double ipcCrisp = 0;
    /** IST-size label ("1K", "8K", "64K", "inf") -> IPC. */
    std::map<std::string, double> ipcIbda;
    CoreStats baseStats;
    CoreStats crispStats;
    CrispAnalysis analysis;

    /** @return CRISP speedup over the OOO baseline. */
    double crispSpeedup() const
    {
        return ipcBaseline ? ipcCrisp / ipcBaseline : 0.0;
    }
    /** @return IBDA speedup for one IST configuration. */
    double ibdaSpeedup(const std::string &ist) const
    {
        auto it = ipcIbda.find(ist);
        return (it != ipcIbda.end() && ipcBaseline)
                   ? it->second / ipcBaseline
                   : 0.0;
    }
};

class CancelToken;
class IntervalStreamer;
class PcProfiler;
class PipeTracer;

/**
 * Runs a trace on the core under @p cfg.
 *
 * With cfg.sampleOps > 0 the run is routed through sampled
 * simulation (sim/sampled.h): intervals are detail-simulated in
 * parallel and the stitched whole-run stats are returned. In that
 * mode @p interval must be null (per-interval cycle domains do not
 * form one time series) and the tracer records interval 0 only.
 *
 * @param tracer optional pipeline tracer attached for the run
 *        (telemetry); the caller writes it out afterwards
 * @param profiler optional per-PC criticality profiler; the caller
 *        exports it afterwards
 * @param interval optional windowed time-series streamer; the caller
 *        writes its NDJSON records afterwards
 * @param warm optional pre-built sampled warm state (ignored unless
 *        sampling); built on the fly when null
 * @param cancel optional cooperative cancellation token, polled every
 *        executed core tick (sim/cancel.h)
 * @throws JobCancelled when @p cancel fires mid-run
 */
CoreStats runCore(const Trace &trace, const SimConfig &cfg,
                  bool record_timeline = false,
                  PipeTracer *tracer = nullptr,
                  PcProfiler *profiler = nullptr,
                  IntervalStreamer *interval = nullptr,
                  const SampledWarmState *warm = nullptr,
                  const CancelToken *cancel = nullptr);

/**
 * Full per-workload evaluation: baseline OOO, CRISP, and (optionally)
 * the IBDA configurations of Fig 7.
 * @param wl workload to evaluate
 * @param cfg machine configuration (shared by all variants)
 * @param opts CRISP analysis options
 * @param sizes trace lengths
 * @param ist_sizes IBDA IST configurations to run; empty = skip IBDA
 * @param cache optional shared artifact cache; traces/analyses are
 *        reused across calls that share one
 */
WorkloadEval evaluateWorkload(
    const WorkloadInfo &wl, const SimConfig &cfg,
    const CrispOptions &opts, const EvalSizes &sizes,
    const std::vector<std::string> &ist_sizes = {},
    ArtifactCache *cache = nullptr);

/**
 * Batch evaluation of many workloads on a worker pool.
 *
 * Each (workload, variant) core run is an independent job; traces and
 * analyses are shared through an ArtifactCache, so every artifact is
 * computed once no matter how many variants consume it. Results land
 * in deterministic per-workload slots: the returned vector is ordered
 * like @p workloads and is bit-identical to a serial run (jobs = 1 is
 * exactly the serial path).
 *
 * @param workloads workloads to evaluate, in output order
 * @param cfg machine configuration (shared by all variants)
 * @param opts CRISP analysis options
 * @param sizes trace lengths
 * @param jobs worker count (0 = hardware concurrency)
 * @param ist_sizes IBDA IST configurations; empty = skip IBDA
 * @param cache optional shared cache (one is created if null)
 * @param cancel optional cancellation token shared by every core run
 *        in the batch; the first job to observe it fire unwinds the
 *        whole evaluation with JobCancelled
 */
std::vector<WorkloadEval> evaluateAll(
    const std::vector<WorkloadInfo> &workloads, const SimConfig &cfg,
    const CrispOptions &opts, const EvalSizes &sizes, unsigned jobs,
    const std::vector<std::string> &ist_sizes = {},
    ArtifactCache *cache = nullptr,
    const CancelToken *cancel = nullptr);

/** @return an IBDA variant of @p cfg for an IST label. */
SimConfig ibdaConfig(const SimConfig &base, const std::string &ist);

/** @return the baseline OOO variant of @p base (untagged trace,
 *  oldest-first scheduler). */
SimConfig baselineConfig(const SimConfig &base);

/** @return the CRISP variant of @p base (tagged trace, two-level
 *  priority scheduler). */
SimConfig crispConfig(const SimConfig &base);

} // namespace crisp

#endif // CRISP_SIM_DRIVER_H
