#include "sim/sampled.h"

#include <algorithm>
#include <bit>
#include <chrono>
#include <sstream>
#include <stdexcept>
#include <utility>

#include "bp/bimodal.h"
#include "bp/gshare.h"
#include "bp/tage.h"
#include "sim/cancel.h"
#include "sim/sync.h"
#include "sim/thread_pool.h"
#include "sim/warm_io.h"
#include "telemetry/pc_profiler.h"
#include "telemetry/runtime_trace.h"

namespace crisp
{

std::unique_ptr<DirectionPredictor>
makeWarmDirectionPredictor(const SimConfig &cfg)
{
    // Must stay in lockstep with the Frontend constructor's
    // predictor selection.
    if (cfg.branchPredictor == "bimodal")
        return std::make_unique<BimodalPredictor>();
    if (cfg.branchPredictor == "gshare")
        return std::make_unique<GsharePredictor>();
    return std::make_unique<TagePredictor>();
}

namespace
{

/**
 * Open-addressing address -> last-store-index map for the warm pass's
 * store-forwarding window. The warm pass queries it once per load and
 * updates it once per store, which made std::unordered_map (with its
 * per-node allocation and pointer chasing) the hottest structure of
 * the producer loop. Linear probing over a flat power-of-two table
 * keeps the probe in one or two cache lines. Entries are never
 * erased — stale indices age out via the robSize window check, same
 * as with the std::unordered_map this replaces.
 */
class StoreIndexMap
{
  public:
    /** @param window forwarding horizon in ops (the ROB size). */
    explicit StoreIndexMap(uint64_t window)
        : window_(window),
          table_(std::max<size_t>(
              2048, std::bit_ceil(size_t(4 * window + 1))))
    {
        live_.reserve(size_t(window) + 1);
    }

    /** Upserts @p addr -> @p idx. */
    void put(uint64_t addr, uint64_t idx)
    {
        // Stale entries (stores older than the window) accumulate;
        // compacting them away at half-full keeps the table at its
        // initial cache-resident footprint forever, instead of
        // growing with the trace's store-address working set.
        if ((used_ + 1) * 2 > table_.size())
            rebuild(idx);
        Slot &s = probe(addr);
        if (!s.used) {
            s.used = true;
            s.addr = addr;
            ++used_;
        }
        s.idx = idx;
    }

    /** @return the last store index for @p addr, or nullptr. */
    const uint64_t *find(uint64_t addr) const
    {
        const Slot &s =
            const_cast<StoreIndexMap *>(this)->probe(addr);
        return s.used ? &s.idx : nullptr;
    }

  private:
    struct Slot
    {
        uint64_t addr = 0;
        uint64_t idx = 0;
        bool used = false;
    };

    uint64_t window_;
    std::vector<Slot> table_;
    std::vector<std::pair<uint64_t, uint64_t>> live_;
    size_t used_ = 0;

    /** @return the slot holding @p addr, or the empty slot where it
     *  would be inserted. */
    Slot &probe(uint64_t addr)
    {
        size_t mask = table_.size() - 1;
        // Fibonacci hash: multiplicative spread of raw addresses,
        // which share low-bit alignment patterns.
        size_t h =
            size_t((addr * 0x9e3779b97f4a7c15ULL) >> 32) & mask;
        while (table_[h].used && table_[h].addr != addr)
            h = (h + 1) & mask;
        return table_[h];
    }

    /**
     * Drops every entry outside the forwarding window of op
     * @p cur and rehashes the survivors. find() re-checks recency,
     * so discarding out-of-window stores is exact; at most
     * window_ + 1 stores can be live (one store per op), which fits
     * the quarter-full table the constructor sizes.
     */
    void rebuild(uint64_t cur)
    {
        live_.clear();
        for (const Slot &s : table_) {
            if (s.used && cur - s.idx <= window_)
                live_.push_back({s.addr, s.idx});
        }
        std::fill(table_.begin(), table_.end(), Slot{});
        used_ = live_.size();
        for (const auto &[addr, idx] : live_) {
            Slot &d = probe(addr);
            d.used = true;
            d.addr = addr;
            d.idx = idx;
        }
    }
};

/**
 * The functional warm machine: the architectural-state subset of the
 * detailed core that interval simulation needs pre-trained. One
 * commit-order pass over the trace touches the cache hierarchy (and
 * through it the prefetcher engines and DRAM open rows), trains the
 * branch structures in exactly the detailed frontend's fetch-order
 * discipline (fetch order == trace order in a trace-driven model),
 * and drives the IBDA IST/DLT with the same dispatch-time hooks the
 * core uses. Timing inputs are pseudo-cycles — snapshot adoption
 * clamps all timing, so only access *order* matters here.
 *
 * The pass runs on the stat-free warm fast paths (warmLoad/warmStore/
 * warmIfetch/warmPrefetchData): identical content transitions with
 * zero statistics bookkeeping, since adoption zeroes stats anyway
 * (DESIGN.md §14).
 */
class WarmMachine
{
  public:
    /**
     * Pseudo-clock advance per replayed op. Only access *order*
     * matters for warm content, but the clock also dates each cache
     * fill, and adoption drops fills still in flight at the snapshot
     * — so the spacing fixes how far back the in-flight horizon
     * reaches (a DRAM latency ≈ the last ~100 ops at 2 cycles/op,
     * about a ROB's worth of work).
     */
    static constexpr uint64_t kPseudoCyclesPerOp = 2;

    explicit WarmMachine(const SimConfig &cfg)
        : mem_(cfg), dir_(makeWarmDirectionPredictor(cfg)),
          btb_(cfg.btbEntries, 4), ras_(cfg.rasEntries), ibda_(cfg),
          robSize_(cfg.robSize), lastStoreIdx_(cfg.robSize)
    {
    }

    /** Replays one micro-op (trace index @p idx) through the warm
     *  structures. */
    void step(const MicroOp &op, uint64_t idx)
    {
        uint64_t cycle = idx * kPseudoCyclesPerOp;

        // Icache: the frontend charges one access per new line
        // entered (line of the op's last byte).
        uint64_t line = (op.pc + op.instSize - 1) >> 6;
        if (line != curLine_) {
            mem_.warmIfetch(op.pc, cycle);
            curLine_ = line;
        }

        if (op.isControl())
            warmControl(op);

        if (op.cls == OpClass::Load) {
            // Store-to-load forwarding: the detailed core satisfies
            // a load from the store queue — no cache access at all —
            // when an in-flight store to the same word exists.
            // In-flight means dispatched and not yet retired, which
            // in trace order is (at most) the last robSize ops.
            const uint64_t *last = lastStoreIdx_.find(op.effAddr);
            if (last && idx - *last <= robSize_) {
                ibda_.onLoadComplete(op.pc, false);
            } else if ((op.effAddr >> 6) == lastDataLine_) {
                // Back-to-back access to the same L1D line: a
                // guaranteed hit whose only effect is an LRU-clock
                // refresh. No other data access intervened, so
                // skipping it preserves every set's recency
                // *ordering* (and prefetchers train below L1 only)
                // — the walk is droppable without content drift.
                ibda_.onLoadComplete(op.pc, false);
            } else {
                auto res = mem_.warmLoad(op.effAddr, op.pc, cycle);
                ibda_.onLoadComplete(op.pc, res.llcMiss());
                lastDataLine_ = op.effAddr >> 6;
                lastDataLineStore_ = false;
            }
        } else if (op.isStore()) {
            // Same dedup for stores, but only behind another store
            // (the line is already dirty); a store after a load must
            // still run markDirty.
            if ((op.effAddr >> 6) != lastDataLine_ ||
                !lastDataLineStore_) {
                mem_.warmStore(op.effAddr, op.pc, cycle);
                lastDataLine_ = op.effAddr >> 6;
                lastDataLineStore_ = true;
            }
            lastStoreIdx_.put(op.effAddr, idx);
        } else if (op.cls == OpClass::Prefetch) {
            mem_.warmPrefetchData(op.effAddr, cycle);
            // The prefetch fill may evict the tracked line.
            lastDataLine_ = ~0ULL;
        }

        // IBDA rename hooks, in the core's dispatch order: mark
        // first, then record this op as its destination's writer.
        ibda_.onDispatchWarm(op, lastWriterPc_);
        if (op.dst != kNoReg)
            lastWriterPc_[size_t(op.dst)] = op.pc;
    }

    /** @return a snapshot of the current warm state at op @p idx. */
    MachineSnapshot snapshot(uint64_t idx) const
    {
        return MachineSnapshot(idx, idx * kPseudoCyclesPerOp, mem_,
                               dir_->clone(), btb_, ras_,
                               std::make_unique<Ibda>(ibda_),
                               lastWriterPc_);
    }

    /**
     * Move-out capture for the *final* snapshot of a streaming pass:
     * steals the warm structures instead of deep-copying them. The
     * machine is unusable afterwards.
     */
    MachineSnapshot takeSnapshot(uint64_t idx)
    {
        return MachineSnapshot(
            idx, idx * kPseudoCyclesPerOp, std::move(mem_),
            std::move(dir_), std::move(btb_), std::move(ras_),
            std::make_unique<Ibda>(std::move(ibda_)), lastWriterPc_);
    }

  private:
    /** Trains predictor/BTB/RAS exactly as Frontend::predictControl
     *  does, minus the mispredict statistics. */
    void warmControl(const MicroOp &op)
    {
        uint64_t fallthrough = op.pc + op.instSize;
        switch (op.cls) {
          case OpClass::Branch: {
            (void)dir_->predict(op.pc);
            dir_->update(op.pc, op.taken);
            if (op.taken) {
                uint64_t target;
                (void)btb_.lookup(op.pc, target);
                btb_.update(op.pc, op.nextPc);
            }
            break;
          }
          case OpClass::Jump:
            btb_.update(op.pc, op.nextPc);
            break;
          case OpClass::Call:
            ras_.push(fallthrough);
            btb_.update(op.pc, op.nextPc);
            break;
          case OpClass::Ret:
            (void)ras_.pop();
            break;
          case OpClass::IndirectJump: {
            uint64_t target;
            (void)btb_.lookup(op.pc, target);
            btb_.update(op.pc, op.nextPc);
            break;
          }
          default:
            break;
        }
    }

    Hierarchy mem_;
    std::unique_ptr<DirectionPredictor> dir_;
    Btb btb_;
    Ras ras_;
    Ibda ibda_;
    unsigned robSize_;
    StoreIndexMap lastStoreIdx_;
    std::array<uint64_t, kNumArchRegs> lastWriterPc_{};
    uint64_t curLine_ = ~0ULL;
    /** Line of the last data-side cache access, and whether it was a
     *  store — the one-deep dedup window for back-to-back same-line
     *  accesses. */
    uint64_t lastDataLine_ = ~0ULL;
    bool lastDataLineStore_ = false;
};

double
secondsSince(std::chrono::steady_clock::time_point t0)
{
    return std::chrono::duration<double>(
               std::chrono::steady_clock::now() - t0)
        .count();
}

/** Builds the interval-k sub-trace and runs its detailed core.
 *  @p snap is consumed (moved from) when @p consume is true. */
template <typename Snapshot>
CoreStats
runInterval(const Trace &trace, const SimConfig &cfg, size_t k,
            Snapshot &&snap, PcProfiler *prof, PipeTracer *tracer,
            bool record_timeline, const CancelToken *cancel)
{
    TraceSpan span("sampled", "sampled.interval");
    if (span.on())
        span.setArg("k", uint64_t(k));
    const uint64_t n = cfg.sampleOps;
    const uint64_t size = trace.size();
    const uint64_t begin = uint64_t(k) * n;
    const uint64_t end = std::min(begin + n, size);
    const uint64_t warm_start = snap.beginOp;

    Trace sub;
    sub.ops.assign(trace.ops.begin() + ptrdiff_t(warm_start),
                   trace.ops.begin() + ptrdiff_t(end));
    sub.program = trace.program;

    Core core(sub, cfg);
    applySnapshot(core, std::forward<Snapshot>(snap));
    core.setMeasureFromOp(begin - warm_start);
    core.setCancel(cancel);
    if (prof)
        core.setProfiler(prof);
    if (tracer && k == 0)
        core.setTracer(tracer);
    return core.run(~0ULL, record_timeline);
}

} // namespace

SampledWarmState
buildWarmState(const Trace &trace, const SimConfig &cfg)
{
    TraceSpan span("sampled", "sampled.warm_build");
    if (cfg.sampleOps == 0)
        throw std::invalid_argument(
            "buildWarmState: sampleOps must be > 0");

    const uint64_t n = cfg.sampleOps;
    const uint64_t w = cfg.sampleWarmupOps;
    const uint64_t size = trace.size();
    const uint64_t num_intervals = (size + n - 1) / n;

    SampledWarmState warm;
    warm.intervalOps = n;
    warm.warmupOps = w;
    warm.snapshots.reserve(size_t(num_intervals));

    WarmMachine machine(cfg);
    uint64_t next_k = 0;
    for (uint64_t idx = 0; idx < size && next_k < num_intervals;
         ++idx) {
        // Snapshot position for interval k is max(0, k*n - w): the
        // interval's detailed warm-up prefix starts there. Positions
        // are non-decreasing in k; several may coincide at 0.
        while (next_k < num_intervals) {
            uint64_t boundary = next_k * n;
            uint64_t pos = boundary > w ? boundary - w : 0;
            if (pos != idx)
                break;
            warm.snapshots.push_back(machine.snapshot(idx));
            ++next_k;
        }
        if (next_k == num_intervals)
            break; // ops past the last snapshot affect no snapshot
        machine.step(trace.ops[size_t(idx)], idx);
    }
    // Every interval with ops in it has pos(k) <= k*n < size, so the
    // loop above emits exactly num_intervals snapshots.
    return warm;
}

void
applySnapshot(Core &core, const MachineSnapshot &snap)
{
    core.mem_.adoptWarmState(snap.mem, snap.warmCycle);
    core.frontend_.adoptWarmState(*snap.dir, snap.btb, snap.ras);
    if (core.ibda_ && snap.ibda)
        core.ibda_->adoptWarmState(*snap.ibda);
    core.lastWriterPc_ = snap.lastWriterPc;
}

void
applySnapshot(Core &core, MachineSnapshot &&snap)
{
    core.mem_.adoptWarmState(std::move(snap.mem), snap.warmCycle);
    core.frontend_.adoptWarmState(std::move(snap.dir),
                                  std::move(snap.btb),
                                  std::move(snap.ras));
    if (core.ibda_ && snap.ibda)
        core.ibda_->adoptWarmState(std::move(*snap.ibda));
    core.lastWriterPc_ = snap.lastWriterPc;
}

void
serializeSnapshot(const MachineSnapshot &snap, WarmSink &sink)
{
    sink.u64(snap.beginOp);
    sink.u64(snap.warmCycle);
    snap.mem.serializeWarm(sink);
    snap.dir->serializeWarm(sink);
    snap.btb.serializeWarm(sink);
    snap.ras.serializeWarm(sink);
    sink.b(snap.ibda != nullptr);
    if (snap.ibda)
        snap.ibda->serializeWarm(sink);
    sink.u64(snap.lastWriterPc.size());
    for (uint64_t pc : snap.lastWriterPc)
        sink.u64(pc);
}

bool
deserializeSnapshot(WarmSource &src, MachineSnapshot &out)
{
    out.beginOp = src.u64();
    out.warmCycle = src.u64();
    if (!out.mem.deserializeWarm(src))
        return false;
    if (!out.dir->deserializeWarm(src))
        return false;
    if (!out.btb.deserializeWarm(src))
        return false;
    if (!out.ras.deserializeWarm(src))
        return false;
    bool has_ibda = src.b();
    if (has_ibda != (out.ibda != nullptr)) {
        src.markFail();
        return false;
    }
    if (out.ibda && !out.ibda->deserializeWarm(src))
        return false;
    if (src.u64() != out.lastWriterPc.size()) {
        src.markFail();
        return false;
    }
    for (uint64_t &pc : out.lastWriterPc)
        pc = src.u64();
    return src.ok();
}

SampledResult
runCoreSampled(const Trace &trace, const SimConfig &cfg,
               const SampledWarmState *warm, PcProfiler *profiler,
               PipeTracer *tracer, bool record_timeline,
               SnapshotObserver *observer, const CancelToken *cancel)
{
    if (cfg.sampleOps == 0)
        throw std::invalid_argument(
            "runCoreSampled: sampleOps must be > 0");
    if (warm != nullptr && (warm->intervalOps != cfg.sampleOps ||
                            warm->warmupOps != cfg.sampleWarmupOps))
        throw std::invalid_argument(
            "runCoreSampled: warm state was built for a different "
            "sample spec");

    const uint64_t n = cfg.sampleOps;
    const uint64_t w = cfg.sampleWarmupOps;
    const uint64_t size = trace.size();
    const uint64_t num_intervals = (size + n - 1) / n;
    if (warm != nullptr &&
        warm->snapshots.size() != size_t(num_intervals))
        throw std::invalid_argument(
            "runCoreSampled: warm state was built for a different "
            "trace length");

    SampledResult result;
    result.intervalOps = n;
    result.warmupOps = w;
    result.intervals.resize(size_t(num_intervals));

    std::vector<PcProfiler> profilers;
    if (profiler)
        profilers.resize(size_t(num_intervals));

    // Each interval job is a pure function of (sub-trace, config,
    // snapshot) and writes its own result slot, so output is
    // bit-identical at any job count and either schedule.
    ThreadPool pool(cfg.sampleJobs);
    const auto t0 = std::chrono::steady_clock::now();

    if (warm != nullptr) {
        // Barrier schedule: every snapshot already exists; adoption
        // copies (the caller keeps ownership of the warm state).
        result.peakLiveSnapshots = warm->snapshots.size();
        pool.parallelFor(size_t(num_intervals), [&](size_t k) {
            result.intervals[k] = runInterval(
                trace, cfg, k, warm->snapshots[k],
                profiler ? &profilers[k] : nullptr, tracer,
                record_timeline, cancel);
        });
        result.detailSeconds = secondsSince(t0);
    } else {
        // Pipelined schedule (DESIGN.md §14): the warm producer
        // publishes snapshot k the moment boundary k is crossed and
        // the interval-k job starts immediately. Adoption moves, and
        // a backpressure cap bounds live snapshots so a fast
        // producer cannot materialize the whole warm state at once.
        result.warmPassRan = true;
        ThreadPool::Stream stream(pool);

        Mutex live_m;
        CondVar live_cv;
        size_t live = 0;
        size_t peak = 0;
        const size_t max_live =
            std::max<size_t>(size_t(2) * pool.size(), 4);

        // Decrements the live-snapshot count even when the interval
        // job throws, so the producer can never wedge on
        // backpressure behind a failed job.
        struct LiveToken
        {
            Mutex &m;
            CondVar &cv;
            size_t &live;
            ~LiveToken()
            {
                {
                    MutexLock lk(m);
                    --live;
                }
                cv.notifyOne();
            }
        };

        auto publish = [&](size_t k,
                           std::shared_ptr<MachineSnapshot> sp) {
            if (observer)
                observer->onSnapshot(k, *sp);
            {
                MutexLock lk(live_m);
                live_cv.wait(lk,
                             [&] { return live < max_live; });
                ++live;
                peak = std::max(peak, live);
            }
            PcProfiler *prof = profiler ? &profilers[k] : nullptr;
            stream.submit([&trace, &cfg, k, sp, prof, tracer,
                           record_timeline, &result, &live_m,
                           &live_cv, &live, cancel]() mutable {
                LiveToken token{live_m, live_cv, live};
                result.intervals[k] = runInterval(
                    trace, cfg, k, std::move(*sp), prof, tracer,
                    record_timeline, cancel);
                sp.reset(); // free the gutted snapshot eagerly
            });
        };

        // The producer span is recorded explicitly (not RAII): it
        // must close at the warm pass's end, before stream.wait()
        // blocks this thread draining detail jobs.
        RuntimeTracer *rt = RuntimeTracer::active();
        const uint64_t warm_begin_ns = rt ? rt->nowNs() : 0;

        WarmMachine machine(cfg);
        uint64_t next_k = 0;
        for (uint64_t idx = 0;
             idx < size && next_k < num_intervals; ++idx) {
            // The producer polls too, so a fired token stops the
            // warm pass instead of racing it to the last boundary.
            if (cancel)
                cancel->throwIfCancelled("warm pass");
            while (next_k < num_intervals) {
                uint64_t boundary = next_k * n;
                uint64_t pos = boundary > w ? boundary - w : 0;
                if (pos != idx)
                    break;
                // The final snapshot steals the machine: no producer
                // work remains after it (ops past the last snapshot
                // position affect no snapshot).
                auto sp = std::make_shared<MachineSnapshot>(
                    next_k + 1 == num_intervals
                        ? machine.takeSnapshot(idx)
                        : machine.snapshot(idx));
                publish(size_t(next_k), std::move(sp));
                ++next_k;
            }
            if (next_k == num_intervals)
                break;
            machine.step(trace.ops[size_t(idx)], idx);
        }
        result.warmSeconds = secondsSince(t0);
        if (rt)
            rt->recordSpan("sampled", "sampled.warm_producer",
                           warm_begin_ns, rt->nowNs());
        stream.wait();
        result.detailSeconds = secondsSince(t0);
        result.peakLiveSnapshots = peak;
    }

    const auto t_stitch = std::chrono::steady_clock::now();
    {
        TraceSpan span("sampled", "sampled.stitch");
        for (const CoreStats &cs : result.intervals)
            result.total.accumulate(cs);
        if (profiler)
            for (const PcProfiler &p : profilers)
                profiler->merge(p);
    }
    result.stitchSeconds = secondsSince(t_stitch);
    return result;
}

std::string
warmStateKey(const SimConfig &c)
{
    // Only what warm-state *content* is a function of: geometry of
    // the warmed structures and the sample spec. Latencies, MSHR
    // counts, scheduler policy and tick model shape timing, which
    // snapshot adoption clamps — so ooo/crisp/ibda variants on the
    // same trace share one warm artifact.
    auto cache = [](const CacheConfig &k) {
        std::ostringstream os;
        os << k.sizeBytes << "/" << k.ways << "/" << k.lineBytes;
        return os.str();
    };
    std::ostringstream os;
    os << "N=" << c.sampleOps << ";W=" << c.sampleWarmupOps
       << ";l1i=" << cache(c.l1i) << ";l1d=" << cache(c.l1d)
       << ";llc=" << cache(c.llc) << ";bop=" << c.enableBop
       << ";str=" << c.enableStream << ";srd=" << c.enableStride
       << ";ghb=" << c.enableGhb << ";bp=" << c.branchPredictor
       << ";btb=" << c.btbEntries << ";ras=" << c.rasEntries
       << ";ist=" << c.istEntries << "/" << c.istWays << "/"
       << c.istInfinite << ";dlt=" << c.dltEntries;
    return os.str();
}

} // namespace crisp
