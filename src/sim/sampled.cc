#include "sim/sampled.h"

#include <algorithm>
#include <sstream>
#include <stdexcept>
#include <unordered_map>

#include "bp/bimodal.h"
#include "bp/gshare.h"
#include "bp/tage.h"
#include "sim/thread_pool.h"
#include "telemetry/pc_profiler.h"

namespace crisp
{

namespace
{

/**
 * The functional warm machine: the architectural-state subset of the
 * detailed core that interval simulation needs pre-trained. One
 * commit-order pass over the trace touches the cache hierarchy (and
 * through it the prefetcher engines and DRAM open rows), trains the
 * branch structures in exactly the detailed frontend's fetch-order
 * discipline (fetch order == trace order in a trace-driven model),
 * and drives the IBDA IST/DLT with the same dispatch-time hooks the
 * core uses. Timing inputs are pseudo-cycles — snapshot adoption
 * clamps all timing, so only access *order* matters here.
 */
class WarmMachine
{
  public:
    /**
     * Pseudo-clock advance per replayed op. Only access *order*
     * matters for warm content, but the clock also dates each cache
     * fill, and adoption drops fills still in flight at the snapshot
     * — so the spacing fixes how far back the in-flight horizon
     * reaches (a DRAM latency ≈ the last ~100 ops at 2 cycles/op,
     * about a ROB's worth of work).
     */
    static constexpr uint64_t kPseudoCyclesPerOp = 2;

    explicit WarmMachine(const SimConfig &cfg)
        : mem_(cfg), dir_(makeDir(cfg)), btb_(cfg.btbEntries, 4),
          ras_(cfg.rasEntries), ibda_(cfg), robSize_(cfg.robSize)
    {
    }

    /** Replays one micro-op (trace index @p idx) through the warm
     *  structures. */
    void step(const MicroOp &op, uint64_t idx)
    {
        uint64_t cycle = idx * kPseudoCyclesPerOp;

        // Icache: the frontend charges one access per new line
        // entered (line of the op's last byte).
        uint64_t line = (op.pc + op.instSize - 1) >> 6;
        if (line != curLine_) {
            mem_.ifetch(op.pc, cycle);
            curLine_ = line;
        }

        if (op.isControl())
            warmControl(op);

        if (op.cls == OpClass::Load) {
            // Store-to-load forwarding: the detailed core satisfies
            // a load from the store queue — no cache access at all —
            // when an in-flight store to the same word exists.
            // In-flight means dispatched and not yet retired, which
            // in trace order is (at most) the last robSize ops.
            auto it = lastStoreIdx_.find(op.effAddr);
            if (it != lastStoreIdx_.end() &&
                idx - it->second <= robSize_) {
                ibda_.onLoadComplete(op.pc, false);
            } else {
                auto res = mem_.load(op.effAddr, op.pc, cycle);
                ibda_.onLoadComplete(op.pc, res.llcMiss());
            }
        } else if (op.isStore()) {
            mem_.store(op.effAddr, op.pc, cycle);
            lastStoreIdx_[op.effAddr] = idx;
        } else if (op.cls == OpClass::Prefetch) {
            mem_.prefetchData(op.effAddr, cycle);
        }

        // IBDA rename hooks, in the core's dispatch order: mark
        // first, then record this op as its destination's writer.
        ibda_.onDispatch(op, lastWriterPc_);
        if (op.dst != kNoReg)
            lastWriterPc_[size_t(op.dst)] = op.pc;
    }

    /** @return a snapshot of the current warm state at op @p idx. */
    MachineSnapshot snapshot(uint64_t idx) const
    {
        return MachineSnapshot(idx, idx * kPseudoCyclesPerOp, mem_,
                               dir_->clone(),
                               btb_, ras_,
                               std::make_unique<Ibda>(ibda_),
                               lastWriterPc_);
    }

  private:
    /** Must stay in lockstep with the Frontend constructor's
     *  predictor selection. */
    static std::unique_ptr<DirectionPredictor>
    makeDir(const SimConfig &cfg)
    {
        if (cfg.branchPredictor == "bimodal")
            return std::make_unique<BimodalPredictor>();
        if (cfg.branchPredictor == "gshare")
            return std::make_unique<GsharePredictor>();
        return std::make_unique<TagePredictor>();
    }

    /** Trains predictor/BTB/RAS exactly as Frontend::predictControl
     *  does, minus the mispredict statistics. */
    void warmControl(const MicroOp &op)
    {
        uint64_t fallthrough = op.pc + op.instSize;
        switch (op.cls) {
          case OpClass::Branch: {
            (void)dir_->predict(op.pc);
            dir_->update(op.pc, op.taken);
            if (op.taken) {
                uint64_t target;
                (void)btb_.lookup(op.pc, target);
                btb_.update(op.pc, op.nextPc);
            }
            break;
          }
          case OpClass::Jump:
            btb_.update(op.pc, op.nextPc);
            break;
          case OpClass::Call:
            ras_.push(fallthrough);
            btb_.update(op.pc, op.nextPc);
            break;
          case OpClass::Ret:
            (void)ras_.pop();
            break;
          case OpClass::IndirectJump: {
            uint64_t target;
            (void)btb_.lookup(op.pc, target);
            btb_.update(op.pc, op.nextPc);
            break;
          }
          default:
            break;
        }
    }

    Hierarchy mem_;
    std::unique_ptr<DirectionPredictor> dir_;
    Btb btb_;
    Ras ras_;
    Ibda ibda_;
    unsigned robSize_;
    std::unordered_map<uint64_t, uint64_t> lastStoreIdx_;
    std::array<uint64_t, kNumArchRegs> lastWriterPc_{};
    uint64_t curLine_ = ~0ULL;
};

} // namespace

SampledWarmState
buildWarmState(const Trace &trace, const SimConfig &cfg)
{
    if (cfg.sampleOps == 0)
        throw std::invalid_argument(
            "buildWarmState: sampleOps must be > 0");

    const uint64_t n = cfg.sampleOps;
    const uint64_t w = cfg.sampleWarmupOps;
    const uint64_t size = trace.size();
    const uint64_t num_intervals = (size + n - 1) / n;

    SampledWarmState warm;
    warm.intervalOps = n;
    warm.warmupOps = w;
    warm.snapshots.reserve(size_t(num_intervals));

    WarmMachine machine(cfg);
    uint64_t next_k = 0;
    for (uint64_t idx = 0; idx < size; ++idx) {
        // Snapshot position for interval k is max(0, k*n - w): the
        // interval's detailed warm-up prefix starts there. Positions
        // are non-decreasing in k; several may coincide at 0.
        while (next_k < num_intervals) {
            uint64_t boundary = next_k * n;
            uint64_t pos = boundary > w ? boundary - w : 0;
            if (pos != idx)
                break;
            warm.snapshots.push_back(machine.snapshot(idx));
            ++next_k;
        }
        machine.step(trace.ops[size_t(idx)], idx);
    }
    // Every interval with ops in it has pos(k) <= k*n < size, so the
    // loop above emits exactly num_intervals snapshots.
    return warm;
}

void
applySnapshot(Core &core, const MachineSnapshot &snap)
{
    core.mem_.adoptWarmState(snap.mem, snap.warmCycle);
    core.frontend_.adoptWarmState(*snap.dir, snap.btb, snap.ras);
    if (core.ibda_ && snap.ibda)
        core.ibda_->adoptWarmState(*snap.ibda);
    core.lastWriterPc_ = snap.lastWriterPc;
}

SampledResult
runCoreSampled(const Trace &trace, const SimConfig &cfg,
               const SampledWarmState *warm, PcProfiler *profiler,
               PipeTracer *tracer, bool record_timeline)
{
    if (cfg.sampleOps == 0)
        throw std::invalid_argument(
            "runCoreSampled: sampleOps must be > 0");

    SampledWarmState local;
    if (warm == nullptr) {
        local = buildWarmState(trace, cfg);
        warm = &local;
    } else if (warm->intervalOps != cfg.sampleOps ||
               warm->warmupOps != cfg.sampleWarmupOps) {
        throw std::invalid_argument(
            "runCoreSampled: warm state was built for a different "
            "sample spec");
    }

    const uint64_t n = cfg.sampleOps;
    const uint64_t size = trace.size();
    const uint64_t num_intervals = (size + n - 1) / n;
    if (warm->snapshots.size() != size_t(num_intervals))
        throw std::invalid_argument(
            "runCoreSampled: warm state was built for a different "
            "trace length");

    SampledResult result;
    result.intervalOps = n;
    result.warmupOps = cfg.sampleWarmupOps;
    result.intervals.resize(size_t(num_intervals));

    std::vector<PcProfiler> profilers;
    if (profiler)
        profilers.resize(size_t(num_intervals));

    // Each interval job is a pure function of (sub-trace, config,
    // snapshot) and writes its own result slot, so output is
    // bit-identical at any job count.
    ThreadPool pool(cfg.sampleJobs);
    pool.parallelFor(size_t(num_intervals), [&](size_t k) {
        const MachineSnapshot &snap = warm->snapshots[k];
        const uint64_t begin = uint64_t(k) * n;
        const uint64_t end = std::min(begin + n, size);
        const uint64_t warm_start = snap.beginOp;

        Trace sub;
        sub.ops.assign(trace.ops.begin() + ptrdiff_t(warm_start),
                       trace.ops.begin() + ptrdiff_t(end));
        sub.program = trace.program;

        Core core(sub, cfg);
        applySnapshot(core, snap);
        core.setMeasureFromOp(begin - warm_start);
        if (profiler)
            core.setProfiler(&profilers[k]);
        if (tracer && k == 0)
            core.setTracer(tracer);
        result.intervals[k] = core.run(~0ULL, record_timeline);
    });

    for (const CoreStats &cs : result.intervals)
        result.total.accumulate(cs);
    if (profiler)
        for (const PcProfiler &p : profilers)
            profiler->merge(p);
    return result;
}

std::string
warmStateKey(const SimConfig &c)
{
    // Only what warm-state *content* is a function of: geometry of
    // the warmed structures and the sample spec. Latencies, MSHR
    // counts, scheduler policy and tick model shape timing, which
    // snapshot adoption clamps — so ooo/crisp/ibda variants on the
    // same trace share one warm artifact.
    auto cache = [](const CacheConfig &k) {
        std::ostringstream os;
        os << k.sizeBytes << "/" << k.ways << "/" << k.lineBytes;
        return os.str();
    };
    std::ostringstream os;
    os << "N=" << c.sampleOps << ";W=" << c.sampleWarmupOps
       << ";l1i=" << cache(c.l1i) << ";l1d=" << cache(c.l1d)
       << ";llc=" << cache(c.llc) << ";bop=" << c.enableBop
       << ";str=" << c.enableStream << ";srd=" << c.enableStride
       << ";ghb=" << c.enableGhb << ";bp=" << c.branchPredictor
       << ";btb=" << c.btbEntries << ";ras=" << c.rasEntries
       << ";ist=" << c.istEntries << "/" << c.istWays << "/"
       << c.istInfinite << ";dlt=" << c.dltEntries;
    return os.str();
}

} // namespace crisp
