/**
 * @file
 * Small statistics helpers shared by benches and tests.
 */

#ifndef CRISP_SIM_STATS_H
#define CRISP_SIM_STATS_H

#include <chrono>
#include <cstdint>
#include <string>
#include <vector>

namespace crisp
{

/** @return the arithmetic mean (0 for empty input). */
double mean(const std::vector<double> &xs);

/** @return the geometric mean (0 for empty input; values must be >0). */
double geomean(const std::vector<double> &xs);

/** @return "x.y%" formatting of a fraction. */
std::string percent(double fraction, int decimals = 1);

/** @return fixed-point formatting. */
std::string fixed(double value, int decimals = 2);

/**
 * Monotonic wall-clock stopwatch for phase timing. Starts on
 * construction; immune to system clock adjustments.
 */
class Timer
{
  public:
    Timer() : start_(std::chrono::steady_clock::now()) {}

    /** Restarts the stopwatch. */
    void reset() { start_ = std::chrono::steady_clock::now(); }

    /** @return seconds elapsed since construction or reset(). */
    double seconds() const
    {
        return std::chrono::duration<double>(
                   std::chrono::steady_clock::now() - start_)
            .count();
    }

    /** @return milliseconds elapsed. */
    double millis() const { return seconds() * 1e3; }

  private:
    std::chrono::steady_clock::time_point start_;
};

/** Streaming histogram with fixed-width buckets. */
class Histogram
{
  public:
    /**
     * @param bucket_width width of each bucket
     * @param num_buckets bucket count (overflow clamps to the last)
     */
    Histogram(double bucket_width, unsigned num_buckets);

    /** Adds one sample. */
    void add(double value);

    /** @return samples recorded. */
    uint64_t count() const { return count_; }
    /** @return mean of the samples. */
    double average() const
    {
        return count_ ? sum_ / double(count_) : 0.0;
    }
    /** @return approximate p-th percentile (0-100). */
    double percentile(double p) const;
    /** @return the bucket counts. */
    const std::vector<uint64_t> &buckets() const { return buckets_; }

    /**
     * Accumulates another histogram of identical geometry (same
     * bucket width and count), e.g. to aggregate per-run latency
     * histograms across workloads or variants.
     * @throws std::invalid_argument on mismatched geometry.
     */
    void merge(const Histogram &other);

    /**
     * Subtracts an earlier snapshot of this histogram (identical
     * geometry; every bucket of @p base must be <= this one's).
     * Sampled simulation uses it to drop warm-up-prefix samples.
     * @throws std::invalid_argument on mismatched geometry.
     */
    void subtract(const Histogram &base);

    /** @return the bucket width this histogram was built with. */
    double bucketWidth() const { return width_; }

  private:
    double width_;
    std::vector<uint64_t> buckets_;
    uint64_t count_ = 0;
    double sum_ = 0;
};

} // namespace crisp

#endif // CRISP_SIM_STATS_H
