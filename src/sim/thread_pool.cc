#include "sim/thread_pool.h"

#include <cassert>
#include <utility>

namespace crisp
{

unsigned
ThreadPool::defaultJobs()
{
    unsigned hw = std::thread::hardware_concurrency();
    return hw ? hw : 1;
}

ThreadPool::ThreadPool(unsigned jobs)
    : size_(jobs ? jobs : defaultJobs())
{
    if (size_ <= 1)
        return; // inline mode: no workers, parallelFor runs serially
    // The caller participates in parallelFor, so size_ lanes need
    // only size_ - 1 dedicated workers.
    workers_.reserve(size_ - 1);
    for (unsigned k = 0; k + 1 < size_; ++k)
        workers_.emplace_back([this] { workerLoop(); });
}

ThreadPool::~ThreadPool()
{
    {
        std::lock_guard<std::mutex> lk(m_);
        stop_ = true;
    }
    work_cv_.notify_all();
    for (auto &w : workers_)
        w.join();
}

bool
ThreadPool::runOne(std::unique_lock<std::mutex> &lk)
{
    Batch *b = batch_;
    if (!b || b->next >= b->total)
        return false;
    size_t i = b->next++;
    lk.unlock();
    std::exception_ptr err;
    try {
        (*b->fn)(i);
    } catch (...) {
        err = std::current_exception();
    }
    lk.lock();
    if (err && !b->error)
        b->error = err;
    if (++b->done == b->total)
        done_cv_.notify_all();
    return true;
}

bool
ThreadPool::runOneStream(std::unique_lock<std::mutex> &lk)
{
    if (streamTasks_.empty())
        return false;
    std::function<void()> task = std::move(streamTasks_.front());
    streamTasks_.pop_front();
    lk.unlock();
    std::exception_ptr err;
    try {
        task();
    } catch (...) {
        err = std::current_exception();
    }
    lk.lock();
    if (err && !streamError_)
        streamError_ = err;
    if (--streamPending_ == 0)
        done_cv_.notify_all();
    return true;
}

void
ThreadPool::workerLoop()
{
    std::unique_lock<std::mutex> lk(m_);
    for (;;) {
        work_cv_.wait(lk, [this] {
            return stop_ ||
                   (batch_ && batch_->next < batch_->total) ||
                   !streamTasks_.empty();
        });
        if (stop_)
            return;
        while (runOne(lk) || runOneStream(lk)) {
        }
    }
}

void
ThreadPool::parallelFor(size_t n,
                        const std::function<void(size_t)> &fn)
{
    if (n == 0)
        return;
    if (size_ <= 1 || n == 1) {
        // Serial reference path: identical to the pre-pool code.
        for (size_t i = 0; i < n; ++i)
            fn(i);
        return;
    }

    Batch batch;
    batch.fn = &fn;
    batch.total = n;

    std::unique_lock<std::mutex> lk(m_);
    batch_ = &batch;
    work_cv_.notify_all();
    // The caller is a lane too: it helps drain the queue rather than
    // idling, so a pool of size N gives N concurrent iterations.
    while (runOne(lk)) {
    }
    done_cv_.wait(lk, [&batch] { return batch.done == batch.total; });
    batch_ = nullptr;
    if (batch.error)
        std::rethrow_exception(batch.error);
}

ThreadPool::Stream::Stream(ThreadPool &pool) : pool_(pool)
{
    std::lock_guard<std::mutex> lk(pool_.m_);
    assert(!pool_.streamOpen_ && "one open Stream per pool");
    pool_.streamOpen_ = true;
    pool_.streamError_ = nullptr;
}

ThreadPool::Stream::~Stream()
{
    // Drain without throwing; a stored error the caller never
    // collected via wait() is discarded.
    if (pool_.size_ > 1) {
        std::unique_lock<std::mutex> lk(pool_.m_);
        while (pool_.runOneStream(lk)) {
        }
        pool_.done_cv_.wait(
            lk, [this] { return pool_.streamPending_ == 0; });
        pool_.streamError_ = nullptr;
        pool_.streamOpen_ = false;
        return;
    }
    pool_.streamError_ = nullptr;
    pool_.streamOpen_ = false;
}

void
ThreadPool::Stream::submit(std::function<void()> task)
{
    if (pool_.size_ <= 1) {
        // Serial reference path: run on the caller right away.
        try {
            task();
        } catch (...) {
            if (!pool_.streamError_)
                pool_.streamError_ = std::current_exception();
        }
        return;
    }
    {
        std::lock_guard<std::mutex> lk(pool_.m_);
        pool_.streamTasks_.push_back(std::move(task));
        ++pool_.streamPending_;
    }
    pool_.work_cv_.notify_one();
}

void
ThreadPool::Stream::wait()
{
    std::exception_ptr err;
    if (pool_.size_ <= 1) {
        err = pool_.streamError_;
        pool_.streamError_ = nullptr;
    } else {
        std::unique_lock<std::mutex> lk(pool_.m_);
        // The caller is a lane too: help drain instead of idling.
        while (pool_.runOneStream(lk)) {
        }
        pool_.done_cv_.wait(
            lk, [this] { return pool_.streamPending_ == 0; });
        err = pool_.streamError_;
        pool_.streamError_ = nullptr;
    }
    if (err)
        std::rethrow_exception(err);
}

} // namespace crisp
