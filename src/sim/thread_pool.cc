#include "sim/thread_pool.h"

#include <cassert>
#include <utility>

#include "telemetry/runtime_trace.h"

namespace crisp
{

unsigned
ThreadPool::defaultJobs()
{
    unsigned hw = std::thread::hardware_concurrency();
    return hw ? hw : 1;
}

ThreadPool::ThreadPool(unsigned jobs)
    : size_(jobs ? jobs : defaultJobs())
{
    if (size_ <= 1)
        return; // inline mode: no workers, parallelFor runs serially
    // The caller participates in parallelFor, so size_ lanes need
    // only size_ - 1 dedicated workers.
    workers_.reserve(size_ - 1);
    for (unsigned k = 0; k + 1 < size_; ++k)
        workers_.emplace_back([this] { workerLoop(); });
}

ThreadPool::~ThreadPool()
{
    {
        MutexLock lk(m_);
        stop_ = true;
    }
    work_cv_.notifyAll();
    for (auto &w : workers_)
        w.join();
}

bool
ThreadPool::runOne()
{
    Batch *b = batch_;
    if (!b || b->next >= b->total)
        return false;
    size_t i = b->next++;
    m_.unlock();
    std::exception_ptr err;
    {
        TraceSpan span("pool", "pool.task");
        if (span.on())
            span.setArg("idx", uint64_t(i));
        try {
            (*b->fn)(i);
        } catch (...) {
            err = std::current_exception();
        }
    }
    m_.lock();
    if (err && !b->error)
        b->error = err;
    if (++b->done == b->total)
        done_cv_.notifyAll();
    return true;
}

bool
ThreadPool::runOneStream()
{
    if (streamTasks_.empty())
        return false;
    StreamTask task = std::move(streamTasks_.front());
    streamTasks_.pop_front();
    m_.unlock();
    // Queue-wait goes out as an async pair: on this thread it would
    // overlap whatever span just ended, so it cannot be an 'X'.
    if (RuntimeTracer *tr = RuntimeTracer::active();
        tr && task.enqueueNs)
        tr->recordAsyncPair("pool", "pool.queue_wait",
                            task.enqueueNs, tr->nowNs());
    std::exception_ptr err;
    {
        TraceSpan span("pool", "pool.stream_task");
        try {
            task.fn();
        } catch (...) {
            err = std::current_exception();
        }
    }
    m_.lock();
    if (err && !streamError_)
        streamError_ = err;
    if (--streamPending_ == 0)
        done_cv_.notifyAll();
    return true;
}

void
ThreadPool::workerLoop()
{
    MutexLock lk(m_);
    for (;;) {
        work_cv_.wait(lk, [this]() CRISP_REQUIRES(m_) {
            return stop_ ||
                   (batch_ && batch_->next < batch_->total) ||
                   !streamTasks_.empty();
        });
        if (stop_)
            return;
        while (runOne() || runOneStream()) {
        }
    }
}

void
ThreadPool::parallelFor(size_t n,
                        const std::function<void(size_t)> &fn)
{
    if (n == 0)
        return;
    if (size_ <= 1 || n == 1) {
        // Serial reference path: identical to the pre-pool code.
        for (size_t i = 0; i < n; ++i)
            fn(i);
        return;
    }

    Batch batch;
    batch.fn = &fn;
    batch.total = n;

    MutexLock lk(m_);
    batch_ = &batch;
    work_cv_.notifyAll();
    // The caller is a lane too: it helps drain the queue rather than
    // idling, so a pool of size N gives N concurrent iterations.
    while (runOne()) {
    }
    // Batch fields are unannotated (see struct comment): a plain
    // lambda suffices here; m_ is held whenever the predicate runs.
    done_cv_.wait(
        lk, [&batch] { return batch.done == batch.total; });
    batch_ = nullptr;
    if (batch.error)
        std::rethrow_exception(batch.error);
}

ThreadPool::Stream::Stream(ThreadPool &pool) : pool_(pool)
{
    MutexLock lk(pool_.m_);
    assert(!pool_.streamOpen_ && "one open Stream per pool");
    pool_.streamOpen_ = true;
    pool_.streamError_ = nullptr;
}

ThreadPool::Stream::~Stream()
{
    // Drain without throwing; a stored error the caller never
    // collected via wait() is discarded.
    MutexLock lk(pool_.m_);
    if (pool_.size_ > 1) {
        while (pool_.runOneStream()) {
        }
        pool_.done_cv_.wait(
            lk, [this]() CRISP_REQUIRES(pool_.m_) {
                return pool_.streamPending_ == 0;
            });
    }
    pool_.streamError_ = nullptr;
    pool_.streamOpen_ = false;
}

void
ThreadPool::Stream::submit(std::function<void()> task)
{
    if (pool_.size_ <= 1) {
        // Serial reference path: run on the caller right away.  The
        // task runs outside the lock (it may submit recursively);
        // only the error slot is touched under m_ so wait() from
        // another thread observes it.
        std::exception_ptr err;
        {
            TraceSpan span("pool", "pool.stream_task");
            try {
                task();
            } catch (...) {
                err = std::current_exception();
            }
        }
        if (err) {
            MutexLock lk(pool_.m_);
            if (!pool_.streamError_)
                pool_.streamError_ = err;
        }
        return;
    }
    StreamTask st;
    st.fn = std::move(task);
    if (RuntimeTracer *tr = RuntimeTracer::active())
        st.enqueueNs = tr->nowNs();
    {
        MutexLock lk(pool_.m_);
        pool_.streamTasks_.push_back(std::move(st));
        ++pool_.streamPending_;
    }
    pool_.work_cv_.notifyOne();
}

void
ThreadPool::Stream::wait()
{
    std::exception_ptr err;
    {
        MutexLock lk(pool_.m_);
        if (pool_.size_ > 1) {
            // The caller is a lane too: help drain, don't idle.
            while (pool_.runOneStream()) {
            }
            pool_.done_cv_.wait(
                lk, [this]() CRISP_REQUIRES(pool_.m_) {
                    return pool_.streamPending_ == 0;
                });
        }
        err = pool_.streamError_;
        pool_.streamError_ = nullptr;
    }
    if (err)
        std::rethrow_exception(err);
}

} // namespace crisp
