#ifndef CRISP_SIM_SYNC_H
#define CRISP_SIM_SYNC_H

/**
 * @file sync.h
 * Annotated synchronization primitives for Clang Thread Safety
 * Analysis (TSA).
 *
 * Every concurrent subsystem in the repo (ThreadPool, ArtifactCache,
 * WarmArtifactStore, crisp_serve) locks through these wrappers so the
 * compiler can prove lock discipline statically:
 *
 *   - members guarded by a Mutex carry CRISP_GUARDED_BY(m_)
 *   - methods that must be called with the lock held carry
 *     CRISP_REQUIRES(m_)
 *   - scoped acquisition is CRISP only via MutexLock
 *   - condition waits go through CondVar, whose API makes the
 *     predicate mandatory (a predicate-less wait does not compile)
 *
 * Under compilers without the capability attributes (GCC, MSVC) the
 * macros expand to nothing and the wrappers cost exactly a
 * std::mutex / std::condition_variable.  The CI `thread-safety` job
 * builds with Clang and -Werror=thread-safety, so annotation drift
 * fails the build even though local toolchains may be GCC-only.
 *
 * Conventions (see DESIGN.md §16):
 *   - annotate the *header* declaration; Clang ignores attributes
 *     that appear only on out-of-line definitions
 *   - lambdas that read guarded members (e.g. CondVar predicates)
 *     carry the attribute via GNU syntax after the parameter list:
 *       cv.wait(lk, [this]() CRISP_REQUIRES(m_) { return done_; });
 *   - CRISP_NO_THREAD_SAFETY_ANALYSIS is a last resort, reserved for
 *     functions that hand a lock across scopes in ways TSA's
 *     intraprocedural model cannot follow; every use needs a comment.
 */

#include <chrono>
#include <condition_variable>
#include <mutex>

#if defined(__clang__) && defined(__has_attribute)
#if __has_attribute(capability)
#define CRISP_TSA(x) __attribute__((x))
#endif
#endif
#ifndef CRISP_TSA
#define CRISP_TSA(x)
#endif

#define CRISP_CAPABILITY(name) CRISP_TSA(capability(name))
#define CRISP_SCOPED_CAPABILITY CRISP_TSA(scoped_lockable)
#define CRISP_GUARDED_BY(x) CRISP_TSA(guarded_by(x))
#define CRISP_PT_GUARDED_BY(x) CRISP_TSA(pt_guarded_by(x))
#define CRISP_REQUIRES(...) \
    CRISP_TSA(requires_capability(__VA_ARGS__))
#define CRISP_ACQUIRE(...) CRISP_TSA(acquire_capability(__VA_ARGS__))
#define CRISP_RELEASE(...) CRISP_TSA(release_capability(__VA_ARGS__))
#define CRISP_TRY_ACQUIRE(...) \
    CRISP_TSA(try_acquire_capability(__VA_ARGS__))
#define CRISP_EXCLUDES(...) CRISP_TSA(locks_excluded(__VA_ARGS__))
#define CRISP_ASSERT_CAPABILITY(x) CRISP_TSA(assert_capability(x))
#define CRISP_RETURN_CAPABILITY(x) CRISP_TSA(lock_returned(x))
#define CRISP_NO_THREAD_SAFETY_ANALYSIS \
    CRISP_TSA(no_thread_safety_analysis)

namespace crisp
{

class CondVar;
class MutexLock;

/** A std::mutex carrying the TSA "mutex" capability. */
class CRISP_CAPABILITY("mutex") Mutex
{
  public:
    Mutex() = default;
    Mutex(const Mutex &) = delete;
    Mutex &operator=(const Mutex &) = delete;

    void lock() CRISP_ACQUIRE() { m_.lock(); }
    void unlock() CRISP_RELEASE() { m_.unlock(); }
    bool tryLock() CRISP_TRY_ACQUIRE(true) { return m_.try_lock(); }

    /** Tells the analysis this thread holds the lock (for paths the
     *  intraprocedural analysis cannot follow).  No runtime check. */
    void assertHeld() const CRISP_ASSERT_CAPABILITY(this) {}

  private:
    friend class CondVar;
    friend class MutexLock;
    std::mutex m_;
};

/** Scoped lock for Mutex — the only sanctioned way to hold one. */
class CRISP_SCOPED_CAPABILITY MutexLock
{
  public:
    explicit MutexLock(Mutex &m) CRISP_ACQUIRE(m) : m_(m)
    {
        m_.lock();
    }
    ~MutexLock() CRISP_RELEASE() { m_.unlock(); }

    MutexLock(const MutexLock &) = delete;
    MutexLock &operator=(const MutexLock &) = delete;

  private:
    friend class CondVar;
    Mutex &m_;
};

/**
 * Condition variable whose wait API makes the predicate mandatory.
 *
 * There is deliberately no predicate-less wait(): every caller must
 * state the condition it is waiting for, which kills the classic
 * missed-wakeup / spurious-wakeup bug class at compile time
 * (crisp_lint additionally rejects predicate-less std waits in code
 * that bypasses this wrapper).
 *
 * Waits take the caller's MutexLock so the analysis can see which
 * capability protects the predicate.  The wait bodies are excluded
 * from analysis: they temporarily adopt the already-held mutex into
 * a std::unique_lock, which TSA's model cannot express.
 */
class CondVar
{
  public:
    CondVar() = default;
    CondVar(const CondVar &) = delete;
    CondVar &operator=(const CondVar &) = delete;

    /** Blocks until pred() is true.  pred runs with the lock held. */
    template <typename Pred>
    void wait(MutexLock &lk, Pred pred)
        CRISP_NO_THREAD_SAFETY_ANALYSIS
    {
        Borrowed b(lk);
        cv_.wait(b.ul, pred);
    }

    /** Blocks until pred() is true or @p deadline passes.
     *  @return pred() at return. */
    template <typename Clock, typename Duration, typename Pred>
    bool waitUntil(MutexLock &lk,
                   const std::chrono::time_point<Clock, Duration>
                       &deadline,
                   Pred pred) CRISP_NO_THREAD_SAFETY_ANALYSIS
    {
        Borrowed b(lk);
        return cv_.wait_until(b.ul, deadline, pred);
    }

    /** Blocks until pred() is true or @p dur elapses.
     *  @return pred() at return. */
    template <typename Rep, typename Period, typename Pred>
    bool waitFor(MutexLock &lk,
                 const std::chrono::duration<Rep, Period> &dur,
                 Pred pred) CRISP_NO_THREAD_SAFETY_ANALYSIS
    {
        Borrowed b(lk);
        return cv_.wait_for(b.ul, dur, pred);
    }

    void notifyOne() { cv_.notify_one(); }
    void notifyAll() { cv_.notify_all(); }

  private:
    /** Adopts the MutexLock's mutex into a unique_lock for the
     *  duration of a wait, then releases ownership so the MutexLock
     *  destructor stays the sole unlocker.  std::condition_variable
     *  guarantees the lock is reacquired before a predicate
     *  exception propagates, so release() in the destructor is safe
     *  on every path. */
    struct Borrowed
    {
        std::unique_lock<std::mutex> ul;
        explicit Borrowed(MutexLock &lk)
            : ul(lk.m_.m_, std::adopt_lock)
        {
        }
        ~Borrowed() { ul.release(); }
    };

    std::condition_variable cv_;
};

} // namespace crisp

#endif // CRISP_SIM_SYNC_H
