#include "sim/artifact_cache.h"

#include <cstdio>
#include <sstream>

#include "sim/sampled.h"
#include "sim/warm_store.h"
#include "telemetry/runtime_trace.h"

namespace crisp
{

std::string
ArtifactCache::optionsKey(const CrispOptions &o)
{
    // Every field participates: two CrispOptions that differ anywhere
    // must map to different artifacts. hexfloat keeps doubles exact.
    std::ostringstream os;
    os << std::hexfloat;
    os << "mst=" << o.missShareThreshold
       << ";mrt=" << o.missRatioThreshold
       << ";mlp=" << o.mlpThreshold
       << ";esm=" << o.execShareMin
       << ";sm=" << o.strideMax
       << ";bmt=" << o.branchMispredThreshold
       << ";besm=" << o.branchExecShareMin
       << ";ls=" << o.enableLoadSlices
       << ";bs=" << o.enableBranchSlices
       << ";lls=" << o.enableLongLatencySlices
       << ";llesm=" << o.longLatencyExecShareMin
       << ";cpf=" << o.criticalPathFilter
       << ";md=" << o.memDependencies
       << ";cpfr=" << o.criticalPathFraction
       << ";mcr=" << o.maxCriticalRatio
       << ";mir=" << o.maxInstancesPerRoot
       << ";maw=" << o.maxAncestorsPerWalk;
    return os.str();
}

std::string
ArtifactCache::configKey(const SimConfig &c)
{
    // The analysis profiles the trace on this machine (cache
    // latencies, ROB-sized MLP window, prefetchers), so the whole
    // configuration is part of the key. Scheduler policy and IBDA
    // knobs only matter at core-simulation time but are included for
    // simplicity; callers wanting cross-config sharing pass the same
    // base machine for analysis (as fig09 already does).
    //
    // tickModel is deliberately NOT part of the key: the analysis
    // never runs the OOO core, and the two engines produce
    // bit-identical traces/statistics anyway (tick_model_test.cc),
    // so cycle- and event-model runs share artifacts.
    auto cache = [](const CacheConfig &k) {
        std::ostringstream os;
        os << k.sizeBytes << "/" << k.ways << "/" << k.lineBytes
           << "/" << k.latency << "/" << k.mshrs;
        return os.str();
    };
    std::ostringstream os;
    os << "w=" << c.width << ";rob=" << c.robSize
       << ";rs=" << c.rsSize << ";lq=" << c.lqSize
       << ";sq=" << c.sqSize << ";alu=" << c.numAlu
       << ";lp=" << c.numLoadPorts << ";sp=" << c.numStorePorts
       << ";f2d=" << c.fetchToDispatchLat
       << ";rp=" << c.redirectPenalty << ";ftq=" << c.ftqEntries
       << ";bp=" << c.branchPredictor << ";btb=" << c.btbEntries
       << ";ras=" << c.rasEntries << ";l1i=" << cache(c.l1i)
       << ";l1d=" << cache(c.l1d) << ";llc=" << cache(c.llc)
       << ";bop=" << c.enableBop << ";str=" << c.enableStream
       << ";srd=" << c.enableStride << ";ghb=" << c.enableGhb
       << ";fdip=" << c.enableFdip
       << ";sched=" << int(c.scheduler)
       << ";ibda=" << c.enableIbda << ";ist=" << c.istEntries
       << "/" << c.istWays << "/" << c.istInfinite
       << ";dlt=" << c.dltEntries
       << ";cdram=" << c.enableCriticalDram
       << ";fwd=" << c.forwardLatency;
    return os.str();
}

template <typename T, typename Make>
std::shared_ptr<const T>
ArtifactCache::getOrCompute(SlotMap<T> ArtifactCache::*slot,
                            const std::string &key, Make &&make)
{
    std::promise<std::shared_ptr<const T>> promise;
    Slot<T> fut;
    bool owner = false;
    {
        MutexLock lk(m_);
        SlotMap<T> &map = this->*slot;
        auto it = map.find(key);
        if (it == map.end()) {
            fut = promise.get_future().share();
            map.emplace(key, fut);
            owner = true;
        } else {
            fut = it->second;
        }
    }
    if (owner) {
        misses_.fetch_add(1, std::memory_order_relaxed);
        inFlight_.fetch_add(1, std::memory_order_relaxed);
        {
            TraceSpan span("cache", "cache.compute");
            if (span.on())
                span.setArg("key", key);
            try {
                promise.set_value(
                    std::make_shared<const T>(make()));
            } catch (...) {
                promise.set_exception(std::current_exception());
            }
        }
        inFlight_.fetch_sub(1, std::memory_order_relaxed);
        return fut.get();
    }
    hits_.fetch_add(1, std::memory_order_relaxed);
    // Non-owners block on the owner's promise; that wait is host
    // latency worth attributing (distinct from computing).
    TraceSpan span("cache", "cache.wait");
    if (span.on())
        span.setArg("key", key);
    return fut.get();
}

std::shared_ptr<const Trace>
ArtifactCache::trace(const WorkloadInfo &wl, InputSet input,
                     uint64_t ops)
{
    std::string key = "trace:" + wl.name + ":" +
                      (input == InputSet::Train ? "train" : "ref") +
                      ":" + std::to_string(ops);
    return getOrCompute(&ArtifactCache::traces_, key, [&] {
        return buildWorkloadTrace(wl, input, ops);
    });
}

std::shared_ptr<const CrispAnalysis>
ArtifactCache::analysis(const WorkloadInfo &wl,
                        const CrispOptions &opts,
                        const SimConfig &cfg, uint64_t train_ops)
{
    std::string key = "analysis:" + wl.name + ":" +
                      std::to_string(train_ops) + ":" +
                      optionsKey(opts) + ":" + configKey(cfg);
    return getOrCompute(&ArtifactCache::analyses_, key, [&] {
        auto train = trace(wl, InputSet::Train, train_ops);
        return analyzeTrace(*train, opts, cfg);
    });
}

std::shared_ptr<const Trace>
ArtifactCache::taggedRefTrace(const WorkloadInfo &wl,
                              const CrispOptions &opts,
                              const SimConfig &cfg,
                              uint64_t train_ops, uint64_t ref_ops)
{
    std::string key = "tagged:" + wl.name + ":" +
                      std::to_string(ref_ops) + ":" +
                      std::to_string(train_ops) + ":" +
                      optionsKey(opts) + ":" + configKey(cfg);
    return getOrCompute(&ArtifactCache::traces_, key, [&] {
        auto a = analysis(wl, opts, cfg, train_ops);
        return buildTaggedRefTrace(wl, a->taggedStatics, ref_ops);
    });
}

SampledWarmState
ArtifactCache::warmFromStoreOrBuild(const Trace &t,
                                    const SimConfig &cfg)
{
    // Snapshot the pointer once: setWarmStore may race this lookup,
    // and the store object is promised to outlive any value read
    // here (see setWarmStore contract).
    WarmArtifactStore *store = nullptr;
    {
        MutexLock lk(m_);
        store = warmStore_;
    }
    if (!store)
        return buildWarmState(t, cfg);

    // The disk tier is best-effort: a verified hit skips the warm
    // pass, anything else (miss, corruption, version skew) falls
    // back to recomputing and re-persists the result.
    std::string key = warmStateKey(cfg);
    uint64_t hash = traceContentHash(t);
    SampledWarmState warm;
    std::string why;
    if (store->load(key, hash, cfg, warm, &why)) {
        storeHits_.fetch_add(1, std::memory_order_relaxed);
        return warm;
    }
    if (!why.empty())
        std::fprintf(stderr,
                     "warning: %s; recomputing warm state\n",
                     why.c_str());
    storeMisses_.fetch_add(1, std::memory_order_relaxed);
    warm = buildWarmState(t, cfg);
    store->save(key, hash, warm);
    return warm;
}

std::shared_ptr<const SampledWarmState>
ArtifactCache::warmState(const WorkloadInfo &wl, InputSet input,
                         uint64_t ops, const SimConfig &cfg)
{
    std::string key =
        "warm:" + wl.name + ":" +
        (input == InputSet::Train ? "train" : "ref") + ":" +
        std::to_string(ops) + ":" + warmStateKey(cfg);
    return getOrCompute(&ArtifactCache::warmStates_, key, [&] {
        auto t = trace(wl, input, ops);
        return warmFromStoreOrBuild(*t, cfg);
    });
}

std::shared_ptr<const SampledWarmState>
ArtifactCache::warmStateTagged(const WorkloadInfo &wl,
                               const CrispOptions &opts,
                               const SimConfig &cfg,
                               uint64_t train_ops, uint64_t ref_ops)
{
    std::string key = "warm:tagged:" + wl.name + ":" +
                      std::to_string(ref_ops) + ":" +
                      std::to_string(train_ops) + ":" +
                      optionsKey(opts) + ":" + configKey(cfg) + ":" +
                      warmStateKey(cfg);
    return getOrCompute(&ArtifactCache::warmStates_, key, [&] {
        auto t = taggedRefTrace(wl, opts, cfg, train_ops, ref_ops);
        // The tagged trace's critical bits are part of its content
        // hash, so tagged and untagged runs never share artifacts.
        return warmFromStoreOrBuild(*t, cfg);
    });
}

void
ArtifactCache::clear()
{
    MutexLock lk(m_);
    traces_.clear();
    analyses_.clear();
    warmStates_.clear();
}

} // namespace crisp
