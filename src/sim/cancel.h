/**
 * @file
 * Cooperative cancellation for long-running simulation jobs.
 *
 * A CancelToken is a one-word flag shared between a controller (the
 * sweep server's cancel/timeout machinery, a signal handler, a test)
 * and the simulation it governs. The simulation polls the token at
 * natural progress points — every executed core tick, every sampled
 * interval boundary, every (workload, variant) job in a batch sweep —
 * and unwinds with JobCancelled when it fires. Polling an unattached
 * token is a null-pointer test; polling an attached one is a single
 * atomic load, so the hot path stays allocation-free.
 *
 * Memory ordering: polls load with acquire and fire() publishes with
 * release, so everything the controller wrote before cancelling (a
 * deadline record, a shutdown reason) is visible to the simulation
 * thread that observes the flag. On x86 and Apple-silicon ARM the
 * acquire load costs the same as a relaxed one; the discipline is
 * checked statically by crisp_lint's cancel-token-acquire rule.
 *
 * Cancellation and timeout are distinguished because they have
 * different retry semantics at the serving layer (DESIGN.md §15): a
 * timed-out job may be retried, an explicitly cancelled one is final.
 * The first request to fire wins; later requests of the other kind do
 * not overwrite it.
 */

#ifndef CRISP_SIM_CANCEL_H
#define CRISP_SIM_CANCEL_H

#include <atomic>
#include <stdexcept>
#include <string>

namespace crisp
{

/** Thrown by a simulation that observed its CancelToken fire. */
class JobCancelled : public std::runtime_error
{
  public:
    JobCancelled(bool timed_out_arg, const std::string &context = "")
        : std::runtime_error(
              std::string(timed_out_arg ? "job timed out"
                                        : "job cancelled") +
              (context.empty() ? "" : " (" + context + ")")),
          timedOut(timed_out_arg)
    {
    }

    /** True when the token fired on a deadline, not a user cancel. */
    bool timedOut;
};

/** Shared cancellation flag; controller sets, simulation polls. */
class CancelToken
{
  public:
    CancelToken() = default;
    CancelToken(const CancelToken &) = delete;
    CancelToken &operator=(const CancelToken &) = delete;

    /** Requests cancellation (no effect if already fired). */
    void requestCancel() { fire(kCancelled); }

    /** Requests a timeout abort (no effect if already fired). */
    void requestTimeout() { fire(kTimedOut); }

    /** @return true once either request has fired. */
    bool cancelled() const
    {
        return state_.load(std::memory_order_acquire) != kArmed;
    }

    /** @return true when the token fired as a timeout. */
    bool timedOut() const
    {
        return state_.load(std::memory_order_acquire) == kTimedOut;
    }

    /**
     * Polls the token; the simulation's per-tick hook.
     * @throws JobCancelled when the token has fired.
     */
    void throwIfCancelled(const char *context = "") const
    {
        int s = state_.load(std::memory_order_acquire);
        if (s != kArmed)
            throw JobCancelled(s == kTimedOut, context);
    }

  private:
    enum : int { kArmed = 0, kCancelled = 1, kTimedOut = 2 };

    void fire(int what)
    {
        int expected = kArmed;
        state_.compare_exchange_strong(expected, what,
                                       std::memory_order_acq_rel,
                                       std::memory_order_acquire);
    }

    std::atomic<int> state_{kArmed};
};

} // namespace crisp

#endif // CRISP_SIM_CANCEL_H
