/**
 * @file
 * Simulated-system configuration (CRISP Table 1) and sweep variants.
 */

#ifndef CRISP_SIM_CONFIG_H
#define CRISP_SIM_CONFIG_H

#include <cstdint>
#include <string>

namespace crisp
{

/** One cache level's geometry and timing. */
struct CacheConfig
{
    uint64_t sizeBytes = 32 * 1024;
    unsigned ways = 8;
    unsigned lineBytes = 64;
    unsigned latency = 4;   ///< hit latency in cycles
    unsigned mshrs = 16;    ///< outstanding misses
};

/** Scheduler selection policy. */
enum class SchedulerPolicy {
    OldestFirst,    ///< age-matrix oldest-ready-first (baseline)
    CrispPriority,  ///< oldest ready critical first, else oldest ready
};

/**
 * Core simulation engine. Both models produce bit-identical
 * CoreStats (see DESIGN.md §9); they differ only in wall-clock cost.
 */
enum class TickModel {
    Cycle,  ///< reference model: tick every cycle, rescan the RS
    Event,  ///< skip provably idle cycles, incremental ready sets
};

/**
 * Full simulated-system configuration. Defaults reproduce the
 * Skylake-like machine of CRISP Table 1.
 */
struct SimConfig
{
    // Pipeline.
    unsigned width = 6;             ///< fetch/rename/retire width
    unsigned robSize = 224;
    unsigned rsSize = 96;           ///< unified reservation station
    unsigned lqSize = 64;
    unsigned sqSize = 128;
    unsigned numAlu = 4;
    unsigned numLoadPorts = 2;
    unsigned numStorePorts = 1;
    unsigned fetchToDispatchLat = 5; ///< decode/rename pipe depth
    unsigned redirectPenalty = 10;   ///< mispredict front-end refill
    unsigned ftqEntries = 128;       ///< FDIP fetch-target queue

    // Branch prediction.
    std::string branchPredictor = "tage"; ///< tage|gshare|bimodal
    unsigned btbEntries = 8192;
    unsigned rasEntries = 32;

    // Memory hierarchy.
    CacheConfig l1i{32 * 1024, 8, 64, 3, 8};
    CacheConfig l1d{32 * 1024, 8, 64, 4, 16};
    CacheConfig llc{1024 * 1024, 20, 64, 36, 32};

    // Prefetchers (Table 1: BOP + stream data, FDIP instruction).
    bool enableBop = true;
    bool enableStream = true;
    bool enableStride = false;
    bool enableGhb = false;
    bool enableFdip = true;

    // Scheduler.
    SchedulerPolicy scheduler = SchedulerPolicy::OldestFirst;

    // Simulation engine (not a property of the modelled machine:
    // both tick models yield bit-identical statistics).
    TickModel tickModel = TickModel::Event;

    // IBDA hardware baseline (load-slice-architecture style).
    bool enableIbda = false;
    unsigned istEntries = 1024;
    unsigned istWays = 4;
    bool istInfinite = false;
    unsigned dltEntries = 32;       ///< delinquent load table

    // CRISP §6.1 extensions.
    bool enableCriticalDram = false; ///< bus priority for critical loads

    // Store-to-load forwarding latency.
    unsigned forwardLatency = 5;

    // Invariant checking (src/check, DESIGN.md §11). Audits the
    // in-flight microarchitectural state every checkEvery executed
    // ticks and throws InvariantViolation on the first inconsistency.
    // Off by default in normal builds; a -DCRISP_CHECKED=ON build
    // default-enables it everywhere (pure simulation overhead — the
    // modelled machine and its statistics are unchanged).
#ifdef CRISP_CHECKED
    bool checkInvariants = true;
#else
    bool checkInvariants = false;
#endif
    uint64_t checkEvery = 64;       ///< audit period, executed ticks

    // Sampled simulation (src/sim/sampled, DESIGN.md §13). Like the
    // tick model, these describe how the machine is simulated, not
    // the machine itself: a functional warm pass snapshots
    // microarchitectural state at every interval boundary and the
    // intervals are detailed-simulated in parallel, stitched back
    // into whole-run statistics. 0 = full serial detailed run.
    uint64_t sampleOps = 0;         ///< interval length in micro-ops
    uint64_t sampleWarmupOps = 0;   ///< detailed warm-up prefix per interval
    unsigned sampleJobs = 0;        ///< interval workers (0 = hardware)

    /** @return the paper's Skylake-like baseline configuration. */
    static SimConfig skylake();

    /** @return a variant with RS/ROB scaled for the Fig 9 sweep. */
    static SimConfig withWindow(unsigned rs, unsigned rob);

    /** @return a one-line description for reports. */
    std::string describe() const;
};

} // namespace crisp

#endif // CRISP_SIM_CONFIG_H
