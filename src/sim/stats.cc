#include "sim/stats.h"

#include <cmath>
#include <cstdio>
#include <stdexcept>

namespace crisp
{

double
mean(const std::vector<double> &xs)
{
    if (xs.empty())
        return 0.0;
    double sum = 0;
    for (double x : xs)
        sum += x;
    return sum / double(xs.size());
}

double
geomean(const std::vector<double> &xs)
{
    if (xs.empty())
        return 0.0;
    double log_sum = 0;
    for (double x : xs)
        log_sum += std::log(x);
    return std::exp(log_sum / double(xs.size()));
}

std::string
percent(double fraction, int decimals)
{
    char buf[48];
    std::snprintf(buf, sizeof(buf), "%.*f%%", decimals,
                  fraction * 100.0);
    return buf;
}

std::string
fixed(double value, int decimals)
{
    char buf[48];
    std::snprintf(buf, sizeof(buf), "%.*f", decimals, value);
    return buf;
}

Histogram::Histogram(double bucket_width, unsigned num_buckets)
    : width_(bucket_width), buckets_(num_buckets, 0)
{
}

void
Histogram::add(double value)
{
    size_t b = value <= 0 ? 0 : size_t(value / width_);
    if (b >= buckets_.size())
        b = buckets_.size() - 1;
    ++buckets_[b];
    ++count_;
    sum_ += value;
}

void
Histogram::merge(const Histogram &other)
{
    if (other.width_ != width_ ||
        other.buckets_.size() != buckets_.size())
        throw std::invalid_argument(
            "Histogram::merge: mismatched geometry");
    for (size_t b = 0; b < buckets_.size(); ++b)
        buckets_[b] += other.buckets_[b];
    count_ += other.count_;
    sum_ += other.sum_;
}

void
Histogram::subtract(const Histogram &base)
{
    if (base.width_ != width_ ||
        base.buckets_.size() != buckets_.size())
        throw std::invalid_argument(
            "Histogram::subtract: mismatched geometry");
    for (size_t b = 0; b < buckets_.size(); ++b)
        buckets_[b] -= base.buckets_[b];
    count_ -= base.count_;
    sum_ -= base.sum_;
}

double
Histogram::percentile(double p) const
{
    if (count_ == 0)
        return 0.0;
    uint64_t target = uint64_t(p / 100.0 * double(count_));
    uint64_t seen = 0;
    for (size_t b = 0; b < buckets_.size(); ++b) {
        seen += buckets_[b];
        if (seen >= target)
            return (double(b) + 0.5) * width_;
    }
    return double(buckets_.size()) * width_;
}

} // namespace crisp
