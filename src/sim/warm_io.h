/**
 * @file
 * Byte-exact serialization primitives for warm-artifact persistence.
 *
 * The on-disk warm-state format (DESIGN.md §14) is built from two
 * tiny primitives: WarmSink appends fixed-width little-endian fields
 * to a growing byte buffer, WarmSource reads them back and latches a
 * failure flag on any underrun. Encoding is explicit byte-by-byte —
 * never memcpy of structs — so artifacts are independent of host
 * padding and endianness, and a truncated or bit-flipped file turns
 * into a clean `ok() == false` instead of undefined behavior.
 */

#ifndef CRISP_SIM_WARM_IO_H
#define CRISP_SIM_WARM_IO_H

#include <cstddef>
#include <cstdint>
#include <string>

namespace crisp
{

/** Append-only little-endian byte sink. */
class WarmSink
{
  public:
    void u8(uint8_t v) { buf_.push_back(char(v)); }

    void u32(uint32_t v)
    {
        for (int i = 0; i < 4; ++i)
            u8(uint8_t(v >> (8 * i)));
    }

    void u64(uint64_t v)
    {
        for (int i = 0; i < 8; ++i)
            u8(uint8_t(v >> (8 * i)));
    }

    void i64(int64_t v) { u64(uint64_t(v)); }

    void b(bool v) { u8(v ? 1 : 0); }

    void str(const std::string &s)
    {
        u64(s.size());
        buf_.append(s);
    }

    /** @return accumulated bytes. */
    const std::string &bytes() const { return buf_; }
    /** @return accumulated size in bytes. */
    size_t size() const { return buf_.size(); }

  private:
    std::string buf_;
};

/**
 * Sequential little-endian reader over a borrowed byte range. Any
 * read past the end latches fail() and returns zero values; callers
 * check ok() once at a convenient boundary instead of after every
 * field.
 */
class WarmSource
{
  public:
    WarmSource(const char *data, size_t n)
        : p_(reinterpret_cast<const uint8_t *>(data)), n_(n)
    {
    }

    explicit WarmSource(const std::string &bytes)
        : WarmSource(bytes.data(), bytes.size())
    {
    }

    uint8_t u8()
    {
        if (pos_ >= n_) {
            fail_ = true;
            return 0;
        }
        return p_[pos_++];
    }

    uint32_t u32()
    {
        uint32_t v = 0;
        for (int i = 0; i < 4; ++i)
            v |= uint32_t(u8()) << (8 * i);
        return v;
    }

    uint64_t u64()
    {
        uint64_t v = 0;
        for (int i = 0; i < 8; ++i)
            v |= uint64_t(u8()) << (8 * i);
        return v;
    }

    int64_t i64() { return int64_t(u64()); }

    bool b() { return u8() != 0; }

    std::string str()
    {
        uint64_t len = u64();
        if (fail_ || len > n_ - pos_) {
            fail_ = true;
            return {};
        }
        std::string s(reinterpret_cast<const char *>(p_ + pos_),
                      size_t(len));
        pos_ += size_t(len);
        return s;
    }

    /** Latches the failure flag (content validation failed). */
    void markFail() { fail_ = true; }

    /** @return true while every read so far was in bounds. */
    bool ok() const { return !fail_; }
    /** @return true when the whole range has been consumed. */
    bool atEnd() const { return pos_ == n_; }

  private:
    const uint8_t *p_;
    size_t n_;
    size_t pos_ = 0;
    bool fail_ = false;
};

/**
 * Incremental FNV-1a 64-bit hash — the content checksum of warm
 * artifacts and the trace-identity hash in artifact keys.
 */
class Fnv1a
{
  public:
    void bytes(const void *data, size_t n)
    {
        const auto *p = static_cast<const uint8_t *>(data);
        for (size_t i = 0; i < n; ++i) {
            h_ ^= p[i];
            h_ *= 0x100000001b3ULL;
        }
    }

    void u64(uint64_t v)
    {
        uint8_t b[8];
        for (int i = 0; i < 8; ++i)
            b[i] = uint8_t(v >> (8 * i));
        bytes(b, 8);
    }

    /** @return the current hash value. */
    uint64_t value() const { return h_; }

  private:
    uint64_t h_ = 0xcbf29ce484222325ULL;
};

} // namespace crisp

#endif // CRISP_SIM_WARM_IO_H
