#include "sim/warm_store.h"

#include <algorithm>
#include <cerrno>
#include <cstdio>
#include <cstring>
#include <filesystem>
#include <system_error>
#include <utility>
#include <vector>

#include "telemetry/runtime_trace.h"
#include "trace/trace.h"

namespace fs = std::filesystem;

namespace crisp
{

namespace
{

constexpr char kMagic[8] = {'C', 'R', 'S', 'P',
                            'W', 'A', 'R', 'M'};
constexpr const char *kExtension = ".cwarm";

// Header layout (little-endian):
//   [0,8)   magic "CRSPWARM"
//   [8,12)  u32 format version
//   [12,20) u64 FNV-1a checksum of payload = bytes [28, EOF)
//   [20,28) u64 snapshot count
// checksum and count are patched in place at commit, so neither is
// part of the checksummed payload.
constexpr uint64_t kChecksumOffset = 12;
constexpr uint64_t kCountOffset = 20;
constexpr uint64_t kPayloadOffset = 28;

std::string
encodeU64(uint64_t v)
{
    WarmSink s;
    s.u64(v);
    return s.bytes();
}

std::string
hex64(uint64_t v)
{
    char buf[17];
    std::snprintf(buf, sizeof(buf), "%016llx",
                  static_cast<unsigned long long>(v));
    return buf;
}

} // namespace

uint64_t
traceContentHash(const Trace &trace)
{
    Fnv1a h;
    h.u64(trace.size());
    for (const MicroOp &op : trace.ops) {
        h.u64(op.sidx);
        h.u64(op.pc);
        h.u64(op.effAddr);
        h.u64(op.nextPc);
        h.u64(uint64_t(op.cls));
        h.u64(uint64_t(op.dst));
        h.u64(uint64_t(op.src1));
        h.u64(uint64_t(op.src2));
        h.u64(uint64_t(op.src3));
        h.u64(op.memSize);
        h.u64(op.instSize);
        h.u64(op.taken ? 1 : 0);
        h.u64(op.critical ? 1 : 0);
    }
    return h.value();
}

WarmArtifactStore::WarmArtifactStore(std::string dir,
                                     uint64_t max_bytes)
    : dir_(std::move(dir)), maxBytes_(max_bytes)
{
    // Best-effort: a store on a directory that cannot be created
    // degrades to always-miss (Writer::failed() / load() misses);
    // tools wanting a hard error probe with dirWritable() first.
    std::error_code ec;
    fs::create_directories(dir_, ec);
}

bool
WarmArtifactStore::dirWritable(const std::string &dir,
                               std::string *why)
{
    std::error_code ec;
    fs::create_directories(dir, ec);
    if (ec) {
        if (why)
            *why = "cannot create directory '" + dir +
                   "': " + ec.message();
        return false;
    }
    fs::path probe = fs::path(dir) / ".crisp_probe.tmp";
    {
        std::ofstream os(probe, std::ios::binary | std::ios::trunc);
        os << "probe";
        if (!os) {
            if (why)
                *why = "directory '" + dir + "' is not writable";
            return false;
        }
    }
    fs::remove(probe, ec);
    return true;
}

std::string
WarmArtifactStore::pathFor(const std::string &key,
                           uint64_t trace_hash) const
{
    // The filename is a hash of the full identity; the key string
    // inside the file is the collision guard.
    Fnv1a h;
    h.bytes(key.data(), key.size());
    h.u64(trace_hash);
    return (fs::path(dir_) / (hex64(h.value()) + kExtension))
        .string();
}

bool
WarmArtifactStore::load(const std::string &key, uint64_t trace_hash,
                        const SimConfig &cfg, SampledWarmState &out,
                        std::string *why) const
{
    TraceSpan span("warmstore", "warmstore.read");
    if (span.on())
        span.setArg("key", key);
    if (why)
        why->clear();
    std::string path = pathFor(key, trace_hash);
    std::ifstream is(path, std::ios::binary);
    if (!is)
        return false; // plain miss

    auto bad = [&](const std::string &reason) {
        if (why)
            *why = "warm artifact " + path + ": " + reason;
        return false;
    };

    std::string data((std::istreambuf_iterator<char>(is)),
                     std::istreambuf_iterator<char>());
    if (!is.good() && !is.eof())
        return bad("read error");
    if (data.size() < kPayloadOffset)
        return bad("truncated header");
    if (std::memcmp(data.data(), kMagic, sizeof(kMagic)) != 0)
        return bad("bad magic");

    WarmSource head(data.data() + sizeof(kMagic),
                    kPayloadOffset - sizeof(kMagic));
    uint32_t version = head.u32();
    uint64_t stored_checksum = head.u64();
    uint64_t count = head.u64();
    if (version != kFormatVersion)
        return bad("format version " + std::to_string(version) +
                   " (expected " + std::to_string(kFormatVersion) +
                   ")");

    Fnv1a actual;
    actual.bytes(data.data() + kPayloadOffset,
                 data.size() - kPayloadOffset);
    if (actual.value() != stored_checksum)
        return bad("checksum mismatch (truncated or corrupted)");

    WarmSource src(data.data() + kPayloadOffset,
                   data.size() - kPayloadOffset);
    if (src.str() != key)
        return bad("key mismatch (filename hash collision)");
    if (src.u64() != trace_hash)
        return bad("trace hash mismatch");
    uint64_t interval_ops = src.u64();
    uint64_t warmup_ops = src.u64();
    if (!src.ok() || interval_ops != cfg.sampleOps ||
        warmup_ops != cfg.sampleWarmupOps)
        return bad("sample spec mismatch");

    SampledWarmState warm;
    warm.intervalOps = interval_ops;
    warm.warmupOps = warmup_ops;
    warm.snapshots.reserve(size_t(count));
    for (uint64_t k = 0; k < count; ++k) {
        std::string blob = src.str();
        if (!src.ok())
            return bad("truncated snapshot " + std::to_string(k));
        WarmSource bs(blob);
        MachineSnapshot snap(cfg);
        if (!deserializeSnapshot(bs, snap) || !bs.atEnd())
            return bad("snapshot " + std::to_string(k) +
                       " does not match this geometry");
        warm.snapshots.push_back(std::move(snap));
    }
    if (!src.atEnd())
        return bad("trailing bytes");

    out = std::move(warm);
    return true;
}

WarmArtifactStore::Writer::Writer(WarmArtifactStore &store,
                                  std::string key,
                                  uint64_t trace_hash,
                                  uint64_t interval_ops,
                                  uint64_t warmup_ops)
    : store_(store), key_(std::move(key)), traceHash_(trace_hash),
      finalPath_(store.pathFor(key_, trace_hash)),
      tmpPath_(finalPath_ + ".tmp"),
      out_(tmpPath_, std::ios::binary | std::ios::trunc)
{
    if (!out_) {
        failed_ = true;
        return;
    }
    // Header with checksum/count placeholders, patched at commit.
    out_.write(kMagic, sizeof(kMagic));
    WarmSink head;
    head.u32(kFormatVersion);
    head.u64(0); // checksum
    head.u64(0); // snapshot count
    out_.write(head.bytes().data(),
               std::streamsize(head.size()));

    WarmSink prologue;
    prologue.str(key_);
    prologue.u64(traceHash_);
    prologue.u64(interval_ops);
    prologue.u64(warmup_ops);
    append(prologue.bytes());
    if (!out_)
        failed_ = true;
}

WarmArtifactStore::Writer::~Writer()
{
    if (committed_)
        return;
    out_.close();
    std::error_code ec;
    fs::remove(tmpPath_, ec);
}

void
WarmArtifactStore::Writer::append(const std::string &bytes)
{
    out_.write(bytes.data(), std::streamsize(bytes.size()));
    checksum_.bytes(bytes.data(), bytes.size());
}

void
WarmArtifactStore::Writer::onSnapshot(size_t,
                                      const MachineSnapshot &snap)
{
    if (failed_)
        return;
    WarmSink blob;
    serializeSnapshot(snap, blob);
    append(encodeU64(blob.size()));
    append(blob.bytes());
    ++count_;
    if (!out_)
        failed_ = true;
}

bool
WarmArtifactStore::Writer::commit()
{
    if (failed_ || committed_)
        return false;
    out_.seekp(std::streamoff(kChecksumOffset));
    std::string tail = encodeU64(checksum_.value());
    tail += encodeU64(count_);
    static_assert(kCountOffset == kChecksumOffset + 8,
                  "checksum and count are patched as one write");
    out_.write(tail.data(), std::streamsize(tail.size()));
    out_.close();
    if (!out_) {
        std::error_code ec;
        fs::remove(tmpPath_, ec);
        failed_ = true;
        return false;
    }
    std::error_code ec;
    fs::rename(tmpPath_, finalPath_, ec);
    if (ec) {
        fs::remove(tmpPath_, ec);
        failed_ = true;
        return false;
    }
    committed_ = true;
    store_.evictToCap(finalPath_);
    return true;
}

bool
WarmArtifactStore::save(const std::string &key, uint64_t trace_hash,
                        const SampledWarmState &warm)
{
    TraceSpan span("warmstore", "warmstore.write");
    if (span.on())
        span.setArg("key", key);
    Writer w(*this, key, trace_hash, warm.intervalOps,
             warm.warmupOps);
    for (size_t k = 0; k < warm.snapshots.size(); ++k)
        w.onSnapshot(k, warm.snapshots[k]);
    return w.commit();
}

void
WarmArtifactStore::evictToCap(const std::string &spare) const
{
    if (maxBytes_ == 0)
        return;

    // Recording is a slab append (worst case it takes the tracer's
    // own leaf registry mutex on slab overflow), so this span is
    // safe to close while evictM_ is held below.
    TraceSpan span("warmstore", "warmstore.evict");

    // Serialize concurrent commits: two evictions interleaving their
    // scans with each other's removals would each work from a stale
    // byte total. evictM_ is a leaf lock — nothing is acquired while
    // it is held, and the streaming writers never take it.
    MutexLock lk(evictM_);

    struct Entry
    {
        fs::path path;
        uint64_t bytes;
        fs::file_time_type mtime;
    };
    std::vector<Entry> entries;
    uint64_t total = 0;
    std::error_code ec;
    for (const auto &de : fs::directory_iterator(dir_, ec)) {
        if (de.path().extension() != kExtension)
            continue;
        std::error_code fec;
        uint64_t bytes = de.file_size(fec);
        auto mtime = de.last_write_time(fec);
        if (fec)
            continue;
        total += bytes;
        entries.push_back({de.path(), bytes, mtime});
    }
    if (ec || total <= maxBytes_)
        return;

    std::sort(entries.begin(), entries.end(),
              [](const Entry &a, const Entry &b) {
                  return a.mtime < b.mtime;
              });
    for (const Entry &e : entries) {
        if (total <= maxBytes_)
            break;
        if (e.path.string() == spare)
            continue;
        std::error_code rec;
        if (fs::remove(e.path, rec))
            total -= e.bytes;
    }
}

} // namespace crisp
