#include "sim/cli.h"

#include <cstdio>
#include <cstdlib>
#include <cstring>

namespace crisp
{

std::string
cliUsage()
{
    return "usage: crisp_sim [options]\n"
           "  --workload NAME      proxy to run (see --list)\n"
           "  --scheduler MODE     ooo | crisp | ibda | both\n"
           "  --ist SIZE           1K | 8K | 64K | inf\n"
           "  --train N            profiling trace length\n"
           "  --ref N              evaluation trace length\n"
           "  --train-ops N        alias of --train\n"
           "  --ref-ops N          alias of --ref\n"
           "  --sample N[:W]       sampled simulation (DESIGN.md\n"
           "                       13): split the trace into\n"
           "                       intervals of N micro-ops, warm\n"
           "                       functionally to each boundary,\n"
           "                       detail-simulate the intervals in\n"
           "                       parallel (--jobs workers) and\n"
           "                       stitch whole-run stats; optional\n"
           "                       W (':warmup=W' also accepted) is\n"
           "                       a detailed per-interval warm-up\n"
           "                       prefix in ops. N must be\n"
           "                       positive. Incompatible with\n"
           "                       --stats-ndjson (interval cycle\n"
           "                       domains do not form one time\n"
           "                       series) and with a windowless\n"
           "                       --trace-pipe; a windowed trace\n"
           "                       records interval 0 only. --check\n"
           "                       must audit at least once per\n"
           "                       interval (cadence <= N)\n"
           "  --jobs N             parallel workers (default: all\n"
           "                       cores; 1 = serial)\n"
           "  --rs N               reservation station entries\n"
           "  --rob N              reorder buffer entries\n"
           "  --tick-model MODEL   cycle | event (default event;\n"
           "                       identical stats, see DESIGN.md)\n"
           "  --check[=N]          audit microarchitectural\n"
           "                       invariants every N executed ticks\n"
           "                       (default 64; see DESIGN.md)\n"
           "  --threshold F        miss-share threshold T\n"
           "  --no-branch-slices   disable branch slicing\n"
           "  --no-load-slices     disable load slicing\n"
           "  --no-cp-filter       disable critical-path filter\n"
           "  --no-mem-deps        register-only slices\n"
           "  --critical-dram     enable DRAM criticality (6.1)\n"
           "  --div-slices         slice divisions too (6.1)\n"
           "  --save-trace PATH    dump the tagged ref trace\n"
           "  --stats-json PATH    write the stat registry as JSON\n"
           "  --stats-csv PATH     write the stat registry as CSV\n"
           "  --trace-pipe PATH[:START:END]\n"
           "                       write a Kanata pipeline trace;\n"
           "                       the window records instructions\n"
           "                       fetched in cycles [START, END];\n"
           "                       with --stats-every, window edges\n"
           "                       appear as [interval-boundary]\n"
           "                       comments\n"
           "  --stats-ndjson PATH  write interval time-series\n"
           "                       records, one JSON object per\n"
           "                       line (implies --stats-every\n"
           "                       10000 when not given)\n"
           "  --stats-every N      interval window length in\n"
           "                       cycles; positive, and requires\n"
           "                       --stats-ndjson (the records have\n"
           "                       no other sink)\n"
           "  --profile-pc[=N]     per-PC criticality attribution\n"
           "                       (delinquent loads, hard\n"
           "                       branches, scheduler decision\n"
           "                       log), top-N rows (default 32);\n"
           "                       exported with --stats-json/csv\n"
           "  --artifact-dir DIR   persist sampled warm artifacts\n"
           "                       in DIR across runs (DESIGN.md\n"
           "                       14): a run whose warm state is\n"
           "                       already on disk skips the warm\n"
           "                       pass entirely. DIR is created if\n"
           "                       missing; a non-writable DIR is a\n"
           "                       startup error. Requires --sample\n"
           "  --artifact-max-bytes N\n"
           "                       evict oldest artifacts once DIR\n"
           "                       exceeds N bytes (0 = unlimited;\n"
           "                       requires --artifact-dir)\n"
           "  --trace-runtime FILE write a host-runtime span trace\n"
           "                       (Chrome trace-event JSON; open\n"
           "                       in Perfetto or chrome://tracing)\n"
           "                       covering pool tasks and queue\n"
           "                       waits, artifact-cache computes,\n"
           "                       warm-store I/O, and the sampled\n"
           "                       warm/interval/stitch phases.\n"
           "                       Simulated results are unchanged\n"
           "  --list               list workloads\n"
           "  --help               this message\n";
}

namespace
{

/**
 * Strict decimal parse for flag values.
 * @return true and sets @p out on success; false on empty input,
 *         trailing garbage, or overflow.
 */
bool
parseU64(const char *s, uint64_t &out)
{
    if (!s || !*s)
        return false;
    char *end = nullptr;
    errno = 0;
    unsigned long long v = std::strtoull(s, &end, 10);
    if (errno != 0 || end == s || *end != '\0')
        return false;
    // strtoull accepts a leading '-' (wrapping); reject it.
    if (std::strchr(s, '-'))
        return false;
    out = v;
    return true;
}

} // namespace

unsigned
benchJobsArg(int argc, char **argv)
{
    for (int i = 1; i + 1 < argc; ++i) {
        if (std::strcmp(argv[i], "--jobs") == 0) {
            uint64_t v = 0;
            if (!parseU64(argv[i + 1], v) || v == 0) {
                std::fprintf(stderr,
                             "--jobs expects a positive integer, "
                             "got '%s'; using all cores\n",
                             argv[i + 1]);
                return 0;
            }
            return unsigned(v);
        }
    }
    return 0;
}

CliOptions
parseCli(const std::vector<std::string> &args)
{
    CliOptions opt;
    for (size_t i = 0; i < args.size(); ++i) {
        const std::string &a = args[i];
        auto need_value = [&](const char *flag) -> const char * {
            if (i + 1 >= args.size()) {
                opt.error = std::string(flag) + " requires a value";
                return nullptr;
            }
            return args[++i].c_str();
        };
        auto need_u64 = [&](const char *flag,
                            uint64_t &out) {
            const char *v = need_value(flag);
            if (!v)
                return;
            if (!parseU64(v, out))
                opt.error = std::string(flag) +
                            " expects a non-negative integer, got '" +
                            v + "'";
        };
        if (a == "--help") {
            opt.showHelp = true;
        } else if (a == "--list") {
            opt.listWorkloads = true;
        } else if (a == "--workload") {
            if (const char *v = need_value("--workload"))
                opt.workload = v;
        } else if (a == "--scheduler") {
            const char *v = need_value("--scheduler");
            if (!v)
                break;
            std::string mode = v;
            if (mode != "ooo" && mode != "crisp" && mode != "ibda" &&
                mode != "both") {
                opt.error = "unknown scheduler '" + mode + "'";
                break;
            }
            opt.scheduler = mode;
        } else if (a == "--ist") {
            if (const char *v = need_value("--ist"))
                opt.ist = v;
        } else if (a == "--train" || a == "--train-ops") {
            need_u64(a.c_str(), opt.trainOps);
        } else if (a == "--ref" || a == "--ref-ops") {
            need_u64(a.c_str(), opt.refOps);
        } else if (a == "--sample") {
            const char *v = need_value("--sample");
            if (!v)
                break;
            // N or N:W — interval length plus an optional detailed
            // per-interval warm-up prefix ("warmup"), both in
            // micro-ops.
            std::string spec = v;
            size_t colon = spec.find(':');
            std::string n_str = spec.substr(0, colon);
            uint64_t n = 0;
            if (!parseU64(n_str.c_str(), n) || n == 0) {
                opt.error = "--sample expects a positive interval "
                            "length in micro-ops, got '" + spec + "'";
                break;
            }
            uint64_t w = 0;
            if (colon != std::string::npos) {
                std::string w_str = spec.substr(colon + 1);
                // Tolerate the long-hand "warmup=W" spelling.
                if (w_str.rfind("warmup=", 0) == 0)
                    w_str = w_str.substr(std::strlen("warmup="));
                if (!parseU64(w_str.c_str(), w)) {
                    opt.error = "--sample warm-up must be a "
                                "non-negative op count, got '" +
                                spec + "'";
                    break;
                }
            }
            opt.machine.sampleOps = n;
            opt.machine.sampleWarmupOps = w;
        } else if (a == "--jobs") {
            uint64_t v = 0;
            need_u64("--jobs", v);
            if (opt.ok() && v == 0)
                opt.error = "--jobs must be at least 1";
            opt.jobs = unsigned(v);
        } else if (a == "--rs") {
            uint64_t v = 0;
            need_u64("--rs", v);
            opt.machine.rsSize = unsigned(v);
        } else if (a == "--rob") {
            uint64_t v = 0;
            need_u64("--rob", v);
            opt.machine.robSize = unsigned(v);
        } else if (a == "--tick-model") {
            const char *v = need_value("--tick-model");
            if (!v)
                break;
            std::string model = v;
            if (model == "cycle") {
                opt.machine.tickModel = TickModel::Cycle;
            } else if (model == "event") {
                opt.machine.tickModel = TickModel::Event;
            } else {
                opt.error = "unknown tick model '" + model +
                            "' (expected 'cycle' or 'event')";
                break;
            }
        } else if (a == "--check" || a.rfind("--check=", 0) == 0) {
            opt.machine.checkInvariants = true;
            if (a.size() > std::strlen("--check")) {
                std::string val = a.substr(std::strlen("--check="));
                uint64_t v = 0;
                if (!parseU64(val.c_str(), v) || v == 0) {
                    opt.error = "--check expects a positive audit "
                                "period, got '" + val + "'";
                    break;
                }
                opt.machine.checkEvery = v;
            }
        } else if (a == "--threshold") {
            if (const char *v = need_value("--threshold"))
                opt.analysis.missShareThreshold =
                    std::strtod(v, nullptr);
        } else if (a == "--no-branch-slices") {
            opt.analysis.enableBranchSlices = false;
        } else if (a == "--no-load-slices") {
            opt.analysis.enableLoadSlices = false;
        } else if (a == "--no-cp-filter") {
            opt.analysis.criticalPathFilter = false;
        } else if (a == "--no-mem-deps") {
            opt.analysis.memDependencies = false;
        } else if (a == "--critical-dram") {
            opt.machine.enableCriticalDram = true;
        } else if (a == "--div-slices") {
            opt.analysis.enableLongLatencySlices = true;
        } else if (a == "--save-trace") {
            if (const char *v = need_value("--save-trace"))
                opt.saveTracePath = v;
        } else if (a == "--stats-json") {
            if (!opt.statsJsonPath.empty()) {
                opt.error = "duplicate --stats-json";
                break;
            }
            if (const char *v = need_value("--stats-json"))
                opt.statsJsonPath = v;
        } else if (a == "--stats-csv") {
            if (!opt.statsCsvPath.empty()) {
                opt.error = "duplicate --stats-csv";
                break;
            }
            if (const char *v = need_value("--stats-csv"))
                opt.statsCsvPath = v;
        } else if (a == "--stats-ndjson") {
            if (!opt.statsNdjsonPath.empty()) {
                opt.error = "duplicate --stats-ndjson";
                break;
            }
            if (const char *v = need_value("--stats-ndjson"))
                opt.statsNdjsonPath = v;
        } else if (a == "--stats-every") {
            uint64_t v = 0;
            need_u64("--stats-every", v);
            if (opt.ok() && v == 0)
                opt.error = "--stats-every expects a positive "
                            "window length in cycles";
            opt.statsEvery = v;
        } else if (a == "--profile-pc" ||
                   a.rfind("--profile-pc=", 0) == 0) {
            opt.profilePc = true;
            if (a.size() > std::strlen("--profile-pc")) {
                std::string val =
                    a.substr(std::strlen("--profile-pc="));
                uint64_t v = 0;
                if (!parseU64(val.c_str(), v) || v == 0) {
                    opt.error = "--profile-pc expects a positive "
                                "top-N row count, got '" + val + "'";
                    break;
                }
                opt.profilePcTop = v;
            }
        } else if (a == "--artifact-dir") {
            if (!opt.artifactDir.empty()) {
                opt.error = "duplicate --artifact-dir";
                break;
            }
            const char *v = need_value("--artifact-dir");
            if (!v)
                break;
            if (!*v) {
                opt.error = "--artifact-dir requires a non-empty "
                            "directory path";
                break;
            }
            opt.artifactDir = v;
        } else if (a == "--artifact-max-bytes") {
            need_u64("--artifact-max-bytes", opt.artifactMaxBytes);
        } else if (a == "--trace-runtime") {
            if (!opt.traceRuntimePath.empty()) {
                opt.error = "duplicate --trace-runtime";
                break;
            }
            const char *v = need_value("--trace-runtime");
            if (!v)
                break;
            if (!*v) {
                opt.error = "--trace-runtime requires a non-empty "
                            "file path";
                break;
            }
            opt.traceRuntimePath = v;
        } else if (a == "--trace-pipe") {
            if (!opt.tracePipePath.empty()) {
                opt.error = "duplicate --trace-pipe";
                break;
            }
            const char *v = need_value("--trace-pipe");
            if (!v)
                break;
            // PATH or PATH:START:END — a lone or extra ':' is
            // rejected rather than guessed at.
            std::string spec = v;
            size_t c1 = spec.find(':');
            if (c1 == std::string::npos) {
                opt.tracePipePath = spec;
            } else {
                size_t c2 = spec.find(':', c1 + 1);
                if (c2 == std::string::npos ||
                    spec.find(':', c2 + 1) != std::string::npos) {
                    opt.error =
                        "--trace-pipe window must be PATH:START:END, "
                        "got '" + spec + "'";
                    break;
                }
                std::string path = spec.substr(0, c1);
                std::string lo = spec.substr(c1 + 1, c2 - c1 - 1);
                std::string hi = spec.substr(c2 + 1);
                uint64_t start = 0, end = 0;
                if (path.empty() || !parseU64(lo.c_str(), start) ||
                    !parseU64(hi.c_str(), end)) {
                    opt.error =
                        "--trace-pipe window bounds must be "
                        "non-negative integers, got '" + spec + "'";
                    break;
                }
                if (start > end) {
                    opt.error = "--trace-pipe window is empty "
                                "(START " + lo + " > END " + hi +
                                ")";
                    break;
                }
                opt.tracePipePath = path;
                opt.traceStart = start;
                opt.traceEnd = end;
            }
        } else {
            opt.error = "unknown flag '" + a + "'";
        }
        if (!opt.ok())
            break;
    }
    if (opt.ok() && (opt.trainOps == 0 || opt.refOps == 0))
        opt.error = "trace lengths must be positive";
    // Interval records stream to the NDJSON sink and nowhere else:
    // a window length without a sink silently discards every record,
    // so it is rejected; a sink without a length gets the default.
    if (opt.ok() && opt.statsEvery > 0 &&
        opt.statsNdjsonPath.empty())
        opt.error = "--stats-every requires --stats-ndjson PATH "
                    "(interval records have no other sink)";
    if (opt.ok() && !opt.statsNdjsonPath.empty() &&
        opt.statsEvery == 0)
        opt.statsEvery = 10'000;
    // Sampled-mode contradictions are rejected up front rather than
    // surfacing as surprising runtime behavior (DESIGN.md §13).
    if (opt.ok() && opt.machine.sampleOps > 0) {
        if (!opt.tracePipePath.empty() && opt.traceEnd == ~0ULL)
            opt.error =
                "--sample with --trace-pipe requires an explicit "
                "PATH:START:END window: interval cores run in "
                "interval-local cycle domains, so an unbounded trace "
                "would interleave them meaninglessly (the window is "
                "applied to interval 0)";
        else if (!opt.statsNdjsonPath.empty())
            opt.error =
                "--sample cannot stream --stats-ndjson interval "
                "records: per-interval cycle domains do not stitch "
                "into one time series; use a full run for "
                "time-series telemetry";
        else if (opt.machine.checkInvariants &&
                 opt.machine.checkEvery > opt.machine.sampleOps)
            opt.error =
                "--check cadence (" +
                std::to_string(opt.machine.checkEvery) +
                ") exceeds the --sample interval (" +
                std::to_string(opt.machine.sampleOps) +
                "): no interval would ever be audited";
    }
    // Warm artifacts only exist in sampled mode, so a persistence
    // flag without --sample is a spec error, not a silent no-op.
    if (opt.ok() && !opt.artifactDir.empty() &&
        opt.machine.sampleOps == 0)
        opt.error = "--artifact-dir requires --sample (warm "
                    "artifacts only exist in sampled mode)";
    if (opt.ok() && opt.artifactMaxBytes > 0 &&
        opt.artifactDir.empty())
        opt.error = "--artifact-max-bytes requires --artifact-dir";
    // Interval workers share the --jobs setting (0 = hardware).
    if (opt.ok())
        opt.machine.sampleJobs = opt.jobs;
    return opt;
}

} // namespace crisp
