#include "sim/cli.h"

#include <cstdlib>

namespace crisp
{

std::string
cliUsage()
{
    return "usage: crisp_sim [options]\n"
           "  --workload NAME      proxy to run (see --list)\n"
           "  --scheduler MODE     ooo | crisp | ibda | both\n"
           "  --ist SIZE           1K | 8K | 64K | inf\n"
           "  --train N            profiling trace length\n"
           "  --ref N              evaluation trace length\n"
           "  --rs N               reservation station entries\n"
           "  --rob N              reorder buffer entries\n"
           "  --threshold F        miss-share threshold T\n"
           "  --no-branch-slices   disable branch slicing\n"
           "  --no-load-slices     disable load slicing\n"
           "  --no-cp-filter       disable critical-path filter\n"
           "  --no-mem-deps        register-only slices\n"
           "  --critical-dram     enable DRAM criticality (6.1)\n"
           "  --div-slices         slice divisions too (6.1)\n"
           "  --save-trace PATH    dump the tagged ref trace\n"
           "  --list               list workloads\n"
           "  --help               this message\n";
}

CliOptions
parseCli(const std::vector<std::string> &args)
{
    CliOptions opt;
    for (size_t i = 0; i < args.size(); ++i) {
        const std::string &a = args[i];
        auto need_value = [&](const char *flag) -> const char * {
            if (i + 1 >= args.size()) {
                opt.error = std::string(flag) + " requires a value";
                return nullptr;
            }
            return args[++i].c_str();
        };
        if (a == "--help") {
            opt.showHelp = true;
        } else if (a == "--list") {
            opt.listWorkloads = true;
        } else if (a == "--workload") {
            if (const char *v = need_value("--workload"))
                opt.workload = v;
        } else if (a == "--scheduler") {
            const char *v = need_value("--scheduler");
            if (!v)
                break;
            std::string mode = v;
            if (mode != "ooo" && mode != "crisp" && mode != "ibda" &&
                mode != "both") {
                opt.error = "unknown scheduler '" + mode + "'";
                break;
            }
            opt.scheduler = mode;
        } else if (a == "--ist") {
            if (const char *v = need_value("--ist"))
                opt.ist = v;
        } else if (a == "--train") {
            if (const char *v = need_value("--train"))
                opt.trainOps = std::strtoull(v, nullptr, 10);
        } else if (a == "--ref") {
            if (const char *v = need_value("--ref"))
                opt.refOps = std::strtoull(v, nullptr, 10);
        } else if (a == "--rs") {
            if (const char *v = need_value("--rs"))
                opt.machine.rsSize =
                    unsigned(std::strtoul(v, nullptr, 10));
        } else if (a == "--rob") {
            if (const char *v = need_value("--rob"))
                opt.machine.robSize =
                    unsigned(std::strtoul(v, nullptr, 10));
        } else if (a == "--threshold") {
            if (const char *v = need_value("--threshold"))
                opt.analysis.missShareThreshold =
                    std::strtod(v, nullptr);
        } else if (a == "--no-branch-slices") {
            opt.analysis.enableBranchSlices = false;
        } else if (a == "--no-load-slices") {
            opt.analysis.enableLoadSlices = false;
        } else if (a == "--no-cp-filter") {
            opt.analysis.criticalPathFilter = false;
        } else if (a == "--no-mem-deps") {
            opt.analysis.memDependencies = false;
        } else if (a == "--critical-dram") {
            opt.machine.enableCriticalDram = true;
        } else if (a == "--div-slices") {
            opt.analysis.enableLongLatencySlices = true;
        } else if (a == "--save-trace") {
            if (const char *v = need_value("--save-trace"))
                opt.saveTracePath = v;
        } else {
            opt.error = "unknown flag '" + a + "'";
        }
        if (!opt.ok())
            break;
    }
    if (opt.trainOps == 0 || opt.refOps == 0)
        opt.error = "trace lengths must be positive";
    return opt;
}

} // namespace crisp
