#include "sim/driver.h"

#include "sim/thread_pool.h"

namespace crisp
{

CoreStats
runCore(const Trace &trace, const SimConfig &cfg,
        bool record_timeline, PipeTracer *tracer,
        PcProfiler *profiler, IntervalStreamer *interval)
{
    Core core(trace, cfg);
    core.setTracer(tracer);
    core.setProfiler(profiler);
    core.setInterval(interval);
    return core.run(~0ULL, record_timeline);
}

SimConfig
ibdaConfig(const SimConfig &base, const std::string &ist)
{
    SimConfig cfg = base;
    cfg.enableIbda = true;
    cfg.scheduler = SchedulerPolicy::OldestFirst;
    if (ist == "1K") {
        cfg.istEntries = 1024;
        cfg.istWays = 4;
        cfg.istInfinite = false;
    } else if (ist == "8K") {
        cfg.istEntries = 8192;
        cfg.istWays = 8;
        cfg.istInfinite = false;
    } else if (ist == "64K") {
        cfg.istEntries = 65536;
        cfg.istWays = 16;
        cfg.istInfinite = false;
    } else { // "inf"
        cfg.istInfinite = true;
    }
    return cfg;
}

namespace
{

/**
 * Runs one core and, if the simulation deadlocks, rethrows the error
 * annotated with "workload/variant" so one poisoned configuration in
 * a parallel sweep is identifiable from the what() string alone.
 */
CoreStats
runCoreAnnotated(const Trace &trace, const SimConfig &cfg,
                 const std::string &workload, const char *variant)
{
    try {
        return runCore(trace, cfg);
    } catch (const SimDeadlockError &e) {
        throw e.withContext(workload + "/" + variant);
    }
}

/** Baseline OOO machine: untagged trace, oldest-first scheduler. */
SimConfig
baselineConfig(const SimConfig &base)
{
    SimConfig cfg = base;
    cfg.scheduler = SchedulerPolicy::OldestFirst;
    cfg.enableIbda = false;
    return cfg;
}

/** CRISP machine: tagged trace, two-level priority scheduler. */
SimConfig
crispConfig(const SimConfig &base)
{
    SimConfig cfg = base;
    cfg.scheduler = SchedulerPolicy::CrispPriority;
    cfg.enableIbda = false;
    return cfg;
}

} // namespace

WorkloadEval
evaluateWorkload(const WorkloadInfo &wl, const SimConfig &cfg,
                 const CrispOptions &opts, const EvalSizes &sizes,
                 const std::vector<std::string> &ist_sizes,
                 ArtifactCache *cache)
{
    ArtifactCache local;
    ArtifactCache &c = cache ? *cache : local;

    WorkloadEval eval;
    eval.name = wl.name;
    eval.analysis =
        *c.analysis(wl, opts, cfg, sizes.trainOps);

    auto base_trace = c.trace(wl, InputSet::Ref, sizes.refOps);
    eval.baseStats = runCoreAnnotated(*base_trace,
                                      baselineConfig(cfg),
                                      wl.name, "ooo");
    eval.ipcBaseline = eval.baseStats.ipc();

    auto crisp_trace = c.taggedRefTrace(wl, opts, cfg,
                                        sizes.trainOps,
                                        sizes.refOps);
    eval.crispStats = runCoreAnnotated(*crisp_trace,
                                       crispConfig(cfg),
                                       wl.name, "crisp");
    eval.ipcCrisp = eval.crispStats.ipc();

    // IBDA variants share the untagged trace.
    for (const auto &ist : ist_sizes) {
        CoreStats s = runCoreAnnotated(
            *base_trace, ibdaConfig(cfg, ist), wl.name,
            ("ibda-" + ist).c_str());
        eval.ipcIbda[ist] = s.ipc();
    }
    return eval;
}

std::vector<WorkloadEval>
evaluateAll(const std::vector<WorkloadInfo> &workloads,
            const SimConfig &cfg, const CrispOptions &opts,
            const EvalSizes &sizes, unsigned jobs,
            const std::vector<std::string> &ist_sizes,
            ArtifactCache *cache)
{
    ArtifactCache local;
    ArtifactCache &c = cache ? *cache : local;

    std::vector<WorkloadEval> evals(workloads.size());
    for (size_t w = 0; w < workloads.size(); ++w) {
        evals[w].name = workloads[w].name;
        // Pre-create map nodes so concurrent jobs only write values.
        for (const auto &ist : ist_sizes)
            evals[w].ipcIbda[ist] = 0.0;
    }

    // One job per (workload, variant) core run, so load balances
    // across variants of unequal cost. Variant v: 0 = baseline OOO,
    // 1 = CRISP, 2+k = IBDA with ist_sizes[k]. Each job writes only
    // its own slot; the analysis/trace artifacts behind the runs are
    // shared through the (thread-safe) cache.
    const size_t variants = 2 + ist_sizes.size();
    ThreadPool pool(jobs);
    pool.parallelFor(
        workloads.size() * variants, [&](size_t i) {
            size_t w = i / variants;
            size_t v = i % variants;
            const WorkloadInfo &wl = workloads[w];
            WorkloadEval &eval = evals[w];
            // A deadlocked run surfaces from the pool annotated
            // with its (workload, variant), not anonymously.
            if (v == 0) {
                auto trace =
                    c.trace(wl, InputSet::Ref, sizes.refOps);
                eval.baseStats = runCoreAnnotated(
                    *trace, baselineConfig(cfg), wl.name, "ooo");
                eval.ipcBaseline = eval.baseStats.ipc();
            } else if (v == 1) {
                eval.analysis =
                    *c.analysis(wl, opts, cfg, sizes.trainOps);
                auto trace = c.taggedRefTrace(
                    wl, opts, cfg, sizes.trainOps, sizes.refOps);
                eval.crispStats = runCoreAnnotated(
                    *trace, crispConfig(cfg), wl.name, "crisp");
                eval.ipcCrisp = eval.crispStats.ipc();
            } else {
                const std::string &ist = ist_sizes[v - 2];
                auto trace =
                    c.trace(wl, InputSet::Ref, sizes.refOps);
                CoreStats s = runCoreAnnotated(
                    *trace, ibdaConfig(cfg, ist), wl.name,
                    ("ibda-" + ist).c_str());
                // Each (w, ist) pair is written by exactly one job,
                // but the map node must be created serially.
                eval.ipcIbda.at(ist) = s.ipc();
            }
        });
    return evals;
}

} // namespace crisp
