#include "sim/driver.h"

namespace crisp
{

CoreStats
runCore(const Trace &trace, const SimConfig &cfg,
        bool record_timeline)
{
    Core core(trace, cfg);
    return core.run(~0ULL, record_timeline);
}

SimConfig
ibdaConfig(const SimConfig &base, const std::string &ist)
{
    SimConfig cfg = base;
    cfg.enableIbda = true;
    cfg.scheduler = SchedulerPolicy::OldestFirst;
    if (ist == "1K") {
        cfg.istEntries = 1024;
        cfg.istWays = 4;
        cfg.istInfinite = false;
    } else if (ist == "8K") {
        cfg.istEntries = 8192;
        cfg.istWays = 8;
        cfg.istInfinite = false;
    } else if (ist == "64K") {
        cfg.istEntries = 65536;
        cfg.istWays = 16;
        cfg.istInfinite = false;
    } else { // "inf"
        cfg.istInfinite = true;
    }
    return cfg;
}

WorkloadEval
evaluateWorkload(const WorkloadInfo &wl, const SimConfig &cfg,
                 const CrispOptions &opts, const EvalSizes &sizes,
                 const std::vector<std::string> &ist_sizes)
{
    WorkloadEval eval;
    eval.name = wl.name;

    CrispPipeline pipe(wl, opts, cfg, sizes.trainOps, sizes.refOps);
    eval.analysis = pipe.analysis();

    // Baseline OOO: untagged ref trace, oldest-first scheduler.
    Trace base_trace = pipe.refTrace(/*tagged=*/false);
    SimConfig base_cfg = cfg;
    base_cfg.scheduler = SchedulerPolicy::OldestFirst;
    base_cfg.enableIbda = false;
    eval.baseStats = runCore(base_trace, base_cfg);
    eval.ipcBaseline = eval.baseStats.ipc();

    // CRISP: tagged ref trace, priority scheduler.
    Trace crisp_trace = pipe.refTrace(/*tagged=*/true);
    SimConfig crisp_cfg = cfg;
    crisp_cfg.scheduler = SchedulerPolicy::CrispPriority;
    crisp_cfg.enableIbda = false;
    eval.crispStats = runCore(crisp_trace, crisp_cfg);
    eval.ipcCrisp = eval.crispStats.ipc();

    // IBDA variants share the untagged trace.
    for (const auto &ist : ist_sizes) {
        CoreStats s =
            runCore(base_trace, ibdaConfig(cfg, ist));
        eval.ipcIbda[ist] = s.ipc();
    }
    return eval;
}

} // namespace crisp
