#include "sim/driver.h"

#include <stdexcept>

#include "sim/cancel.h"
#include "sim/sampled.h"
#include "sim/thread_pool.h"

namespace crisp
{

CoreStats
runCore(const Trace &trace, const SimConfig &cfg,
        bool record_timeline, PipeTracer *tracer,
        PcProfiler *profiler, IntervalStreamer *interval,
        const SampledWarmState *warm, const CancelToken *cancel)
{
    if (cfg.sampleOps > 0) {
        if (interval)
            throw std::invalid_argument(
                "runCore: interval streaming is incompatible with "
                "sampled simulation (per-interval cycle domains do "
                "not form one time series)");
        return runCoreSampled(trace, cfg, warm, profiler, tracer,
                              record_timeline, nullptr, cancel)
            .total;
    }
    Core core(trace, cfg);
    core.setTracer(tracer);
    core.setProfiler(profiler);
    core.setInterval(interval);
    core.setCancel(cancel);
    return core.run(~0ULL, record_timeline);
}

SimConfig
ibdaConfig(const SimConfig &base, const std::string &ist)
{
    SimConfig cfg = base;
    cfg.enableIbda = true;
    cfg.scheduler = SchedulerPolicy::OldestFirst;
    if (ist == "1K") {
        cfg.istEntries = 1024;
        cfg.istWays = 4;
        cfg.istInfinite = false;
    } else if (ist == "8K") {
        cfg.istEntries = 8192;
        cfg.istWays = 8;
        cfg.istInfinite = false;
    } else if (ist == "64K") {
        cfg.istEntries = 65536;
        cfg.istWays = 16;
        cfg.istInfinite = false;
    } else { // "inf"
        cfg.istInfinite = true;
    }
    return cfg;
}

namespace
{

/**
 * Runs one core and, if the simulation deadlocks, rethrows the error
 * annotated with "workload/variant" so one poisoned configuration in
 * a parallel sweep is identifiable from the what() string alone.
 */
CoreStats
runCoreAnnotated(const Trace &trace, const SimConfig &cfg,
                 const std::string &workload, const char *variant,
                 const SampledWarmState *warm = nullptr,
                 const CancelToken *cancel = nullptr)
{
    try {
        return runCore(trace, cfg, false, nullptr, nullptr, nullptr,
                       warm, cancel);
    } catch (const SimDeadlockError &e) {
        throw e.withContext(workload + "/" + variant);
    }
}

} // namespace

/** Baseline OOO machine: untagged trace, oldest-first scheduler. */
SimConfig
baselineConfig(const SimConfig &base)
{
    SimConfig cfg = base;
    cfg.scheduler = SchedulerPolicy::OldestFirst;
    cfg.enableIbda = false;
    return cfg;
}

/** CRISP machine: tagged trace, two-level priority scheduler. */
SimConfig
crispConfig(const SimConfig &base)
{
    SimConfig cfg = base;
    cfg.scheduler = SchedulerPolicy::CrispPriority;
    cfg.enableIbda = false;
    return cfg;
}

WorkloadEval
evaluateWorkload(const WorkloadInfo &wl, const SimConfig &cfg,
                 const CrispOptions &opts, const EvalSizes &sizes,
                 const std::vector<std::string> &ist_sizes,
                 ArtifactCache *cache)
{
    ArtifactCache local;
    ArtifactCache &c = cache ? *cache : local;

    WorkloadEval eval;
    eval.name = wl.name;
    eval.analysis =
        *c.analysis(wl, opts, cfg, sizes.trainOps);

    // In sampled mode, warm states come from the cache; the warm key
    // covers warm-relevant geometry only, so ooo shares its warm pass
    // with every variant of equal structure geometry.
    const bool sampled = cfg.sampleOps > 0;
    std::shared_ptr<const SampledWarmState> base_warm, crisp_warm;
    if (sampled) {
        base_warm = c.warmState(wl, InputSet::Ref, sizes.refOps, cfg);
        crisp_warm = c.warmStateTagged(wl, opts, cfg, sizes.trainOps,
                                       sizes.refOps);
    }

    auto base_trace = c.trace(wl, InputSet::Ref, sizes.refOps);
    eval.baseStats = runCoreAnnotated(*base_trace,
                                      baselineConfig(cfg),
                                      wl.name, "ooo",
                                      base_warm.get());
    eval.ipcBaseline = eval.baseStats.ipc();

    auto crisp_trace = c.taggedRefTrace(wl, opts, cfg,
                                        sizes.trainOps,
                                        sizes.refOps);
    eval.crispStats = runCoreAnnotated(*crisp_trace,
                                       crispConfig(cfg),
                                       wl.name, "crisp",
                                       crisp_warm.get());
    eval.ipcCrisp = eval.crispStats.ipc();

    // IBDA variants share the untagged trace. Their warm state is
    // per-IST (the warm pass trains the IST, whose geometry is part
    // of the warm key).
    for (const auto &ist : ist_sizes) {
        SimConfig icfg = ibdaConfig(cfg, ist);
        std::shared_ptr<const SampledWarmState> iwarm;
        if (sampled)
            iwarm =
                c.warmState(wl, InputSet::Ref, sizes.refOps, icfg);
        CoreStats s = runCoreAnnotated(*base_trace, icfg, wl.name,
                                       ("ibda-" + ist).c_str(),
                                       iwarm.get());
        eval.ipcIbda[ist] = s.ipc();
    }
    return eval;
}

std::vector<WorkloadEval>
evaluateAll(const std::vector<WorkloadInfo> &workloads,
            const SimConfig &cfg, const CrispOptions &opts,
            const EvalSizes &sizes, unsigned jobs,
            const std::vector<std::string> &ist_sizes,
            ArtifactCache *cache, const CancelToken *cancel)
{
    ArtifactCache local;
    ArtifactCache &c = cache ? *cache : local;

    std::vector<WorkloadEval> evals(workloads.size());
    for (size_t w = 0; w < workloads.size(); ++w) {
        evals[w].name = workloads[w].name;
        // Pre-create map nodes so concurrent jobs only write values.
        for (const auto &ist : ist_sizes)
            evals[w].ipcIbda[ist] = 0.0;
    }

    // Sampled mode inverts the parallelism: (workload, variant) runs
    // go serially and each run's intervals fan out across the worker
    // pool instead, avoiding nested-pool oversubscription. Results
    // stay independent of the job count either way.
    SimConfig mcfg = cfg;
    const bool sampled = mcfg.sampleOps > 0;
    if (sampled)
        mcfg.sampleJobs = jobs;

    // One job per (workload, variant) core run, so load balances
    // across variants of unequal cost. Variant v: 0 = baseline OOO,
    // 1 = CRISP, 2+k = IBDA with ist_sizes[k]. Each job writes only
    // its own slot; the analysis/trace artifacts behind the runs are
    // shared through the (thread-safe) cache.
    const size_t variants = 2 + ist_sizes.size();
    ThreadPool pool(sampled ? 1 : jobs);
    pool.parallelFor(
        workloads.size() * variants, [&](size_t i) {
            size_t w = i / variants;
            size_t v = i % variants;
            const WorkloadInfo &wl = workloads[w];
            WorkloadEval &eval = evals[w];
            // Checked once per job here and per tick inside the
            // run, so a fired token also skips jobs that have not
            // built their (possibly expensive) artifacts yet.
            if (cancel)
                cancel->throwIfCancelled("evaluateAll job");
            // A deadlocked run surfaces from the pool annotated
            // with its (workload, variant), not anonymously.
            if (v == 0) {
                auto trace =
                    c.trace(wl, InputSet::Ref, sizes.refOps);
                std::shared_ptr<const SampledWarmState> warm;
                if (sampled)
                    warm = c.warmState(wl, InputSet::Ref,
                                       sizes.refOps, mcfg);
                eval.baseStats = runCoreAnnotated(
                    *trace, baselineConfig(mcfg), wl.name, "ooo",
                    warm.get(), cancel);
                eval.ipcBaseline = eval.baseStats.ipc();
            } else if (v == 1) {
                eval.analysis =
                    *c.analysis(wl, opts, mcfg, sizes.trainOps);
                auto trace = c.taggedRefTrace(
                    wl, opts, mcfg, sizes.trainOps, sizes.refOps);
                std::shared_ptr<const SampledWarmState> warm;
                if (sampled)
                    warm = c.warmStateTagged(wl, opts, mcfg,
                                             sizes.trainOps,
                                             sizes.refOps);
                eval.crispStats = runCoreAnnotated(
                    *trace, crispConfig(mcfg), wl.name, "crisp",
                    warm.get(), cancel);
                eval.ipcCrisp = eval.crispStats.ipc();
            } else {
                const std::string &ist = ist_sizes[v - 2];
                auto trace =
                    c.trace(wl, InputSet::Ref, sizes.refOps);
                SimConfig icfg = ibdaConfig(mcfg, ist);
                std::shared_ptr<const SampledWarmState> warm;
                if (sampled)
                    warm = c.warmState(wl, InputSet::Ref,
                                       sizes.refOps, icfg);
                CoreStats s = runCoreAnnotated(
                    *trace, icfg, wl.name,
                    ("ibda-" + ist).c_str(), warm.get(), cancel);
                // Each (w, ist) pair is written by exactly one job,
                // but the map node must be created serially.
                eval.ipcIbda.at(ist) = s.ipc();
            }
        });
    return evals;
}

} // namespace crisp
