/**
 * @file
 * Sampled simulation: checkpointed intervals detailed-simulated in
 * parallel (SMARTS-style; DESIGN.md §13, §14).
 *
 * The trace is split into fixed-size intervals of `SimConfig::
 * sampleOps` micro-ops. A serial *functional warm pass* replays the
 * whole trace once through the architectural warm-up machinery — the
 * cache hierarchy, the trained prefetcher engines, the direction
 * predictor / BTB / RAS in exactly the detailed frontend's training
 * order, and the IBDA IST/DLT — and captures a MachineSnapshot at
 * every interval boundary. Each interval is dispatched as an
 * independent detailed Core::run job on the ThreadPool, starting from
 * its snapshot (timing clamped to a quiesced cycle-0 machine), and
 * the per-interval CoreStats are stitched back into whole-run
 * aggregates with CoreStats::accumulate — the same disjoint-window
 * additivity the IntervalStreamer contract pins (DESIGN.md §12).
 *
 * Since PR 7 the warm pass is *pipelined* with detailed simulation
 * (DESIGN.md §14): when runCoreSampled builds its own warm state, the
 * producer publishes snapshot k the moment boundary k is crossed and
 * the interval-k job starts immediately on a ThreadPool::Stream,
 * turning the serial prefix `T_warm + T_detail/J` into
 * `max(T_warm, T_detail/J)`. Each streamed snapshot has exactly one
 * consumer, so adoption *moves* the warm tables instead of copying
 * them and the snapshot is freed as soon as its job adopts it; a
 * backpressure cap bounds the number of live snapshots. When a
 * pre-built SampledWarmState is supplied, all snapshots already
 * exist and the classic barrier schedule runs. Both schedules are
 * bit-identical to each other and to a serial run.
 *
 * Because the trace pre-records every architectural result (effective
 * addresses, branch outcomes, next PCs), snapshots carry *only*
 * microarchitectural state: no memory image or interpreter register
 * file is needed — an interval core re-executes its trace slice
 * directly. An optional per-interval detailed warm-up of
 * `sampleWarmupOps` micro-ops re-simulates the tail of the previous
 * interval in detail and strips it from the interval's statistics
 * (Core::setMeasureFromOp), shrinking the cold-pipeline boundary
 * error.
 *
 * Determinism: the warm pass is serial, every interval job is a pure
 * function of (sub-trace, config, snapshot), and stitching is in
 * interval order — results are bit-identical at any job count.
 */

#ifndef CRISP_SIM_SAMPLED_H
#define CRISP_SIM_SAMPLED_H

#include <array>
#include <cstdint>
#include <memory>
#include <vector>

#include "bp/btb.h"
#include "bp/predictor.h"
#include "bp/ras.h"
#include "cache/hierarchy.h"
#include "cpu/core.h"
#include "ibda/ibda.h"
#include "sim/config.h"
#include "trace/trace.h"

namespace crisp
{

class PcProfiler;
class PipeTracer;
class WarmSink;
class WarmSource;

/**
 * @return a fresh (untrained) direction predictor of the kind the
 *         detailed Frontend would build for @p cfg. The warm pass and
 *         the warm-artifact loader both construct predictors through
 *         this so the selection can never drift from the frontend's.
 */
std::unique_ptr<DirectionPredictor>
makeWarmDirectionPredictor(const SimConfig &cfg);

/**
 * The microarchitectural state handed to one interval core: the warm
 * memory-system image (cache tags/LRU, DRAM open rows, trained
 * prefetcher tables), the trained branch structures, and the IBDA
 * IST/DLT contents. Architectural state (memory image, registers) is
 * never snapshotted — the trace pre-records all execution results.
 */
struct MachineSnapshot
{
    /** Trace index this snapshot is valid at (interval start minus
     *  the detailed warm-up prefix). */
    uint64_t beginOp = 0;

    /** The warm pass's pseudo-clock at the snapshot point. Lines
     *  whose fill completes after this (still in flight) are dropped
     *  at adoption rather than granted instantly. */
    uint64_t warmCycle = 0;

    Hierarchy mem;                           ///< caches + DRAM + prefetchers
    std::unique_ptr<DirectionPredictor> dir; ///< trained predictor
    Btb btb;
    Ras ras;
    std::unique_ptr<Ibda> ibda;              ///< trained IST/DLT

    /** Per-register PC of the latest architectural writer at the
     *  snapshot point — the rename-side context IBDA's backward walk
     *  reads at dispatch. */
    std::array<uint64_t, kNumArchRegs> lastWriterPc{};

    MachineSnapshot(uint64_t begin_op, uint64_t warm_cycle,
                    const Hierarchy &warm_mem,
                    std::unique_ptr<DirectionPredictor> warm_dir,
                    const Btb &warm_btb, const Ras &warm_ras,
                    std::unique_ptr<Ibda> warm_ibda,
                    const std::array<uint64_t, kNumArchRegs>
                        &warm_last_writer_pc)
        : beginOp(begin_op), warmCycle(warm_cycle), mem(warm_mem),
          dir(std::move(warm_dir)), btb(warm_btb), ras(warm_ras),
          ibda(std::move(warm_ibda)),
          lastWriterPc(warm_last_writer_pc)
    {
    }

    /** Move-capture overload: steals the warm machine's structures
     *  outright — used for the final snapshot of a streaming warm
     *  pass, whose producer has no further use for them. */
    MachineSnapshot(uint64_t begin_op, uint64_t warm_cycle,
                    Hierarchy &&warm_mem,
                    std::unique_ptr<DirectionPredictor> warm_dir,
                    Btb &&warm_btb, Ras &&warm_ras,
                    std::unique_ptr<Ibda> warm_ibda,
                    const std::array<uint64_t, kNumArchRegs>
                        &warm_last_writer_pc)
        : beginOp(begin_op), warmCycle(warm_cycle),
          mem(std::move(warm_mem)), dir(std::move(warm_dir)),
          btb(std::move(warm_btb)), ras(std::move(warm_ras)),
          ibda(std::move(warm_ibda)),
          lastWriterPc(warm_last_writer_pc)
    {
    }

    /** Cold machine for @p cfg (beginOp/warmCycle zero, untrained
     *  structures) — the shell the warm-artifact loader deserializes
     *  into. */
    explicit MachineSnapshot(const SimConfig &cfg)
        : mem(cfg), dir(makeWarmDirectionPredictor(cfg)),
          btb(cfg.btbEntries, 4), ras(cfg.rasEntries),
          ibda(std::make_unique<Ibda>(cfg))
    {
    }

    MachineSnapshot(MachineSnapshot &&) = default;
    MachineSnapshot &operator=(MachineSnapshot &&) = default;
};

/**
 * Serializes @p snap's adoption-relevant content (DESIGN.md §14).
 * Geometry is not serialized — it is part of the artifact key.
 */
void serializeSnapshot(const MachineSnapshot &snap, WarmSink &sink);

/**
 * Restores serializeSnapshot() content into @p out, which must be a
 * cold MachineSnapshot built for the same geometry (the
 * MachineSnapshot(cfg) constructor). @return false on truncation or
 * a geometry mismatch; @p out is unspecified on failure.
 */
bool deserializeSnapshot(WarmSource &src, MachineSnapshot &out);

/**
 * All interval snapshots of one (trace, config, sample spec): the
 * product of one serial warm pass. Shareable across scheduler
 * variants via the ArtifactCache — warm-up is variant-independent
 * (the warm pass trains every structure, and each variant adopts
 * only what its config enables).
 */
struct SampledWarmState
{
    uint64_t intervalOps = 0; ///< interval length the pass was built for
    uint64_t warmupOps = 0;   ///< detailed warm-up prefix per interval

    /** snapshots[k] is taken at op max(0, k*intervalOps - warmupOps);
     *  snapshots[0] is the cold machine. */
    std::vector<MachineSnapshot> snapshots;
};

/**
 * Runs the serial functional warm pass over @p trace and captures a
 * MachineSnapshot at every interval boundary (minus the warm-up
 * prefix) per @p cfg's sampleOps/sampleWarmupOps.
 */
SampledWarmState buildWarmState(const Trace &trace,
                                const SimConfig &cfg);

/** Result of one sampled run. */
struct SampledResult
{
    CoreStats total;                  ///< stitched whole-run aggregate
    std::vector<CoreStats> intervals; ///< per-interval (measured) stats
    uint64_t intervalOps = 0;
    uint64_t warmupOps = 0;

    // Phase breakdown (wall clock; DESIGN.md §14). In the pipelined
    // schedule warm and detail overlap, so warmSeconds measures the
    // producer loop and detailSeconds the full produce-and-simulate
    // span; in the barrier schedule they are disjoint.
    double warmSeconds = 0.0;   ///< warm pass (0 with external warm)
    double detailSeconds = 0.0; ///< detailed interval simulation
    double stitchSeconds = 0.0; ///< in-order stats accumulation
    /** True when this run executed the warm pass itself (no external
     *  SampledWarmState supplied). */
    bool warmPassRan = false;
    /** Most MachineSnapshots simultaneously alive during the run —
     *  bounded by the backpressure cap in the pipelined schedule,
     *  equal to the snapshot count in the barrier schedule. */
    uint64_t peakLiveSnapshots = 0;
};

/**
 * Observes each MachineSnapshot as the streaming warm pass publishes
 * it, on the producer thread and in interval order, *before* the
 * interval job may consume (move out of) the snapshot. The on-disk
 * warm-artifact writer hangs off this hook so a cold pipelined run
 * persists its warm state incrementally (DESIGN.md §14).
 */
class SnapshotObserver
{
  public:
    virtual ~SnapshotObserver() = default;
    /** Called once per interval k = 0 .. K-1, in order. */
    virtual void onSnapshot(size_t k, const MachineSnapshot &snap) = 0;
};

/**
 * Sampled detailed simulation of @p trace under @p cfg (which must
 * have sampleOps > 0): warm pass (or @p warm when provided — it must
 * match the config's sample spec), parallel per-interval Core runs
 * on cfg.sampleJobs workers, stitched totals. Bit-identical at any
 * job count.
 *
 * With @p warm == nullptr the warm pass streams: snapshot k is
 * published and interval k enqueued the moment boundary k is crossed
 * (DESIGN.md §14). With a pre-built @p warm, the classic barrier
 * schedule runs. Results are bit-identical either way.
 *
 * @param warm pre-built warm state (e.g. shared via ArtifactCache);
 *        nullptr = build one here, pipelined with detail
 * @param profiler optional per-PC profiler; per-interval profiles are
 *        merged into it in interval order
 * @param tracer optional pipeline tracer, attached to interval 0
 *        only (its cycle window is interval-local; see cliUsage)
 * @param record_timeline record per-cycle retire counts (timelines
 *        concatenate across intervals)
 * @param observer optional snapshot hook (streaming schedule only —
 *        with external @p warm the caller already holds every
 *        snapshot, so the hook is not invoked)
 * @param cancel optional cooperative cancellation token
 *        (sim/cancel.h): polled by the warm-pass producer and by
 *        every interval core, so a fired token unwinds the whole
 *        sampled run with JobCancelled within one tick
 * @throws std::invalid_argument on a sample-spec mismatch with @p warm
 * @throws SimDeadlockError when an interval stops making progress
 * @throws JobCancelled when @p cancel fires mid-run
 */
SampledResult runCoreSampled(const Trace &trace, const SimConfig &cfg,
                             const SampledWarmState *warm = nullptr,
                             PcProfiler *profiler = nullptr,
                             PipeTracer *tracer = nullptr,
                             bool record_timeline = false,
                             SnapshotObserver *observer = nullptr,
                             const CancelToken *cancel = nullptr);

/**
 * Injects a snapshot's warm state into a fresh core (before run()):
 * memory system, branch structures and — when the config enables
 * IBDA — the IST/DLT. Timing is clamped and statistics zeroed by the
 * component adoptWarmState methods.
 */
void applySnapshot(Core &core, const MachineSnapshot &snap);

/**
 * Move overload: steals the snapshot's warm tables instead of
 * deep-copying them — identical core post-state, leaves @p snap
 * gutted. The pipelined schedule uses this because each streamed
 * snapshot has exactly one consumer (DESIGN.md §14).
 */
void applySnapshot(Core &core, MachineSnapshot &&snap);

/**
 * @return the canonical key fragment of everything a warm pass is a
 *         pure function of besides the trace: cache/prefetcher/
 *         branch-structure/IST geometry plus the sample spec.
 *         Scheduler policy, tick model and latencies do not affect
 *         warm state, so variants share warm artifacts.
 */
std::string warmStateKey(const SimConfig &cfg);

} // namespace crisp

#endif // CRISP_SIM_SAMPLED_H
