/**
 * @file
 * Fixed-size worker pool for batch simulation.
 *
 * The evaluation surface of this repository is a batch of independent
 * core simulations over immutable traces, so the pool only needs one
 * primitive: parallelFor(n, fn), which runs fn(0..n-1) across the
 * workers. Callers write results into pre-sized slots indexed by the
 * loop variable, so output is bit-identical to a serial run regardless
 * of completion order. Exceptions thrown by any iteration are captured
 * and the first one is rethrown on the calling thread after the loop
 * drains.
 */

#ifndef CRISP_SIM_THREAD_POOL_H
#define CRISP_SIM_THREAD_POOL_H

#include <condition_variable>
#include <deque>
#include <functional>
#include <mutex>
#include <thread>
#include <vector>

namespace crisp
{

/** A fixed-size worker pool with a shared job queue. */
class ThreadPool
{
  public:
    /**
     * @param jobs worker count; 0 selects defaultJobs(). A pool of
     *        size 1 runs every parallelFor inline on the caller —
     *        exactly today's serial behavior.
     */
    explicit ThreadPool(unsigned jobs = 0);
    ~ThreadPool();

    ThreadPool(const ThreadPool &) = delete;
    ThreadPool &operator=(const ThreadPool &) = delete;

    /** @return number of execution lanes (>= 1). */
    unsigned size() const { return size_; }

    /** @return hardware concurrency, at least 1. */
    static unsigned defaultJobs();

    /**
     * Runs fn(i) for i in [0, n) across the pool and blocks until all
     * iterations finish. The first exception thrown by any iteration
     * is rethrown here once the loop has drained.
     */
    void parallelFor(size_t n, const std::function<void(size_t)> &fn);

  private:
    /** One parallelFor in flight; workers pull indices from it. */
    struct Batch
    {
        const std::function<void(size_t)> *fn = nullptr;
        size_t next = 0;      ///< next unclaimed index
        size_t total = 0;     ///< iteration count
        size_t done = 0;      ///< finished iterations
        std::exception_ptr error;
    };

    void workerLoop();
    /** Claims and runs one iteration. @return false if none left. */
    bool runOne(std::unique_lock<std::mutex> &lk);

    unsigned size_;
    std::vector<std::thread> workers_;
    std::mutex m_;
    std::condition_variable work_cv_;  ///< workers wait for a batch
    std::condition_variable done_cv_;  ///< caller waits for drain
    Batch *batch_ = nullptr;
    bool stop_ = false;
};

} // namespace crisp

#endif // CRISP_SIM_THREAD_POOL_H
