/**
 * @file
 * Fixed-size worker pool for batch simulation.
 *
 * The evaluation surface of this repository is a batch of independent
 * core simulations over immutable traces, so the pool offers two
 * primitives. parallelFor(n, fn) runs fn(0..n-1) across the workers
 * when the whole work-list is known up front. Stream accepts tasks
 * one at a time as a producer discovers them — the pipelined sampled
 * path (DESIGN.md §14) publishes one detailed-interval job per warm
 * snapshot boundary while the warm pass is still running. In both
 * cases callers write results into pre-sized slots, so output is
 * bit-identical to a serial run regardless of completion order, and
 * the first exception thrown by any task is rethrown on the calling
 * thread after the work drains.
 */

#ifndef CRISP_SIM_THREAD_POOL_H
#define CRISP_SIM_THREAD_POOL_H

#include <cstdint>
#include <deque>
#include <functional>
#include <thread>
#include <vector>

#include "sim/sync.h"

namespace crisp
{

/** A fixed-size worker pool with a shared job queue. */
class ThreadPool
{
  public:
    /**
     * @param jobs worker count; 0 selects defaultJobs(). A pool of
     *        size 1 runs every parallelFor inline on the caller —
     *        exactly today's serial behavior.
     */
    explicit ThreadPool(unsigned jobs = 0);
    ~ThreadPool();

    ThreadPool(const ThreadPool &) = delete;
    ThreadPool &operator=(const ThreadPool &) = delete;

    /** @return number of execution lanes (>= 1). */
    unsigned size() const { return size_; }

    /** @return hardware concurrency, at least 1. */
    static unsigned defaultJobs();

    /**
     * Runs fn(i) for i in [0, n) across the pool and blocks until all
     * iterations finish. The first exception thrown by any iteration
     * is rethrown here once the loop has drained.
     */
    void parallelFor(size_t n, const std::function<void(size_t)> &fn);

    /**
     * An open-ended task stream over the pool: submit() hands tasks
     * to the workers as they are discovered; wait() blocks (helping
     * to drain) until every submitted task has finished and rethrows
     * the first captured exception. On a pool of size 1, submit()
     * runs the task inline — exactly the serial reference behavior.
     *
     * At most one Stream may be open per pool at a time; a stream
     * and parallelFor may not run concurrently from different
     * threads (tasks themselves must not touch the owning pool).
     */
    class Stream
    {
      public:
        /** Opens a stream over @p pool. */
        explicit Stream(ThreadPool &pool);
        /** Drains outstanding tasks, discarding any stored error if
         *  wait() was never called (destructors must not throw). */
        ~Stream();

        Stream(const Stream &) = delete;
        Stream &operator=(const Stream &) = delete;

        /** Enqueues @p task (runs inline on a size-1 pool). */
        void submit(std::function<void()> task);

        /**
         * Blocks until every task submitted so far has finished; the
         * caller helps drain the queue. Rethrows the first captured
         * task exception. May be called repeatedly.
         */
        void wait();

      private:
        ThreadPool &pool_;
    };

  private:
    /** One parallelFor in flight; workers pull indices from it.
     *  Fields are only touched under the owning pool's m_ while
     *  batch_ points at the instance (the struct lives on the
     *  parallelFor caller's stack, so it cannot name that mutex in
     *  an annotation). */
    struct Batch
    {
        const std::function<void(size_t)> *fn = nullptr;
        size_t next = 0;      ///< next unclaimed index
        size_t total = 0;     ///< iteration count
        size_t done = 0;      ///< finished iterations
        std::exception_ptr error;
    };

    void workerLoop();
    /** Claims and runs one iteration (dropping m_ around the user
     *  code, reacquired on return). @return false if none left. */
    bool runOne() CRISP_REQUIRES(m_);
    /** Claims and runs one stream task (same unlock-around-task
     *  protocol as runOne). @return false if none left. */
    bool runOneStream() CRISP_REQUIRES(m_);

    unsigned size_;
    std::vector<std::thread> workers_;
    Mutex m_;
    CondVar work_cv_;  ///< workers wait for work
    CondVar done_cv_;  ///< caller waits for drain
    Batch *batch_ CRISP_GUARDED_BY(m_) = nullptr;
    bool stop_ CRISP_GUARDED_BY(m_) = false;

    /** One queued stream task.  enqueueNs is the runtime-trace
     *  enqueue timestamp (0 when no tracer was attached at submit),
     *  consumed at dispatch to emit the queue-wait async span. */
    struct StreamTask
    {
        std::function<void()> fn;
        uint64_t enqueueNs = 0;
    };

    // Stream state (one open stream at a time; see class Stream).
    std::deque<StreamTask> streamTasks_ CRISP_GUARDED_BY(m_);
    size_t streamPending_ CRISP_GUARDED_BY(m_) =
        0; ///< queued + running stream tasks
    std::exception_ptr streamError_ CRISP_GUARDED_BY(m_);
    bool streamOpen_ CRISP_GUARDED_BY(m_) = false;
};

} // namespace crisp

#endif // CRISP_SIM_THREAD_POOL_H
