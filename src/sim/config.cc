#include "sim/config.h"

#include <sstream>

namespace crisp
{

SimConfig
SimConfig::skylake()
{
    return SimConfig{};
}

SimConfig
SimConfig::withWindow(unsigned rs, unsigned rob)
{
    SimConfig cfg;
    cfg.rsSize = rs;
    cfg.robSize = rob;
    return cfg;
}

std::string
SimConfig::describe() const
{
    std::ostringstream os;
    os << width << "-wide, ROB " << robSize << ", RS " << rsSize
       << ", LQ " << lqSize << ", SQ " << sqSize << ", "
       << numAlu << " ALU/" << numLoadPorts << " LD/" << numStorePorts
       << " ST, " << branchPredictor << ", sched="
       << (scheduler == SchedulerPolicy::CrispPriority ? "crisp"
                                                       : "oldest")
       << (enableIbda ? ", ibda" : "")
       << (tickModel == TickModel::Cycle ? ", tick=cycle" : "");
    if (sampleOps > 0) {
        os << ", sample=" << sampleOps;
        if (sampleWarmupOps > 0)
            os << ":warmup " << sampleWarmupOps;
    }
    return os.str();
}

} // namespace crisp
