/**
 * @file
 * Command-line option parsing for the crisp_sim tool.
 */

#ifndef CRISP_SIM_CLI_H
#define CRISP_SIM_CLI_H

#include <optional>
#include <string>
#include <vector>

#include "core/delinquency.h"
#include "sim/config.h"

namespace crisp
{

/** Parsed crisp_sim invocation. */
struct CliOptions
{
    std::string workload = "pointer_chase";
    std::string scheduler = "both"; ///< ooo | crisp | ibda | both
    std::string ist = "1K";        ///< IBDA IST size label
    uint64_t trainOps = 200'000;
    uint64_t refOps = 400'000;
    /** Worker count for parallel runs; 0 = hardware concurrency. */
    unsigned jobs = 0;
    SimConfig machine = SimConfig::skylake();
    CrispOptions analysis;
    bool listWorkloads = false;
    bool showHelp = false;
    std::string saveTracePath; ///< optional trace dump

    // Telemetry outputs (empty = disabled).
    std::string statsJsonPath; ///< --stats-json: registry as JSON
    std::string statsCsvPath;  ///< --stats-csv: registry as CSV
    std::string tracePipePath; ///< --trace-pipe: Kanata pipeline log
    uint64_t traceStart = 0;       ///< first fetch cycle recorded
    uint64_t traceEnd = ~0ULL;     ///< last fetch cycle recorded
    /** --stats-ndjson: interval time-series sink (NDJSON). */
    std::string statsNdjsonPath;
    /** --stats-every: interval window length in cycles; 0 = off.
     *  Requires an NDJSON sink; defaults to 10000 when only
     *  --stats-ndjson is given. */
    uint64_t statsEvery = 0;
    bool profilePc = false;    ///< --profile-pc: per-PC attribution
    uint64_t profilePcTop = 32; ///< --profile-pc=N: top-N table rows

    /** --artifact-dir: persistent warm-artifact directory (empty =
     *  disabled). Writability is probed by the tool at startup. */
    std::string artifactDir;
    /** --artifact-max-bytes: artifact-directory byte cap enforced
     *  after each write; 0 = unlimited. */
    uint64_t artifactMaxBytes = 0;

    /** --trace-runtime: host-runtime span trace output (Chrome
     *  trace-event JSON for Perfetto); empty = tracer detached. */
    std::string traceRuntimePath;

    /** Error message if parsing failed (empty on success). */
    std::string error;

    /** @return true if parsing succeeded. */
    bool ok() const { return error.empty(); }
};

/**
 * Parses crisp_sim arguments.
 *
 * Supported flags:
 *   --workload NAME      proxy to run (--list to enumerate)
 *   --scheduler MODE     ooo | crisp | ibda | both (default both)
 *   --ist SIZE           IBDA IST: 1K | 8K | 64K | inf
 *   --train N, --ref N   trace lengths (--train-ops / --ref-ops are
 *                        accepted aliases)
 *   --jobs N             parallel worker count (default: hardware
 *                        concurrency; 1 = fully serial)
 *   --sample N[:W]       sampled simulation (DESIGN.md §13): split
 *                        the trace into intervals of N micro-ops,
 *                        functionally warm to each boundary,
 *                        detail-simulate intervals in parallel on
 *                        the --jobs pool and stitch the results.
 *                        Optional W (':warmup=W' longhand accepted)
 *                        is a detailed warm-up prefix in ops.
 *                        Rejected with --stats-ndjson, with a
 *                        windowless --trace-pipe, and with a --check
 *                        cadence coarser than the interval.
 *   --rs N, --rob N      window sizes (Fig 9 style sweeps)
 *   --tick-model MODEL   cycle | event simulation engine (default
 *                        event; bit-identical stats, DESIGN.md §9)
 *   --threshold F        miss-share threshold T (Fig 10)
 *   --no-branch-slices   disable §3.4 branch slicing
 *   --no-load-slices     disable load slicing
 *   --no-cp-filter       disable §3.5 critical-path filtering
 *   --no-mem-deps        register-only slices (IBDA view)
 *   --critical-dram      enable the §6.1 DRAM extension
 *   --div-slices         enable §6.1 long-latency slices
 *   --save-trace PATH    dump the tagged ref trace
 *   --stats-json PATH    write the full stat registry as JSON
 *   --stats-csv PATH     write the full stat registry as CSV
 *   --trace-pipe PATH[:START:END]
 *                        write a Kanata pipeline trace (Konata
 *                        viewer); the optional window records only
 *                        instructions fetched in [START, END]
 *   --stats-ndjson PATH  write interval time-series records (one
 *                        JSON object per line); requires or implies
 *                        --stats-every
 *   --stats-every N      interval window length in cycles (positive;
 *                        rejected without an NDJSON sink). With
 *                        --trace-pipe also present, the pipeline
 *                        trace gains [interval-boundary] comments at
 *                        each window edge.
 *   --profile-pc[=N]     per-PC criticality attribution: delinquent
 *                        loads, hard branches and the scheduler
 *                        decision log, top-N rows (default 32);
 *                        printed, and exported with --stats-json/csv
 *   --artifact-dir DIR   persist sampled-simulation warm artifacts
 *                        in DIR across runs (DESIGN.md §14); the
 *                        directory is created if missing, and a
 *                        non-writable DIR is a startup error.
 *                        Requires --sample.
 *   --artifact-max-bytes N
 *                        evict oldest artifacts when DIR exceeds N
 *                        bytes (0 = unlimited; requires
 *                        --artifact-dir)
 *   --trace-runtime FILE write a host-runtime span trace (Chrome
 *                        trace-event JSON; open in Perfetto or
 *                        chrome://tracing) covering pool tasks and
 *                        queue-waits, artifact-cache computes,
 *                        warm-store I/O, and the sampled pipeline
 *                        phases. Never changes simulated results.
 *
 * The telemetry output flags reject duplicates (two --stats-json
 * flags silently discarding one file is a bug, not a convenience).
 *   --list               list workloads and exit
 *   --help               usage
 */
CliOptions parseCli(const std::vector<std::string> &args);

/** @return the usage string printed by --help. */
std::string cliUsage();

/**
 * Scans bench-style argv for a trailing `--jobs N` override.
 * @return N when present and valid, otherwise 0 (= hardware
 *         concurrency); invalid values produce a message on stderr
 *         and fall back to 0.
 */
unsigned benchJobsArg(int argc, char **argv);

} // namespace crisp

#endif // CRISP_SIM_CLI_H
