/**
 * @file
 * Fixed-width text table used by the figure-reproduction benches.
 */

#ifndef CRISP_SIM_TABLE_H
#define CRISP_SIM_TABLE_H

#include <iosfwd>
#include <string>
#include <vector>

namespace crisp
{

/** Accumulates rows and prints a padded, pipe-separated table. */
class Table
{
  public:
    /** @param headers column titles. */
    explicit Table(std::vector<std::string> headers);

    /** Appends a row (short rows are padded with empty cells). */
    void addRow(std::vector<std::string> cells);

    /** Prints to @p os with a header separator line. */
    void print(std::ostream &os) const;

    /** @return rows added so far. */
    size_t rows() const { return rows_.size(); }

  private:
    std::vector<std::string> headers_;
    std::vector<std::vector<std::string>> rows_;
};

} // namespace crisp

#endif // CRISP_SIM_TABLE_H
