#include "sim/table.h"

#include <algorithm>
#include <ostream>

namespace crisp
{

Table::Table(std::vector<std::string> headers)
    : headers_(std::move(headers))
{
}

void
Table::addRow(std::vector<std::string> cells)
{
    cells.resize(headers_.size());
    rows_.push_back(std::move(cells));
}

void
Table::print(std::ostream &os) const
{
    std::vector<size_t> widths(headers_.size());
    for (size_t c = 0; c < headers_.size(); ++c)
        widths[c] = headers_[c].size();
    for (const auto &row : rows_) {
        for (size_t c = 0; c < row.size(); ++c)
            widths[c] = std::max(widths[c], row[c].size());
    }

    auto emit = [&](const std::vector<std::string> &cells) {
        for (size_t c = 0; c < headers_.size(); ++c) {
            os << (c ? " | " : "");
            const std::string &s =
                c < cells.size() ? cells[c] : std::string();
            os << s << std::string(widths[c] - s.size(), ' ');
        }
        os << '\n';
    };

    emit(headers_);
    size_t total = 0;
    for (size_t c = 0; c < widths.size(); ++c)
        total += widths[c] + (c ? 3 : 0);
    os << std::string(total, '-') << '\n';
    for (const auto &row : rows_)
        emit(row);
}

} // namespace crisp
