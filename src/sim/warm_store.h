/**
 * @file
 * Persistent on-disk tier for sampled-simulation warm artifacts
 * (DESIGN.md §14).
 *
 * A functional warm pass is a pure function of (trace content, warm
 * geometry, sample spec) — exactly what warmStateKey() plus a trace
 * content hash encode. The store keeps one file per distinct key in a
 * user-chosen directory, so the warm pass survives process exit:
 * repeated experiment sweeps, CI re-runs and multi-config studies on
 * the same trace pay for warming once, ever.
 *
 * Durability discipline:
 *  - Files are written to a `.tmp` sibling and published with an
 *    atomic rename — readers never observe a half-written artifact,
 *    and a crash leaves only a stale temp file behind.
 *  - Every load verifies magic, format version, a whole-payload
 *    FNV-1a checksum, the full key string, and the trace hash (the
 *    filename is a hash of the key, so collisions must be detected
 *    by content). Any mismatch — truncation, corruption, version
 *    skew, collision — makes load() return false with a reason; the
 *    caller recomputes. A bad artifact can cost time, never
 *    correctness, and never a crash.
 *  - An optional byte cap evicts least-recently-modified artifacts
 *    after each commit, sparing the file just written.
 *
 * The streaming warm pass persists incrementally: Writer is a
 * SnapshotObserver that serializes each snapshot as the producer
 * publishes it, so a cold pipelined run leaves a reusable artifact
 * behind at no extra pass over the data.
 */

#ifndef CRISP_SIM_WARM_STORE_H
#define CRISP_SIM_WARM_STORE_H

#include <cstdint>
#include <fstream>
#include <string>

#include "sim/sampled.h"
#include "sim/sync.h"
#include "sim/warm_io.h"

namespace crisp
{

/**
 * @return the FNV-1a 64 hash of @p trace's replay-relevant content
 *         (every MicroOp field the warm pass or a detailed core
 *         reads). Together with warmStateKey(cfg) this identifies a
 *         warm artifact exactly.
 */
uint64_t traceContentHash(const Trace &trace);

/** On-disk warm-artifact store: one file per (key, trace) pair. */
class WarmArtifactStore
{
  public:
    /** Current on-disk format version; bumped on layout changes. */
    static constexpr uint32_t kFormatVersion = 1;

    /**
     * @param dir directory holding the artifacts (created
     *        best-effort on construction; if creation fails the
     *        store degrades to always-miss — callers wanting a
     *        hard error probe with dirWritable() first)
     * @param max_bytes total artifact byte cap enforced after each
     *        commit; 0 = unlimited
     */
    explicit WarmArtifactStore(std::string dir,
                               uint64_t max_bytes = 0);

    /**
     * Probes @p dir for use as an artifact directory: creates it if
     * missing, then creates and removes a probe file.
     * @return true when writable; otherwise @p why (if non-null)
     *         receives a human-readable reason.
     */
    static bool dirWritable(const std::string &dir,
                            std::string *why = nullptr);

    const std::string &dir() const { return dir_; }
    uint64_t maxBytes() const { return maxBytes_; }

    /** @return the artifact path for (@p key, @p trace_hash). */
    std::string pathFor(const std::string &key,
                        uint64_t trace_hash) const;

    /**
     * Loads the artifact for (@p key, @p trace_hash) into @p out,
     * whose snapshots are deserialized into cold machines built for
     * @p cfg (which must embody the same geometry the key encodes).
     *
     * @return true on a verified hit. On miss or any verification
     *         failure returns false and, when the file existed but
     *         was unusable, stores a reason in @p why (if non-null);
     *         a plain miss leaves @p why empty.
     */
    bool load(const std::string &key, uint64_t trace_hash,
              const SimConfig &cfg, SampledWarmState &out,
              std::string *why = nullptr) const;

    /**
     * Incremental artifact writer, hooked into the streaming warm
     * pass as its SnapshotObserver: each published snapshot is
     * serialized and appended on the spot. commit() publishes the
     * file atomically; destruction without commit() discards the
     * partial temp file (e.g. when an interval job threw).
     */
    class Writer : public SnapshotObserver
    {
      public:
        /** Opens a temp file for (@p key, @p trace_hash) under
         *  @p store; @p interval_ops / @p warmup_ops are the sample
         *  spec being warmed. Check failed() before streaming. */
        Writer(WarmArtifactStore &store, std::string key,
               uint64_t trace_hash, uint64_t interval_ops,
               uint64_t warmup_ops);
        ~Writer() override;

        Writer(const Writer &) = delete;
        Writer &operator=(const Writer &) = delete;

        /** Serializes and appends snapshot @p k. */
        void onSnapshot(size_t k, const MachineSnapshot &snap)
            override;

        /** @return true when any write so far failed (disk full,
         *  permission change); commit() will refuse. */
        bool failed() const { return failed_; }

        /**
         * Seals the payload (checksum + snapshot count), publishes
         * the temp file under its final name with an atomic rename,
         * and applies the store's eviction cap.
         * @return false (removing the temp file) on any I/O error.
         */
        bool commit();

      private:
        /** Appends @p bytes to the temp file and the checksum. */
        void append(const std::string &bytes);

        WarmArtifactStore &store_;
        std::string key_;
        uint64_t traceHash_;
        std::string finalPath_;
        std::string tmpPath_;
        std::ofstream out_;
        Fnv1a checksum_;
        uint64_t count_ = 0;
        bool failed_ = false;
        bool committed_ = false;
    };

    /**
     * One-shot convenience over Writer: persists an already-built
     * @p warm for (@p key, @p trace_hash). @return false on I/O
     * failure (the store is best-effort; callers proceed regardless).
     */
    bool save(const std::string &key, uint64_t trace_hash,
              const SampledWarmState &warm);

  private:
    /** Deletes oldest-modified artifacts until the directory is
     *  within maxBytes_, never touching @p spare. Serialized by
     *  evictM_ — concurrent commits would otherwise race the
     *  directory scan against each other's removals and could both
     *  overshoot and double-count freed bytes. */
    void evictToCap(const std::string &spare) const
        CRISP_EXCLUDES(evictM_);

    std::string dir_;
    uint64_t maxBytes_;
    /** Guards the scan-and-remove in evictToCap (file I/O itself is
     *  atomic-rename safe; only the eviction accounting races). */
    mutable Mutex evictM_;
};

} // namespace crisp

#endif // CRISP_SIM_WARM_STORE_H
