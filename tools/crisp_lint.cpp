/**
 * @file
 * crisp_lint: the repo's static concurrency checker (DESIGN.md §16).
 *
 *   crisp_lint [--compile-commands FILE] [FILE...]
 *   crisp_lint --list-rules
 *
 * With --compile-commands, lints every first-party source named by
 * the compile database (plus sibling headers). Explicit FILE
 * arguments are linted as given; both may be combined.
 *
 * Exit status: 0 = clean, 1 = findings reported, 2 = usage or I/O
 * error (unreadable compile database, no inputs).
 */

#include <cstdio>
#include <string>
#include <vector>

#include "lint/lint.h"

namespace
{

int
usage(const char *argv0)
{
    std::fprintf(
        stderr,
        "usage: %s [--compile-commands FILE] [FILE...]\n"
        "       %s --list-rules\n",
        argv0, argv0);
    return 2;
}

} // namespace

int
main(int argc, char **argv)
{
    std::vector<std::string> files;
    std::string database;

    for (int i = 1; i < argc; ++i) {
        std::string arg = argv[i];
        if (arg == "--list-rules") {
            for (const std::string &r : crisp::lint::ruleNames())
                std::printf("%s\n", r.c_str());
            return 0;
        }
        if (arg == "--compile-commands") {
            if (i + 1 >= argc)
                return usage(argv[0]);
            database = argv[++i];
            continue;
        }
        if (arg == "--help" || arg == "-h")
            return usage(argv[0]);
        if (!arg.empty() && arg[0] == '-')
            return usage(argv[0]);
        files.push_back(arg);
    }

    if (!database.empty()) {
        std::string error;
        if (!crisp::lint::filesFromCompileCommands(database, files,
                                                   &error)) {
            std::fprintf(stderr, "crisp_lint: %s\n", error.c_str());
            return 2;
        }
    }
    if (files.empty())
        return usage(argv[0]);

    size_t findings = 0;
    bool ioError = false;
    for (const std::string &f : files) {
        for (const crisp::lint::Diagnostic &d :
             crisp::lint::lintFile(f)) {
            std::printf("%s\n",
                        crisp::lint::formatDiagnostic(d).c_str());
            if (d.rule == "io-error")
                ioError = true;
            else
                ++findings;
        }
    }
    if (ioError)
        return 2;
    if (findings) {
        std::fprintf(stderr,
                     "crisp_lint: %zu finding%s in %zu file%s\n",
                     findings, findings == 1 ? "" : "s",
                     files.size(), files.size() == 1 ? "" : "s");
        return 1;
    }
    return 0;
}
