/**
 * @file
 * crisp_serve: the long-running sweep daemon (DESIGN.md §15).
 *
 * Boots a SweepServer on a unix domain socket and serves newline-
 * delimited JSON requests until a shutdown op (or SIGINT/SIGTERM)
 * lands. All jobs share one ArtifactCache — and, with
 * --artifact-dir, one on-disk warm store — so repeated sweeps over
 * the same workloads pay the artifact cost once per daemon, not
 * once per invocation.
 *
 *   crisp_serve --socket /tmp/crisp.sock --jobs 4 \
 *               --result-dir results/ --artifact-dir warm/
 *
 * Drive it with crisp_submit (or any NDJSON-speaking client); read
 * the per-job result layout back with crisp_report --from-server.
 */

#include <csignal>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>

#include "serve/server.h"
#include "serve/transport.h"
#include "sim/warm_store.h"

namespace
{

crisp::ServeListener *g_listener = nullptr;

void
onSignal(int)
{
    // Async-signal-safe: just wake the accept loop; the main thread
    // performs the orderly shutdown.
    if (g_listener)
        g_listener->stop();
}

void
usage()
{
    std::printf(
        "usage: crisp_serve --socket PATH [options]\n"
        "\n"
        "  --socket PATH           unix socket to listen on "
        "(required)\n"
        "  --jobs N                worker count (default: hardware "
        "concurrency)\n"
        "  --queue-capacity N      submit backpressure bound "
        "(default 64)\n"
        "  --timeout-ms N          default per-attempt job timeout "
        "(0 = none)\n"
        "  --max-retries N         default retries after "
        "timeout/deadlock (default 2)\n"
        "  --retry-backoff-ms N    first retry backoff, doubling "
        "(default 100)\n"
        "  --result-dir DIR        write <job>.json + "
        "manifest.ndjson per job\n"
        "  --artifact-dir DIR      persistent warm-artifact store "
        "(DESIGN.md §14)\n"
        "  --artifact-max-bytes N  warm-store byte cap (0 = "
        "unlimited)\n"
        "  --trace-runtime         record a host-runtime span trace "
        "(Chrome\n"
        "                          trace-event JSON) for the "
        "daemon's life;\n"
        "                          retrieve it with the trace op "
        "(whole trace\n"
        "                          or filtered to one job ID)\n"
        "  --help                  this text\n"
        "\n"
        "Protocol (one JSON object per line; see DESIGN.md §15):\n"
        "  {\"op\":\"submit\",\"proto\":1,\"workloads\":[...],"
        "\"variants\":[...],...}\n"
        "  {\"op\":\"status\"} {\"op\":\"stream\",\"job\":\"j-...\"}"
        " {\"op\":\"cancel\",\"jobs\":[...]}\n"
        "  {\"op\":\"drain\"} {\"op\":\"metrics\"} "
        "{\"op\":\"trace\",\"job\":\"j-...\"}\n"
        "  {\"op\":\"shutdown\",\"drain\":true}\n");
}

bool
parseUnsigned(const char *s, uint64_t &out)
{
    char *end = nullptr;
    unsigned long long v = std::strtoull(s, &end, 10);
    if (!end || *end != '\0')
        return false;
    out = v;
    return true;
}

} // namespace

int
main(int argc, char **argv)
{
    crisp::ServeConfig cfg;
    std::string socketPath;

    for (int i = 1; i < argc; ++i) {
        std::string arg = argv[i];
        auto value = [&](uint64_t &out) {
            if (i + 1 >= argc || !parseUnsigned(argv[i + 1], out)) {
                std::fprintf(stderr,
                             "crisp_serve: %s needs a numeric "
                             "value\n",
                             arg.c_str());
                return false;
            }
            ++i;
            return true;
        };
        if (arg == "--help" || arg == "-h") {
            usage();
            return 0;
        } else if (arg == "--socket") {
            if (i + 1 >= argc) {
                std::fprintf(stderr,
                             "crisp_serve: --socket needs a path\n");
                return 2;
            }
            socketPath = argv[++i];
        } else if (arg == "--result-dir") {
            if (i + 1 >= argc) {
                std::fprintf(
                    stderr,
                    "crisp_serve: --result-dir needs a path\n");
                return 2;
            }
            cfg.resultDir = argv[++i];
        } else if (arg == "--artifact-dir") {
            if (i + 1 >= argc) {
                std::fprintf(
                    stderr,
                    "crisp_serve: --artifact-dir needs a path\n");
                return 2;
            }
            cfg.artifactDir = argv[++i];
        } else if (arg == "--jobs") {
            uint64_t v = 0;
            if (!value(v))
                return 2;
            cfg.jobs = unsigned(v);
        } else if (arg == "--queue-capacity") {
            uint64_t v = 0;
            if (!value(v))
                return 2;
            cfg.queueCapacity = size_t(v);
        } else if (arg == "--timeout-ms") {
            if (!value(cfg.defaultTimeoutMs))
                return 2;
        } else if (arg == "--max-retries") {
            uint64_t v = 0;
            if (!value(v))
                return 2;
            cfg.defaultMaxRetries = int(v);
        } else if (arg == "--retry-backoff-ms") {
            if (!value(cfg.retryBackoffMs))
                return 2;
        } else if (arg == "--artifact-max-bytes") {
            if (!value(cfg.artifactMaxBytes))
                return 2;
        } else if (arg == "--trace-runtime") {
            cfg.traceRuntime = true;
        } else {
            std::fprintf(stderr, "crisp_serve: unknown flag %s\n",
                         arg.c_str());
            usage();
            return 2;
        }
    }
    if (socketPath.empty()) {
        std::fprintf(stderr, "crisp_serve: --socket is required\n");
        usage();
        return 2;
    }
    if (!cfg.artifactDir.empty()) {
        std::string why;
        if (!crisp::WarmArtifactStore::dirWritable(cfg.artifactDir,
                                                   &why)) {
            std::fprintf(stderr,
                         "crisp_serve: --artifact-dir: %s\n",
                         why.c_str());
            return 2;
        }
    }

    crisp::SweepServer server(cfg);
    crisp::ServeListener listener(server, socketPath);
    std::string err;
    if (!listener.open(&err)) {
        std::fprintf(stderr, "crisp_serve: %s\n", err.c_str());
        return 2;
    }
    server.start();

    g_listener = &listener;
    struct sigaction sa;
    std::memset(&sa, 0, sizeof(sa));
    sa.sa_handler = onSignal;
    sigaction(SIGINT, &sa, nullptr);
    sigaction(SIGTERM, &sa, nullptr);
    signal(SIGPIPE, SIG_IGN); // broken clients must not kill us

    std::printf("crisp_serve: listening on %s (%u workers, queue "
                "%zu)\n",
                socketPath.c_str(),
                cfg.jobs ? cfg.jobs
                         : crisp::ThreadPool::defaultJobs(),
                cfg.queueCapacity);
    std::fflush(stdout);

    listener.run(); // until shutdown op or signal
    g_listener = nullptr;

    // Signal-initiated exit: the shutdown op already stopped the
    // server; a signal has not. shutdown() is idempotent either way.
    server.shutdown(false);
    std::printf("crisp_serve: shut down\n");
    return 0;
}
