/**
 * @file
 * crisp_report: run-diff regression reports over telemetry exports.
 *
 * Takes two `--stats-json` documents (or any JSON the StatRegistry /
 * bench gates emit — BENCH_cpi_stack.json works the same way),
 * flattens each to dotted-path metrics, and renders a markdown report
 * of their differences: aggregate IPC movement, per-metric deltas
 * against a threshold, a CPI-stack waterfall and the top
 * regressed/improved per-PC attributions.
 *
 * The two sides may be different files (last PR vs this PR) or two
 * namespaces of the *same* file selected with --prefix-a/--prefix-b
 * (baseline ooo vs crisp inside one crisp_sim export) — the latter is
 * how CI gates "crisp must not regress against its own baseline".
 *
 *   crisp_report stats.json stats.json --prefix-a ooo \
 *       --prefix-b crisp --fail-below -1.0 -o report.md
 *
 * With --from-server DIR the inputs may instead name jobs from a
 * crisp_serve result directory (manifest.ndjson + <job>.json, see
 * DESIGN.md §15) as workload/variant selectors; each side's prefix
 * defaults to that variant's registry label:
 *
 *   crisp_report --from-server results/ \
 *       pointer_chase/ooo pointer_chase/crisp --fail-below -1.0
 *
 * Exit status: 0 = pass, 1 = the --fail-below gate tripped,
 * 2 = usage or input error.
 */

#include <algorithm>
#include <cctype>
#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <map>
#include <sstream>
#include <string>
#include <vector>

#include <filesystem>

#include "sim/stats.h"
#include "telemetry/cpi_stack.h"
#include "telemetry/json.h"

using namespace crisp;

namespace
{

struct Options
{
    std::string fileA, fileB;
    std::string prefixA, prefixB;
    std::string labelA, labelB;
    std::string outPath;
    std::string serverDir; ///< crisp_serve result dir (may be empty)
    double threshold = 1.0;  ///< per-metric report threshold, %
    double failBelow = 0.0;  ///< aggregate IPC gate, %
    bool gate = false;       ///< --fail-below given
    bool flattenIntervals = false; ///< fold interval<k>. segments
    uint64_t top = 20;       ///< max rows per section
    std::string error;

    bool ok() const { return error.empty(); }
};

const char *kUsage =
    "usage: crisp_report A.json B.json [options]\n"
    "  --from-server DIR\n"
    "                   resolve inputs through a crisp_serve result\n"
    "                   directory: an input of the form\n"
    "                   workload/variant is looked up in DIR's\n"
    "                   manifest.ndjson and replaced by that job's\n"
    "                   result file (its registry label becomes the\n"
    "                   side's default prefix); other inputs stay\n"
    "                   plain file paths\n"
    "  --prefix-a P     keep only A-metrics under namespace P\n"
    "  --prefix-b P     keep only B-metrics under namespace P\n"
    "  --label-a NAME   report label for side A (default: prefix\n"
    "                   or file name)\n"
    "  --label-b NAME   report label for side B\n"
    "  --threshold PCT  per-metric delta worth reporting\n"
    "                   (default 1.0)\n"
    "  --fail-below PCT exit 1 when the aggregate IPC delta (%%)\n"
    "                   falls below PCT (e.g. -1.0 = fail on >1%%\n"
    "                   regression)\n"
    "  --top N          max rows per report section (default 20)\n"
    "  --flatten-intervals\n"
    "                   fold sampled-run per-interval metrics\n"
    "                   (…interval<k>.…) into whole-run paths:\n"
    "                   counters sum, ratio metrics (ipc, mpki,\n"
    "                   miss_ratio, fractions, avg_latency) are\n"
    "                   recomputed from the sums, non-recomputable\n"
    "                   scalars are dropped. Stitched totals already\n"
    "                   present win over folded sums. Lets a sampled\n"
    "                   export diff directly against a full run.\n"
    "  -o FILE          also write the markdown report to FILE\n";

Options
parseArgs(const std::vector<std::string> &args)
{
    Options opt;
    std::vector<std::string> positional;
    for (size_t i = 0; i < args.size(); ++i) {
        const std::string &a = args[i];
        auto need_value = [&](const char *flag) -> const char * {
            if (i + 1 >= args.size()) {
                opt.error = std::string(flag) + " requires a value";
                return nullptr;
            }
            return args[++i].c_str();
        };
        auto need_double = [&](const char *flag, double &out) {
            const char *v = need_value(flag);
            if (!v)
                return;
            char *end = nullptr;
            out = std::strtod(v, &end);
            if (end == v || *end != '\0')
                opt.error = std::string(flag) +
                            " expects a number, got '" + v + "'";
        };
        if (a == "--from-server") {
            if (const char *v = need_value("--from-server"))
                opt.serverDir = v;
        } else if (a == "--prefix-a") {
            if (const char *v = need_value("--prefix-a"))
                opt.prefixA = v;
        } else if (a == "--prefix-b") {
            if (const char *v = need_value("--prefix-b"))
                opt.prefixB = v;
        } else if (a == "--label-a") {
            if (const char *v = need_value("--label-a"))
                opt.labelA = v;
        } else if (a == "--label-b") {
            if (const char *v = need_value("--label-b"))
                opt.labelB = v;
        } else if (a == "--threshold") {
            need_double("--threshold", opt.threshold);
        } else if (a == "--fail-below") {
            need_double("--fail-below", opt.failBelow);
            opt.gate = true;
        } else if (a == "--top") {
            const char *v = need_value("--top");
            if (!v)
                continue;
            char *end = nullptr;
            unsigned long long n = std::strtoull(v, &end, 10);
            if (end == v || *end != '\0' || n == 0)
                opt.error = "--top expects a positive integer, "
                            "got '" + std::string(v) + "'";
            opt.top = n;
        } else if (a == "--flatten-intervals") {
            opt.flattenIntervals = true;
        } else if (a == "-o" || a == "--output") {
            if (const char *v = need_value("-o"))
                opt.outPath = v;
        } else if (!a.empty() && a[0] == '-') {
            opt.error = "unknown flag '" + a + "'";
        } else {
            positional.push_back(a);
        }
        if (!opt.ok())
            return opt;
    }
    if (positional.size() != 2) {
        opt.error = "expected exactly two input files";
        return opt;
    }
    opt.fileA = positional[0];
    opt.fileB = positional[1];
    if (opt.labelA.empty())
        opt.labelA = opt.prefixA.empty() ? opt.fileA : opt.prefixA;
    if (opt.labelB.empty())
        opt.labelB = opt.prefixB.empty() ? opt.fileB : opt.prefixB;
    return opt;
}

using MetricMap = std::map<std::string, double>;

/** One job row from a crisp_serve result manifest. */
struct ServerJob
{
    std::string file;  ///< result file name ("" unless done)
    std::string state; ///< terminal state ("done", "failed", ...)
    std::string label; ///< registry label ("ooo", "crisp", "ibda")
};

/**
 * Loads DIR/manifest.ndjson (the crisp_serve per-job result layout,
 * DESIGN.md §15) into a "workload/variant" -> job map. A job that
 * was re-run appends a newer manifest row; the last row wins.
 */
bool
loadManifest(const std::string &dir,
             std::map<std::string, ServerJob> &out,
             std::string &error)
{
    std::filesystem::path path =
        std::filesystem::path(dir) / "manifest.ndjson";
    std::ifstream is(path);
    if (!is) {
        error = "cannot open " + path.string();
        return false;
    }
    std::string line;
    while (std::getline(is, line)) {
        if (line.empty())
            continue;
        JsonValue row;
        if (!parseJson(line, row, &error)) {
            error = path.string() + ": " + error;
            return false;
        }
        if (!row.isObject() || !row.has("workload") ||
            !row.has("variant") || !row.has("state"))
            continue;
        const std::string variant = row.at("variant").text;
        ServerJob job;
        job.state = row.at("state").text;
        if (row.has("file"))
            job.file = row.at("file").text;
        job.label =
            variant.rfind("ibda-", 0) == 0 ? "ibda" : variant;
        out[row.at("workload").text + "/" + variant] =
            std::move(job);
    }
    if (out.empty()) {
        error = path.string() + ": no job rows";
        return false;
    }
    return true;
}

/**
 * Rewrites one input through the server manifest: a
 * "workload/variant" selector becomes the job's result-file path,
 * and an unset @p prefix becomes the variant's registry label.
 * Inputs naming an existing file pass through untouched.
 */
bool
resolveServerInput(const std::map<std::string, ServerJob> &manifest,
                   const std::string &dir, std::string &file,
                   std::string &prefix, std::string &error)
{
    auto it = manifest.find(file);
    if (it == manifest.end()) {
        if (std::filesystem::exists(file))
            return true; // a plain file mixed into the comparison
        error = "no job '" + file + "' in " + dir +
                "/manifest.ndjson (and no such file)";
        return false;
    }
    const ServerJob &job = it->second;
    if (job.state != "done" || job.file.empty()) {
        error = "job '" + file + "' is " + job.state +
                "; it has no result file";
        return false;
    }
    if (prefix.empty())
        prefix = job.label;
    file = (std::filesystem::path(dir) / job.file).string();
    return true;
}

/** @return true when @p v looks like a StatRegistry table export. */
bool
isTable(const JsonValue &v)
{
    return v.isObject() && v.members.size() == 2 &&
           v.has("columns") && v.has("rows") &&
           v.at("columns").isArray() && v.at("rows").isArray();
}

/**
 * Flattens @p v into dotted-path leaves. Numbers become metrics;
 * tables expand to path.<first-column-value>.<column>; strings,
 * booleans and plain arrays (histogram buckets) are skipped.
 */
void
flatten(const JsonValue &v, const std::string &path, MetricMap &out)
{
    if (v.isNumber()) {
        if (!path.empty())
            out[path] = v.number;
        return;
    }
    if (isTable(v)) {
        const auto &cols = v.at("columns").elements;
        for (const JsonValue &row : v.at("rows").elements) {
            if (!row.isArray() || row.elements.empty() ||
                !row.elements[0].isNumber())
                continue;
            std::string key =
                path + "." + jsonNumber(row.elements[0].number);
            for (size_t c = 1; c < row.elements.size() &&
                               c < cols.size();
                 ++c)
                if (row.elements[c].isNumber())
                    out[key + "." + cols[c].text] =
                        row.elements[c].number;
        }
        return;
    }
    if (v.isObject())
        for (const auto &[key, member] : v.members)
            flatten(member, path.empty() ? key : path + "." + key,
                    out);
}

/** Keeps only metrics under @p prefix, stripping it. */
MetricMap
selectPrefix(const MetricMap &in, const std::string &prefix)
{
    if (prefix.empty())
        return in;
    MetricMap out;
    std::string stem = prefix + ".";
    for (const auto &[path, value] : in)
        if (path.compare(0, stem.size(), stem) == 0)
            out[path.substr(stem.size())] = value;
    return out;
}

bool
endsWith(const std::string &s, const std::string &suffix)
{
    return s.size() >= suffix.size() &&
           s.compare(s.size() - suffix.size(), suffix.size(),
                     suffix) == 0;
}

/**
 * Finds an "interval<k>." path segment (whole segment: preceded by
 * start-of-path or '.', digits, trailing '.'). @p len receives the
 * segment length including the trailing dot.
 * @return the segment's start offset, or npos.
 */
size_t
findIntervalSegment(const std::string &path, size_t &len)
{
    size_t pos = 0;
    static const std::string kStem = "interval";
    while ((pos = path.find(kStem, pos)) != std::string::npos) {
        if (pos == 0 || path[pos - 1] == '.') {
            size_t d = pos + kStem.size();
            size_t e = d;
            while (e < path.size() &&
                   std::isdigit(static_cast<unsigned char>(path[e])))
                ++e;
            if (e > d && e < path.size() && path[e] == '.') {
                len = e + 1 - pos;
                return pos;
            }
        }
        pos += kStem.size();
    }
    return std::string::npos;
}

/**
 * Folds sampled-run per-interval metrics into whole-run paths so a
 * sampled export diffs directly against a full run: every metric with
 * an `interval<k>.` segment is summed across intervals into the path
 * with the segment removed. A path already present without the
 * segment (crisp_sim exports the stitched totals alongside the
 * intervals) wins over the folded sum. Among folded-only paths, pure
 * counters are correct as sums; ratio metrics are recomputed from
 * their summed inputs; histogram mean/percentile scalars, which are
 * not recoverable from sums, are dropped.
 */
MetricMap
flattenIntervals(const MetricMap &in)
{
    MetricMap out, folded;
    for (const auto &[path, value] : in) {
        size_t len = 0;
        size_t pos = findIntervalSegment(path, len);
        if (pos == std::string::npos)
            out[path] = value;
        else
            folded[path.substr(0, pos) + path.substr(pos + len)] +=
                value;
    }

    // 0/0 ratios fold to 0, matching the simulator's own convention.
    auto lookup = [&](const std::string &path) {
        auto it = folded.find(path);
        return it != folded.end() ? it->second : 0.0;
    };
    auto ratio = [](double num, double den) {
        return den != 0.0 ? num / den : 0.0;
    };
    for (const auto &[path, value] : folded) {
        if (out.count(path))
            continue; // exact stitched total beats the folded sum
        double v = value;
        // chop(suffix) = the path with that suffix removed.
        auto chop = [&, p = path](const std::string &sfx) {
            return p.substr(0, p.size() - sfx.size());
        };
        if (endsWith(path, ".core.ipc")) {
            std::string core = chop("ipc");
            v = ratio(lookup(core + "retired"),
                      lookup(core + "cycles"));
        } else if (endsWith(path, ".core.icache_mpki") ||
                   endsWith(path, ".core.llc_mpki")) {
            bool icache = endsWith(path, ".core.icache_mpki");
            std::string root =
                chop(icache ? "core.icache_mpki" : "core.llc_mpki");
            v = 1000.0 *
                ratio(lookup(root + (icache ? "cache.l1i.misses"
                                            : "cache.llc.misses")),
                      lookup(root + "core.retired"));
        } else if (endsWith(path, ".miss_ratio")) {
            std::string cache = chop("miss_ratio");
            v = ratio(lookup(cache + "misses"),
                      lookup(cache + "accesses"));
        } else if (endsWith(path, ".avg_latency")) {
            std::string dram = chop("avg_latency");
            v = ratio(lookup(dram + "total_latency"),
                      lookup(dram + "reads"));
        } else if (endsWith(path, "_fraction")) {
            std::string bucket = chop("_fraction");
            size_t dot = bucket.rfind('.');
            std::string stack =
                dot == std::string::npos ? "" : bucket.substr(0, dot + 1);
            v = ratio(lookup(bucket), lookup(stack + "total"));
        } else if (endsWith(path, ".mean") || endsWith(path, ".p50") ||
                   endsWith(path, ".p90") || endsWith(path, ".p95") ||
                   endsWith(path, ".p99")) {
            // Histogram summary scalars: drop when the sibling count
            // marks this as a histogram export.
            std::string hist = path.substr(0, path.rfind('.') + 1);
            if (folded.count(hist + "count"))
                continue;
        }
        out[path] = v;
    }
    return out;
}

/** Loads, parses, flattens and prefix-selects one input file. */
bool
loadMetrics(const std::string &file, const std::string &prefix,
            MetricMap &out, std::string &error, bool fold_intervals)
{
    std::ifstream is(file);
    if (!is) {
        error = "cannot open " + file;
        return false;
    }
    std::ostringstream text;
    text << is.rdbuf();
    JsonValue doc;
    if (!parseJson(text.str(), doc, &error)) {
        error = file + ": " + error;
        return false;
    }
    MetricMap all;
    flatten(doc, "", all);
    if (fold_intervals)
        all = flattenIntervals(all);
    out = selectPrefix(all, prefix);
    if (out.empty()) {
        error = file + ": no numeric metrics" +
                (prefix.empty() ? "" : " under prefix '" + prefix +
                                           "'");
        return false;
    }
    return true;
}

/** One metric present on both sides. */
struct Delta
{
    std::string path;
    double a = 0, b = 0;

    double abs() const { return b - a; }
    /** Relative delta in percent; 0 when both sides are 0, huge when
     *  only A is 0 (a metric appearing from nothing). */
    double pct() const
    {
        if (a != 0)
            return (b / a - 1.0) * 100.0;
        return b == 0 ? 0.0 : 1e99;
    }
};

std::string
fmtValue(double v)
{
    return jsonNumber(std::round(v * 10000.0) / 10000.0);
}

std::string
fmtPct(double pct)
{
    if (pct >= 1e98)
        return "n/a";
    char buf[32];
    std::snprintf(buf, sizeof(buf), "%+.2f%%", pct);
    return buf;
}

/** ASCII bar proportional to value/scale, up to 20 cells. */
std::string
bar(double value, double scale)
{
    if (scale <= 0)
        return "";
    int cells = int(std::lround(20.0 * value / scale));
    return std::string(size_t(std::max(cells, 0)), '#');
}

/** True for per-PC table rows, which get their own report section. */
bool
isPerPcPath(const std::string &path)
{
    return path.find("head_stall_by_static.") != std::string::npos ||
           path.find("issue_wait_by_static.") != std::string::npos ||
           path.find("profile.loads.") != std::string::npos ||
           path.find("profile.branches.") != std::string::npos ||
           path.find("profile.decisions.") != std::string::npos;
}

/**
 * Aggregate speed movement in percent: geomean of the B/A IPC ratios
 * when any `.ipc` metrics exist, otherwise geomean of the A/B cycle
 * ratios (fewer cycles = faster). @p basis receives a description of
 * which metrics fed the aggregate.
 */
double
aggregateDelta(const std::vector<Delta> &deltas, std::string &basis)
{
    std::vector<double> ratios;
    for (const Delta &d : deltas)
        if ((d.path == "ipc" || endsWith(d.path, ".ipc")) &&
            d.a > 0 && d.b > 0)
            ratios.push_back(d.b / d.a);
    if (!ratios.empty()) {
        basis = std::to_string(ratios.size()) + " IPC metric" +
                (ratios.size() == 1 ? "" : "s");
        return (geomean(ratios) - 1.0) * 100.0;
    }
    for (const Delta &d : deltas)
        if ((d.path == "cycles" || endsWith(d.path, ".cycles")) &&
            !isPerPcPath(d.path) && d.a > 0 && d.b > 0)
            ratios.push_back(d.a / d.b);
    if (!ratios.empty()) {
        basis = std::to_string(ratios.size()) +
                " cycle metric" + (ratios.size() == 1 ? "" : "s") +
                " (inverted)";
        return (geomean(ratios) - 1.0) * 100.0;
    }
    basis = "no IPC or cycle metrics";
    return 0.0;
}

std::string
buildReport(const Options &opt, const MetricMap &ma,
            const MetricMap &mb, double &agg_delta)
{
    std::vector<Delta> deltas;
    size_t only_a = 0, only_b = 0;
    for (const auto &[path, value] : ma) {
        auto it = mb.find(path);
        if (it == mb.end())
            ++only_a;
        else
            deltas.push_back({path, value, it->second});
    }
    for (const auto &[path, value] : mb)
        if (!ma.count(path))
            ++only_b;

    std::string basis;
    agg_delta = aggregateDelta(deltas, basis);

    std::ostringstream md;
    md << "# crisp_report: " << opt.labelA << " vs " << opt.labelB
       << "\n\n";
    md << "- A: `" << opt.fileA << "`";
    if (!opt.prefixA.empty())
        md << " (prefix `" << opt.prefixA << "`)";
    md << " — " << opt.labelA << "\n";
    md << "- B: `" << opt.fileB << "`";
    if (!opt.prefixB.empty())
        md << " (prefix `" << opt.prefixB << "`)";
    md << " — " << opt.labelB << "\n";
    md << "- metrics compared: " << deltas.size() << " common, "
       << only_a << " only in A, " << only_b << " only in B\n";
    md << "- aggregate IPC delta (B vs A): **" << fmtPct(agg_delta)
       << "** over " << basis << "\n";
    if (opt.gate) {
        bool pass = agg_delta >= opt.failBelow;
        md << "- gate `--fail-below " << fmtValue(opt.failBelow)
           << "`: " << (pass ? "**PASS**" : "**FAIL**") << "\n";
    }
    md << "\n";

    // Aggregate table: every IPC metric side by side.
    {
        std::vector<const Delta *> rows;
        for (const Delta &d : deltas)
            if (d.path == "ipc" || endsWith(d.path, ".ipc"))
                rows.push_back(&d);
        if (!rows.empty()) {
            md << "## Aggregate\n\n";
            md << "| metric | " << opt.labelA << " | " << opt.labelB
               << " | delta |\n";
            md << "|---|---:|---:|---:|\n";
            for (const Delta *d : rows)
                md << "| `" << d->path << "` | " << fmtValue(d->a)
                   << " | " << fmtValue(d->b) << " | "
                   << fmtPct(d->pct()) << " |\n";
            md << "\n";
        }
    }

    // CPI-stack waterfall over whichever cpi.* buckets both sides
    // carry (absolute cycles, with a share bar for side B).
    {
        std::vector<const Delta *> rows;
        double scale = 0;
        for (const Delta &d : deltas) {
            for (size_t b = 0; b < kNumCpiBuckets; ++b) {
                std::string name = cpiBucketName(CpiBucket(b));
                if (endsWith(d.path, "cpi." + name) ||
                    d.path == "cpi." + name || d.path == name) {
                    rows.push_back(&d);
                    scale = std::max(scale, std::max(d.a, d.b));
                }
            }
        }
        if (!rows.empty()) {
            md << "## CPI stack\n\n";
            md << "| bucket | " << opt.labelA << " | " << opt.labelB
               << " | delta | delta% | " << opt.labelB << " |\n";
            md << "|---|---:|---:|---:|---:|:---|\n";
            for (const Delta *d : rows)
                md << "| `" << d->path << "` | " << fmtValue(d->a)
                   << " | " << fmtValue(d->b) << " | "
                   << fmtValue(d->abs()) << " | "
                   << fmtPct(d->pct()) << " | "
                   << bar(d->b, scale) << " |\n";
            md << "\n";
        }
    }

    // Per-metric deltas above the report threshold, largest first.
    {
        std::vector<const Delta *> rows;
        for (const Delta &d : deltas)
            if (!isPerPcPath(d.path) &&
                std::fabs(d.pct()) >= opt.threshold)
                rows.push_back(&d);
        std::stable_sort(rows.begin(), rows.end(),
                         [](const Delta *x, const Delta *y) {
                             return std::fabs(x->pct()) >
                                    std::fabs(y->pct());
                         });
        if (rows.size() > opt.top)
            rows.resize(size_t(opt.top));
        md << "## Metric deltas (|delta| >= "
           << fmtValue(opt.threshold) << "%, top "
           << opt.top << ")\n\n";
        if (rows.empty()) {
            md << "No metric moved by more than "
               << fmtValue(opt.threshold) << "%.\n\n";
        } else {
            md << "| metric | " << opt.labelA << " | " << opt.labelB
               << " | delta% |\n";
            md << "|---|---:|---:|---:|\n";
            for (const Delta *d : rows)
                md << "| `" << d->path << "` | " << fmtValue(d->a)
                   << " | " << fmtValue(d->b) << " | "
                   << fmtPct(d->pct()) << " |\n";
            md << "\n";
        }
    }

    // Per-PC attribution movement: stall/wait cycles per static
    // instruction or PC, split into regressions and improvements.
    {
        std::vector<const Delta *> rows;
        for (const Delta &d : deltas)
            if (isPerPcPath(d.path) &&
                (endsWith(d.path, ".cycles") ||
                 endsWith(d.path, ".wait_cycles") ||
                 endsWith(d.path, ".lead_cycles")) &&
                d.abs() != 0)
                rows.push_back(&d);
        std::stable_sort(rows.begin(), rows.end(),
                         [](const Delta *x, const Delta *y) {
                             return std::fabs(x->abs()) >
                                    std::fabs(y->abs());
                         });
        auto emitSide = [&](const char *title, bool regressed) {
            std::vector<const Delta *> side;
            for (const Delta *d : rows) {
                if ((d->abs() > 0) == regressed)
                    side.push_back(d);
                if (side.size() >= opt.top)
                    break;
            }
            if (side.empty())
                return;
            md << "### " << title << "\n\n";
            md << "| metric | " << opt.labelA << " | " << opt.labelB
               << " | delta cycles |\n";
            md << "|---|---:|---:|---:|\n";
            for (const Delta *d : side)
                md << "| `" << d->path << "` | " << fmtValue(d->a)
                   << " | " << fmtValue(d->b) << " | "
                   << fmtValue(d->abs()) << " |\n";
            md << "\n";
        };
        if (!rows.empty()) {
            md << "## Per-PC attribution\n\n";
            emitSide("Top regressed PCs (more stall/wait cycles)",
                     true);
            emitSide("Top improved PCs (fewer stall/wait cycles)",
                     false);
        }
    }

    return md.str();
}

} // namespace

int
main(int argc, char **argv)
{
    std::vector<std::string> args(argv + 1, argv + argc);
    Options opt = parseArgs(args);
    if (!opt.ok()) {
        std::fprintf(stderr, "crisp_report: %s\n%s",
                     opt.error.c_str(), kUsage);
        return 2;
    }

    std::string error;
    if (!opt.serverDir.empty()) {
        std::map<std::string, ServerJob> manifest;
        if (!loadManifest(opt.serverDir, manifest, error) ||
            !resolveServerInput(manifest, opt.serverDir, opt.fileA,
                                opt.prefixA, error) ||
            !resolveServerInput(manifest, opt.serverDir, opt.fileB,
                                opt.prefixB, error)) {
            std::fprintf(stderr, "crisp_report: %s\n",
                         error.c_str());
            return 2;
        }
    }

    MetricMap ma, mb;
    if (!loadMetrics(opt.fileA, opt.prefixA, ma, error,
                     opt.flattenIntervals) ||
        !loadMetrics(opt.fileB, opt.prefixB, mb, error,
                     opt.flattenIntervals)) {
        std::fprintf(stderr, "crisp_report: %s\n", error.c_str());
        return 2;
    }

    double agg_delta = 0.0;
    std::string report = buildReport(opt, ma, mb, agg_delta);
    std::fputs(report.c_str(), stdout);

    if (!opt.outPath.empty()) {
        std::ofstream os(opt.outPath);
        os << report;
        if (!os) {
            std::fprintf(stderr, "crisp_report: failed to write %s\n",
                         opt.outPath.c_str());
            return 2;
        }
        std::fprintf(stderr, "report written to %s\n",
                     opt.outPath.c_str());
    }

    if (opt.gate && agg_delta < opt.failBelow) {
        std::fprintf(stderr,
                     "crisp_report: aggregate IPC delta %+.2f%% is "
                     "below the --fail-below gate %+.2f%%\n",
                     agg_delta, opt.failBelow);
        return 1;
    }
    return 0;
}
