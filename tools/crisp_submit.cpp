/**
 * @file
 * crisp_submit: command-line client for the crisp_serve daemon.
 *
 * Speaks the NDJSON protocol of DESIGN.md §15 over the daemon's
 * unix socket. Subcommands map one-to-one onto protocol ops:
 *
 *   crisp_submit --socket S submit --workloads mcf,bfs \
 *       --variants ooo,crisp --config "--sample 50000" \
 *       --train 200000 --ref 400000 --wait --out results/
 *   crisp_submit --socket S status [JOB...]
 *   crisp_submit --socket S cancel JOB...
 *   crisp_submit --socket S drain
 *   crisp_submit --socket S metrics
 *   crisp_submit --socket S shutdown [--no-drain]
 *
 * With --wait, submit streams every job to completion and exits
 * non-zero if any failed; with --out DIR it additionally writes each
 * finished job's full stats registry to DIR/<job>.json — the same
 * bytes crisp_sim --stats-json would have produced for that run.
 */

#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <filesystem>
#include <fstream>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include "serve/protocol.h"
#include "serve/transport.h"
#include "telemetry/json.h"

namespace
{

using crisp::JsonValue;

std::vector<std::string>
splitList(const std::string &s, char sep)
{
    std::vector<std::string> out;
    std::string cur;
    for (char c : s) {
        if (c == sep) {
            if (!cur.empty())
                out.push_back(cur);
            cur.clear();
        } else {
            cur += c;
        }
    }
    if (!cur.empty())
        out.push_back(cur);
    return out;
}

std::string
jsonStringArray(const std::vector<std::string> &v)
{
    std::string out = "[";
    for (size_t i = 0; i < v.size(); ++i) {
        if (i)
            out += ",";
        out += crisp::jsonQuote(v[i]);
    }
    return out + "]";
}

void
usage()
{
    std::printf(
        "usage: crisp_submit --socket PATH COMMAND [options]\n"
        "\n"
        "commands:\n"
        "  submit   --workloads A,B --variants ooo,crisp[,ibda-1K]\n"
        "           [--config \"--rob 192 ...\"]... (one job grid "
        "axis per flag)\n"
        "           [--train N] [--ref N] [--priority N]\n"
        "           [--timeout-ms N] [--max-retries N]\n"
        "           [--wait] [--out DIR]\n"
        "  status   [JOB...]\n"
        "  cancel   JOB...\n"
        "  drain\n"
        "  metrics  [--watch N]   (--watch: poll every N seconds "
        "and\n"
        "           delta-print throughput / queue depth / running "
        "until ^C)\n"
        "  trace    [JOB]         (server's host-runtime trace as "
        "Chrome\n"
        "           trace-event JSON on stdout; JOB filters to one "
        "job's\n"
        "           spans; needs a --trace-runtime server)\n"
        "  shutdown [--no-drain]\n");
}

/** One request -> one response line, parsed. Exits on I/O error. */
bool
roundTrip(crisp::ServeClient &client, const std::string &request,
          JsonValue &response)
{
    if (!client.sendLine(request)) {
        std::fprintf(stderr, "crisp_submit: connection lost\n");
        return false;
    }
    std::string line;
    if (!client.recvLine(line)) {
        std::fprintf(stderr, "crisp_submit: connection closed\n");
        return false;
    }
    std::string err;
    if (!crisp::parseJson(line, response, &err)) {
        std::fprintf(stderr,
                     "crisp_submit: bad response (%s): %s\n",
                     err.c_str(), line.c_str());
        return false;
    }
    return true;
}

bool
responseOk(const JsonValue &v)
{
    return v.isObject() && v.has("ok") &&
           v.at("ok").kind == JsonValue::Kind::Bool &&
           v.at("ok").boolean;
}

void
printServerError(const JsonValue &v)
{
    std::string msg = "unknown error";
    if (v.isObject() && v.has("error") && v.at("error").isString())
        msg = v.at("error").text;
    std::fprintf(stderr, "crisp_submit: server: %s\n", msg.c_str());
}

/**
 * Streams @p job to completion on its own connection, printing
 * progress events. @return 0 done, 1 not-done, 2 I/O error.
 * @param outDir when non-empty, the result registry JSON (unquoted
 *        from the wire string) lands in outDir/<job>.json
 */
int
streamJob(const std::string &socket, const std::string &job,
          const std::string &outDir)
{
    crisp::ServeClient client;
    std::string err;
    if (!client.connect(socket, &err)) {
        std::fprintf(stderr, "crisp_submit: %s\n", err.c_str());
        return 2;
    }
    if (!client.sendLine("{\"op\":\"stream\",\"job\":" +
                         crisp::jsonQuote(job) + "}"))
        return 2;
    std::string line;
    int rc = 1;
    while (client.recvLine(line)) {
        JsonValue ev;
        if (!crisp::parseJson(line, ev, nullptr) || !ev.isObject())
            continue;
        if (ev.has("error")) {
            printServerError(ev);
            return 1;
        }
        if (!ev.has("event") || !ev.at("event").isString())
            continue;
        const std::string kind = ev.at("event").text;
        if (kind == "state" || kind == "retry") {
            std::printf("%s: %s\n", job.c_str(), line.c_str());
        } else if (kind == "result") {
            bool ok = ev.has("ok") &&
                      ev.at("ok").kind == JsonValue::Kind::Bool &&
                      ev.at("ok").boolean;
            if (ok) {
                double ipc = ev.has("ipc") ? ev.at("ipc").number
                                           : 0.0;
                std::printf("%s: done ipc=%.4f\n", job.c_str(),
                            ipc);
                rc = 0;
                if (!outDir.empty() && ev.has("stats_json")) {
                    std::filesystem::create_directories(outDir);
                    std::ofstream os(
                        std::filesystem::path(outDir) /
                            (job + ".json"),
                        std::ios::trunc);
                    os << ev.at("stats_json").text;
                }
            } else {
                std::string why;
                if (ev.has("error"))
                    why = ev.at("error").text;
                std::string state = "failed";
                if (ev.has("state"))
                    state = ev.at("state").text;
                std::printf("%s: %s (%s)\n", job.c_str(),
                            state.c_str(), why.c_str());
            }
        } else if (kind == "end") {
            break;
        }
    }
    return rc;
}

int
cmdSubmit(const std::string &socket, int argc, char **argv, int i)
{
    std::vector<std::string> workloads, variants;
    std::vector<std::string> configs; // raw strings, tokenized below
    uint64_t trainOps = 0, refOps = 0, timeoutMs = 0;
    int priority = 0, maxRetries = -1;
    bool wait = false, haveTimeout = false;
    std::string outDir;
    for (; i < argc; ++i) {
        std::string arg = argv[i];
        auto str = [&](std::string &dst) {
            if (i + 1 >= argc) {
                std::fprintf(stderr,
                             "crisp_submit: %s needs a value\n",
                             arg.c_str());
                return false;
            }
            dst = argv[++i];
            return true;
        };
        auto num = [&](uint64_t &dst) {
            std::string s;
            if (!str(s))
                return false;
            dst = std::strtoull(s.c_str(), nullptr, 10);
            return true;
        };
        if (arg == "--workloads") {
            std::string s;
            if (!str(s))
                return 2;
            workloads = splitList(s, ',');
        } else if (arg == "--variants") {
            std::string s;
            if (!str(s))
                return 2;
            variants = splitList(s, ',');
        } else if (arg == "--config") {
            std::string s;
            if (!str(s))
                return 2;
            configs.push_back(s);
        } else if (arg == "--train") {
            if (!num(trainOps))
                return 2;
        } else if (arg == "--ref") {
            if (!num(refOps))
                return 2;
        } else if (arg == "--priority") {
            uint64_t v = 0;
            if (!num(v))
                return 2;
            priority = int(v);
        } else if (arg == "--timeout-ms") {
            if (!num(timeoutMs))
                return 2;
            haveTimeout = true;
        } else if (arg == "--max-retries") {
            uint64_t v = 0;
            if (!num(v))
                return 2;
            maxRetries = int(v);
        } else if (arg == "--wait") {
            wait = true;
        } else if (arg == "--out") {
            if (!str(outDir))
                return 2;
            wait = true; // results only exist once jobs finish
        } else {
            std::fprintf(stderr,
                         "crisp_submit: unknown submit flag %s\n",
                         arg.c_str());
            return 2;
        }
    }
    if (workloads.empty() || variants.empty()) {
        std::fprintf(stderr, "crisp_submit: submit needs "
                             "--workloads and --variants\n");
        return 2;
    }

    std::ostringstream req;
    req << "{\"op\":\"submit\",\"proto\":"
        << crisp::kServeProtoVersion
        << ",\"workloads\":" << jsonStringArray(workloads)
        << ",\"variants\":" << jsonStringArray(variants);
    if (!configs.empty()) {
        req << ",\"configs\":[";
        for (size_t c = 0; c < configs.size(); ++c) {
            if (c)
                req << ",";
            req << jsonStringArray(splitList(configs[c], ' '));
        }
        req << "]";
    }
    if (trainOps)
        req << ",\"train_ops\":" << trainOps;
    if (refOps)
        req << ",\"ref_ops\":" << refOps;
    if (priority)
        req << ",\"priority\":" << priority;
    if (haveTimeout)
        req << ",\"timeout_ms\":" << timeoutMs;
    if (maxRetries >= 0)
        req << ",\"max_retries\":" << maxRetries;
    req << "}";

    crisp::ServeClient client;
    std::string err;
    if (!client.connect(socket, &err)) {
        std::fprintf(stderr, "crisp_submit: %s\n", err.c_str());
        return 2;
    }
    JsonValue resp;
    if (!roundTrip(client, req.str(), resp))
        return 2;
    if (!responseOk(resp)) {
        printServerError(resp);
        return 1;
    }
    std::vector<std::string> jobIds;
    if (resp.has("jobs") && resp.at("jobs").isArray())
        for (const JsonValue &j : resp.at("jobs").elements)
            if (j.isObject() && j.has("id"))
                jobIds.push_back(j.at("id").text);
    std::printf("submitted %zu job(s)", jobIds.size());
    if (resp.has("deduped"))
        std::printf(" (%d shared with earlier submits)",
                    int(resp.at("deduped").number));
    std::printf("\n");
    for (const std::string &id : jobIds)
        std::printf("  %s\n", id.c_str());
    if (!wait)
        return 0;

    int rc = 0;
    for (const std::string &id : jobIds)
        if (streamJob(socket, id, outDir) != 0)
            rc = 1;
    if (!outDir.empty())
        std::printf("results in %s\n", outDir.c_str());
    return rc;
}

/** Walks a dotted path through nested JSON objects.
 *  @return the numeric leaf, or 0.0 when absent / non-numeric. */
double
numberAt(const JsonValue &root, const std::string &path)
{
    const JsonValue *v = &root;
    size_t pos = 0;
    for (;;) {
        size_t dot = path.find('.', pos);
        std::string seg =
            path.substr(pos, dot == std::string::npos
                                 ? std::string::npos
                                 : dot - pos);
        if (!v->isObject() || !v->has(seg))
            return 0.0;
        v = &v->at(seg);
        if (dot == std::string::npos)
            break;
        pos = dot + 1;
    }
    return v->kind == JsonValue::Kind::Number ? v->number : 0.0;
}

/** One metrics round trip on a fresh connection.
 *  @return true with the parsed registry export in @p stats. */
bool
fetchMetrics(const std::string &socket, JsonValue &stats)
{
    crisp::ServeClient client;
    std::string err;
    if (!client.connect(socket, &err)) {
        std::fprintf(stderr, "crisp_submit: %s\n", err.c_str());
        return false;
    }
    JsonValue resp;
    if (!roundTrip(client, "{\"op\":\"metrics\"}", resp))
        return false;
    if (!responseOk(resp)) {
        printServerError(resp);
        return false;
    }
    if (!resp.has("stats_json") ||
        !resp.at("stats_json").isString())
        return false;
    return crisp::parseJson(resp.at("stats_json").text, stats,
                            nullptr);
}

/**
 * metrics --watch N: polls the daemon every N seconds on a fresh
 * connection and prints one delta line per poll — terminal
 * throughput (done+failed+cancelled per second since the previous
 * poll), queue depth, and running/buffered gauges. Runs until the
 * connection fails (daemon gone) or the process is interrupted.
 */
int
cmdMetricsWatch(const std::string &socket, uint64_t seconds)
{
    JsonValue stats;
    if (!fetchMetrics(socket, stats))
        return 2;
    auto terminal = [](const JsonValue &s) {
        return numberAt(s, "serve.jobs.done") +
               numberAt(s, "serve.jobs.failed") +
               numberAt(s, "serve.jobs.cancelled");
    };
    double prev = terminal(stats);
    std::printf("watching %s every %llus (^C to stop)\n",
                socket.c_str(),
                static_cast<unsigned long long>(seconds));
    std::printf("%8s %8s %8s %8s %8s %9s\n", "delta", "jobs/s",
                "done", "running", "queued", "buffered");
    std::fflush(stdout);
    for (;;) {
        std::this_thread::sleep_for(
            std::chrono::seconds(seconds));
        if (!fetchMetrics(socket, stats))
            return 2;
        const double now = terminal(stats);
        std::printf("%+8.0f %8.2f %8.0f %8.0f %8.0f %9.0f\n",
                    now - prev, (now - prev) / double(seconds),
                    numberAt(stats, "serve.jobs.done"),
                    numberAt(stats, "serve.jobs.running"),
                    numberAt(stats, "serve.queue.depth"),
                    numberAt(stats, "serve.events.buffered"));
        std::fflush(stdout);
        prev = now;
    }
}

/** trace [JOB]: fetches the daemon's runtime trace (optionally
 *  filtered to one job's spans) and prints the JSON document. */
int
cmdTrace(const std::string &socket, const std::string &job)
{
    crisp::ServeClient client;
    std::string err;
    if (!client.connect(socket, &err)) {
        std::fprintf(stderr, "crisp_submit: %s\n", err.c_str());
        return 2;
    }
    std::string req = "{\"op\":\"trace\"";
    if (!job.empty())
        req += ",\"job\":" + crisp::jsonQuote(job);
    JsonValue resp;
    if (!roundTrip(client, req + "}", resp))
        return 2;
    if (!responseOk(resp)) {
        printServerError(resp);
        return 1;
    }
    if (resp.has("trace_json") && resp.at("trace_json").isString())
        std::fputs(resp.at("trace_json").text.c_str(), stdout);
    return 0;
}

/** Generic one-shot op: send, pretty-print the response line. */
int
cmdSimple(const std::string &socket, const std::string &request)
{
    crisp::ServeClient client;
    std::string err;
    if (!client.connect(socket, &err)) {
        std::fprintf(stderr, "crisp_submit: %s\n", err.c_str());
        return 2;
    }
    JsonValue resp;
    if (!roundTrip(client, request, resp))
        return 2;
    if (!responseOk(resp)) {
        printServerError(resp);
        return 1;
    }
    // metrics carries a multi-line registry inside a JSON string;
    // unquote it for human eyes, everything else prints verbatim.
    if (resp.has("stats_json") && resp.at("stats_json").isString())
        std::printf("%s\n", resp.at("stats_json").text.c_str());
    else if (resp.has("jobs") && resp.at("jobs").isArray()) {
        for (const JsonValue &j : resp.at("jobs").elements) {
            if (!j.isObject())
                continue;
            std::printf(
                "%-20s %-12s %-10s %-9s attempts=%d%s%s\n",
                j.has("id") ? j.at("id").text.c_str() : "?",
                j.has("workload") ? j.at("workload").text.c_str()
                                  : "",
                j.has("variant") ? j.at("variant").text.c_str()
                                 : "",
                j.has("state") ? j.at("state").text.c_str() : "?",
                j.has("attempts") ? int(j.at("attempts").number)
                                  : 0,
                j.has("error") ? " error=" : "",
                j.has("error") ? j.at("error").text.c_str() : "");
        }
    } else {
        // drain/cancel/shutdown summaries: re-render compactly.
        std::printf("ok\n");
    }
    return 0;
}

} // namespace

int
main(int argc, char **argv)
{
    std::string socket;
    int i = 1;
    for (; i < argc; ++i) {
        std::string arg = argv[i];
        if (arg == "--socket") {
            if (i + 1 >= argc) {
                std::fprintf(stderr,
                             "crisp_submit: --socket needs a "
                             "path\n");
                return 2;
            }
            socket = argv[++i];
        } else if (arg == "--help" || arg == "-h") {
            usage();
            return 0;
        } else {
            break;
        }
    }
    if (socket.empty() || i >= argc) {
        usage();
        return 2;
    }
    std::string cmd = argv[i++];

    if (cmd == "submit")
        return cmdSubmit(socket, argc, argv, i);
    if (cmd == "status") {
        std::vector<std::string> jobs;
        for (; i < argc; ++i)
            jobs.emplace_back(argv[i]);
        std::string req = "{\"op\":\"status\"";
        if (!jobs.empty())
            req += ",\"jobs\":" + jsonStringArray(jobs);
        return cmdSimple(socket, req + "}");
    }
    if (cmd == "cancel") {
        std::vector<std::string> jobs;
        for (; i < argc; ++i)
            jobs.emplace_back(argv[i]);
        if (jobs.empty()) {
            std::fprintf(stderr,
                         "crisp_submit: cancel needs job IDs\n");
            return 2;
        }
        return cmdSimple(socket, "{\"op\":\"cancel\",\"jobs\":" +
                                     jsonStringArray(jobs) + "}");
    }
    if (cmd == "drain")
        return cmdSimple(socket, "{\"op\":\"drain\"}");
    if (cmd == "metrics") {
        uint64_t watch = 0;
        for (; i < argc; ++i) {
            if (std::strcmp(argv[i], "--watch") == 0 &&
                i + 1 < argc) {
                watch = std::strtoull(argv[++i], nullptr, 10);
                if (watch == 0) {
                    std::fprintf(stderr,
                                 "crisp_submit: --watch needs a "
                                 "positive second count\n");
                    return 2;
                }
            } else {
                std::fprintf(stderr,
                             "crisp_submit: unknown metrics flag "
                             "%s\n",
                             argv[i]);
                return 2;
            }
        }
        if (watch)
            return cmdMetricsWatch(socket, watch);
        return cmdSimple(socket, "{\"op\":\"metrics\"}");
    }
    if (cmd == "trace")
        return cmdTrace(socket, i < argc ? argv[i] : "");
    if (cmd == "shutdown") {
        bool drain = true;
        for (; i < argc; ++i)
            if (std::strcmp(argv[i], "--no-drain") == 0)
                drain = false;
        return cmdSimple(socket,
                         std::string("{\"op\":\"shutdown\","
                                     "\"drain\":") +
                             (drain ? "true" : "false") + "}");
    }
    std::fprintf(stderr, "crisp_submit: unknown command %s\n",
                 cmd.c_str());
    usage();
    return 2;
}
