/**
 * @file
 * crisp_sim: command-line front end to the whole library. Runs any
 * registered workload under any scheduler / machine / analysis
 * configuration and prints a comparison report.
 *
 *   crisp_sim --list
 *   crisp_sim --workload memcached
 *   crisp_sim --workload xhpcg --rs 192 --rob 448
 *   crisp_sim --workload lbm --no-load-slices
 */

#include <cstdio>
#include <exception>
#include <fstream>
#include <iostream>
#include <map>
#include <memory>
#include <vector>

#include "sim/artifact_cache.h"
#include "sim/cli.h"
#include "sim/driver.h"
#include "sim/sampled.h"
#include "sim/table.h"
#include "sim/thread_pool.h"
#include "sim/warm_store.h"
#include "telemetry/interval.h"
#include "telemetry/pc_profiler.h"
#include "telemetry/pipe_tracer.h"
#include "telemetry/runtime_trace.h"
#include "telemetry/stat_registry.h"
#include "trace/trace_io.h"
#include "workloads/workload.h"

using namespace crisp;

namespace
{

/** Hex-formats a PC for the profile tables. */
std::string
pcString(uint64_t pc)
{
    char buf[24];
    std::snprintf(buf, sizeof(buf), "0x%08llx",
                  static_cast<unsigned long long>(pc));
    return buf;
}

/** Formats a ratio total/samples to two decimals ("-" for 0/0). */
std::string
meanCell(uint64_t total, uint64_t samples)
{
    if (samples == 0)
        return "-";
    char buf[32];
    std::snprintf(buf, sizeof(buf), "%.2f",
                  double(total) / double(samples));
    return buf;
}

/**
 * Prints one variant's per-PC attribution profile: the delinquent
 * load table, the hard-branch table and the scheduler decision log,
 * each truncated to the CLI's top-N.
 */
void
reportProfile(const char *label, const PcProfiler &prof, size_t top)
{
    std::printf("\n--- %s per-PC attribution (top %zu by cycles "
                "attributed) ---\n",
                label, top);

    Table loads({"load pc", "issues", "llc miss", "critical",
                 "wait cyc", "mean wait", "mean head dist",
                 "mean mlp"});
    for (const auto &r : prof.topLoads(top))
        loads.addRow({pcString(r[0]), std::to_string(r[1]),
                      std::to_string(r[2]), std::to_string(r[3]),
                      std::to_string(r[4]), meanCell(r[4], r[1]),
                      meanCell(r[5], r[1]), meanCell(r[6], r[2])});
    if (loads.rows())
        loads.print(std::cout);
    else
        std::printf("(no loads issued)\n");

    Table branches(
        {"branch pc", "mispredicts", "wait cyc", "mean head dist"});
    for (const auto &r : prof.topBranches(top))
        branches.addRow({pcString(r[0]), std::to_string(r[1]),
                         std::to_string(r[2]),
                         meanCell(r[3], r[1])});
    if (branches.rows())
        branches.print(std::cout);

    Table picks({"picked pc", "bypassed pc", "picks", "lead cyc",
                 "mean lead"});
    for (const auto &r : prof.topDecisions(top))
        picks.addRow({pcString(r[0]), pcString(r[1]),
                      std::to_string(r[2]), std::to_string(r[3]),
                      meanCell(r[3], r[2])});
    if (picks.rows())
        picks.print(std::cout);
    std::printf("%llu critical picks bypassed older work for %llu "
                "lead cycles total\n",
                static_cast<unsigned long long>(
                    prof.decisionCount()),
                static_cast<unsigned long long>(
                    prof.decisionLeadCycles()));
}

void
report(const char *label, const CoreStats &s)
{
    std::printf("%-6s IPC %.3f | cycles %9llu | LLC MPKI %6.2f | "
                "mispredicts %7llu | ROB-head stall %9llu\n",
                label, s.ipc(), static_cast<unsigned long long>(s.cycles),
                s.llcMpki(),
                static_cast<unsigned long long>(s.frontend.mispredicts()),
                static_cast<unsigned long long>(s.robHeadStallCycles));
}

/**
 * Analysis + simulation body for main(), split out so an exception
 * from a --check audit (InvariantViolation) or a wedged core
 * (SimDeadlockError) is caught and reported at a single place.
 */
int
runSim(const CliOptions &opt, const WorkloadInfo *wl,
       WarmArtifactStore *store)
{
    std::printf("workload: %s — %s\n", wl->name.c_str(),
                wl->description.c_str());
    std::printf("machine : %s\n\n", opt.machine.describe().c_str());

    // The runtime tracer is declared before the cache and pool so it
    // outlives every instrumented scope (TraceSpan destructors record
    // into it); it is written and deactivated at the end of runSim.
    std::unique_ptr<RuntimeTracer> runtimeTracer;
    if (!opt.traceRuntimePath.empty()) {
        runtimeTracer = std::make_unique<RuntimeTracer>();
        runtimeTracer->activate();
    }

    ArtifactCache cache;
    cache.setWarmStore(store);
    const CrispAnalysis &a = *cache.analysis(*wl, opt.analysis,
                                             opt.machine,
                                             opt.trainOps);
    std::printf("analysis: %zu delinquent loads, %zu branches, %zu"
                " long-latency ops; %zu tagged statics "
                "(dyn ratio %.2f)\n\n",
                a.delinquentLoads.size(), a.criticalBranches.size(),
                a.longLatencyOps.size(), a.taggedStatics.size(),
                a.dynamicCriticalRatio);

    // Every requested scheduler variant is an independent core run;
    // run them as parallel jobs and report in fixed order.
    bool run_ooo = opt.scheduler == "ooo" ||
                   opt.scheduler == "both" ||
                   opt.scheduler == "ibda";
    bool run_ibda =
        opt.scheduler == "ibda" || opt.scheduler == "both";
    bool run_crisp =
        opt.scheduler == "crisp" || opt.scheduler == "both";

    struct Variant
    {
        const char *label;
        SimConfig cfg;
        bool tagged;
        CoreStats stats;
    };
    std::vector<Variant> runs;
    if (run_ooo || run_ibda)
        runs.push_back({"ooo", opt.machine, false, {}});
    if (run_ibda)
        runs.push_back(
            {"ibda", ibdaConfig(opt.machine, opt.ist), false, {}});
    if (run_crisp) {
        SimConfig cfg = opt.machine;
        cfg.scheduler = SchedulerPolicy::CrispPriority;
        runs.push_back({"crisp", cfg, true, {}});
    }

    // The pipeline tracer attaches to the most interesting variant
    // present: crisp > ibda > ooo (criticality annotations are what
    // make the trace worth looking at).
    std::unique_ptr<PipeTracer> tracer;
    size_t traced = runs.size();
    if (!opt.tracePipePath.empty() && !runs.empty()) {
        tracer = std::make_unique<PipeTracer>(
            opt.tracePipePath, opt.traceStart, opt.traceEnd);
        traced = runs.size() - 1; // runs[] is ordered ooo, ibda, crisp
    }

    // Per-variant attribution profilers and interval streamers:
    // independent instances, so the parallel variant runs never
    // share mutable telemetry state.
    std::vector<std::unique_ptr<PcProfiler>> profilers(runs.size());
    std::vector<std::unique_ptr<IntervalStreamer>> intervals(
        runs.size());
    for (size_t i = 0; i < runs.size(); ++i) {
        if (opt.profilePc)
            profilers[i] = std::make_unique<PcProfiler>();
        if (opt.statsEvery > 0) {
            intervals[i] = std::make_unique<IntervalStreamer>(
                opt.statsEvery, runs[i].label);
            // The traced variant's window edges also land in the
            // Kanata log as [interval-boundary] comments.
            if (i == traced)
                intervals[i]->setTracer(tracer.get());
        }
    }

    // Sampled mode (--sample) inverts the parallelism: variants run
    // serially and each variant's intervals fan out across the --jobs
    // pool (cli.cc routed opt.jobs into machine.sampleJobs), avoiding
    // nested-pool oversubscription. Per-interval stats are kept for
    // the registry exports.
    const bool sampled = opt.machine.sampleOps > 0;
    std::vector<std::vector<CoreStats>> interval_stats(runs.size());

    // Warm-pass strategy per sampled variant (DESIGN.md §14). A
    // variant whose warm state already exists — on disk, or built by
    // an earlier variant with the same warm key and trace — adopts it
    // under the barrier schedule with no warm pass at all. A cold
    // variant runs the pipelined schedule (warm pass overlapped with
    // detailed simulation), persisting incrementally when a store is
    // attached. Variants that *will* share a warm key (only possible
    // without a store, which would hand the state across via disk)
    // build it once through the cache instead of streaming it away.
    std::map<std::string, size_t> share_count;
    std::map<std::string, std::shared_ptr<const SampledWarmState>>
        shared_warm;
    if (sampled && !store)
        for (const Variant &v : runs)
            share_count[(v.tagged ? "tagged:" : "ref:") +
                        warmStateKey(v.cfg)]++;

    ThreadPool pool(sampled ? 1 : opt.jobs);
    pool.parallelFor(runs.size(), [&](size_t i) {
        Variant &v = runs[i];
        auto trace =
            v.tagged
                ? cache.taggedRefTrace(*wl, opt.analysis,
                                       opt.machine, opt.trainOps,
                                       opt.refOps)
                : cache.trace(*wl, InputSet::Ref, opt.refOps);
        if (sampled) {
            const std::string wkey = warmStateKey(v.cfg);
            const std::string skey =
                (v.tagged ? "tagged:" : "ref:") + wkey;
            std::shared_ptr<const SampledWarmState> warm;
            std::unique_ptr<WarmArtifactStore::Writer> writer;
            if (store) {
                uint64_t thash = traceContentHash(*trace);
                auto loaded = std::make_shared<SampledWarmState>();
                std::string why;
                if (store->load(wkey, thash, v.cfg, *loaded, &why)) {
                    warm = std::move(loaded);
                    std::fprintf(stderr,
                                 "[%s] warm pass skipped "
                                 "(artifact hit)\n",
                                 v.label);
                } else {
                    if (!why.empty())
                        std::fprintf(stderr,
                                     "warning: %s; recomputing "
                                     "warm state\n",
                                     why.c_str());
                    writer = std::make_unique<
                        WarmArtifactStore::Writer>(
                        *store, wkey, thash, opt.machine.sampleOps,
                        opt.machine.sampleWarmupOps);
                    if (writer->failed()) {
                        std::fprintf(stderr,
                                     "warning: cannot write warm "
                                     "artifact under %s\n",
                                     store->dir().c_str());
                        writer.reset();
                    }
                }
            } else if (auto it = shared_warm.find(skey);
                       it != shared_warm.end()) {
                warm = it->second;
                std::fprintf(stderr,
                             "[%s] warm pass skipped "
                             "(shared with earlier variant)\n",
                             v.label);
            } else if (share_count[skey] > 1) {
                warm = v.tagged
                           ? cache.warmStateTagged(
                                 *wl, opt.analysis, opt.machine,
                                 opt.trainOps, opt.refOps)
                           : cache.warmState(*wl, InputSet::Ref,
                                             opt.refOps, v.cfg);
                shared_warm[skey] = warm;
            }
            SampledResult r = runCoreSampled(
                *trace, v.cfg, warm.get(), profilers[i].get(),
                i == traced ? tracer.get() : nullptr, false,
                writer.get());
            if (writer)
                writer->commit();
            // Wall-clock phase split stays off stdout, which is
            // bit-identical across --jobs and artifact hits.
            std::fprintf(stderr,
                         "[%s] phase seconds: warm=%.3f "
                         "detail=%.3f stitch=%.3f%s\n",
                         v.label, r.warmSeconds, r.detailSeconds,
                         r.stitchSeconds,
                         r.warmPassRan ? " (pipelined)" : "");
            v.stats = std::move(r.total);
            interval_stats[i] = std::move(r.intervals);
        } else {
            v.stats = runCore(*trace, v.cfg, false,
                              i == traced ? tracer.get() : nullptr,
                              profilers[i].get(),
                              intervals[i].get());
        }
    });
    if (sampled) {
        // The job count stays off stdout: sampled results are
        // bit-identical at any --jobs, and stdout diffs are how that
        // is checked.
        std::printf("sampled : %zu intervals of %llu ops "
                    "(warmup %llu)\n\n",
                    interval_stats.empty()
                        ? size_t(0)
                        : interval_stats[0].size(),
                    static_cast<unsigned long long>(
                        opt.machine.sampleOps),
                    static_cast<unsigned long long>(
                        opt.machine.sampleWarmupOps));
        std::fprintf(stderr, "sampled jobs: %u\n",
                     opt.machine.sampleJobs);
    }

    double base_ipc = 0;
    for (const Variant &v : runs) {
        report(v.label, v.stats);
        if (std::string(v.label) == "ooo")
            base_ipc = v.stats.ipc();
        else if (base_ipc > 0 && run_ooo)
            std::printf("       %s speedup %+.1f%%\n", v.label,
                        (v.stats.ipc() / base_ipc - 1.0) * 100.0);
    }

    if (opt.profilePc)
        for (size_t i = 0; i < runs.size(); ++i)
            reportProfile(runs[i].label, *profilers[i],
                          size_t(opt.profilePcTop));

    // Telemetry exports. The registry is built from the finished
    // CoreStats, whose values are independent of --jobs, and its key
    // order is canonical — so the files are byte-identical at any
    // parallelism.
    if (!opt.statsJsonPath.empty() || !opt.statsCsvPath.empty()) {
        StatRegistry reg;
        reg.addInfo("sim.workload", wl->name);
        reg.addInfo("sim.machine", opt.machine.describe());
        for (const Variant &v : runs)
            v.stats.registerInto(reg, v.label);
        // Sampled runs additionally export every interval under
        // <label>.interval<k>.*; crisp_report --flatten-intervals
        // folds these back into whole-run paths so a sampled export
        // diffs directly against a full-run export.
        if (sampled)
            for (size_t i = 0; i < runs.size(); ++i)
                for (size_t k = 0; k < interval_stats[i].size(); ++k)
                    interval_stats[i][k].registerInto(
                        reg,
                        statPath(runs[i].label,
                                 "interval" + std::to_string(k)));
        if (opt.profilePc)
            for (size_t i = 0; i < runs.size(); ++i)
                profilers[i]->registerInto(
                    reg,
                    statPath(runs[i].label, "profile"),
                    size_t(opt.profilePcTop));
        if (!opt.statsJsonPath.empty()) {
            if (reg.writeJson(opt.statsJsonPath))
                std::printf("stats JSON written to %s\n",
                            opt.statsJsonPath.c_str());
            else
                std::fprintf(stderr, "failed to write %s\n",
                             opt.statsJsonPath.c_str());
        }
        if (!opt.statsCsvPath.empty()) {
            if (reg.writeCsv(opt.statsCsvPath))
                std::printf("stats CSV written to %s\n",
                            opt.statsCsvPath.c_str());
            else
                std::fprintf(stderr, "failed to write %s\n",
                             opt.statsCsvPath.c_str());
        }
    }
    // Interval time-series: all variants stream into one NDJSON file
    // in run order; each record carries its variant label. Buffered
    // during the runs, written here, so the file is byte-identical at
    // any --jobs.
    if (!opt.statsNdjsonPath.empty()) {
        std::ofstream os(opt.statsNdjsonPath);
        uint64_t windows = 0;
        for (const auto &iv : intervals) {
            os << iv->ndjson();
            windows += iv->records().size();
        }
        if (os)
            std::printf("interval NDJSON written to %s "
                        "(%llu windows of %llu cycles)\n",
                        opt.statsNdjsonPath.c_str(),
                        static_cast<unsigned long long>(windows),
                        static_cast<unsigned long long>(
                            opt.statsEvery));
        else
            std::fprintf(stderr, "failed to write %s\n",
                         opt.statsNdjsonPath.c_str());
    }
    if (tracer) {
        if (tracer->write())
            std::printf("pipeline trace written to %s "
                        "(%zu instructions, %s)\n",
                        tracer->path().c_str(), tracer->recorded(),
                        runs[traced].label);
        else
            std::fprintf(stderr, "failed to write %s\n",
                         tracer->path().c_str());
    }

    // Host-runtime trace: deactivate first so nothing records while
    // serializing, then write. The note goes to stderr — stdout must
    // stay byte-identical between traced and untraced runs.
    if (runtimeTracer) {
        runtimeTracer->deactivate();
        std::string err;
        if (runtimeTracer->writeJson(opt.traceRuntimePath, &err))
            std::fprintf(stderr,
                         "runtime trace written to %s "
                         "(%zu events%s)\n",
                         opt.traceRuntimePath.c_str(),
                         runtimeTracer->eventCount(),
                         runtimeTracer->dropped()
                             ? ", some dropped at slab cap"
                             : "");
        else
            std::fprintf(stderr, "failed to write %s: %s\n",
                         opt.traceRuntimePath.c_str(), err.c_str());
    }

    if (run_crisp && !opt.saveTracePath.empty()) {
        auto tagged =
            cache.taggedRefTrace(*wl, opt.analysis, opt.machine,
                                 opt.trainOps, opt.refOps);
        if (saveTrace(*tagged, opt.saveTracePath))
            std::printf("tagged trace written to %s\n",
                        opt.saveTracePath.c_str());
        else
            std::fprintf(stderr, "failed to write %s\n",
                         opt.saveTracePath.c_str());
    }
    return 0;
}

} // namespace

int
main(int argc, char **argv)
{
    std::vector<std::string> args(argv + 1, argv + argc);
    CliOptions opt = parseCli(args);
    if (!opt.ok()) {
        std::fprintf(stderr, "crisp_sim: %s\n%s", opt.error.c_str(),
                     cliUsage().c_str());
        return 2;
    }
    if (opt.showHelp) {
        std::fputs(cliUsage().c_str(), stdout);
        return 0;
    }
    if (opt.listWorkloads) {
        for (const auto &wl : workloadRegistry())
            std::printf("%-14s %s\n", wl.name.c_str(),
                        wl.description.c_str());
        return 0;
    }

    const WorkloadInfo *wl = findWorkload(opt.workload);
    if (!wl) {
        std::fprintf(stderr,
                     "crisp_sim: unknown workload '%s' (--list)\n",
                     opt.workload.c_str());
        return 2;
    }

    // The artifact directory is validated before any simulation: a
    // misspelled or read-only path should fail in milliseconds, not
    // after a full warm pass fails to persist.
    std::unique_ptr<WarmArtifactStore> store;
    if (!opt.artifactDir.empty()) {
        std::string why;
        if (!WarmArtifactStore::dirWritable(opt.artifactDir, &why)) {
            std::fprintf(stderr, "crisp_sim: --artifact-dir: %s\n",
                         why.c_str());
            return 2;
        }
        store = std::make_unique<WarmArtifactStore>(
            opt.artifactDir, opt.artifactMaxBytes);
    }

    try {
        return runSim(opt, wl, store.get());
    } catch (const std::exception &e) {
        // An InvariantViolation from a --check audit or a deadlock
        // abort: report it and exit nonzero instead of letting the
        // exception escape to std::terminate.
        std::fprintf(stderr, "crisp_sim: %s\n", e.what());
        return 1;
    }
}
