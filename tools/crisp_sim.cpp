/**
 * @file
 * crisp_sim: command-line front end to the whole library. Runs any
 * registered workload under any scheduler / machine / analysis
 * configuration and prints a comparison report.
 *
 *   crisp_sim --list
 *   crisp_sim --workload memcached
 *   crisp_sim --workload xhpcg --rs 192 --rob 448
 *   crisp_sim --workload lbm --no-load-slices
 */

#include <cstdio>
#include <vector>

#include "sim/cli.h"
#include "sim/driver.h"
#include "trace/trace_io.h"
#include "workloads/workload.h"

using namespace crisp;

namespace
{

void
report(const char *label, const CoreStats &s)
{
    std::printf("%-6s IPC %.3f | cycles %9llu | LLC MPKI %6.2f | "
                "mispredicts %7llu | ROB-head stall %9llu\n",
                label, s.ipc(), (unsigned long long)s.cycles,
                s.llcMpki(),
                (unsigned long long)s.frontend.mispredicts(),
                (unsigned long long)s.robHeadStallCycles);
}

} // namespace

int
main(int argc, char **argv)
{
    std::vector<std::string> args(argv + 1, argv + argc);
    CliOptions opt = parseCli(args);
    if (!opt.ok()) {
        std::fprintf(stderr, "crisp_sim: %s\n%s", opt.error.c_str(),
                     cliUsage().c_str());
        return 2;
    }
    if (opt.showHelp) {
        std::fputs(cliUsage().c_str(), stdout);
        return 0;
    }
    if (opt.listWorkloads) {
        for (const auto &wl : workloadRegistry())
            std::printf("%-14s %s\n", wl.name.c_str(),
                        wl.description.c_str());
        return 0;
    }

    const WorkloadInfo *wl = findWorkload(opt.workload);
    if (!wl) {
        std::fprintf(stderr,
                     "crisp_sim: unknown workload '%s' (--list)\n",
                     opt.workload.c_str());
        return 2;
    }

    std::printf("workload: %s — %s\n", wl->name.c_str(),
                wl->description.c_str());
    std::printf("machine : %s\n\n", opt.machine.describe().c_str());

    CrispPipeline pipe(*wl, opt.analysis, opt.machine, opt.trainOps,
                       opt.refOps);
    const CrispAnalysis &a = pipe.analysis();
    std::printf("analysis: %zu delinquent loads, %zu branches, %zu"
                " long-latency ops; %zu tagged statics "
                "(dyn ratio %.2f)\n\n",
                a.delinquentLoads.size(), a.criticalBranches.size(),
                a.longLatencyOps.size(), a.taggedStatics.size(),
                a.dynamicCriticalRatio);

    double base_ipc = 0;
    if (opt.scheduler == "ooo" || opt.scheduler == "both" ||
        opt.scheduler == "ibda") {
        Trace base_trace = pipe.refTrace(false);
        CoreStats s = runCore(base_trace, opt.machine);
        report("ooo", s);
        base_ipc = s.ipc();
        if (opt.scheduler == "ibda" || opt.scheduler == "both") {
            CoreStats si = runCore(
                base_trace, ibdaConfig(opt.machine, opt.ist));
            report("ibda", si);
            if (base_ipc > 0)
                std::printf("       ibda speedup %+.1f%%\n",
                            (si.ipc() / base_ipc - 1.0) * 100.0);
        }
    }
    if (opt.scheduler == "crisp" || opt.scheduler == "both") {
        Trace tagged = pipe.refTrace(true);
        if (!opt.saveTracePath.empty()) {
            if (saveTrace(tagged, opt.saveTracePath))
                std::printf("tagged trace written to %s\n",
                            opt.saveTracePath.c_str());
            else
                std::fprintf(stderr, "failed to write %s\n",
                             opt.saveTracePath.c_str());
        }
        SimConfig cfg = opt.machine;
        cfg.scheduler = SchedulerPolicy::CrispPriority;
        CoreStats s = runCore(tagged, cfg);
        report("crisp", s);
        if (base_ipc > 0)
            std::printf("       crisp speedup %+.1f%%\n",
                        (s.ipc() / base_ipc - 1.0) * 100.0);
    }
    return 0;
}
