/**
 * @file
 * CRISP §3.1 motivating example: the pointer-chase kernel run as (a)
 * plain OOO, (b) OOO with a manually inserted software prefetch
 * (the commented-out __builtin_prefetch of Fig 2), and (c) CRISP.
 * Also dumps the extracted slice for inspection (Fig 3 analog).
 */

#include <algorithm>
#include <cstdio>
#include <vector>

#include "core/pipeline.h"
#include "sim/driver.h"
#include "vm/interpreter.h"
#include "workloads/workload.h"

using namespace crisp;

namespace
{

void
report(const char *label, const CoreStats &s)
{
    std::printf("%-18s IPC %.3f  cycles %8llu  ROB-head stalls %8llu"
                "  (load-at-head %llu)  DRAM reads %llu avg lat %.0f\n",
                label, s.ipc(), static_cast<unsigned long long>(s.cycles),
                static_cast<unsigned long long>(s.robHeadStallCycles),
                static_cast<unsigned long long>(s.robHeadLoadStallCycles),
                static_cast<unsigned long long>(s.dram.reads),
                s.dram.averageLatency());
    std::printf("%-18s   mispredicts %llu  branch-stall %llu  "
                "icache-stall %llu  fwd loads %llu  mshr-stall %llu\n",
                "", static_cast<unsigned long long>(s.frontend.mispredicts()),
                static_cast<unsigned long long>(s.frontend.branchStallCycles),
                static_cast<unsigned long long>(s.frontend.icacheStallCycles),
                static_cast<unsigned long long>(s.forwardedLoads),
                static_cast<unsigned long long>(s.l1d.mshrStallCycles));
}

} // namespace

int
main()
{
    const WorkloadInfo *wl = findWorkload("pointer_chase");
    SimConfig cfg = SimConfig::skylake();
    CrispOptions opts;
    const uint64_t kTrainOps = 150'000;
    const uint64_t kRefOps = 200'000;

    CrispPipeline pipe(*wl, opts, cfg, kTrainOps, kRefOps);
    const CrispAnalysis &a = pipe.analysis();

    // Show the extracted slice (the Fig 3 walkthrough).
    Program prog = wl->build(InputSet::Ref);
    std::printf("delinquent loads: %zu, tagged statics: %zu\n",
                a.delinquentLoads.size(), a.taggedStatics.size());
    for (const auto &slice : a.loadSlices) {
        std::printf("slice root @%u, full %zu, critical %zu, avg dyn"
                    " ancestors %.1f\n",
                    slice.rootSidx, slice.fullSlice.size(),
                    slice.criticalSlice.size(),
                    slice.avgDynAncestors);
    }
    std::printf("tagged instructions:\n");
    for (uint32_t sidx : a.taggedStatics)
        std::printf("  [%u] %s\n", sidx,
                    prog.code[sidx].toString().c_str());
    std::printf("\n");

    // (a) plain OOO.
    Trace base = pipe.refTrace(false);
    SimConfig base_cfg = cfg;
    CoreStats s_base = runCore(base, base_cfg);
    report("OOO baseline", s_base);

    // Where do ROB-head stalls accumulate?
    {
        // Sorted rows first, so ties in stall cycles break by
        // static id deterministically.
        std::vector<std::pair<uint64_t, uint32_t>> tops;
        for (const auto &[sidx, cyc] : s_base.sortedHeadStalls())
            tops.emplace_back(cyc, sidx);
        std::stable_sort(tops.begin(), tops.end(),
                         [](const auto &x, const auto &y) {
                             return x.first > y.first;
                         });
        std::printf("  top head-stall statics:\n");
        for (size_t k = 0; k < tops.size() && k < 6; ++k)
            std::printf("    %8llu cyc  [%u] %s\n",
                        static_cast<unsigned long long>(tops[k].first),
                        tops[k].second,
                        prog.code[tops[k].second].toString().c_str());
    }

    // (b) manual software prefetch (Fig 2 line 12 uncommented).
    Program pf_prog = buildPointerChasePrefetch(InputSet::Ref);
    auto pf_shared = std::make_shared<Program>(std::move(pf_prog));
    Interpreter interp(pf_shared);
    Trace pf_trace = interp.run(kRefOps);
    CoreStats s_pf = runCore(pf_trace, base_cfg);
    report("OOO + prefetch", s_pf);

    // (c) CRISP.
    Trace tagged = pipe.refTrace(true);
    SimConfig crisp_cfg = cfg;
    crisp_cfg.scheduler = SchedulerPolicy::CrispPriority;
    CoreStats s_crisp = runCore(tagged, crisp_cfg);
    report("CRISP", s_crisp);

    std::printf("\nspeedups: prefetch %+.1f%%, CRISP %+.1f%%\n",
                (s_pf.ipc() / s_base.ipc() - 1.0) * 100.0,
                (s_crisp.ipc() / s_base.ipc() - 1.0) * 100.0);
    return 0;
}
